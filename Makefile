GO ?= go

.PHONY: all build vet test race bench bench-json smoke check clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# race runs the full suite under the race detector; the daemon package's
# worker-pool and pipelined-run tests are the main customers.
race:
	$(GO) test -race ./...

# bench prints the PR 1 hot-path microbenchmarks (optimized vs legacy
# reference implementations) without writing anything.
bench:
	$(GO) test -bench . -benchmem -run '^$$' ./internal/perf/

# bench-json reruns the microbenchmarks through cmd/benchperf and
# refreshes BENCH_PR1.json.
bench-json:
	$(GO) run ./cmd/benchperf -o BENCH_PR1.json

# smoke runs a short droidfleet campaign against droidbrokerd over TCP
# loopback and asserts clean execution and shutdown.
smoke:
	./scripts/smoke_remote.sh

check: build vet race

clean:
	$(GO) clean ./...
