GO ?= go

.PHONY: all build vet test race sanitize bench bench-json smoke smoke-params smoke-clone smoke-coord check clean

all: check

build:
	$(GO) build ./...

# vet runs the toolchain's vet followed by droidvet, the project-specific
# analyzer (determinism, pool lifecycles, lock order, wire-frame layout,
# snapshot immutability, atomic discipline, checkpoint completeness, and
# goroutine lifetimes). All eight passes share one module load and one
# declaration index; droidvet -v prints per-pass wall time.
vet:
	$(GO) vet ./...
	$(GO) run ./cmd/droidvet -v ./...

test:
	$(GO) test ./...

# sanitize runs the full suite with the droidfuzz_sanitize build tag:
# checked pools (double-Put / use-after-put panic at the faulting line),
# relation-graph invariant checks after every Learn/Decay, and wire-frame
# round-trip verification in the transport server.
sanitize:
	$(GO) test -tags droidfuzz_sanitize ./...

# race runs the full suite under the race detector; the daemon package's
# worker-pool and pipelined-run tests are the main customers.
race:
	$(GO) test -race ./...

# bench prints the recorded benchmarks (PR 1 hot paths vs their legacy
# references, PR 3 transport protocols) without writing anything.
bench:
	$(GO) test -bench . -benchmem -run '^$$' ./internal/perf/

# bench-json reruns the benchmarks through cmd/benchperf and refreshes the
# recorded BENCH_PR*.json reports.
bench-json:
	$(GO) run ./cmd/benchperf -pr 1 -o BENCH_PR1.json
	$(GO) run ./cmd/benchperf -pr 3 -o BENCH_PR3.json
	$(GO) run ./cmd/benchperf -pr 5 -o BENCH_PR5.json
	$(GO) run ./cmd/benchperf -pr 6 -o BENCH_PR6.json
	$(GO) run ./cmd/benchperf -pr 7 -o BENCH_PR7.json
	$(GO) run ./cmd/benchperf -pr 8 -o BENCH_PR8.json
	$(GO) run ./cmd/benchperf -pr 10 -o BENCH_PR10.json

# smoke runs a short droidfleet campaign against droidbrokerd over TCP
# loopback and asserts clean execution and shutdown.
smoke:
	./scripts/smoke_remote.sh

# smoke-params runs a short param-enabled campaign in both the plain and
# the sanitize build and asserts the fleet actually exercised the
# runtime-parameter dimension (param_writes > 0 in the status report).
smoke-params:
	./scripts/smoke_params.sh

# smoke-clone runs a short lineage-enabled campaign (checkpoint fan-out +
# batch pristine resets) in both the plain and the sanitize build and
# asserts the fleet actually forked lineages (lineage_execs > 0 in the
# status report).
smoke-clone:
	./scripts/smoke_clone.sh

# smoke-coord stands up a coordinator with two droidfleet hosts over
# loopback TCP in both the plain and the sanitize build and asserts the
# federated campaign converged (equal nonzero corpus fingerprints, all
# shards done, federation bytes in both directions).
smoke-coord:
	./scripts/smoke_coord.sh

check: build vet race sanitize

clean:
	$(GO) clean ./...
