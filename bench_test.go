// Benchmark harness: one testing.B target per table and figure of the
// paper's evaluation, plus ablation benches for the design decisions
// DESIGN.md calls out. Run with
//
//	go test -bench=. -benchmem
//
// Each bench iteration regenerates the artifact at the quick scale; the
// full-scale outputs come from cmd/benchtab.
package droidfuzz_test

import (
	"fmt"
	"testing"

	"droidfuzz"
	"droidfuzz/internal/adb"
	"droidfuzz/internal/baseline"
	"droidfuzz/internal/bench"
	"droidfuzz/internal/crash"
	"droidfuzz/internal/device"
	"droidfuzz/internal/dsl"
	"droidfuzz/internal/engine"
	"droidfuzz/internal/feedback"
	"droidfuzz/internal/gen"
	"droidfuzz/internal/probe"
	"droidfuzz/internal/relation"
	"droidfuzz/internal/stats"
)

// benchScale keeps each benchmark iteration around a second.
func benchScale() bench.Scale {
	return bench.Scale{FigureIters: 1200, Table2Iters: 2500, Reps: 2, SeedBase: 77}
}

// BenchmarkTable1Devices regenerates the Table I device listing.
func BenchmarkTable1Devices(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if out := bench.Table1(); len(out) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable2BugDetection regenerates the bug-detection experiment:
// DroidFuzz vs Syzkaller across all seven devices (144 h analog).
func BenchmarkTable2BugDetection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.RunTable2(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(r.DFBugs)), "df-bugs")
		b.ReportMetric(float64(len(r.SyzBugs)), "syz-bugs")
	}
}

// BenchmarkFigure3Probing regenerates the probing-pass report (Fig. 3).
func BenchmarkFigure3Probing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.RunFigure3("A1")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.Interfaces), "interfaces")
	}
}

// BenchmarkFigure4Coverage regenerates the DroidFuzz-vs-Syzkaller coverage
// curves on devices A1/A2/B/C1 (48 h analog).
func BenchmarkFigure4Coverage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.RunFigure4(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.PerDriverGainPct, "per-driver-gain-%")
	}
}

// BenchmarkFigure5Difuze regenerates the Difuze / DroidFuzz-D comparison on
// devices A1 and A2.
func BenchmarkFigure5Difuze(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.RunFigure5(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.DFDLeadPct["A1"], "dfd-vs-difuze-%")
	}
}

// BenchmarkTable3Ablation regenerates the ablation table: DroidFuzz,
// DF-NoRel, DF-NoHCov, and Syzkaller on all seven devices.
func BenchmarkTable3Ablation(b *testing.B) {
	sc := benchScale()
	sc.Reps = 2
	for i := 0; i < b.N; i++ {
		r, err := bench.RunTable3(sc)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Mean["A1"][bench.DroidFuzz], "a1-df-cov")
		b.ReportMetric(r.Mean["A1"][bench.SyzkallerLike], "a1-syz-cov")
	}
}

// BenchmarkAblationNgramOrder quantifies the design decision behind
// directional coverage: order-sensitive n-gram hashing vs a plain
// specialized-ID set. It measures distinct signal produced by order
// permutations of the same HAL trace.
func BenchmarkAblationNgramOrder(b *testing.B) {
	target, err := dsl.NewTarget(device.New(mustModel(b, "A1")).SyscallDescs()...)
	if err != nil {
		b.Fatal(err)
	}
	table := feedback.NewSpecTable(target)
	mkTrace := func(perm int) []adb.TraceEvent {
		args := []uint64{0xa101, 0xa102, 0xa103, 0xa104}
		// Rotate to model order changes.
		out := make([]adb.TraceEvent, len(args))
		for i := range args {
			out[i] = adb.TraceEvent{NR: "ioctl", Arg: args[(i+perm)%len(args)]}
		}
		return out
	}
	for i := 0; i < b.N; i++ {
		directional := make(map[uint64]struct{})
		setOnly := make(map[uint64]struct{})
		for perm := 0; perm < 4; perm++ {
			res := &adb.ExecResult{HALTrace: mkTrace(perm)}
			sig := feedback.FromExec(res, table)
			for _, e := range sig.Elems() {
				directional[e] = struct{}{}
			}
			sig.Release()
			for _, ev := range res.HALTrace {
				setOnly[uint64(table.ID(ev))] = struct{}{}
			}
		}
		if len(directional) <= len(setOnly) {
			b.Fatal("directional coverage lost order sensitivity")
		}
		b.ReportMetric(float64(len(directional)), "directional-elems")
		b.ReportMetric(float64(len(setOnly)), "set-only-elems")
	}
}

// BenchmarkAblationDecay sweeps the relation decay factor, the knob that
// keeps generation exploring (paper §IV-C), and reports final coverage per
// setting.
func BenchmarkAblationDecay(b *testing.B) {
	for _, factor := range []float64{0.5, 0.9, 0.99} {
		b.Run(fmt.Sprintf("factor%.2f", factor), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				dev := device.New(mustModel(b, "A1"))
				eng, err := newEngineWithDecay(dev, factor)
				if err != nil {
					b.Fatal(err)
				}
				eng.Run(800)
				b.ReportMetric(float64(eng.Accumulator().KernelTotal()), "kernel-cov")
			}
		})
	}
}

// BenchmarkExecutorThroughput measures raw broker execution throughput — the
// virtual-device analog of the executor round trips that dominate real
// device fuzzing.
func BenchmarkExecutorThroughput(b *testing.B) {
	dev := device.New(mustModel(b, "A1"))
	target, err := dsl.NewTarget(dev.SyscallDescs()...)
	if err != nil {
		b.Fatal(err)
	}
	broker := adb.NewBroker(dev, target)
	prog, err := dsl.ParseProg(target, `r0 = open$tcpc(path="/dev/tcpc0")
ioctl$TCPC_SET_MODE(fd=r0, req=0xa102, mode=0x3)
ioctl$TCPC_SET_VOLTAGE(fd=r0, req=0xa103, mv=0x1388)
close$tcpc(fd=r0)
`)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := broker.ExecProg(prog); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProbingPass measures the pre-testing probing pass itself.
func BenchmarkProbingPass(b *testing.B) {
	for i := 0; i < b.N; i++ {
		dev := device.New(mustModel(b, "A1"))
		if _, err := probe.Run(dev, probe.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMannWhitney measures the statistics hot path used by Table III.
func BenchmarkMannWhitney(b *testing.B) {
	x := make([]float64, 100)
	y := make([]float64, 100)
	for i := range x {
		x[i] = float64(i)
		y[i] = float64(i) + 5
	}
	for i := 0; i < b.N; i++ {
		stats.MannWhitneyU(x, y)
	}
}

func mustModel(b *testing.B, id string) device.Model {
	b.Helper()
	m, err := device.ModelByID(id)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

func newEngineWithDecay(dev *droidfuzz.Device, factor float64) (*engine.Engine, error) {
	target, err := dsl.NewTarget(dev.SyscallDescs()...)
	if err != nil {
		return nil, err
	}
	pr, err := probe.Run(dev, probe.Options{})
	if err != nil {
		return nil, err
	}
	target, err = target.Extend(pr.Interfaces...)
	if err != nil {
		return nil, err
	}
	broker := adb.NewBroker(dev, target)
	cfg := engine.Config{Seed: 9, DecayFactor: factor, DecayEvery: 100}
	return engine.New(broker, relation.New(), crash.NewDedup(), cfg), nil
}

// BenchmarkAblationSeedCorpus measures the value of the probing pass's
// distilled workload seeds: engines with and without the bootstrap corpus.
func BenchmarkAblationSeedCorpus(b *testing.B) {
	run := func(b *testing.B, seeded bool) {
		for i := 0; i < b.N; i++ {
			dev := device.New(mustModel(b, "A1"))
			target, err := dsl.NewTarget(dev.SyscallDescs()...)
			if err != nil {
				b.Fatal(err)
			}
			pr, err := probe.Run(dev, probe.Options{})
			if err != nil {
				b.Fatal(err)
			}
			target, err = target.Extend(pr.Interfaces...)
			if err != nil {
				b.Fatal(err)
			}
			broker := adb.NewBroker(dev, target)
			eng := engine.New(broker, relation.New(), crash.NewDedup(), engine.Config{Seed: 13})
			if seeded {
				eng.SeedCorpus(pr.Seeds)
			}
			eng.Run(1200)
			b.ReportMetric(float64(eng.Accumulator().KernelTotal()), "kernel-cov")
			b.ReportMetric(float64(eng.Dedup().Len()), "bugs")
		}
	}
	b.Run("with-seeds", func(b *testing.B) { run(b, true) })
	b.Run("without-seeds", func(b *testing.B) { run(b, false) })
}

// BenchmarkAblationEpsilon sweeps the generator's exploration rate — the
// balance between exploiting learned relations and uniform diversity.
func BenchmarkAblationEpsilon(b *testing.B) {
	for _, eps := range []float64{0.1, 0.35, 0.7} {
		b.Run(fmt.Sprintf("eps%.2f", eps), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				dev := device.New(mustModel(b, "A1"))
				eng, err := baseline.NewDroidFuzz(dev, relation.New(), crash.NewDedup(),
					engine.Config{Seed: 17, Gen: gen.Options{Epsilon: eps}})
				if err != nil {
					b.Fatal(err)
				}
				eng.Run(1200)
				b.ReportMetric(float64(eng.Accumulator().KernelTotal()), "kernel-cov")
			}
		})
	}
}

// BenchmarkAblationMinimize measures the cost/benefit of pre-admission
// minimization (paper §IV-C's "minimize the call to the bare bones").
func BenchmarkAblationMinimize(b *testing.B) {
	for _, skip := range []bool{false, true} {
		name := "minimize"
		if skip {
			name = "no-minimize"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				dev := device.New(mustModel(b, "A1"))
				eng, err := baseline.NewDroidFuzz(dev, relation.New(), crash.NewDedup(),
					engine.Config{Seed: 19, SkipMinimize: skip})
				if err != nil {
					b.Fatal(err)
				}
				eng.Run(1200)
				b.ReportMetric(float64(eng.Accumulator().KernelTotal()), "kernel-cov")
				b.ReportMetric(float64(eng.Execs()), "execs")
			}
		})
	}
}
