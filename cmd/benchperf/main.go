// Command benchperf runs the PR 1 hot-path microbenchmarks through
// testing.Benchmark and writes the results to BENCH_PR1.json: the
// optimized paths, their in-tree legacy reference implementations, the
// computed speedups, and the end-to-end engine step throughput alongside
// the number recorded from the pre-rewrite seed tree.
//
// Usage:
//
//	go run ./cmd/benchperf [-o BENCH_PR1.json] [-benchtime 1s]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"droidfuzz/internal/perf"
)

type measurement struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	ExecsPerSec float64 `json:"execs_per_sec,omitempty"`
	Iterations  int     `json:"iterations"`
}

// seedEngineStep is the EngineStep measurement taken on the PR 0 seed tree
// (pre-pooling feedback, map signals, string spec keys) with the identical
// benchmark body, warm-up, and seed on the same machine. Kept here so the
// emitted report always carries the before/after engine-level comparison
// even though the legacy engine no longer compiles in this tree.
var seedEngineStep = measurement{
	NsPerOp:     33584,
	BytesPerOp:  16227,
	AllocsPerOp: 180,
	ExecsPerSec: 29820,
	Iterations:  70229,
}

type report struct {
	PR          int                    `json:"pr"`
	Description string                 `json:"description"`
	GOOS        string                 `json:"goos"`
	GOARCH      string                 `json:"goarch"`
	GoVersion   string                 `json:"go_version"`
	Benchtime   string                 `json:"benchtime"`
	Benchmarks  map[string]measurement `json:"benchmarks"`
	Speedups    map[string]float64     `json:"speedups"`
	SeedBase    map[string]measurement `json:"seed_baseline"`
}

func measure(name string, f func(*testing.B)) measurement {
	fmt.Fprintf(os.Stderr, "benchperf: running %s...\n", name)
	r := testing.Benchmark(f)
	m := measurement{
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		Iterations:  r.N,
	}
	if v, ok := r.Extra["execs/sec"]; ok {
		m.ExecsPerSec = v
	}
	return m
}

func main() {
	out := flag.String("o", "BENCH_PR1.json", "output file")
	benchtime := flag.Duration("benchtime", time.Second, "per-benchmark target run time")
	flag.Parse()
	flag.Set("test.benchtime", benchtime.String())

	benches := []struct {
		name string
		body func(*testing.B)
	}{
		{"SignalPipeline", perf.SignalPipeline},
		{"SignalPipelineLegacy", perf.SignalPipelineLegacy},
		{"SpecTableID", perf.SpecTableID},
		{"SpecTableIDLegacy", perf.SpecTableIDLegacy},
		{"EngineStep", perf.EngineStep},
	}
	rep := report{
		PR:          1,
		Description: "zero-allocation feedback hot path + pipelined campaign execution",
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		GoVersion:   runtime.Version(),
		Benchtime:   benchtime.String(),
		Benchmarks:  map[string]measurement{},
		SeedBase:    map[string]measurement{"EngineStep": seedEngineStep},
	}
	for _, b := range benches {
		rep.Benchmarks[b.name] = measure(b.name, b.body)
	}
	rep.Speedups = map[string]float64{
		"SignalPipeline": round2(rep.Benchmarks["SignalPipelineLegacy"].NsPerOp /
			rep.Benchmarks["SignalPipeline"].NsPerOp),
		"SpecTableID": round2(rep.Benchmarks["SpecTableIDLegacy"].NsPerOp /
			rep.Benchmarks["SpecTableID"].NsPerOp),
		"EngineStepVsSeed": round2(seedEngineStep.NsPerOp /
			rep.Benchmarks["EngineStep"].NsPerOp),
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchperf: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchperf: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (signal pipeline %.2fx, spec table %.2fx, engine step %.2fx vs seed)\n",
		*out, rep.Speedups["SignalPipeline"], rep.Speedups["SpecTableID"],
		rep.Speedups["EngineStepVsSeed"])
}

func round2(v float64) float64 { return float64(int(v*100+0.5)) / 100 }
