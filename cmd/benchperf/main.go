// Command benchperf runs the repo's recorded performance benchmarks
// through testing.Benchmark and writes a JSON report.
//
// -pr 1 (the default) runs the PR 1 hot-path microbenchmarks and writes
// BENCH_PR1.json: the optimized paths, their in-tree legacy reference
// implementations, the computed speedups, and the end-to-end engine step
// throughput alongside the number recorded from the pre-rewrite seed tree.
//
// -pr 3 runs the PR 3 transport benchmarks and writes BENCH_PR3.json: the
// v1 lock-step protocol against the wire-protocol-v2 windowed-batch path
// over net.Pipe, with round-trips/sec and device-uplink bytes/exec for
// both, and the derived throughput and byte-reduction factors.
//
// -pr 5 runs the PR 5 fleet-scaling benchmarks and writes BENCH_PR5.json:
// 1/2/4/8 engines over shared state (snapshot relation graph, atomic
// coverage bitmap, lock-free collector, striped dedup) against the
// pre-PR-5 lock-everything reference, plus the per-Hit collector
// microbenchmark pair. With -short only the 8-engine pair and the
// collector pair run — the CI smoke configuration.
//
// -pr 6 runs the PR 6 device-reset benchmarks and writes BENCH_PR6.json:
// snapshot restore under light dirt (one driver touched) and heavy dirt
// (every driver plus a dead Graphics HAL) against the full reboot it
// replaces, with resets/sec for all three and the two restore-vs-reboot
// speedup factors.
//
// -pr 7 runs the PR 7 runtime-parameter campaign benchmarks and writes
// BENCH_PR7.json: a param-enabled A1 campaign through the full system
// against the same param-extended target under the DROIDFUZZ-D ioctl-only
// gate, with per-run accumulated kernel coverage and the count of
// param-gated sysfs store sites covered — 0 by construction for the
// ablation, which is the point being measured.
//
// -pr 8 runs the PR 8 portable-checkpoint benchmarks and writes
// BENCH_PR8.json: clone-based fleet standup against serial boot standup
// (8 devices either way), broker-level lineage fan-out against flat
// prefix re-execution, and the per-exec overhead of -reset=exec pristine
// mode against -reset=never, bounded by the light-dirty restore cost.
//
// -pr 10 runs the PR 10 distributed-fleet benchmarks and writes
// BENCH_PR10.json: complete coordinated campaigns on 1-, 2- and 4-host
// fleets with a fixed simulated per-execution device latency (aggregate
// execs/sec, so the 2-vs-1 ratio is the fleet-scaling factor), and the
// federation uplink comparison — cursor-tracked delta batches with
// delta/varint-coded learn records against naive full-state gob
// synchronization, in bytes per epoch. With -short the 4-host point is
// dropped.
//
// Usage:
//
//	go run ./cmd/benchperf [-pr 1|3|5|6|7|8|10] [-short] [-o FILE] [-benchtime 1s]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"droidfuzz/internal/perf"
)

type measurement struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	ExecsPerSec float64 `json:"execs_per_sec,omitempty"`
	// RoundTripsPerSec and UplinkBytesPerExec are the PR 3 transport
	// metrics: executions completed per second through the protocol under
	// test, and device-to-host bytes shipped per execution.
	RoundTripsPerSec   float64 `json:"round_trips_per_sec,omitempty"`
	UplinkBytesPerExec float64 `json:"uplink_bytes_per_exec,omitempty"`
	// ResetsPerSec is the PR 6 device-reset metric: pristine-state resets
	// completed per second (snapshot restore or full reboot, depending on
	// the benchmark).
	ResetsPerSec float64 `json:"resets_per_sec,omitempty"`
	// GatedPCsPerRun and KernelCovPerRun are the PR 7 runtime-parameter
	// campaign metrics: param-gated sysfs store sites and distinct kernel
	// PCs accumulated per campaign run.
	GatedPCsPerRun  float64 `json:"gated_pcs_per_run,omitempty"`
	KernelCovPerRun float64 `json:"kernel_cov_per_run,omitempty"`
	// UplinkBytesPerEpoch is the PR 10 federation metric: bytes one host
	// ships per federation epoch under the encoding being measured.
	UplinkBytesPerEpoch float64 `json:"uplink_bytes_per_epoch,omitempty"`
	Iterations          int     `json:"iterations"`
}

// seedEngineStep is the EngineStep measurement taken on the PR 0 seed tree
// (pre-pooling feedback, map signals, string spec keys) with the identical
// benchmark body, warm-up, and seed on the same machine. Kept here so the
// emitted report always carries the before/after engine-level comparison
// even though the legacy engine no longer compiles in this tree.
var seedEngineStep = measurement{
	NsPerOp:     33584,
	BytesPerOp:  16227,
	AllocsPerOp: 180,
	ExecsPerSec: 29820,
	Iterations:  70229,
}

type report struct {
	PR          int                    `json:"pr"`
	Description string                 `json:"description"`
	GOOS        string                 `json:"goos"`
	GOARCH      string                 `json:"goarch"`
	GoVersion   string                 `json:"go_version"`
	Benchtime   string                 `json:"benchtime"`
	Benchmarks  map[string]measurement `json:"benchmarks"`
	Speedups    map[string]float64     `json:"speedups"`
	SeedBase    map[string]measurement `json:"seed_baseline,omitempty"`
}

func measure(name string, f func(*testing.B)) measurement {
	fmt.Fprintf(os.Stderr, "benchperf: running %s...\n", name)
	r := testing.Benchmark(f)
	m := measurement{
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		Iterations:  r.N,
	}
	if v, ok := r.Extra["execs/sec"]; ok {
		m.ExecsPerSec = v
	}
	if v, ok := r.Extra["rt/sec"]; ok {
		m.RoundTripsPerSec = v
	}
	if v, ok := r.Extra["uplinkB/exec"]; ok {
		m.UplinkBytesPerExec = v
	}
	if v, ok := r.Extra["resets/sec"]; ok {
		m.ResetsPerSec = v
	}
	if v, ok := r.Extra["gatedPCs/run"]; ok {
		m.GatedPCsPerRun = v
	}
	if v, ok := r.Extra["cover/run"]; ok {
		m.KernelCovPerRun = v
	}
	if v, ok := r.Extra["uplinkB/epoch"]; ok {
		m.UplinkBytesPerEpoch = v
	}
	return m
}

func main() {
	pr := flag.Int("pr", 1, "which PR's benchmark suite to run (1, 3, 5, 6, 7, 8 or 10)")
	out := flag.String("o", "", "output file (default BENCH_PR<n>.json)")
	benchtime := flag.Duration("benchtime", time.Second, "per-benchmark target run time")
	short := flag.Bool("short", false, "smoke subset: skip the 1/2/4-engine fleet points (-pr 5 only)")
	flag.Parse()
	flag.Set("test.benchtime", benchtime.String())

	rep := report{
		PR:         *pr,
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GoVersion:  runtime.Version(),
		Benchtime:  benchtime.String(),
		Benchmarks: map[string]measurement{},
	}
	var summary string
	switch *pr {
	case 1:
		rep.Description = "zero-allocation feedback hot path + pipelined campaign execution"
		rep.SeedBase = map[string]measurement{"EngineStep": seedEngineStep}
		for _, b := range []struct {
			name string
			body func(*testing.B)
		}{
			{"SignalPipeline", perf.SignalPipeline},
			{"SignalPipelineLegacy", perf.SignalPipelineLegacy},
			{"SpecTableID", perf.SpecTableID},
			{"SpecTableIDLegacy", perf.SpecTableIDLegacy},
			{"EngineStep", perf.EngineStep},
		} {
			rep.Benchmarks[b.name] = measure(b.name, b.body)
		}
		rep.Speedups = map[string]float64{
			"SignalPipeline": round2(rep.Benchmarks["SignalPipelineLegacy"].NsPerOp /
				rep.Benchmarks["SignalPipeline"].NsPerOp),
			"SpecTableID": round2(rep.Benchmarks["SpecTableIDLegacy"].NsPerOp /
				rep.Benchmarks["SpecTableID"].NsPerOp),
			"EngineStepVsSeed": round2(seedEngineStep.NsPerOp /
				rep.Benchmarks["EngineStep"].NsPerOp),
		}
		summary = fmt.Sprintf("signal pipeline %.2fx, spec table %.2fx, engine step %.2fx vs seed",
			rep.Speedups["SignalPipeline"], rep.Speedups["SpecTableID"],
			rep.Speedups["EngineStepVsSeed"])
	case 3:
		rep.Description = "streaming wire protocol v2: windowed batched execution + delta-coded summary uplink"
		for _, b := range []struct {
			name string
			body func(*testing.B)
		}{
			{"TransportLockstep", perf.TransportLockstep},
			{"TransportWindowedBatch", perf.TransportWindowedBatch},
		} {
			rep.Benchmarks[b.name] = measure(b.name, b.body)
		}
		lock := rep.Benchmarks["TransportLockstep"]
		batch := rep.Benchmarks["TransportWindowedBatch"]
		rep.Speedups = map[string]float64{
			"TransportRoundTrips":  round2(batch.RoundTripsPerSec / lock.RoundTripsPerSec),
			"TransportUplinkBytes": round2(lock.UplinkBytesPerExec / batch.UplinkBytesPerExec),
		}
		summary = fmt.Sprintf("round trips %.2fx, uplink bytes %.2fx fewer",
			rep.Speedups["TransportRoundTrips"], rep.Speedups["TransportUplinkBytes"])
	case 5:
		rep.Description = "shared fleet state: snapshot relation graph, bitmap coverage, lock-free kcov hot path"
		benches := []struct {
			name string
			body func(*testing.B)
		}{
			{"Fleet1", perf.Fleet1},
			{"Fleet2", perf.Fleet2},
			{"Fleet4", perf.Fleet4},
			{"Fleet8", perf.Fleet8},
			{"FleetLegacy1", perf.FleetLegacy1},
			{"FleetLegacy2", perf.FleetLegacy2},
			{"FleetLegacy4", perf.FleetLegacy4},
			{"FleetLegacy8", perf.FleetLegacy8},
			{"CollectorHit", perf.CollectorHit},
			{"CollectorHitLegacy", perf.CollectorHitLegacy},
		}
		if *short {
			benches = []struct {
				name string
				body func(*testing.B)
			}{
				{"Fleet8", perf.Fleet8},
				{"FleetLegacy8", perf.FleetLegacy8},
				{"CollectorHit", perf.CollectorHit},
				{"CollectorHitLegacy", perf.CollectorHitLegacy},
			}
		}
		for _, b := range benches {
			rep.Benchmarks[b.name] = measure(b.name, b.body)
		}
		rep.Speedups = map[string]float64{
			"Fleet8ExecsPerSec": round2(rep.Benchmarks["Fleet8"].ExecsPerSec /
				rep.Benchmarks["FleetLegacy8"].ExecsPerSec),
			"CollectorHit": round2(rep.Benchmarks["CollectorHitLegacy"].NsPerOp /
				rep.Benchmarks["CollectorHit"].NsPerOp),
		}
		if !*short {
			rep.Speedups["Fleet1ExecsPerSec"] = round2(rep.Benchmarks["Fleet1"].ExecsPerSec /
				rep.Benchmarks["FleetLegacy1"].ExecsPerSec)
		}
		summary = fmt.Sprintf("8-engine fleet %.2fx execs/sec, collector hit %.2fx",
			rep.Speedups["Fleet8ExecsPerSec"], rep.Speedups["CollectorHit"])
	case 6:
		rep.Description = "copy-on-write device snapshot/restore: O(dirty-state) reset instead of full reboot"
		benches := []struct {
			name string
			body func(*testing.B)
		}{
			{"ResetReboot", perf.ResetReboot},
			{"ResetLightDirty", perf.ResetLightDirty},
			{"ResetHeavyDirty", perf.ResetHeavyDirty},
		}
		// The suite is already only three points; -short keeps all of them
		// (the CI smoke run asserts the same speedup floor as the full run).
		for _, b := range benches {
			rep.Benchmarks[b.name] = measure(b.name, b.body)
		}
		reboot := rep.Benchmarks["ResetReboot"]
		rep.Speedups = map[string]float64{
			"ResetLightDirty": round2(reboot.NsPerOp /
				rep.Benchmarks["ResetLightDirty"].NsPerOp),
			"ResetHeavyDirty": round2(reboot.NsPerOp /
				rep.Benchmarks["ResetHeavyDirty"].NsPerOp),
		}
		summary = fmt.Sprintf("light-dirty restore %.2fx, heavy-dirty restore %.2fx vs reboot",
			rep.Speedups["ResetLightDirty"], rep.Speedups["ResetHeavyDirty"])
	case 7:
		rep.Description = "runtime-parameter dimension: param-gated coverage vs the ioctl-only ablation"
		// Two points either way; -short keeps both (the comparison IS the
		// suite).
		for _, b := range []struct {
			name string
			body func(*testing.B)
		}{
			{"ParamCampaign", perf.ParamCampaign},
			{"ParamCampaignIoctlOnly", perf.ParamCampaignIoctlOnly},
		} {
			rep.Benchmarks[b.name] = measure(b.name, b.body)
		}
		full := rep.Benchmarks["ParamCampaign"]
		donly := rep.Benchmarks["ParamCampaignIoctlOnly"]
		rep.Speedups = map[string]float64{
			"KernelCoverVsIoctlOnly": round2(full.KernelCovPerRun / donly.KernelCovPerRun),
		}
		summary = fmt.Sprintf("gated sysfs sites %.0f/run vs %.0f ioctl-only, kernel cover %.2fx",
			full.GatedPCsPerRun, donly.GatedPCsPerRun,
			rep.Speedups["KernelCoverVsIoctlOnly"])
	case 8:
		rep.Description = "portable checkpoints: hot-device cloning, lineage fan-out, pristine-reset overhead"
		benches := []struct {
			name string
			body func(*testing.B)
		}{
			{"BootStandup8", perf.BootStandup8},
			{"CloneStandup8", perf.CloneStandup8},
			{"FlatPrefixReexec", perf.FlatPrefixReexec},
			{"LineageFanout", perf.LineageFanout},
			{"NeverResetExec", perf.NeverResetExec},
			{"PristineExec", perf.PristineExec},
			// ResetLightDirty rides along as the bound for the pristine
			// overhead: exec mode pays one light restore per execution.
			{"ResetLightDirty", perf.ResetLightDirty},
		}
		if *short {
			// The CI smoke run keeps the three comparisons but drops the
			// engine-level pristine pair (its 200-exec warm-up dominates a
			// short benchtime); the broker pairs assert the same floors.
			benches = []struct {
				name string
				body func(*testing.B)
			}{
				{"BootStandup8", perf.BootStandup8},
				{"CloneStandup8", perf.CloneStandup8},
				{"FlatPrefixReexec", perf.FlatPrefixReexec},
				{"LineageFanout", perf.LineageFanout},
			}
		}
		for _, b := range benches {
			rep.Benchmarks[b.name] = measure(b.name, b.body)
		}
		rep.Speedups = map[string]float64{
			"CloneStandup": round2(rep.Benchmarks["BootStandup8"].NsPerOp /
				rep.Benchmarks["CloneStandup8"].NsPerOp),
			"LineageFanout": round2(rep.Benchmarks["LineageFanout"].ExecsPerSec /
				rep.Benchmarks["FlatPrefixReexec"].ExecsPerSec),
		}
		summary = fmt.Sprintf("clone standup %.2fx, lineage fan-out %.2fx execs/sec",
			rep.Speedups["CloneStandup"], rep.Speedups["LineageFanout"])
		if !*short {
			overhead := rep.Benchmarks["PristineExec"].NsPerOp -
				rep.Benchmarks["NeverResetExec"].NsPerOp
			rep.Speedups["PristineOverheadNsPerExec"] = round2(overhead)
			rep.Speedups["PristineOverheadVsLightRestore"] = round2(overhead /
				rep.Benchmarks["ResetLightDirty"].NsPerOp)
			summary += fmt.Sprintf(", pristine overhead %.2fx light restore",
				rep.Speedups["PristineOverheadVsLightRestore"])
		}
	case 10:
		rep.Description = "distributed fleet: latency-bound multi-host scaling + delta-coded federation uplink"
		benches := []struct {
			name string
			body func(*testing.B)
		}{
			{"FedHost1", perf.FedHost1},
			{"FedHost2", perf.FedHost2},
			{"FedHost4", perf.FedHost4},
			{"FedUplinkDelta", perf.FedUplinkDelta},
			{"FedUplinkFull", perf.FedUplinkFull},
		}
		if *short {
			// The smoke run keeps the 2-vs-1 scaling pair and the uplink
			// pair — the two floors CI asserts — and drops the 4-host point.
			benches = []struct {
				name string
				body func(*testing.B)
			}{
				{"FedHost1", perf.FedHost1},
				{"FedHost2", perf.FedHost2},
				{"FedUplinkDelta", perf.FedUplinkDelta},
				{"FedUplinkFull", perf.FedUplinkFull},
			}
		}
		for _, b := range benches {
			rep.Benchmarks[b.name] = measure(b.name, b.body)
		}
		rep.Speedups = map[string]float64{
			"Fed2HostExecsPerSec": round2(rep.Benchmarks["FedHost2"].ExecsPerSec /
				rep.Benchmarks["FedHost1"].ExecsPerSec),
			"FedUplinkBytesVsFull": round2(rep.Benchmarks["FedUplinkFull"].UplinkBytesPerEpoch /
				rep.Benchmarks["FedUplinkDelta"].UplinkBytesPerEpoch),
		}
		if !*short {
			rep.Speedups["Fed4HostExecsPerSec"] = round2(rep.Benchmarks["FedHost4"].ExecsPerSec /
				rep.Benchmarks["FedHost1"].ExecsPerSec)
		}
		summary = fmt.Sprintf("2-host fleet %.2fx execs/sec, federation uplink %.2fx fewer bytes/epoch",
			rep.Speedups["Fed2HostExecsPerSec"], rep.Speedups["FedUplinkBytesVsFull"])
	default:
		fmt.Fprintf(os.Stderr, "benchperf: unknown -pr %d (want 1, 3, 5, 6, 7, 8 or 10)\n", *pr)
		os.Exit(1)
	}

	path := *out
	if path == "" {
		path = fmt.Sprintf("BENCH_PR%d.json", *pr)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchperf: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchperf: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%s)\n", path, summary)
}

func round2(v float64) float64 { return float64(int(v*100+0.5)) / 100 }
