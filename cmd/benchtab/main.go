// Command benchtab regenerates the paper's evaluation artifacts: Table I
// (device list), Table II (bug detection), Figure 3 (probing), Figure 4
// (coverage vs Syzkaller), Figure 5 (coverage vs Difuze and DroidFuzz-D),
// and Table III (ablations).
//
// Usage:
//
//	benchtab -all                # everything at full scale
//	benchtab -table 2 -quick     # one artifact at the quick scale
//	benchtab -figure 4
package main

import (
	"flag"
	"fmt"
	"os"

	"droidfuzz/internal/bench"
)

func main() {
	var (
		table  = flag.Int("table", 0, "regenerate table 1, 2, or 3")
		figure = flag.Int("figure", 0, "regenerate figure 3, 4, or 5")
		all    = flag.Bool("all", false, "regenerate every table and figure")
		quick  = flag.Bool("quick", false, "use the reduced quick scale")
	)
	flag.Parse()

	sc := bench.DefaultScale()
	if *quick {
		sc = bench.QuickScale()
	}
	if !*all && *table == 0 && *figure == 0 {
		flag.Usage()
		os.Exit(2)
	}

	if err := run(sc, *table, *figure, *all); err != nil {
		fmt.Fprintln(os.Stderr, "benchtab:", err)
		os.Exit(1)
	}
}

func run(sc bench.Scale, table, figure int, all bool) error {
	if all || table == 1 {
		fmt.Println(bench.Table1())
	}
	if all || figure == 3 {
		for _, dev := range []string{"A1", "A2"} {
			r, err := bench.RunFigure3(dev)
			if err != nil {
				return err
			}
			fmt.Println(r.Render())
		}
	}
	if all || table == 2 {
		r, err := bench.RunTable2(sc)
		if err != nil {
			return err
		}
		fmt.Println(r.Render())
	}
	if all || figure == 4 {
		r, err := bench.RunFigure4(sc)
		if err != nil {
			return err
		}
		fmt.Println(r.Render())
	}
	if all || figure == 5 {
		r, err := bench.RunFigure5(sc)
		if err != nil {
			return err
		}
		fmt.Println(r.Render())
	}
	if all || table == 3 {
		r, err := bench.RunTable3(sc)
		if err != nil {
			return err
		}
		fmt.Println(r.Render())
	}
	return nil
}
