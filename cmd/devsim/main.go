// Command devsim boots a virtual device, runs the probing pass, and serves
// its execution broker over TCP using the ADB-stand-in transport, so a
// remote host process can execute DSL programs against it — the deployment
// split of paper §IV-A (host-side engine, device-side broker).
//
// Usage:
//
//	devsim -device A1 -listen 127.0.0.1:7045
package main

import (
	"flag"
	"fmt"
	"net"
	"os"

	"droidfuzz/internal/adb"
	"droidfuzz/internal/device"
	"droidfuzz/internal/dsl"
	"droidfuzz/internal/probe"
)

func main() {
	var (
		deviceID = flag.String("device", "A1", "device model ID")
		listen   = flag.String("listen", "127.0.0.1:7045", "TCP listen address")
	)
	flag.Parse()

	if err := run(*deviceID, *listen); err != nil {
		fmt.Fprintln(os.Stderr, "devsim:", err)
		os.Exit(1)
	}
}

func run(deviceID, listen string) error {
	model, err := device.ModelByID(deviceID)
	if err != nil {
		return err
	}
	dev := device.New(model)
	target, err := dsl.NewTarget(dev.SyscallDescs()...)
	if err != nil {
		return err
	}
	pr, err := probe.Run(dev, probe.Options{})
	if err != nil {
		return err
	}
	target, err = target.Extend(pr.Interfaces...)
	if err != nil {
		return err
	}
	broker := adb.NewBroker(dev, target)
	seeds := make([]string, len(pr.Seeds))
	for i, p := range pr.Seeds {
		seeds[i] = p.String()
	}
	srv := &adb.Server{X: broker, Seeds: seeds}

	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	fmt.Printf("devsim: %s (%s) with %d callable interfaces listening on %s\n",
		model.ID, model.Name, len(target.Calls()), ln.Addr())
	return srv.ServeTCP(ln)
}
