// Command droidbrokerd is the remote broker daemon: it boots one or more
// virtual device models, runs the device-side probing pass on each, and
// serves each device's execution broker on its own TCP port using the
// ADB-stand-in transport — the device farm half of the paper's deployment
// shape (§IV-A, host-side engine per remote device). A droidfleet host
// dials the ports with -remote and drives full campaigns over the wire.
//
// Usage:
//
//	droidbrokerd -devices A1,B -listen 127.0.0.1:7100
//
// Device i listens on the base port + i; the daemon prints each binding and
// a final "ready" line once every listener is up, then serves until
// SIGINT/SIGTERM, which closes the listeners and exits cleanly.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"slices"
	"strconv"
	"strings"
	"syscall"

	"droidfuzz/internal/adb"
	"droidfuzz/internal/device"
	"droidfuzz/internal/dsl"
	"droidfuzz/internal/feedback"
	"droidfuzz/internal/probe"
)

func main() {
	var (
		devices = flag.String("devices", "A1", "comma-separated device model IDs, one broker per device")
		listen  = flag.String("listen", "127.0.0.1:7100", "base TCP address; device i listens on port+i")
	)
	flag.Parse()

	if err := run(*devices, *listen); err != nil {
		fmt.Fprintln(os.Stderr, "droidbrokerd:", err)
		os.Exit(1)
	}
}

// parseDevices validates the -devices flag against the Table I models.
func parseDevices(devices string) ([]string, error) {
	valid := device.IDs()
	var ids []string
	for _, id := range strings.Split(devices, ",") {
		id = strings.TrimSpace(id)
		if id == "" {
			continue
		}
		if !slices.Contains(valid, id) {
			return nil, fmt.Errorf("unknown device model %q (valid: %s)",
				id, strings.Join(valid, ", "))
		}
		ids = append(ids, id)
	}
	if len(ids) == 0 {
		return nil, fmt.Errorf("no devices configured (valid: %s)", strings.Join(valid, ", "))
	}
	return ids, nil
}

func run(devices, listen string) error {
	ids, err := parseDevices(devices)
	if err != nil {
		return err
	}
	host, portStr, err := net.SplitHostPort(listen)
	if err != nil {
		return fmt.Errorf("bad -listen address %q: %w", listen, err)
	}
	basePort, err := strconv.Atoi(portStr)
	if err != nil {
		return fmt.Errorf("bad -listen port %q: %w", portStr, err)
	}

	var listeners []net.Listener
	defer func() {
		for _, ln := range listeners {
			ln.Close()
		}
	}()
	done := make(chan error, len(ids))
	for i, id := range ids {
		srv, model, nIfaces, err := buildServer(id)
		if err != nil {
			return fmt.Errorf("boot %s: %w", id, err)
		}
		addr := net.JoinHostPort(host, strconv.Itoa(basePort+i))
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			return fmt.Errorf("listen %s: %w", addr, err)
		}
		listeners = append(listeners, ln)
		fmt.Printf("droidbrokerd: %s (%s) listening on %s (%d interfaces, %d seeds)\n",
			model.ID, model.Name, ln.Addr(), nIfaces, len(srv.Seeds))
		go func() { done <- srv.ServeTCP(ln) }()
	}
	fmt.Println("droidbrokerd: ready")

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Printf("droidbrokerd: %v, shutting down\n", s)
		return nil
	case err := <-done:
		return fmt.Errorf("serve: %w", err)
	}
}

// buildServer boots one device, probes its HALs, and wraps the attached
// broker plus the distilled seed workloads as a transport server — the
// exact attach sequence the in-process path performs, so a remote engine
// sees the same target surface and corpus bootstrap.
func buildServer(modelID string) (*adb.Server, device.Model, int, error) {
	model, err := device.ModelByID(modelID)
	if err != nil {
		return nil, device.Model{}, 0, err
	}
	dev := device.New(model)
	target, err := dsl.NewTarget(dev.SyscallDescs()...)
	if err != nil {
		return nil, model, 0, err
	}
	pr, err := probe.Run(dev, probe.Options{})
	if err != nil {
		return nil, model, 0, err
	}
	target, err = target.Extend(pr.Interfaces...)
	if err != nil {
		return nil, model, 0, err
	}
	seeds := make([]string, len(pr.Seeds))
	for i, p := range pr.Seeds {
		seeds[i] = p.String()
	}
	broker := adb.NewBroker(dev, target)
	srv := &adb.Server{X: broker, Seeds: seeds}
	// One uplink filter per served connection: summary-mode batches ship
	// full traces only for executions that produced new signal against the
	// connection's accumulated view (interesting-only uplink).
	srv.NewFilter = func() adb.UplinkFilter { return feedback.NewUplinkFilter(target) }
	return srv, model, len(target.Calls()), nil
}
