// Command droidcoordd runs the fleet coordinator: it shards one campaign
// across registering droidfleet hosts, hands shards out with work stealing,
// evicts hosts that go silent (requeuing their shards warm, checkpoint and
// all), and federates the fleet's learned state — corpus admissions
// deduplicated by canonical-text hash and delta-coded relation learn
// records merged into one journal.
//
// Usage:
//
//	droidcoordd -listen :7200 -hosts 2 -models A1,B -shards 4
//	            -devices 2 -iters 20000 [-epoch 256] [-seed 1]
//	            [-evict-after 10s] [-linger 30s]
//
// Hosts connect with `droidfleet -coord <addr>`. The coordinator exits once
// every shard has completed and the live hosts' federation cursors have
// drained (bounded by -linger), printing the campaign summary: per-host
// execution/steal counts, eviction count, federated corpus size and
// fingerprint, and the merged relation graph.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"strings"
	"time"

	"droidfuzz/internal/coord"
	"droidfuzz/internal/device"
)

func main() {
	var (
		listen     = flag.String("listen", ":7200", "TCP address to serve hosts on")
		hosts      = flag.Int("hosts", 2, "expected fleet size (shards are pre-partitioned across this many hosts)")
		models     = flag.String("models", "A1,B", "comma-separated device model IDs, assigned to shards round-robin")
		shards     = flag.Int("shards", 0, "total shard count (0 = one per model)")
		devices    = flag.Int("devices", 1, "devices per shard")
		iters      = flag.Int("iters", 20000, "fuzzing iterations per device per shard")
		epoch      = flag.Int("epoch", 256, "federation cadence: iterations per device between uplink/downlink exchanges")
		seed       = flag.Int64("seed", 1, "campaign base seed (each device gets a disjoint derived seed)")
		evictAfter = flag.Duration("evict-after", 10*time.Second, "silence window after which a host is evicted and its shards requeued")
		linger     = flag.Duration("linger", 30*time.Second, "how long to wait after campaign completion for hosts to drain the final federation delta")
	)
	flag.Parse()
	if err := run(*listen, *models, *hosts, *shards, *devices, *iters, *epoch, *seed, *evictAfter, *linger); err != nil {
		fmt.Fprintln(os.Stderr, "droidcoordd:", err)
		os.Exit(1)
	}
}

func run(listen, models string, hosts, shards, devices, iters, epoch int, seed int64, evictAfter, linger time.Duration) error {
	var ids []string
	valid := device.IDs()
	for _, part := range strings.Split(models, ",") {
		if part = strings.TrimSpace(part); part == "" {
			continue
		}
		ok := false
		for _, v := range valid {
			if v == part {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("unknown device model %q (valid: %s)", part, strings.Join(valid, ", "))
		}
		ids = append(ids, part)
	}

	c, err := coord.New(coord.Campaign{
		Models: ids, Shards: shards, Devices: devices,
		Iters: iters, Seed: seed, EpochIters: epoch,
	}, coord.Options{Hosts: hosts, EvictAfter: evictAfter})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	defer ln.Close()
	srv := &coord.Server{C: c}
	go srv.ServeTCP(ln)

	st, _ := c.Snapshot()
	fmt.Printf("coordinator: %s serving %d shards (%s, %d devices each, %d iters, epoch %d) for %d hosts\n",
		ln.Addr(), st.ShardsTotal, strings.Join(ids, ","), devices, iters, epoch, hosts)

	// Maintenance ticker: eviction (and with it campaign-complete /
	// stranded-campaign detection) must not depend on hosts calling in —
	// a fleet that crashed wholesale never sends another RPC, and without
	// this timer the coordinator would print progress lines forever.
	maintEvery := evictAfter / 2
	if maintEvery < 100*time.Millisecond {
		maintEvery = 100 * time.Millisecond
	}
	maint := time.NewTicker(maintEvery)
	defer maint.Stop()
	progress := time.NewTicker(5 * time.Second)
	defer progress.Stop()
	for {
		select {
		case <-c.Done():
		case <-maint.C:
			c.Tick()
			continue
		case <-progress.C:
			st, hs := c.Snapshot()
			fmt.Printf("  shards %d/%d done, hosts %d live/%d, steals=%d evictions=%d corpus=%d\n",
				st.ShardsDone, st.ShardsTotal, st.Live, st.Hosts, st.Steals, st.Evictions, st.CorpusSize)
			_ = hs
			continue
		}
		break
	}

	if st, _ := c.Snapshot(); st.Stranded {
		return fmt.Errorf("campaign stranded: all %d registered hosts evicted with %d/%d shards done",
			st.Hosts, st.ShardsDone, st.ShardsTotal)
	}

	// Campaign done; give hosts the linger window to drain the final
	// federation delta before the listener goes away.
	deadline := time.Now().Add(linger)
	for !c.Drained() && time.Now().Before(deadline) {
		time.Sleep(50 * time.Millisecond)
	}

	st, hostRows := c.Snapshot()
	fmt.Println()
	fmt.Printf("campaign complete: %d shards, %d steals, %d evictions\n",
		st.ShardsDone, st.Steals, st.Evictions)
	fmt.Printf("federation: corpus=%d fingerprint=%#x journal=%d ops, %dB in / %dB out\n",
		st.CorpusSize, st.CorpusFingerprint, st.LearnOps, st.BytesIn, st.BytesOut)
	fmt.Printf("merged relations: %v\n", c.Merged())
	for _, h := range hostRows {
		state := "live"
		if h.Evicted {
			state = "evicted"
		}
		fmt.Printf("  %-4s %-12s %-8s execs=%d steals=%d health=%.2f\n",
			h.ID, h.Name, state, h.Execs, h.Steals, h.Health)
	}
	if !c.Drained() {
		fmt.Println("warning: some hosts did not drain the final federation delta before -linger expired")
	}
	return nil
}
