// Command droidcov runs a fuzzing campaign and prints the per-driver
// kernel-coverage breakdown — the accounting behind the paper's "per-driver
// coverage increased 17% on average" claim — optionally against a second
// fuzzer variant for a side-by-side comparison.
//
// Usage:
//
//	droidcov -device A1 -iters 20000
//	droidcov -device A1 -iters 20000 -compare syzkaller
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"droidfuzz/internal/bench"
)

func main() {
	var (
		deviceID = flag.String("device", "A1", "device model ID")
		iters    = flag.Int("iters", 20000, "fuzzing iterations")
		seed     = flag.Int64("seed", 1, "RNG seed")
		compare  = flag.String("compare", "syzkaller", "variant to compare against (syzkaller|norel|nohcov|dfd|difuze|none)")
	)
	flag.Parse()

	if err := run(*deviceID, *iters, *seed, *compare); err != nil {
		fmt.Fprintln(os.Stderr, "droidcov:", err)
		os.Exit(1)
	}
}

func kindFor(name string) (bench.FuzzerKind, error) {
	switch name {
	case "syzkaller":
		return bench.SyzkallerLike, nil
	case "norel":
		return bench.DroidFuzzNoRel, nil
	case "nohcov":
		return bench.DroidFuzzNoHCov, nil
	case "dfd":
		return bench.DroidFuzzD, nil
	case "difuze":
		return bench.DifuzeLike, nil
	default:
		return 0, fmt.Errorf("unknown variant %q", name)
	}
}

func run(deviceID string, iters int, seed int64, compare string) error {
	df, err := bench.RunCampaign(bench.CampaignConfig{
		ModelID: deviceID, Fuzzer: bench.DroidFuzz, Iters: iters, Seed: seed,
	})
	if err != nil {
		return err
	}

	var other *bench.CampaignResult
	if compare != "none" {
		kind, err := kindFor(compare)
		if err != nil {
			return err
		}
		other, err = bench.RunCampaign(bench.CampaignConfig{
			ModelID: deviceID, Fuzzer: kind, Iters: iters, Seed: seed,
		})
		if err != nil {
			return err
		}
	}

	mods := make([]string, 0, len(df.PerDriver))
	for m := range df.PerDriver {
		mods = append(mods, m)
	}
	sort.Strings(mods)

	fmt.Printf("per-driver kernel coverage on %s after %d iterations:\n\n", deviceID, iters)
	if other == nil {
		fmt.Printf("%-10s %s\n", "driver", "DroidFuzz")
		for _, m := range mods {
			fmt.Printf("%-10s %d\n", m, df.PerDriver[m])
		}
		fmt.Printf("%-10s %d\n", "total", df.KernelCov)
		return nil
	}

	fmt.Printf("%-10s %-10s %-10s %s\n", "driver", "DroidFuzz", other.Fuzzer, "gain")
	var gainSum float64
	for _, m := range mods {
		a, b := df.PerDriver[m], other.PerDriver[m]
		gain := 0.0
		if b > 0 {
			gain = 100 * float64(a-b) / float64(b)
		}
		gainSum += gain
		fmt.Printf("%-10s %-10d %-10d %+.0f%%\n", m, a, b, gain)
	}
	fmt.Printf("%-10s %-10d %-10d\n", "total", df.KernelCov, other.KernelCov)
	fmt.Printf("\naverage per-driver gain: %+.1f%% (paper's §I claim: +17%%)\n",
		gainSum/float64(len(mods)))
	return nil
}
