// Command droidfleet runs one campaign across a fleet of virtual device
// models through the daemon: engines share a relation table and a global
// crash dedup collector, and run concurrently on a bounded worker pool.
//
// Usage:
//
//	droidfleet -devices A1,B,D -iters 20000 [-seed 1] [-workers 4]
//	           [-pipeline 4] [-rounds 4] [-corpus DIR] [-status status.json]
//
// -workers bounds how many device engines run at once (0 = one worker per
// CPU, capped at the fleet size). -pipeline sets each engine's generation
// look-ahead depth (0 = serial per-device execution, deterministic per
// seed). The campaign runs in -rounds slices, printing fleet stats —
// including accumulated execution errors — after each.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"droidfuzz/internal/crash"
	"droidfuzz/internal/daemon"
	"droidfuzz/internal/engine"
)

func main() {
	var (
		devices   = flag.String("devices", "A1,B,D", "comma-separated device model IDs")
		iters     = flag.Int("iters", 20000, "fuzzing iterations per device")
		seed      = flag.Int64("seed", 1, "base RNG seed (device i uses seed+i)")
		workers   = flag.Int("workers", 0, "max concurrent device engines (0 = NumCPU)")
		pipeline  = flag.Int("pipeline", 0, "per-engine generation look-ahead depth (0 = serial)")
		rounds    = flag.Int("rounds", 4, "status-report slices to split the campaign into")
		corpusDir = flag.String("corpus", "", "directory to save per-device corpora (optional)")
		statusOut = flag.String("status", "", "file to write the final JSON status report (optional)")
	)
	flag.Parse()

	if err := run(*devices, *iters, *seed, *workers, *pipeline, *rounds, *corpusDir, *statusOut); err != nil {
		fmt.Fprintln(os.Stderr, "droidfleet:", err)
		os.Exit(1)
	}
}

func run(devices string, iters int, seed int64, workers, pipeline, rounds int, corpusDir, statusOut string) error {
	d := daemon.New()
	ids := strings.Split(devices, ",")
	for i, id := range ids {
		id = strings.TrimSpace(id)
		if id == "" {
			continue
		}
		if err := d.AddDevice(id, engine.Config{Seed: seed + int64(i)}); err != nil {
			return err
		}
	}
	if len(d.Devices()) == 0 {
		return fmt.Errorf("no devices configured")
	}
	d.SetMaxWorkers(workers)
	d.SetPipelineDepth(pipeline)
	fmt.Printf("fleet: %s (workers=%d pipeline=%d)\n",
		strings.Join(d.Devices(), ", "), workers, pipeline)

	if rounds <= 0 {
		rounds = 1
	}
	per := iters / rounds
	if per == 0 {
		per, rounds = iters, 1
	}
	for r := 0; r < rounds; r++ {
		n := per
		if r == rounds-1 {
			n = iters - per*(rounds-1)
		}
		d.Run(n, true)
		printStats(d)
	}

	fmt.Println()
	fmt.Println(crash.Table(d.Bugs()))
	fmt.Printf("relation table: %v\n", d.Graph())
	if corpusDir != "" {
		if err := d.SaveCorpora(corpusDir); err != nil {
			return err
		}
		fmt.Printf("corpora saved to %s\n", corpusDir)
	}
	if statusOut != "" {
		f, err := os.Create(statusOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := d.WriteStatus(f); err != nil {
			return err
		}
		fmt.Printf("status written to %s\n", statusOut)
	}
	return nil
}

func printStats(d *daemon.Daemon) {
	st := d.Stats()
	ids := make([]string, 0, len(st))
	for id := range st {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		s := st[id]
		fmt.Printf("  %-3s execs=%d cover=%d signal=%d corpus=%d crashes=%d execerrs=%d\n",
			id, s.Execs, s.KernelCov, s.TotalSignal, s.CorpusSize, s.Crashes, s.ExecErrors)
	}
}
