// Command droidfleet runs one campaign across a fleet of virtual device
// models through the daemon: engines share a relation table and a global
// crash dedup collector, and run concurrently on a bounded worker pool.
//
// Usage:
//
//	droidfleet -devices A1,B,D -iters 20000 [-seed 1] [-workers 4]
//	           [-pipeline 4] [-batch 32] [-window 8] [-params]
//	           [-reset never|exec|batch] [-lineage K] [-lineage-len L]
//	           [-rounds 4] [-corpus DIR] [-status status.json]
//	droidfleet -remote 127.0.0.1:7100,127.0.0.1:7101 -iters 20000 ...
//	droidfleet -coord 127.0.0.1:7200 [-host-name lab-3] ...
//
// -workers bounds how many device engines run at once (0 = one worker per
// CPU, capped at the fleet size). -pipeline sets each engine's generation
// look-ahead depth (0 = serial per-device execution, deterministic per
// seed). -batch makes pipelined engines execute programs in batches of
// that size through the executors' batch extension; with -remote that is
// the wire-protocol-v2 fast path — batched frames, delta-coded traces, and
// the interesting-only summary uplink — and -window bounds how many frames
// each connection keeps in flight. The campaign runs in -rounds slices,
// printing fleet stats — including accumulated execution errors — after
// each, plus per-connection uplink byte savings for remote campaigns.
//
// -params enables the runtime-parameter dimension: probing discovers
// writable sysfs knobs, the targets gain their write descriptions, and the
// relation graph learns knob↔ioctl couplings; the status report then
// carries the fleet-wide param-write count. Off by default — campaigns
// without it are bit-identical to pre-params builds.
//
// -reset selects the pristine-reset campaign mode: "never" (default)
// resets only on crash fallout, "exec" snapshot-restores before every
// unbatched execution so each program runs against pristine state, and
// "batch" restores once per execution batch. -lineage K forks K cloned
// mutation lineages from the post-prefix device state whenever a program
// is admitted with new kernel coverage, and -lineage-len bounds each
// lineage's mutation chain (0 = the engine default). Both ride the
// checkpoint Export/Import path, so they work unchanged against -remote
// brokers; the status report gains the fleet-wide lineage_execs count.
//
// With -remote, the fleet drives broker daemons (droidbrokerd) over TCP
// instead of booting devices in-process: each address is dialed through a
// resilient reconnecting client, the attach handshake delivers the
// device's interface surface and probing seeds, and a broker that dies
// mid-campaign degrades only its own engine (visible as execerrs) while
// the rest of the fleet finishes.
//
// With -coord, this process becomes one host of a multi-host fleet: it
// registers with a droidcoordd coordinator, leases campaign shards (models,
// seed ranges, and iteration budgets come from the coordinator — the local
// -devices/-iters/-seed flags are ignored), runs them with work stealing,
// and exchanges federation deltas every epoch. The status report gains the
// fleet block (host ID, shard epochs, federation bytes, steals, and the
// converged corpus fingerprint).
package main

import (
	"flag"
	"fmt"
	"os"
	"slices"
	"sort"
	"strings"
	"time"

	"droidfuzz/internal/adb"
	"droidfuzz/internal/coord"
	"droidfuzz/internal/crash"
	"droidfuzz/internal/daemon"
	"droidfuzz/internal/device"
	"droidfuzz/internal/dsl"
	"droidfuzz/internal/engine"
)

func main() {
	var (
		devices   = flag.String("devices", "A1,B,D", "comma-separated device model IDs (ignored with -remote/-coord)")
		remote    = flag.String("remote", "", "comma-separated droidbrokerd addresses to drive instead of in-process devices")
		coordAddr = flag.String("coord", "", "droidcoordd address: join a multi-host fleet as one coordinated host")
		hostName  = flag.String("host-name", "", "advisory host label sent to the coordinator (default: os hostname)")
		iters     = flag.Int("iters", 20000, "fuzzing iterations per device")
		seed      = flag.Int64("seed", 1, "base RNG seed (device i uses seed+i)")
		workers   = flag.Int("workers", 0, "max concurrent device engines (0 = NumCPU)")
		pipeline  = flag.Int("pipeline", 0, "per-engine generation look-ahead depth (0 = serial)")
		batch     = flag.Int("batch", 0, "programs per execution batch (0 = per-program execution; needs -pipeline)")
		window    = flag.Int("window", 0, "in-flight requests per remote connection (0 = transport default)")
		rounds    = flag.Int("rounds", 4, "status-report slices to split the campaign into")
		params     = flag.Bool("params", false, "enable the runtime-parameter dimension (sysfs knob writes in the mutation surface)")
		reset      = flag.String("reset", "never", "pristine-reset campaign mode: never, exec, or batch")
		lineage    = flag.Int("lineage", 0, "lineage fan-out width K: clone the post-prefix state K ways per new-coverage admission (0 = off)")
		lineageLen = flag.Int("lineage-len", 0, "mutations per lineage (0 = engine default)")
		corpusDir  = flag.String("corpus", "", "directory to save per-device corpora (optional)")
		statusOut  = flag.String("status", "", "file to write the final JSON status report (optional)")
	)
	flag.Parse()
	if !engine.ValidResetMode(*reset) {
		fmt.Fprintf(os.Stderr, "droidfleet: invalid -reset %q (want never, exec, or batch)\n", *reset)
		os.Exit(2)
	}

	cfg := fleetConfig{
		devices: *devices, remote: *remote,
		coord: *coordAddr, hostName: *hostName,
		iters: *iters, seed: *seed, workers: *workers,
		pipeline: *pipeline, batch: *batch, window: *window,
		rounds: *rounds, params: *params,
		reset: *reset, lineage: *lineage, lineageLen: *lineageLen,
		corpusDir: *corpusDir, statusOut: *statusOut,
	}
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "droidfleet:", err)
		os.Exit(1)
	}
}

type fleetConfig struct {
	devices   string
	remote    string
	coord     string
	hostName  string
	iters     int
	seed      int64
	workers   int
	pipeline  int
	batch     int
	window    int
	rounds     int
	params     bool
	reset      string
	lineage    int
	lineageLen int
	corpusDir  string
	statusOut  string
}

// validate rejects flag values that would silently misbehave: negative
// budgets and worker counts, and device IDs outside the Table I models.
func (c *fleetConfig) validate() error {
	switch {
	case c.iters < 0:
		return fmt.Errorf("-iters must be >= 0, got %d", c.iters)
	case c.rounds < 0:
		return fmt.Errorf("-rounds must be >= 0, got %d", c.rounds)
	case c.pipeline < 0:
		return fmt.Errorf("-pipeline must be >= 0, got %d", c.pipeline)
	case c.workers < 0:
		return fmt.Errorf("-workers must be >= 0, got %d", c.workers)
	case c.batch < 0:
		return fmt.Errorf("-batch must be >= 0, got %d", c.batch)
	case c.window < 0:
		return fmt.Errorf("-window must be >= 0, got %d", c.window)
	case c.batch > 1 && c.pipeline <= 0:
		return fmt.Errorf("-batch %d needs -pipeline > 0 (batches are fed by the generation look-ahead)", c.batch)
	}
	if c.remote != "" && c.coord != "" {
		return fmt.Errorf("-remote and -coord are mutually exclusive")
	}
	if c.remote != "" || c.coord != "" {
		return nil // device IDs come from the remote handshakes / coordinator
	}
	valid := device.IDs()
	for _, id := range splitList(c.devices) {
		if !slices.Contains(valid, id) {
			return fmt.Errorf("unknown device model %q (valid: %s)",
				id, strings.Join(valid, ", "))
		}
	}
	return nil
}

// splitList splits a comma-separated flag, trimming blanks.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func run(cfg fleetConfig) error {
	if err := cfg.validate(); err != nil {
		return err
	}
	if cfg.coord != "" {
		return runCoordinated(cfg)
	}
	d := daemon.New()
	var remotes map[string]*adb.Resilient
	if cfg.remote != "" {
		var err error
		if remotes, err = attachRemotes(d, cfg); err != nil {
			return err
		}
	} else {
		for i, id := range splitList(cfg.devices) {
			if err := d.AddDevice(id, engine.Config{
				Seed: cfg.seed + int64(i), Params: cfg.params,
				Reset: cfg.reset, LineageK: cfg.lineage, LineageLen: cfg.lineageLen,
			}); err != nil {
				return err
			}
		}
	}
	if len(d.Devices()) == 0 {
		return fmt.Errorf("no devices configured")
	}
	d.SetMaxWorkers(cfg.workers)
	d.SetPipelineDepth(cfg.pipeline)
	d.SetBatchSize(cfg.batch)
	mode := "in-process"
	if cfg.remote != "" {
		mode = "remote"
	}
	fmt.Printf("fleet: %s (%s, workers=%d pipeline=%d batch=%d window=%d)\n",
		strings.Join(d.Devices(), ", "), mode, cfg.workers, cfg.pipeline, cfg.batch, cfg.window)

	rounds := cfg.rounds
	if rounds <= 0 {
		rounds = 1
	}
	per := cfg.iters / rounds
	if per == 0 {
		per, rounds = cfg.iters, 1
	}
	for r := 0; r < rounds; r++ {
		n := per
		if r == rounds-1 {
			n = cfg.iters - per*(rounds-1)
		}
		d.Run(n, true)
		printStats(d)
	}
	printWireStats(remotes)

	fmt.Println()
	fmt.Println(crash.Table(d.Bugs()))
	fmt.Printf("relation table: %v\n", d.Graph())
	if cfg.corpusDir != "" {
		if err := d.SaveCorpora(cfg.corpusDir); err != nil {
			return err
		}
		fmt.Printf("corpora saved to %s\n", cfg.corpusDir)
	}
	if cfg.statusOut != "" {
		f, err := os.Create(cfg.statusOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := d.WriteStatus(f); err != nil {
			return err
		}
		fmt.Printf("status written to %s\n", cfg.statusOut)
	}
	return nil
}

// runCoordinated joins a droidcoordd fleet as one host: shard leases,
// work stealing, and federation epochs all come from the coordinator, and
// the local flags only tune this host's execution layer.
func runCoordinated(cfg fleetConfig) error {
	name := cfg.hostName
	if name == "" {
		name, _ = os.Hostname()
	}
	cl, err := coord.DialClient(cfg.coord, coord.ClientOptions{})
	if err != nil {
		return fmt.Errorf("coordinator %s: %w", cfg.coord, err)
	}
	defer cl.Close()
	h := coord.NewHost(cl, coord.HostOptions{
		Name:           name,
		Workers:        cfg.workers,
		Pipeline:       cfg.pipeline,
		Batch:          cfg.batch,
		HeartbeatEvery: time.Second,
		Engine: engine.Config{
			Params: cfg.params, Reset: cfg.reset,
			LineageK: cfg.lineage, LineageLen: cfg.lineageLen,
		},
	})
	fmt.Printf("fleet: coordinated host %q -> %s (workers=%d pipeline=%d batch=%d)\n",
		name, cfg.coord, cfg.workers, cfg.pipeline, cfg.batch)
	if err := h.Run(); err != nil {
		return err
	}
	d := h.Daemon()
	fmt.Printf("host %s done: %d shard steal(s), corpus fingerprint %#x\n",
		h.ID(), h.Steals(), h.Fingerprint())
	printStats(d)
	fmt.Println()
	fmt.Println(crash.Table(d.Bugs()))
	fmt.Printf("relation table: %v\n", d.Graph())
	if cfg.corpusDir != "" {
		if err := d.SaveCorpora(cfg.corpusDir); err != nil {
			return err
		}
		fmt.Printf("corpora saved to %s\n", cfg.corpusDir)
	}
	if cfg.statusOut != "" {
		f, err := os.Create(cfg.statusOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := d.WriteStatus(f); err != nil {
			return err
		}
		fmt.Printf("status written to %s\n", cfg.statusOut)
	}
	return nil
}

// attachRemotes dials every broker address, runs the attach handshake, and
// wires a resilient engine per device into the daemon. The handshake
// delivers the broker's interface surface (rebuilt and hash-verified
// host-side) and its probing-pass seed programs, so the remote engine
// starts from the same corpus an in-process one would.
func attachRemotes(d *daemon.Daemon, cfg fleetConfig) (map[string]*adb.Resilient, error) {
	addrs := splitList(cfg.remote)
	if len(addrs) == 0 {
		return nil, fmt.Errorf("-remote given but no addresses parsed from %q", cfg.remote)
	}
	remotes := make(map[string]*adb.Resilient, len(addrs))
	seen := make(map[string]int)
	for i, addr := range addrs {
		r, err := adb.DialResilient(addr, adb.ResilientOptions{Window: cfg.window})
		if err != nil {
			return nil, fmt.Errorf("attach %s: %w", addr, err)
		}
		info, _ := r.Info()
		id := info.ModelID
		if id == "" {
			id = addr
		}
		// Several brokers may serve the same model; suffix duplicates so
		// each engine keys its own stats row.
		if n := seen[id]; n > 0 {
			id = fmt.Sprintf("%s#%d", id, n+1)
		}
		seen[info.ModelID]++
		seeds, err := parseSeeds(r.Target(), r.Seeds())
		if err != nil {
			return nil, fmt.Errorf("attach %s: %w", addr, err)
		}
		if err := d.AttachExecutor(id, r, seeds, engine.Config{
			Seed: cfg.seed + int64(i), Params: cfg.params,
			Reset: cfg.reset, LineageK: cfg.lineage, LineageLen: cfg.lineageLen,
		}); err != nil {
			return nil, err
		}
		remotes[id] = r
		fmt.Printf("attached %s: %s (%d interfaces, %d seeds)\n",
			addr, id, len(r.Target().Calls()), len(seeds))
	}
	return remotes, nil
}

// printWireStats reports the batched-uplink byte accounting per remote
// engine: how many coverage bytes the delta-coded, interesting-only uplink
// shipped versus the flat encoding the v1 protocol would have used.
func printWireStats(remotes map[string]*adb.Resilient) {
	ids := make([]string, 0, len(remotes))
	for id := range remotes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		w := remotes[id].WireStats()
		if w.Execs == 0 {
			continue
		}
		fmt.Printf("  wire %-3s batched=%d elided=%d cov=%dB raw=%dB saved=%dB\n",
			id, w.Execs, w.Elided, w.CovWireBytes, w.CovRawBytes, w.Saved())
	}
}

// parseSeeds decodes handshake seed programs against the rebuilt target.
func parseSeeds(target *dsl.Target, texts []string) ([]*dsl.Prog, error) {
	seeds := make([]*dsl.Prog, 0, len(texts))
	for i, text := range texts {
		p, err := dsl.ParseProg(target, text)
		if err != nil {
			return nil, fmt.Errorf("seed %d: %w", i, err)
		}
		seeds = append(seeds, p)
	}
	return seeds, nil
}

func printStats(d *daemon.Daemon) {
	st := d.Stats()
	ids := make([]string, 0, len(st))
	for id := range st {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		s := st[id]
		fmt.Printf("  %-3s execs=%d cover=%d signal=%d corpus=%d crashes=%d execerrs=%d\n",
			id, s.Execs, s.KernelCov, s.TotalSignal, s.CorpusSize, s.Crashes, s.ExecErrors)
	}
}
