// Command droidfuzz runs a fuzzing campaign against one virtual embedded
// Android device model.
//
// Usage:
//
//	droidfuzz -device A1 -iters 20000 [-variant droidfuzz] [-seed 1]
//	          [-corpus DIR] [-stats-every 5000] [-pipeline 4]
//
// With -pipeline N the engine runs in batched mode: program generation
// runs up to N programs ahead of device execution on a producer
// goroutine. Throughput improves, and campaigns remain reproducible for
// a fixed seed and depth, but the trajectory differs from serial mode
// (leave -pipeline at 0 when comparing coverage against recorded runs).
//
// Variants: droidfuzz (full system), norel (no relational generation),
// nohcov (no HAL directional coverage), dfd (ioctl-only gate), syzkaller
// (syscall-only baseline), difuze (generation-only ioctl baseline).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"droidfuzz/internal/baseline"
	"droidfuzz/internal/crash"
	"droidfuzz/internal/device"
	"droidfuzz/internal/engine"
	"droidfuzz/internal/relation"
)

func main() {
	var (
		deviceID   = flag.String("device", "A1", "device model ID (A1, A2, B, C1, C2, D, E)")
		iters      = flag.Int("iters", 20000, "fuzzing iterations")
		seed       = flag.Int64("seed", 1, "RNG seed")
		variant    = flag.String("variant", "droidfuzz", "droidfuzz|norel|nohcov|dfd|syzkaller|difuze")
		corpusDir  = flag.String("corpus", "", "directory to save the final corpus (optional)")
		statsEvery = flag.Int("stats-every", 5000, "print stats every N iterations")
		pipeline   = flag.Int("pipeline", 0, "generation look-ahead depth (0 = serial deterministic mode)")
	)
	flag.Parse()

	if err := run(*deviceID, *iters, *seed, *variant, *corpusDir, *statsEvery, *pipeline); err != nil {
		fmt.Fprintln(os.Stderr, "droidfuzz:", err)
		os.Exit(1)
	}
}

func run(deviceID string, iters int, seed int64, variant, corpusDir string, statsEvery, pipeline int) error {
	model, err := device.ModelByID(deviceID)
	if err != nil {
		return err
	}
	dev := device.New(model)
	fmt.Printf("device %s: %s %s (%s, AOSP %d, kernel %s), %d drivers, %d HALs\n",
		model.ID, model.Vendor, model.Name, model.Arch, model.AOSP, model.Kernel,
		len(model.Drivers), len(model.HALs))

	cfg := engine.Config{Seed: seed}
	var eng *engine.Engine
	switch strings.ToLower(variant) {
	case "droidfuzz":
		eng, err = baseline.NewDroidFuzz(dev, relation.New(), crash.NewDedup(), cfg)
	case "norel":
		cfg.NoRelations = true
		eng, err = baseline.NewDroidFuzz(dev, relation.New(), crash.NewDedup(), cfg)
	case "nohcov":
		cfg.NoHALCov = true
		eng, err = baseline.NewDroidFuzz(dev, relation.New(), crash.NewDedup(), cfg)
	case "dfd":
		eng, err = baseline.NewDroidFuzzD(dev, cfg)
	case "syzkaller":
		eng, err = baseline.NewSyzkallerLike(dev, cfg)
	case "difuze":
		return runDifuze(dev, iters, seed)
	default:
		return fmt.Errorf("unknown variant %q", variant)
	}
	if err != nil {
		return err
	}

	if statsEvery <= 0 {
		statsEvery = iters
	}
	for done := 0; done < iters; {
		n := statsEvery
		if iters-done < n {
			n = iters - done
		}
		if pipeline > 0 {
			eng.RunPipelined(n, pipeline)
		} else {
			eng.Run(n)
		}
		done += n
		st := eng.Stats()
		fmt.Printf("[%7d/%d] execs=%d cover=%d signal=%d corpus=%d crashes=%d bugs=%d restores=%d reboots=%d\n",
			done, iters, st.Execs, st.KernelCov, st.TotalSignal,
			st.CorpusSize, st.Crashes, st.UniqueBugs, st.Restores, st.Reboots)
	}

	fmt.Println()
	fmt.Println(crash.Table(eng.Dedup().Records()))
	fmt.Printf("relation table: %v\n", eng.Graph())
	if corpusDir != "" {
		if err := eng.Corpus().Save(corpusDir); err != nil {
			return err
		}
		fmt.Printf("corpus saved to %s (%d programs)\n", corpusDir, eng.Corpus().Len())
	}
	return nil
}

func runDifuze(dev *device.Device, iters int, seed int64) error {
	f, err := baseline.NewDifuze(dev, seed)
	if err != nil {
		return err
	}
	fmt.Printf("difuze: extracted %d ioctl interfaces\n", f.ExtractedInterfaces())
	f.Run(iters)
	fmt.Printf("execs=%d cover=%d bugs=%d\n",
		f.Execs(), f.Accumulator().KernelTotal(), f.Dedup().Len())
	fmt.Println(crash.Table(f.Dedup().Records()))
	return nil
}
