// Command droidprobe runs the pre-testing HAL driver probing pass on a
// device model and prints everything it extracts: services, reflected
// interfaces with argument syntax, normalized-occurrence weights, and the
// distilled workload seed programs (paper §IV-B, Fig. 3).
//
// Usage:
//
//	droidprobe -device A1 [-seeds] [-ifaces]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"droidfuzz/internal/device"
	"droidfuzz/internal/dsl"
	"droidfuzz/internal/probe"
)

func main() {
	var (
		deviceID   = flag.String("device", "A1", "device model ID")
		showSeeds  = flag.Bool("seeds", false, "print distilled workload seed programs")
		showIfaces = flag.Bool("ifaces", true, "print the extracted interface table")
		outFile    = flag.String("o", "", "write the extracted descriptions to a Syzlang-lite file")
	)
	flag.Parse()

	if err := run(*deviceID, *showSeeds, *showIfaces, *outFile); err != nil {
		fmt.Fprintln(os.Stderr, "droidprobe:", err)
		os.Exit(1)
	}
}

func run(deviceID string, showSeeds, showIfaces bool, outFile string) error {
	model, err := device.ModelByID(deviceID)
	if err != nil {
		return err
	}
	dev := device.New(model)
	res, err := probe.Run(dev, probe.Options{})
	if err != nil {
		return err
	}

	fmt.Printf("probed device %s: %d services, %d interfaces, %d workload seeds\n\n",
		model.ID, len(res.Services), len(res.Interfaces), len(res.Seeds))
	for _, s := range res.Services {
		fmt.Printf("%-44s methods=%2d trial-syscalls=%d\n",
			s.Descriptor, s.Methods, s.TrialEvents)
	}

	if showIfaces {
		fmt.Println("\nextracted interfaces (weight = normalized occurrence):")
		ifaces := append([]*dsl.CallDesc(nil), res.Interfaces...)
		sort.Slice(ifaces, func(i, j int) bool {
			if ifaces[i].Weight != ifaces[j].Weight {
				return ifaces[i].Weight > ifaces[j].Weight
			}
			return ifaces[i].Name < ifaces[j].Name
		})
		for _, d := range ifaces {
			fmt.Printf("  %.2f %-50s", d.Weight, d.Name)
			for _, a := range d.Args {
				fmt.Printf(" %s:%s", a.Name, a.Type.Kind)
			}
			if d.Ret != "" {
				fmt.Printf(" -> %s", d.Ret)
			}
			fmt.Println()
		}
	}

	if showSeeds {
		fmt.Println("\ndistilled workload seeds:")
		for i, s := range res.Seeds {
			fmt.Printf("--- seed %d ---\n%s", i, s.String())
		}
	}

	if outFile != "" {
		text := dsl.FormatDescs(res.Interfaces)
		if err := os.WriteFile(outFile, []byte(text), 0o644); err != nil {
			return err
		}
		fmt.Printf("\nwrote %d descriptions to %s\n", len(res.Interfaces), outFile)
	}
	return nil
}
