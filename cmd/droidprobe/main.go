// Command droidprobe runs the pre-testing HAL driver probing pass on a
// device model and prints everything it extracts: services, reflected
// interfaces with argument syntax, normalized-occurrence weights, and the
// distilled workload seed programs (paper §IV-B, Fig. 3).
//
// Usage:
//
//	droidprobe -device A1 [-seeds] [-ifaces] [-params]
//
// -params extends the pass with runtime-parameter discovery: writable
// sysfs knobs under /sys/module/<family>/parameters/ are enumerated, their
// vendor-init write traffic is replayed for the same normalized-occurrence
// weighting HAL interfaces get, and each knob contributes a one-line seed
// program (paper §IV-B; SyzParam).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"droidfuzz/internal/device"
	"droidfuzz/internal/dsl"
	"droidfuzz/internal/probe"
)

func main() {
	var (
		deviceID   = flag.String("device", "A1", "device model ID")
		showSeeds  = flag.Bool("seeds", false, "print distilled workload seed programs")
		showIfaces = flag.Bool("ifaces", true, "print the extracted interface table")
		withParams = flag.Bool("params", false, "discover writable runtime-parameter knobs and emit their seeds")
		outFile    = flag.String("o", "", "write the extracted descriptions to a Syzlang-lite file")
	)
	flag.Parse()

	if err := run(*deviceID, *showSeeds, *showIfaces, *withParams, *outFile); err != nil {
		fmt.Fprintln(os.Stderr, "droidprobe:", err)
		os.Exit(1)
	}
}

func run(deviceID string, showSeeds, showIfaces, withParams bool, outFile string) error {
	model, err := device.ModelByID(deviceID)
	if err != nil {
		return err
	}
	dev := device.New(model)
	res, err := probe.Run(dev, probe.Options{Params: withParams})
	if err != nil {
		return err
	}

	fmt.Printf("probed device %s: %d services, %d interfaces, %d params, %d workload seeds\n\n",
		model.ID, len(res.Services), len(res.Interfaces), len(res.Params), len(res.Seeds))
	for _, s := range res.Services {
		fmt.Printf("%-44s methods=%2d trial-syscalls=%d\n",
			s.Descriptor, s.Methods, s.TrialEvents)
	}

	if showIfaces {
		fmt.Println("\nextracted interfaces (weight = normalized occurrence):")
		ifaces := append([]*dsl.CallDesc(nil), res.Interfaces...)
		sort.Slice(ifaces, func(i, j int) bool {
			if ifaces[i].Weight != ifaces[j].Weight {
				return ifaces[i].Weight > ifaces[j].Weight
			}
			return ifaces[i].Name < ifaces[j].Name
		})
		for _, d := range ifaces {
			fmt.Printf("  %.2f %-50s", d.Weight, d.Name)
			for _, a := range d.Args {
				fmt.Printf(" %s:%s", a.Name, a.Type.Kind)
			}
			if d.Ret != "" {
				fmt.Printf(" -> %s", d.Ret)
			}
			fmt.Println()
		}
	}

	if withParams {
		fmt.Println("\ndiscovered runtime parameters (weight = normalized occurrence):")
		params := append([]*dsl.CallDesc(nil), res.Params...)
		sort.Slice(params, func(i, j int) bool {
			if params[i].Weight != params[j].Weight {
				return params[i].Weight > params[j].Weight
			}
			return params[i].Name < params[j].Name
		})
		for _, d := range params {
			fmt.Printf("  %.2f %-40s %s\n", d.Weight, d.Name, d.Param)
		}
	}

	if showSeeds {
		fmt.Println("\ndistilled workload seeds:")
		for i, s := range res.Seeds {
			fmt.Printf("--- seed %d ---\n%s", i, s.String())
		}
	}

	if outFile != "" {
		descs := append(append([]*dsl.CallDesc(nil), res.Interfaces...), res.Params...)
		text := dsl.FormatDescs(descs)
		if err := os.WriteFile(outFile, []byte(text), 0o644); err != nil {
			return err
		}
		fmt.Printf("\nwrote %d descriptions to %s\n", len(descs), outFile)
	}
	return nil
}
