// Command droidrepro executes a DSL program file (a corpus entry or a bug
// reproducer) against a freshly booted device model and reports the
// per-call outcomes, crashes, and the kernel console tail — the manual
// reproduction step of the paper's triage.
//
// Usage:
//
//	droidrepro -device A1 repro.prog
//	droidrepro -device C1 -n 3 crash.prog    # repeat across reboots
package main

import (
	"flag"
	"fmt"
	"os"

	"droidfuzz/internal/adb"
	"droidfuzz/internal/device"
	"droidfuzz/internal/dsl"
	"droidfuzz/internal/probe"
)

func main() {
	var (
		deviceID = flag.String("device", "A1", "device model ID")
		repeat   = flag.Int("n", 1, "executions (device reboots in between)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: droidrepro [-device ID] [-n N] <file.prog>")
		os.Exit(2)
	}
	if err := run(*deviceID, flag.Arg(0), *repeat); err != nil {
		fmt.Fprintln(os.Stderr, "droidrepro:", err)
		os.Exit(1)
	}
}

func run(deviceID, path string, repeat int) error {
	text, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	model, err := device.ModelByID(deviceID)
	if err != nil {
		return err
	}
	dev := device.New(model)
	target, err := dsl.NewTarget(dev.SyscallDescs()...)
	if err != nil {
		return err
	}
	pr, err := probe.Run(dev, probe.Options{})
	if err != nil {
		return err
	}
	target, err = target.Extend(pr.Interfaces...)
	if err != nil {
		return err
	}
	prog, err := dsl.ParseProg(target, string(text))
	if err != nil {
		return err
	}
	broker := adb.NewBroker(dev, target)

	crashed := 0
	for i := 0; i < repeat; i++ {
		res, err := broker.ExecProg(prog)
		if err != nil {
			return err
		}
		fmt.Printf("=== run %d/%d ===\n", i+1, repeat)
		for j, c := range res.Calls {
			status := c.Errno
			if !c.Executed {
				status = "(not executed)"
			}
			fmt.Printf("  call %d %-45s %-12s ret=%#x cover=%d\n",
				j, prog.Calls[j].Desc.Name, status, c.Ret, len(c.Cover))
		}
		if len(res.Crashes) > 0 {
			crashed++
			for _, cr := range res.Crashes {
				fmt.Printf("  CRASH [%s/%s]: %s\n", cr.Kind, cr.Component, cr.Title)
			}
			if len(res.Dmesg) > 0 {
				fmt.Println("  --- dmesg tail ---")
				for _, line := range res.Dmesg {
					fmt.Println("  " + line)
				}
			}
		}
		broker.Reboot()
	}
	fmt.Printf("\n%d/%d executions crashed\n", crashed, repeat)
	return nil
}
