// Command droidvet runs DroidFuzz's project-specific static checks: the
// determinism, poolcheck, lockorder, taggedfield, and snapshot passes over
// the whole module. It exits nonzero when any un-waived finding survives,
// which makes it a CI gate (`make vet` runs it after `go vet`).
//
// Usage:
//
//	droidvet [-C dir] [package-pattern]
//	droidvet -update-wire
//
// The only accepted package pattern today is "./..." (the passes are
// whole-program by construction — closures and call graphs need every
// package anyway); it is accepted so the invocation reads like go vet.
//
// -update-wire regenerates the wire-frame layout manifest
// (internal/adb/wire.lock) from the current tree instead of checking it.
// Run it, and commit the result, whenever a wire-protocol change is
// deliberate.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"droidfuzz/internal/analysis"
)

func main() {
	chdir := flag.String("C", "", "run as if started in `dir`")
	updateWire := flag.Bool("update-wire", false, "regenerate the wire-frame manifest instead of checking it")
	flag.Parse()

	for _, arg := range flag.Args() {
		if arg != "./..." {
			fmt.Fprintf(os.Stderr, "droidvet: unsupported package pattern %q (the passes are whole-module; use ./... or nothing)\n", arg)
			os.Exit(2)
		}
	}

	dir := *chdir
	if dir == "" {
		dir = "."
	}
	root, err := findModuleRoot(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "droidvet: %v\n", err)
		os.Exit(2)
	}

	prog, err := analysis.Load(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "droidvet: %v\n", err)
		os.Exit(2)
	}
	cfg := analysis.DefaultConfig()

	if *updateWire {
		manifest := analysis.WireManifest(prog, cfg)
		path := filepath.Join(root, filepath.FromSlash(cfg.WireManifest))
		if err := os.WriteFile(path, []byte(manifest), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "droidvet: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("droidvet: wrote %s\n", path)
		return
	}

	diags := analysis.Analyze(prog, cfg)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "droidvet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// findModuleRoot walks upward from dir to the nearest go.mod.
func findModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod found in or above %s", abs)
		}
		d = parent
	}
}
