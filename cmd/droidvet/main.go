// Command droidvet runs DroidFuzz's project-specific static checks: the
// determinism, poolcheck, lockorder, taggedfield, snapshot, atomics,
// checkpoint, and golifetime passes over the whole module. It exits nonzero
// when any un-waived finding survives, which makes it a CI gate
// (`make vet` runs it after `go vet`).
//
// Usage:
//
//	droidvet [-C dir] [-json] [-v] [package-pattern]
//	droidvet -update-wire
//
// The only accepted package pattern today is "./..." (the passes are
// whole-program by construction — closures and call graphs need every
// package anyway); it is accepted so the invocation reads like go vet.
//
// -json emits the findings as a sorted JSON array on stdout (one object per
// finding: file relative to the module root, line, col, pass, message) for
// machine consumers; under GITHUB_ACTIONS it additionally prints ::error
// workflow commands on stderr so findings render as inline annotations.
//
// -v reports per-pass wall-clock timings on stderr after the run.
//
// -update-wire regenerates the wire-frame layout manifest
// (internal/adb/wire.lock) from the current tree instead of checking it.
// Run it, and commit the result, whenever a wire-protocol change is
// deliberate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"droidfuzz/internal/analysis"
)

func main() {
	chdir := flag.String("C", "", "run as if started in `dir`")
	updateWire := flag.Bool("update-wire", false, "regenerate the wire-frame manifest instead of checking it")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	verbose := flag.Bool("v", false, "report per-pass timings on stderr")
	flag.Parse()

	for _, arg := range flag.Args() {
		if arg != "./..." {
			fmt.Fprintf(os.Stderr, "droidvet: unsupported package pattern %q (the passes are whole-module; use ./... or nothing)\n", arg)
			os.Exit(2)
		}
	}

	dir := *chdir
	if dir == "" {
		dir = "."
	}
	root, err := findModuleRoot(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "droidvet: %v\n", err)
		os.Exit(2)
	}

	prog, err := analysis.Load(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "droidvet: %v\n", err)
		os.Exit(2)
	}
	cfg := analysis.DefaultConfig()

	if *updateWire {
		manifest := analysis.WireManifest(prog, cfg)
		path := filepath.Join(root, filepath.FromSlash(cfg.WireManifest))
		if err := os.WriteFile(path, []byte(manifest), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "droidvet: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("droidvet: wrote %s\n", path)
		return
	}

	diags, timings := analysis.AnalyzeTimed(prog, cfg)
	if *verbose {
		for _, t := range timings {
			fmt.Fprintf(os.Stderr, "droidvet: pass %-12s %s\n", t.Pass, t.Duration)
		}
	}
	if *jsonOut {
		emitJSON(root, diags)
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "droidvet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// jsonFinding is the stable machine-readable shape of one finding. File is
// slash-separated and relative to the module root so output is identical
// across checkouts.
type jsonFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Pass    string `json:"pass"`
	Message string `json:"message"`
}

// emitJSON prints the findings — already sorted by Analyze — as one JSON
// array on stdout, and mirrors them as GitHub workflow ::error commands on
// stderr when running under Actions so they render as inline annotations.
func emitJSON(root string, diags []analysis.Diagnostic) {
	out := make([]jsonFinding, 0, len(diags))
	for _, d := range diags {
		file := d.Pos.Filename
		if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = filepath.ToSlash(rel)
		}
		out = append(out, jsonFinding{
			File:    file,
			Line:    d.Pos.Line,
			Col:     d.Pos.Column,
			Pass:    d.Pass,
			Message: d.Message,
		})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintf(os.Stderr, "droidvet: %v\n", err)
		os.Exit(2)
	}
	if os.Getenv("GITHUB_ACTIONS") == "true" {
		for _, f := range out {
			// Workflow-command syntax: %0A escapes would only matter for
			// multi-line messages, which droidvet never emits.
			fmt.Fprintf(os.Stderr, "::error file=%s,line=%d,col=%d,title=droidvet %s::%s\n",
				f.File, f.Line, f.Col, f.Pass, f.Message)
		}
	}
}

// findModuleRoot walks upward from dir to the nearest go.mod.
func findModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod found in or above %s", abs)
		}
		d = parent
	}
}
