// Package droidfuzz is the public API of the DroidFuzz reproduction: a
// fuzzer for the proprietary drivers of (virtual) embedded Android devices
// that jointly tests vendor HAL services and the kernel drivers beneath
// them (DAC 2025).
//
// The typical flow mirrors the paper's architecture:
//
//	dev, _ := droidfuzz.NewDevice("A1")          // boot a Table I device model
//	fz, _ := droidfuzz.NewFuzzer(dev, droidfuzz.Config{Seed: 1})
//	fz.Run(20000)                                 // fuzz at a virtual-time budget
//	for _, bug := range fz.Dedup().Records() {    // triaged findings
//	    fmt.Println(bug.Title, bug.Component)
//	}
//
// NewFuzzer performs the pre-testing HAL probing pass (§IV-B), builds the
// relational generator over the combined syscall+HAL target (§IV-C), and
// wires cross-boundary execution state feedback (§IV-D). Baselines and
// ablation variants used in the paper's evaluation are available through
// NewSyzkallerBaseline, NewDifuzeBaseline, and VariantConfig. The bench
// subpackage entry points (RunTable2, RunFigure4, ...) regenerate every
// table and figure of the evaluation.
package droidfuzz

import (
	"droidfuzz/internal/adb"
	"droidfuzz/internal/baseline"
	"droidfuzz/internal/bench"
	"droidfuzz/internal/crash"
	"droidfuzz/internal/daemon"
	"droidfuzz/internal/device"
	"droidfuzz/internal/dsl"
	"droidfuzz/internal/engine"
	"droidfuzz/internal/probe"
	"droidfuzz/internal/relation"
)

// Re-exported core types. The aliases form the supported public surface;
// the internal packages behind them are implementation detail.
type (
	// Device is one booted virtual embedded Android device.
	Device = device.Device
	// Model describes a Table I device model.
	Model = device.Model
	// Config tunes a fuzzing engine.
	Config = engine.Config
	// Engine is a host-side fuzzing engine bound to one device.
	Engine = engine.Engine
	// Stats are engine counters.
	Stats = engine.Stats
	// Fuzzer is the uniform campaign surface all variants implement.
	Fuzzer = baseline.Fuzzer
	// BugRecord is one deduplicated finding with its reproducer.
	BugRecord = crash.Record
	// ProbeResult is the output of the HAL probing pass.
	ProbeResult = probe.Result
	// ProbeOptions tunes the probing pass.
	ProbeOptions = probe.Options
	// Prog is a test-case program in the DSL.
	Prog = dsl.Prog
	// Target aggregates the callable interface descriptions of a device.
	Target = dsl.Target
	// Broker is the device-side execution broker.
	Broker = adb.Broker
	// Executor is the execution boundary engines drive: the in-process
	// Broker, a transport Conn, or a resilient remote client.
	Executor = adb.Executor
	// ExecutorInfo is the executor identity handshake payload.
	ExecutorInfo = adb.Info
	// ExecResult is one program execution's cross-boundary feedback.
	ExecResult = adb.ExecResult
	// Daemon coordinates engines across multiple devices.
	Daemon = daemon.Daemon
	// Scale sets evaluation iteration/repetition budgets.
	Scale = bench.Scale
	// CampaignConfig describes one evaluation campaign.
	CampaignConfig = bench.CampaignConfig
	// CampaignResult is one campaign's outcome.
	CampaignResult = bench.CampaignResult
	// FuzzerKind selects a campaign fuzzer variant.
	FuzzerKind = bench.FuzzerKind
)

// Campaign fuzzer kinds (bench.FuzzerKind values).
const (
	KindDroidFuzz       = bench.DroidFuzz
	KindDroidFuzzNoRel  = bench.DroidFuzzNoRel
	KindDroidFuzzNoHCov = bench.DroidFuzzNoHCov
	KindDroidFuzzD      = bench.DroidFuzzD
	KindSyzkallerLike   = bench.SyzkallerLike
	KindDifuzeLike      = bench.DifuzeLike
)

// Models returns the seven Table I device models.
func Models() []Model { return device.Models() }

// NewDevice boots the device model with the given ID (A1, A2, B, C1, C2,
// D, E).
func NewDevice(modelID string) (*Device, error) {
	m, err := device.ModelByID(modelID)
	if err != nil {
		return nil, err
	}
	return device.New(m), nil
}

// Probe runs the pre-testing HAL driver probing pass on a booted device,
// returning the discovered interfaces, occurrence weights, and distilled
// workload seeds.
func Probe(dev *Device, opts ProbeOptions) (*ProbeResult, error) {
	return probe.Run(dev, opts)
}

// NewFuzzer builds the full DroidFuzz system for a device: probing pass,
// relational payload generation, cross-boundary feedback.
func NewFuzzer(dev *Device, cfg Config) (*Engine, error) {
	return baseline.NewDroidFuzz(dev, relation.New(), crash.NewDedup(), cfg)
}

// NewSyzkallerBaseline builds the syscall-only coverage-guided baseline.
func NewSyzkallerBaseline(dev *Device, cfg Config) (*Engine, error) {
	return baseline.NewSyzkallerLike(dev, cfg)
}

// NewDifuzeBaseline builds the generation-only ioctl-interface baseline.
func NewDifuzeBaseline(dev *Device, seed int64) (*baseline.Difuze, error) {
	return baseline.NewDifuze(dev, seed)
}

// NewDroidFuzzD builds the ioctl-gated DROIDFUZZ-D variant (§V-C2).
func NewDroidFuzzD(dev *Device, cfg Config) (*Engine, error) {
	return baseline.NewDroidFuzzD(dev, cfg)
}

// NewDaemon returns a multi-device coordinator with shared relation table
// and global crash deduplication (the paper's root process, §IV-A).
func NewDaemon() *Daemon { return daemon.New() }

// RunCampaign boots a fresh device and runs one evaluation campaign.
func RunCampaign(cfg CampaignConfig) (*CampaignResult, error) {
	return bench.RunCampaign(cfg)
}

// DefaultScale is the full evaluation budget; QuickScale a reduced one.
func DefaultScale() Scale { return bench.DefaultScale() }

// QuickScale returns the reduced smoke-test budget.
func QuickScale() Scale { return bench.QuickScale() }

// Evaluation entry points, one per paper artifact.
var (
	// Table1 renders the device listing.
	Table1 = bench.Table1
	// RunTable2 reproduces the bug-detection experiment.
	RunTable2 = bench.RunTable2
	// RunTable3 reproduces the ablation experiment.
	RunTable3 = bench.RunTable3
	// RunFigure3 reports the probing pass on one device.
	RunFigure3 = bench.RunFigure3
	// RunFigure4 reproduces the Syzkaller coverage comparison.
	RunFigure4 = bench.RunFigure4
	// RunFigure5 reproduces the Difuze / DroidFuzz-D comparison.
	RunFigure5 = bench.RunFigure5
)

// ParseProg parses a DSL program against a target (corpus files, manual
// reproducers).
func ParseProg(target *Target, text string) (*Prog, error) {
	return dsl.ParseProg(target, text)
}

// BugTable renders findings in the paper's Table II layout.
func BugTable(records []*BugRecord) string { return crash.Table(records) }
