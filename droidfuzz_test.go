package droidfuzz_test

import (
	"strings"
	"testing"

	"droidfuzz"
)

// TestPublicAPIQuickstart exercises the documented public flow end to end.
func TestPublicAPIQuickstart(t *testing.T) {
	dev, err := droidfuzz.NewDevice("A1")
	if err != nil {
		t.Fatal(err)
	}
	fz, err := droidfuzz.NewFuzzer(dev, droidfuzz.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	fz.Run(2000)
	st := fz.Stats()
	if st.KernelCov == 0 || st.CorpusSize == 0 {
		t.Fatalf("no progress: %+v", st)
	}
	if out := droidfuzz.BugTable(fz.Dedup().Records()); !strings.Contains(out, "Bug Info") {
		t.Fatalf("bug table malformed:\n%s", out)
	}
}

func TestPublicAPIModels(t *testing.T) {
	if len(droidfuzz.Models()) != 7 {
		t.Fatal("expected the 7 Table I models")
	}
	if _, err := droidfuzz.NewDevice("nope"); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestPublicAPIProbe(t *testing.T) {
	dev, err := droidfuzz.NewDevice("B")
	if err != nil {
		t.Fatal(err)
	}
	pr, err := droidfuzz.Probe(dev, droidfuzz.ProbeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(pr.Interfaces) == 0 || len(pr.Seeds) == 0 {
		t.Fatal("probe extracted nothing")
	}
}

func TestPublicAPICampaignAndBaselines(t *testing.T) {
	res, err := droidfuzz.RunCampaign(droidfuzz.CampaignConfig{
		ModelID: "D", Fuzzer: droidfuzz.KindSyzkallerLike, Iters: 300, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.KernelCov == 0 {
		t.Fatal("no coverage")
	}

	dev, _ := droidfuzz.NewDevice("D")
	dz, err := droidfuzz.NewDifuzeBaseline(dev, 3)
	if err != nil {
		t.Fatal(err)
	}
	dz.Run(100)
	if dz.Execs() != 100 {
		t.Fatal("difuze baseline did not run")
	}
}

func TestPublicAPIDaemon(t *testing.T) {
	d := droidfuzz.NewDaemon()
	if err := d.AddDevice("B", droidfuzz.Config{Seed: 4}); err != nil {
		t.Fatal(err)
	}
	d.Run(200, false)
	if d.Stats()["B"].Execs == 0 {
		t.Fatal("daemon idle")
	}
}

func TestPublicAPITable1(t *testing.T) {
	if !strings.Contains(droidfuzz.Table1(), "Raspberry Pi") {
		t.Fatal("table 1 wrong")
	}
}
