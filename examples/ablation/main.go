// Ablation: compare full DroidFuzz against its two ablations (DF-NoRel,
// DF-NoHCov) and the Syzkaller baseline on one device — a single-device
// slice of the paper's Table III.
package main

import (
	"fmt"
	"log"

	"droidfuzz"
)

func main() {
	const (
		model = "A2"
		iters = 8000
		reps  = 3
	)
	kinds := []droidfuzz.FuzzerKind{
		droidfuzz.KindDroidFuzz,
		droidfuzz.KindDroidFuzzNoRel,
		droidfuzz.KindDroidFuzzNoHCov,
		droidfuzz.KindSyzkallerLike,
	}

	fmt.Printf("ablation on device %s, %d iterations x %d repetitions\n\n", model, iters, reps)
	fmt.Printf("%-14s %-10s %-10s %s\n", "fuzzer", "kernelcov", "signal", "bugs")
	for _, kind := range kinds {
		var cov, sig, bugs float64
		for r := 0; r < reps; r++ {
			res, err := droidfuzz.RunCampaign(droidfuzz.CampaignConfig{
				ModelID: model, Fuzzer: kind, Iters: iters,
				Seed: int64(40 + r),
			})
			if err != nil {
				log.Fatal(err)
			}
			cov += float64(res.KernelCov) / reps
			sig += float64(res.TotalSignal) / reps
			bugs += float64(len(res.Bugs)) / reps
		}
		fmt.Printf("%-14s %-10.0f %-10.0f %.1f\n", kind, cov, sig, bugs)
	}
	fmt.Println("\nexpected shape (paper Table III): DroidFuzz > ablations > Syzkaller")
}
