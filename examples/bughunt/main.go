// Bughunt: the paper's headline experiment in miniature — the DroidFuzz
// daemon fuzzes all seven Table I devices (shared relation table, global
// crash dedup) and reports the combined bug list, Table II style.
package main

import (
	"fmt"
	"log"

	"droidfuzz"
)

func main() {
	d := droidfuzz.NewDaemon()

	// Attach every Table I device; each engine gets its own seed but
	// learns into the daemon's shared relation table.
	for i, m := range droidfuzz.Models() {
		cfg := droidfuzz.Config{Seed: int64(100 + i)}
		if err := d.AddDevice(m.ID, cfg); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("attached %s (%s %s)\n", m.ID, m.Vendor, m.Name)
	}

	// Run all engines concurrently, the deployment shape of §IV-A.
	const iters = 6000
	fmt.Printf("\nfuzzing %d devices x %d iterations...\n\n", len(d.Devices()), iters)
	d.Run(iters, true)

	for _, id := range d.Devices() {
		st := d.Engine(id).Stats()
		fmt.Printf("%-3s execs=%-6d cover=%-4d signal=%-5d corpus=%-5d reboots=%d\n",
			id, st.Execs, st.KernelCov, st.TotalSignal, st.CorpusSize, st.Reboots)
	}

	fmt.Printf("\nshared relation table: %v\n", d.Graph())
	fmt.Printf("\nbugs found across the fleet: %d\n", len(d.Bugs()))
	fmt.Print(droidfuzz.BugTable(d.Bugs()))
}
