// Probing: a close look at the pre-testing HAL driver probing pass
// (paper §IV-B, Fig. 3) and the cross-boundary feedback it enables. The
// example probes a device, prints the extracted interface syntax and
// weights, then executes one distilled framework workload through the
// ADB-stand-in transport and shows the HAL-origin syscall trace that
// directional coverage is built from.
package main

import (
	"fmt"
	"log"
	"net"
	"sort"

	"droidfuzz"
	"droidfuzz/internal/adb"
	"droidfuzz/internal/dsl"
)

func main() {
	dev, err := droidfuzz.NewDevice("C1") // the Sunmi commercial tablet
	if err != nil {
		log.Fatal(err)
	}

	pr, err := droidfuzz.Probe(dev, droidfuzz.ProbeOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("probing %s: %d services, %d interfaces, %d workload seeds\n\n",
		dev.Model.ID, len(pr.Services), len(pr.Interfaces), len(pr.Seeds))

	// Interfaces sorted by normalized-occurrence weight.
	ifaces := append([]*dsl.CallDesc(nil), pr.Interfaces...)
	sort.Slice(ifaces, func(i, j int) bool {
		if ifaces[i].Weight != ifaces[j].Weight {
			return ifaces[i].Weight > ifaces[j].Weight
		}
		return ifaces[i].Name < ifaces[j].Name
	})
	fmt.Println("highest-weighted interfaces:")
	for _, d := range ifaces[:6] {
		fmt.Printf("  %.2f %s\n", d.Weight, d.Name)
	}

	// Build the combined syscall+HAL target and a broker, served over an
	// in-memory transport exactly like the TCP deployment.
	target, err := dsl.NewTarget(dev.SyscallDescs()...)
	if err != nil {
		log.Fatal(err)
	}
	target, err = target.Extend(pr.Interfaces...)
	if err != nil {
		log.Fatal(err)
	}
	broker := adb.NewBroker(dev, target)

	host, devSide := net.Pipe()
	go func() { _ = adb.Serve(devSide, broker) }()
	conn := adb.Dial(host)
	if err := conn.Ping(); err != nil {
		log.Fatal(err)
	}

	// Execute the first distilled workload seed remotely.
	seed := pr.Seeds[0]
	fmt.Printf("\nexecuting distilled workload over the transport:\n%s\n", seed.String())
	res, err := conn.Exec(adb.ExecRequest{ProgText: seed.String()})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("kernel coverage: %d PCs\n", len(res.KernelCov))
	fmt.Printf("HAL-origin syscall trace (%d events) — the raw material of directional coverage:\n",
		len(res.HALTrace))
	for _, ev := range res.HALTrace {
		fmt.Printf("  pid=%d %-6s %-14s arg=%#x\n", ev.PID, ev.NR, ev.Path, ev.Arg)
	}
}
