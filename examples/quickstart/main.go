// Quickstart: boot a virtual embedded Android device, build the full
// DroidFuzz system on it (probing pass included), fuzz for a short budget,
// and print what it found.
package main

import (
	"fmt"
	"log"

	"droidfuzz"
)

func main() {
	// Boot device A1 — the Xiaomi phone dev board of Table I, carrying
	// four of the paper's injected bugs.
	dev, err := droidfuzz.NewDevice("A1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("booted %s: %s %s (AOSP %d, kernel %s)\n",
		dev.Model.ID, dev.Model.Vendor, dev.Model.Name,
		dev.Model.AOSP, dev.Model.Kernel)
	fmt.Printf("  /dev nodes: %v\n", dev.K.DevicePaths())
	fmt.Printf("  HAL services: %v\n", dev.SM.List())

	// NewFuzzer runs the pre-testing HAL probing pass internally, then
	// wires relational generation and cross-boundary feedback.
	fz, err := droidfuzz.NewFuzzer(dev, droidfuzz.Config{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	fz.Run(8000)

	st := fz.Stats()
	fmt.Printf("\nafter %d executions:\n", st.Execs)
	fmt.Printf("  kernel coverage: %d PCs, joint signal: %d elements\n",
		st.KernelCov, st.TotalSignal)
	fmt.Printf("  corpus: %d programs, relation table: %v\n",
		st.CorpusSize, fz.Graph())
	fmt.Printf("  device rebooted %d times\n\n", st.Reboots)

	bugs := fz.Dedup().Records()
	fmt.Printf("unique bugs found: %d\n", len(bugs))
	fmt.Print(droidfuzz.BugTable(bugs))

	// Every finding carries a program in the DSL: a minimized reproducer
	// when the bug re-triggers on a clean boot, or the raw triggering
	// program when it needed accumulated device state.
	for _, bug := range bugs {
		if bug.Repro == nil {
			continue
		}
		kind := "raw trigger (needs accumulated state)"
		if bug.Reproducible {
			kind = "minimized reproducer"
		}
		fmt.Printf("\n%s for %q:\n%s", kind, bug.Title, bug.Repro.String())
		break
	}
}
