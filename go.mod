module droidfuzz

go 1.24
