package adb

import (
	"net"
	"strings"
	"sync"
	"testing"

	"droidfuzz/internal/device"
	"droidfuzz/internal/drivers"
	"droidfuzz/internal/dsl"
)

func newBrokerRig(t *testing.T, modelID string) (*Broker, *dsl.Target) {
	t.Helper()
	m, err := device.ModelByID(modelID)
	if err != nil {
		t.Fatal(err)
	}
	dev := device.New(m)
	target, err := dsl.NewTarget(dev.SyscallDescs()...)
	if err != nil {
		t.Fatal(err)
	}
	return NewBroker(dev, target), target
}

func TestExecNativeProgram(t *testing.T) {
	b, _ := newBrokerRig(t, "A1")
	prog := `r0 = open$tcpc(path="/dev/tcpc0")
ioctl$TCPC_SET_MODE(fd=r0, req=0xa102, mode=0x3)
ioctl$TCPC_SET_VOLTAGE(fd=r0, req=0xa103, mv=0x1388)
close$tcpc(fd=r0)
`
	res, err := b.Exec(ExecRequest{ProgText: prog})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Calls) != 4 {
		t.Fatalf("calls = %d", len(res.Calls))
	}
	for i, c := range res.Calls {
		if !c.Executed || c.Errno != "OK" {
			t.Fatalf("call %d = %+v", i, c)
		}
	}
	if len(res.KernelCov) == 0 {
		t.Fatal("no kernel coverage")
	}
	// Coverage is attributed per call.
	if len(res.Calls[1].Cover) == 0 {
		t.Fatal("per-call coverage missing")
	}
	if res.Crashed() || res.NeedsReboot() {
		t.Fatal("benign program flagged")
	}
}

func TestExecResourceFlowAndErrors(t *testing.T) {
	b, _ := newBrokerRig(t, "A1")
	prog := `r0 = open$gpu(path="/dev/gpu0")
r1 = ioctl$GPU_ALLOC(fd=r0, req=0xa601, size=0x1000)
ioctl$GPU_MAP(fd=r0, req=0xa603, handle=r1)
ioctl$GPU_MAP(fd=r0, req=0xa603, handle=nil)
`
	res, err := b.Exec(ExecRequest{ProgText: prog})
	if err != nil {
		t.Fatal(err)
	}
	if res.Calls[2].Errno != "OK" {
		t.Fatalf("mapped handle failed: %+v", res.Calls[2])
	}
	if res.Calls[3].Errno != "ENOENT" {
		t.Fatalf("bogus handle = %s, want ENOENT", res.Calls[3].Errno)
	}
}

func TestExecBadProgram(t *testing.T) {
	b, _ := newBrokerRig(t, "A1")
	if _, err := b.Exec(ExecRequest{ProgText: "nonsense(x=1)\n"}); err == nil {
		t.Fatal("bad program accepted")
	}
}

func TestExecStopsAfterWedge(t *testing.T) {
	b, _ := newBrokerRig(t, "A1") // A1 has LockdepSubclass enabled
	// Drive the lockdep BUG via a handcrafted gpu submit (magic + depth 9).
	stream := []byte{0x47, 0x50, 0x55, 0x43, 9, 0, 0, 0}
	progText := "r0 = open$gpu(path=\"/dev/gpu0\")\n" +
		"r1 = ioctl$GPU_ALLOC(fd=r0, req=0xa601, size=0x1000)\n" +
		"r2 = ioctl$GPU_SUBMIT(fd=r0, req=0xa604, handle=r1, stream=b\"" +
		hexEncode(stream) + "\")\n" +
		"ioctl$GPU_MAP(fd=r0, req=0xa603, handle=r1)\n"
	res, err := b.Exec(ExecRequest{ProgText: progText})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Wedged || !res.NeedsReboot() {
		t.Fatal("wedge not reported")
	}
	if res.Calls[3].Executed {
		t.Fatal("call after wedge executed")
	}
	found := false
	for _, cr := range res.Crashes {
		if strings.Contains(cr.Title, "invalid subclass") {
			found = true
		}
	}
	if !found {
		t.Fatalf("crash missing: %+v", res.Crashes)
	}
	b.Reboot()
	res, err = b.Exec(ExecRequest{ProgText: "r0 = open$gpu(path=\"/dev/gpu0\")\n"})
	if err != nil || res.Calls[0].Errno != "OK" {
		t.Fatal("device unusable after reboot")
	}
}

func hexEncode(b []byte) string {
	const digits = "0123456789abcdef"
	out := make([]byte, 0, len(b)*2)
	for _, x := range b {
		out = append(out, digits[x>>4], digits[x&0xf])
	}
	return string(out)
}

func TestIoctlOnlyGate(t *testing.T) {
	b, _ := newBrokerRig(t, "A1")
	b.SetIoctlOnly(true)
	prog := `r0 = open$hci(path="/dev/hci0")
ioctl$HCI_UP(fd=r0, req=0xa201)
write$hci(fd=r0, data=b"0104")
read$hci(fd=r0, n=0x10)
`
	res, err := b.Exec(ExecRequest{ProgText: prog})
	if err != nil {
		t.Fatal(err)
	}
	if res.Calls[1].Errno != "OK" {
		t.Fatalf("ioctl gated: %+v", res.Calls[1])
	}
	if res.Calls[2].Errno != "BLOCKED" || res.Calls[3].Errno != "BLOCKED" {
		t.Fatalf("read/write not blocked: %+v %+v", res.Calls[2], res.Calls[3])
	}
	// The gate survives a reboot.
	b.Reboot()
	res, _ = b.Exec(ExecRequest{ProgText: prog})
	if res.Calls[2].Errno != "BLOCKED" {
		t.Fatal("gate lost after reboot")
	}
	b.SetIoctlOnly(false)
	res, _ = b.Exec(ExecRequest{ProgText: prog})
	if res.Calls[2].Errno != "OK" {
		t.Fatalf("write still blocked: %+v", res.Calls[2])
	}
}

func TestHALTraceCapturedViaBluetoothHAL(t *testing.T) {
	m, _ := device.ModelByID("A1")
	dev := device.New(m)
	target, err := dsl.NewTarget(dev.SyscallDescs()...)
	if err != nil {
		t.Fatal(err)
	}
	// Extend with a minimal hand-rolled HAL interface description
	// matching the Bluetooth service's "enable" method (code 1).
	enable := &dsl.CallDesc{
		Name: "hal$bluetooth.enable", Class: dsl.ClassHAL,
		Service: "android.hardware.bluetooth", Method: "enable", MethodCode: 1,
		CriticalArg: -1,
	}
	target, err = target.Extend(enable)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBroker(dev, target)
	res, err := b.Exec(ExecRequest{ProgText: "hal$bluetooth.enable()\n"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Calls[0].Errno != "OK" {
		t.Fatalf("enable = %+v", res.Calls[0])
	}
	if len(res.HALTrace) == 0 {
		t.Fatal("no HAL-origin syscall trace")
	}
	// The trace must show the HCI_UP ioctl from the HAL pid.
	found := false
	for _, ev := range res.HALTrace {
		if ev.NR == "ioctl" && ev.Arg == drivers.HCIUp {
			found = true
		}
	}
	if !found {
		t.Fatalf("HCI_UP missing from trace: %+v", res.HALTrace)
	}
	// Native-origin syscalls never appear in the HAL trace.
	res, _ = b.Exec(ExecRequest{ProgText: "r0 = open$hci(path=\"/dev/hci0\")\n"})
	if len(res.HALTrace) != 0 {
		t.Fatal("native syscall leaked into HAL trace")
	}
}

func TestTransportRoundTrip(t *testing.T) {
	b, _ := newBrokerRig(t, "B")
	host, devSide := net.Pipe()
	done := make(chan error, 1)
	go func() { done <- Serve(devSide, b) }()

	conn := Dial(host)
	if err := conn.Ping(); err != nil {
		t.Fatal(err)
	}
	res, err := conn.Exec(ExecRequest{ProgText: "r0 = open$hci(path=\"/dev/hci0\")\n"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Calls) != 1 || res.Calls[0].Errno != "OK" {
		t.Fatalf("remote exec = %+v", res.Calls)
	}
	// Errors cross the transport as errors, not panics.
	if _, err := conn.Exec(ExecRequest{ProgText: "garbage(\n"}); err == nil {
		t.Fatal("bad program accepted remotely")
	}
	host.Close()
	if err := <-done; err != nil {
		t.Fatalf("serve: %v", err)
	}
}

func TestTransportTCP(t *testing.T) {
	b, _ := newBrokerRig(t, "B")
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go ServeTCP(ln, b)
	defer ln.Close()

	conn, err := DialTCP(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Ping(); err != nil {
		t.Fatal(err)
	}
	res, err := conn.Exec(ExecRequest{ProgText: "r0 = open$l2cap(path=\"/dev/l2cap0\")\n"})
	if err != nil || res.Calls[0].Errno != "OK" {
		t.Fatalf("tcp exec = %v/%v", res, err)
	}
}

func TestExecsCountAdvances(t *testing.T) {
	b, _ := newBrokerRig(t, "B")
	before := b.Execs()
	b.Exec(ExecRequest{ProgText: "r0 = open$hci(path=\"/dev/hci0\")\n"})
	if b.Execs() != before+1 {
		t.Fatal("exec counter wrong")
	}
}

func TestDmesgAttachedOnCrash(t *testing.T) {
	b, _ := newBrokerRig(t, "B") // carries the shallow l2cap bug
	prog := `r0 = open$l2cap(path="/dev/l2cap0")
ioctl$L2CAP_DISCONNECT(fd=r0, req=0xa302)
`
	res, err := b.Exec(ExecRequest{ProgText: prog})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Crashed() {
		t.Fatal("expected crash")
	}
	if len(res.Dmesg) == 0 {
		t.Fatal("dmesg tail missing from crash result")
	}
	found := false
	for _, line := range res.Dmesg {
		if strings.Contains(line, "l2cap_send_disconn_req") {
			found = true
		}
	}
	if !found {
		t.Fatalf("splat missing from dmesg: %v", res.Dmesg)
	}
	// Benign executions carry no dmesg payload.
	b.Reboot()
	res, _ = b.Exec(ExecRequest{ProgText: "r0 = open$hci(path=\"/dev/hci0\")\n"})
	if len(res.Dmesg) != 0 {
		t.Fatal("dmesg attached to clean execution")
	}
}

func TestTransportConcurrentClients(t *testing.T) {
	b, _ := newBrokerRig(t, "B")
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go ServeTCP(ln, b)
	defer ln.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn, err := DialTCP(ln.Addr().String())
			if err != nil {
				errs <- err
				return
			}
			for i := 0; i < 25; i++ {
				res, err := conn.Exec(ExecRequest{ProgText: "r0 = open$hci(path=\"/dev/hci0\")\n"})
				if err != nil {
					errs <- err
					return
				}
				if res.Calls[0].Errno != "OK" {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
