package adb

import (
	"encoding/gob"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestRepliesMatchedByTagOutOfOrder drives the multiplexed core against a
// hand-rolled server that answers two in-flight requests in reverse order:
// each caller must still receive its own result, matched by sequence tag
// rather than reply order.
func TestRepliesMatchedByTagOutOfOrder(t *testing.T) {
	host, dev := net.Pipe()
	conn := Dial(host)
	conn.SetWindow(2)
	conn.SetCallTimeout(5 * time.Second)

	// Server: collect both requests, then reply last-received first. The
	// reply payload encodes which program the request carried, so the client
	// side can detect a mismatched delivery.
	go func() {
		enc := gob.NewEncoder(dev)
		dec := gob.NewDecoder(dev)
		var reqs []rpcRequest
		for len(reqs) < 2 {
			var req rpcRequest
			if err := dec.Decode(&req); err != nil {
				t.Errorf("server decode: %v", err)
				return
			}
			reqs = append(reqs, req)
		}
		for i := len(reqs) - 1; i >= 0; i-- {
			req := reqs[i]
			var ret uint64
			switch req.Exec.ProgText {
			case "prog-one":
				ret = 111
			case "prog-two":
				ret = 222
			}
			rep := rpcReply{Tag: req.Tag, Result: &ExecResult{
				Calls: []CallResult{{Executed: true, Errno: "OK", Ret: ret}},
			}}
			if err := enc.Encode(&rep); err != nil {
				t.Errorf("server encode: %v", err)
				return
			}
		}
	}()

	want := map[string]uint64{"prog-one": 111, "prog-two": 222}
	var wg sync.WaitGroup
	for text, ret := range want {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := conn.Exec(ExecRequest{ProgText: text})
			if err != nil {
				t.Errorf("%s: %v", text, err)
				return
			}
			if got := res.Calls[0].Ret; got != ret {
				t.Errorf("%s: got reply for Ret=%d, want %d (reply crossed tags)", text, got, ret)
			}
		}()
	}
	wg.Wait()
	conn.Close()
	dev.Close()
}

// stubFilter is an UplinkFilter that calls everything after the first
// observation boring, making elision decisions deterministic for tests.
type stubFilter struct{ n int }

func (f *stubFilter) Observe(res *ExecResult) bool {
	f.n++
	return f.n == 1
}

// pipeServer serves a broker over net.Pipe and returns the host-side Conn.
func pipeServer(t *testing.T, srv *Server) *Conn {
	t.Helper()
	host, dev := net.Pipe()
	go srv.Serve(dev)
	t.Cleanup(func() { host.Close(); dev.Close() })
	return Dial(host)
}

const benignProg = `r0 = open$tcpc(path="/dev/tcpc0")
ioctl$TCPC_SET_MODE(fd=r0, req=0xa102, mode=0x3)
close$tcpc(fd=r0)
`

// TestExecBatchSummaryElidesRepeats runs the same program four times in one
// summary-mode batch: the first execution (novel by the filter's account)
// must ship its traces in full, the repeats must arrive elided, and the
// connection's wire accounting must show the savings.
func TestExecBatchSummaryElidesRepeats(t *testing.T) {
	b, _ := newBrokerRig(t, "A1")
	srv := &Server{X: b}
	srv.NewFilter = func() UplinkFilter { return &stubFilter{} }
	conn := pipeServer(t, srv)
	conn.SetCallTimeout(5 * time.Second)

	progs := []string{benignProg, benignProg, benignProg, benignProg}
	results, err := conn.ExecBatch(ExecBatchRequest{Progs: progs, Summary: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(progs) {
		t.Fatalf("results = %d, want %d", len(results), len(progs))
	}
	for i, res := range results {
		if res == nil {
			t.Fatalf("result %d nil", i)
		}
		if len(res.Calls) != 3 || !res.Calls[0].Executed || res.Calls[0].Errno != "OK" {
			t.Fatalf("result %d call outcomes mangled: %+v", i, res.Calls)
		}
	}
	if len(results[0].KernelCov) == 0 || len(results[0].Calls[1].Cover) == 0 {
		t.Fatal("novel execution arrived without its traces")
	}
	for i, res := range results[1:] {
		if len(res.KernelCov) != 0 {
			t.Fatalf("repeat %d shipped %d trace PCs despite elision", i+1, len(res.KernelCov))
		}
	}

	w := conn.WireStats()
	if w.Execs != 4 || w.Elided != 3 {
		t.Fatalf("wire stats = %+v, want Execs=4 Elided=3", w)
	}
	if w.CovWireBytes >= w.CovRawBytes || w.Saved() == 0 {
		t.Fatalf("no uplink savings recorded: %+v", w)
	}

	// Without summary mode the same repeats ship in full: elision must not
	// grow even though the filter still observes every execution.
	results, err = conn.ExecBatch(ExecBatchRequest{Progs: progs[:2], Summary: false})
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if res == nil || len(res.KernelCov) == 0 {
			t.Fatalf("non-summary result %d missing traces", i)
		}
	}
	if w := conn.WireStats(); w.Elided != 3 || w.Execs != 6 {
		t.Fatalf("non-summary batch changed elision accounting: %+v", w)
	}
}

// TestExecBatchFramingAndRejects splits a batch across several wire frames
// and plants an unparseable program in the middle: results must align
// index-for-index, with exactly the bad program marked nil.
func TestExecBatchFramingAndRejects(t *testing.T) {
	b, _ := newBrokerRig(t, "A1")
	conn := pipeServer(t, &Server{X: b})
	conn.SetCallTimeout(5 * time.Second)
	conn.SetBatchFrame(2) // 5 programs -> 3 frames through the window

	short := `r0 = open$tcpc(path="/dev/tcpc0")
close$tcpc(fd=r0)
`
	progs := []string{benignProg, short, "this is not a program", benignProg, short}
	results, err := conn.ExecBatch(ExecBatchRequest{Progs: progs})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(progs) {
		t.Fatalf("results = %d, want %d", len(results), len(progs))
	}
	wantCalls := []int{3, 2, -1, 3, 2}
	for i, res := range results {
		if wantCalls[i] < 0 {
			if res != nil {
				t.Fatalf("rejected program %d produced a result: %+v", i, res)
			}
			continue
		}
		if res == nil {
			t.Fatalf("program %d dropped", i)
		}
		if len(res.Calls) != wantCalls[i] {
			t.Fatalf("program %d: %d calls, want %d (frame misalignment?)",
				i, len(res.Calls), wantCalls[i])
		}
	}
}

// TestResilientBatchTailRetry kills the broker connection right after it
// acknowledges the first frame of a batch: the resilient client must
// resubmit only the unacknowledged tail on the fresh connection, and its
// wire accounting must accumulate across both connections.
func TestResilientBatchTailRetry(t *testing.T) {
	b, _ := newBrokerRig(t, "A1")
	srv := &Server{X: b}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var served atomic.Int64 // batch frames answered across all connections
	var kill atomic.Bool    // first connection dies after its first frame
	kill.Store(true)
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				enc := gob.NewEncoder(c)
				dec := gob.NewDecoder(c)
				st := &connState{}
				for {
					req, err := decodeRequest(dec)
					if err != nil {
						return
					}
					rep := srv.handle(req, st)
					rep.Tag = req.Tag
					err = enc.Encode(&rep)
					rep.Result.Release()
					if err != nil {
						return
					}
					if req.Batch != nil {
						served.Add(1)
						if kill.Swap(false) {
							return // sever the stream mid-batch
						}
					}
				}
			}()
		}
	}()

	r, err := DialResilient(ln.Addr().String(), ResilientOptions{
		DialTimeout: time.Second,
		CallTimeout: 2 * time.Second,
		MaxAttempts: 2,
		BackoffBase: time.Millisecond,
		BackoffMax:  5 * time.Millisecond,
		// Window 1 makes the cut deterministic: frame 1 is acknowledged
		// before frame 2 ever enters the send queue.
		Window:     1,
		BatchFrame: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	progs := []string{benignProg, benignProg, benignProg, benignProg, benignProg}
	results, err := r.ExecBatch(ExecBatchRequest{Progs: progs})
	if err != nil {
		t.Fatalf("batch did not survive the reconnect: %v", err)
	}
	if len(results) != len(progs) {
		t.Fatalf("results = %d, want %d", len(results), len(progs))
	}
	for i, res := range results {
		if res == nil || len(res.Calls) != 3 {
			t.Fatalf("result %d wrong after retry: %+v", i, res)
		}
	}
	// Exactly one frame (2 programs) was acknowledged before the cut, so the
	// retry must have carried 3 programs, not all 5.
	if w := r.WireStats(); w.Execs != uint64(len(progs)) {
		t.Fatalf("wire stats across reconnect = %+v, want Execs=%d (tail-only retry)", w, len(progs))
	}
	if n := served.Load(); n != 1+2 {
		t.Fatalf("broker served %d frames, want 3 (1 before the cut, 2 after)", n)
	}
}

// TestBrokerExecBatchInProcess exercises the in-process BatchExecutor
// implementation the engine falls back to without a transport.
func TestBrokerExecBatchInProcess(t *testing.T) {
	b, _ := newBrokerRig(t, "A1")
	results, err := b.ExecBatch(ExecBatchRequest{Progs: []string{benignProg, "garbage", benignProg}})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 || results[0] == nil || results[1] != nil || results[2] == nil {
		t.Fatalf("in-process batch misaligned: %v", results)
	}
	if len(results[0].KernelCov) == 0 {
		t.Fatal("in-process batch lost coverage")
	}
}

// TestWindowFullSubmittersUnblockOnPoison fills the window against a server
// that never answers, then breaks the stream: every waiter — including ones
// still blocked acquiring a window slot — must fail fast with ErrTransport.
func TestWindowFullSubmittersUnblockOnPoison(t *testing.T) {
	host, dev := net.Pipe()
	conn := Dial(host)
	conn.SetWindow(1)

	// Swallow the requests without ever replying.
	go func() {
		dec := gob.NewDecoder(dev)
		for {
			var req rpcRequest
			if dec.Decode(&req) != nil {
				return
			}
		}
	}()

	errs := make(chan error, 3)
	for i := 0; i < 3; i++ {
		go func() { errs <- conn.Ping() }()
	}
	time.Sleep(20 * time.Millisecond) // let one occupy the slot, two queue behind it
	conn.fail(errors.New("adb: transport failure (injected)"))
	for i := 0; i < 3; i++ {
		select {
		case err := <-errs:
			if err == nil {
				t.Fatal("call succeeded on a poisoned connection")
			}
		case <-time.After(2 * time.Second):
			t.Fatal("caller still blocked after poison")
		}
	}
	dev.Close()
}
