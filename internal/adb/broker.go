package adb

import (
	"fmt"
	"sync"

	"droidfuzz/internal/binder"
	"droidfuzz/internal/device"
	"droidfuzz/internal/dsl"
	"droidfuzz/internal/ebpf"
	"droidfuzz/internal/vkernel"
)

// Executor runs programs on a device and returns cross-boundary feedback.
// Both the in-process Broker and the transport-backed Conn implement it.
type Executor interface {
	Exec(req ExecRequest) (*ExecResult, error)
}

// Broker is the device-side execution broker: it parses incoming programs,
// dispatches each element to the Native or HAL executor by class, brackets
// the run with coverage and trace collection, and bonds the feedback into a
// uniform result (paper §IV-A).
type Broker struct {
	mu        sync.Mutex
	dev       *device.Device
	target    *dsl.Target
	probe     *ebpf.Probe
	ioctlOnly bool
	execs     uint64
}

// NewBroker attaches a broker to the device. The target must contain every
// call description programs may use; extend it after probing with SetTarget.
func NewBroker(dev *device.Device, target *dsl.Target) *Broker {
	b := &Broker{dev: dev, target: target}
	b.probe = dev.Hub.Attach(ebpf.OriginFilter(vkernel.OriginHAL), 0)
	return b
}

// Target returns the broker's current call-description target.
func (b *Broker) Target() *dsl.Target {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.target
}

// SetTarget replaces the call-description target (after HAL probing).
func (b *Broker) SetTarget(t *dsl.Target) {
	b.mu.Lock()
	b.target = t
	b.mu.Unlock()
}

// SetIoctlOnly enables the DROIDFUZZ-D gate: the native executor only runs
// open/close/ioctl calls, and HAL-origin read/write/mmap syscalls are
// blocked in the kernel (paper §V-C2).
func (b *Broker) SetIoctlOnly(on bool) {
	b.mu.Lock()
	b.ioctlOnly = on
	b.mu.Unlock()
	b.applyGate()
}

func (b *Broker) applyGate() {
	b.mu.Lock()
	on := b.ioctlOnly
	k := b.dev.K
	b.mu.Unlock()
	if !on {
		k.SetSyscallGate(nil)
		return
	}
	k.SetSyscallGate(func(origin vkernel.Origin, nr string) bool {
		switch nr {
		case "open", "close", "ioctl":
			return true
		default:
			return false
		}
	})
}

// Reboot restarts the device and re-applies broker-side kernel
// configuration; the harness calls it after any crash.
func (b *Broker) Reboot() {
	b.dev.Reboot()
	b.applyGate()
}

// Device returns the attached device.
func (b *Broker) Device() *device.Device { return b.dev }

// Execs reports the number of programs executed since attach; the harness
// uses it as the device's virtual-time clock.
func (b *Broker) Execs() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.execs
}

// Exec implements Executor: parse, run, collect.
func (b *Broker) Exec(req ExecRequest) (*ExecResult, error) {
	b.mu.Lock()
	target := b.target
	b.execs++
	b.mu.Unlock()

	prog, err := dsl.ParseProg(target, req.ProgText)
	if err != nil {
		return nil, fmt.Errorf("adb: bad program: %w", err)
	}
	return b.ExecProg(prog)
}

// ExecProg runs an already-parsed program (the in-process fast path the
// fuzzing engine uses; the transport path goes through Exec).
func (b *Broker) ExecProg(prog *dsl.Prog) (*ExecResult, error) {
	k := b.dev.K
	k.Cov.Reset()
	k.Cov.Enable()
	defer k.Cov.Disable()
	b.probe.Reset()

	res := &ExecResult{Calls: make([]CallResult, len(prog.Calls))}
	resources := make(map[int]uint64, len(prog.Calls))

	for i, call := range prog.Calls {
		if k.Wedged() {
			break // remaining calls never execute, like a dead device
		}
		mark := k.Cov.Mark()
		var cr CallResult
		if call.Desc.IsHAL() {
			cr = b.execHAL(call, resources)
		} else {
			cr = b.execNative(call, resources)
		}
		cr.Executed = true
		cr.Cover = k.Cov.Slice(mark)
		if call.Desc.Ret != "" && cr.Errno == "OK" {
			resources[i] = cr.Ret
		}
		res.Calls[i] = cr
	}

	res.KernelCov = k.Cov.Trace()
	for _, ev := range b.probe.Take() {
		res.HALTrace = append(res.HALTrace, TraceEvent{
			Seq: ev.Seq, PID: ev.PID, NR: ev.NR, Path: ev.Path, Arg: ev.Arg,
		})
	}
	for _, c := range k.TakeCrashes() {
		res.Crashes = append(res.Crashes, CrashRecord{
			Kind: c.Kind.String(), Title: c.Title, Detail: c.Detail,
			Component: "kernel",
		})
	}
	for _, c := range b.dev.TakeHALCrashes() {
		res.HALDead = true
		res.Crashes = append(res.Crashes, CrashRecord{
			Kind: "HALCRASH", Title: c.Title(), Detail: c.String(),
			Component: c.Label,
		})
	}
	res.Wedged = k.Wedged()
	if len(res.Crashes) > 0 {
		res.Dmesg = k.DmesgTail(32)
	}
	return res, nil
}

// resolve returns the concrete value for a resource argument: the producing
// call's recorded result, or a deliberately bogus handle when invalid.
func resolve(resources map[int]uint64, a dsl.Arg) uint64 {
	if a.Ref < 0 {
		return 0xbadf00d
	}
	v, ok := resources[a.Ref]
	if !ok {
		return 0xbadf00d
	}
	return v
}

// execNative runs one syscall-class call against the kernel.
func (b *Broker) execNative(call *dsl.Call, resources map[int]uint64) CallResult {
	k := b.dev.K
	d := call.Desc
	if b.isIoctlOnly() {
		switch d.Syscall {
		case "open", "close", "ioctl":
		default:
			return CallResult{Errno: "BLOCKED"}
		}
	}
	switch d.Syscall {
	case "open":
		fd, err := k.Open(device.NativePID, vkernel.OriginNative, call.Args[0].Str, 0)
		return CallResult{Errno: vkernel.ErrnoName(err), Ret: uint64(fd)}
	case "close":
		fd := int(resolve(resources, call.Args[0]))
		err := k.Close(device.NativePID, vkernel.OriginNative, fd)
		return CallResult{Errno: vkernel.ErrnoName(err)}
	case "ioctl":
		fd := int(resolve(resources, call.Args[0]))
		req := call.Args[1].Val
		payload := encodePayload(call, resources)
		ret, _, err := k.Ioctl(device.NativePID, vkernel.OriginNative, fd, req, payload)
		return CallResult{Errno: vkernel.ErrnoName(err), Ret: ret}
	case "read":
		fd := int(resolve(resources, call.Args[0]))
		n := int(call.Args[1].Val)
		if n > 1<<16 {
			n = 1 << 16
		}
		data, err := k.Read(device.NativePID, vkernel.OriginNative, fd, n)
		return CallResult{Errno: vkernel.ErrnoName(err), Ret: uint64(len(data))}
	case "write":
		fd := int(resolve(resources, call.Args[0]))
		n, err := k.Write(device.NativePID, vkernel.OriginNative, fd, call.Args[1].Data)
		return CallResult{Errno: vkernel.ErrnoName(err), Ret: uint64(n)}
	case "mmap":
		fd := int(resolve(resources, call.Args[0]))
		cookie, err := k.Mmap(device.NativePID, vkernel.OriginNative, fd, call.Args[1].Val)
		return CallResult{Errno: vkernel.ErrnoName(err), Ret: cookie}
	default:
		return CallResult{Errno: "ENOSYS"}
	}
}

func (b *Broker) isIoctlOnly() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.ioctlOnly
}

// encodePayload builds the ioctl argument buffer from the call's payload
// fields (everything after fd and request): scalars as little-endian u64 in
// order, then at most one trailing raw buffer.
func encodePayload(call *dsl.Call, resources map[int]uint64) []byte {
	var out []byte
	var tail []byte
	for i := 2; i < len(call.Args); i++ {
		f := call.Desc.Args[i]
		a := call.Args[i]
		switch f.Type.Kind {
		case dsl.KindBuffer:
			tail = append(tail, a.Data...)
		case dsl.KindString, dsl.KindFilename:
			tail = append(tail, a.Str...)
			tail = append(tail, 0)
		case dsl.KindResource:
			out = putU64(out, resolve(resources, a))
		default:
			out = putU64(out, a.Val)
		}
	}
	return append(out, tail...)
}

func putU64(b []byte, v uint64) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// execHAL runs one HAL interface invocation through Binder.
func (b *Broker) execHAL(call *dsl.Call, resources map[int]uint64) CallResult {
	d := call.Desc
	in, out := binder.NewParcel(), binder.NewParcel()
	for i, f := range d.Args {
		a := call.Args[i]
		switch f.Type.Kind {
		case dsl.KindBuffer:
			in.WriteBytes(a.Data)
		case dsl.KindString, dsl.KindFilename:
			in.WriteString(a.Str)
		case dsl.KindResource:
			in.WriteUint64(resolve(resources, a))
		default:
			in.WriteUint64(a.Val)
		}
	}
	st := b.dev.SM.Call(d.Service, d.MethodCode, in, out)
	cr := CallResult{Errno: st.String()}
	if st == binder.StatusOK {
		cr.Errno = "OK"
		if d.Ret != "" {
			if v, err := out.ReadUint64(); err == nil {
				cr.Ret = v
			}
		}
	}
	return cr
}
