package adb

import (
	"fmt"
	"strconv"
	"sync"

	"droidfuzz/internal/binder"
	"droidfuzz/internal/device"
	"droidfuzz/internal/dsl"
	"droidfuzz/internal/ebpf"
	"droidfuzz/internal/vkernel"
)

// Executor is the execution boundary between a host-side fuzzing engine and
// a device-side broker (paper §IV-A): everything an engine needs from the
// device, and nothing more. The in-process Broker, the transport-backed
// Conn, and the reconnecting Resilient client all implement it, so every
// layer above — engine, daemon, baselines, CLIs — is transport-agnostic.
type Executor interface {
	// Exec parses and runs a program from its DSL text form.
	Exec(req ExecRequest) (*ExecResult, error)
	// ExecProg runs a parsed program. Remote implementations serialize it
	// to text and go through Exec on the device side; the round trip is
	// lossless (the DSL text form is canonical).
	ExecProg(p *dsl.Prog) (*ExecResult, error)
	// Reboot restarts the device; the engine calls it after any crash.
	Reboot() error
	// Reset brings the device back to pristine post-boot state the cheap
	// way when possible: a copy-on-write snapshot restore, falling back to
	// a full reboot when restore cannot reach pristine state. The returned
	// bool reports which path ran (true = restored, false = rebooted).
	Reset() (bool, error)
	// Ping round-trips a liveness check.
	Ping() error
	// Info returns the device identity handshake: model ID, target
	// descriptor hash, and the reboot/execution counters.
	Info() (Info, error)
	// Target returns the call-description target the executor serves.
	// Remote executors return the host-side target bound at attach time.
	Target() *dsl.Target
}

// Cloner is the optional checkpoint-portability extension of Executor.
// Broker, Conn, and Resilient all implement it; engines type-assert and
// fall back to flat scheduling when the executor cannot clone.
type Cloner interface {
	// ExportCheckpoint serializes the device's current state into a
	// portable, model-tagged blob (device.Checkpoint in gob form).
	ExportCheckpoint() ([]byte, error)
	// ImportCheckpoint re-materializes an exported blob onto the device,
	// which must be of the same model. The imported state becomes the
	// device's reset point until the next reboot or import.
	ImportCheckpoint(blob []byte) error
}

// Info is the executor handshake payload: enough for a host-side engine to
// verify it is talking to the device it thinks it is, with the interface
// surface it generated programs against.
type Info struct {
	// ModelID is the Table I device model ("A1", "B", ...).
	ModelID string
	// TargetHash fingerprints the broker's call-description target
	// (dsl.Target.Hash); a host engine rejects a mismatch at attach time.
	TargetHash uint64
	// Reboots counts device reboots since boot.
	Reboots int
	// Restores counts snapshot restores (cheap resets) since boot.
	Restores int
	// Execs counts broker executions (the device's virtual-time clock).
	Execs uint64
}

// Broker is the device-side execution broker: it parses incoming programs,
// dispatches each element to the Native or HAL executor by class, brackets
// the run with coverage and trace collection, and bonds the feedback into a
// uniform result (paper §IV-A).
type Broker struct {
	mu        sync.Mutex
	dev       *device.Device
	target    *dsl.Target
	probe     *ebpf.Probe
	ioctlOnly bool
	execs     uint64
	failNext  int
}

var (
	_ Executor      = (*Broker)(nil)
	_ BatchExecutor = (*Broker)(nil)
	_ Cloner        = (*Broker)(nil)
)

// NewBroker attaches a broker to the device. The target must contain every
// call description programs may use; extend it after probing with SetTarget.
func NewBroker(dev *device.Device, target *dsl.Target) *Broker {
	b := &Broker{dev: dev, target: target}
	b.probe = dev.Hub.Attach(ebpf.OriginFilter(vkernel.OriginHAL), 0)
	return b
}

// Target returns the broker's current call-description target.
func (b *Broker) Target() *dsl.Target {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.target
}

// SetTarget replaces the call-description target (after HAL probing).
func (b *Broker) SetTarget(t *dsl.Target) {
	b.mu.Lock()
	b.target = t
	b.mu.Unlock()
}

// SetIoctlOnly enables the DROIDFUZZ-D gate: the native executor only runs
// open/close/ioctl calls, and HAL-origin read/write/mmap syscalls are
// blocked in the kernel (paper §V-C2).
func (b *Broker) SetIoctlOnly(on bool) {
	b.mu.Lock()
	b.ioctlOnly = on
	b.mu.Unlock()
	b.applyGate()
}

func (b *Broker) applyGate() {
	b.mu.Lock()
	on := b.ioctlOnly
	k := b.dev.K
	b.mu.Unlock()
	if !on {
		k.SetSyscallGate(nil)
		return
	}
	k.SetSyscallGate(func(origin vkernel.Origin, nr string) bool {
		switch nr {
		case "open", "close", "ioctl":
			return true
		default:
			return false
		}
	})
}

// Reboot restarts the device and re-applies broker-side kernel
// configuration; the harness calls it after any crash. The in-process
// reboot cannot fail; the error is part of the Executor contract, where
// remote reboots can.
func (b *Broker) Reboot() error {
	b.dev.Reboot()
	b.applyGate()
	return nil
}

// Reset implements Executor: a copy-on-write snapshot restore when the
// device can reach pristine state that way, else a full reboot. The kernel
// object survives a restore, so an installed ioctl-only gate stays in
// place; only the reboot fallback needs it re-applied.
func (b *Broker) Reset() (bool, error) {
	if b.dev.Restore() {
		return true, nil
	}
	b.dev.Reboot()
	b.applyGate()
	return false, nil
}

// ExportCheckpoint implements Cloner by serializing the attached device's
// current state.
func (b *Broker) ExportCheckpoint() ([]byte, error) {
	return b.dev.ExportCheckpoint()
}

// ImportCheckpoint implements Cloner. The kernel object survives an import
// exactly as it survives a restore, so an installed ioctl-only gate stays
// in place.
func (b *Broker) ImportCheckpoint(blob []byte) error {
	return b.dev.ImportCheckpoint(blob)
}

// Ping implements Executor; the in-process broker is always reachable.
func (b *Broker) Ping() error { return nil }

// Info implements Executor with the device's live identity and counters.
func (b *Broker) Info() (Info, error) {
	b.mu.Lock()
	target := b.target
	execs := b.execs
	b.mu.Unlock()
	return Info{
		ModelID:    b.dev.Model.ID,
		TargetHash: target.Hash(),
		Reboots:    b.dev.Reboots(),
		Restores:   b.dev.Restores(),
		Execs:      execs,
	}, nil
}

// Device returns the attached device.
func (b *Broker) Device() *device.Device { return b.dev }

// FailNext makes the next n executions fail with a synthetic transport
// error, modeling ADB link flakiness; tests use it to drive the engine's
// error accounting.
func (b *Broker) FailNext(n int) {
	b.mu.Lock()
	b.failNext = n
	b.mu.Unlock()
}

// takeFault consumes one injected fault, if armed.
func (b *Broker) takeFault() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.failNext > 0 {
		b.failNext--
		return true
	}
	return false
}

// Execs reports the number of programs executed since attach; the harness
// uses it as the device's virtual-time clock.
func (b *Broker) Execs() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.execs
}

// Exec implements Executor: parse, run, collect. The result is pooled;
// ownership transfers to the caller, who must Release it when done.
func (b *Broker) Exec(req ExecRequest) (*ExecResult, error) {
	b.mu.Lock()
	target := b.target
	b.execs++
	b.mu.Unlock()

	prog, err := dsl.ParseProg(target, req.ProgText)
	if err != nil {
		return nil, fmt.Errorf("adb: bad program: %w", err)
	}
	return b.ExecProg(prog)
}

// ExecBatch implements BatchExecutor in-process: the programs run back to
// back in order, a nil entry marking each one that failed (bad program,
// injected fault). Summary mode is meaningless without a wire and is
// ignored — results are always exact. Every non-nil result is pooled and
// owned by the caller (Release each when done).
func (b *Broker) ExecBatch(req ExecBatchRequest) ([]*ExecResult, error) {
	out := make([]*ExecResult, len(req.Progs))
	for i, text := range req.Progs {
		res, err := b.Exec(ExecRequest{ProgText: text})
		if err != nil {
			continue
		}
		out[i] = res
	}
	return out, nil
}

// resTable records per-call results for resource-argument resolution. It is
// pooled: a map would be one allocation per execution on the hot path.
type resTable struct {
	vals []uint64
	set  []bool
	san  sanState // zero-sized unless built with -tags droidfuzz_sanitize
}

var resPool = sync.Pool{New: func() any { return new(resTable) }}

// getResTable hands out a pooled table sized for n results; the caller
// owns it and must release() it after the execution completes.
func getResTable(n int) *resTable {
	t := resPool.Get().(*resTable)
	t.san.acquire()
	if cap(t.vals) < n {
		t.vals = make([]uint64, n)
		t.set = make([]bool, n)
	}
	t.vals = t.vals[:n]
	t.set = t.set[:n]
	for i := range t.set {
		t.set[i] = false
		t.vals[i] = 0
	}
	return t
}

func (t *resTable) put(i int, v uint64) {
	t.san.alive("adb.resTable.put")
	if i >= 0 && i < len(t.vals) {
		t.vals[i] = v
		t.set[i] = true
	}
}

func (t *resTable) release() {
	t.san.release("adb.resTable", sanCaller())
	resPool.Put(t)
}

// ExecProg runs an already-parsed program (the in-process fast path the
// fuzzing engine uses; the transport path goes through Exec). The returned
// result is pooled: callers that are done with it should Release it so its
// buffers are recycled; callers that retain it may simply let it go to GC.
func (b *Broker) ExecProg(prog *dsl.Prog) (*ExecResult, error) {
	if b.takeFault() {
		return nil, fmt.Errorf("adb: transport fault (injected)")
	}
	k := b.dev.K
	k.Cov.Reset()
	k.Cov.Enable()
	defer k.Cov.Disable()
	b.probe.Reset()

	res := resultPool.Get().(*ExecResult)
	res.san.acquire()
	res.prepare(len(prog.Calls))
	resources := getResTable(len(prog.Calls))
	defer resources.release()

	for i, call := range prog.Calls {
		if k.Wedged() {
			break // remaining calls never execute, like a dead device
		}
		mark := k.Cov.Mark()
		cr := &res.Calls[i]
		switch {
		case call.Desc.IsHAL():
			b.execHAL(call, resources, cr)
		case call.Desc.Class == dsl.ClassParam:
			b.execParam(call, cr)
		default:
			b.execNative(call, resources, cr)
		}
		cr.Executed = true
		cr.Cover = k.Cov.AppendTo(cr.Cover[:0], mark)
		if call.Desc.Ret != "" && cr.Errno == "OK" {
			resources.put(i, cr.Ret)
		}
	}

	res.KernelCov = k.Cov.AppendTo(res.KernelCov[:0], 0)
	b.probe.Drain(func(ev vkernel.Event) {
		res.HALTrace = append(res.HALTrace, TraceEvent{
			Seq: ev.Seq, PID: ev.PID, NR: ev.NR, Path: ev.Path, Arg: ev.Arg,
		})
	})
	for _, c := range k.TakeCrashes() {
		res.Crashes = append(res.Crashes, CrashRecord{
			Kind: c.Kind.String(), Title: c.Title, Detail: c.Detail,
			Component: "kernel",
		})
	}
	for _, c := range b.dev.TakeHALCrashes() {
		res.HALDead = true
		res.Crashes = append(res.Crashes, CrashRecord{
			Kind: "HALCRASH", Title: c.Title(), Detail: c.String(),
			Component: c.Label,
		})
	}
	res.Wedged = k.Wedged()
	if len(res.Crashes) > 0 {
		res.Dmesg = k.DmesgTail(32)
	}
	return res, nil
}

// resolve returns the concrete value for a resource argument: the producing
// call's recorded result, or a deliberately bogus handle when invalid.
func resolve(resources *resTable, a dsl.Arg) uint64 {
	resources.san.alive("adb.resolve(resTable)")
	if a.Ref < 0 || a.Ref >= len(resources.vals) || !resources.set[a.Ref] {
		return 0xbadf00d
	}
	return resources.vals[a.Ref]
}

// execNative runs one syscall-class call against the kernel, writing the
// outcome into cr (a slot of the pooled result).
func (b *Broker) execNative(call *dsl.Call, resources *resTable, cr *CallResult) {
	k := b.dev.K
	d := call.Desc
	if b.isIoctlOnly() {
		switch d.Syscall {
		case "open", "close", "ioctl":
		default:
			cr.Errno = "BLOCKED"
			return
		}
	}
	switch d.Syscall {
	case "open":
		fd, err := k.Open(device.NativePID, vkernel.OriginNative, call.Args[0].Str, 0)
		cr.Errno, cr.Ret = vkernel.ErrnoName(err), uint64(fd)
	case "close":
		fd := int(resolve(resources, call.Args[0]))
		err := k.Close(device.NativePID, vkernel.OriginNative, fd)
		cr.Errno = vkernel.ErrnoName(err)
	case "ioctl":
		fd := int(resolve(resources, call.Args[0]))
		req := call.Args[1].Val
		payload := encodePayload(call, resources)
		ret, _, err := k.Ioctl(device.NativePID, vkernel.OriginNative, fd, req, payload)
		cr.Errno, cr.Ret = vkernel.ErrnoName(err), ret
	case "read":
		fd := int(resolve(resources, call.Args[0]))
		n := int(call.Args[1].Val)
		if n > 1<<16 {
			n = 1 << 16
		}
		data, err := k.Read(device.NativePID, vkernel.OriginNative, fd, n)
		cr.Errno, cr.Ret = vkernel.ErrnoName(err), uint64(len(data))
	case "write":
		fd := int(resolve(resources, call.Args[0]))
		n, err := k.Write(device.NativePID, vkernel.OriginNative, fd, call.Args[1].Data)
		cr.Errno, cr.Ret = vkernel.ErrnoName(err), uint64(n)
	case "mmap":
		fd := int(resolve(resources, call.Args[0]))
		cookie, err := k.Mmap(device.NativePID, vkernel.OriginNative, fd, call.Args[1].Val)
		cr.Errno, cr.Ret = vkernel.ErrnoName(err), cookie
	default:
		cr.Errno = "ENOSYS"
	}
}

// execParam runs one runtime-parameter write as the composed
// open/write/close sequence the native executor issues against the sysfs
// attribute. Every leg goes through the ordinary syscall table, so the
// ioctl-only gate rejects the write leg (EPERM) — an ioctl-confined fuzzer
// structurally cannot flip a knob.
func (b *Broker) execParam(call *dsl.Call, cr *CallResult) {
	k := b.dev.K
	d := call.Desc
	fd, err := k.Open(device.NativePID, vkernel.OriginNative, d.Param, 0)
	if err != nil {
		cr.Errno = vkernel.ErrnoName(err)
		return
	}
	var text string
	if d.Args[0].Type.Kind == dsl.KindString {
		text = call.Args[0].Str
	} else {
		text = strconv.FormatUint(call.Args[0].Val, 10)
	}
	_, werr := k.Write(device.NativePID, vkernel.OriginNative, fd, []byte(text+"\n"))
	cerr := k.Close(device.NativePID, vkernel.OriginNative, fd)
	switch {
	case werr != nil:
		cr.Errno = vkernel.ErrnoName(werr)
	case cerr != nil:
		cr.Errno = vkernel.ErrnoName(cerr)
	default:
		cr.Errno = "OK"
	}
}

func (b *Broker) isIoctlOnly() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.ioctlOnly
}

// encodePayload builds the ioctl argument buffer from the call's payload
// fields (everything after fd and request): scalars as little-endian u64 in
// order, then at most one trailing raw buffer.
func encodePayload(call *dsl.Call, resources *resTable) []byte {
	var out []byte
	var tail []byte
	for i := 2; i < len(call.Args); i++ {
		f := call.Desc.Args[i]
		a := call.Args[i]
		switch f.Type.Kind {
		case dsl.KindBuffer:
			tail = append(tail, a.Data...)
		case dsl.KindString, dsl.KindFilename:
			tail = append(tail, a.Str...)
			tail = append(tail, 0)
		case dsl.KindResource:
			out = putU64(out, resolve(resources, a))
		default:
			out = putU64(out, a.Val)
		}
	}
	return append(out, tail...)
}

func putU64(b []byte, v uint64) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// execHAL runs one HAL interface invocation through Binder, writing the
// outcome into cr.
func (b *Broker) execHAL(call *dsl.Call, resources *resTable, cr *CallResult) {
	d := call.Desc
	in, out := binder.NewParcel(), binder.NewParcel()
	for i, f := range d.Args {
		a := call.Args[i]
		switch f.Type.Kind {
		case dsl.KindBuffer:
			in.WriteBytes(a.Data)
		case dsl.KindString, dsl.KindFilename:
			in.WriteString(a.Str)
		case dsl.KindResource:
			in.WriteUint64(resolve(resources, a))
		default:
			in.WriteUint64(a.Val)
		}
	}
	st := b.dev.SM.Call(d.Service, d.MethodCode, in, out)
	cr.Errno = st.String()
	if st == binder.StatusOK {
		cr.Errno = "OK"
		if d.Ret != "" {
			if v, err := out.ReadUint64(); err == nil {
				cr.Ret = v
			}
		}
	}
}
