package adb

import (
	"bytes"
	"net"
	"strings"
	"testing"

	"droidfuzz/internal/dsl"
)

// dialCheckpointRig serves b over an in-memory pipe and returns the host
// connection.
func dialCheckpointRig(t *testing.T, x Executor) *Conn {
	t.Helper()
	host, devSide := net.Pipe()
	go Serve(devSide, x)
	t.Cleanup(func() { host.Close() })
	return Dial(host)
}

// TestTransportCheckpointRoundTrip drives the Export/ImportCheckpoint
// RPCs end to end: a checkpoint exported over the wire, imported back over
// the wire, and re-exported must be byte-identical, for both pristine and
// dirtied device state.
func TestTransportCheckpointRoundTrip(t *testing.T) {
	b, _ := newBrokerRig(t, "A1")
	conn := dialCheckpointRig(t, b)

	pristine, err := conn.ExportCheckpoint()
	if err != nil {
		t.Fatalf("export pristine: %v", err)
	}

	// Dirty the device through the same wire, then capture that state too.
	prog := `r0 = open$tcpc(path="/dev/tcpc0")
ioctl$TCPC_SET_MODE(fd=r0, req=0xa102, mode=0x3)
`
	if _, err := conn.Exec(ExecRequest{ProgText: prog}); err != nil {
		t.Fatalf("dirtying exec: %v", err)
	}
	dirty, err := conn.ExportCheckpoint()
	if err != nil {
		t.Fatalf("export dirty: %v", err)
	}
	if bytes.Equal(pristine, dirty) {
		t.Fatal("dirtying the device did not change its checkpoint")
	}

	// Rewind to pristine over the wire and cross-check by re-export.
	if err := conn.ImportCheckpoint(pristine); err != nil {
		t.Fatalf("import pristine: %v", err)
	}
	back, err := conn.ExportCheckpoint()
	if err != nil {
		t.Fatalf("re-export: %v", err)
	}
	if !bytes.Equal(pristine, back) {
		t.Fatalf("remote round trip distorted the checkpoint: %d vs %d bytes",
			len(pristine), len(back))
	}
}

// TestTransportImportRejectsGarbageBlob: a corrupt blob must come back as
// a typed remote error, not a hang or a silent ack.
func TestTransportImportRejectsGarbageBlob(t *testing.T) {
	b, _ := newBrokerRig(t, "A1")
	conn := dialCheckpointRig(t, b)
	if err := conn.ImportCheckpoint([]byte("not a checkpoint")); err == nil {
		t.Fatal("garbage blob imported without error")
	}
}

// flatExecutor wraps a Broker but deliberately does not implement Cloner,
// modeling a device-side executor without checkpoint support.
type flatExecutor struct{ b *Broker }

func (f *flatExecutor) Exec(req ExecRequest) (*ExecResult, error) { return f.b.Exec(req) }
func (f *flatExecutor) ExecProg(p *dsl.Prog) (*ExecResult, error) { return f.b.ExecProg(p) }
func (f *flatExecutor) Reboot() error                             { return f.b.Reboot() }
func (f *flatExecutor) Ping() error                               { return f.b.Ping() }
func (f *flatExecutor) Reset() (bool, error)                      { return f.b.Reset() }
func (f *flatExecutor) Info() (Info, error)                       { return f.b.Info() }
func (f *flatExecutor) Target() *dsl.Target                       { return f.b.Target() }

// TestTransportCheckpointUnsupportedExecutor: a server fronting a
// non-Cloner executor must reject both RPCs with a descriptive error so
// host engines fall back to flat scheduling.
func TestTransportCheckpointUnsupportedExecutor(t *testing.T) {
	b, _ := newBrokerRig(t, "A1")
	conn := dialCheckpointRig(t, &flatExecutor{b: b})
	if _, err := conn.ExportCheckpoint(); err == nil ||
		!strings.Contains(err.Error(), "does not support checkpoints") {
		t.Fatalf("export on non-Cloner executor: %v", err)
	}
	if err := conn.ImportCheckpoint([]byte{1}); err == nil ||
		!strings.Contains(err.Error(), "does not support checkpoints") {
		t.Fatalf("import on non-Cloner executor: %v", err)
	}
}
