package adb

// Coordinator wire protocol (fleet federation). A multi-host campaign runs
// one droidcoordd; every host speaks this request/reply vocabulary to it
// over the same gob stream discipline as the broker protocol — lock-step
// frames, ErrTransport on stream failures, *RemoteError on coordinator
// rejections. The frame roots are droidvet wire-frame roots: any layout
// drift must be deliberate and lands in wire.lock.
//
// The vocabulary mirrors the shard lifecycle: a host Registers once, then
// loops Lease → (Progress…) → Complete per shard, Heartbeats in the
// background, and finishes with a Sync that drains the remaining
// federation delta. Every Lease, Progress, and Sync reply carries the
// coordinator's downlink — the merged-novelty delta the host lacks — so
// federation needs no extra round trips.

// CoordRequest is one host→coordinator frame; exactly one payload field is
// set.
type CoordRequest struct {
	// Seq is the client's per-host request sequence number, strictly
	// increasing across calls (0 disables duplicate detection). A transport
	// failure after the coordinator processed a request but before the
	// reply landed is ambiguous to the client, so it retries with the SAME
	// Seq; the coordinator detects the duplicate and returns its cached
	// reply verbatim instead of re-running the handler. That is what makes
	// state-mutating RPCs — Lease hands out a shard, every downlink
	// advances federation cursors — safe to retry.
	Seq uint64

	Register  *CoordRegister
	Heartbeat *CoordHeartbeat
	Lease     *CoordLeaseRequest
	Progress  *CoordProgress
	Complete  *CoordComplete
	Sync      *CoordSync
}

// CoordReply is one coordinator→host frame: the field matching the request
// kind is set, or Err carries a coordinator-side rejection (the stream
// stays healthy — clients surface it as *RemoteError).
type CoordReply struct {
	Registered *CoordRegistered
	Beat       *CoordBeat
	Shard      *CoordShard
	Ack        *CoordAck
	Err        string
}

// CoordRegister announces a host joining the campaign.
type CoordRegister struct {
	// Name is an advisory operator label; the coordinator assigns the ID.
	Name string
	// Nonce is a random client-instance identity (0 disables dedup).
	// Registration happens before the host has an ID, so Seq-based
	// duplicate detection cannot cover it; a retried Register with the
	// same nonce returns the original identity instead of admitting a
	// ghost host that would strand its pre-partitioned shard queue.
	Nonce uint64
}

// CoordRegistered is the registration outcome.
type CoordRegistered struct {
	// HostID is the coordinator-assigned identity. Hosts prefix their
	// device IDs with it, which is what makes (device, seq) learn keys
	// globally unique across the fleet.
	HostID string
	// EpochIters is the federation cadence: iterations per device between
	// a host's uplink/downlink exchanges.
	EpochIters int
}

// CoordHeartbeat is the background liveness beacon.
type CoordHeartbeat struct {
	HostID string
	// Execs is the host's lifetime execution count, for health scoring.
	Execs uint64
}

// CoordBeat answers a heartbeat.
type CoordBeat struct {
	// Health is the coordinator's current score for the host in [0, 1].
	Health float64
}

// CoordLeaseRequest asks for the next shard.
type CoordLeaseRequest struct {
	HostID string
}

// CoordShard is one leased campaign shard plus its warm-start payload.
type CoordShard struct {
	// Done means the campaign is drained; no other field is set.
	Done bool
	// Wait means no shard is available right now but others still hold
	// leases (their shards may yet be requeued) — poll again shortly.
	Wait bool

	ID      int
	Model   string
	Devices int
	// Iters is the remaining per-device iteration budget: a requeued shard
	// resumes where its previous owner's last Progress report left it.
	Iters int
	// Seed is the shard's base RNG seed; device j runs Seed + j.
	Seed int64
	// Stolen marks a shard taken from another host's queue (or requeued
	// from an evicted host) rather than from the leasing host's own.
	Stolen bool
	// Checkpoint, when non-nil, is the portable device checkpoint from the
	// shard's previous owner's last Progress report; importing it into the
	// shard's fresh devices resumes warm instead of cold.
	Checkpoint []byte
	// Batch is the federation downlink: merged novelty this host lacks,
	// shipped with the lease so even a stolen shard starts from the
	// fleet's current corpus.
	Batch *FedBatch
}

// CoordProgress reports in-flight shard progress and carries the host's
// periodic federation uplink.
type CoordProgress struct {
	HostID  string
	ShardID int
	// ExecsDone is the per-device iteration count completed under the
	// current lease; the coordinator adds inherited progress itself and
	// uses the sum to requeue the remainder if this host dies.
	ExecsDone int
	// Checkpoint is the current portable device checkpoint (optional); the
	// latest one rides along with the shard if it is requeued.
	Checkpoint []byte
	// Batch is the uplink delta: corpus admissions, vertices, and learn
	// records new since the host's previous exchange.
	Batch *FedBatch
}

// CoordComplete reports a finished shard with its final uplink.
type CoordComplete struct {
	HostID  string
	ShardID int
	Batch   *FedBatch
}

// CoordSync is a pure federation exchange outside any shard: the optional
// uplink delta in, the downlink delta out. Hosts use it to drain the final
// merged state after the campaign is done.
type CoordSync struct {
	HostID string
	Batch  *FedBatch
}

// CoordAck acknowledges Progress, Complete, and Sync, carrying the
// downlink delta.
type CoordAck struct {
	Batch *FedBatch
}

// FedBatch is one federation delta: everything one side learned that the
// other has not seen. All three sections are deduplicated by the sender
// against what it knows the receiver holds, so steady-state batches carry
// only genuine novelty.
type FedBatch struct {
	// Progs are canonical corpus program texts, identified fleet-wide by
	// their 64-bit FNV-1a text hash (corpus.Hash).
	Progs []string
	// Verts registers relation-graph vertices (the union graph's node set;
	// receivers that cannot generate a vertex simply ignore learns naming
	// it).
	Verts []FedVertex
	// Learns is the delta/varint-coded learn-record block.
	Learns FedLearns
}

// FedVertex is one relation-graph vertex spec.
type FedVertex struct {
	Name   string
	Weight float64
}

// FedLearns is a block of (device, seq)-stamped relation learn records in
// columnar delta/varint coding: each record's vertex pair and device are
// table indexes, and the four index/seq columns ride the kcov zigzag-varint
// delta codec — the same machinery that compresses coverage traces, applied
// to the federation uplink. Encode/decode live in internal/coord.
type FedLearns struct {
	// Names is the vertex name table; Devices the device-ID table. Both
	// are local to this block and ordered by first appearance.
	Names   []string
	Devices []string
	// A, B, Dev, and Seq are delta-coded uint32 columns of Count entries
	// each: indexes into Names (A, B), indexes into Devices (Dev), and the
	// per-device learn sequence numbers (Seq).
	A, B, Dev, Seq []byte
	Count          int
}
