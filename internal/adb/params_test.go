package adb

import (
	"testing"

	"droidfuzz/internal/device"
	"droidfuzz/internal/dsl"
	"droidfuzz/internal/kcov"
)

// newParamRig boots a model and builds a broker whose target carries the
// runtime-parameter call descriptions alongside the native syscall surface,
// the way a param-enabled campaign assembles it.
func newParamRig(t *testing.T, modelID string) (*Broker, *device.Device) {
	t.Helper()
	m, err := device.ModelByID(modelID)
	if err != nil {
		t.Fatal(err)
	}
	dev := device.New(m)
	target, err := dsl.NewTarget(dev.SyscallDescs()...)
	if err != nil {
		t.Fatal(err)
	}
	target, err = target.Extend(dev.ParamDescs()...)
	if err != nil {
		t.Fatal(err)
	}
	return NewBroker(dev, target), dev
}

func hasPC(cover []uint32, pc uint32) bool {
	for _, c := range cover {
		if c == pc {
			return true
		}
	}
	return false
}

// ovpProg raises the PD contract ceiling, disables compliance checking, and
// negotiates a 21 V contract: the SyzParam bug-class program — two sysfs
// knobs plus one ioctl — that reaches Bug №13 on A1.
const ovpProg = `param$tcpc.max_contract_mv(value=0x7530)
param$tcpc.pd_compliance(value=0x0)
r2 = open$tcpc(path="/dev/tcpc0")
ioctl$TCPC_SET_MODE(fd=r2, req=0xa102, mode=0x3)
ioctl$TCPC_SET_VOLTAGE(fd=r2, req=0xa103, mv=0x5208)
`

// TestParamGatedBugNeedsKnobsAndIoctl pins the reachability contract of the
// seeded param-gated bug: both knob writes plus the ioctl fire the WARNING;
// with compliance checking left at its default the same contract is clamped
// (site 610); and without any knob write the ceiling check bounces the
// ioctl before the gated region — no ioctl sequence alone can get there.
func TestParamGatedBugNeedsKnobsAndIoctl(t *testing.T) {
	b, _ := newParamRig(t, "A1") // A1 seeds bugs.TCPCContractOVP

	res, err := b.Exec(ExecRequest{ProgText: ovpProg})
	if err != nil {
		t.Fatal(err)
	}
	if res.Calls[0].Errno != "OK" || res.Calls[1].Errno != "OK" {
		t.Fatalf("param writes failed: %+v / %+v", res.Calls[0], res.Calls[1])
	}
	if res.Calls[4].Errno != "EIO" {
		t.Fatalf("gated ioctl errno = %s, want EIO", res.Calls[4].Errno)
	}
	found := false
	for _, cr := range res.Crashes {
		if cr.Title == "WARNING in tcpc_pd_select_pdo" {
			found = true
		}
	}
	if !found {
		t.Fatalf("gated bug not reported: %+v", res.Crashes)
	}
	if !hasPC(res.Calls[4].Cover, kcov.PC("tcpc", 611)) {
		t.Fatal("compliance-off gated site 611 not covered")
	}
	if !hasPC(res.Calls[4].Cover, kcov.PC("tcpc", 600)) {
		t.Fatal("extended-tier gated site 600 not covered")
	}

	// Compliance checking at its default (1): same ceiling raise, same
	// ioctl — the contract clamps at site 610 and nothing warns. The two
	// knobs interact; one alone does not reach the bug.
	b.Reboot()
	res, err = b.Exec(ExecRequest{ProgText: `param$tcpc.max_contract_mv(value=0x7530)
r1 = open$tcpc(path="/dev/tcpc0")
ioctl$TCPC_SET_MODE(fd=r1, req=0xa102, mode=0x3)
ioctl$TCPC_SET_VOLTAGE(fd=r1, req=0xa103, mv=0x5208)
`})
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashed() {
		t.Fatalf("clamped contract crashed: %+v", res.Crashes)
	}
	if res.Calls[3].Errno != "OK" {
		t.Fatalf("clamped ioctl errno = %s, want OK", res.Calls[3].Errno)
	}
	if !hasPC(res.Calls[3].Cover, kcov.PC("tcpc", 610)) {
		t.Fatal("compliance clamp site 610 not covered")
	}
	if hasPC(res.Calls[3].Cover, kcov.PC("tcpc", 611)) {
		t.Fatal("compliance-off site 611 covered with compliance on")
	}

	// No knob writes at all: the maximum in-range voltage argument cannot
	// pass the default ceiling check.
	b.Reboot()
	res, err = b.Exec(ExecRequest{ProgText: `r0 = open$tcpc(path="/dev/tcpc0")
ioctl$TCPC_SET_MODE(fd=r0, req=0xa102, mode=0x3)
ioctl$TCPC_SET_VOLTAGE(fd=r0, req=0xa103, mv=0x5208)
`})
	if err != nil {
		t.Fatal(err)
	}
	if res.Calls[2].Errno != "EINVAL" {
		t.Fatalf("over-ceiling ioctl errno = %s, want EINVAL", res.Calls[2].Errno)
	}
	for s := uint32(600); s < 612; s++ {
		if hasPC(res.KernelCov, kcov.PC("tcpc", s)) {
			t.Fatalf("gated site %d covered without knob writes", s)
		}
	}
}

// TestIoctlOnlyGateBlocksParamWrites drives the same bug-reaching program
// through the DROIDFUZZ-D gate: the kernel blocks the write leg of every
// param call, the knobs stay at their defaults, and the gated region stays
// unreachable — the ablation provably cannot flip a knob even though its
// target carries the descriptions.
func TestIoctlOnlyGateBlocksParamWrites(t *testing.T) {
	b, dev := newParamRig(t, "A1")
	b.SetIoctlOnly(true)

	res, err := b.Exec(ExecRequest{ProgText: ovpProg})
	if err != nil {
		t.Fatal(err)
	}
	if res.Calls[0].Errno != "EPERM" || res.Calls[1].Errno != "EPERM" {
		t.Fatalf("param writes not blocked: %+v / %+v", res.Calls[0], res.Calls[1])
	}
	if res.Calls[4].Errno != "EINVAL" {
		t.Fatalf("gated ioctl errno = %s, want EINVAL (default ceiling)", res.Calls[4].Errno)
	}
	if res.Crashed() {
		t.Fatalf("ioctl-only run crashed: %+v", res.Crashes)
	}
	for _, kn := range dev.ParamSurface() {
		if kn.Family() != "tcpc" {
			continue
		}
		if v := kn.Int(kn.Index("max_contract_mv")); v != 20000 {
			t.Fatalf("max_contract_mv = %d after gated write, want 20000", v)
		}
		if v := kn.Int(kn.Index("pd_compliance")); v != 1 {
			t.Fatalf("pd_compliance = %d after gated write, want 1", v)
		}
	}
	for s := uint32(600); s < 612; s++ {
		if hasPC(res.KernelCov, kcov.PC("tcpc", s)) {
			t.Fatalf("gated site %d covered under the ioctl-only gate", s)
		}
	}
}
