package adb

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"droidfuzz/internal/dsl"
)

// ResilientOptions tune the reconnecting remote executor.
type ResilientOptions struct {
	// DialTimeout bounds one connection attempt (default 2s).
	DialTimeout time.Duration
	// CallTimeout bounds one RPC round trip (default 10s).
	CallTimeout time.Duration
	// MaxAttempts is how many reconnect-and-retry cycles one operation
	// performs before giving up (default 2).
	MaxAttempts int
	// BackoffBase is the first reconnect delay; it doubles per consecutive
	// failure up to BackoffMax (defaults 50ms and 2s).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Window bounds in-flight requests per connection (default
	// adb.DefaultWindow).
	Window int
	// BatchFrame bounds programs per batched wire frame (default
	// adb.DefaultBatchFrame).
	BatchFrame int
}

func (o *ResilientOptions) defaults() {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 2 * time.Second
	}
	if o.CallTimeout <= 0 {
		o.CallTimeout = 10 * time.Second
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 2
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 50 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 2 * time.Second
	}
}

// Resilient is a reconnecting remote Executor over the ADB-stand-in
// transport. Transport failures trigger a bounded redial-with-backoff and
// one retry of the failed operation; when the broker stays unreachable the
// client enters a cooldown during which every operation fails immediately,
// so a dead broker degrades its engine (surfacing as ExecErrors) at
// near-zero per-iteration cost instead of stalling or killing the fleet.
// Reconnections re-run the identity handshake and refuse a broker whose
// target fingerprint changed.
//
// Resilient paces retries with the wall clock, so remote campaigns are not
// bit-replayable under injected faults; see DESIGN.md.
type Resilient struct {
	addr string
	opts ResilientOptions

	mu         sync.Mutex
	conn       *Conn
	target     *dsl.Target
	info       Info
	seeds      []string
	fatal      error
	downUntil  time.Time
	failStreak int
	// wire accumulates the uplink accounting of connections already
	// retired; the live connection's share is added on read.
	wire WireStats
	// now and rng are the backoff clock and jitter source; nil means wall
	// clock and a wall-clock-seeded generator. Tests inject deterministic
	// ones to exercise the cooldown envelope without sleeping.
	now func() time.Time
	rng *rand.Rand
}

var (
	_ Executor      = (*Resilient)(nil)
	_ BatchExecutor = (*Resilient)(nil)
	_ Cloner        = (*Resilient)(nil)
)

// DialResilient connects to a broker daemon at addr and performs the
// attach handshake, returning a reconnecting Executor bound to the
// device's call-description target.
func DialResilient(addr string, opts ResilientOptions) (*Resilient, error) {
	opts.defaults()
	r := &Resilient{addr: addr, opts: opts}
	conn, err := r.dial()
	if err != nil {
		return nil, err
	}
	rep, err := conn.Handshake()
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("adb: attach %s: %w", addr, err)
	}
	r.conn = conn
	r.target = conn.Target()
	r.info = rep.Info
	r.seeds = rep.Seeds
	return r, nil
}

// dial opens and configures one connection (no handshake).
func (r *Resilient) dial() (*Conn, error) {
	conn, err := DialTCPTimeout(r.addr, r.opts.DialTimeout)
	if err != nil {
		return nil, err
	}
	conn.SetCallTimeout(r.opts.CallTimeout)
	conn.SetWindow(r.opts.Window)
	conn.SetBatchFrame(r.opts.BatchFrame)
	return conn, nil
}

// Addr returns the broker address the client reconnects to.
func (r *Resilient) Addr() string { return r.addr }

// Seeds returns the probing-pass seed programs (DSL text) delivered by the
// attach handshake.
func (r *Resilient) Seeds() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seeds
}

// Target implements Executor with the target bound at attach time.
func (r *Resilient) Target() *dsl.Target {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.target
}

// Close drops the current connection; a later operation redials.
func (r *Resilient) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.conn != nil {
		r.wire.Add(r.conn.WireStats())
		r.conn.Close()
		r.conn = nil
	}
	return nil
}

// WireStats returns the uplink accounting accumulated across every
// connection this client has used (batched executions only).
func (r *Resilient) WireStats() WireStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	w := r.wire
	if r.conn != nil {
		w.Add(r.conn.WireStats())
	}
	return w
}

// get returns a live connection, redialing if needed. During cooldown it
// fails immediately so operations against a dead broker stay cheap.
func (r *Resilient) get() (*Conn, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.fatal != nil {
		return nil, r.fatal
	}
	if r.conn != nil {
		return r.conn, nil
	}
	// Reconnect backoff is wall-clock by nature: it gates transport
	// redials, never a fuzzing decision, and replay runs in-process
	// without a Resilient client at all.
	if now := r.clockLocked()(); now.Before(r.downUntil) {
		return nil, fmt.Errorf("%w: %s down, retry in %v",
			ErrTransport, r.addr, r.downUntil.Sub(now).Round(time.Millisecond))
	}
	conn, err := r.dial()
	if err != nil {
		r.noteFailureLocked()
		return nil, err
	}
	rep, err := conn.Handshake()
	if err != nil {
		conn.Close()
		r.noteFailureLocked()
		return nil, fmt.Errorf("adb: reattach %s: %w", r.addr, err)
	}
	if rep.Info.TargetHash != r.info.TargetHash {
		conn.Close()
		r.fatal = fmt.Errorf("adb: reattach %s: broker target changed (%#x -> %#x)",
			r.addr, r.info.TargetHash, rep.Info.TargetHash)
		return nil, r.fatal
	}
	r.conn = conn
	r.info = rep.Info
	r.failStreak = 0
	r.downUntil = time.Time{}
	return conn, nil
}

// noteFailureLocked arms the reconnect cooldown: an exponential envelope
// with full jitter. The envelope bounds how hard a dead broker is hammered;
// the jitter spreads N clients that lost the same broker at the same moment
// (a coordinator or broker restart) across the whole window instead of
// letting them thunder back in lockstep on identical schedules.
func (r *Resilient) noteFailureLocked() {
	d := BackoffJitter(r.jitterLocked(), r.opts.BackoffBase, r.opts.BackoffMax, r.failStreak)
	if r.failStreak < 30 {
		r.failStreak++
	}
	r.downUntil = r.clockLocked()().Add(d)
}

// clockLocked returns the backoff clock, defaulting to the wall clock on
// first use (the backoff gates transport redials, never a fuzzing
// decision; see the get() comment).
func (r *Resilient) clockLocked() func() time.Time {
	if r.now == nil {
		r.now = time.Now //droidvet:nondet wall-clock backoff clock
	}
	return r.now
}

// jitterLocked returns the jitter source, seeding one from the wall clock
// on first use so every client draws an independent schedule.
func (r *Resilient) jitterLocked() *rand.Rand {
	if r.rng == nil {
		r.rng = rand.New(rand.NewSource(time.Now().UnixNano())) //droidvet:nondet per-client jitter seed
	}
	return r.rng
}

// BackoffJitter computes one full-jitter reconnect delay: uniform in
// [0, min(base<<streak, max)]. Full jitter (over the equal-jitter
// base/2+rand variant) gives the fastest desynchronization of a herd while
// keeping the same exponential cap, and a zero draw is harmless — the next
// failure re-arms with a doubled envelope. Shared by Resilient and the
// coordinator client, which follows the same reconnect discipline.
func BackoffJitter(rng *rand.Rand, base, max time.Duration, streak int) time.Duration {
	d := base << streak
	if d > max || d <= 0 {
		d = max
	}
	if rng == nil || d <= 0 {
		return d
	}
	return time.Duration(rng.Int63n(int64(d) + 1))
}

// drop discards a connection after a transport failure (unless a newer
// connection already replaced it), folding its uplink accounting into the
// client's running totals.
func (r *Resilient) drop(c *Conn) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.conn == c {
		r.wire.Add(c.WireStats())
		r.conn.Close()
		r.conn = nil
	}
}

// do runs op against a live connection, redialing and retrying on
// transport failures up to MaxAttempts times. Application-level errors
// (*RemoteError) return immediately: the stream is healthy and the remote
// broker rejected the request itself.
func (r *Resilient) do(op func(c *Conn) error) error {
	var err error
	for attempt := 0; attempt <= r.opts.MaxAttempts; attempt++ {
		var c *Conn
		if c, err = r.get(); err != nil {
			if !errors.Is(err, ErrTransport) {
				return err // fatal (target changed) or handshake rejection
			}
			continue
		}
		if err = op(c); err == nil || !errors.Is(err, ErrTransport) {
			return err
		}
		r.drop(c)
	}
	return err
}

// Exec implements Executor with reconnect-and-retry. The pooled result is
// owned by the caller, who must Release it.
func (r *Resilient) Exec(req ExecRequest) (res *ExecResult, err error) {
	err = r.do(func(c *Conn) error {
		res, err = c.Exec(req)
		return err
	})
	return res, err
}

// ExecProg implements Executor: the program is serialized once, before the
// retry loop, and the same text crosses the wire on every attempt. The
// pooled result is owned by the caller, who must Release it.
func (r *Resilient) ExecProg(p *dsl.Prog) (*ExecResult, error) {
	return r.Exec(ExecRequest{ProgText: p.String()})
}

// ExecBatch implements BatchExecutor with tail retry: the programs are
// serialized once by the caller, and after a mid-batch transport failure
// only the unacknowledged tail of the window is resubmitted on the fresh
// connection — acknowledged results are never re-executed. The returned
// slice aligns index-for-index with req.Progs up to where execution got;
// nil entries mark broker-rejected programs. Non-nil results are pooled
// and owned by the caller (Release each when done).
func (r *Resilient) ExecBatch(req ExecBatchRequest) ([]*ExecResult, error) {
	out := make([]*ExecResult, 0, len(req.Progs))
	remaining := req.Progs
	var err error
	for attempt := 0; attempt <= r.opts.MaxAttempts && len(remaining) > 0; attempt++ {
		var c *Conn
		if c, err = r.get(); err != nil {
			if !errors.Is(err, ErrTransport) {
				return out, err // fatal (target changed) or handshake rejection
			}
			continue
		}
		var res []*ExecResult
		res, err = c.ExecBatch(ExecBatchRequest{Progs: remaining, Summary: req.Summary})
		out = append(out, res...)
		remaining = remaining[len(res):]
		if err == nil || !errors.Is(err, ErrTransport) {
			return out, err
		}
		r.drop(c)
	}
	return out, err
}

// Ping implements Executor.
func (r *Resilient) Ping() error {
	return r.do(func(c *Conn) error { return c.Ping() })
}

// Reboot implements Executor.
func (r *Resilient) Reboot() error {
	return r.do(func(c *Conn) error { return c.Reboot() })
}

// Reset implements Executor. A reconnect mid-Reset is harmless: the worst
// case is the device resetting twice, which is idempotent.
func (r *Resilient) Reset() (bool, error) {
	var restored bool
	err := r.do(func(c *Conn) error {
		var e error
		restored, e = c.Reset()
		return e
	})
	return restored, err
}

// ExportCheckpoint implements Cloner with reconnect-and-retry; the export
// is read-only on the device, so retrying after a dropped link is safe.
func (r *Resilient) ExportCheckpoint() ([]byte, error) {
	var blob []byte
	err := r.do(func(c *Conn) error {
		var e error
		blob, e = c.ExportCheckpoint()
		return e
	})
	return blob, err
}

// ImportCheckpoint implements Cloner with reconnect-and-retry; importing
// the same blob twice is idempotent, so a retry after an ambiguous
// transport failure cannot corrupt device state.
func (r *Resilient) ImportCheckpoint(blob []byte) error {
	return r.do(func(c *Conn) error {
		return c.ImportCheckpoint(blob)
	})
}

// Info implements Executor with a live round trip; on failure it returns
// the last-known identity (ModelID and TargetHash stay valid — they are
// pinned by the handshake) along with the error.
func (r *Resilient) Info() (Info, error) {
	var info Info
	err := r.do(func(c *Conn) error {
		var e error
		info, e = c.Info()
		return e
	})
	if err != nil {
		r.mu.Lock()
		defer r.mu.Unlock()
		return r.info, err
	}
	r.mu.Lock()
	r.info = info
	r.mu.Unlock()
	return info, nil
}
