package adb

import (
	"errors"
	"net"
	"testing"
	"time"
)

// startBrokerTCP serves the broker on a loopback listener and returns the
// address plus a restart/stop harness.
type brokerHarness struct {
	t    *testing.T
	srv  *Server
	addr string
	ln   net.Listener
}

func startBrokerTCP(t *testing.T, modelID string) *brokerHarness {
	t.Helper()
	b, _ := newBrokerRig(t, modelID)
	h := &brokerHarness{t: t, srv: &Server{X: b}}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	h.ln = ln
	h.addr = ln.Addr().String()
	go h.srv.ServeTCP(ln)
	t.Cleanup(func() { ln.Close() })
	return h
}

// stop closes the listener, severing current and future connections.
func (h *brokerHarness) stop() { h.ln.Close() }

// restart re-listens on the same address with the same broker.
func (h *brokerHarness) restart() {
	h.t.Helper()
	var err error
	for i := 0; i < 50; i++ { // the old socket can linger briefly
		h.ln, err = net.Listen("tcp", h.addr)
		if err == nil {
			go h.srv.ServeTCP(h.ln)
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	h.t.Fatalf("restart on %s: %v", h.addr, err)
}

func fastOpts() ResilientOptions {
	return ResilientOptions{
		DialTimeout: time.Second,
		CallTimeout: 2 * time.Second,
		MaxAttempts: 2,
		BackoffBase: 5 * time.Millisecond,
		BackoffMax:  50 * time.Millisecond,
	}
}

// TestResilientReconnectsAcrossBrokerRestart: a dropped connection is
// redialed, the handshake re-verified, and the in-flight operation retried
// — the fleet wiring survives a broker bounce.
func TestResilientReconnectsAcrossBrokerRestart(t *testing.T) {
	h := startBrokerTCP(t, "B")
	r, err := DialResilient(h.addr, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if r.Target() == nil {
		t.Fatal("attach did not bind a target")
	}
	if _, err := r.Exec(ExecRequest{ProgText: "r0 = open$hci(path=\"/dev/hci0\")\n"}); err != nil {
		t.Fatal(err)
	}

	h.stop()
	r.Close() // sever the established stream too (the listener close alone
	// does not tear down accepted conns)
	h.restart()

	res, err := r.Exec(ExecRequest{ProgText: "r0 = open$hci(path=\"/dev/hci0\")\n"})
	if err != nil {
		t.Fatalf("exec after restart: %v", err)
	}
	if res.Calls[0].Errno != "OK" {
		t.Fatalf("exec after restart = %+v", res.Calls[0])
	}
	if err := r.Ping(); err != nil {
		t.Fatalf("ping after restart: %v", err)
	}
}

// TestResilientDegradesFastWhenBrokerDies: once the broker is gone and the
// reconnect budget is exhausted, every operation fails quickly with a
// typed transport error — a dead device costs its engine ExecErrors, not
// wall-clock stalls.
func TestResilientDegradesFastWhenBrokerDies(t *testing.T) {
	h := startBrokerTCP(t, "B")
	r, err := DialResilient(h.addr, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	h.stop()
	r.Close()

	// First op pays for the reconnect attempts; the cooldown then makes
	// later ops near-free.
	if err := r.Ping(); err == nil {
		t.Fatal("ping succeeded against a dead broker")
	}
	start := time.Now()
	for i := 0; i < 50; i++ {
		err := r.Ping()
		if err == nil {
			t.Fatal("ping succeeded against a dead broker")
		}
		if !errors.Is(err, ErrTransport) {
			t.Fatalf("dead-broker error not ErrTransport-typed: %v", err)
		}
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("50 dead-broker pings took %v; cooldown not engaging", elapsed)
	}
}

// TestResilientHandshakeDeliversSeeds: seeds ride the attach handshake.
func TestResilientHandshakeDeliversSeeds(t *testing.T) {
	b, _ := newBrokerRig(t, "B")
	srv := &Server{X: b, Seeds: []string{"r0 = open$hci(path=\"/dev/hci0\")\n"}}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go srv.ServeTCP(ln)

	r, err := DialResilient(ln.Addr().String(), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Seeds(); len(got) != 1 {
		t.Fatalf("seeds = %v", got)
	}
	info, err := r.Info()
	if err != nil {
		t.Fatal(err)
	}
	if info.ModelID != "B" {
		t.Fatalf("model = %q", info.ModelID)
	}
}

// TestResilientRejectsChangedBroker: a reconnect that lands on a broker
// with a different target surface is fatal, not silently accepted — the
// engine's generated programs would be garbage against it.
func TestResilientRejectsChangedBroker(t *testing.T) {
	h := startBrokerTCP(t, "B")
	r, err := DialResilient(h.addr, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	h.stop()
	r.Close()
	// A different device model takes over the address.
	b2, _ := newBrokerRig(t, "A1")
	h.srv = &Server{X: b2}
	h.restart()

	// Early pings may still hit reconnect cooldowns (ErrTransport); the
	// reattach must eventually land on the impostor and reject it for
	// good with a non-transport, fatal error.
	deadline := time.Now().Add(5 * time.Second)
	for {
		err := r.Ping()
		if err == nil {
			t.Fatal("reattach to a different target accepted")
		}
		if !errors.Is(err, ErrTransport) {
			if err2 := r.Ping(); err2 == nil || errors.Is(err2, ErrTransport) {
				t.Fatalf("changed-broker rejection not sticky: %v", err2)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("fatal rejection never surfaced: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
