package adb

import (
	"errors"
	"math/rand"
	"net"
	"testing"
	"time"
)

// startBrokerTCP serves the broker on a loopback listener and returns the
// address plus a restart/stop harness.
type brokerHarness struct {
	t    *testing.T
	srv  *Server
	addr string
	ln   net.Listener
}

func startBrokerTCP(t *testing.T, modelID string) *brokerHarness {
	t.Helper()
	b, _ := newBrokerRig(t, modelID)
	h := &brokerHarness{t: t, srv: &Server{X: b}}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	h.ln = ln
	h.addr = ln.Addr().String()
	go h.srv.ServeTCP(ln)
	t.Cleanup(func() { ln.Close() })
	return h
}

// stop closes the listener, severing current and future connections.
func (h *brokerHarness) stop() { h.ln.Close() }

// restart re-listens on the same address with the same broker.
func (h *brokerHarness) restart() {
	h.t.Helper()
	var err error
	for i := 0; i < 50; i++ { // the old socket can linger briefly
		h.ln, err = net.Listen("tcp", h.addr)
		if err == nil {
			go h.srv.ServeTCP(h.ln)
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	h.t.Fatalf("restart on %s: %v", h.addr, err)
}

func fastOpts() ResilientOptions {
	return ResilientOptions{
		DialTimeout: time.Second,
		CallTimeout: 2 * time.Second,
		MaxAttempts: 2,
		BackoffBase: 5 * time.Millisecond,
		BackoffMax:  50 * time.Millisecond,
	}
}

// TestResilientReconnectsAcrossBrokerRestart: a dropped connection is
// redialed, the handshake re-verified, and the in-flight operation retried
// — the fleet wiring survives a broker bounce.
func TestResilientReconnectsAcrossBrokerRestart(t *testing.T) {
	h := startBrokerTCP(t, "B")
	r, err := DialResilient(h.addr, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if r.Target() == nil {
		t.Fatal("attach did not bind a target")
	}
	if _, err := r.Exec(ExecRequest{ProgText: "r0 = open$hci(path=\"/dev/hci0\")\n"}); err != nil {
		t.Fatal(err)
	}

	h.stop()
	r.Close() // sever the established stream too (the listener close alone
	// does not tear down accepted conns)
	h.restart()

	res, err := r.Exec(ExecRequest{ProgText: "r0 = open$hci(path=\"/dev/hci0\")\n"})
	if err != nil {
		t.Fatalf("exec after restart: %v", err)
	}
	if res.Calls[0].Errno != "OK" {
		t.Fatalf("exec after restart = %+v", res.Calls[0])
	}
	if err := r.Ping(); err != nil {
		t.Fatalf("ping after restart: %v", err)
	}
}

// TestResilientDegradesFastWhenBrokerDies: once the broker is gone and the
// reconnect budget is exhausted, every operation fails quickly with a
// typed transport error — a dead device costs its engine ExecErrors, not
// wall-clock stalls.
func TestResilientDegradesFastWhenBrokerDies(t *testing.T) {
	h := startBrokerTCP(t, "B")
	r, err := DialResilient(h.addr, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	h.stop()
	r.Close()

	// First op pays for the reconnect attempts; the cooldown then makes
	// later ops near-free.
	if err := r.Ping(); err == nil {
		t.Fatal("ping succeeded against a dead broker")
	}
	start := time.Now()
	for i := 0; i < 50; i++ {
		err := r.Ping()
		if err == nil {
			t.Fatal("ping succeeded against a dead broker")
		}
		if !errors.Is(err, ErrTransport) {
			t.Fatalf("dead-broker error not ErrTransport-typed: %v", err)
		}
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("50 dead-broker pings took %v; cooldown not engaging", elapsed)
	}
}

// TestResilientHandshakeDeliversSeeds: seeds ride the attach handshake.
func TestResilientHandshakeDeliversSeeds(t *testing.T) {
	b, _ := newBrokerRig(t, "B")
	srv := &Server{X: b, Seeds: []string{"r0 = open$hci(path=\"/dev/hci0\")\n"}}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go srv.ServeTCP(ln)

	r, err := DialResilient(ln.Addr().String(), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Seeds(); len(got) != 1 {
		t.Fatalf("seeds = %v", got)
	}
	info, err := r.Info()
	if err != nil {
		t.Fatal(err)
	}
	if info.ModelID != "B" {
		t.Fatalf("model = %q", info.ModelID)
	}
}

// TestResilientRejectsChangedBroker: a reconnect that lands on a broker
// with a different target surface is fatal, not silently accepted — the
// engine's generated programs would be garbage against it.
func TestResilientRejectsChangedBroker(t *testing.T) {
	h := startBrokerTCP(t, "B")
	r, err := DialResilient(h.addr, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	h.stop()
	r.Close()
	// A different device model takes over the address.
	b2, _ := newBrokerRig(t, "A1")
	h.srv = &Server{X: b2}
	h.restart()

	// Early pings may still hit reconnect cooldowns (ErrTransport); the
	// reattach must eventually land on the impostor and reject it for
	// good with a non-transport, fatal error.
	deadline := time.Now().Add(5 * time.Second)
	for {
		err := r.Ping()
		if err == nil {
			t.Fatal("reattach to a different target accepted")
		}
		if !errors.Is(err, ErrTransport) {
			if err2 := r.Ping(); err2 == nil || errors.Is(err2, ErrTransport) {
				t.Fatalf("changed-broker rejection not sticky: %v", err2)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("fatal rejection never surfaced: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// newJitterClient builds an unconnected Resilient with a pinned fake clock
// and a seeded jitter source, for driving the backoff bookkeeping directly.
func newJitterClient(seed int64, now func() time.Time) *Resilient {
	opts := ResilientOptions{BackoffBase: 100 * time.Millisecond, BackoffMax: 2 * time.Second}
	opts.defaults()
	r := &Resilient{addr: "jitter-test", opts: opts}
	r.now = now
	r.rng = rand.New(rand.NewSource(seed))
	return r
}

// TestResilientBackoffFullJitter pins the full-jitter cooldown against a
// fake clock: every delay stays inside the exponential envelope
// [0, min(base<<streak, max)], the envelope itself is reachable and capped,
// and the schedule is deterministic per seed.
func TestResilientBackoffFullJitter(t *testing.T) {
	epoch := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	clock := func() time.Time { return epoch }

	r := newJitterClient(7, clock)
	for k := 0; k < 12; k++ {
		env := r.opts.BackoffBase << k
		if env > r.opts.BackoffMax || env <= 0 {
			env = r.opts.BackoffMax
		}
		r.mu.Lock()
		r.noteFailureLocked()
		d := r.downUntil.Sub(epoch)
		r.mu.Unlock()
		if d < 0 || d > env {
			t.Fatalf("streak %d: cooldown %v outside [0, %v]", k, d, env)
		}
	}

	// Same seed, same failure history => same schedule (the test seam the
	// golden campaigns rely on).
	a, b := newJitterClient(11, clock), newJitterClient(11, clock)
	for k := 0; k < 8; k++ {
		a.mu.Lock()
		a.noteFailureLocked()
		da := a.downUntil
		a.mu.Unlock()
		b.mu.Lock()
		b.noteFailureLocked()
		db := b.downUntil
		b.mu.Unlock()
		if !da.Equal(db) {
			t.Fatalf("streak %d: same seed diverged: %v vs %v", k, da, db)
		}
	}
}

// TestResilientBackoffDesynchronizesHerd is the thundering-herd property:
// N clients that lose the same coordinator at the same instant, with
// identical failure streaks, must not share a wake-up schedule. With full
// jitter over a 100ms..2s envelope, 16 clients colliding on every one of 6
// rounds is astronomically unlikely; any spread proves desynchronization.
func TestResilientBackoffDesynchronizesHerd(t *testing.T) {
	epoch := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	clock := func() time.Time { return epoch }
	const herd = 16

	clients := make([]*Resilient, herd)
	for i := range clients {
		clients[i] = newJitterClient(int64(1000+i), clock)
	}
	for round := 0; round < 6; round++ {
		wake := make(map[time.Time]int)
		for _, r := range clients {
			r.mu.Lock()
			r.noteFailureLocked()
			wake[r.downUntil]++
			r.mu.Unlock()
		}
		if len(wake) > 1 {
			return // schedules diverged: the herd is broken up
		}
	}
	t.Fatal("16 clients kept identical backoff schedules across 6 rounds")
}

// TestBackoffJitterEnvelope pins the helper itself: nil rng returns the
// deterministic envelope, the cap holds for huge streaks (including the
// shift overflowing), and draws never exceed the envelope.
func TestBackoffJitterEnvelope(t *testing.T) {
	base, max := 50*time.Millisecond, 2*time.Second
	if d := BackoffJitter(nil, base, max, 0); d != base {
		t.Fatalf("nil rng streak 0: got %v, want %v", d, base)
	}
	if d := BackoffJitter(nil, base, max, 20); d != max {
		t.Fatalf("nil rng streak 20: got %v, want capped %v", d, max)
	}
	if d := BackoffJitter(nil, base, max, 62); d != max {
		t.Fatalf("nil rng overflowing shift: got %v, want capped %v", d, max)
	}
	rng := rand.New(rand.NewSource(3))
	for k := 0; k < 40; k++ {
		env := base << (k % 8)
		if env > max {
			env = max
		}
		if d := BackoffJitter(rng, base, max, k%8); d < 0 || d > env {
			t.Fatalf("streak %d: draw %v outside [0, %v]", k%8, d, env)
		}
	}
}
