// Package adb implements the host↔device execution path: the device-side
// Execution Broker with its HAL and Native executors (paper §IV-A), the
// execution result types carrying cross-boundary feedback, and a
// message-framed transport standing in for the Android Debug Bridge.
package adb

import "sync"

// ExecRequest asks the broker to run one program.
type ExecRequest struct {
	// ProgText is the program in DSL text form.
	ProgText string
}

// CallResult is the outcome of one call in the program.
type CallResult struct {
	// Executed reports whether the call ran (false after a fatal crash
	// aborted the program).
	Executed bool
	// Errno is the symbolic errno ("OK", "EINVAL", ...) for syscalls, or
	// the Binder status name for HAL calls.
	Errno string
	// Ret is the scalar result (fd, ioctl return, HAL reply handle).
	Ret uint64
	// Cover is the kernel PC trace attributed to this call, including PCs
	// hit by HAL-origin syscalls it triggered.
	Cover []uint32
}

// TraceEvent is one HAL-origin syscall observation from the eBPF probe, the
// raw material of directional coverage (paper §IV-D).
type TraceEvent struct {
	Seq  uint64
	PID  int
	NR   string
	Path string
	Arg  uint64
}

// CrashRecord is one incident observed during an execution.
type CrashRecord struct {
	// Kind is "WARNING", "BUG", "KASAN", "HANG", or "HALCRASH".
	Kind string
	// Title is the dedup title (Table II "Bug Info" shape).
	Title string
	// Detail is the splat / tombstone body.
	Detail string
	// Component is "kernel" or the HAL label ("Graphics", ...).
	Component string
}

// ExecResult is the broker's reply for one program execution.
type ExecResult struct {
	Calls []CallResult
	// KernelCov is the full ordered kcov trace of the execution.
	KernelCov []uint32
	// HALTrace is the ordered HAL-origin syscall trace.
	HALTrace []TraceEvent
	// Crashes lists incidents raised during the execution.
	Crashes []CrashRecord
	// Dmesg is the tail of the kernel console ring, attached when the
	// execution crashed (the log-recovery step of the paper's triage).
	Dmesg []string
	// Wedged reports that the kernel is dead and the device needs a
	// reboot before further executions.
	Wedged bool
	// HALDead reports that at least one HAL process crashed.
	HALDead bool

	// san tracks the pooled lifecycle; zero-sized unless built with
	// -tags droidfuzz_sanitize. Unexported, so gob never encodes it.
	san sanState
}

// resultPool recycles ExecResults between executions: the broker draws from
// it and callers hand results back with Release, so the per-execution
// feedback buffers (Calls with their per-call Cover, KernelCov, HALTrace)
// keep their capacity across iterations and the steady-state execution loop
// allocates nothing.
var resultPool = sync.Pool{New: func() any { return new(ExecResult) }}

// GetResult returns a pooled, empty ExecResult.
func GetResult() *ExecResult {
	r := resultPool.Get().(*ExecResult)
	r.san.acquire()
	r.prepare(0)
	return r
}

// Release returns the result to the pool. The caller must not retain the
// result or any of its slices afterwards; string fields (crash titles,
// errno names) are immutable and safe to keep. Releasing is optional — an
// unreleased result is simply garbage collected.
func (r *ExecResult) Release() {
	if r == nil {
		return
	}
	r.san.release("adb.ExecResult", sanCaller())
	resultPool.Put(r)
}

// prepare resets the result for a fresh execution of n calls, reusing every
// buffer's capacity: Calls is resized in place so each slot's Cover slice
// keeps its backing array.
func (r *ExecResult) prepare(n int) {
	if cap(r.Calls) < n {
		r.Calls = append(r.Calls[:cap(r.Calls)], make([]CallResult, n-cap(r.Calls))...)
	}
	r.Calls = r.Calls[:n]
	for i := range r.Calls {
		c := &r.Calls[i]
		c.Executed = false
		c.Errno = ""
		c.Ret = 0
		c.Cover = c.Cover[:0]
	}
	r.KernelCov = r.KernelCov[:0]
	r.HALTrace = r.HALTrace[:0]
	r.Crashes = r.Crashes[:0]
	r.Dmesg = nil
	r.Wedged = false
	r.HALDead = false
}

// Crashed reports whether any incident was observed.
func (r *ExecResult) Crashed() bool {
	r.san.alive("adb.ExecResult.Crashed")
	return len(r.Crashes) > 0
}

// NeedsReboot reports whether the harness must reboot the device before the
// next execution (fatal kernel state or a dead HAL process, per the paper's
// reboot-on-bug configuration).
func (r *ExecResult) NeedsReboot() bool {
	r.san.alive("adb.ExecResult.NeedsReboot")
	return r.Wedged || r.HALDead
}
