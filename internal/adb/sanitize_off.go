//go:build !droidfuzz_sanitize

package adb

// SanitizeEnabled reports whether the droidfuzz_sanitize build tag is on.
const SanitizeEnabled = false

// sanState is zero-sized and its hooks are empty in normal builds: the
// compiler inlines them away, so the pooled hot path and the wire encoder
// pay nothing for the sanitizer's existence. Build with
// -tags droidfuzz_sanitize for the checked variant.
type sanState struct{}

func (*sanState) acquire()            {}
func (*sanState) release(_, _ string) {}
func (*sanState) alive(_ string)      {}
func sanCaller() string               { return "" }

func sanitizeWireResult(*WireResult, *ExecResult) {}
