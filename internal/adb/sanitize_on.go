//go:build droidfuzz_sanitize

package adb

import (
	"fmt"
	"runtime"
)

// SanitizeEnabled reports whether the droidfuzz_sanitize build tag is on.
const SanitizeEnabled = true

// sanState is the checked-pool lifecycle tracker embedded in the pooled
// execution-result types when the droidfuzz_sanitize tag is set. The
// generation counter's low bit encodes liveness (even = live, odd =
// released); each release records its call site so double-Put and
// use-after-put panics can name the line that returned the object.
type sanState struct {
	gen   uint32
	putAt string
}

func (s *sanState) acquire() {
	if s.gen&1 == 1 {
		s.gen++
	}
	s.putAt = ""
}

func (s *sanState) release(what, at string) {
	if s.gen&1 == 1 {
		panic(fmt.Sprintf("droidfuzz_sanitize: double-Put of %s: first released at %s, released again at %s", what, s.putAt, at))
	}
	s.gen++
	s.putAt = at
}

func (s *sanState) alive(what string) {
	if s.gen&1 == 1 {
		panic(fmt.Sprintf("droidfuzz_sanitize: use-after-put: %s called on an object released at %s", what, s.putAt))
	}
}

// sanCaller reports the file:line of the caller's caller — the user code
// invoking Release — for the release record.
func sanCaller() string {
	_, file, line, ok := runtime.Caller(2)
	if !ok {
		return "unknown"
	}
	return fmt.Sprintf("%s:%d", file, line)
}

// sanitizeWireResult asserts the delta-coded wire encoding of res decodes
// back to the same feedback: same call outcomes, kernel trace, HAL trace,
// and crash set. It runs on the server right after encode, while the
// original is still live, so any framing bug is caught at its source
// rather than as corrupt coverage on the host. Elided and errored frames
// carry no trace to compare.
func sanitizeWireResult(w *WireResult, res *ExecResult) {
	if w.Err != "" || w.Elided {
		return
	}
	back, err := w.decode()
	if err != nil {
		panic(fmt.Sprintf("droidfuzz_sanitize: wire frame does not decode back: %v", err))
	}
	defer back.Release()
	if len(back.Calls) != len(res.Calls) {
		panic(fmt.Sprintf("droidfuzz_sanitize: wire round-trip changed call count: %d -> %d", len(res.Calls), len(back.Calls)))
	}
	for i := range res.Calls {
		a, b := &res.Calls[i], &back.Calls[i]
		if a.Executed != b.Executed || a.Errno != b.Errno || a.Ret != b.Ret || !equalU32(a.Cover, b.Cover) {
			panic(fmt.Sprintf("droidfuzz_sanitize: wire round-trip changed call %d (executed/errno/ret/cover)", i))
		}
	}
	if !equalU32(res.KernelCov, back.KernelCov) {
		panic(fmt.Sprintf("droidfuzz_sanitize: wire round-trip changed kernel trace: %d PCs -> %d", len(res.KernelCov), len(back.KernelCov)))
	}
	if len(back.HALTrace) != len(res.HALTrace) {
		panic(fmt.Sprintf("droidfuzz_sanitize: wire round-trip changed HAL trace length: %d -> %d", len(res.HALTrace), len(back.HALTrace)))
	}
	for i := range res.HALTrace {
		if res.HALTrace[i] != back.HALTrace[i] {
			panic(fmt.Sprintf("droidfuzz_sanitize: wire round-trip changed HAL trace event %d", i))
		}
	}
	if len(back.Crashes) != len(res.Crashes) || back.Wedged != res.Wedged || back.HALDead != res.HALDead {
		panic("droidfuzz_sanitize: wire round-trip changed crash/wedge state")
	}
}

func equalU32(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
