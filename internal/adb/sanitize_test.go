//go:build droidfuzz_sanitize

package adb

import (
	"strings"
	"testing"
)

func mustPanic(t *testing.T, f func()) string {
	t.Helper()
	var msg string
	func() {
		defer func() {
			if r := recover(); r != nil {
				msg = r.(string)
			}
		}()
		f()
	}()
	if msg == "" {
		t.Fatal("expected a droidfuzz_sanitize panic, got none")
	}
	return msg
}

// TestExecResultDoublePutPanics: the pooled execution result must reject a
// second Release with a message naming where it was first given away.
func TestExecResultDoublePutPanics(t *testing.T) {
	r := GetResult()
	r.Release()
	msg := mustPanic(t, func() { r.Release() })
	if !strings.Contains(msg, "double-Put") || !strings.Contains(msg, "adb.ExecResult") {
		t.Fatalf("unhelpful panic message: %q", msg)
	}
	if !strings.Contains(msg, "sanitize_test.go:") {
		t.Fatalf("panic message does not name the release call site: %q", msg)
	}
}

// TestExecResultUseAfterPutPanics: reading feedback from a released result
// is the exact aliasing bug the pool makes possible; the sanitizer must
// name both the accessor and the release site.
func TestExecResultUseAfterPutPanics(t *testing.T) {
	r := GetResult()
	r.Release()
	msg := mustPanic(t, func() { _ = r.Crashed() })
	if !strings.Contains(msg, "use-after-put") || !strings.Contains(msg, "adb.ExecResult.Crashed") {
		t.Fatalf("unhelpful panic message: %q", msg)
	}
	if !strings.Contains(msg, "sanitize_test.go:") {
		t.Fatalf("panic message does not name the release call site: %q", msg)
	}

	r2 := GetResult()
	r2.Release()
	msg = mustPanic(t, func() { _ = r2.NeedsReboot() })
	if !strings.Contains(msg, "use-after-put") {
		t.Fatalf("NeedsReboot on released result did not report use-after-put: %q", msg)
	}
}

// TestResTableDoublePutPanics: the broker-internal result table has the
// same checked lifecycle as the public pooled types.
func TestResTableDoublePutPanics(t *testing.T) {
	rt := getResTable(4)
	rt.release()
	msg := mustPanic(t, func() { rt.release() })
	if !strings.Contains(msg, "double-Put") || !strings.Contains(msg, "adb.resTable") {
		t.Fatalf("unhelpful panic message: %q", msg)
	}
}

// TestResTableUseAfterPutPanics: writing a call result into a released
// table would leak it into the next execution's resolution.
func TestResTableUseAfterPutPanics(t *testing.T) {
	rt := getResTable(4)
	rt.release()
	msg := mustPanic(t, func() { rt.put(0, 42) })
	if !strings.Contains(msg, "use-after-put") || !strings.Contains(msg, "adb.resTable.put") {
		t.Fatalf("unhelpful panic message: %q", msg)
	}
}

// TestPooledReuseIsClean: a normal get→use→release cycle never trips the
// sanitizer, across enough iterations to guarantee pool reuse.
func TestPooledReuseIsClean(t *testing.T) {
	for i := 0; i < 32; i++ {
		r := GetResult()
		_ = r.Crashed()
		_ = r.NeedsReboot()
		r.Release()
		rt := getResTable(3)
		rt.put(1, uint64(i))
		rt.release()
	}
}
