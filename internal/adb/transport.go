package adb

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// The transport stands in for ADB: a message-framed, gob-encoded
// request/reply channel between the host-side fuzzing engine and the
// device-side broker. It runs over any io.ReadWriter — net.Pipe in-process,
// or a TCP loopback socket for the CLI tools.

type rpcRequest struct {
	Exec *ExecRequest
	Ping bool
}

type rpcReply struct {
	Result *ExecResult
	Pong   bool
	Err    string
}

// Conn is the host side of a transport connection; it implements Executor.
type Conn struct {
	mu  sync.Mutex
	enc *gob.Encoder
	dec *gob.Decoder
	rwc io.ReadWriter
}

// Dial wraps an established byte stream as the host end.
func Dial(rw io.ReadWriter) *Conn {
	return &Conn{enc: gob.NewEncoder(rw), dec: gob.NewDecoder(rw), rwc: rw}
}

// DialTCP connects to a broker served on a TCP address.
func DialTCP(addr string) (*Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("adb: dial %s: %w", addr, err)
	}
	return Dial(c), nil
}

// Exec implements Executor over the transport.
func (c *Conn) Exec(req ExecRequest) (*ExecResult, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.enc.Encode(rpcRequest{Exec: &req}); err != nil {
		return nil, fmt.Errorf("adb: send: %w", err)
	}
	var rep rpcReply
	if err := c.dec.Decode(&rep); err != nil {
		return nil, fmt.Errorf("adb: recv: %w", err)
	}
	if rep.Err != "" {
		return nil, errors.New(rep.Err)
	}
	if rep.Result == nil {
		return nil, errors.New("adb: empty reply")
	}
	return rep.Result, nil
}

// Ping round-trips a liveness check.
func (c *Conn) Ping() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.enc.Encode(rpcRequest{Ping: true}); err != nil {
		return fmt.Errorf("adb: send: %w", err)
	}
	var rep rpcReply
	if err := c.dec.Decode(&rep); err != nil {
		return fmt.Errorf("adb: recv: %w", err)
	}
	if !rep.Pong {
		return errors.New("adb: bad pong")
	}
	return nil
}

// Serve runs the device side of the protocol over rw until the stream ends,
// dispatching execution requests to the broker. It returns nil on a clean
// EOF.
func Serve(rw io.ReadWriter, b *Broker) error {
	enc := gob.NewEncoder(rw)
	dec := gob.NewDecoder(rw)
	for {
		var req rpcRequest
		if err := dec.Decode(&req); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrClosedPipe) {
				return nil
			}
			return fmt.Errorf("adb: serve decode: %w", err)
		}
		var rep rpcReply
		switch {
		case req.Ping:
			rep.Pong = true
		case req.Exec != nil:
			res, err := b.Exec(*req.Exec)
			if err != nil {
				rep.Err = err.Error()
			} else {
				rep.Result = res
			}
		default:
			rep.Err = "adb: empty request"
		}
		if err := enc.Encode(rep); err != nil {
			return fmt.Errorf("adb: serve encode: %w", err)
		}
	}
}

// ServeTCP listens on addr and serves each accepted connection until the
// listener is closed. It is used by the standalone device daemon binary.
func ServeTCP(ln net.Listener, b *Broker) error {
	for {
		c, err := ln.Accept()
		if err != nil {
			return err
		}
		go func() {
			defer c.Close()
			_ = Serve(c, b)
		}()
	}
}
