package adb

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"droidfuzz/internal/dsl"
)

// The transport stands in for ADB: a message-framed, gob-encoded
// request/reply channel between the host-side fuzzing engine and the
// device-side broker. It runs over any io.ReadWriter — net.Pipe in-process,
// or a TCP loopback socket for the CLI tools — and carries the full
// Executor contract: program execution, reboot, liveness, and the identity
// handshake that binds a host engine to a remote target.

// ErrTransport marks stream-level failures: a broken pipe, a garbled or
// truncated frame, a deadline hit. Errors wrapping it mean the connection
// is unusable and the caller should reconnect; application-level failures
// from the device side arrive as *RemoteError instead and leave the stream
// healthy. Test with errors.Is(err, ErrTransport).
var ErrTransport = errors.New("adb: transport failure")

// RemoteError is an application-level error reported by the device side of
// a transport connection (a bad program, a failed reboot). The stream
// stays in sync; only this request failed.
type RemoteError struct{ Msg string }

func (e *RemoteError) Error() string { return e.Msg }

type rpcRequest struct {
	Exec     *ExecRequest
	Ping     bool
	Reboot   bool
	Info     bool
	Describe bool
}

type rpcReply struct {
	Result   *ExecResult
	Pong     bool
	Info     *Info
	Describe *DescribeReply
	Err      string
}

// DescribeReply is the attach-time handshake payload: the device identity
// plus everything a host engine needs to generate programs for it — the
// full call-description surface and the distilled seed workloads from the
// device-side probing pass, in canonical DSL text form.
type DescribeReply struct {
	Info Info
	// Calls is the broker target's call-description surface in
	// registration order; the host rebuilds an identical dsl.Target from
	// it (gob round-trips every syntax field losslessly, so the rebuilt
	// target hashes identically).
	Calls []*dsl.CallDesc
	// Seeds are probing-pass seed programs in DSL text, parseable against
	// the rebuilt target.
	Seeds []string
}

// deadliner is the subset of net.Conn the transport uses for per-call
// timeouts; net.Pipe ends implement it too.
type deadliner interface {
	SetDeadline(t time.Time) error
}

// Conn is the host side of a transport connection; it implements Executor.
// A Conn is not resilient: the first stream-level failure poisons it (the
// gob streams cannot resync) and every later call fails fast with the same
// ErrTransport-wrapped error. Wrap it in Resilient for reconnection.
type Conn struct {
	mu      sync.Mutex
	enc     *gob.Encoder
	dec     *gob.Decoder
	rwc     io.ReadWriter
	timeout time.Duration
	broken  error
	target  *dsl.Target
	info    Info
}

var _ Executor = (*Conn)(nil)

// Dial wraps an established byte stream as the host end.
func Dial(rw io.ReadWriter) *Conn {
	return &Conn{enc: gob.NewEncoder(rw), dec: gob.NewDecoder(rw), rwc: rw}
}

// DialTCP connects to a broker served on a TCP address.
func DialTCP(addr string) (*Conn, error) {
	return DialTCPTimeout(addr, 0)
}

// DialTCPTimeout connects with a bounded dial; d <= 0 means no limit.
func DialTCPTimeout(addr string, d time.Duration) (*Conn, error) {
	c, err := net.DialTimeout("tcp", addr, d)
	if err != nil {
		return nil, fmt.Errorf("%w: dial %s: %v", ErrTransport, addr, err)
	}
	return Dial(c), nil
}

// SetCallTimeout bounds every subsequent round trip when the underlying
// stream supports deadlines (net.Conn, net.Pipe); 0 disables the bound. A
// deadline hit breaks the connection like any other stream failure.
func (c *Conn) SetCallTimeout(d time.Duration) {
	c.mu.Lock()
	c.timeout = d
	c.mu.Unlock()
}

// Close closes the underlying stream when it is closable.
func (c *Conn) Close() error {
	if cl, ok := c.rwc.(io.Closer); ok {
		return cl.Close()
	}
	return nil
}

// roundTrip sends one request and decodes one reply under the connection
// lock. Stream failures poison the connection.
func (c *Conn) roundTrip(req rpcRequest) (rpcReply, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var rep rpcReply
	if c.broken != nil {
		return rep, c.broken
	}
	if d, ok := c.rwc.(deadliner); ok && c.timeout > 0 {
		d.SetDeadline(time.Now().Add(c.timeout))
		defer d.SetDeadline(time.Time{})
	}
	if err := c.enc.Encode(req); err != nil {
		c.broken = fmt.Errorf("%w: send: %v", ErrTransport, err)
		return rep, c.broken
	}
	if err := c.dec.Decode(&rep); err != nil {
		c.broken = fmt.Errorf("%w: recv: %v", ErrTransport, err)
		return rep, c.broken
	}
	if rep.Err != "" {
		return rep, &RemoteError{Msg: rep.Err}
	}
	return rep, nil
}

// Exec implements Executor over the transport.
func (c *Conn) Exec(req ExecRequest) (*ExecResult, error) {
	rep, err := c.roundTrip(rpcRequest{Exec: &req})
	if err != nil {
		return nil, err
	}
	if rep.Result == nil {
		return nil, &RemoteError{Msg: "adb: empty reply"}
	}
	return rep.Result, nil
}

// ExecProg implements Executor: the program crosses the wire in its
// canonical text form and is re-parsed by the device-side broker (the
// round trip is lossless).
func (c *Conn) ExecProg(p *dsl.Prog) (*ExecResult, error) {
	return c.Exec(ExecRequest{ProgText: p.String()})
}

// Ping round-trips a liveness check.
func (c *Conn) Ping() error {
	rep, err := c.roundTrip(rpcRequest{Ping: true})
	if err != nil {
		return err
	}
	if !rep.Pong {
		return &RemoteError{Msg: "adb: bad pong"}
	}
	return nil
}

// Reboot implements Executor: the device-side broker reboots its device.
func (c *Conn) Reboot() error {
	_, err := c.roundTrip(rpcRequest{Reboot: true})
	return err
}

// Info implements Executor with a live identity round trip.
func (c *Conn) Info() (Info, error) {
	rep, err := c.roundTrip(rpcRequest{Info: true})
	if err != nil {
		return Info{}, err
	}
	if rep.Info == nil {
		return Info{}, &RemoteError{Msg: "adb: empty info reply"}
	}
	c.mu.Lock()
	c.info = *rep.Info
	c.mu.Unlock()
	return *rep.Info, nil
}

// Target implements Executor: the host-side target bound by Handshake (nil
// before a successful handshake).
func (c *Conn) Target() *dsl.Target {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.target
}

// Handshake performs the Describe round trip, rebuilds the device's
// call-description target host-side, and verifies the rebuilt target
// hashes to the device-reported fingerprint before binding it to the
// connection. Engines attach to the Conn only after a clean handshake.
func (c *Conn) Handshake() (*DescribeReply, error) {
	rep, err := c.roundTrip(rpcRequest{Describe: true})
	if err != nil {
		return nil, err
	}
	if rep.Describe == nil {
		return nil, &RemoteError{Msg: "adb: empty describe reply"}
	}
	target, err := dsl.NewTarget(rep.Describe.Calls...)
	if err != nil {
		return nil, fmt.Errorf("adb: handshake: rebuild target: %w", err)
	}
	if h := target.Hash(); h != rep.Describe.Info.TargetHash {
		return nil, fmt.Errorf("adb: handshake: target hash mismatch: host %#x, device %#x",
			h, rep.Describe.Info.TargetHash)
	}
	c.mu.Lock()
	c.target = target
	c.info = rep.Describe.Info
	c.mu.Unlock()
	return rep.Describe, nil
}

// Server is the device side of the transport: it dispatches protocol
// requests to an Executor (usually the in-process *Broker) and answers the
// Describe handshake with the executor's identity plus optional seed
// programs from the probing pass.
type Server struct {
	X Executor
	// Seeds are probing-pass seed programs in DSL text form, handed to
	// hosts at handshake so a remote engine bootstraps the same corpus an
	// in-process one would.
	Seeds []string
}

// Serve runs the device side of the protocol over rw until the stream
// ends. It returns nil on a clean EOF and an ErrTransport-wrapped error on
// garbage, truncated frames, or a mid-stream hangup; it never panics —
// protocol-handler panics are converted to per-request error replies.
func (s *Server) Serve(rw io.ReadWriter) error {
	enc := gob.NewEncoder(rw)
	dec := gob.NewDecoder(rw)
	for {
		req, err := decodeRequest(dec)
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrClosedPipe) {
				return nil
			}
			return fmt.Errorf("%w: serve decode: %v", ErrTransport, err)
		}
		rep := s.handle(req)
		err = enc.Encode(&rep)
		rep.Result.Release()
		if err != nil {
			return fmt.Errorf("%w: serve encode: %v", ErrTransport, err)
		}
	}
}

// decodeRequest reads one frame, converting decoder panics on hostile
// input into errors (gob is supposed to error on corrupt streams, but a
// device-facing listener must not trust that for every byte sequence).
func decodeRequest(dec *gob.Decoder) (req rpcRequest, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("decode panic: %v", r)
		}
	}()
	err = dec.Decode(&req)
	return req, err
}

// handle dispatches one request, converting handler panics into error
// replies so one hostile frame cannot take the broker down.
func (s *Server) handle(req rpcRequest) (rep rpcReply) {
	defer func() {
		if r := recover(); r != nil {
			rep = rpcReply{Err: fmt.Sprintf("adb: request panic: %v", r)}
		}
	}()
	switch {
	case req.Ping:
		rep.Pong = true
	case req.Reboot:
		if err := s.X.Reboot(); err != nil {
			rep.Err = err.Error()
		} else {
			rep.Pong = true
		}
	case req.Info:
		info, err := s.X.Info()
		if err != nil {
			rep.Err = err.Error()
		} else {
			rep.Info = &info
		}
	case req.Describe:
		info, err := s.X.Info()
		if err != nil {
			rep.Err = err.Error()
			return rep
		}
		rep.Describe = &DescribeReply{
			Info:  info,
			Calls: s.X.Target().Calls(),
			Seeds: s.Seeds,
		}
	case req.Exec != nil:
		res, err := s.X.Exec(*req.Exec)
		if err != nil {
			rep.Err = err.Error()
		} else {
			rep.Result = res
		}
	default:
		rep.Err = "adb: empty request"
	}
	return rep
}

// ServeTCP listens on ln and serves each accepted connection until the
// listener is closed. Per-connection failures (a client feeding garbage, a
// dropped link) end that connection only; the listener keeps accepting.
func (s *Server) ServeTCP(ln net.Listener) error {
	for {
		c, err := ln.Accept()
		if err != nil {
			return err
		}
		go func() {
			defer c.Close()
			_ = s.Serve(c)
		}()
	}
}

// Serve runs the device side of the protocol over rw with no seeds; see
// (*Server).Serve.
func Serve(rw io.ReadWriter, x Executor) error {
	return (&Server{X: x}).Serve(rw)
}

// ServeTCP serves x on ln with no seeds; see (*Server).ServeTCP.
func ServeTCP(ln net.Listener, x Executor) error {
	return (&Server{X: x}).ServeTCP(ln)
}
