package adb

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"droidfuzz/internal/dsl"
)

// The transport stands in for ADB: a message-framed, gob-encoded
// request/reply channel between the host-side fuzzing engine and the
// device-side broker. It runs over any io.ReadWriter — net.Pipe in-process,
// or a TCP loopback socket for the CLI tools — and carries the full
// Executor contract: program execution, reboot, liveness, and the identity
// handshake that binds a host engine to a remote target.
//
// Wire protocol v2 is multiplexed: every request carries a sequence tag the
// reply echoes, a dedicated writer goroutine owns the encoder and a reader
// goroutine owns the decoder, and a configurable window bounds how many
// requests may be in flight at once. The synchronous Executor API is a thin
// submit-and-wait layer over that core, so serial callers behave exactly as
// they did under the v1 lock-step protocol, while windowed callers (batched
// engines, several workers sharing one Conn) overlap request framing with
// device execution. See wire.go for the batched-execution RPC and the
// delta-coded coverage uplink.

// ErrTransport marks stream-level failures: a broken pipe, a garbled or
// truncated frame, a deadline hit. Errors wrapping it mean the connection
// is unusable and the caller should reconnect; application-level failures
// from the device side arrive as *RemoteError instead and leave the stream
// healthy. Test with errors.Is(err, ErrTransport).
var ErrTransport = errors.New("adb: transport failure")

// RemoteError is an application-level error reported by the device side of
// a transport connection (a bad program, a failed reboot). The stream
// stays in sync; only this request failed.
type RemoteError struct{ Msg string }

func (e *RemoteError) Error() string { return e.Msg }

type rpcRequest struct {
	// Tag is the request sequence ID; the reply echoes it so a windowed
	// client matches completions to callers without relying on reply order.
	Tag      uint64
	Exec     *ExecRequest
	Batch    *ExecBatchRequest
	Ping     bool
	Reboot   bool
	Reset    bool
	Info     bool
	Describe bool
	Export   bool
	Import   *ImportRequest
}

// ImportRequest carries a portable checkpoint to re-materialize on the
// device-side broker. The blob is an opaque pre-encoded device.Checkpoint:
// the rpc layer never decodes it, so checkpoint evolution does not touch
// the wire format.
type ImportRequest struct {
	Blob []byte
}

type rpcReply struct {
	Tag        uint64
	Result     *ExecResult
	Batch      *ExecBatchReply
	Pong       bool
	Restored   bool
	Info       *Info
	Describe   *DescribeReply
	Checkpoint []byte
	Imported   bool
	Err        string
}

// DescribeReply is the attach-time handshake payload: the device identity
// plus everything a host engine needs to generate programs for it — the
// full call-description surface and the distilled seed workloads from the
// device-side probing pass, in canonical DSL text form.
type DescribeReply struct {
	Info Info
	// Calls is the broker target's call-description surface in
	// registration order; the host rebuilds an identical dsl.Target from
	// it (gob round-trips every syntax field losslessly, so the rebuilt
	// target hashes identically).
	Calls []*dsl.CallDesc
	// Seeds are probing-pass seed programs in DSL text, parseable against
	// the rebuilt target.
	Seeds []string
}

// DefaultWindow is the in-flight request bound used when SetWindow was not
// called.
const DefaultWindow = 8

// pendingCall is one in-flight request: the reader goroutine (or the
// poisoning path) completes it by filling rep/err and closing done.
type pendingCall struct {
	req  rpcRequest
	rep  rpcReply
	err  error
	done chan struct{}
}

// Conn is the host side of a transport connection; it implements Executor.
// A Conn is not resilient: the first stream-level failure poisons it (the
// gob streams cannot resync) and every later call fails fast with the same
// ErrTransport-wrapped error. Wrap it in Resilient for reconnection.
//
// The underlying stream should be closable (net.Conn, net.Pipe): poisoning
// closes it to unblock the reader and writer goroutines.
type Conn struct {
	mu      sync.Mutex
	rwc     io.ReadWriter
	enc     *gob.Encoder // owned by writeLoop once started
	dec     *gob.Decoder // owned by readLoop once started
	timeout time.Duration
	window  int
	frame   int
	broken  error
	target  *dsl.Target
	info    Info
	stats   WireStats

	started bool
	nextTag uint64
	pending map[uint64]*pendingCall
	sendq   chan *pendingCall
	slots   chan struct{}
	quit    chan struct{}
}

var (
	_ Executor      = (*Conn)(nil)
	_ BatchExecutor = (*Conn)(nil)
	_ Cloner        = (*Conn)(nil)
)

// Dial wraps an established byte stream as the host end.
func Dial(rw io.ReadWriter) *Conn {
	return &Conn{enc: gob.NewEncoder(rw), dec: gob.NewDecoder(rw), rwc: rw}
}

// DialTCP connects to a broker served on a TCP address.
func DialTCP(addr string) (*Conn, error) {
	return DialTCPTimeout(addr, 0)
}

// DialTCPTimeout connects with a bounded dial; d <= 0 means no limit.
func DialTCPTimeout(addr string, d time.Duration) (*Conn, error) {
	c, err := net.DialTimeout("tcp", addr, d)
	if err != nil {
		return nil, fmt.Errorf("%w: dial %s: %v", ErrTransport, addr, err)
	}
	return Dial(c), nil
}

// SetCallTimeout bounds the wait for every subsequent call's reply; 0
// disables the bound. A timeout breaks the connection like any other
// stream failure — the gob stream cannot be resynced around an abandoned
// reply.
func (c *Conn) SetCallTimeout(d time.Duration) {
	c.mu.Lock()
	c.timeout = d
	c.mu.Unlock()
}

// SetWindow bounds how many requests may be in flight at once (default
// DefaultWindow). It must be called before the connection's first call;
// later calls have no effect.
func (c *Conn) SetWindow(n int) {
	c.mu.Lock()
	if !c.started && n > 0 {
		c.window = n
	}
	c.mu.Unlock()
}

// SetBatchFrame bounds how many programs ExecBatch packs per wire frame
// (default DefaultBatchFrame).
func (c *Conn) SetBatchFrame(n int) {
	c.mu.Lock()
	if n > 0 {
		c.frame = n
	}
	c.mu.Unlock()
}

// WireStats returns the uplink byte accounting reported by the broker for
// this connection's batched executions (zero until the first batch reply).
func (c *Conn) WireStats() WireStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Close closes the underlying stream when it is closable.
func (c *Conn) Close() error {
	if cl, ok := c.rwc.(io.Closer); ok {
		return cl.Close()
	}
	return nil
}

// startLocked spins up the writer and reader goroutines on first use.
// Called with c.mu held.
func (c *Conn) startLocked() {
	if c.started {
		return
	}
	c.started = true
	if c.window <= 0 {
		c.window = DefaultWindow
	}
	c.pending = make(map[uint64]*pendingCall, c.window)
	c.sendq = make(chan *pendingCall, c.window)
	c.slots = make(chan struct{}, c.window)
	c.quit = make(chan struct{})
	go c.writeLoop()
	go c.readLoop()
}

// submit registers a request in the in-flight window and hands it to the
// writer goroutine. It blocks while the window is full and fails fast once
// the connection is poisoned.
func (c *Conn) submit(req rpcRequest) (*pendingCall, error) {
	c.mu.Lock()
	if c.broken != nil {
		err := c.broken
		c.mu.Unlock()
		return nil, err
	}
	c.startLocked()
	slots, quit := c.slots, c.quit
	c.mu.Unlock()

	select {
	case slots <- struct{}{}: // acquire a window slot
	case <-quit:
		c.mu.Lock()
		err := c.broken
		c.mu.Unlock()
		return nil, err
	}
	c.mu.Lock()
	if c.broken != nil {
		err := c.broken
		c.mu.Unlock()
		<-slots
		return nil, err
	}
	c.nextTag++
	req.Tag = c.nextTag
	pc := &pendingCall{req: req, done: make(chan struct{})}
	c.pending[req.Tag] = pc
	c.mu.Unlock()
	// sendq is buffered to the window size and each registered call holds a
	// slot, so this never blocks even if the writer has exited.
	c.sendq <- pc
	return pc, nil
}

// wait blocks until the call completes or the call timeout fires (which
// poisons the connection — an abandoned reply would desync the stream).
func (c *Conn) wait(pc *pendingCall) (rpcReply, error) {
	c.mu.Lock()
	d := c.timeout
	c.mu.Unlock()
	if d > 0 {
		timer := time.NewTimer(d)
		defer timer.Stop()
		select {
		case <-pc.done:
		case <-timer.C:
			c.fail(fmt.Errorf("%w: call timed out after %v", ErrTransport, d))
			<-pc.done
		}
	} else {
		<-pc.done
	}
	if pc.err != nil {
		return rpcReply{}, pc.err
	}
	if pc.rep.Err != "" {
		return pc.rep, &RemoteError{Msg: pc.rep.Err}
	}
	return pc.rep, nil
}

// writeLoop is the sole user of the encoder: it serializes queued requests
// onto the wire in submission order.
func (c *Conn) writeLoop() {
	for {
		select {
		case pc := <-c.sendq:
			c.mu.Lock()
			broken := c.broken
			c.mu.Unlock()
			if broken != nil {
				continue // fail already completed the call
			}
			if err := c.enc.Encode(&pc.req); err != nil {
				c.fail(fmt.Errorf("%w: send: %v", ErrTransport, err))
				return
			}
		case <-c.quit:
			return
		}
	}
}

// readLoop is the sole user of the decoder: it matches each reply to its
// in-flight call by tag and completes it, releasing the window slot.
func (c *Conn) readLoop() {
	for {
		var rep rpcReply
		if err := c.dec.Decode(&rep); err != nil {
			c.fail(fmt.Errorf("%w: recv: %v", ErrTransport, err))
			return
		}
		c.mu.Lock()
		pc := c.pending[rep.Tag]
		delete(c.pending, rep.Tag)
		c.mu.Unlock()
		if pc == nil {
			c.fail(fmt.Errorf("%w: recv: unmatched reply tag %d", ErrTransport, rep.Tag))
			return
		}
		pc.rep = rep
		close(pc.done)
		<-c.slots
	}
}

// fail poisons the connection: the first failure sticks, the stream is
// closed to unblock the writer and reader goroutines, and every in-flight
// call completes with the poisoning error.
func (c *Conn) fail(err error) {
	c.mu.Lock()
	if c.broken == nil {
		c.broken = err
		if c.quit != nil {
			close(c.quit)
		}
		if cl, ok := c.rwc.(io.Closer); ok {
			cl.Close()
		}
	}
	err = c.broken
	stale := c.pending
	c.pending = make(map[uint64]*pendingCall, 1)
	c.mu.Unlock()
	// Every stale call gets the same terminal error; delivery order among
	// already-failed RPCs is unobservable to callers.
	for _, pc := range stale { //droidvet:nondet order-independent failure fan-out
		pc.err = err
		close(pc.done)
		<-c.slots
	}
}

// roundTrip performs one synchronous request over the async core.
func (c *Conn) roundTrip(req rpcRequest) (rpcReply, error) {
	pc, err := c.submit(req)
	if err != nil {
		return rpcReply{}, err
	}
	return c.wait(pc)
}

// Exec implements Executor over the transport. Singleton executions always
// carry the exact, uncompressed result — minimization and crash triage
// depend on it; the batched path (ExecBatch) is where the wire-efficient
// encoding lives. The decoded result is pooled on the broker side only —
// on this side it is freshly gob-allocated, but callers should still
// Release it so pooling works when the executor is in-process.
func (c *Conn) Exec(req ExecRequest) (*ExecResult, error) {
	rep, err := c.roundTrip(rpcRequest{Exec: &req})
	if err != nil {
		return nil, err
	}
	if rep.Result == nil {
		return nil, &RemoteError{Msg: "adb: empty reply"}
	}
	return rep.Result, nil
}

// ExecProg implements Executor: the program crosses the wire in its
// canonical text form and is re-parsed by the device-side broker (the
// round trip is lossless). As with Exec, the caller owns the result and
// should Release it.
func (c *Conn) ExecProg(p *dsl.Prog) (*ExecResult, error) {
	return c.Exec(ExecRequest{ProgText: p.String()})
}

// Ping round-trips a liveness check.
func (c *Conn) Ping() error {
	rep, err := c.roundTrip(rpcRequest{Ping: true})
	if err != nil {
		return err
	}
	if !rep.Pong {
		return &RemoteError{Msg: "adb: bad pong"}
	}
	return nil
}

// Reboot implements Executor: the device-side broker reboots its device.
func (c *Conn) Reboot() error {
	_, err := c.roundTrip(rpcRequest{Reboot: true})
	return err
}

// Reset implements Executor: the device-side broker restores its device
// from the boot snapshot, rebooting only when restore cannot reach
// pristine state. The reply reports which path ran, so remote campaigns
// account restores and reboots the same way local ones do.
func (c *Conn) Reset() (bool, error) {
	rep, err := c.roundTrip(rpcRequest{Reset: true})
	if err != nil {
		return false, err
	}
	return rep.Restored, nil
}

// ExportCheckpoint implements Cloner: the device-side broker serializes
// its device state and ships the opaque blob back.
func (c *Conn) ExportCheckpoint() ([]byte, error) {
	rep, err := c.roundTrip(rpcRequest{Export: true})
	if err != nil {
		return nil, err
	}
	if len(rep.Checkpoint) == 0 {
		return nil, &RemoteError{Msg: "adb: empty checkpoint reply"}
	}
	return rep.Checkpoint, nil
}

// ImportCheckpoint implements Cloner: the device-side broker
// re-materializes the blob onto its (same-model) device.
func (c *Conn) ImportCheckpoint(blob []byte) error {
	rep, err := c.roundTrip(rpcRequest{Import: &ImportRequest{Blob: blob}})
	if err != nil {
		return err
	}
	if !rep.Imported {
		return &RemoteError{Msg: "adb: checkpoint import not acknowledged"}
	}
	return nil
}

// Info implements Executor with a live identity round trip.
func (c *Conn) Info() (Info, error) {
	rep, err := c.roundTrip(rpcRequest{Info: true})
	if err != nil {
		return Info{}, err
	}
	if rep.Info == nil {
		return Info{}, &RemoteError{Msg: "adb: empty info reply"}
	}
	c.mu.Lock()
	c.info = *rep.Info
	c.mu.Unlock()
	return *rep.Info, nil
}

// Target implements Executor: the host-side target bound by Handshake (nil
// before a successful handshake).
func (c *Conn) Target() *dsl.Target {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.target
}

// Handshake performs the Describe round trip, rebuilds the device's
// call-description target host-side, and verifies the rebuilt target
// hashes to the device-reported fingerprint before binding it to the
// connection. Engines attach to the Conn only after a clean handshake.
func (c *Conn) Handshake() (*DescribeReply, error) {
	rep, err := c.roundTrip(rpcRequest{Describe: true})
	if err != nil {
		return nil, err
	}
	if rep.Describe == nil {
		return nil, &RemoteError{Msg: "adb: empty describe reply"}
	}
	target, err := dsl.NewTarget(rep.Describe.Calls...)
	if err != nil {
		return nil, fmt.Errorf("adb: handshake: rebuild target: %w", err)
	}
	if h := target.Hash(); h != rep.Describe.Info.TargetHash {
		return nil, fmt.Errorf("adb: handshake: target hash mismatch: host %#x, device %#x",
			h, rep.Describe.Info.TargetHash)
	}
	c.mu.Lock()
	c.target = target
	c.info = rep.Describe.Info
	c.mu.Unlock()
	return rep.Describe, nil
}

// Server is the device side of the transport: it dispatches protocol
// requests to an Executor (usually the in-process *Broker) and answers the
// Describe handshake with the executor's identity plus optional seed
// programs from the probing pass.
type Server struct {
	X Executor
	// Seeds are probing-pass seed programs in DSL text form, handed to
	// hosts at handshake so a remote engine bootstraps the same corpus an
	// in-process one would.
	Seeds []string
	// NewFilter, when set, builds one UplinkFilter per served connection:
	// the broker-side mirror of the host engine's feedback pipeline that
	// lets summary-mode batches elide traces carrying no new signal. Nil
	// disables elision (batches still delta-code their traces).
	NewFilter func() UplinkFilter
}

// Serve runs the device side of the protocol over rw until the stream
// ends. It returns nil on a clean EOF and an ErrTransport-wrapped error on
// garbage, truncated frames, or a mid-stream hangup; it never panics —
// protocol-handler panics are converted to per-request error replies.
// Requests are handled serially in arrival order; windowed clients get
// pipelining (the next request is already framed while this one executes),
// not reordering.
func (s *Server) Serve(rw io.ReadWriter) error {
	enc := gob.NewEncoder(rw)
	dec := gob.NewDecoder(rw)
	st := &connState{}
	if s.NewFilter != nil {
		st.filter = s.NewFilter()
	}
	for {
		req, err := decodeRequest(dec)
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrClosedPipe) {
				return nil
			}
			return fmt.Errorf("%w: serve decode: %v", ErrTransport, err)
		}
		rep := s.handle(req, st)
		rep.Tag = req.Tag
		err = enc.Encode(&rep)
		rep.Result.Release()
		if err != nil {
			return fmt.Errorf("%w: serve encode: %v", ErrTransport, err)
		}
	}
}

// decodeRequest reads one frame, converting decoder panics on hostile
// input into errors (gob is supposed to error on corrupt streams, but a
// device-facing listener must not trust that for every byte sequence).
func decodeRequest(dec *gob.Decoder) (req rpcRequest, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("decode panic: %v", r)
		}
	}()
	err = dec.Decode(&req)
	return req, err
}

// handle dispatches one request, converting handler panics into error
// replies so one hostile frame cannot take the broker down.
func (s *Server) handle(req rpcRequest, st *connState) (rep rpcReply) {
	defer func() {
		if r := recover(); r != nil {
			rep = rpcReply{Err: fmt.Sprintf("adb: request panic: %v", r)}
		}
	}()
	switch {
	case req.Ping:
		rep.Pong = true
	case req.Reboot:
		if err := s.X.Reboot(); err != nil {
			rep.Err = err.Error()
		} else {
			rep.Pong = true
		}
	case req.Reset:
		restored, err := s.X.Reset()
		if err != nil {
			rep.Err = err.Error()
		} else {
			rep.Pong = true
			rep.Restored = restored
		}
	case req.Info:
		info, err := s.X.Info()
		if err != nil {
			rep.Err = err.Error()
		} else {
			rep.Info = &info
		}
	case req.Describe:
		info, err := s.X.Info()
		if err != nil {
			rep.Err = err.Error()
			return rep
		}
		rep.Describe = &DescribeReply{
			Info:  info,
			Calls: s.X.Target().Calls(),
			Seeds: s.Seeds,
		}
	case req.Export:
		cl, ok := s.X.(Cloner)
		if !ok {
			rep.Err = "adb: executor does not support checkpoints"
			break
		}
		blob, err := cl.ExportCheckpoint()
		if err != nil {
			rep.Err = err.Error()
		} else {
			rep.Checkpoint = blob
		}
	case req.Import != nil:
		cl, ok := s.X.(Cloner)
		if !ok {
			rep.Err = "adb: executor does not support checkpoints"
			break
		}
		if err := cl.ImportCheckpoint(req.Import.Blob); err != nil {
			rep.Err = err.Error()
		} else {
			rep.Imported = true
		}
	case req.Exec != nil:
		res, err := s.X.Exec(*req.Exec)
		if err != nil {
			rep.Err = err.Error()
		} else {
			// Keep the per-conn filter synced with every execution it
			// serves, so later summary batches elide against the full
			// stream this host has already seen. Singletons are never
			// elided themselves.
			st.observe(res)
			rep.Result = res
		}
	case req.Batch != nil:
		rep.Batch = s.execBatch(st, req.Batch)
	default:
		rep.Err = "adb: empty request"
	}
	return rep
}

// ServeTCP listens on ln and serves each accepted connection until the
// listener is closed. Per-connection failures (a client feeding garbage, a
// dropped link) end that connection only; the listener keeps accepting.
func (s *Server) ServeTCP(ln net.Listener) error {
	for {
		c, err := ln.Accept()
		if err != nil {
			return err
		}
		go func() {
			defer c.Close()
			_ = s.Serve(c)
		}()
	}
}

// Serve runs the device side of the protocol over rw with no seeds; see
// (*Server).Serve.
func Serve(rw io.ReadWriter, x Executor) error {
	return (&Server{X: x}).Serve(rw)
}

// ServeTCP serves x on ln with no seeds; see (*Server).ServeTCP.
func ServeTCP(ln net.Listener, x Executor) error {
	return (&Server{X: x}).ServeTCP(ln)
}
