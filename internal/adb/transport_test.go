package adb

import (
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"droidfuzz/internal/dsl"
)

// TestServeSurvivesGarbageFrames: the device-side loop must reject hostile
// or truncated byte streams with an error — never a panic, never a hang.
func TestServeSurvivesGarbageFrames(t *testing.T) {
	cases := []struct {
		name    string
		payload []byte
		wantErr bool
	}{
		{"empty stream", nil, false}, // immediate EOF is a clean shutdown
		{"garbage bytes", []byte{0xde, 0xad, 0xbe, 0xef, 0xff, 0x00, 0x13, 0x37}, true},
		{"huge length prefix", []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff}, true},
		{"ascii junk", []byte("GET / HTTP/1.1\r\n\r\n"), true},
		{"truncated frame", truncatedFrame(t), true},
		// gob skips a zero-length message, then hits clean EOF.
		{"single zero byte", []byte{0x00}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b, _ := newBrokerRig(t, "B")
			host, devSide := net.Pipe()
			done := make(chan error, 1)
			go func() { done <- Serve(devSide, b) }()
			if len(tc.payload) > 0 {
				host.SetWriteDeadline(time.Now().Add(time.Second))
				host.Write(tc.payload)
			}
			host.Close()
			select {
			case err := <-done:
				if tc.wantErr && err == nil {
					t.Fatal("corrupt stream reported as clean shutdown")
				}
				if tc.wantErr && !errors.Is(err, ErrTransport) {
					t.Fatalf("error not ErrTransport-typed: %v", err)
				}
				if !tc.wantErr && err != nil {
					t.Fatalf("clean shutdown errored: %v", err)
				}
			case <-time.After(5 * time.Second):
				t.Fatal("Serve hung on corrupt stream")
			}
		})
	}
}

// truncatedFrame returns the first half of a valid request frame: a
// syntactically plausible prefix that ends mid-message.
func truncatedFrame(t *testing.T) []byte {
	t.Helper()
	srv, cli := net.Pipe()
	buf := make(chan []byte, 1)
	go func() {
		data, _ := io.ReadAll(srv)
		buf <- data
	}()
	conn := Dial(cli)
	conn.SetCallTimeout(100 * time.Millisecond)
	conn.Ping() // fails on the recv side; the frame still went out
	cli.Close()
	frame := <-buf
	if len(frame) < 4 {
		t.Fatalf("captured frame too short: %d bytes", len(frame))
	}
	return frame[:len(frame)/2]
}

// TestConnTypedErrorAfterStreamBreak: the first stream failure poisons the
// Conn and every subsequent call fails fast with an ErrTransport-wrapped
// error instead of deadlocking on a desynchronized gob stream.
func TestConnTypedErrorAfterStreamBreak(t *testing.T) {
	b, _ := newBrokerRig(t, "B")
	host, devSide := net.Pipe()
	go Serve(devSide, b)

	conn := Dial(host)
	if err := conn.Ping(); err != nil {
		t.Fatal(err)
	}
	devSide.Close() // broker side drops mid-session
	host.Close()
	err := conn.Ping()
	if err == nil {
		t.Fatal("ping succeeded over a dead stream")
	}
	if !errors.Is(err, ErrTransport) {
		t.Fatalf("stream break not ErrTransport-typed: %v", err)
	}
	// Later calls fail fast with the same classification, no I/O.
	start := time.Now()
	for i := 0; i < 3; i++ {
		if err := conn.Reboot(); !errors.Is(err, ErrTransport) {
			t.Fatalf("poisoned conn returned %v", err)
		}
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("fail-fast path took %v", elapsed)
	}
}

// TestRemoteErrorLeavesStreamHealthy: an application-level rejection (bad
// program) is a *RemoteError, not a transport failure, and the connection
// keeps working.
func TestRemoteErrorLeavesStreamHealthy(t *testing.T) {
	b, _ := newBrokerRig(t, "B")
	host, devSide := net.Pipe()
	go Serve(devSide, b)
	defer host.Close()

	conn := Dial(host)
	_, err := conn.Exec(ExecRequest{ProgText: "garbage(\n"})
	var rerr *RemoteError
	if !errors.As(err, &rerr) {
		t.Fatalf("bad program error = %v, want *RemoteError", err)
	}
	if errors.Is(err, ErrTransport) {
		t.Fatal("application error misclassified as transport failure")
	}
	if err := conn.Ping(); err != nil {
		t.Fatalf("stream unusable after application error: %v", err)
	}
}

// TestTransportRebootAndInfo: the widened protocol carries reboot and the
// identity handshake across the wire.
func TestTransportRebootAndInfo(t *testing.T) {
	b, target := newBrokerRig(t, "A1")
	host, devSide := net.Pipe()
	go Serve(devSide, b)
	defer host.Close()

	conn := Dial(host)
	info, err := conn.Info()
	if err != nil {
		t.Fatal(err)
	}
	if info.ModelID != "A1" {
		t.Fatalf("model = %q", info.ModelID)
	}
	if info.TargetHash != target.Hash() {
		t.Fatalf("target hash mismatch: %#x vs %#x", info.TargetHash, target.Hash())
	}
	if info.Reboots != 0 {
		t.Fatalf("fresh device reboots = %d", info.Reboots)
	}
	if err := conn.Reboot(); err != nil {
		t.Fatal(err)
	}
	if info, _ = conn.Info(); info.Reboots != 1 {
		t.Fatalf("reboot not reflected: %+v", info)
	}
}

// TestHandshakeBindsVerifiedTarget: Handshake rebuilds the device's target
// host-side, verifies the fingerprint, and makes the Conn a full Executor
// (ExecProg over the wire against the bound target).
func TestHandshakeBindsVerifiedTarget(t *testing.T) {
	b, target := newBrokerRig(t, "B")
	host, devSide := net.Pipe()
	srv := &Server{X: b, Seeds: []string{"r0 = open$hci(path=\"/dev/hci0\")\n"}}
	go srv.Serve(devSide)
	defer host.Close()

	conn := Dial(host)
	if conn.Target() != nil {
		t.Fatal("target bound before handshake")
	}
	rep, err := conn.Handshake()
	if err != nil {
		t.Fatal(err)
	}
	if got := conn.Target(); got == nil || got.Hash() != target.Hash() {
		t.Fatalf("rebuilt target hash mismatch")
	}
	if len(rep.Seeds) != 1 {
		t.Fatalf("seeds = %v", rep.Seeds)
	}
	if len(rep.Calls) != len(target.Calls()) {
		t.Fatalf("calls = %d, want %d", len(rep.Calls), len(target.Calls()))
	}
	// The rebuilt target parses and executes programs end to end.
	p, err := dsl.ParseProg(conn.Target(), rep.Seeds[0])
	if err != nil {
		t.Fatal(err)
	}
	res, err := conn.ExecProg(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Calls) != 1 || res.Calls[0].Errno != "OK" {
		t.Fatalf("remote ExecProg = %+v", res.Calls)
	}
}
