package adb

import (
	"fmt"

	"droidfuzz/internal/kcov"
)

// Wire protocol v2 batched execution: N programs per request frame, N
// results per reply, with PC traces delta-coded (kcov varint codec) and an
// optional summary mode where the broker elides the traces of executions
// that produced no new signal against its per-connection view of the
// host's feedback pipeline. Crashing executions and executions with fresh
// signal always ship in full; the host's accumulator sees the same novelty
// verdicts it would have computed locally, at a fraction of the bytes.

// DefaultBatchFrame is how many programs ExecBatch packs per wire frame
// when SetBatchFrame was not called. Frames pipeline through the in-flight
// window, so a large batch becomes several frames in flight at once.
const DefaultBatchFrame = 16

// BatchExecutor is the optional batched-execution extension of Executor:
// run several programs back to back and return one result per program (a
// nil entry marks a program that failed to execute). The in-process Broker,
// the transport Conn, and the Resilient client implement it.
type BatchExecutor interface {
	ExecBatch(req ExecBatchRequest) ([]*ExecResult, error)
}

// ExecBatchRequest asks the broker to run a batch of programs in order.
type ExecBatchRequest struct {
	// Progs are the programs in DSL text form.
	Progs []string
	// Summary enables the interesting-only uplink: the broker withholds
	// the coverage traces of executions that contributed no new signal to
	// its per-connection filter. Requires the server to be configured with
	// an UplinkFilter; otherwise results are merely delta-coded.
	Summary bool
}

// ExecBatchReply carries one WireResult per program plus the connection's
// cumulative uplink accounting.
type ExecBatchReply struct {
	Results []WireResult
	// Cumulative per-connection counters; see WireStats.
	Execs        uint64
	Elided       uint64
	CovRawBytes  uint64
	CovWireBytes uint64
}

// WireStats is the uplink accounting for one connection's batched
// executions: how many bytes the coverage traces would have cost in flat
// 4-bytes-per-PC form versus what the delta-coded, summary-filtered uplink
// actually shipped.
type WireStats struct {
	// Execs counts batched executions.
	Execs uint64
	// Elided counts executions whose traces were withheld (no new signal).
	Elided uint64
	// CovRawBytes is the flat-encoding cost of every trace produced.
	CovRawBytes uint64
	// CovWireBytes is the delta-coded bytes actually shipped.
	CovWireBytes uint64
}

// Saved reports the uplink bytes avoided versus the flat encoding.
func (w WireStats) Saved() uint64 {
	if w.CovWireBytes >= w.CovRawBytes {
		return 0
	}
	return w.CovRawBytes - w.CovWireBytes
}

// Add folds another connection's accounting into w (Resilient accumulates
// across reconnects).
func (w *WireStats) Add(o WireStats) {
	w.Execs += o.Execs
	w.Elided += o.Elided
	w.CovRawBytes += o.CovRawBytes
	w.CovWireBytes += o.CovWireBytes
}

// UplinkFilter is the broker-side mirror of a host engine's feedback
// pipeline: it folds every execution result served on one connection into
// an accumulated signal set and reports whether the result contributed
// anything new. Implemented by the feedback package (the import points this
// way: feedback builds on adb's result types, so adb only sees the
// interface).
type UplinkFilter interface {
	// Observe folds res into the accumulated view and reports whether it
	// carried new signal.
	Observe(res *ExecResult) bool
}

// connState is the per-served-connection protocol state: the uplink filter
// and the byte accounting the batch replies report back to the host.
type connState struct {
	filter UplinkFilter
	stats  WireStats
}

// observe feeds one result to the filter (if any), reporting novelty.
// Results from connections without a filter are always novel.
func (st *connState) observe(res *ExecResult) bool {
	if st.filter == nil || res == nil {
		return true
	}
	return st.filter.Observe(res)
}

// WireResult is the batched-reply encoding of one ExecResult: call
// outcomes with their PC traces split out into delta-coded byte strings,
// or elided entirely in summary mode when the execution carried no new
// signal. It owns its memory — nothing aliases the broker's pooled result.
type WireResult struct {
	// Err is set when this program failed to execute (parse error,
	// injected fault); all other fields are zero.
	Err string
	// Calls holds per-call outcomes with Cover stripped; CallCov carries
	// the delta-coded traces at matching indexes when not elided.
	Calls   []CallResult
	CallCov [][]byte
	// KernelCov is the delta-coded full execution trace (nil when elided).
	KernelCov []byte
	HALTrace  []TraceEvent
	Crashes   []CrashRecord
	Dmesg     []string
	Wedged    bool
	HALDead   bool
	// Elided marks a summary-mode result whose traces were withheld
	// because the broker-side filter saw no new signal in them.
	Elided bool
}

// encode fills w from res, delta-coding the traces (unless elide withholds
// them), and returns the flat-encoding cost and shipped bytes of the
// coverage payload. res stays untouched and may be released afterwards.
func (w *WireResult) encode(res *ExecResult, elide bool) (raw, wire uint64) {
	*w = WireResult{
		Wedged:  res.Wedged,
		HALDead: res.HALDead,
		Elided:  elide,
	}
	if len(res.Crashes) > 0 {
		w.Crashes = append([]CrashRecord(nil), res.Crashes...)
	}
	if len(res.Dmesg) > 0 {
		w.Dmesg = append([]string(nil), res.Dmesg...)
	}
	w.Calls = make([]CallResult, len(res.Calls))
	for i := range res.Calls {
		c := &res.Calls[i]
		w.Calls[i] = CallResult{Executed: c.Executed, Errno: c.Errno, Ret: c.Ret}
		raw += 4 * uint64(len(c.Cover))
	}
	raw += 4 * uint64(len(res.KernelCov))
	if elide {
		return raw, 0
	}
	if len(res.HALTrace) > 0 {
		w.HALTrace = append([]TraceEvent(nil), res.HALTrace...)
	}
	w.KernelCov = kcov.AppendDelta(nil, res.KernelCov)
	wire = uint64(len(w.KernelCov))
	w.CallCov = make([][]byte, len(res.Calls))
	for i := range res.Calls {
		w.CallCov[i] = kcov.AppendDelta(nil, res.Calls[i].Cover)
		wire += uint64(len(w.CallCov[i]))
	}
	return raw, wire
}

// decode rebuilds a pooled ExecResult from the wire form. Elided results
// decode to a result with empty traces — by construction they carried no
// new signal, so the host feedback pipeline draws the same conclusion it
// would have from the full trace.
func (w *WireResult) decode() (*ExecResult, error) {
	r := GetResult()
	r.prepare(len(w.Calls))
	var err error
	for i := range w.Calls {
		c := &r.Calls[i]
		c.Executed = w.Calls[i].Executed
		c.Errno = w.Calls[i].Errno
		c.Ret = w.Calls[i].Ret
		if i < len(w.CallCov) {
			if c.Cover, err = kcov.DecodeDelta(c.Cover[:0], w.CallCov[i]); err != nil {
				r.Release()
				return nil, err
			}
		}
	}
	if r.KernelCov, err = kcov.DecodeDelta(r.KernelCov[:0], w.KernelCov); err != nil {
		r.Release()
		return nil, err
	}
	r.HALTrace = append(r.HALTrace, w.HALTrace...)
	r.Crashes = append(r.Crashes, w.Crashes...)
	r.Dmesg = w.Dmesg
	r.Wedged = w.Wedged
	r.HALDead = w.HALDead
	return r, nil
}

// frameSize returns the per-frame program bound.
func (c *Conn) frameSize() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.frame > 0 {
		return c.frame
	}
	return DefaultBatchFrame
}

// noteWire records the cumulative uplink accounting the broker reported
// for this connection.
func (c *Conn) noteWire(rep *ExecBatchReply) {
	c.mu.Lock()
	c.stats = WireStats{
		Execs:        rep.Execs,
		Elided:       rep.Elided,
		CovRawBytes:  rep.CovRawBytes,
		CovWireBytes: rep.CovWireBytes,
	}
	c.mu.Unlock()
}

// ExecBatch implements BatchExecutor over the transport: the batch is
// split into frames of at most SetBatchFrame programs, the frames are
// submitted through the in-flight window (so several are on the wire or
// executing while earlier replies are still being decoded), and results
// are collected in submission order. On a transport failure it returns the
// results of every fully acknowledged frame along with the error — the
// unacknowledged tail is the caller's to retry (Resilient does exactly
// that). A nil entry marks a program the broker rejected; the slice always
// aligns index-for-index with the acknowledged prefix of req.Progs.
// Non-nil results are pooled and owned by the caller (Release each).
func (c *Conn) ExecBatch(req ExecBatchRequest) ([]*ExecResult, error) {
	n := len(req.Progs)
	if n == 0 {
		return nil, nil
	}
	frame := c.frameSize()
	nFrames := (n + frame - 1) / frame
	type submitted struct {
		pc  *pendingCall
		err error
	}
	frames := make(chan submitted, nFrames)
	go func() {
		defer close(frames)
		for start := 0; start < n; start += frame {
			end := start + frame
			if end > n {
				end = n
			}
			pc, err := c.submit(rpcRequest{Batch: &ExecBatchRequest{
				Progs:   req.Progs[start:end],
				Summary: req.Summary,
			}})
			frames <- submitted{pc, err}
			if err != nil {
				return
			}
		}
	}()
	out := make([]*ExecResult, 0, n)
	for s := range frames {
		if s.err != nil {
			return out, s.err
		}
		rep, err := c.wait(s.pc)
		if err != nil {
			// The channel is buffered to nFrames, so the submitter never
			// blocks; abandoning it here leaks nothing.
			return out, err
		}
		if rep.Batch == nil {
			return out, &RemoteError{Msg: "adb: empty batch reply"}
		}
		for i := range rep.Batch.Results {
			w := &rep.Batch.Results[i]
			if w.Err != "" {
				out = append(out, nil)
				continue
			}
			res, err := w.decode()
			if err != nil {
				out = append(out, nil) // corrupt trace: drop this program only
				continue
			}
			out = append(out, res)
		}
		c.noteWire(rep.Batch)
	}
	return out, nil
}

// execBatch is the server side of ExecBatch: run every program in the
// frame in order (no early stop — a crash reboots the device and the rest
// of the frame runs on the fresh boot, which is the documented determinism
// caveat of batched mode), feed each result to the connection's filter,
// and encode, eliding traces the summary mode proved uninteresting.
func (s *Server) execBatch(st *connState, req *ExecBatchRequest) *ExecBatchReply {
	rep := &ExecBatchReply{Results: make([]WireResult, len(req.Progs))}
	for i, text := range req.Progs {
		res, err := s.execOne(text)
		if err != nil {
			rep.Results[i].Err = err.Error()
			continue
		}
		novel := st.observe(res)
		elide := req.Summary && st.filter != nil && !novel &&
			!res.Crashed() && !res.NeedsReboot()
		raw, wire := rep.Results[i].encode(res, elide)
		sanitizeWireResult(&rep.Results[i], res)
		st.stats.Execs++
		st.stats.CovRawBytes += raw
		st.stats.CovWireBytes += wire
		if elide {
			st.stats.Elided++
		}
		res.Release()
	}
	rep.Execs = st.stats.Execs
	rep.Elided = st.stats.Elided
	rep.CovRawBytes = st.stats.CovRawBytes
	rep.CovWireBytes = st.stats.CovWireBytes
	return rep
}

// execOne runs one batched program with the same panic guard the
// per-request handler has: one hostile program must not take down the
// whole frame. The pooled result is owned by the caller, who Releases it
// after encoding the reply frame.
func (s *Server) execOne(text string) (res *ExecResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("adb: exec panic: %v", r)
		}
	}()
	return s.X.Exec(ExecRequest{ProgText: text})
}
