package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"time"
)

// Pass names, used both for dispatch and as waiver keys.
const (
	PassDeterminism = "nondet"
	PassPoolcheck   = "poolcheck"
	PassLockorder   = "lockorder"
	PassTaggedField = "wire"
	PassSnapshot    = "snapshot"
	PassAtomics     = "atomics"
	PassCheckpoint  = "checkpoint"
	PassGoLifetime  = "golifetime"
	// PassWaiver reports malformed waiver comments themselves: a
	// //droidvet: annotation naming a pass that does not exist suppresses
	// nothing and would otherwise rot silently.
	PassWaiver = "waiver"
)

// knownPasses is the set of valid waiver keys.
var knownPasses = map[string]bool{
	PassDeterminism: true,
	PassPoolcheck:   true,
	PassLockorder:   true,
	PassTaggedField: true,
	PassSnapshot:    true,
	PassAtomics:     true,
	PassCheckpoint:  true,
	PassGoLifetime:  true,
	PassWaiver:      true,
}

// Diagnostic is one droidvet finding.
type Diagnostic struct {
	Pos     token.Position
	Pass    string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Pass, d.Message)
}

// PooledType names one pooled object type and its release method: poolcheck
// tracks values of this type through Get/Release lifecycles.
type PooledType struct {
	// TypePath is the fully qualified named type, "pkgpath.Name".
	TypePath string
	// ReleaseMethod is the method that returns the value to its pool.
	ReleaseMethod string
	// PoolVars are package-level sync.Pool variables whose Put calls count
	// as releases of this type ("pkgpath.varname").
	PoolVars []string
}

// Config selects what the passes enforce. The zero value runs nothing; use
// DefaultConfig for the DroidFuzz production rules.
type Config struct {
	// DeterminismRoots are the package paths whose transitive module-internal
	// import closure must stay deterministic (serial-mode replay).
	DeterminismRoots []string
	// Pooled lists the pool-recycled types poolcheck tracks.
	Pooled []PooledType
	// LockTypes are the fully qualified struct types whose mutex acquisition
	// order lockorder records and checks for inversions.
	LockTypes []string
	// WireRoots are the fully qualified struct types rooting the wire-frame
	// closure taggedfield fingerprints.
	WireRoots []string
	// WireManifest is the path of the committed frame-layout manifest
	// (relative paths resolve against the module root). Empty disables the
	// manifest comparison; interface-member checks still run.
	WireManifest string
	// SnapshotTypes are the fully qualified named types that are immutable
	// once published through an atomic pointer (relation.Snapshot); the
	// snapshot pass flags any write descending through a value of them.
	SnapshotTypes []string
	// SnapshotBuilders are the "pkgpath.FuncName" functions allowed to
	// write snapshot fields: construction under the master lock, before
	// publication.
	SnapshotBuilders []string
	// AtomicTypes are the fully qualified struct types whose fields the
	// atomics pass holds to atomic access discipline: atomic-typed fields
	// stay inside their Load/Store API, plain fields touched through
	// sync/atomic anywhere are atomic everywhere, and atomic.Pointer[T]
	// fields make T publish-immutable.
	AtomicTypes []string
	// CheckpointIface is the fully qualified snapshot subsystem interface
	// ("droidfuzz/internal/snap.Subsystem"); every implementing struct gets
	// checkpoint field-set completeness checks. Empty disables the pass.
	CheckpointIface string
	// GoroutineRoots are the package paths whose transitive module-internal
	// import closure the golifetime pass scans for `go` statements.
	GoroutineRoots []string
	// GoShutdownChans are the channel identifier/field/method names the
	// daemon's close sequence is known to signal; an unbounded goroutine
	// loop must receive from one of them to count as shutdown-tied.
	GoShutdownChans []string
}

// DefaultConfig returns the production rule set for the droidfuzz module.
func DefaultConfig() Config {
	return Config{
		DeterminismRoots: []string{
			"droidfuzz/internal/engine",
			"droidfuzz/internal/gen",
			"droidfuzz/internal/relation",
			"droidfuzz/internal/dsl",
		},
		Pooled: []PooledType{
			{
				TypePath:      "droidfuzz/internal/feedback.Signal",
				ReleaseMethod: "Release",
				PoolVars:      []string{"droidfuzz/internal/feedback.signalPool"},
			},
			{
				TypePath:      "droidfuzz/internal/adb.ExecResult",
				ReleaseMethod: "Release",
				PoolVars:      []string{"droidfuzz/internal/adb.resultPool"},
			},
			{
				TypePath:      "droidfuzz/internal/adb.resTable",
				ReleaseMethod: "release",
				PoolVars:      []string{"droidfuzz/internal/adb.resPool"},
			},
		},
		LockTypes: []string{
			"droidfuzz/internal/adb.Conn",
			"droidfuzz/internal/feedback.SpecTable",
			"droidfuzz/internal/daemon.Daemon",
			"droidfuzz/internal/relation.Graph",
			"droidfuzz/internal/relation.LearnBuffer",
		},
		SnapshotTypes: []string{
			"droidfuzz/internal/relation.Snapshot",
			// PR 6 device checkpoints: the pristine-state payloads captured
			// at boot are the restore reference — a write into one after
			// capture corrupts every later Restore. Only the registered
			// Checkpoint/Restore implementations (and the snapshot capture
			// itself) may touch them.
			"droidfuzz/internal/device.Snapshot",
			"droidfuzz/internal/device.snapEntry",
			"droidfuzz/internal/vkernel.kernelState",
			"droidfuzz/internal/kasan.heapState",
			"droidfuzz/internal/binder.smState",
			"droidfuzz/internal/hal.procState",
			"droidfuzz/internal/drivers.tcpcState",
			"droidfuzz/internal/drivers.hciState",
			"droidfuzz/internal/drivers.v4l2State",
			"droidfuzz/internal/drivers.audioState",
			"droidfuzz/internal/drivers.gpuState",
			"droidfuzz/internal/drivers.wlanState",
			"droidfuzz/internal/drivers.sensorState",
			"droidfuzz/internal/drivers.nfcState",
			"droidfuzz/internal/drivers.thermalState",
			"droidfuzz/internal/drivers.touchState",
			// PR 7 runtime-parameter state: knob snapshots restore the
			// sysfs-visible values, one payload per driver family.
			"droidfuzz/internal/drivers.knobsState",
			// PR 8 portable checkpoints: exported blobs are immutable the
			// moment Export returns — one decoded Checkpoint may be imported
			// into any number of clone twins, so a write through an imported
			// blob would corrupt every sibling. Only the Export builders
			// (construction before publication) may assemble them.
			"droidfuzz/internal/device.Checkpoint",
			"droidfuzz/internal/vkernel.KernelExport",
			"droidfuzz/internal/kasan.HeapExport",
			"droidfuzz/internal/kasan.HeapObjectExport",
			"droidfuzz/internal/binder.SMExport",
			"droidfuzz/internal/hal.ProcExport",
			"droidfuzz/internal/drivers.TCPCExport",
			"droidfuzz/internal/drivers.HCIExport",
			"droidfuzz/internal/drivers.HCIConnExport",
			"droidfuzz/internal/drivers.V4L2Export",
			"droidfuzz/internal/drivers.AudioExport",
			"droidfuzz/internal/drivers.GPUExport",
			"droidfuzz/internal/drivers.WLANExport",
			"droidfuzz/internal/drivers.SensorExport",
			"droidfuzz/internal/drivers.NFCExport",
			"droidfuzz/internal/drivers.ThermalExport",
			"droidfuzz/internal/drivers.TouchExport",
			"droidfuzz/internal/drivers.KnobsExport",
		},
		SnapshotBuilders: []string{
			"droidfuzz/internal/relation.Graph.buildSnapshotLocked",
			// Device.Restore maintains the per-entry generation bookkeeping
			// the Snapshot contract explicitly allows; captureSnapshot and
			// the Checkpoint methods construct payloads before publication.
			"droidfuzz/internal/device.captureSnapshot",
			"droidfuzz/internal/device.Device.Restore",
			"droidfuzz/internal/vkernel.Kernel.Checkpoint",
			"droidfuzz/internal/vkernel.Kernel.Restore",
			"droidfuzz/internal/kasan.Heap.Checkpoint",
			"droidfuzz/internal/kasan.Heap.Restore",
			"droidfuzz/internal/binder.ServiceManager.Checkpoint",
			"droidfuzz/internal/binder.ServiceManager.Restore",
			"droidfuzz/internal/hal.Process.Checkpoint",
			"droidfuzz/internal/hal.Process.Restore",
			"droidfuzz/internal/drivers.TCPCDriver.Checkpoint",
			"droidfuzz/internal/drivers.TCPCDriver.Restore",
			"droidfuzz/internal/drivers.HCIDriver.Checkpoint",
			"droidfuzz/internal/drivers.HCIDriver.Restore",
			"droidfuzz/internal/drivers.V4L2Driver.Checkpoint",
			"droidfuzz/internal/drivers.V4L2Driver.Restore",
			"droidfuzz/internal/drivers.AudioDriver.Checkpoint",
			"droidfuzz/internal/drivers.AudioDriver.Restore",
			"droidfuzz/internal/drivers.GPUDriver.Checkpoint",
			"droidfuzz/internal/drivers.GPUDriver.Restore",
			"droidfuzz/internal/drivers.WLANDriver.Checkpoint",
			"droidfuzz/internal/drivers.WLANDriver.Restore",
			"droidfuzz/internal/drivers.SensorDriver.Checkpoint",
			"droidfuzz/internal/drivers.SensorDriver.Restore",
			"droidfuzz/internal/drivers.NFCDriver.Checkpoint",
			"droidfuzz/internal/drivers.NFCDriver.Restore",
			"droidfuzz/internal/drivers.ThermalDriver.Checkpoint",
			"droidfuzz/internal/drivers.ThermalDriver.Restore",
			"droidfuzz/internal/drivers.TouchDriver.Checkpoint",
			"droidfuzz/internal/drivers.TouchDriver.Restore",
			"droidfuzz/internal/drivers.Knobs.Checkpoint",
			"droidfuzz/internal/drivers.Knobs.Restore",
			// PR 8 checkpoint portability: Export methods assemble blobs
			// before publication; rebindSnapshot re-points a shared snapshot
			// at a twin's own subsystems (the payloads themselves stay
			// shared); ExportCheckpoint/exportBlobs serialize published
			// blobs without mutating them.
			"droidfuzz/internal/device.rebindSnapshot",
			"droidfuzz/internal/device.Device.exportBlobs",
			"droidfuzz/internal/device.Device.ExportCheckpoint",
			"droidfuzz/internal/vkernel.Kernel.Export",
			"droidfuzz/internal/kasan.Heap.Export",
			"droidfuzz/internal/binder.ServiceManager.Export",
			"droidfuzz/internal/hal.Process.Export",
			"droidfuzz/internal/drivers.TCPCDriver.Export",
			"droidfuzz/internal/drivers.HCIDriver.Export",
			"droidfuzz/internal/drivers.V4L2Driver.Export",
			"droidfuzz/internal/drivers.AudioDriver.Export",
			"droidfuzz/internal/drivers.GPUDriver.Export",
			"droidfuzz/internal/drivers.WLANDriver.Export",
			"droidfuzz/internal/drivers.SensorDriver.Export",
			"droidfuzz/internal/drivers.NFCDriver.Export",
			"droidfuzz/internal/drivers.ThermalDriver.Export",
			"droidfuzz/internal/drivers.TouchDriver.Export",
			"droidfuzz/internal/drivers.Knobs.Export",
		},
		WireRoots: []string{
			"droidfuzz/internal/adb.rpcRequest",
			"droidfuzz/internal/adb.rpcReply",
			"droidfuzz/internal/adb.CoordRequest",
			"droidfuzz/internal/adb.CoordReply",
		},
		WireManifest: "internal/adb/wire.lock",
		AtomicTypes: []string{
			// The fleet's lock-free hot state: engine step counters, the
			// two coverage collectors, dirty generations, crash-dedup
			// tallies, the graph's published-snapshot pointer, and the
			// sysfs knob values ioctl handlers read concurrently.
			"droidfuzz/internal/engine.Engine",
			"droidfuzz/internal/kcov.Bitmap",
			"droidfuzz/internal/kcov.Collector",
			"droidfuzz/internal/snap.Dirty",
			"droidfuzz/internal/crash.Dedup",
			"droidfuzz/internal/relation.Graph",
			"droidfuzz/internal/drivers.Knobs",
		},
		CheckpointIface: "droidfuzz/internal/snap.Subsystem",
		GoroutineRoots: []string{
			"droidfuzz/internal/daemon",
			"droidfuzz/internal/adb",
			"droidfuzz/internal/engine",
			"droidfuzz/internal/coord",
		},
		GoShutdownChans: []string{
			// quit: the transport writeLoop's poison channel (Conn.fail
			// closes it). stopApply: the daemon's learn-applier stop signal,
			// closed at the end of RunParallel. Done: context.Context.Done()
			// for any future ctx-threaded worker.
			"quit",
			"stopApply",
			"Done",
		},
	}
}

// PassTiming records one pass's wall-clock cost; droidvet -v prints them.
type PassTiming struct {
	Pass     string
	Duration time.Duration
}

// Analyze runs every configured pass over the loaded program and returns
// the surviving (un-waived) findings sorted by position.
func Analyze(prog *Program, cfg Config) []Diagnostic {
	diags, _ := AnalyzeTimed(prog, cfg)
	return diags
}

// AnalyzeTimed is Analyze plus per-pass wall-clock timings, in run order.
// The program load (parsing + go/types) happens once in Load and the
// declaration index once on first use, so timings measure pass logic only.
func AnalyzeTimed(prog *Program, cfg Config) ([]Diagnostic, []PassTiming) {
	w, diags := collectWaivers(prog)
	var timings []PassTiming
	run := func(pass string, check func(*Program, Config) []Diagnostic) {
		start := time.Now()
		diags = append(diags, check(prog, cfg)...)
		timings = append(timings, PassTiming{Pass: pass, Duration: time.Since(start)})
	}
	run(PassDeterminism, checkDeterminism)
	run(PassPoolcheck, checkPools)
	run(PassLockorder, checkLockOrder)
	run(PassTaggedField, checkWireFrames)
	run(PassSnapshot, checkSnapshots)
	run(PassAtomics, checkAtomics)
	run(PassCheckpoint, checkCheckpoints)
	run(PassGoLifetime, checkGoLifetime)
	diags = w.filter(diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Message < b.Message
	})
	return diags, timings
}

// waivers records //droidvet:<pass> comments. A waiver comment must START
// with the droidvet: marker (after the comment opener) — a prose mention of
// the syntax inside a doc comment is not a waiver. It suppresses findings
// of its pass from its own line through the line after its comment group,
// so it can ride at end-of-line, stand alone above the statement, or stack
// with waivers for other passes above a single statement. The file-scoped
// form //droidvet:<pass>-file waives the whole file. Trailing text after
// the pass name is the human rationale ("ephemeral <why>", "pre-publication
// <why>") and is not parsed.
type waivers struct {
	// line maps file -> pass -> waived line set.
	line map[string]map[string]map[int]bool
	// file maps file -> pass -> waived.
	file map[string]map[string]bool
}

// collectWaivers gathers every waiver in the program and reports malformed
// ones — a droidvet: comment naming an unknown pass suppresses nothing, so
// letting it sit silently would leave the finding it meant to own live.
func collectWaivers(prog *Program) (*waivers, []Diagnostic) {
	w := &waivers{
		line: make(map[string]map[string]map[int]bool),
		file: make(map[string]map[string]bool),
	}
	var diags []Diagnostic
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				groupEnd := prog.Fset.Position(cg.End()).Line
				for _, c := range cg.List {
					diags = append(diags, w.add(prog.Fset, c, groupEnd)...)
				}
			}
		}
	}
	return w, diags
}

func (w *waivers) add(fset *token.FileSet, c *ast.Comment, groupEnd int) []Diagnostic {
	const marker = "droidvet:"
	text := c.Text
	switch {
	case strings.HasPrefix(text, "//"):
		text = text[2:]
	case strings.HasPrefix(text, "/*"):
		text = strings.TrimSuffix(text[2:], "*/")
	}
	text = strings.TrimSpace(text)
	if !strings.HasPrefix(text, marker) {
		return nil
	}
	word := text[len(marker):]
	if j := strings.IndexAny(word, " \t"); j >= 0 {
		word = word[:j]
	}
	pos := fset.Position(c.Pos())
	pass, fileScoped := strings.CutSuffix(word, "-file")
	if !knownPasses[pass] {
		return []Diagnostic{{
			Pos:  pos,
			Pass: PassWaiver,
			Message: fmt.Sprintf(
				"//droidvet:%s names no known pass and waives nothing; valid passes: %s",
				word, strings.Join(sortedPassNames(), ", ")),
		}}
	}
	if fileScoped {
		byPass := w.file[pos.Filename]
		if byPass == nil {
			byPass = make(map[string]bool)
			w.file[pos.Filename] = byPass
		}
		byPass[pass] = true
		return nil
	}
	byPass := w.line[pos.Filename]
	if byPass == nil {
		byPass = make(map[string]map[int]bool)
		w.line[pos.Filename] = byPass
	}
	lines := byPass[pass]
	if lines == nil {
		lines = make(map[int]bool)
		byPass[pass] = lines
	}
	// The waiver's own line through the line after its comment group: an
	// end-of-line waiver covers its statement, a standalone one covers the
	// line below, and a stack of waivers above a statement all reach it.
	for l := pos.Line; l <= groupEnd+1; l++ {
		lines[l] = true
	}
	return nil
}

// sortedPassNames lists the known pass names for the malformed-waiver hint.
func sortedPassNames() []string {
	out := make([]string, 0, len(knownPasses))
	for p := range knownPasses {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

func (w *waivers) waived(d Diagnostic) bool {
	if w.file[d.Pos.Filename][d.Pass] {
		return true
	}
	return w.line[d.Pos.Filename][d.Pass][d.Pos.Line]
}

func (w *waivers) filter(diags []Diagnostic) []Diagnostic {
	out := diags[:0]
	for _, d := range diags {
		if !w.waived(d) {
			out = append(out, d)
		}
	}
	return out
}

// lookupNamed resolves "pkgpath.Name" to its named type's struct object, or
// nil when the package or type is absent (configs may name types that only
// exist in some trees, e.g. the testdata fixtures).
func lookupNamed(prog *Program, typePath string) *types.TypeName {
	dot := strings.LastIndex(typePath, ".")
	if dot < 0 {
		return nil
	}
	pkg, ok := prog.Pkgs[typePath[:dot]]
	if !ok || pkg.Types == nil {
		return nil
	}
	obj := pkg.Types.Scope().Lookup(typePath[dot+1:])
	tn, _ := obj.(*types.TypeName)
	return tn
}

// lookupVar resolves "pkgpath.varname" to its package-level variable.
func lookupVar(prog *Program, varPath string) *types.Var {
	dot := strings.LastIndex(varPath, ".")
	if dot < 0 {
		return nil
	}
	pkg, ok := prog.Pkgs[varPath[:dot]]
	if !ok || pkg.Types == nil {
		return nil
	}
	obj := pkg.Types.Scope().Lookup(varPath[dot+1:])
	v, _ := obj.(*types.Var)
	return v
}

// namedOf unwraps pointers and aliases down to the *types.Named, or nil.
func namedOf(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Alias:
			t = types.Unalias(u)
		case *types.Named:
			return u
		default:
			return nil
		}
	}
}

// closure computes the transitive module-internal import closure of roots.
func closure(prog *Program, roots []string) map[string]bool {
	seen := make(map[string]bool)
	var walk func(path string)
	walk = func(path string) {
		if seen[path] {
			return
		}
		pkg, ok := prog.Pkgs[path]
		if !ok {
			return
		}
		seen[path] = true
		for _, imp := range pkg.Imports {
			walk(imp)
		}
	}
	for _, r := range roots {
		walk(r)
	}
	return seen
}

// funcFor returns the *types.Func declared by decl, or nil.
func funcFor(pkg *Package, decl *ast.FuncDecl) *types.Func {
	obj := pkg.Info.Defs[decl.Name]
	fn, _ := obj.(*types.Func)
	return fn
}

// calleeOf resolves a call expression to its static callee, or nil for
// dynamic calls (interface methods, function values, conversions).
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok && sel.Kind() == types.MethodVal {
				return fn
			}
			return nil
		}
		// Package-qualified call: pkg.Fn.
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}
