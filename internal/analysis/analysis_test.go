package analysis_test

import (
	"os"
	"path/filepath"
	"slices"
	"strings"
	"testing"

	"droidfuzz/internal/analysis"
)

// loadFixture loads the vettest module under testdata, a miniature tree
// seeding at least one violation of every pass.
func loadFixture(t *testing.T) *analysis.Program {
	t.Helper()
	prog, err := analysis.Load(filepath.Join("testdata", "vettest"))
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	return prog
}

func fixtureConfig() analysis.Config {
	return analysis.Config{
		DeterminismRoots: []string{"vettest/det", "vettest/waiv"},
		Pooled: []analysis.PooledType{{
			TypePath:      "vettest/pool.Obj",
			ReleaseMethod: "Release",
			PoolVars:      []string{"vettest/pool.objPool"},
		}},
		LockTypes:        []string{"vettest/locks.A", "vettest/locks.B"},
		WireRoots:        []string{"vettest/wire.Frame"},
		SnapshotTypes:    []string{"vettest/snap.View", "vettest/snap.ParamState", "vettest/snap.Blob"},
		SnapshotBuilders: []string{"vettest/snap.New", "vettest/snap.View.Refresh", "vettest/snap.NewParamState", "vettest/snap.NewBlob", "vettest/atomics.BuildState"},
		AtomicTypes:      []string{"vettest/atomics.Counter", "vettest/atomics.Board"},
		CheckpointIface:  "vettest/cpt.Subsystem",
		GoroutineRoots:   []string{"vettest/golife"},
		GoShutdownChans:  []string{"done", "Done"},
		// No manifest by default; TestWireManifestLifecycle covers it.
	}
}

// matching returns the diagnostics of a pass whose file basename and
// message match.
func matching(diags []analysis.Diagnostic, pass, file, substr string) []analysis.Diagnostic {
	var out []analysis.Diagnostic
	for _, d := range diags {
		if d.Pass != pass {
			continue
		}
		if file != "" && filepath.Base(d.Pos.Filename) != file {
			continue
		}
		if substr != "" && !strings.Contains(d.Message, substr) {
			continue
		}
		out = append(out, d)
	}
	return out
}

func dump(t *testing.T, diags []analysis.Diagnostic) {
	t.Helper()
	for _, d := range diags {
		t.Logf("  %s", d)
	}
}

func TestDeterminismPassOnFixture(t *testing.T) {
	diags := analysis.Analyze(loadFixture(t), fixtureConfig())

	for _, want := range []string{"time.Now", "time.Since", "math/rand", "map iteration order"} {
		if len(matching(diags, analysis.PassDeterminism, "det.go", want)) == 0 {
			dump(t, diags)
			t.Errorf("seeded %q violation not reported", want)
		}
	}
	// Exactly the four seeded sites: the collect-then-sort Keys, the
	// line-waived Waived, and the seeded-stream Seeded must stay clean.
	if got := matching(diags, analysis.PassDeterminism, "det.go", ""); len(got) != 4 {
		dump(t, got)
		t.Errorf("det.go determinism findings = %d, want exactly 4", len(got))
	}
	// The file-scoped waiver silences the whole second file.
	if got := matching(diags, analysis.PassDeterminism, "waived_file.go", ""); len(got) != 0 {
		dump(t, got)
		t.Errorf("file-waived file still produced %d findings", len(got))
	}
}

func TestPoolcheckPassOnFixture(t *testing.T) {
	diags := analysis.Analyze(loadFixture(t), fixtureConfig())

	if got := matching(diags, analysis.PassPoolcheck, "pool.go", "double-Put"); len(got) != 2 {
		dump(t, diags)
		t.Errorf("double-Put findings = %d, want 2 (method release + pool.Put)", len(got))
	}
	if got := matching(diags, analysis.PassPoolcheck, "pool.go", "use-after-Put"); len(got) != 1 {
		dump(t, diags)
		t.Errorf("use-after-Put findings = %d, want 1", len(got))
	}
	undoc := matching(diags, analysis.PassPoolcheck, "pool.go", "ownership")
	if len(undoc) != 1 || !strings.Contains(undoc[0].Message, "Undocumented") {
		dump(t, diags)
		t.Errorf("ownership-doc findings = %v, want exactly one naming Undocumented", undoc)
	}
}

func TestLockorderPassOnFixture(t *testing.T) {
	diags := analysis.Analyze(loadFixture(t), fixtureConfig())

	inv := matching(diags, analysis.PassLockorder, "locks.go", "inversion")
	if len(inv) == 0 {
		dump(t, diags)
		t.Fatal("A→B / B→A inversion not reported")
	}
	if !strings.Contains(inv[0].Message, "A") || !strings.Contains(inv[0].Message, "B") {
		t.Errorf("inversion message does not name both types: %q", inv[0].Message)
	}
	if got := matching(diags, analysis.PassLockorder, "locks.go", "self-deadlock"); len(got) == 0 {
		dump(t, diags)
		t.Error("transitive self-nesting not reported")
	}
}

func TestTaggedFieldPassOnFixture(t *testing.T) {
	diags := analysis.Analyze(loadFixture(t), fixtureConfig())

	iface := matching(diags, analysis.PassTaggedField, "wire.go", "interface-typed")
	if len(iface) != 1 || !strings.Contains(iface[0].Message, "Payload") {
		dump(t, diags)
		t.Errorf("interface-member findings = %v, want exactly one naming Payload", iface)
	}
}

func TestSnapshotPassOnFixture(t *testing.T) {
	diags := analysis.Analyze(loadFixture(t), fixtureConfig())

	// The six seeded misuse sites in snapuse.go: two assignment writes
	// (Mutate), one increment and one delete (Bump), and two
	// method-receiver writes (Stamper.Stamp, plus Stamper.New — which
	// shares the registered plain builder's name but not its receiver).
	if got := matching(diags, analysis.PassSnapshot, "snapuse.go", "assignment writes"); len(got) != 4 {
		dump(t, diags)
		t.Errorf("assignment-write findings = %d, want 4", len(got))
	}
	if got := matching(diags, analysis.PassSnapshot, "snapuse.go", "mutates snapshot"); len(got) != 1 {
		dump(t, diags)
		t.Errorf("++ findings = %d, want 1", len(got))
	}
	if got := matching(diags, analysis.PassSnapshot, "snapuse.go", "delete()"); len(got) != 1 {
		dump(t, diags)
		t.Errorf("delete findings = %d, want 1", len(got))
	}
	// Nothing beyond the six: the waived site, the read-only accessor,
	// the local-rebinding, and the copy-then-mutate pattern all stay clean.
	if got := matching(diags, analysis.PassSnapshot, "snapuse.go", ""); len(got) != 6 {
		dump(t, got)
		t.Errorf("snapuse.go snapshot findings = %d, want exactly 6", len(got))
	}
	// The registered builders' writes are exempt: New's construction and
	// the receiver-qualified View.Refresh bookkeeping.
	if got := matching(diags, analysis.PassSnapshot, "snap.go", ""); len(got) != 0 {
		dump(t, got)
		t.Errorf("builder package produced %d snapshot findings, want 0", len(got))
	}
}

func TestSnapshotPassFlagsUnregisteredParamStateWrite(t *testing.T) {
	diags := analysis.Analyze(loadFixture(t), fixtureConfig())
	// StoreKnob writes a captured knob value from an unregistered function;
	// exactly that one site in the param fixture file is flagged.
	if got := matching(diags, analysis.PassSnapshot, "params.go", "ParamState"); len(got) != 1 {
		dump(t, got)
		t.Errorf("param-state findings = %d, want exactly 1", len(got))
	}
	// The registered NewParamState builder's construction writes stay clean
	// (its file in the snap package carries no findings at all).
	if got := matching(diags, analysis.PassSnapshot, "params.go", "NewParamState"); len(got) != 0 {
		dump(t, got)
		t.Errorf("registered param builder flagged: %d findings", len(got))
	}

	// Dropping the registration must fail loud in the real config: the
	// repo-wide DefaultConfig carries the drivers.knobsState payload and the
	// Knobs.Checkpoint/Restore builders, so an unregistered-param-state
	// regression there would surface as new findings on the repo itself
	// (TestDefaultConfigOnRepo).
	cfg := analysis.DefaultConfig()
	wantType := "droidfuzz/internal/drivers.knobsState"
	if !slices.Contains(cfg.SnapshotTypes, wantType) {
		t.Errorf("DefaultConfig missing snapshot type %s", wantType)
	}
	for _, b := range []string{
		"droidfuzz/internal/drivers.Knobs.Checkpoint",
		"droidfuzz/internal/drivers.Knobs.Restore",
	} {
		if !slices.Contains(cfg.SnapshotBuilders, b) {
			t.Errorf("DefaultConfig missing snapshot builder %s", b)
		}
	}
}

func TestSnapshotPassFlagsImportedCheckpointWrite(t *testing.T) {
	diags := analysis.Analyze(loadFixture(t), fixtureConfig())
	// WriteThroughImported mutates a blob that clone twins share after
	// import; exactly its two sites in the import fixture file are flagged.
	if got := matching(diags, analysis.PassSnapshot, "import.go", "Blob"); len(got) != 2 {
		dump(t, got)
		t.Errorf("imported-blob findings = %d, want exactly 2", len(got))
	}
	// The copy-then-mutate import pattern and the registered NewBlob
	// builder stay clean.
	if got := matching(diags, analysis.PassSnapshot, "export.go", ""); len(got) != 0 {
		dump(t, got)
		t.Errorf("export builder flagged: %d findings", len(got))
	}

	// The real config must carry the PR 8 exported-state types and their
	// Export builders, or a write through an imported checkpoint in the
	// repo would go unflagged (TestDefaultConfigOnRepo enforces zero
	// findings against DefaultConfig).
	cfg := analysis.DefaultConfig()
	for _, wantType := range []string{
		"droidfuzz/internal/device.Checkpoint",
		"droidfuzz/internal/vkernel.KernelExport",
		"droidfuzz/internal/kasan.HeapExport",
		"droidfuzz/internal/binder.SMExport",
		"droidfuzz/internal/hal.ProcExport",
		"droidfuzz/internal/drivers.KnobsExport",
	} {
		if !slices.Contains(cfg.SnapshotTypes, wantType) {
			t.Errorf("DefaultConfig missing snapshot type %s", wantType)
		}
	}
	for _, b := range []string{
		"droidfuzz/internal/device.rebindSnapshot",
		"droidfuzz/internal/vkernel.Kernel.Export",
		"droidfuzz/internal/drivers.Knobs.Export",
	} {
		if !slices.Contains(cfg.SnapshotBuilders, b) {
			t.Errorf("DefaultConfig missing snapshot builder %s", b)
		}
	}
}

func TestWaiverGrammarOnFixture(t *testing.T) {
	diags := analysis.Analyze(loadFixture(t), fixtureConfig())

	// The end-of-line, line-above, and stacked waivers each own their
	// clock read; only the prose-mention site stays flagged.
	nondet := matching(diags, analysis.PassDeterminism, "waiv.go", "")
	if len(nondet) != 1 {
		dump(t, nondet)
		t.Errorf("waiv.go determinism findings = %d, want exactly 1 (ProseMention)", len(nondet))
	}
	// Malformed waivers are findings of their own, one per unknown name.
	bad := matching(diags, analysis.PassWaiver, "waiv.go", "")
	if len(bad) != 2 {
		dump(t, bad)
		t.Fatalf("waiver findings = %d, want 2 (nosuchpass + typo'd -file)", len(bad))
	}
	if !strings.Contains(bad[0].Message, "nosuchpass") || !strings.Contains(bad[0].Message, "waives nothing") {
		t.Errorf("unknown-pass message = %q", bad[0].Message)
	}
	if !strings.Contains(bad[1].Message, "nondet-flie") {
		t.Errorf("typo'd-suffix message = %q", bad[1].Message)
	}
	// The hint lists the valid pass names.
	if !strings.Contains(bad[0].Message, "golifetime") || !strings.Contains(bad[0].Message, "nondet") {
		t.Errorf("unknown-pass hint does not list valid passes: %q", bad[0].Message)
	}
	// The known -file form still works (det fixture's waived_file.go) and
	// known line waivers are never reported as malformed.
	if got := matching(diags, analysis.PassWaiver, "", ""); len(got) != 2 {
		dump(t, got)
		t.Errorf("total waiver findings = %d, want exactly the 2 seeded ones", len(got))
	}
}

func TestAtomicsPassOnFixture(t *testing.T) {
	diags := analysis.Analyze(loadFixture(t), fixtureConfig())

	// The mixed-discipline verdict: the buffer is atomically stored in
	// atomics.go, so the plain element read and write in atomuse.go are
	// flagged, each citing the atomic site.
	mixed := matching(diags, analysis.PassAtomics, "atomuse.go", "accessed through sync/atomic")
	if len(mixed) != 2 {
		dump(t, diags)
		t.Errorf("mixed-discipline findings = %d, want 2 (plain read + plain write)", len(mixed))
	}
	for _, d := range mixed {
		if !strings.Contains(d.Message, "atomics.go") {
			t.Errorf("mixed-discipline finding does not cite the atomic site: %q", d.Message)
		}
	}
	// Copying an atomic-typed field out of its API.
	if got := matching(diags, analysis.PassAtomics, "atomuse.go", "outside its Load/Store API"); len(got) != 1 {
		dump(t, diags)
		t.Errorf("atomic-typed misuse findings = %d, want 1 (Steal)", len(got))
	}
	// Writes through the atomic.Pointer-published State: the assignment and
	// the delete. The published set is derived, not configured.
	if got := matching(diags, analysis.PassAtomics, "atomuse.go", "published through an atomic.Pointer"); len(got) != 2 {
		dump(t, diags)
		t.Errorf("published-write findings = %d, want 2 (assign + delete)", len(got))
	}
	// Nothing else: the waived pre-publication store, the API reads, and
	// the copy-then-mutate pattern all stay clean.
	if got := matching(diags, analysis.PassAtomics, "atomuse.go", ""); len(got) != 5 {
		dump(t, got)
		t.Errorf("atomuse.go atomics findings = %d, want exactly 5", len(got))
	}
	// The clean half: API-disciplined code and the registered builder.
	if got := matching(diags, analysis.PassAtomics, "atomics.go", ""); len(got) != 0 {
		dump(t, got)
		t.Errorf("clean atomics package produced %d findings, want 0", len(got))
	}
}

func TestCheckpointPassOnFixture(t *testing.T) {
	diags := analysis.Analyze(loadFixture(t), fixtureConfig())

	// Bad.leak: stateful, never captured, not annotated.
	if got := matching(diags, analysis.PassCheckpoint, "bad.go", "stateful field cpt.Bad.leak"); len(got) != 1 {
		dump(t, diags)
		t.Errorf("uncaptured-field findings = %d, want 1 (Bad.leak)", len(got))
	}
	// badState.c never round-trips at all: all four legs flag it.
	for _, want := range []string{
		"never populated by cpt.Bad.Checkpoint",
		"never read back by cpt.Bad.Restore",
		"does not reach the portable blob",
		"never re-materialized by cpt.Bad.Import",
	} {
		got := matching(diags, analysis.PassCheckpoint, "bad.go", want)
		found := false
		for _, d := range got {
			if strings.Contains(d.Message, "badState.c") {
				found = true
			}
		}
		if !found {
			dump(t, diags)
			t.Errorf("badState.c missing %q finding", want)
		}
	}
	// badState.b survives the in-memory legs but is dropped on the portable
	// ones: exactly the Export and Import checks fire for it.
	var bFindings []string
	for _, d := range matching(diags, analysis.PassCheckpoint, "bad.go", "badState.b") {
		bFindings = append(bFindings, d.Message)
	}
	if len(bFindings) != 2 {
		dump(t, diags)
		t.Errorf("badState.b findings = %d, want 2 (export + import legs)", len(bFindings))
	}
	// BadExport.Orphan: never filled by Export, never consumed by Import.
	if got := matching(diags, analysis.PassCheckpoint, "bad.go", "Orphan"); len(got) != 2 {
		dump(t, diags)
		t.Errorf("Orphan blob findings = %d, want 2", len(got))
	}
	// Exactly the nine seeded findings; Bad.waived is owned by its waiver.
	if got := matching(diags, analysis.PassCheckpoint, "bad.go", ""); len(got) != 9 {
		dump(t, got)
		t.Errorf("bad.go checkpoint findings = %d, want exactly 9", len(got))
	}
	// Good round-trips completely; Idle's wiring is annotated; the sync
	// mutex, the sub-subsystem, and the embedded pattern are auto-exempt.
	if got := matching(diags, analysis.PassCheckpoint, "cpt.go", ""); len(got) != 0 {
		dump(t, got)
		t.Errorf("complete subsystem produced %d findings, want 0", len(got))
	}
}

func TestGoLifetimePassOnFixture(t *testing.T) {
	diags := analysis.Analyze(loadFixture(t), fixtureConfig())

	// The three loop leaks: no exit at all, ticker-only select, and a
	// select exiting on an unregistered channel.
	if got := matching(diags, analysis.PassGoLifetime, "golife.go", "unbounded for loop"); len(got) != 3 {
		dump(t, diags)
		t.Errorf("unbounded-loop findings = %d, want 3 (Leak, Tick, Unregistered)", len(got))
	}
	// The dynamic spawn.
	if got := matching(diags, analysis.PassGoLifetime, "golife.go", "dynamically resolved"); len(got) != 1 {
		dump(t, diags)
		t.Errorf("dynamic-spawn findings = %d, want 1", len(got))
	}
	// Nothing else: the registered-done select, the bounded loop, the
	// channel range, the named error-exit loop, and the waived leak are
	// all clean.
	if got := matching(diags, analysis.PassGoLifetime, "golife.go", ""); len(got) != 4 {
		dump(t, got)
		t.Errorf("golife.go findings = %d, want exactly 4", len(got))
	}
}

func TestWireManifestLifecycle(t *testing.T) {
	prog := loadFixture(t)
	cfg := fixtureConfig()

	manifest := analysis.WireManifest(prog, cfg)
	for _, frame := range []string{"vettest/wire.Frame", "vettest/wire.Inner", "vettest/wire.Item"} {
		if !strings.Contains(manifest, frame) {
			t.Fatalf("manifest missing frame %s:\n%s", frame, manifest)
		}
	}

	path := filepath.Join(t.TempDir(), "wire.lock")
	cfg.WireManifest = path

	// Missing manifest: reported.
	if got := matching(analysis.Analyze(prog, cfg), analysis.PassTaggedField, "", "manifest missing"); len(got) != 1 {
		t.Fatalf("missing-manifest findings = %d, want 1", len(got))
	}

	// Fresh manifest: clean (only the seeded interface-member finding
	// remains).
	if err := os.WriteFile(path, []byte(manifest), 0o644); err != nil {
		t.Fatal(err)
	}
	diags := analysis.Analyze(prog, cfg)
	if got := matching(diags, analysis.PassTaggedField, "", "drifted"); len(got) != 0 {
		dump(t, got)
		t.Fatal("fresh manifest reported drift")
	}
	if got := matching(diags, analysis.PassTaggedField, "", "no longer exists"); len(got) != 0 {
		t.Fatal("fresh manifest reported stale entries")
	}

	// Tampered field order: drift reported for that frame only.
	tampered := strings.Replace(manifest,
		"vettest/wire.Inner = Name:string; Count:int",
		"vettest/wire.Inner = Count:int; Name:string", 1)
	if tampered == manifest {
		t.Fatal("tamper replacement did not apply; fixture layout changed?")
	}
	if err := os.WriteFile(path, []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}
	drift := matching(analysis.Analyze(prog, cfg), analysis.PassTaggedField, "", "drifted")
	if len(drift) != 1 || !strings.Contains(drift[0].Message, "wire.Inner") {
		t.Fatalf("drift findings = %v, want exactly one for wire.Inner", drift)
	}

	// Stale entry: a frame in the manifest that no longer exists.
	if err := os.WriteFile(path, []byte(manifest+"vettest/wire.Gone = X:int\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	stale := matching(analysis.Analyze(prog, cfg), analysis.PassTaggedField, "", "no longer exists")
	if len(stale) != 1 || !strings.Contains(stale[0].Message, "wire.Gone") {
		t.Fatalf("stale findings = %v, want exactly one for wire.Gone", stale)
	}
}

// TestDefaultConfigOnRepo runs the production configuration over the real
// module: the committed tree must be clean — this is the same gate CI's
// droidvet job enforces, wired into `go test` so a violation fails fast
// locally too.
func TestDefaultConfigOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module type-check is slow; run without -short")
	}
	prog, err := analysis.Load(filepath.Join("..", ".."))
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	diags := analysis.Analyze(prog, analysis.DefaultConfig())
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// TestDefaultConfigCoversNewPasses pins the droidvet v2 configuration: the
// atomics, checkpoint, and golifetime passes are only as strong as the type
// and root lists they are pointed at, and a dropped entry silently disables
// coverage without failing any build.
func TestDefaultConfigCoversNewPasses(t *testing.T) {
	cfg := analysis.DefaultConfig()
	for _, want := range []string{
		"droidfuzz/internal/kcov.Bitmap",
		"droidfuzz/internal/kcov.Collector",
		"droidfuzz/internal/engine.Engine",
		"droidfuzz/internal/drivers.Knobs",
	} {
		if !slices.Contains(cfg.AtomicTypes, want) {
			t.Errorf("DefaultConfig missing atomic type %s", want)
		}
	}
	if cfg.CheckpointIface != "droidfuzz/internal/snap.Subsystem" {
		t.Errorf("CheckpointIface = %q, want droidfuzz/internal/snap.Subsystem", cfg.CheckpointIface)
	}
	for _, want := range []string{
		"droidfuzz/internal/daemon",
		"droidfuzz/internal/adb",
		"droidfuzz/internal/engine",
		"droidfuzz/internal/coord",
	} {
		if !slices.Contains(cfg.GoroutineRoots, want) {
			t.Errorf("DefaultConfig missing goroutine root %s", want)
		}
	}
	for _, want := range []string{"quit", "stopApply"} {
		if !slices.Contains(cfg.GoShutdownChans, want) {
			t.Errorf("DefaultConfig missing shutdown channel %s", want)
		}
	}
	// The coordinator protocol vocabulary must stay under the wire manifest:
	// without these roots a CoordShard or FedBatch field change would ship
	// without a wire.lock diff.
	for _, want := range []string{
		"droidfuzz/internal/adb.CoordRequest",
		"droidfuzz/internal/adb.CoordReply",
	} {
		if !slices.Contains(cfg.WireRoots, want) {
			t.Errorf("DefaultConfig missing wire root %s", want)
		}
	}
}
