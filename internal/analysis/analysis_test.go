package analysis_test

import (
	"os"
	"path/filepath"
	"slices"
	"strings"
	"testing"

	"droidfuzz/internal/analysis"
)

// loadFixture loads the vettest module under testdata, a miniature tree
// seeding at least one violation of every pass.
func loadFixture(t *testing.T) *analysis.Program {
	t.Helper()
	prog, err := analysis.Load(filepath.Join("testdata", "vettest"))
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	return prog
}

func fixtureConfig() analysis.Config {
	return analysis.Config{
		DeterminismRoots: []string{"vettest/det"},
		Pooled: []analysis.PooledType{{
			TypePath:      "vettest/pool.Obj",
			ReleaseMethod: "Release",
			PoolVars:      []string{"vettest/pool.objPool"},
		}},
		LockTypes:        []string{"vettest/locks.A", "vettest/locks.B"},
		WireRoots:        []string{"vettest/wire.Frame"},
		SnapshotTypes:    []string{"vettest/snap.View", "vettest/snap.ParamState", "vettest/snap.Blob"},
		SnapshotBuilders: []string{"vettest/snap.New", "vettest/snap.View.Refresh", "vettest/snap.NewParamState", "vettest/snap.NewBlob"},
		// No manifest by default; TestWireManifestLifecycle covers it.
	}
}

// matching returns the diagnostics of a pass whose file basename and
// message match.
func matching(diags []analysis.Diagnostic, pass, file, substr string) []analysis.Diagnostic {
	var out []analysis.Diagnostic
	for _, d := range diags {
		if d.Pass != pass {
			continue
		}
		if file != "" && filepath.Base(d.Pos.Filename) != file {
			continue
		}
		if substr != "" && !strings.Contains(d.Message, substr) {
			continue
		}
		out = append(out, d)
	}
	return out
}

func dump(t *testing.T, diags []analysis.Diagnostic) {
	t.Helper()
	for _, d := range diags {
		t.Logf("  %s", d)
	}
}

func TestDeterminismPassOnFixture(t *testing.T) {
	diags := analysis.Analyze(loadFixture(t), fixtureConfig())

	for _, want := range []string{"time.Now", "time.Since", "math/rand", "map iteration order"} {
		if len(matching(diags, analysis.PassDeterminism, "det.go", want)) == 0 {
			dump(t, diags)
			t.Errorf("seeded %q violation not reported", want)
		}
	}
	// Exactly the four seeded sites: the collect-then-sort Keys, the
	// line-waived Waived, and the seeded-stream Seeded must stay clean.
	if got := matching(diags, analysis.PassDeterminism, "det.go", ""); len(got) != 4 {
		dump(t, got)
		t.Errorf("det.go determinism findings = %d, want exactly 4", len(got))
	}
	// The file-scoped waiver silences the whole second file.
	if got := matching(diags, analysis.PassDeterminism, "waived_file.go", ""); len(got) != 0 {
		dump(t, got)
		t.Errorf("file-waived file still produced %d findings", len(got))
	}
}

func TestPoolcheckPassOnFixture(t *testing.T) {
	diags := analysis.Analyze(loadFixture(t), fixtureConfig())

	if got := matching(diags, analysis.PassPoolcheck, "pool.go", "double-Put"); len(got) != 2 {
		dump(t, diags)
		t.Errorf("double-Put findings = %d, want 2 (method release + pool.Put)", len(got))
	}
	if got := matching(diags, analysis.PassPoolcheck, "pool.go", "use-after-Put"); len(got) != 1 {
		dump(t, diags)
		t.Errorf("use-after-Put findings = %d, want 1", len(got))
	}
	undoc := matching(diags, analysis.PassPoolcheck, "pool.go", "ownership")
	if len(undoc) != 1 || !strings.Contains(undoc[0].Message, "Undocumented") {
		dump(t, diags)
		t.Errorf("ownership-doc findings = %v, want exactly one naming Undocumented", undoc)
	}
}

func TestLockorderPassOnFixture(t *testing.T) {
	diags := analysis.Analyze(loadFixture(t), fixtureConfig())

	inv := matching(diags, analysis.PassLockorder, "locks.go", "inversion")
	if len(inv) == 0 {
		dump(t, diags)
		t.Fatal("A→B / B→A inversion not reported")
	}
	if !strings.Contains(inv[0].Message, "A") || !strings.Contains(inv[0].Message, "B") {
		t.Errorf("inversion message does not name both types: %q", inv[0].Message)
	}
	if got := matching(diags, analysis.PassLockorder, "locks.go", "self-deadlock"); len(got) == 0 {
		dump(t, diags)
		t.Error("transitive self-nesting not reported")
	}
}

func TestTaggedFieldPassOnFixture(t *testing.T) {
	diags := analysis.Analyze(loadFixture(t), fixtureConfig())

	iface := matching(diags, analysis.PassTaggedField, "wire.go", "interface-typed")
	if len(iface) != 1 || !strings.Contains(iface[0].Message, "Payload") {
		dump(t, diags)
		t.Errorf("interface-member findings = %v, want exactly one naming Payload", iface)
	}
}

func TestSnapshotPassOnFixture(t *testing.T) {
	diags := analysis.Analyze(loadFixture(t), fixtureConfig())

	// The six seeded misuse sites in snapuse.go: two assignment writes
	// (Mutate), one increment and one delete (Bump), and two
	// method-receiver writes (Stamper.Stamp, plus Stamper.New — which
	// shares the registered plain builder's name but not its receiver).
	if got := matching(diags, analysis.PassSnapshot, "snapuse.go", "assignment writes"); len(got) != 4 {
		dump(t, diags)
		t.Errorf("assignment-write findings = %d, want 4", len(got))
	}
	if got := matching(diags, analysis.PassSnapshot, "snapuse.go", "mutates snapshot"); len(got) != 1 {
		dump(t, diags)
		t.Errorf("++ findings = %d, want 1", len(got))
	}
	if got := matching(diags, analysis.PassSnapshot, "snapuse.go", "delete()"); len(got) != 1 {
		dump(t, diags)
		t.Errorf("delete findings = %d, want 1", len(got))
	}
	// Nothing beyond the six: the waived site, the read-only accessor,
	// the local-rebinding, and the copy-then-mutate pattern all stay clean.
	if got := matching(diags, analysis.PassSnapshot, "snapuse.go", ""); len(got) != 6 {
		dump(t, got)
		t.Errorf("snapuse.go snapshot findings = %d, want exactly 6", len(got))
	}
	// The registered builders' writes are exempt: New's construction and
	// the receiver-qualified View.Refresh bookkeeping.
	if got := matching(diags, analysis.PassSnapshot, "snap.go", ""); len(got) != 0 {
		dump(t, got)
		t.Errorf("builder package produced %d snapshot findings, want 0", len(got))
	}
}

func TestSnapshotPassFlagsUnregisteredParamStateWrite(t *testing.T) {
	diags := analysis.Analyze(loadFixture(t), fixtureConfig())
	// StoreKnob writes a captured knob value from an unregistered function;
	// exactly that one site in the param fixture file is flagged.
	if got := matching(diags, analysis.PassSnapshot, "params.go", "ParamState"); len(got) != 1 {
		dump(t, got)
		t.Errorf("param-state findings = %d, want exactly 1", len(got))
	}
	// The registered NewParamState builder's construction writes stay clean
	// (its file in the snap package carries no findings at all).
	if got := matching(diags, analysis.PassSnapshot, "params.go", "NewParamState"); len(got) != 0 {
		dump(t, got)
		t.Errorf("registered param builder flagged: %d findings", len(got))
	}

	// Dropping the registration must fail loud in the real config: the
	// repo-wide DefaultConfig carries the drivers.knobsState payload and the
	// Knobs.Checkpoint/Restore builders, so an unregistered-param-state
	// regression there would surface as new findings on the repo itself
	// (TestDefaultConfigOnRepo).
	cfg := analysis.DefaultConfig()
	wantType := "droidfuzz/internal/drivers.knobsState"
	if !slices.Contains(cfg.SnapshotTypes, wantType) {
		t.Errorf("DefaultConfig missing snapshot type %s", wantType)
	}
	for _, b := range []string{
		"droidfuzz/internal/drivers.Knobs.Checkpoint",
		"droidfuzz/internal/drivers.Knobs.Restore",
	} {
		if !slices.Contains(cfg.SnapshotBuilders, b) {
			t.Errorf("DefaultConfig missing snapshot builder %s", b)
		}
	}
}

func TestSnapshotPassFlagsImportedCheckpointWrite(t *testing.T) {
	diags := analysis.Analyze(loadFixture(t), fixtureConfig())
	// WriteThroughImported mutates a blob that clone twins share after
	// import; exactly its two sites in the import fixture file are flagged.
	if got := matching(diags, analysis.PassSnapshot, "import.go", "Blob"); len(got) != 2 {
		dump(t, got)
		t.Errorf("imported-blob findings = %d, want exactly 2", len(got))
	}
	// The copy-then-mutate import pattern and the registered NewBlob
	// builder stay clean.
	if got := matching(diags, analysis.PassSnapshot, "export.go", ""); len(got) != 0 {
		dump(t, got)
		t.Errorf("export builder flagged: %d findings", len(got))
	}

	// The real config must carry the PR 8 exported-state types and their
	// Export builders, or a write through an imported checkpoint in the
	// repo would go unflagged (TestDefaultConfigOnRepo enforces zero
	// findings against DefaultConfig).
	cfg := analysis.DefaultConfig()
	for _, wantType := range []string{
		"droidfuzz/internal/device.Checkpoint",
		"droidfuzz/internal/vkernel.KernelExport",
		"droidfuzz/internal/kasan.HeapExport",
		"droidfuzz/internal/binder.SMExport",
		"droidfuzz/internal/hal.ProcExport",
		"droidfuzz/internal/drivers.KnobsExport",
	} {
		if !slices.Contains(cfg.SnapshotTypes, wantType) {
			t.Errorf("DefaultConfig missing snapshot type %s", wantType)
		}
	}
	for _, b := range []string{
		"droidfuzz/internal/device.rebindSnapshot",
		"droidfuzz/internal/vkernel.Kernel.Export",
		"droidfuzz/internal/drivers.Knobs.Export",
	} {
		if !slices.Contains(cfg.SnapshotBuilders, b) {
			t.Errorf("DefaultConfig missing snapshot builder %s", b)
		}
	}
}

func TestWireManifestLifecycle(t *testing.T) {
	prog := loadFixture(t)
	cfg := fixtureConfig()

	manifest := analysis.WireManifest(prog, cfg)
	for _, frame := range []string{"vettest/wire.Frame", "vettest/wire.Inner", "vettest/wire.Item"} {
		if !strings.Contains(manifest, frame) {
			t.Fatalf("manifest missing frame %s:\n%s", frame, manifest)
		}
	}

	path := filepath.Join(t.TempDir(), "wire.lock")
	cfg.WireManifest = path

	// Missing manifest: reported.
	if got := matching(analysis.Analyze(prog, cfg), analysis.PassTaggedField, "", "manifest missing"); len(got) != 1 {
		t.Fatalf("missing-manifest findings = %d, want 1", len(got))
	}

	// Fresh manifest: clean (only the seeded interface-member finding
	// remains).
	if err := os.WriteFile(path, []byte(manifest), 0o644); err != nil {
		t.Fatal(err)
	}
	diags := analysis.Analyze(prog, cfg)
	if got := matching(diags, analysis.PassTaggedField, "", "drifted"); len(got) != 0 {
		dump(t, got)
		t.Fatal("fresh manifest reported drift")
	}
	if got := matching(diags, analysis.PassTaggedField, "", "no longer exists"); len(got) != 0 {
		t.Fatal("fresh manifest reported stale entries")
	}

	// Tampered field order: drift reported for that frame only.
	tampered := strings.Replace(manifest,
		"vettest/wire.Inner = Name:string; Count:int",
		"vettest/wire.Inner = Count:int; Name:string", 1)
	if tampered == manifest {
		t.Fatal("tamper replacement did not apply; fixture layout changed?")
	}
	if err := os.WriteFile(path, []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}
	drift := matching(analysis.Analyze(prog, cfg), analysis.PassTaggedField, "", "drifted")
	if len(drift) != 1 || !strings.Contains(drift[0].Message, "wire.Inner") {
		t.Fatalf("drift findings = %v, want exactly one for wire.Inner", drift)
	}

	// Stale entry: a frame in the manifest that no longer exists.
	if err := os.WriteFile(path, []byte(manifest+"vettest/wire.Gone = X:int\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	stale := matching(analysis.Analyze(prog, cfg), analysis.PassTaggedField, "", "no longer exists")
	if len(stale) != 1 || !strings.Contains(stale[0].Message, "wire.Gone") {
		t.Fatalf("stale findings = %v, want exactly one for wire.Gone", stale)
	}
}

// TestDefaultConfigOnRepo runs the production configuration over the real
// module: the committed tree must be clean — this is the same gate CI's
// droidvet job enforces, wired into `go test` so a violation fails fast
// locally too.
func TestDefaultConfigOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module type-check is slow; run without -short")
	}
	prog, err := analysis.Load(filepath.Join("..", ".."))
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	diags := analysis.Analyze(prog, analysis.DefaultConfig())
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
