package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// checkAtomics enforces atomic access discipline for the configured types
// (engine counters, the coverage bitmap and collector, dirty generations,
// crash-dedup bookkeeping, relation snapshot pointers). The fleet's hot
// state is lock-free on purpose, and lock-free only works when EVERY access
// to a shared field goes through the atomic API — one plain read mixed in
// is a data race the race detector only catches if a campaign happens to
// interleave it. The pass proves the discipline statically:
//
//   - a field whose type is a sync/atomic value (atomic.Uint64,
//     atomic.Pointer[T], ... — directly or as an array/slice element) may
//     only be touched through a method call on it (.Load/.Store/.Add/...),
//     ranged over by index, or measured with len/cap; any other use —
//     copying it out, reassigning it, taking it apart — is flagged;
//   - a plain-typed field that is accessed through sync/atomic package
//     functions anywhere (atomic.StoreUint32(&c.buf[i], pc)) is atomic
//     everywhere: every plain read or write of the same field elsewhere is
//     flagged, citing the atomic site that established the discipline;
//   - a field of type atomic.Pointer[T] publishes *T to concurrent readers
//     on Store, so T inherits the snapshot pass's publish-immutability
//     contract automatically: writes reaching a value of T outside a
//     registered SnapshotBuilder are flagged without T having to be listed
//     in SnapshotTypes (the compile-time generalization of the PR 5
//     sanitize publish fingerprints).
//
// Constructor writes normally happen through composite literals, which
// never select a field and therefore never trip the pass; a provably
// pre-publication plain access can be waived with //droidvet:atomics.
func checkAtomics(prog *Program, cfg Config) []Diagnostic {
	if len(cfg.AtomicTypes) == 0 {
		return nil
	}
	guarded := make(map[*types.TypeName]bool)
	for _, tp := range cfg.AtomicTypes {
		if tn := lookupNamed(prog, tp); tn != nil {
			guarded[tn] = true
		}
	}
	if len(guarded) == 0 {
		return nil
	}
	owners := fieldOwners(guarded)

	var diags []Diagnostic
	diags = append(diags, atomicFieldDiscipline(prog, owners)...)
	diags = append(diags, publishedPointerWrites(prog, cfg, guarded)...)
	return diags
}

// atomicValueType reports whether t is a named type from sync/atomic
// (atomic.Bool, atomic.Uint64, atomic.Pointer[T], atomic.Value, ...).
func atomicValueType(t types.Type) bool {
	named := namedOf(t)
	return named != nil && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "sync/atomic"
}

// atomicElemType reports whether t is an atomic value type directly or an
// array/slice of one (kcov.Bitmap's block array, the Knobs value slices).
func atomicElemType(t types.Type) bool {
	if atomicValueType(t) {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Array:
		return atomicValueType(u.Elem())
	case *types.Slice:
		return atomicValueType(u.Elem())
	}
	return false
}

// fieldAccess is one selector access of a guarded field, with enough parent
// context to classify it.
type fieldAccess struct {
	pos    Diagnostic // position pre-filled; message set by the caller
	atomic bool       // reached through the atomic API
}

// atomicFieldDiscipline runs the two per-field checks over every module
// package: atomic-typed fields used outside their API, and mixed
// atomic/plain access to plain-typed fields.
func atomicFieldDiscipline(prog *Program, owners map[*types.Var]*types.TypeName) []Diagnostic {
	var diags []Diagnostic
	// plainFieldSites classifies every access of plain-typed guarded
	// fields, keyed by field, so the mixed-discipline verdict can be made
	// after the whole module is seen.
	type site struct {
		pos    Diagnostic
		atomic bool
	}
	plainSites := make(map[*types.Var][]site)

	for _, path := range prog.SortedPaths() {
		pkg := prog.Pkgs[path]
		for _, f := range pkg.Files {
			// parents tracks the ancestor chain during the walk so a
			// selector can look outward at its use context.
			var parents []ast.Node
			var walk func(n ast.Node) bool
			walk = func(n ast.Node) bool {
				if n == nil {
					parents = parents[:len(parents)-1]
					return true
				}
				if sel, ok := n.(*ast.SelectorExpr); ok {
					if s, ok := pkg.Info.Selections[sel]; ok && s.Kind() == types.FieldVal {
						if fv, ok := s.Obj().(*types.Var); ok {
							if tn, hit := owners[fv]; hit {
								d := Diagnostic{
									Pos:  prog.Fset.Position(sel.Pos()),
									Pass: PassAtomics,
								}
								if atomicElemType(fv.Type()) {
									if !atomicAPIUse(sel, parents) {
										d.Message = fmt.Sprintf(
											"field %s.%s has an atomic type but is used outside its Load/Store API; atomic values must never be copied or reassigned",
											shortName(tn), fv.Name())
										diags = append(diags, d)
									}
								} else if !headerOnlyUse(sel, parents) {
									// len/cap and index-only ranges read the
									// slice header, not the guarded elements,
									// so they count for neither discipline.
									plainSites[fv] = append(plainSites[fv], site{pos: d, atomic: atomicFuncArg(pkg.Info, sel, parents)})
								}
							}
						}
					}
				}
				parents = append(parents, n)
				return true
			}
			ast.Inspect(f, walk)
		}
	}

	// Mixed-discipline verdicts: a plain-typed field with at least one
	// sync/atomic access makes every plain access a finding.
	fields := make([]*types.Var, 0, len(plainSites))
	for fv := range plainSites {
		fields = append(fields, fv)
	}
	// Deterministic field order: by declaration position.
	sortFieldVars(fields)
	for _, fv := range fields {
		sites := plainSites[fv]
		var atomicAt *Diagnostic
		for i := range sites {
			if sites[i].atomic {
				atomicAt = &sites[i].pos
				break
			}
		}
		if atomicAt == nil {
			continue // never atomic: an ordinary field, nothing to enforce
		}
		for _, s := range sites {
			if s.atomic {
				continue
			}
			d := s.pos
			d.Message = fmt.Sprintf(
				"field %s.%s is accessed through sync/atomic (%s:%d) but read or written plainly here; use the atomic API everywhere or waive a pre-publication site",
				shortName(owners[fv]), fv.Name(), atomicAt.Pos.Filename, atomicAt.Pos.Line)
			diags = append(diags, d)
		}
	}
	return diags
}

// sortFieldVars orders fields by source position for stable output.
func sortFieldVars(fields []*types.Var) {
	for i := 1; i < len(fields); i++ {
		for j := i; j > 0 && fields[j].Pos() < fields[j-1].Pos(); j-- {
			fields[j], fields[j-1] = fields[j-1], fields[j]
		}
	}
}

// atomicAPIUse reports whether the guarded selector is consumed through the
// atomic API: a method call on the (possibly indexed) atomic value, a
// len/cap measurement, or an index-only range.
func atomicAPIUse(sel *ast.SelectorExpr, parents []ast.Node) bool {
	cur := ast.Node(sel)
	i := len(parents)
	next := func() ast.Node {
		i--
		if i < 0 {
			return nil
		}
		return parents[i]
	}
	for {
		p := next()
		switch pn := p.(type) {
		case *ast.ParenExpr:
			cur = pn
			continue
		case *ast.IndexExpr:
			if pn.X != cur {
				return false // used as someone else's index: a read
			}
			cur = pn
			continue
		case *ast.StarExpr:
			cur = pn
			continue
		case *ast.UnaryExpr:
			// &field or &field[i]: allowed only when feeding a sync/atomic
			// function, which atomicFuncArg classifies for plain fields;
			// for atomic-typed values taking the address to pass around
			// escapes the discipline, except as a receiver (handled by the
			// method-call case because selections auto-address).
			return false
		case *ast.SelectorExpr:
			if pn.X != cur {
				return false
			}
			// Method call on the atomic value: parent of this selector
			// must be the call using it as Fun.
			if call, ok := next().(*ast.CallExpr); ok && call.Fun == pn {
				return true
			}
			return false
		case *ast.CallExpr:
			// len(x.f) / cap(x.f) on an atomic-element slice or array.
			if id, ok := ast.Unparen(pn.Fun).(*ast.Ident); ok && (id.Name == "len" || id.Name == "cap") {
				return true
			}
			return false
		case *ast.RangeStmt:
			// `for i := range x.f` is index iteration; copying the values
			// out (two-variable form) is flagged.
			return pn.X == cur && pn.Value == nil
		default:
			return false
		}
	}
}

// headerOnlyUse reports whether the selector is consumed only as a slice or
// array header: len/cap, or the index-only form of range.
func headerOnlyUse(sel *ast.SelectorExpr, parents []ast.Node) bool {
	if len(parents) == 0 {
		return false
	}
	switch pn := parents[len(parents)-1].(type) {
	case *ast.CallExpr:
		if id, ok := ast.Unparen(pn.Fun).(*ast.Ident); ok && (id.Name == "len" || id.Name == "cap") {
			return true
		}
	case *ast.RangeStmt:
		return pn.X == sel && pn.Value == nil
	}
	return false
}

// atomicFuncArg reports whether the selector (or an element of it) is the
// &-argument of a sync/atomic package function call, i.e. an atomic access
// of a plain-typed field: atomic.StoreUint32(&c.buf[i], pc).
func atomicFuncArg(info *types.Info, sel *ast.SelectorExpr, parents []ast.Node) bool {
	cur := ast.Node(sel)
	for i := len(parents) - 1; i >= 0; i-- {
		switch pn := parents[i].(type) {
		case *ast.ParenExpr, *ast.IndexExpr, *ast.StarExpr:
			cur = pn
			continue
		case *ast.UnaryExpr:
			if pn.X != cur {
				return false
			}
			cur = pn
			continue
		case *ast.CallExpr:
			if path, _ := pkgLevelCall(info, pn); path == "sync/atomic" {
				for _, arg := range pn.Args {
					if ast.Unparen(arg) == cur {
						return true
					}
				}
			}
			return false
		default:
			return false
		}
	}
	return false
}

// publishedPointerWrites derives the published set: for every guarded type
// field of type atomic.Pointer[T] (directly or as an array/slice element)
// where T is a module-internal named struct, T is published state and
// writes through it outside a registered builder are flagged. Types already
// listed in SnapshotTypes are skipped — the snapshot pass owns those
// findings.
func publishedPointerWrites(prog *Program, cfg Config, guarded map[*types.TypeName]bool) []Diagnostic {
	already := make(map[string]bool, len(cfg.SnapshotTypes))
	for _, tp := range cfg.SnapshotTypes {
		already[tp] = true
	}
	published := make(map[*types.TypeName]string)
	for _, tn := range sortedTypeNames(guarded) {
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			t := st.Field(i).Type()
			switch u := t.Underlying().(type) {
			case *types.Array:
				t = u.Elem()
			case *types.Slice:
				t = u.Elem()
			}
			named := namedOf(t)
			if named == nil || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync/atomic" || named.Obj().Name() != "Pointer" {
				continue
			}
			args := named.TypeArgs()
			if args == nil || args.Len() != 1 {
				continue
			}
			target := namedOf(args.At(0))
			if target == nil || target.Obj().Pkg() == nil {
				continue
			}
			path := target.Obj().Pkg().Path()
			if _, internal := prog.Pkgs[path]; !internal {
				continue
			}
			if already[path+"."+target.Obj().Name()] {
				continue
			}
			published[target.Obj()] = shortName(target.Obj())
		}
	}
	if len(published) == 0 {
		return nil
	}
	builders := make(map[string]bool, len(cfg.SnapshotBuilders))
	for _, b := range cfg.SnapshotBuilders {
		builders[b] = true
	}
	var diags []Diagnostic
	for _, path := range prog.SortedPaths() {
		pkg := prog.Pkgs[path]
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if fn := funcFor(pkg, fd); fn != nil && isSnapshotBuilder(fn, builders) {
					continue
				}
				diags = append(diags, mutationsThrough(prog, pkg, fd, published, PassAtomics,
					"is published through an atomic.Pointer and read lock-free after Store")...)
			}
		}
	}
	return diags
}
