package analysis

import (
	"fmt"
	"go/types"
)

// checkCheckpoints proves field-set completeness for every type that
// implements the configured snap.Subsystem interface: the PR 6/PR 8
// restore≡reboot and clone-twin equivalence guarantees only hold if every
// stateful field a campaign can mutate is wound back, and "added a field,
// forgot the checkpoint" is invisible to the compiler and only flaky at
// runtime. The pass closes that hole with field-name closure diffing:
//
//   - subsystem completeness: every stateful field of the implementing
//     struct must be touched by the Checkpoint or Restore method closure
//     (methods of the same type reachable from them). Fields that are
//     deliberately not checkpoint state carry an explicit
//     //droidvet:checkpoint ephemeral <why> annotation on their
//     declaration line (or the line above);
//   - state round-trip: the checkpoint payload types (named structs
//     constructed or asserted to inside Checkpoint/Restore) must have
//     every field populated by Checkpoint and read back by Restore —
//     deleting a single field capture fails vet instead of restore;
//   - export round-trip: the same payload fields must reach the portable
//     blob (read somewhere in Export's own closure, Checkpoint excluded so
//     delegation cannot satisfy the check trivially) and be re-materialized
//     by Import; and every field of the export blob types (named structs
//     built in Export) must be populated by Export and consumed by Import,
//     so a blob field cannot silently stop round-tripping through gob.
//
// Auto-exempt: embedded fields (the snap.Dirty generation counter), sync
// package types (mutexes guard state, they are not state), and fields whose
// own type implements the subsystem interface (sub-subsystems, e.g. a
// driver's *Knobs, are checkpointed by their own methods).
func checkCheckpoints(prog *Program, cfg Config) []Diagnostic {
	if cfg.CheckpointIface == "" {
		return nil
	}
	tn := lookupNamed(prog, cfg.CheckpointIface)
	if tn == nil {
		return nil
	}
	iface, ok := tn.Type().Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	idx := prog.index()

	var diags []Diagnostic
	for _, impl := range subsystemImplementers(prog, iface) {
		diags = append(diags, checkOneSubsystem(prog, idx, iface, impl)...)
	}
	return diags
}

// subsystemImplementers returns the module-internal named struct types
// implementing iface (by value or pointer receiver), in deterministic
// order.
func subsystemImplementers(prog *Program, iface *types.Interface) []*types.TypeName {
	set := make(map[*types.TypeName]bool)
	for _, path := range prog.SortedPaths() {
		pkg := prog.Pkgs[path]
		if pkg.Types == nil {
			continue
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			if _, isStruct := tn.Type().Underlying().(*types.Struct); !isStruct {
				continue
			}
			if types.Implements(tn.Type(), iface) || types.Implements(types.NewPointer(tn.Type()), iface) {
				set[tn] = true
			}
		}
	}
	return sortedTypeNames(set)
}

// The snap.Subsystem method names; closures for one root never descend into
// the others, so each leg of the round-trip is proven by its own code.
var subsystemMethods = map[string]bool{
	"Checkpoint": true, "Restore": true, "Export": true, "Import": true, "Gen": true,
}

func checkOneSubsystem(prog *Program, idx *declIndex, iface *types.Interface, impl *types.TypeName) []Diagnostic {
	closureOf := func(root string) []bodyDecl {
		skip := make(map[string]bool, len(subsystemMethods))
		for m := range subsystemMethods {
			if m != root {
				skip[m] = true
			}
		}
		return idx.methodClosure(impl, []string{root}, skip)
	}
	cpBodies := closureOf("Checkpoint")
	reBodies := closureOf("Restore")
	exBodies := closureOf("Export")
	imBodies := closureOf("Import")

	var diags []Diagnostic
	report := func(f *types.Var, format string, args ...any) {
		diags = append(diags, Diagnostic{
			Pos:     prog.Fset.Position(f.Pos()),
			Pass:    PassCheckpoint,
			Message: fmt.Sprintf(format, args...),
		})
	}

	// Subsystem completeness: every stateful field of the implementing
	// struct is touched by Checkpoint or Restore.
	own := map[*types.TypeName]bool{impl: true}
	ownOwners := fieldOwners(own)
	ownUses := make(map[*types.Var]int)
	collectFieldUses(append(append([]bodyDecl{}, cpBodies...), reBodies...), ownOwners, ownUses)
	st := impl.Type().Underlying().(*types.Struct)
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if exemptField(iface, f) {
			continue
		}
		if ownUses[f] == 0 {
			report(f, "stateful field %s.%s is neither captured by Checkpoint nor reset by Restore; checkpoint it or annotate the field //droidvet:checkpoint ephemeral <why>",
				shortName(impl), f.Name())
		}
	}

	// State payload types: what Restore asserts its `any` argument down to.
	// Each payload field must round-trip both the in-memory checkpoint
	// (populated by Checkpoint, read by Restore) and the portable one (read
	// by Export, populated by Import).
	states := assertedStructsIn(prog, append(append([]bodyDecl{}, cpBodies...), reBodies...))
	delete(states, impl)
	stripImplementers(iface, states)
	if len(states) > 0 {
		stOwners := fieldOwners(states)
		cpUses := make(map[*types.Var]int)
		reUses := make(map[*types.Var]int)
		exUses := make(map[*types.Var]int)
		imUses := make(map[*types.Var]int)
		collectFieldUses(cpBodies, stOwners, cpUses)
		collectFieldUses(reBodies, stOwners, reUses)
		collectFieldUses(exBodies, stOwners, exUses)
		collectFieldUses(imBodies, stOwners, imUses)
		for _, stn := range sortedTypeNames(states) {
			ss := stn.Type().Underlying().(*types.Struct)
			for i := 0; i < ss.NumFields(); i++ {
				f := ss.Field(i)
				if exemptField(iface, f) {
					continue
				}
				if cpUses[f]&(useKey|useWrite) == 0 {
					report(f, "checkpoint state field %s.%s is never populated by %s.Checkpoint; the restore reference is incomplete",
						shortName(stn), f.Name(), shortName(impl))
				}
				if reUses[f]&useRead == 0 {
					report(f, "checkpoint state field %s.%s is never read back by %s.Restore; restore≡reboot cannot hold",
						shortName(stn), f.Name(), shortName(impl))
				}
				if exUses[f]&useRead == 0 {
					report(f, "checkpoint state field %s.%s does not reach the portable blob built by %s.Export",
						shortName(stn), f.Name(), shortName(impl))
				}
				if imUses[f]&(useKey|useWrite) == 0 {
					report(f, "checkpoint state field %s.%s is never re-materialized by %s.Import",
						shortName(stn), f.Name(), shortName(impl))
				}
			}
		}

		// Export blob types: what Import asserts down to (minus payloads).
		// Their fields must be populated by Export and consumed by Import.
		blobs := assertedStructsIn(prog, append(append([]bodyDecl{}, exBodies...), imBodies...))
		delete(blobs, impl)
		stripImplementers(iface, blobs)
		for stn := range states {
			delete(blobs, stn)
		}
		if len(blobs) > 0 {
			blobOwners := fieldOwners(blobs)
			exBlob := make(map[*types.Var]int)
			imBlob := make(map[*types.Var]int)
			collectFieldUses(exBodies, blobOwners, exBlob)
			collectFieldUses(imBodies, blobOwners, imBlob)
			for _, btn := range sortedTypeNames(blobs) {
				bs := btn.Type().Underlying().(*types.Struct)
				for i := 0; i < bs.NumFields(); i++ {
					f := bs.Field(i)
					if exemptField(iface, f) {
						continue
					}
					if exBlob[f]&(useKey|useWrite) == 0 {
						report(f, "export blob field %s.%s is never populated by %s.Export",
							shortName(btn), f.Name(), shortName(impl))
					}
					if imBlob[f]&useRead == 0 {
						report(f, "export blob field %s.%s is never consumed by %s.Import",
							shortName(btn), f.Name(), shortName(impl))
					}
				}
			}
		}
	}
	return diags
}

// stripImplementers removes types that are themselves subsystems from a
// derived payload set (an Import that delegates to a sibling subsystem is
// not constructing a payload).
func stripImplementers(iface *types.Interface, set map[*types.TypeName]bool) {
	for tn := range set {
		if types.Implements(tn.Type(), iface) || types.Implements(types.NewPointer(tn.Type()), iface) {
			delete(set, tn)
		}
	}
}

// exemptField reports whether a field is auto-exempt from checkpoint
// completeness: embedded (the snap.Dirty generation counter pattern), a
// sync package type (locks guard state, they are not state), or itself a
// subsystem (checkpointed by its own methods).
func exemptField(iface *types.Interface, f *types.Var) bool {
	if f.Embedded() {
		return true
	}
	t := f.Type()
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if named := namedOf(t); named != nil {
		if pkg := named.Obj().Pkg(); pkg != nil && pkg.Path() == "sync" {
			return true
		}
		if types.Implements(named, iface) || types.Implements(types.NewPointer(named), iface) {
			return true
		}
	}
	return false
}
