package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// checkDeterminism enforces serial-mode bit-replayability (DESIGN.md): in
// every package reachable from the configured roots it flags
//
//   - time.Now / time.Since / time.Until — wall-clock reads feeding
//     fuzzing decisions break replay;
//   - the global math/rand source (rand.Intn, rand.Float64, rand.Shuffle,
//     ...) — only explicitly seeded *rand.Rand streams are replayable;
//   - ranging over a map — iteration order is randomized per run, so any
//     order-dependent fold diverges across replays.
//
// The one idiom it recognizes as safe without a waiver is collect-then-sort:
// a range body that only appends keys/values to slices which a later
// statement in the same block sorts. Everything else needs a
// //droidvet:nondet waiver stating why the site cannot desynchronize a
// replay (order-independent folds, wall-clock that never reaches the
// engine's decision path, ...).
func checkDeterminism(prog *Program, cfg Config) []Diagnostic {
	if len(cfg.DeterminismRoots) == 0 {
		return nil
	}
	checked := closure(prog, cfg.DeterminismRoots)
	var diags []Diagnostic
	for _, path := range prog.SortedPaths() {
		if !checked[path] {
			continue
		}
		pkg := prog.Pkgs[path]
		for _, f := range pkg.Files {
			diags = append(diags, determinismFile(prog, pkg, f)...)
		}
	}
	return diags
}

func determinismFile(prog *Program, pkg *Package, f *ast.File) []Diagnostic {
	var diags []Diagnostic
	report := func(n ast.Node, format string, args ...any) {
		diags = append(diags, Diagnostic{
			Pos:     prog.Fset.Position(n.Pos()),
			Pass:    PassDeterminism,
			Message: fmt.Sprintf(format, args...),
		})
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			pkgName, fnName := pkgLevelCall(pkg.Info, n)
			switch pkgName {
			case "time":
				switch fnName {
				case "Now", "Since", "Until":
					report(n, "time.%s reads the wall clock on a replay-sensitive path", fnName)
				}
			case "math/rand", "math/rand/v2":
				switch fnName {
				case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8", "Int63n":
					// Constructors are the deterministic pattern; Int63n et
					// al as *Rand methods resolve through Selections, not
					// here.
				default:
					report(n, "global math/rand source (rand.%s) is not replayable; draw from a seeded *rand.Rand", fnName)
				}
			}
		case *ast.RangeStmt:
			t := pkg.Info.Types[n.X].Type
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if !collectThenSorted(pkg.Info, n) {
				report(n, "map iteration order is randomized; sort the keys or waive with //droidvet:nondet if provably order-independent")
			}
		}
		return true
	})
	return diags
}

// pkgLevelCall reports the (import path, function name) of a direct
// package-level call like time.Now() or rand.Intn(n); empty strings
// otherwise (methods, locals, shadowed package names).
func pkgLevelCall(info *types.Info, call *ast.CallExpr) (string, string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", ""
	}
	if _, isPkg := info.Uses[id].(*types.PkgName); !isPkg {
		return "", ""
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", ""
	}
	return fn.Pkg().Path(), fn.Name()
}

// collectThenSorted recognizes the safe map-range idiom: the loop body only
// appends the key/value to local slices (possibly guarded by ifs), and a
// later statement in the enclosing function sorts every slice so collected.
func collectThenSorted(info *types.Info, rng *ast.RangeStmt) bool {
	targets := appendOnlyTargets(info, rng.Body.List)
	if len(targets) == 0 {
		return false
	}
	// Find the enclosing function body... we only have the range node here,
	// so instead scan forward: any call to a recognized sort function over
	// one of the collected slices anywhere after the loop in the same file
	// would do, but "same file" is too loose. The practical compromise:
	// require the sort to use the same variable object; a later re-collect
	// into the same slice would re-flag at its own range site anyway.
	sorted := false
	for obj := range targets {
		if sortedLater(info, obj, rng) {
			sorted = true
		} else {
			return false
		}
	}
	return sorted
}

// appendOnlyTargets returns the variable objects appended to when every
// statement of body is `x = append(x, ...)` (or an if/block holding only
// such appends); nil when the body does anything else.
func appendOnlyTargets(info *types.Info, body []ast.Stmt) map[types.Object]bool {
	targets := make(map[types.Object]bool)
	var ok func(list []ast.Stmt) bool
	ok = func(list []ast.Stmt) bool {
		for _, st := range list {
			switch st := st.(type) {
			case *ast.AssignStmt:
				if len(st.Lhs) != 1 || len(st.Rhs) != 1 {
					return false
				}
				lhs, isIdent := st.Lhs[0].(*ast.Ident)
				call, isCall := st.Rhs[0].(*ast.CallExpr)
				if !isIdent || !isCall {
					return false
				}
				fn, isFnIdent := ast.Unparen(call.Fun).(*ast.Ident)
				if !isFnIdent || fn.Name != "append" {
					return false
				}
				obj := info.Uses[lhs]
				if obj == nil {
					obj = info.Defs[lhs]
				}
				if obj == nil {
					return false
				}
				targets[obj] = true
			case *ast.IfStmt:
				if st.Init != nil && !ok([]ast.Stmt{st.Init}) {
					// Allow `if _, dup := m[k]; ...` style inits: they are
					// reads, not folds. Treat any init as acceptable if it
					// is an assignment without append — conservative: reject.
					return false
				}
				if !ok(st.Body.List) {
					return false
				}
				if st.Else != nil {
					eb, isBlock := st.Else.(*ast.BlockStmt)
					if !isBlock || !ok(eb.List) {
						return false
					}
				}
			case *ast.BlockStmt:
				if !ok(st.List) {
					return false
				}
			default:
				return false
			}
		}
		return true
	}
	if !ok(body) {
		return nil
	}
	return targets
}

// sortFuncs are the recognized sorters for the collect-then-sort idiom.
var sortFuncs = map[string]map[string]bool{
	"sort":   {"Strings": true, "Ints": true, "Slice": true, "SliceStable": true, "Sort": true},
	"slices": {"Sort": true, "SortFunc": true, "SortStableFunc": true},
}

// sortedLater reports whether obj is passed as the first argument of a
// recognized sort call positioned after the range statement, within the
// same file scope (the type checker guarantees object identity, so a hit
// in an unrelated function cannot occur — distinct functions have distinct
// variable objects).
func sortedLater(info *types.Info, obj types.Object, rng *ast.RangeStmt) bool {
	found := false
	for expr := range info.Types {
		call, isCall := expr.(*ast.CallExpr)
		if !isCall || call.Pos() <= rng.End() || len(call.Args) == 0 {
			continue
		}
		path, name := pkgLevelCall(info, call)
		short := path
		if i := lastSlash(path); i >= 0 {
			short = path[i+1:]
		}
		if !sortFuncs[short][name] {
			continue
		}
		arg, isIdent := ast.Unparen(call.Args[0]).(*ast.Ident)
		if !isIdent {
			continue
		}
		if info.Uses[arg] == obj {
			found = true
		}
	}
	return found
}

func lastSlash(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '/' {
			return i
		}
	}
	return -1
}
