package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// checkGoLifetime ties every goroutine spawned in the configured roots'
// import closure to a shutdown path. The daemon owns process lifetime: a
// worker that outlives Run keeps a device handle, a ticker, or a transport
// buffer alive across campaigns, and the leak only shows up as fd
// exhaustion hours into a fleet run. The pass proves, per `go` statement:
//
//   - the spawned body is statically resolvable (a func literal or a
//     module function/method); dynamic spawns (`go fn()` through a
//     function value) cannot be proven and are flagged;
//   - every unbounded loop in the body (a `for` with no condition) is tied
//     to shutdown. A loop that selects must have a case receiving from a
//     registered shutdown channel (GoShutdownChans matches the channel's
//     identifier, field, or method name — "quit", "stopApply", "Done" for
//     ctx.Done()): exiting on an unregistered channel is invisible to the
//     daemon's close sequence, so it does not count. A select-free loop may
//     instead exit through a plain return (the transport readLoop idiom:
//     decode error → fail → return, with Close unblocking the decode).
//
// Bounded loops (`for i := 0; i < n; ...`), range loops (a range over a
// channel ends when the daemon closes it), and loop-free bodies need no
// tie. A deliberate leak is waived with //droidvet:golifetime on the spawn
// line.
func checkGoLifetime(prog *Program, cfg Config) []Diagnostic {
	if len(cfg.GoroutineRoots) == 0 {
		return nil
	}
	scope := closure(prog, cfg.GoroutineRoots)
	chans := make(map[string]bool, len(cfg.GoShutdownChans))
	for _, c := range cfg.GoShutdownChans {
		chans[c] = true
	}
	idx := prog.index()

	var diags []Diagnostic
	for _, path := range prog.SortedPaths() {
		if !scope[path] {
			continue
		}
		pkg := prog.Pkgs[path]
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				gs, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				diags = append(diags, checkSpawn(prog, idx, pkg, gs, chans)...)
				return true
			})
		}
	}
	return diags
}

// checkSpawn resolves one go statement's body and vets its loops.
func checkSpawn(prog *Program, idx *declIndex, pkg *Package, gs *ast.GoStmt, chans map[string]bool) []Diagnostic {
	report := func(format string, args ...any) []Diagnostic {
		return []Diagnostic{{
			Pos:     prog.Fset.Position(gs.Pos()),
			Pass:    PassGoLifetime,
			Message: fmt.Sprintf(format, args...),
		}}
	}

	var body *ast.BlockStmt
	var what string
	switch fun := ast.Unparen(gs.Call.Fun).(type) {
	case *ast.FuncLit:
		body, what = fun.Body, "goroutine"
	default:
		callee := calleeOf(pkg.Info, gs.Call)
		if callee == nil {
			return report("goroutine spawns a dynamically resolved function; its lifetime cannot be proven — spawn a named function or waive with //droidvet:golifetime")
		}
		bd, ok := idx.funcs[callee]
		if !ok {
			// A function outside the module (stdlib helpers); its lifetime is
			// bounded by its own contract, not ours.
			return nil
		}
		body, what = bd.decl.Body, callee.Name()
	}

	var diags []Diagnostic
	forEachOutsideFuncLit(body, func(n ast.Node) {
		fs, ok := n.(*ast.ForStmt)
		if !ok || fs.Cond != nil {
			return // bounded loop (or a RangeStmt, which terminates on close)
		}
		if loopTied(pkg.Info, fs.Body, chans) {
			return
		}
		diags = append(diags, report(
			"%s runs an unbounded for loop (line %d) with no exit tied to a registered shutdown channel; select on a done/quit channel the daemon closes, or waive with //droidvet:golifetime",
			what, prog.Fset.Position(fs.Pos()).Line)...)
	})
	return diags
}

// loopTied decides whether one unbounded loop body has a provable exit: a
// receive from a registered shutdown channel, or — only when the loop never
// selects — a plain return (the error-exit idiom, where closing the
// underlying stream forces the blocking call to fail).
func loopTied(info *types.Info, body *ast.BlockStmt, chans map[string]bool) bool {
	selects, returns, registered := false, false, false
	forEachOutsideFuncLit(body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.SelectStmt:
			selects = true
		case *ast.ReturnStmt:
			returns = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && chans[chanName(n.X)] && isChanRecv(info, n.X) {
				registered = true
			}
		case *ast.RangeStmt:
			if chans[chanName(n.X)] && isChanRecv(info, n.X) {
				registered = true
			}
		}
	})
	if registered {
		return true
	}
	return returns && !selects
}

// chanName names the channel expression a receive reads from: the
// identifier, the selected field, or the called method (ctx.Done() → "Done").
func chanName(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	case *ast.CallExpr:
		return chanName(e.Fun)
	}
	return ""
}

// isChanRecv confirms the expression's static type really is a receivable
// channel, so a field that merely shares a registered name cannot satisfy
// the tie.
func isChanRecv(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[ast.Unparen(e)]
	if !ok || tv.Type == nil {
		return false
	}
	ch, ok := tv.Type.Underlying().(*types.Chan)
	return ok && ch.Dir() != types.SendOnly
}

// forEachOutsideFuncLit visits every node under root except those inside
// nested function literals: a closure's loops belong to whoever eventually
// calls it, not to this goroutine.
func forEachOutsideFuncLit(root ast.Node, fn func(ast.Node)) {
	ast.Inspect(root, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}
