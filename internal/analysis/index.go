package analysis

import (
	"go/ast"
	"go/types"
	"sort"
)

// declIndex is the shared AST/type index built once per Analyze run and
// reused by every pass that needs to resolve functions to their bodies
// (checkpoint's method-closure walks, golifetime's spawn resolution, the
// atomics published-set derivation). Building it is a single linear sweep
// over the already type-checked program, so the expensive work — parsing
// and go/types loading — stays amortized across all passes.
type declIndex struct {
	// funcs maps every function or method object declared with a body to
	// its declaration and owning package.
	funcs map[*types.Func]bodyDecl
	// methods maps a named type to its declared methods by name (value and
	// pointer receivers alike).
	methods map[*types.TypeName]map[string]*types.Func
}

// bodyDecl pairs a declaration with the package whose Info resolves its
// identifiers.
type bodyDecl struct {
	pkg  *Package
	decl *ast.FuncDecl
}

// index returns the program's declaration index, building it on first use.
func (p *Program) index() *declIndex {
	if p.idx != nil {
		return p.idx
	}
	idx := &declIndex{
		funcs:   make(map[*types.Func]bodyDecl),
		methods: make(map[*types.TypeName]map[string]*types.Func),
	}
	for _, path := range p.SortedPaths() {
		pkg := p.Pkgs[path]
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn := funcFor(pkg, fd)
				if fn == nil {
					continue
				}
				idx.funcs[fn] = bodyDecl{pkg: pkg, decl: fd}
				if recv := fn.Signature().Recv(); recv != nil {
					if named := namedOf(recv.Type()); named != nil {
						tn := named.Obj()
						if idx.methods[tn] == nil {
							idx.methods[tn] = make(map[string]*types.Func)
						}
						idx.methods[tn][fn.Name()] = fn
					}
				}
			}
		}
	}
	p.idx = idx
	return idx
}

// methodClosure walks the static call graph from the named root methods of
// tn, staying on methods of tn itself, and returns the reachable method
// bodies in deterministic order. Methods named in skip are never entered —
// the checkpoint pass uses this to keep e.g. Export's closure from
// trivially satisfying itself through the Checkpoint body it delegates to.
func (idx *declIndex) methodClosure(tn *types.TypeName, roots []string, skip map[string]bool) []bodyDecl {
	seen := make(map[string]bool)
	var out []bodyDecl
	var walk func(name string)
	walk = func(name string) {
		if seen[name] || skip[name] {
			return
		}
		seen[name] = true
		fn := idx.methods[tn][name]
		if fn == nil {
			return
		}
		bd, ok := idx.funcs[fn]
		if !ok {
			return
		}
		out = append(out, bd)
		ast.Inspect(bd.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeOf(bd.pkg.Info, call)
			if callee == nil {
				return true
			}
			recv := callee.Signature().Recv()
			if recv == nil {
				return true
			}
			if named := namedOf(recv.Type()); named != nil && named.Obj() == tn {
				walk(callee.Name())
			}
			return true
		})
	}
	for _, r := range roots {
		walk(r)
	}
	return out
}

// Field-use kinds recorded by collectFieldUses.
const (
	useRead  = 1 << iota // selector access in a read position
	useWrite             // selector (or element) on the left of an assignment
	useKey               // populated through a composite-literal key
)

// fieldOwners maps every direct field of the target structs back to its
// owning type name, so a types.Selection hit resolves in O(1).
func fieldOwners(targets map[*types.TypeName]bool) map[*types.Var]*types.TypeName {
	owners := make(map[*types.Var]*types.TypeName)
	for tn := range targets {
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			owners[st.Field(i)] = tn
		}
	}
	return owners
}

// collectFieldUses walks the given bodies and records how each direct field
// of the target types is used: read through a selector, written through a
// selector (including element/indexed writes like st.m[k] = v), or
// populated as a composite-literal key. Positional (unkeyed) struct
// literals of a target type mark every field as keyed — the compiler
// already forces them to be exhaustive.
func collectFieldUses(bodies []bodyDecl, owners map[*types.Var]*types.TypeName, uses map[*types.Var]int) {
	for _, bd := range bodies {
		info := bd.pkg.Info
		// writeRoots collects, per body, the field selectors that sit under
		// an assignment LHS or ++/--; everything else seen is a read.
		writeRoots := make(map[ast.Expr]bool)
		markWrite := func(lhs ast.Expr) {
			for {
				lhs = ast.Unparen(lhs)
				switch e := lhs.(type) {
				case *ast.SelectorExpr:
					writeRoots[lhs] = true
					lhs = e.X
				case *ast.IndexExpr:
					lhs = e.X
				case *ast.StarExpr:
					lhs = e.X
				default:
					return
				}
			}
		}
		ast.Inspect(bd.decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					markWrite(lhs)
				}
			case *ast.IncDecStmt:
				markWrite(n.X)
			}
			return true
		})
		ast.Inspect(bd.decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				sel, ok := info.Selections[n]
				if !ok || sel.Kind() != types.FieldVal {
					return true
				}
				f, ok := sel.Obj().(*types.Var)
				if !ok {
					return true
				}
				if _, hit := owners[f]; !hit {
					return true
				}
				if writeRoots[n] {
					uses[f] |= useWrite
				} else {
					uses[f] |= useRead
				}
			case *ast.CompositeLit:
				tv, ok := info.Types[n]
				if !ok {
					return true
				}
				named := namedOf(tv.Type)
				if named == nil {
					return true
				}
				st, ok := named.Obj().Type().Underlying().(*types.Struct)
				if !ok {
					return true
				}
				if len(n.Elts) > 0 {
					if _, keyed := n.Elts[0].(*ast.KeyValueExpr); !keyed {
						// Positional literal: exhaustive by construction.
						for i := 0; i < st.NumFields(); i++ {
							if _, hit := owners[st.Field(i)]; hit {
								uses[st.Field(i)] |= useKey
							}
						}
						return true
					}
				}
				for _, elt := range n.Elts {
					kv, ok := elt.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					key, ok := kv.Key.(*ast.Ident)
					if !ok {
						continue
					}
					for i := 0; i < st.NumFields(); i++ {
						f := st.Field(i)
						if f.Name() != key.Name {
							continue
						}
						if _, hit := owners[f]; hit {
							uses[f] |= useKey
						}
					}
				}
			}
			return true
		})
	}
}

// assertedStructsIn returns the module-internal named struct types the
// given bodies type-assert to (x.(T), x.(*T), or a type-switch case) — the
// derivation the checkpoint pass uses to find state payload and export
// blob types without registering them one by one. Assertion, not
// construction, is the discriminator: Restore and Import always assert
// their `any` argument down to the payload, while deep-copy helpers
// construct plenty of element types that are not payloads.
func assertedStructsIn(prog *Program, bodies []bodyDecl) map[*types.TypeName]bool {
	out := make(map[*types.TypeName]bool)
	record := func(e ast.Expr, info *types.Info) {
		if e == nil {
			return
		}
		tv, ok := info.Types[e]
		if !ok {
			return
		}
		named := namedOf(tv.Type)
		if named == nil || named.Obj().Pkg() == nil {
			return
		}
		if _, isStruct := named.Underlying().(*types.Struct); !isStruct {
			return
		}
		if _, internal := prog.Pkgs[named.Obj().Pkg().Path()]; internal {
			out[named.Obj()] = true
		}
	}
	for _, bd := range bodies {
		info := bd.pkg.Info
		ast.Inspect(bd.decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.TypeAssertExpr:
				record(n.Type, info) // nil Type (x.(type)) records nothing
			case *ast.TypeSwitchStmt:
				for _, stmt := range n.Body.List {
					if cc, ok := stmt.(*ast.CaseClause); ok {
						for _, t := range cc.List {
							record(t, info)
						}
					}
				}
			}
			return true
		})
	}
	return out
}

// sortedTypeNames orders type names by package path then name for
// deterministic diagnostics.
func sortedTypeNames(set map[*types.TypeName]bool) []*types.TypeName {
	out := make([]*types.TypeName, 0, len(set))
	for tn := range set {
		out = append(out, tn)
	}
	sort.Slice(out, func(i, j int) bool {
		pi, pj := "", ""
		if out[i].Pkg() != nil {
			pi = out[i].Pkg().Path()
		}
		if out[j].Pkg() != nil {
			pj = out[j].Pkg().Path()
		}
		if pi != pj {
			return pi < pj
		}
		return out[i].Name() < out[j].Name()
	})
	return out
}

// shortName renders a *types.TypeName as "pkg.Name" for messages.
func shortName(tn *types.TypeName) string {
	if tn.Pkg() == nil {
		return tn.Name()
	}
	return shortTypeName(tn.Pkg().Path() + "." + tn.Name())
}
