// Package analysis implements droidvet, DroidFuzz's project-specific
// static-analysis suite. The repo carries invariants the Go compiler cannot
// see — serial-mode bit-replayability, sync.Pool object lifecycles, the
// §IV-C edge-weight normalization, and the lock order across the transport
// and daemon — and three perf PRs' worth of hot-path tricks depend on them
// silently. droidvet makes them loud: four passes (determinism, poolcheck,
// lockorder, taggedfield) walk the typed ASTs of every module package and
// report violations unless an explicit //droidvet:<pass> waiver owns them.
//
// The suite is stdlib-only: go/ast + go/parser + go/types with a
// module-aware source importer (no golang.org/x/tools dependency), so
// `go run ./cmd/droidvet` works on a bare toolchain.
package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one loaded, type-checked module package.
type Package struct {
	// Path is the import path ("droidfuzz/internal/engine").
	Path string
	// Dir is the absolute source directory.
	Dir string
	// Files are the parsed compilation units (test files excluded).
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info carries the resolved identifier/expression type information.
	Info *types.Info
	// Imports are the module-internal import paths (for closure walks).
	Imports []string
}

// Program is a loaded module: every package under the module root,
// type-checked against source-imported dependencies.
type Program struct {
	Fset       *token.FileSet
	ModulePath string
	RootDir    string
	// Pkgs maps import path to package for module packages only.
	Pkgs map[string]*Package
	// idx is the lazily built declaration index shared by every pass in an
	// Analyze run (see Program.index).
	idx *declIndex
}

// SortedPaths returns the module package paths in lexical order, for
// deterministic pass iteration (an analyzer of determinism had better be
// deterministic itself).
func (p *Program) SortedPaths() []string {
	out := make([]string, 0, len(p.Pkgs))
	for path := range p.Pkgs {
		out = append(out, path)
	}
	sort.Strings(out)
	return out
}

// loader resolves imports for the type checker: module packages load from
// the repo tree with full function bodies; everything else (the standard
// library) loads from GOROOT source with bodies ignored. All results are
// memoized.
type loader struct {
	fset       *token.FileSet
	ctx        build.Context
	modulePath string
	rootDir    string
	goroot     string

	pkgs  map[string]*Package       // module packages, by import path
	stdli map[string]*types.Package // stdlib packages, by import path
	load  map[string]bool           // in-flight, for import-cycle detection
	errs  []error
}

// Load parses and type-checks every package of the module rooted at dir
// (the directory containing go.mod). Type errors are tolerated — the passes
// want whatever information resolves — but parse failures of module files
// are reported.
func Load(dir string) (*Program, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePathOf(abs)
	if err != nil {
		return nil, err
	}
	ctx := build.Default
	// Pure-Go view of the tree: with cgo off the standard library resolves
	// to its portable fallbacks, which is all the type checker needs.
	ctx.CgoEnabled = false
	l := &loader{
		fset:       token.NewFileSet(),
		ctx:        ctx,
		modulePath: modPath,
		rootDir:    abs,
		goroot:     runtime.GOROOT(),
		pkgs:       make(map[string]*Package),
		stdli:      make(map[string]*types.Package),
		load:       make(map[string]bool),
	}
	for _, pkgDir := range moduleDirs(abs) {
		rel, _ := filepath.Rel(abs, pkgDir)
		path := modPath
		if rel != "." {
			path = modPath + "/" + filepath.ToSlash(rel)
		}
		if _, err := l.loadModulePkg(path, pkgDir); err != nil {
			// A directory with no buildable Go files (all excluded by
			// build tags) is not an error; anything else is.
			if _, ok := err.(*build.NoGoError); !ok {
				return nil, fmt.Errorf("analysis: load %s: %w", path, err)
			}
		}
	}
	return &Program{
		Fset:       l.fset,
		ModulePath: modPath,
		RootDir:    abs,
		Pkgs:       l.pkgs,
	}, nil
}

// modulePathOf reads the module path from dir/go.mod.
func modulePathOf(dir string) (string, error) {
	data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("analysis: %w (droidvet must run inside a module)", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s/go.mod", dir)
}

// moduleDirs walks the tree for directories holding Go source, skipping
// hidden directories, testdata, and nested modules.
func moduleDirs(root string) []string {
	var dirs []string
	filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return nil
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root {
			if strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" {
				return filepath.SkipDir
			}
			if _, err := os.Stat(filepath.Join(path, "go.mod")); err == nil {
				return filepath.SkipDir // nested module
			}
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return nil
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
				dirs = append(dirs, path)
				break
			}
		}
		return nil
	})
	sort.Strings(dirs)
	return dirs
}

// Import implements types.Importer.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.modulePath || strings.HasPrefix(path, l.modulePath+"/") {
		dir := l.rootDir
		if path != l.modulePath {
			dir = filepath.Join(l.rootDir, filepath.FromSlash(strings.TrimPrefix(path, l.modulePath+"/")))
		}
		pkg, err := l.loadModulePkg(path, dir)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.loadStdlib(path)
}

// loadModulePkg parses and type-checks one module package with full bodies
// and identifier resolution recorded.
func (l *loader) loadModulePkg(path, dir string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.load[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	l.load[path] = true
	defer delete(l.load, path)

	bp, err := l.ctx.ImportDir(dir, 0)
	if err != nil {
		return nil, err
	}
	files, err := l.parseFiles(dir, bp.GoFiles)
	if err != nil {
		return nil, err
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{
		Importer:         l,
		FakeImportC:      true,
		Error:            func(err error) { l.errs = append(l.errs, err) },
		IgnoreFuncBodies: false,
	}
	tpkg, _ := conf.Check(path, l.fset, files, info)
	pkg := &Package{
		Path:  path,
		Dir:   dir,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	for _, imp := range bp.Imports {
		if imp == l.modulePath || strings.HasPrefix(imp, l.modulePath+"/") {
			pkg.Imports = append(pkg.Imports, imp)
		}
	}
	sort.Strings(pkg.Imports)
	l.pkgs[path] = pkg
	return pkg, nil
}

// loadStdlib type-checks a GOROOT package from source with bodies ignored;
// the passes only need its exported type surface.
func (l *loader) loadStdlib(path string) (*types.Package, error) {
	if pkg, ok := l.stdli[path]; ok {
		return pkg, nil
	}
	if l.load[path] {
		return nil, fmt.Errorf("stdlib import cycle through %s", path)
	}
	l.load[path] = true
	defer delete(l.load, path)

	dir := filepath.Join(l.goroot, "src", filepath.FromSlash(path))
	bp, err := l.ctx.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("stdlib %s: %w", path, err)
	}
	files, err := l.parseFiles(dir, bp.GoFiles)
	if err != nil {
		return nil, fmt.Errorf("stdlib %s: %w", path, err)
	}
	conf := types.Config{
		Importer:         l,
		FakeImportC:      true,
		Error:            func(err error) { l.errs = append(l.errs, err) },
		IgnoreFuncBodies: true,
	}
	tpkg, _ := conf.Check(path, l.fset, files, nil)
	l.stdli[path] = tpkg
	return tpkg, nil
}

// parseFiles parses the named files in dir with comments retained (waivers
// live in comments).
func (l *loader) parseFiles(dir string, names []string) ([]*ast.File, error) {
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}
