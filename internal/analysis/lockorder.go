package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// checkLockOrder records the mutex acquisition order across the configured
// lock-carrying types (adb.Conn, feedback.SpecTable, daemon.Daemon,
// relation.Graph) and flags
//
//   - inversions: some path acquires A's mutex while holding B's and
//     another acquires B's while holding A's — the classic deadlock pair;
//   - self-nesting: a function that (transitively) re-acquires the same
//     type's sync.Mutex while holding it, which self-deadlocks.
//
// The analysis is static and conservative: per function it tracks which
// monitored locks are held between Lock and Unlock in statement order
// (defer Unlock holds to function end), propagates "may acquire" sets over
// the static call graph to a fixpoint, and records an ordered pair at every
// call made while a monitored lock is held. Dynamic dispatch (interface
// method calls) is not resolved — callees behind an interface contribute
// nothing — so the pass under-approximates; it exists to catch the
// in-module concrete paths where all our shared state lives.
func checkLockOrder(prog *Program, cfg Config) []Diagnostic {
	if len(cfg.LockTypes) == 0 {
		return nil
	}
	lc := &lockChecker{prog: prog, monitored: make(map[*types.Named]string)}
	for _, tp := range cfg.LockTypes {
		if tn := lookupNamed(prog, tp); tn != nil {
			if named, ok := tn.Type().(*types.Named); ok {
				lc.monitored[named.Origin()] = shortTypeName(tp)
			}
		}
	}
	if len(lc.monitored) == 0 {
		return nil
	}
	lc.collectFuncs()
	lc.propagate()
	lc.recordPairs()
	return lc.inversions()
}

func shortTypeName(typePath string) string {
	if i := strings.LastIndex(typePath, "/"); i >= 0 {
		return typePath[i+1:]
	}
	return typePath
}

// lockEvent is one acquisition or release site inside a function body.
type lockEvent struct {
	pos      token.Pos
	typ      *types.Named // monitored owner type
	acquire  bool
	deferred bool
	rlock    bool
}

// funcInfo is the per-function lock behavior.
type funcInfo struct {
	decl   *ast.FuncDecl
	pkg    *Package
	events []lockEvent
	calls  []callSite
	// acq is the may-acquire set: monitored types this function (or any
	// static callee, transitively) may lock.
	acq map[*types.Named]bool
}

type callSite struct {
	pos    token.Pos
	callee *types.Func
}

// orderedPair is one observed "holds A, acquires B" edge.
type orderedPair struct {
	from, to *types.Named
	pos      token.Pos
	fn       *types.Func
}

type lockChecker struct {
	prog      *Program
	monitored map[*types.Named]string
	funcs     map[*types.Func]*funcInfo
	pairs     []orderedPair
}

// monitoredRecv resolves an expression like `x.mu` to the monitored type
// owning the mutex field, or nil.
func (lc *lockChecker) monitoredRecv(info *types.Info, sel *ast.SelectorExpr) *types.Named {
	// sel is `x.mu` inside `x.mu.Lock()`: the receiver expression is sel.X.
	t := info.Types[sel.X].Type
	if t == nil {
		return nil
	}
	named := namedOf(t)
	if named == nil {
		return nil
	}
	named = named.Origin()
	if _, ok := lc.monitored[named]; !ok {
		return nil
	}
	return named
}

// lockCall decodes a statement expression as a mutex operation on a
// monitored type: `x.mu.Lock()`, `x.mu.RLock()`, `x.mu.Unlock()`,
// `x.mu.RUnlock()` where x's type is monitored and mu is a sync.Mutex or
// sync.RWMutex field.
func (lc *lockChecker) lockCall(info *types.Info, call *ast.CallExpr) (typ *types.Named, op string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	op = sel.Sel.Name
	switch op {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return nil, ""
	}
	muSel, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	muType := info.Types[muSel].Type
	if muType == nil || !isSyncMutex(muType) {
		return nil, ""
	}
	typ = lc.monitoredRecv(info, muSel)
	if typ == nil {
		return nil, ""
	}
	return typ, op
}

func isSyncMutex(t types.Type) bool {
	named := namedOf(t)
	if named == nil || named.Obj().Pkg() == nil {
		return false
	}
	if named.Obj().Pkg().Path() != "sync" {
		return false
	}
	name := named.Obj().Name()
	return name == "Mutex" || name == "RWMutex"
}

// collectFuncs scans every function for lock events and static call sites,
// in source order.
func (lc *lockChecker) collectFuncs() {
	lc.funcs = make(map[*types.Func]*funcInfo)
	for _, path := range lc.prog.SortedPaths() {
		pkg := lc.prog.Pkgs[path]
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn := funcFor(pkg, fd)
				if fn == nil {
					continue
				}
				fi := &funcInfo{decl: fd, pkg: pkg, acq: make(map[*types.Named]bool)}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					switch n := n.(type) {
					case *ast.DeferStmt:
						if typ, op := lc.lockCall(pkg.Info, n.Call); typ != nil {
							fi.events = append(fi.events, lockEvent{
								pos: n.Pos(), typ: typ,
								acquire:  op == "Lock" || op == "RLock",
								deferred: true,
								rlock:    strings.HasPrefix(op, "R"),
							})
							return false
						}
					case *ast.CallExpr:
						if typ, op := lc.lockCall(pkg.Info, n); typ != nil {
							fi.events = append(fi.events, lockEvent{
								pos: n.Pos(), typ: typ,
								acquire: op == "Lock" || op == "RLock",
								rlock:   strings.HasPrefix(op, "R"),
							})
							if op == "Lock" || op == "RLock" {
								fi.acq[typ] = true
							}
							return true
						}
						if callee := calleeOf(pkg.Info, n); callee != nil {
							fi.calls = append(fi.calls, callSite{pos: n.Pos(), callee: callee})
						}
					case *ast.FuncLit:
						// Closure bodies run at unknown times (goroutines,
						// deferred hooks); their lock events are attributed
						// to their own synthetic scope, not this function.
						// Static calls inside still matter for the
						// may-acquire set only if invoked here — skip, stay
						// conservative.
						return false
					}
					return true
				})
				sort.Slice(fi.events, func(i, j int) bool { return fi.events[i].pos < fi.events[j].pos })
				sort.Slice(fi.calls, func(i, j int) bool { return fi.calls[i].pos < fi.calls[j].pos })
				lc.funcs[fn] = fi
			}
		}
	}
}

// propagate computes the transitive may-acquire sets over the static call
// graph to a fixpoint.
func (lc *lockChecker) propagate() {
	changed := true
	for changed {
		changed = false
		for _, fi := range lc.funcs {
			for _, cs := range fi.calls {
				callee, ok := lc.funcs[cs.callee]
				if !ok {
					continue
				}
				for t := range callee.acq {
					if !fi.acq[t] {
						fi.acq[t] = true
						changed = true
					}
				}
			}
		}
	}
}

// recordPairs replays every function in statement order, tracking held
// monitored locks and recording (held → acquired) pairs for both direct
// acquisitions and calls into acquiring functions.
func (lc *lockChecker) recordPairs() {
	// Deterministic function order for stable output.
	fns := make([]*types.Func, 0, len(lc.funcs))
	for fn := range lc.funcs {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].FullName() < fns[j].FullName() })

	for _, fn := range fns {
		fi := lc.funcs[fn]
		type heldLock struct {
			typ   *types.Named
			rlock bool
		}
		var held []heldLock
		drop := func(t *types.Named) {
			for i := len(held) - 1; i >= 0; i-- {
				if held[i].typ == t {
					held = append(held[:i], held[i+1:]...)
					return
				}
			}
		}
		// Interleave events and calls by position.
		ei, ci := 0, 0
		for ei < len(fi.events) || ci < len(fi.calls) {
			useEvent := ci >= len(fi.calls) ||
				(ei < len(fi.events) && fi.events[ei].pos <= fi.calls[ci].pos)
			if useEvent {
				ev := fi.events[ei]
				ei++
				if ev.acquire {
					for _, h := range held {
						lc.pairs = append(lc.pairs, orderedPair{from: h.typ, to: ev.typ, pos: ev.pos, fn: fn})
					}
					held = append(held, heldLock{typ: ev.typ, rlock: ev.rlock})
				} else if !ev.deferred {
					drop(ev.typ)
				}
				continue
			}
			cs := fi.calls[ci]
			ci++
			if len(held) == 0 {
				continue
			}
			callee, ok := lc.funcs[cs.callee]
			if !ok {
				continue
			}
			for t := range callee.acq {
				for _, h := range held {
					lc.pairs = append(lc.pairs, orderedPair{from: h.typ, to: t, pos: cs.pos, fn: fn})
				}
			}
		}
	}
}

// inversions reports A→B vs B→A conflicts and A→A self-nesting.
func (lc *lockChecker) inversions() []Diagnostic {
	type key struct{ from, to *types.Named }
	first := make(map[key]orderedPair)
	for _, p := range lc.pairs {
		k := key{p.from, p.to}
		if _, ok := first[k]; !ok {
			first[k] = p
		}
	}
	var diags []Diagnostic
	emit := func(p orderedPair, format string, args ...any) {
		diags = append(diags, Diagnostic{
			Pos:     lc.prog.Fset.Position(p.pos),
			Pass:    PassLockorder,
			Message: fmt.Sprintf(format, args...),
		})
	}
	seen := make(map[key]bool)
	// Deterministic iteration over the recorded pair list (insertion
	// order), not the map.
	for _, p := range lc.pairs {
		k := key{p.from, p.to}
		if seen[k] {
			continue
		}
		seen[k] = true
		if p.from == p.to {
			emit(first[k], "%s re-acquires its own mutex while holding it in %s (self-deadlock)",
				lc.monitored[p.from], p.fn.FullName())
			continue
		}
		rk := key{p.to, p.from}
		if rev, ok := first[rk]; ok && !seen[rk] {
			revPos := lc.prog.Fset.Position(rev.pos)
			emit(first[k], "lock-order inversion: %s acquired while holding %s in %s, but %s is acquired while holding %s at %s:%d (in %s)",
				lc.monitored[p.to], lc.monitored[p.from], p.fn.FullName(),
				lc.monitored[p.from], lc.monitored[p.to],
				shortFile(revPos.Filename), revPos.Line, rev.fn.FullName())
		}
	}
	return diags
}
