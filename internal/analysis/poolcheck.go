package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// checkPools enforces the sync.Pool object lifecycles of the configured
// pooled types (feedback.Signal, adb.ExecResult, ...):
//
//   - double-Put: a second Release of the same variable without an
//     intervening reassignment;
//   - use-after-Put: any read of a variable after its Release on the same
//     control-flow path;
//   - undocumented ownership transfer: a function returning a pooled
//     pointer must say so in its doc comment ("pooled", "Release", or
//     "caller owns"), because the caller inherits the Release obligation.
//
// The flow analysis is intra-procedural and path-insensitive only across
// merge points: a branch that terminates (return/panic/continue/break)
// does not leak its released-set into the code after the branch, which is
// exactly the `if err { res.Release(); return }` shape the hot paths use.
func checkPools(prog *Program, cfg Config) []Diagnostic {
	if len(cfg.Pooled) == 0 {
		return nil
	}
	pc := &poolChecker{prog: prog, pooled: make(map[*types.Named]PooledType), poolVars: make(map[types.Object]bool)}
	for _, pt := range cfg.Pooled {
		if tn := lookupNamed(prog, pt.TypePath); tn != nil {
			if named, ok := tn.Type().(*types.Named); ok {
				pc.pooled[named] = pt
			}
		}
		for _, v := range pt.PoolVars {
			if obj := lookupVar(prog, v); obj != nil {
				pc.poolVars[obj] = true
			}
		}
	}
	if len(pc.pooled) == 0 {
		return nil
	}
	for _, path := range prog.SortedPaths() {
		pkg := prog.Pkgs[path]
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				pc.checkOwnershipDoc(pkg, fd)
				st := newPoolState(pc, pkg)
				st.block(fd.Body.List)
			}
		}
	}
	return pc.diags
}

type poolChecker struct {
	prog     *Program
	pooled   map[*types.Named]PooledType
	poolVars map[types.Object]bool
	diags    []Diagnostic
}

func (pc *poolChecker) report(n ast.Node, format string, args ...any) {
	pc.diags = append(pc.diags, Diagnostic{
		Pos:     pc.prog.Fset.Position(n.Pos()),
		Pass:    PassPoolcheck,
		Message: fmt.Sprintf(format, args...),
	})
}

// pooledOf returns the pooled-type config for t (unwrapping pointers), or
// nil.
func (pc *poolChecker) pooledOf(t types.Type) *PooledType {
	named := namedOf(t)
	if named == nil {
		return nil
	}
	// Methods are declared on the origin type; instantiations share it.
	if pt, ok := pc.pooled[named.Origin()]; ok {
		return &pt
	}
	return nil
}

// returnsPooled reports whether the function signature hands a pooled
// pointer (directly or inside a slice) to its caller.
func (pc *poolChecker) returnsPooled(sig *types.Signature) bool {
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		t := res.At(i).Type()
		if sl, ok := t.Underlying().(*types.Slice); ok {
			t = sl.Elem()
		}
		if _, isPtr := t.Underlying().(*types.Pointer); !isPtr {
			continue
		}
		if pc.pooledOf(t) != nil {
			return true
		}
	}
	return false
}

// ownershipWords are the doc-comment markers that count as documenting the
// caller's Release obligation.
var ownershipWords = []string{"pooled", "Release", "release", "caller owns"}

func (pc *poolChecker) checkOwnershipDoc(pkg *Package, fd *ast.FuncDecl) {
	fn := funcFor(pkg, fd)
	if fn == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || !pc.returnsPooled(sig) {
		return
	}
	doc := ""
	if fd.Doc != nil {
		doc = fd.Doc.Text()
	}
	for _, w := range ownershipWords {
		if strings.Contains(doc, w) {
			return
		}
	}
	pc.report(fd, "%s returns a pooled pointer but its doc comment does not document the ownership transfer (mention \"pooled\" or \"Release\")", fd.Name.Name)
}

// releaseSite records where a variable was released.
type releaseSite struct {
	pos ast.Node
}

// poolState is the per-function abstract state: which pooled variables are
// currently released on this path.
type poolState struct {
	pc       *poolChecker
	pkg      *Package
	released map[types.Object]releaseSite
	deferred map[types.Object]releaseSite
}

func newPoolState(pc *poolChecker, pkg *Package) *poolState {
	return &poolState{
		pc:       pc,
		pkg:      pkg,
		released: make(map[types.Object]releaseSite),
		deferred: make(map[types.Object]releaseSite),
	}
}

func (st *poolState) fork() *poolState {
	n := newPoolState(st.pc, st.pkg)
	for k, v := range st.released {
		n.released[k] = v
	}
	for k, v := range st.deferred {
		n.deferred[k] = v
	}
	return n
}

// merge unions the released sets of branch states that fall through.
func (st *poolState) merge(branches ...*poolState) {
	for _, b := range branches {
		for k, v := range b.released {
			if _, ok := st.released[k]; !ok {
				st.released[k] = v
			}
		}
		for k, v := range b.deferred {
			if _, ok := st.deferred[k]; !ok {
				st.deferred[k] = v
			}
		}
	}
}

// releaseTarget returns the variable object a call releases, or nil: either
// obj.Release() on a pooled type, or pool.Put(obj) on a configured pool var.
func (st *poolState) releaseTarget(call *ast.CallExpr) (types.Object, ast.Node) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, nil
	}
	// pool.Put(x)
	if recv, ok := sel.X.(*ast.Ident); ok && sel.Sel.Name == "Put" && len(call.Args) == 1 {
		if st.pc.poolVars[st.pkg.Info.Uses[recv]] {
			if arg, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
				if obj := st.pkg.Info.Uses[arg]; obj != nil {
					return obj, call
				}
			}
			return nil, nil
		}
	}
	// x.Release() / x.release()
	recv, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return nil, nil
	}
	obj := st.pkg.Info.Uses[recv]
	if obj == nil {
		return nil, nil
	}
	pt := st.pc.pooledOf(obj.Type())
	if pt == nil || sel.Sel.Name != pt.ReleaseMethod {
		return nil, nil
	}
	return obj, call
}

// checkUses flags reads of released variables inside n, skipping the
// sub-expressions listed in skip (the release call's own receiver).
func (st *poolState) checkUses(n ast.Node, skip map[*ast.Ident]bool) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(x ast.Node) bool {
		id, ok := x.(*ast.Ident)
		if !ok || skip[id] {
			return true
		}
		obj := st.pkg.Info.Uses[id]
		if obj == nil {
			return true
		}
		if site, rel := st.released[obj]; rel {
			relPos := st.pc.prog.Fset.Position(site.pos.Pos())
			st.pc.report(id, "use of %s after it was released at %s:%d (use-after-Put on a pooled object)",
				obj.Name(), shortFile(relPos.Filename), relPos.Line)
			// Report once per path; clear so one stale read does not cascade.
			delete(st.released, obj)
		}
		return true
	})
}

func shortFile(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// clearAssigned removes reassigned variables from the released set.
func (st *poolState) clearAssigned(lhs []ast.Expr) {
	for _, l := range lhs {
		if id, ok := ast.Unparen(l).(*ast.Ident); ok {
			if obj := st.pkg.Info.Uses[id]; obj != nil {
				delete(st.released, obj)
			} else if obj := st.pkg.Info.Defs[id]; obj != nil {
				delete(st.released, obj)
			}
		}
	}
}

// terminates reports whether the statement list ends on a path-terminating
// statement (return, branch, panic, or an exhaustive terminating if/else).
func terminates(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	switch last := list[len(list)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.IfStmt:
		if last.Else == nil {
			return false
		}
		eb, ok := last.Else.(*ast.BlockStmt)
		if !ok {
			return false
		}
		return terminates(last.Body.List) && terminates(eb.List)
	}
	return false
}

// block walks a statement list in order, updating the released state.
func (st *poolState) block(list []ast.Stmt) {
	for _, s := range list {
		st.stmt(s)
	}
}

func (st *poolState) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if obj, site := st.releaseTarget(call); obj != nil {
				if prev, dup := st.released[obj]; dup {
					prevPos := st.pc.prog.Fset.Position(prev.pos.Pos())
					st.pc.report(call, "double-Put of %s: already released at %s:%d",
						obj.Name(), shortFile(prevPos.Filename), prevPos.Line)
				}
				// The release call's own receiver/arg idents are not "uses".
				skip := make(map[*ast.Ident]bool)
				ast.Inspect(call, func(x ast.Node) bool {
					if id, ok := x.(*ast.Ident); ok {
						skip[id] = true
					}
					return true
				})
				st.checkUses(call, skip)
				st.released[obj] = releaseSite{pos: site}
				return
			}
		}
		st.checkUses(s, nil)
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			st.checkUses(r, nil)
		}
		for _, l := range s.Lhs {
			// Index/selector writes into a released object are uses too.
			if _, isIdent := ast.Unparen(l).(*ast.Ident); !isIdent {
				st.checkUses(l, nil)
			}
		}
		st.clearAssigned(s.Lhs)
	case *ast.DeferStmt:
		if obj, site := st.releaseTarget(s.Call); obj != nil {
			if prev, dup := st.deferred[obj]; dup {
				prevPos := st.pc.prog.Fset.Position(prev.pos.Pos())
				st.pc.report(s.Call, "double-Put of %s: already deferred-released at %s:%d",
					obj.Name(), shortFile(prevPos.Filename), prevPos.Line)
			}
			st.deferred[obj] = releaseSite{pos: site}
			return
		}
		st.checkUses(s.Call, nil)
	case *ast.IfStmt:
		if s.Init != nil {
			st.stmt(s.Init)
		}
		st.checkUses(s.Cond, nil)
		body := st.fork()
		body.block(s.Body.List)
		var branches []*poolState
		if !terminates(s.Body.List) {
			branches = append(branches, body)
		}
		if s.Else != nil {
			els := st.fork()
			switch e := s.Else.(type) {
			case *ast.BlockStmt:
				els.block(e.List)
				if !terminates(e.List) {
					branches = append(branches, els)
				}
			case *ast.IfStmt:
				els.stmt(e)
				branches = append(branches, els)
			}
		}
		st.merge(branches...)
	case *ast.ForStmt:
		if s.Init != nil {
			st.stmt(s.Init)
		}
		st.checkUses(s.Cond, nil)
		// Two passes over the body approximate the loop back-edge: a
		// release at the bottom of an iteration is visible to reads at the
		// top of the next.
		body := st.fork()
		body.block(s.Body.List)
		if s.Post != nil {
			body.stmt(s.Post)
		}
		body.block(s.Body.List)
		st.merge(body)
	case *ast.RangeStmt:
		st.checkUses(s.X, nil)
		body := st.fork()
		body.clearRangeVars(s)
		body.block(s.Body.List)
		body.clearRangeVars(s)
		body.block(s.Body.List)
		st.merge(body)
	case *ast.BlockStmt:
		st.block(s.List)
	case *ast.SwitchStmt:
		if s.Init != nil {
			st.stmt(s.Init)
		}
		st.checkUses(s.Tag, nil)
		var branches []*poolState
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			b := st.fork()
			b.block(cc.Body)
			if !terminates(cc.Body) {
				branches = append(branches, b)
			}
		}
		st.merge(branches...)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			st.stmt(s.Init)
		}
		var branches []*poolState
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			b := st.fork()
			b.block(cc.Body)
			if !terminates(cc.Body) {
				branches = append(branches, b)
			}
		}
		st.merge(branches...)
	case *ast.SelectStmt:
		var branches []*poolState
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			b := st.fork()
			if cc.Comm != nil {
				b.stmt(cc.Comm)
			}
			b.block(cc.Body)
			if !terminates(cc.Body) {
				branches = append(branches, b)
			}
		}
		st.merge(branches...)
	case *ast.GoStmt:
		st.checkUses(s.Call, nil)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			st.checkUses(r, nil)
		}
	case *ast.DeclStmt, *ast.IncDecStmt, *ast.SendStmt, *ast.LabeledStmt:
		st.checkUses(s, nil)
		if lbl, ok := s.(*ast.LabeledStmt); ok {
			st.stmt(lbl.Stmt)
		}
	default:
		if s != nil {
			st.checkUses(s, nil)
		}
	}
}

// clearRangeVars drops the range key/value variables from the released set;
// each iteration rebinds them.
func (st *poolState) clearRangeVars(s *ast.RangeStmt) {
	for _, e := range []ast.Expr{s.Key, s.Value} {
		if e == nil {
			continue
		}
		if id, ok := e.(*ast.Ident); ok {
			if obj := st.pkg.Info.Defs[id]; obj != nil {
				delete(st.released, obj)
			} else if obj := st.pkg.Info.Uses[id]; obj != nil {
				delete(st.released, obj)
			}
		}
	}
}
