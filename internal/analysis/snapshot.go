package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// checkSnapshots enforces publish-immutability for the configured snapshot
// types (PR 5's atomic-pointer pattern: relation.Snapshot). A snapshot is
// built once, published through an atomic pointer, and from then on read by
// every engine without synchronization — so ANY write reaching a value of a
// snapshot type is a data race waiting for a fleet campaign to hit it. The
// pass flags
//
//   - assignments (including op= forms) whose left-hand side descends
//     through a value of a snapshot type: s.edges = 1, s.succ[i] = e,
//     v.Weights[0] += 0.1;
//   - ++/-- on such expressions;
//   - delete() on a map owned by a snapshot type.
//
// Construction has to write, so functions named in SnapshotBuilders are
// exempt: plain functions as "pkgpath.FuncName" (e.g. relation's
// buildSnapshotLocked) and methods as "pkgpath.Type.Method" (e.g. the
// per-subsystem Checkpoint/Restore implementations behind PR 6's device
// snapshots). Builders run under their owner's lock before the value is
// published, or maintain bookkeeping the snapshot contract allows. The pass is
// flow-insensitive — it does not try to prove a snapshot value is still
// private — because the whole point of the pattern is that nothing outside
// the builder should ever need to mutate one; copy first instead, or waive
// a provably pre-publication site with //droidvet:snapshot.
func checkSnapshots(prog *Program, cfg Config) []Diagnostic {
	if len(cfg.SnapshotTypes) == 0 {
		return nil
	}
	snap := make(map[*types.TypeName]string)
	for _, tp := range cfg.SnapshotTypes {
		if tn := lookupNamed(prog, tp); tn != nil {
			snap[tn] = shortTypeName(tp)
		}
	}
	if len(snap) == 0 {
		return nil
	}
	builders := make(map[string]bool, len(cfg.SnapshotBuilders))
	for _, b := range cfg.SnapshotBuilders {
		builders[b] = true
	}
	var diags []Diagnostic
	for _, path := range prog.SortedPaths() {
		pkg := prog.Pkgs[path]
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if fn := funcFor(pkg, fd); fn != nil && isSnapshotBuilder(fn, builders) {
					continue
				}
				diags = append(diags, snapshotWritesIn(prog, pkg, fd, snap)...)
			}
		}
	}
	return diags
}

// isSnapshotBuilder reports whether fn is registered in SnapshotBuilders:
// plain functions match "pkgpath.FuncName", methods match
// "pkgpath.Type.Method" with the receiver's named type (pointer stripped).
func isSnapshotBuilder(fn *types.Func, builders map[string]bool) bool {
	if fn.Pkg() == nil {
		return false
	}
	if recv := fn.Signature().Recv(); recv != nil {
		named := namedOf(recv.Type())
		if named == nil {
			return false
		}
		return builders[fn.Pkg().Path()+"."+named.Obj().Name()+"."+fn.Name()]
	}
	return builders[fn.Pkg().Path()+"."+fn.Name()]
}

func snapshotWritesIn(prog *Program, pkg *Package, fd *ast.FuncDecl, snap map[*types.TypeName]string) []Diagnostic {
	return mutationsThrough(prog, pkg, fd, snap, PassSnapshot, "is immutable once published")
}

// mutationsThrough flags every mutation (assignment, ++/--, delete) whose
// target descends through a value of one of the owned types, reporting under
// the given pass. It is the shared published-set walker: the snapshot pass
// runs it over the registered SnapshotTypes, and the atomics pass runs it
// over types derived from atomic.Pointer[T] fields of guarded types.
func mutationsThrough(prog *Program, pkg *Package, fd *ast.FuncDecl, owned map[*types.TypeName]string, pass, why string) []Diagnostic {
	var diags []Diagnostic
	report := func(n ast.Node, name, how string) {
		diags = append(diags, Diagnostic{
			Pos:  prog.Fset.Position(n.Pos()),
			Pass: pass,
			Message: fmt.Sprintf("%s %s, which %s; "+
				"build in a registered builder or copy before mutating", how, name, why),
		})
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if name, ok := snapshotOwned(pkg.Info, lhs, owned); ok {
					report(n, name, "assignment writes into snapshot type")
				}
			}
		case *ast.IncDecStmt:
			if name, ok := snapshotOwned(pkg.Info, n.X, owned); ok {
				report(n, name, "++/-- mutates snapshot type")
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "delete" && len(n.Args) == 2 {
				if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
					if name, ok := snapshotOwned(pkg.Info, n.Args[0], owned); ok {
						report(n, name, "delete() removes from a map owned by snapshot type")
					}
				}
			}
		}
		return true
	})
	return diags
}

// snapshotOwned reports whether expr is an access chain (selectors, index
// expressions, dereferences) descending through a value whose named type is
// one of the snapshot types, and if so which one. A bare identifier of
// snapshot type is not a hit: rebinding a local variable is harmless, only
// writes through the shared structure are races.
func snapshotOwned(info *types.Info, expr ast.Expr, snap map[*types.TypeName]string) (string, bool) {
	for {
		expr = ast.Unparen(expr)
		var inner ast.Expr
		switch e := expr.(type) {
		case *ast.SelectorExpr:
			inner = e.X
		case *ast.IndexExpr:
			inner = e.X
		case *ast.StarExpr:
			inner = e.X
		default:
			return "", false
		}
		if tv, ok := info.Types[inner]; ok {
			if named := namedOf(tv.Type); named != nil {
				if name, hit := snap[named.Obj()]; hit {
					return name, true
				}
			}
		}
		expr = inner
	}
}
