package analysis

import (
	"fmt"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// checkWireFrames enforces the wire-frame discipline of the transport
// protocol: every struct reachable from the configured wire roots
// (rpcRequest/rpcReply and everything gob carries inside them)
//
//   - must not contain interface-typed members — gob would happily encode
//     whatever concrete type lands there, silently widening the protocol
//     surface and breaking cross-version decoding;
//   - must keep a fixed field order, pinned by the committed manifest
//     (internal/adb/wire.lock): reordering, renaming, retyping, adding, or
//     removing a field is a protocol change and must be made loudly, by
//     regenerating the manifest with `droidvet -update-wire` in the same
//     commit.
func checkWireFrames(prog *Program, cfg Config) []Diagnostic {
	if len(cfg.WireRoots) == 0 {
		return nil
	}
	frames := wireClosure(prog, cfg.WireRoots)
	if len(frames) == 0 {
		return nil
	}
	var diags []Diagnostic
	for _, fr := range frames {
		st, ok := fr.named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if !f.Exported() {
				continue
			}
			if _, isIface := f.Type().Underlying().(*types.Interface); isIface {
				diags = append(diags, Diagnostic{
					Pos:     prog.Fset.Position(f.Pos()),
					Pass:    PassTaggedField,
					Message: fmt.Sprintf("wire frame %s carries interface-typed field %s; wire frames must have concrete, fixed-layout members", fr.name, f.Name()),
				})
			}
		}
	}
	if cfg.WireManifest != "" {
		diags = append(diags, checkManifest(prog, cfg, frames)...)
	}
	return diags
}

// wireFrame is one struct in the wire closure.
type wireFrame struct {
	name  string // qualified "pkgpath.Name"
	named *types.Named
	pos   token.Pos
}

// wireClosure walks struct fields from the roots, collecting every named
// struct type reachable through fields, slices, arrays, maps, and pointers.
// The result is sorted by qualified name.
func wireClosure(prog *Program, roots []string) []wireFrame {
	seen := make(map[*types.Named]bool)
	var frames []wireFrame
	var visitType func(t types.Type)
	visit := func(named *types.Named) {
		named = named.Origin()
		if seen[named] {
			return
		}
		seen[named] = true
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			return
		}
		pkg := named.Obj().Pkg()
		if pkg == nil {
			return
		}
		frames = append(frames, wireFrame{
			name:  pkg.Path() + "." + named.Obj().Name(),
			named: named,
			pos:   named.Obj().Pos(),
		})
		// Unexported fields never cross the wire (gob skips them), so
		// they are neither part of the frame layout nor a path into the
		// closure.
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i).Exported() {
				visitType(st.Field(i).Type())
			}
		}
	}
	visitType = func(t types.Type) {
		switch u := t.(type) {
		case *types.Pointer:
			visitType(u.Elem())
		case *types.Slice:
			visitType(u.Elem())
		case *types.Array:
			visitType(u.Elem())
		case *types.Map:
			visitType(u.Key())
			visitType(u.Elem())
		case *types.Alias:
			visitType(types.Unalias(u))
		case *types.Named:
			// Follow only named struct types; basic-kind named types
			// (vkernel.Origin etc.) have no field layout to pin.
			if _, ok := u.Underlying().(*types.Struct); ok {
				visit(u)
			}
		}
	}
	for _, root := range roots {
		tn := lookupNamed(prog, root)
		if tn == nil {
			continue
		}
		if named, ok := tn.Type().(*types.Named); ok {
			visit(named)
		}
	}
	sort.Slice(frames, func(i, j int) bool { return frames[i].name < frames[j].name })
	return frames
}

// WireManifest renders the canonical frame-layout manifest for the program:
// one line per wire struct, fields in declaration order with their type
// strings. This is what `droidvet -update-wire` writes and what the
// taggedfield pass diffs against.
func WireManifest(prog *Program, cfg Config) string {
	frames := wireClosure(prog, cfg.WireRoots)
	var b strings.Builder
	b.WriteString("# droidvet wire-frame layout manifest.\n")
	b.WriteString("# Regenerate with `go run ./cmd/droidvet -update-wire` after any\n")
	b.WriteString("# deliberate wire-protocol change; droidvet fails on drift.\n")
	for _, fr := range frames {
		b.WriteString(frameLine(fr))
		b.WriteByte('\n')
	}
	return b.String()
}

func frameLine(fr wireFrame) string {
	st := fr.named.Underlying().(*types.Struct)
	var b strings.Builder
	b.WriteString(fr.name)
	b.WriteString(" =")
	first := true
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if !f.Exported() {
			continue // not wire surface: gob skips unexported fields
		}
		if !first {
			b.WriteString(";")
		}
		first = false
		b.WriteString(" ")
		b.WriteString(f.Name())
		b.WriteString(":")
		b.WriteString(types.TypeString(f.Type(), func(p *types.Package) string { return p.Name() }))
	}
	return b.String()
}

// checkManifest diffs the live frame layouts against the committed
// manifest.
func checkManifest(prog *Program, cfg Config, frames []wireFrame) []Diagnostic {
	path := cfg.WireManifest
	if !filepath.IsAbs(path) {
		path = filepath.Join(prog.RootDir, path)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return []Diagnostic{{
			Pos:     token.Position{Filename: path},
			Pass:    PassTaggedField,
			Message: "wire-frame manifest missing; run `droidvet -update-wire` and commit the result",
		}}
	}
	want := make(map[string]string)
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, _, ok := strings.Cut(line, " =")
		if !ok {
			continue
		}
		want[name] = line
	}
	var diags []Diagnostic
	seen := make(map[string]bool)
	for _, fr := range frames {
		seen[fr.name] = true
		live := frameLine(fr)
		rec, ok := want[fr.name]
		switch {
		case !ok:
			diags = append(diags, Diagnostic{
				Pos:     prog.Fset.Position(fr.pos),
				Pass:    PassTaggedField,
				Message: fmt.Sprintf("wire frame %s is not in the manifest; a new frame type is a protocol change — run `droidvet -update-wire`", fr.name),
			})
		case rec != live:
			diags = append(diags, Diagnostic{
				Pos:     prog.Fset.Position(fr.pos),
				Pass:    PassTaggedField,
				Message: fmt.Sprintf("wire frame %s drifted from the manifest (field order, names, or types changed); if deliberate, run `droidvet -update-wire`", fr.name),
			})
		}
	}
	// Stale manifest entries (deleted/renamed frames) in sorted order.
	stale := make([]string, 0)
	for name := range want {
		if !seen[name] {
			stale = append(stale, name)
		}
	}
	sort.Strings(stale)
	for _, name := range stale {
		diags = append(diags, Diagnostic{
			Pos:     token.Position{Filename: path},
			Pass:    PassTaggedField,
			Message: fmt.Sprintf("manifest lists wire frame %s which no longer exists; run `droidvet -update-wire`", name),
		})
	}
	return diags
}
