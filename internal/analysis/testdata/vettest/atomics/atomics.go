// Package atomics is the clean half of the atomics-pass fixture: guarded
// types whose every access stays inside the atomic discipline. The misuse
// sites live in vettest/atomuse.
package atomics

import "sync/atomic"

// Counter mirrors the kcov collector shape: an atomic-typed counter plus a
// plain-typed buffer whose elements are accessed through sync/atomic
// package functions.
type Counter struct {
	Hits atomic.Uint64
	Buf  []uint32
	Max  int
}

// New builds a counter; composite-literal construction never selects a
// field, so it is discipline-neutral by design.
func New(max int) *Counter {
	return &Counter{Buf: make([]uint32, max), Max: max}
}

// Hit is the clean hot path: method call on the atomic field, atomic store
// into the plain buffer.
func (c *Counter) Hit(i int, pc uint32) {
	c.Hits.Add(1)
	atomic.StoreUint32(&c.Buf[i], pc)
}

// Snapshot reads the buffer back atomically; len and the index-only range
// touch the slice header, not the guarded elements.
func (c *Counter) Snapshot() []uint32 {
	out := make([]uint32, 0, len(c.Buf))
	for i := range c.Buf {
		out = append(out, atomic.LoadUint32(&c.Buf[i]))
	}
	return out
}

// State is published through Board's atomic pointer, so it inherits
// publish-immutability without being listed in SnapshotTypes.
type State struct {
	Edges   int
	Weights map[string]int
}

// Board publishes State values to lock-free readers.
type Board struct {
	cur atomic.Pointer[State]
}

// BuildState is the registered builder: its construction writes are exempt.
func BuildState(n int) *State {
	s := &State{Weights: make(map[string]int, n)}
	s.Edges = n
	return s
}

// Publish swings the pointer; Current hands the immutable view out.
func (b *Board) Publish(n int) { b.cur.Store(BuildState(n)) }

// Current returns the latest published state.
func (b *Board) Current() *State { return b.cur.Load() }
