// Package atomuse seeds the atomics-pass violations against the guarded
// types declared in vettest/atomics.
package atomuse

import (
	"sync/atomic"

	"vettest/atomics"
)

// PlainRead reads an element of a buffer that is atomically written
// elsewhere: mixed discipline, flagged.
func PlainRead(c *atomics.Counter) uint32 {
	return c.Buf[0]
}

// PlainWrite stores into the same buffer without sync/atomic: flagged.
func PlainWrite(c *atomics.Counter, v uint32) {
	c.Buf[1] = v
}

// Steal copies an atomic-typed field out of its API: flagged.
func Steal(c *atomics.Counter) atomic.Uint64 {
	return c.Hits
}

// ReadClean goes through the API and stays clean.
func ReadClean(c *atomics.Counter) uint64 {
	return c.Hits.Load()
}

// WaivedInit is a provably pre-publication plain store, waived.
func WaivedInit() *atomics.Counter {
	c := atomics.New(4)
	c.Buf[2] = 1 //droidvet:atomics pre-publication init, c unpublished here
	return c
}

// MutatePublished writes through a value published via atomic.Pointer:
// flagged by the published-set extension of the snapshot contract.
func MutatePublished(b *atomics.Board) {
	s := b.Current()
	s.Edges = 9
}

// DropWeight delete()s from a map owned by a published value: flagged.
func DropWeight(b *atomics.Board) {
	delete(b.Current().Weights, "k")
}

// CopyThenMutate reads the published value into plain locals and mutates
// only those: the sanctioned pattern, never flagged.
func CopyThenMutate(b *atomics.Board) *atomics.State {
	edges := b.Current().Edges
	edges++
	return atomics.BuildState(edges)
}
