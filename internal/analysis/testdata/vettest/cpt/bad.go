package cpt

// badState is Bad's checkpoint payload; field c never round-trips at all
// and field b is dropped on the portable legs.
type badState struct {
	a uint64
	b uint64
	c uint64
}

// BadExport drops everything but A; Orphan is dead weight Export never
// fills and Import never reads.
type BadExport struct {
	A      uint64
	Orphan uint64
}

// Bad seeds one violation of every checkpoint check: leak is stateful but
// never captured (and not annotated), waived is the same shape with an
// explicit waiver.
type Bad struct {
	a      uint64
	b      uint64
	leak   uint64
	waived uint64 //droidvet:checkpoint deliberate fixture omission
}

// Checkpoint implements Subsystem: badState.c is never populated.
func (d *Bad) Checkpoint() any {
	return badState{a: d.a, b: d.b}
}

// Restore implements Subsystem: badState.c is never read back.
func (d *Bad) Restore(s any) {
	st := s.(badState)
	d.a = st.a
	d.b = st.b
}

// Export implements Subsystem: only badState.a reaches the blob, and
// BadExport.Orphan is never populated.
func (d *Bad) Export() any {
	st := d.Checkpoint().(badState)
	return BadExport{A: st.a}
}

// Import implements Subsystem: only badState.a is re-materialized, and
// BadExport.Orphan is never consumed.
func (d *Bad) Import(b any) {
	e := b.(BadExport)
	d.Restore(badState{a: e.A})
}

// Gen implements Subsystem.
func (d *Bad) Gen() uint64 { return 0 }

// Leaked keeps the un-checkpointed fields live so the fixture is honest
// about them being real state.
func (d *Bad) Leaked() uint64 { return d.leak + d.waived }
