// Package cpt fixes the checkpoint-completeness pass: a miniature
// Subsystem contract, one subsystem that round-trips every field (Good),
// one that drops fields on every leg (Bad), and a deliberately stateless
// one (Idle).
package cpt

import "sync"

// Subsystem mirrors the production snap.Subsystem contract.
type Subsystem interface {
	Checkpoint() any
	Restore(any)
	Export() any
	Import(any)
	Gen() uint64
}

// goodState is Good's in-memory checkpoint payload.
type goodState struct {
	mode  uint64
	links []string
}

// GoodExport is Good's portable blob.
type GoodExport struct {
	Mode  uint64
	Links []string
}

// Good round-trips completely: every stateful field is captured, restored,
// exported, and imported; scratch is annotated ephemeral; mu is sync
// machinery; sub is its own subsystem.
type Good struct {
	mu      sync.Mutex
	gen     uint64
	mode    uint64
	links   []string
	scratch []byte //droidvet:checkpoint ephemeral decode scratch, rebuilt on demand
	sub     *Idle
}

// Checkpoint implements Subsystem.
func (g *Good) Checkpoint() any {
	g.mu.Lock()
	defer g.mu.Unlock()
	return goodState{mode: g.mode, links: append([]string(nil), g.links...)}
}

// Restore implements Subsystem.
func (g *Good) Restore(s any) {
	st := s.(goodState)
	g.mu.Lock()
	defer g.mu.Unlock()
	g.mode = st.mode
	g.links = append([]string(nil), st.links...)
	g.gen++
}

// Export implements Subsystem.
func (g *Good) Export() any {
	st := g.Checkpoint().(goodState)
	return GoodExport{Mode: st.mode, Links: st.links}
}

// Import implements Subsystem.
func (g *Good) Import(b any) {
	e := b.(GoodExport)
	g.Restore(goodState{mode: e.Mode, links: e.Links})
}

// Gen implements Subsystem.
func (g *Good) Gen() uint64 { return g.gen }

// Idle is a stateless subsystem, the ebpf.Hub shape: the one field is
// harness wiring, annotated ephemeral.
type Idle struct {
	hooks []func() //droidvet:checkpoint ephemeral harness wiring, not device state
}

// Checkpoint implements Subsystem.
func (i *Idle) Checkpoint() any { return nil }

// Restore implements Subsystem.
func (i *Idle) Restore(any) {}

// Export implements Subsystem.
func (i *Idle) Export() any { return nil }

// Import implements Subsystem.
func (i *Idle) Import(any) {}

// Gen implements Subsystem.
func (i *Idle) Gen() uint64 { return 0 }

// Hooked keeps the hooks field referenced so the fixture compiles with
// vet-clean unused checks.
func (i *Idle) Hooked() int { return len(i.hooks) }
