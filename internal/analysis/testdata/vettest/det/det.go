// Package det seeds determinism violations for droidvet's own tests: one
// of each flavor the pass must flag, plus the safe idioms it must not.
package det

import (
	"math/rand"
	"sort"
	"time"
)

// Clock reads the wall clock: flagged.
func Clock() int64 {
	return time.Now().UnixNano()
}

// Elapsed uses time.Since: flagged.
func Elapsed(start time.Time) time.Duration {
	return time.Since(start)
}

// Draw uses the global math/rand source: flagged.
func Draw() int {
	return rand.Intn(10)
}

// Fold folds map keys in iteration order: flagged.
func Fold(m map[string]int) string {
	out := ""
	for k := range m {
		out += k
	}
	return out
}

// Keys is the safe collect-then-sort idiom: not flagged.
func Keys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Waived reads the clock under an explicit waiver: not flagged.
func Waived() int64 {
	return time.Now().Unix() //droidvet:nondet fixture: deliberately waived
}

// Seeded draws from an explicitly seeded stream: not flagged.
func Seeded() int {
	r := rand.New(rand.NewSource(1))
	return r.Intn(10)
}
