// Package det: this file is waived wholesale; nothing in it may be
// flagged by the determinism pass.
//
//droidvet:nondet-file fixture: file-scoped waiver
package det

import "time"

// FileWaivedClock reads the clock in a file-waived file: not flagged.
func FileWaivedClock() int64 {
	return time.Now().UnixNano()
}

// FileWaivedFold ranges a map in a file-waived file: not flagged.
func FileWaivedFold(m map[int]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
