module vettest

go 1.23
