// Package golife fixes the goroutine-lifecycle pass: spawns whose loops
// are tied to the registered done channel (or bounded) stay clean; leaks,
// unregistered exits, and dynamic spawns are flagged.
package golife

import "time"

// Worker owns the fixture channels: done is registered in the fixture
// config's GoShutdownChans, myStop deliberately is not.
type Worker struct {
	done   chan struct{}
	myStop chan struct{}
	queue  chan int
}

// Leak spawns an unbounded loop with no exit at all: flagged.
func (w *Worker) Leak() {
	go func() {
		for {
			time.Sleep(time.Millisecond)
		}
	}()
}

// Tick spawns the classic ticker leak — a select loop whose only case is
// the tick: flagged.
func (w *Worker) Tick() {
	go func() {
		t := time.NewTicker(time.Second)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				w.queue <- 0
			}
		}
	}()
}

// Unregistered exits on a channel the daemon's close sequence does not
// signal: the return is real, but the tie is unprovable — flagged.
func (w *Worker) Unregistered() {
	go func() {
		for {
			select {
			case <-w.myStop:
				return
			case v := <-w.queue:
				_ = v
			}
		}
	}()
}

// Dynamic spawns through a function value; the body cannot be resolved —
// flagged.
func Dynamic(fn func()) {
	go fn()
}

// Tied selects on the registered done channel: clean.
func (w *Worker) Tied() {
	go func() {
		for {
			select {
			case <-w.done:
				return
			case v := <-w.queue:
				_ = v
			}
		}
	}()
}

// Bounded runs a condition-bounded loop: clean.
func (w *Worker) Bounded(n int) {
	go func() {
		for i := 0; i < n; i++ {
			w.queue <- i
		}
	}()
}

// Drain ranges over a channel, which ends when the daemon closes it: clean.
func (w *Worker) Drain() {
	go func() {
		for range w.queue {
		}
	}()
}

// Pump spawns a named method whose select-free loop exits through a plain
// return on channel close — the transport readLoop idiom: clean.
func (w *Worker) Pump() {
	go w.pump()
}

func (w *Worker) pump() {
	for {
		v, ok := <-w.queue
		if !ok {
			return
		}
		_ = v
	}
}

// WaivedLeak is a deliberate leak owned by a waiver: clean.
func (w *Worker) WaivedLeak() {
	go func() { //droidvet:golifetime intentional fixture leak
		for {
			w.queue <- 1
		}
	}()
}
