// Package locks seeds lock-order violations for droidvet's own tests: an
// A→B / B→A inversion pair and a transitive self-nesting deadlock.
package locks

import "sync"

// A is one monitored lock-carrying fixture.
type A struct {
	mu sync.Mutex
	b  *B
	n  int
}

// B is the other monitored fixture.
type B struct {
	mu sync.Mutex
	a  *A
	n  int
}

// LockAB acquires A then B: half of the inversion pair.
func (a *A) LockAB() {
	a.mu.Lock()
	a.b.mu.Lock()
	a.b.n++
	a.b.mu.Unlock()
	a.mu.Unlock()
}

// LockBA acquires B then A: the other half — flagged as an inversion.
func (b *B) LockBA() {
	b.mu.Lock()
	b.a.mu.Lock()
	b.a.n++
	b.a.mu.Unlock()
	b.mu.Unlock()
}

// SelfNest re-acquires A's mutex through a callee while holding it:
// flagged as a self-deadlock.
func (a *A) SelfNest() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.lockedTouch()
}

// lockedTouch takes the lock itself.
func (a *A) lockedTouch() {
	a.mu.Lock()
	a.n++
	a.mu.Unlock()
}

// Sequential locks A and B one after the other, never nested: not flagged.
func (a *A) Sequential() {
	a.mu.Lock()
	a.n++
	a.mu.Unlock()
	a.b.mu.Lock()
	a.b.n++
	a.b.mu.Unlock()
}
