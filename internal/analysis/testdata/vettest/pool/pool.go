// Package pool seeds pooled-lifecycle violations for droidvet's own
// tests: double-Put, use-after-put, and an undocumented ownership
// transfer, next to the clean shapes the pass must accept.
package pool

import "sync"

// Obj is the pooled fixture type.
type Obj struct{ V int }

var objPool = sync.Pool{New: func() any { return new(Obj) }}

// Get returns a pooled Obj; the caller must Release it.
func Get() *Obj { return objPool.Get().(*Obj) }

// Release returns o to its pool.
func (o *Obj) Release() { objPool.Put(o) }

// DoublePut releases the same object twice: flagged.
func DoublePut() {
	o := Get()
	o.Release()
	o.Release()
}

// PutTwice double-puts through the pool variable itself: flagged.
func PutTwice() {
	o := Get()
	objPool.Put(o)
	objPool.Put(o)
}

// UseAfterPut reads a field after release: flagged.
func UseAfterPut() int {
	o := Get()
	o.Release()
	return o.V
}

// Undocumented hands a recycled pointer to its caller without stating the
// obligation that comes with it: flagged.
func Undocumented() *Obj {
	return Get()
}

// Documented hands out a pooled Obj; the caller owns it and must Release
// it: not flagged.
func Documented() *Obj {
	return Get()
}

// ErrPathRelease is the hot-path shape: release on the terminating branch,
// use on the fall-through. Not flagged.
func ErrPathRelease(fail bool) int {
	o := Get()
	if fail {
		o.Release()
		return 0
	}
	v := o.V
	o.Release()
	return v
}

// Recycle reassigns after release; the fresh object is clean. Not flagged.
func Recycle() {
	o := Get()
	o.Release()
	o = Get()
	o.Release()
}
