package snap

// Blob is the portable-checkpoint fixture in the shape of the device
// export blobs (PR 8): exported state that any number of clone twins may
// import, immutable from the moment the export builder returns. A write
// through an imported blob would be observed by every sibling twin.
type Blob struct {
	Regs []uint64
	Name string
}

// NewBlob is the registered export builder: its construction writes are
// pre-publication and must not be flagged.
func NewBlob(regs []uint64, name string) *Blob {
	b := &Blob{Regs: make([]uint64, len(regs))}
	copy(b.Regs, regs)
	b.Name = name
	return b
}
