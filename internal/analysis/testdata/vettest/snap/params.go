package snap

// ParamState is the runtime-parameter checkpoint fixture, mirroring
// drivers.knobsState: the knob values captured at boot become the restore
// reference and are immutable once published.
type ParamState struct {
	Ints []uint64
	Strs []string
}

// NewParamState is the registered builder ("vettest/snap.NewParamState"):
// its construction writes must not be flagged.
func NewParamState(ints []uint64, strs []string) *ParamState {
	s := &ParamState{
		Ints: make([]uint64, len(ints)),
		Strs: make([]string, len(strs)),
	}
	copy(s.Ints, ints)
	copy(s.Strs, strs)
	return s
}
