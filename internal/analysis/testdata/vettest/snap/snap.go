// Package snap is the fixture snapshot type for droidvet's snapshot pass:
// an immutable published view in the shape of relation.Snapshot, with New
// registered as its builder.
package snap

import "sort"

// View is the published-immutable snapshot fixture. Fields are exported so
// the sibling snapuse package can seed out-of-package violations.
type View struct {
	Names   []string
	Weights []float64
	Index   map[string]int
	Gen     int
}

// New is the registered builder: its writes are construction, not
// mutation, and must not be flagged.
func New(names []string, weights []float64) *View {
	v := &View{
		Names:   make([]string, len(names)),
		Weights: make([]float64, len(weights)),
		Index:   make(map[string]int, len(names)),
	}
	copy(v.Names, names)
	copy(v.Weights, weights)
	sort.Strings(v.Names)
	for i, name := range v.Names {
		v.Index[name] = i
	}
	v.Gen = 1
	return v
}

// Weight is a read-only accessor: never flagged.
func (v *View) Weight(i int) float64 {
	return v.Weights[i]
}

// Rebind assigns a whole new value to a local snapshot variable — a
// rebinding, not a write through the shared structure, so not flagged.
func Rebind(a, b *View) *View {
	v := a
	v = b
	return v
}

// Refresh is a registered *method* builder ("vettest/snap.View.Refresh"):
// its bookkeeping write is sanctioned, mirroring Device.Restore's
// generation maintenance, and must not be flagged.
func (v *View) Refresh() {
	v.Gen = v.Gen + 1
}
