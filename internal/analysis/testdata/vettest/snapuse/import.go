package snapuse

import "vettest/snap"

// WriteThroughImported mutates a checkpoint blob after import — the PR 8
// ownership violation: the blob is shared by every clone twin that
// imported it, so both sites must be flagged.
func WriteThroughImported(b *snap.Blob) {
	b.Regs[0] = 0xdead
	b.Name = "tampered"
}

// ImportByCopy is the sanctioned import pattern: deep-copy the blob into
// private state and mutate only the copy. Never flagged.
func ImportByCopy(b *snap.Blob) []uint64 {
	regs := make([]uint64, len(b.Regs))
	copy(regs, b.Regs)
	if len(regs) > 0 {
		regs[0]++
	}
	return regs
}
