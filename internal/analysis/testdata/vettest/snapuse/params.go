// Seeded violations against the runtime-parameter checkpoint fixture:
// knob state captured at boot is a published snapshot, and only the
// registered builder may write it.
package snapuse

import "vettest/snap"

// StoreKnob rewrites a captured knob value from an unregistered function —
// the unregistered-param-state write: flagged.
func StoreKnob(s *snap.ParamState) {
	s.Ints[0] = 7
}

// ReadKnob only reads; never flagged.
func ReadKnob(s *snap.ParamState) uint64 {
	var sum uint64
	for i := range s.Ints {
		sum += s.Ints[i]
	}
	return sum
}
