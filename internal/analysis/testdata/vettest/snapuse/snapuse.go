// Package snapuse seeds snapshot-misuse violations for droidvet's own
// tests: writes into a published snap.View outside its registered builder.
package snapuse

import "vettest/snap"

// Mutate writes into a published snapshot: both sites must be flagged.
func Mutate(v *snap.View) {
	v.Names[0] = "tampered"
	v.Weights[0] += 0.5
}

// Bump seeds the ++ and delete() forms: both flagged.
func Bump(v *snap.View) {
	v.Gen++
	delete(v.Index, "gone")
}

// Waived is a flagged-shape write owned by an explicit waiver: the value
// is provably pre-publication in this fixture's story, so it stays clean.
func Waived(v *snap.View) {
	v.Gen = 0 //droidvet:snapshot fixture: pre-publication fix-up
}

// Read only reads; never flagged.
func Read(v *snap.View) float64 {
	var sum float64
	for i := range v.Weights {
		sum += v.Weights[i]
	}
	return sum
}

// CopyThenMutate is the sanctioned pattern: deep-copy first, then write
// the private copy. The writes land on locals, not the shared value, and
// must not be flagged.
func CopyThenMutate(v *snap.View) *snap.View {
	names := make([]string, len(v.Names))
	copy(names, v.Names)
	weights := make([]float64, len(v.Weights))
	copy(weights, v.Weights)
	names[0] = "mine"
	weights[0] = 0.25
	return snap.New(names, weights)
}

// Stamper seeds method-receiver violations for the receiver-qualified
// builder matching.
type Stamper struct{}

// Stamp writes through a snapshot from an unregistered method: flagged.
func (Stamper) Stamp(v *snap.View) {
	v.Gen = 9
}

// New shares its name with the registered plain builder "vettest/snap.New"
// but is a method on Stamper, not that function — receiver-qualified
// matching must still flag its write.
func (Stamper) New(v *snap.View) {
	v.Names[0] = "forged"
}
