// Package waiv fixes the waiver grammar edge cases: end-of-line vs
// line-above placement, stacked waivers for different passes above one
// statement, prose mentions that must not parse as waivers, and unknown
// pass names that must be rejected.
package waiv

import "time"

// EOLWaived carries its waiver at end of line.
func EOLWaived() int64 {
	return time.Now().UnixNano() //droidvet:nondet fixture: deliberate clock read
}

// LineAboveWaived carries its waiver on the line above.
func LineAboveWaived() int64 {
	//droidvet:nondet fixture: deliberate clock read
	return time.Now().UnixNano()
}

// Stacked carries waivers for two passes above one statement; the first
// must reach past its sibling to the statement.
func Stacked() int64 {
	//droidvet:nondet fixture: first of a stacked pair
	//droidvet:poolcheck fixture: second of a stacked pair
	return time.Now().UnixNano()
}

// ProseMention must stay flagged: the marker below sits mid-comment, so it
// is documentation, not a waiver.
func ProseMention() int64 {
	// a real waiver would be //droidvet:nondet at the comment start
	return time.Now().UnixNano()
}

// Unknown pass names waive nothing and are themselves findings.
func UnknownPass() {
	//droidvet:nosuchpass this must be rejected
	//droidvet:nondet-flie typo'd file suffix is just an unknown pass too
}
