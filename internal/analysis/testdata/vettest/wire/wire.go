// Package wire seeds wire-frame violations for droidvet's own tests: an
// interface-typed member in the frame closure.
package wire

// Frame is the root wire frame; its interface member must be flagged.
type Frame struct {
	Tag     uint64
	Payload any
	Inner   Inner
	Batch   []Item
}

// Inner rides inside Frame and is part of the pinned layout.
type Inner struct {
	Name  string
	Count int
}

// Item reaches the closure through the Batch slice.
type Item struct {
	Key uint32
	Val string
}
