// Package baseline implements the comparison fuzzers of the paper's
// evaluation: a Syzkaller-analog (coverage-guided, syscall-only,
// resource-aware generation and mutation, kcov feedback — commit fb88827's
// role in §V-C1) and a Difuze-analog (static interface extraction feeding a
// generation-only ioctl fuzzer in the MangoFuzz/Peach style — commit
// 3290997's role in §V-C2). It also wires the DroidFuzz variants used in
// the evaluation: DROIDFUZZ-D (ioctl-gated), DF-NoRel and DF-NoHCov.
package baseline

import (
	"math/rand"
	"strings"

	"droidfuzz/internal/adb"
	"droidfuzz/internal/crash"
	"droidfuzz/internal/device"
	"droidfuzz/internal/dsl"
	"droidfuzz/internal/engine"
	"droidfuzz/internal/feedback"
	"droidfuzz/internal/gen"
	"droidfuzz/internal/probe"
	"droidfuzz/internal/relation"
)

// Fuzzer is the uniform campaign surface the bench harness drives.
type Fuzzer interface {
	// Run executes n fuzzing iterations.
	Run(n int)
	// Accumulator exposes accumulated coverage and its history.
	Accumulator() *feedback.Accumulator
	// Dedup exposes unique findings.
	Dedup() *crash.Dedup
	// Execs reports the virtual-time clock.
	Execs() uint64
}

// Engine-based fuzzers satisfy Fuzzer structurally.
var _ Fuzzer = (*engine.Engine)(nil)

// NewDroidFuzz boots the full system for a device: probing pass, extended
// target, shared-or-fresh relation graph, engine.
func NewDroidFuzz(dev *device.Device, graph *relation.Graph, dedup *crash.Dedup, cfg engine.Config) (*engine.Engine, error) {
	target, err := dsl.NewTarget(dev.SyscallDescs()...)
	if err != nil {
		return nil, err
	}
	pr, err := probe.Run(dev, probe.Options{Params: cfg.Params})
	if err != nil {
		return nil, err
	}
	target, err = target.Extend(pr.Interfaces...)
	if err != nil {
		return nil, err
	}
	if cfg.Params {
		target, err = target.Extend(pr.Params...)
		if err != nil {
			return nil, err
		}
	}
	broker := adb.NewBroker(dev, target)
	eng := engine.New(broker, graph, dedup, cfg)
	eng.SeedCorpus(pr.Seeds)
	return eng, nil
}

// NewDroidFuzzD builds the DROIDFUZZ-D variant: the full system with the
// broker's ioctl-only gate enabled, so the native executor runs only
// open/close/ioctl and HAL-origin read/write/mmap syscalls are blocked
// (paper §V-C2).
func NewDroidFuzzD(dev *device.Device, cfg engine.Config) (*engine.Engine, error) {
	target, err := dsl.NewTarget(dev.SyscallDescs()...)
	if err != nil {
		return nil, err
	}
	pr, err := probe.Run(dev, probe.Options{Params: cfg.Params})
	if err != nil {
		return nil, err
	}
	target, err = target.Extend(pr.Interfaces...)
	if err != nil {
		return nil, err
	}
	if cfg.Params {
		// The target still carries the knob descriptions — the gate, not
		// the description set, is what separates DROIDFUZZ-D from the full
		// system — but the broker blocks the write leg of every param call.
		target, err = target.Extend(pr.Params...)
		if err != nil {
			return nil, err
		}
	}
	broker := adb.NewBroker(dev, target)
	broker.SetIoctlOnly(true)
	eng := engine.New(broker, relation.New(), crash.NewDedup(), cfg)
	eng.SeedCorpus(pr.Seeds)
	return eng, nil
}

// NewSyzkallerLike builds the Syzkaller analog: the same coverage-guided
// generate/mutate/minimize loop over the same syscall descriptions, but
// blind to the HAL boundary — no probed interfaces, no relation learning
// (Syzkaller's static choice bias stands in via random dependency
// generation with resource resolution), and kcov-only feedback.
func NewSyzkallerLike(dev *device.Device, cfg engine.Config) (*engine.Engine, error) {
	target, err := dsl.NewTarget(dev.SyscallDescs()...)
	if err != nil {
		return nil, err
	}
	broker := adb.NewBroker(dev, target)
	cfg.NoRelations = true
	cfg.NoHALCov = true
	return engine.New(broker, relation.New(), crash.NewDedup(), cfg), nil
}

// Difuze is the interface fuzzer analog: it statically "extracts" the ioctl
// command surface (request codes and argument layouts — what Difuze
// recovers from driver sources) and generates spec-conformant ioctl
// invocations with no execution feedback, like the Peach-based MangoFuzz.
type Difuze struct {
	x       adb.Executor
	target  *dsl.Target
	gen     *gen.Generator
	acc     *feedback.Accumulator
	dedup   *crash.Dedup
	rng     *rand.Rand
	modelID string
	execs   uint64
	ifaces  int
	snapEvr uint64
}

// NewDifuze builds the Difuze analog for a device.
func NewDifuze(dev *device.Device, seed int64) (*Difuze, error) {
	extracted := ExtractIoctlInterfaces(dev)
	target, err := dsl.NewTarget(extracted...)
	if err != nil {
		return nil, err
	}
	n := 0
	for _, d := range extracted {
		if strings.HasPrefix(d.Name, "ioctl$") {
			n++
		}
	}
	rng := rand.New(rand.NewSource(seed))
	return &Difuze{
		x:      adb.NewBroker(dev, target),
		target: target,
		// A fresh empty relation graph keeps the generator's walk
		// degenerate; NoRelations makes dependencies purely random, the
		// Peach behavior.
		gen:     gen.New(target, relation.New(), rng, gen.Options{NoRelations: true, MaxLen: 6}),
		acc:     feedback.NewAccumulator(),
		dedup:   crash.NewDedup(),
		rng:     rng,
		modelID: dev.Model.ID,
		ifaces:  n,
		snapEvr: 25,
	}, nil
}

// ExtractIoctlInterfaces performs the static-analysis stand-in: the open
// and ioctl descriptions of every driver family present on the device.
func ExtractIoctlInterfaces(dev *device.Device) []*dsl.CallDesc {
	var out []*dsl.CallDesc
	for _, d := range dev.SyscallDescs() {
		if strings.HasPrefix(d.Name, "open$") || strings.HasPrefix(d.Name, "ioctl$") {
			out = append(out, d)
		}
	}
	return out
}

// ExtractedInterfaces reports how many ioctl interfaces extraction found
// (the paper reports 285 and 232 for devices A1 and A2).
func (f *Difuze) ExtractedInterfaces() int { return f.ifaces }

// Accumulator implements Fuzzer (coverage is measured, not used as
// feedback).
func (f *Difuze) Accumulator() *feedback.Accumulator { return f.acc }

// Dedup implements Fuzzer.
func (f *Difuze) Dedup() *crash.Dedup { return f.dedup }

// Execs implements Fuzzer.
func (f *Difuze) Execs() uint64 { return f.execs }

// Run implements Fuzzer: pure generation, no corpus, no guidance. It
// drives the adb.Executor boundary, so the analog runs over the in-process
// broker or any transport-backed executor alike.
func (f *Difuze) Run(n int) {
	for i := 0; i < n; i++ {
		p := f.gen.Generate()
		res, err := f.x.ExecProg(p)
		f.execs++
		if err != nil {
			continue
		}
		if len(res.Crashes) > 0 {
			for _, cr := range res.Crashes {
				f.dedup.Add(f.modelID, cr, p, f.execs)
			}
			_ = f.x.Reboot()
		}
		// Coverage is recorded for the evaluation plots only.
		sig := feedback.FromExec(res, nil)
		f.acc.Merge(sig)
		sig.Release()
		res.Release()
		if f.execs%f.snapEvr == 0 {
			f.acc.Snapshot(f.execs)
		}
	}
	f.acc.Snapshot(f.execs)
}

var _ Fuzzer = (*Difuze)(nil)
