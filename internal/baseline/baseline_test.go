package baseline

import (
	"strings"
	"testing"

	"droidfuzz/internal/crash"
	"droidfuzz/internal/device"
	"droidfuzz/internal/engine"
	"droidfuzz/internal/relation"
)

func boot(t *testing.T, id string) *device.Device {
	t.Helper()
	m, err := device.ModelByID(id)
	if err != nil {
		t.Fatal(err)
	}
	return device.New(m)
}

func TestDroidFuzzConstructionSeedsCorpus(t *testing.T) {
	eng, err := NewDroidFuzz(boot(t, "A1"), relation.New(), crash.NewDedup(), engine.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// The distilled framework workloads pre-populate the corpus before
	// the first fuzzing step.
	if eng.Corpus().Len() == 0 {
		t.Fatal("corpus not seeded")
	}
	if eng.Execs() == 0 {
		t.Fatal("seeds were not executed")
	}
	// And the probing pass extended the target with HAL interfaces.
	hal := 0
	for _, d := range eng.Gen().Target().Calls() {
		if d.IsHAL() {
			hal++
		}
	}
	if hal == 0 {
		t.Fatal("no HAL interfaces in target")
	}
}

func TestSyzkallerLikeIsSyscallOnly(t *testing.T) {
	eng, err := NewSyzkallerLike(boot(t, "A1"), engine.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range eng.Gen().Target().Calls() {
		if d.IsHAL() {
			t.Fatalf("HAL interface %s in Syzkaller target", d.Name)
		}
	}
	eng.Run(300)
	st := eng.Stats()
	if st.KernelCov == 0 {
		t.Fatal("no coverage")
	}
	// kcov-only feedback: total signal equals kernel coverage.
	if st.TotalSignal != st.KernelCov {
		t.Fatalf("signal %d != kernel %d (HAL coverage leaked in)",
			st.TotalSignal, st.KernelCov)
	}
}

func TestDifuzeExtractionAndRun(t *testing.T) {
	dev := boot(t, "A1")
	f, err := NewDifuze(dev, 1)
	if err != nil {
		t.Fatal(err)
	}
	if f.ExtractedInterfaces() < 50 {
		t.Fatalf("extracted = %d", f.ExtractedInterfaces())
	}
	for _, d := range ExtractIoctlInterfaces(dev) {
		if !strings.HasPrefix(d.Name, "open$") && !strings.HasPrefix(d.Name, "ioctl$") {
			t.Fatalf("non-ioctl interface extracted: %s", d.Name)
		}
	}
	f.Run(400)
	if f.Execs() != 400 {
		t.Fatalf("execs = %d (Difuze is generation-only, one exec per iter)", f.Execs())
	}
	if f.Accumulator().KernelTotal() == 0 {
		t.Fatal("no coverage measured")
	}
	// Generation-only: no directional signal ever.
	if f.Accumulator().Total() != f.Accumulator().KernelTotal() {
		t.Fatal("difuze accumulated directional signal")
	}
}

func TestDroidFuzzDGateActive(t *testing.T) {
	eng, err := NewDroidFuzzD(boot(t, "A1"), engine.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run(200)
	if eng.Accumulator().KernelTotal() == 0 {
		t.Fatal("no coverage under the ioctl gate")
	}
}

func TestVariantCoverageOrderingSmoke(t *testing.T) {
	// At a modest budget the full system should not lose to the
	// syscall-only baseline on joint signal.
	df, err := NewDroidFuzz(boot(t, "A2"), relation.New(), crash.NewDedup(), engine.Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	syz, err := NewSyzkallerLike(boot(t, "A2"), engine.Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	df.Run(1500)
	syz.Run(1500)
	if df.Accumulator().Total() <= syz.Accumulator().Total() {
		t.Fatalf("joint signal: DF %d <= Syz %d",
			df.Accumulator().Total(), syz.Accumulator().Total())
	}
}
