package baseline

import (
	"crypto/sha256"
	"encoding/hex"
	"testing"

	"droidfuzz/internal/crash"
	"droidfuzz/internal/device"
	"droidfuzz/internal/dsl"
	"droidfuzz/internal/engine"
	"droidfuzz/internal/kcov"
	"droidfuzz/internal/relation"
)

// knobStorePCs returns the kcov PCs of every sysfs store cover site on the
// device: each writable knob owns a 4-site window at its base Site (three
// value buckets plus the malformed-write reject path).
func knobStorePCs(dev *device.Device) map[uint32]bool {
	pcs := make(map[uint32]bool)
	for _, kn := range dev.ParamSurface() {
		for _, sp := range kn.Specs() {
			if sp.Site == 0 {
				continue
			}
			for s := sp.Site; s < sp.Site+4; s++ {
				pcs[kcov.PC(kn.Family(), s)] = true
			}
		}
	}
	return pcs
}

func paramCalls(eng *engine.Engine) int {
	n := 0
	for _, d := range eng.Gen().Target().Calls() {
		if d.Class == dsl.ClassParam {
			n++
		}
	}
	return n
}

// TestParamCampaignCoversKnobStores: with the runtime-parameter dimension
// enabled, a campaign writes knobs (ParamWrites climbs) and its accumulated
// kernel coverage includes sysfs store sites no ioctl can reach.
func TestParamCampaignCoversKnobStores(t *testing.T) {
	dev := boot(t, "A1")
	eng, err := NewDroidFuzz(dev, relation.New(), crash.NewDedup(), engine.Config{Seed: 7, Params: true})
	if err != nil {
		t.Fatal(err)
	}
	if paramCalls(eng) == 0 {
		t.Fatal("param-enabled target carries no param calls")
	}
	eng.Run(400)
	if eng.Stats().ParamWrites == 0 {
		t.Fatal("param-enabled campaign issued no param writes")
	}
	stores := knobStorePCs(dev)
	hit := 0
	for _, pc := range eng.Accumulator().KernelPCs() {
		if stores[pc] {
			hit++
		}
	}
	if hit == 0 {
		t.Fatal("no sysfs store cover site in accumulated kernel coverage")
	}
}

// TestDroidFuzzDNeverHitsKnobStores: the ioctl-only ablation gets the same
// param-extended target and the same probe seeds, but the kernel gate
// blocks the write leg of every param call — across a whole campaign not a
// single sysfs store site enters the accumulated coverage.
func TestDroidFuzzDNeverHitsKnobStores(t *testing.T) {
	dev := boot(t, "A1")
	eng, err := NewDroidFuzzD(dev, engine.Config{Seed: 7, Params: true})
	if err != nil {
		t.Fatal(err)
	}
	if paramCalls(eng) == 0 {
		t.Fatal("D-variant target should still carry the param descriptions")
	}
	eng.Run(400)
	stores := knobStorePCs(dev)
	for _, pc := range eng.Accumulator().KernelPCs() {
		if stores[pc] {
			t.Fatal("sysfs store site covered under the ioctl-only gate")
		}
	}
}

// TestParamCampaignReplaysItself: the seed-replay regression for the
// runtime-parameter dimension — two param-enabled campaigns from the same
// seed produce identical stats and an identical corpus, program for
// program.
func TestParamCampaignReplaysItself(t *testing.T) {
	run := func() (engine.Stats, string) {
		eng, err := NewDroidFuzz(boot(t, "A1"), relation.New(), crash.NewDedup(),
			engine.Config{Seed: 99, Params: true})
		if err != nil {
			t.Fatal(err)
		}
		eng.Run(400)
		h := sha256.New()
		for _, e := range eng.Corpus().Entries() {
			h.Write([]byte(e.Prog.String()))
		}
		return eng.Stats(), hex.EncodeToString(h.Sum(nil))
	}
	st1, h1 := run()
	st2, h2 := run()
	if st1 != st2 {
		t.Fatalf("param-enabled replay diverged:\n run1 %+v\n run2 %+v", st1, st2)
	}
	if h1 != h2 {
		t.Fatalf("corpus hash diverged: %s vs %s", h1, h2)
	}
	if st1.ParamWrites == 0 {
		t.Fatal("replay regression ran without param writes")
	}
}
