package bench

import (
	"strings"
	"testing"

	"droidfuzz/internal/bugs"
)

func TestTable1ListsAllDevices(t *testing.T) {
	out := Table1()
	for _, id := range []string{"A1", "A2", "B", "C1", "C2", "D", "E"} {
		if !strings.Contains(out, id+" ") {
			t.Fatalf("table 1 missing %s:\n%s", id, out)
		}
	}
	for _, vendor := range []string{"Xiaomi", "Raspberry Pi", "Sunmi", "EmbedFire", "AAEON"} {
		if !strings.Contains(out, vendor) {
			t.Fatalf("table 1 missing vendor %s", vendor)
		}
	}
}

func TestRunCampaignEveryKind(t *testing.T) {
	kinds := []FuzzerKind{
		DroidFuzz, DroidFuzzNoRel, DroidFuzzNoHCov,
		DroidFuzzD, SyzkallerLike, DifuzeLike,
	}
	for _, k := range kinds {
		res, err := RunCampaign(CampaignConfig{
			ModelID: "B", Fuzzer: k, Iters: 300, Seed: 1,
		})
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if res.KernelCov == 0 {
			t.Fatalf("%v: no coverage", k)
		}
		if len(res.Kernel.T) == 0 {
			t.Fatalf("%v: no history", k)
		}
		if len(res.PerDriver) == 0 {
			t.Fatalf("%v: no per-driver accounting", k)
		}
		if k == DifuzeLike && res.ExtractedIfaces == 0 {
			t.Fatal("difuze extraction count missing")
		}
	}
	if _, err := RunCampaign(CampaignConfig{ModelID: "Z9", Fuzzer: DroidFuzz, Iters: 1}); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestRunRepeatedVariesSeeds(t *testing.T) {
	runs, err := RunRepeated(CampaignConfig{
		ModelID: "B", Fuzzer: SyzkallerLike, Iters: 300, Seed: 1,
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 {
		t.Fatalf("runs = %d", len(runs))
	}
	finals := FinalKernel(runs)
	if len(finals) != 2 || finals[0] == 0 {
		t.Fatalf("finals = %v", finals)
	}
}

func TestFigure3Render(t *testing.T) {
	r, err := RunFigure3("A1")
	if err != nil {
		t.Fatal(err)
	}
	out := r.Render()
	if !strings.Contains(out, "android.hardware.graphics.composer") {
		t.Fatalf("figure 3 missing services:\n%s", out)
	}
	if r.Interfaces == 0 || r.Seeds == 0 {
		t.Fatalf("probing stats empty: %+v", r)
	}
	if len(r.TopWeighted) == 0 {
		t.Fatal("no weighted interfaces")
	}
	for i := 1; i < len(r.TopWeighted); i++ {
		if r.TopWeighted[i-1].Weight < r.TopWeighted[i].Weight {
			t.Fatal("top-weighted not sorted")
		}
	}
}

func TestTable2QuickShape(t *testing.T) {
	if testing.Short() {
		t.Skip("campaigns take seconds")
	}
	sc := Scale{FigureIters: 500, Table2Iters: 4000, Reps: 1, SeedBase: 21}
	r, err := RunTable2(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.DFBugs) <= len(r.SyzBugs) {
		t.Fatalf("DF %d bugs vs Syz %d: headline shape lost",
			len(r.DFBugs), len(r.SyzBugs))
	}
	// Syzkaller must only find kernel bugs (never the HAL crashes).
	for id := range r.SyzBugs {
		switch id {
		case bugs.GraphicsHALCrash, bugs.MediaHALCrash, bugs.CameraHALCrash:
			t.Fatalf("Syzkaller found HAL bug %v", id)
		}
	}
	out := r.Render()
	if !strings.Contains(out, "Table II") || !strings.Contains(out, "total") {
		t.Fatalf("render incomplete:\n%s", out)
	}
}

func TestAsciiPlot(t *testing.T) {
	curves := map[string]struct {
		T []uint64
		V []float64
	}{}
	_ = curves
	out := asciiPlot("empty", nil, nil, 40, 8)
	if !strings.Contains(out, "no data") {
		t.Fatalf("empty plot = %q", out)
	}
}
