// Package bench is the experiment harness: it runs scaled-down campaigns
// of every fuzzer variant against the virtual devices and regenerates each
// table and figure of the paper's evaluation (Table I, Table II, Figure 4,
// Figure 5, Table III). Wall-clock hours are replaced by iteration budgets
// on the virtual-time clock; the reproduction target is the *shape* of the
// results, not absolute magnitudes (see DESIGN.md).
package bench

import (
	"fmt"

	"droidfuzz/internal/baseline"
	"droidfuzz/internal/bugs"
	"droidfuzz/internal/crash"
	"droidfuzz/internal/device"
	"droidfuzz/internal/engine"
	"droidfuzz/internal/relation"
	"droidfuzz/internal/stats"
)

// FuzzerKind selects the campaign fuzzer.
type FuzzerKind int

// Fuzzer kinds.
const (
	DroidFuzz FuzzerKind = iota
	DroidFuzzNoRel
	DroidFuzzNoHCov
	DroidFuzzD
	SyzkallerLike
	DifuzeLike
)

// String names the kind as the paper does.
func (k FuzzerKind) String() string {
	switch k {
	case DroidFuzz:
		return "DroidFuzz"
	case DroidFuzzNoRel:
		return "DF-NoRel"
	case DroidFuzzNoHCov:
		return "DF-NoHCov"
	case DroidFuzzD:
		return "DroidFuzz-D"
	case SyzkallerLike:
		return "Syzkaller"
	case DifuzeLike:
		return "Difuze"
	default:
		return fmt.Sprintf("FuzzerKind(%d)", int(k))
	}
}

// CampaignConfig describes one run.
type CampaignConfig struct {
	ModelID string
	Fuzzer  FuzzerKind
	// Iters is the iteration budget (the "hours" of the experiment).
	Iters int
	Seed  int64
}

// CampaignResult carries everything the tables and figures consume.
type CampaignResult struct {
	ModelID string
	Fuzzer  FuzzerKind
	// Kernel is the kernel-coverage-over-virtual-time curve.
	Kernel stats.Series
	// KernelCov and TotalSignal are the final accumulated counts.
	KernelCov   int
	TotalSignal int
	// PerDriver is the final distinct-PC count per driver module.
	PerDriver map[string]int
	// Bugs are the unique findings.
	Bugs []*crash.Record
	// BugIDs marks which injected Table II bugs were rediscovered.
	BugIDs map[bugs.ID]bool
	// Execs is the consumed virtual time.
	Execs uint64
	// ExtractedIfaces is Difuze's static extraction count (0 otherwise).
	ExtractedIfaces int
}

// maxCoverSite bounds per-module cover-site enumeration for the PC index.
const maxCoverSite = 512

// RunCampaign boots a fresh device and runs one campaign.
func RunCampaign(cfg CampaignConfig) (*CampaignResult, error) {
	model, err := device.ModelByID(cfg.ModelID)
	if err != nil {
		return nil, err
	}
	dev := device.New(model)

	var f baseline.Fuzzer
	ecfg := engine.Config{Seed: cfg.Seed}
	switch cfg.Fuzzer {
	case DroidFuzz:
		f, err = baseline.NewDroidFuzz(dev, relation.New(), crash.NewDedup(), ecfg)
	case DroidFuzzNoRel:
		ecfg.NoRelations = true
		f, err = baseline.NewDroidFuzz(dev, relation.New(), crash.NewDedup(), ecfg)
	case DroidFuzzNoHCov:
		ecfg.NoHALCov = true
		f, err = baseline.NewDroidFuzz(dev, relation.New(), crash.NewDedup(), ecfg)
	case DroidFuzzD:
		f, err = baseline.NewDroidFuzzD(dev, ecfg)
	case SyzkallerLike:
		f, err = baseline.NewSyzkallerLike(dev, ecfg)
	case DifuzeLike:
		f, err = baseline.NewDifuze(dev, cfg.Seed)
	default:
		return nil, fmt.Errorf("bench: unknown fuzzer kind %v", cfg.Fuzzer)
	}
	if err != nil {
		return nil, err
	}

	f.Run(cfg.Iters)

	res := &CampaignResult{
		ModelID:     cfg.ModelID,
		Fuzzer:      cfg.Fuzzer,
		KernelCov:   f.Accumulator().KernelTotal(),
		TotalSignal: f.Accumulator().Total(),
		Bugs:        f.Dedup().Records(),
		BugIDs:      make(map[bugs.ID]bool),
		Execs:       f.Execs(),
		PerDriver:   make(map[string]int),
	}
	for _, pt := range f.Accumulator().History() {
		res.Kernel.T = append(res.Kernel.T, pt.VTime)
		res.Kernel.V = append(res.Kernel.V, float64(pt.Kernel))
	}
	idx := dev.PCIndex(maxCoverSite)
	for _, pc := range f.Accumulator().KernelPCs() {
		if mod, ok := idx[pc]; ok {
			res.PerDriver[mod]++
		}
	}
	for _, r := range res.Bugs {
		if id, ok := bugs.TitleToID(r.Title); ok {
			res.BugIDs[id] = true
		}
	}
	if d, ok := f.(*baseline.Difuze); ok {
		res.ExtractedIfaces = d.ExtractedInterfaces()
	}
	return res, nil
}

// RunRepeated runs reps campaigns with consecutive seeds and returns all
// results (the paper repeats each experiment 10 times).
func RunRepeated(cfg CampaignConfig, reps int) ([]*CampaignResult, error) {
	out := make([]*CampaignResult, 0, reps)
	for r := 0; r < reps; r++ {
		c := cfg
		c.Seed = cfg.Seed + int64(r)*7919
		res, err := RunCampaign(c)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

// KernelSeries extracts the kernel-coverage curves of several runs.
func KernelSeries(runs []*CampaignResult) []stats.Series {
	out := make([]stats.Series, len(runs))
	for i, r := range runs {
		out[i] = r.Kernel
	}
	return out
}

// FinalKernel extracts the final kernel coverage of each run.
func FinalKernel(runs []*CampaignResult) []float64 {
	out := make([]float64, len(runs))
	for i, r := range runs {
		out[i] = float64(r.KernelCov)
	}
	return out
}
