package bench

import (
	"fmt"
	"sort"
	"strings"

	"droidfuzz/internal/device"
	"droidfuzz/internal/probe"
	"droidfuzz/internal/stats"
)

// Figure3Result summarizes the probing pass (Fig. 3's process) per device.
type Figure3Result struct {
	ModelID    string
	Services   []probe.ServiceReport
	Interfaces int
	Seeds      int
	// TopWeighted lists the highest-weighted interfaces (name, weight).
	TopWeighted []struct {
		Name   string
		Weight float64
	}
}

// RunFigure3 executes the probing pass on one device and reports what it
// extracted: services, interfaces, trial kernel interactions, occurrence
// weights, and distilled workload seeds.
func RunFigure3(modelID string) (*Figure3Result, error) {
	model, err := device.ModelByID(modelID)
	if err != nil {
		return nil, err
	}
	dev := device.New(model)
	pr, err := probe.Run(dev, probe.Options{})
	if err != nil {
		return nil, err
	}
	out := &Figure3Result{
		ModelID:    modelID,
		Services:   pr.Services,
		Interfaces: len(pr.Interfaces),
		Seeds:      len(pr.Seeds),
	}
	type wi struct {
		name   string
		weight float64
	}
	ws := make([]wi, 0, len(pr.Interfaces))
	for _, d := range pr.Interfaces {
		ws = append(ws, wi{d.Name, d.Weight})
	}
	sort.Slice(ws, func(i, j int) bool {
		if ws[i].weight != ws[j].weight {
			return ws[i].weight > ws[j].weight
		}
		return ws[i].name < ws[j].name
	})
	for i := 0; i < len(ws) && i < 8; i++ {
		out.TopWeighted = append(out.TopWeighted, struct {
			Name   string
			Weight float64
		}{ws[i].name, ws[i].weight})
	}
	return out, nil
}

// Render prints the probing summary.
func (r *Figure3Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3 (probing process) on device %s:\n", r.ModelID)
	fmt.Fprintf(&b, "  services probed: %d, interfaces extracted: %d, workload seeds: %d\n",
		len(r.Services), r.Interfaces, r.Seeds)
	for _, s := range r.Services {
		fmt.Fprintf(&b, "  %-42s methods=%2d trial-syscalls=%d\n",
			s.Descriptor, s.Methods, s.TrialEvents)
	}
	b.WriteString("  top-weighted interfaces (normalized occurrence):\n")
	for _, tw := range r.TopWeighted {
		fmt.Fprintf(&b, "    %-48s %.2f\n", tw.Name, tw.Weight)
	}
	return b.String()
}

// Figure4Result carries the DroidFuzz-vs-Syzkaller coverage curves.
type Figure4Result struct {
	// Devices plotted (the paper shows A1, A2, B, C1).
	Devices []string
	// Curves maps device -> fuzzer name -> mean coverage series.
	Curves map[string]map[string]stats.Series
	// FinalGainPct maps device -> percent DroidFuzz leads Syzkaller at the
	// end of the run.
	FinalGainPct map[string]float64
	// PerDriverGainPct is the average per-driver kernel coverage gain
	// across all plotted devices (the paper's §I claim of +17%).
	PerDriverGainPct float64
}

// figure4Devices mirrors the paper's plotted subset.
var figure4Devices = []string{"A1", "A2", "B", "C1"}

// RunFigure4 reproduces Figure 4: mean kernel coverage over virtual time of
// DroidFuzz vs Syzkaller on devices A1, A2, B, C1, averaged over Reps runs.
func RunFigure4(sc Scale) (*Figure4Result, error) {
	out := &Figure4Result{
		Devices:      figure4Devices,
		Curves:       make(map[string]map[string]stats.Series),
		FinalGainPct: make(map[string]float64),
	}
	var gainSum float64
	var gainN int
	for _, dev := range figure4Devices {
		out.Curves[dev] = make(map[string]stats.Series)
		var finals [2]float64
		perDriver := make(map[string][2]float64)
		for i, fk := range []FuzzerKind{DroidFuzz, SyzkallerLike} {
			runs, err := RunRepeated(CampaignConfig{
				ModelID: dev, Fuzzer: fk, Iters: sc.FigureIters,
				Seed: sc.SeedBase,
			}, sc.Reps)
			if err != nil {
				return nil, err
			}
			maxT := uint64(0)
			for _, r := range runs {
				if r.Execs > maxT {
					maxT = r.Execs
				}
			}
			out.Curves[dev][fk.String()] = stats.MeanSeries(KernelSeries(runs), 32, maxT)
			finals[i] = stats.Mean(FinalKernel(runs))
			for _, r := range runs {
				for mod, cov := range r.PerDriver {
					v := perDriver[mod]
					v[i] += float64(cov) / float64(len(runs))
					perDriver[mod] = v
				}
			}
		}
		if finals[1] > 0 {
			out.FinalGainPct[dev] = 100 * (finals[0] - finals[1]) / finals[1]
		}
		for _, v := range perDriver {
			if v[1] > 0 {
				gainSum += 100 * (v[0] - v[1]) / v[1]
				gainN++
			}
		}
	}
	if gainN > 0 {
		out.PerDriverGainPct = gainSum / float64(gainN)
	}
	return out, nil
}

// Render prints the four coverage plots and the per-driver gain summary.
func (r *Figure4Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 4: Coverage comparison between DroidFuzz and Syzkaller (48h budget)\n\n")
	for _, dev := range r.Devices {
		names := []string{DroidFuzz.String(), SyzkallerLike.String()}
		b.WriteString(asciiPlot("Device "+dev, names, r.Curves[dev], 64, 12))
		fmt.Fprintf(&b, "        DroidFuzz final lead over Syzkaller: %+.1f%%\n\n",
			r.FinalGainPct[dev])
	}
	fmt.Fprintf(&b, "Average per-driver kernel coverage gain (paper: +17%%): %+.1f%%\n",
		r.PerDriverGainPct)
	return b.String()
}

// Figure5Result carries the Difuze comparison curves.
type Figure5Result struct {
	Devices []string
	Curves  map[string]map[string]stats.Series
	// Extracted maps device -> Difuze's extracted interface count (the
	// paper reports 285 and 232 on its A1/A2 firmwares).
	Extracted map[string]int
	// DFDLeadPct maps device -> percent DroidFuzz-D leads Difuze at the
	// end (the paper reports 34%).
	DFDLeadPct map[string]float64
}

// figure5Devices mirrors the paper (Difuze was only adapted to A1 and A2).
var figure5Devices = []string{"A1", "A2"}

// RunFigure5 reproduces Figure 5: DroidFuzz, DroidFuzz-D (ioctl-gated), and
// Difuze on devices A1 and A2.
func RunFigure5(sc Scale) (*Figure5Result, error) {
	out := &Figure5Result{
		Devices:    figure5Devices,
		Curves:     make(map[string]map[string]stats.Series),
		Extracted:  make(map[string]int),
		DFDLeadPct: make(map[string]float64),
	}
	for _, dev := range figure5Devices {
		out.Curves[dev] = make(map[string]stats.Series)
		finals := make(map[FuzzerKind]float64)
		for _, fk := range []FuzzerKind{DroidFuzz, DroidFuzzD, DifuzeLike} {
			runs, err := RunRepeated(CampaignConfig{
				ModelID: dev, Fuzzer: fk, Iters: sc.FigureIters,
				Seed: sc.SeedBase,
			}, sc.Reps)
			if err != nil {
				return nil, err
			}
			maxT := uint64(0)
			for _, r := range runs {
				if r.Execs > maxT {
					maxT = r.Execs
				}
				if r.ExtractedIfaces > 0 {
					out.Extracted[dev] = r.ExtractedIfaces
				}
			}
			out.Curves[dev][fk.String()] = stats.MeanSeries(KernelSeries(runs), 32, maxT)
			finals[fk] = stats.Mean(FinalKernel(runs))
		}
		if finals[DifuzeLike] > 0 {
			out.DFDLeadPct[dev] = 100 * (finals[DroidFuzzD] - finals[DifuzeLike]) / finals[DifuzeLike]
		}
	}
	return out, nil
}

// Render prints the Figure 5 plots and headline numbers.
func (r *Figure5Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 5: Coverage comparison between DroidFuzz, Difuze, and DroidFuzz-D\n\n")
	for _, dev := range r.Devices {
		names := []string{DroidFuzz.String(), DroidFuzzD.String(), DifuzeLike.String()}
		b.WriteString(asciiPlot("Device "+dev, names, r.Curves[dev], 64, 12))
		fmt.Fprintf(&b, "        Difuze extracted %d driver interfaces; DroidFuzz-D leads Difuze by %+.1f%% (paper: +34%%)\n\n",
			r.Extracted[dev], r.DFDLeadPct[dev])
	}
	return b.String()
}
