package bench

import (
	"fmt"
	"sort"
	"strings"

	"droidfuzz/internal/stats"
)

// plotMarks are assigned to series in insertion order.
var plotMarks = []byte{'*', 'o', '+', 'x', '#', '@'}

// asciiPlot renders coverage-over-virtual-time curves as a text chart, the
// stand-in for the paper's line figures. Series are drawn in the order of
// the names slice.
func asciiPlot(title string, names []string, curves map[string]stats.Series, width, height int) string {
	if width <= 0 {
		width = 64
	}
	if height <= 0 {
		height = 14
	}
	var maxV float64
	var maxT uint64
	for _, s := range curves {
		for i, v := range s.V {
			if v > maxV {
				maxV = v
			}
			if s.T[i] > maxT {
				maxT = s.T[i]
			}
		}
	}
	if maxV == 0 || maxT == 0 {
		return title + ": (no data)\n"
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for si, name := range names {
		s, ok := curves[name]
		if !ok {
			continue
		}
		mark := plotMarks[si%len(plotMarks)]
		for x := 0; x < width; x++ {
			t := maxT * uint64(x+1) / uint64(width)
			v := s.At(t)
			y := int(v / maxV * float64(height-1))
			if y >= height {
				y = height - 1
			}
			row := height - 1 - y
			grid[row][x] = mark
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s  (y: kernel coverage, max %.0f; x: virtual time, %d execs)\n",
		title, maxV, maxT)
	for i, row := range grid {
		label := "        "
		if i == 0 {
			label = fmt.Sprintf("%7.0f ", maxV)
		} else if i == height-1 {
			label = "      0 "
		}
		b.WriteString(label + "|" + string(row) + "\n")
	}
	b.WriteString("        +" + strings.Repeat("-", width) + "\n")
	legend := make([]string, 0, len(names))
	for si, name := range names {
		final := 0.0
		if s, ok := curves[name]; ok && len(s.V) > 0 {
			final = s.V[len(s.V)-1]
		}
		legend = append(legend, fmt.Sprintf("%c %s (final %.0f)",
			plotMarks[si%len(plotMarks)], name, final))
	}
	b.WriteString("        " + strings.Join(legend, "   ") + "\n")
	return b.String()
}

// sortedKeys returns map keys sorted, for deterministic rendering.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
