package bench

import (
	"fmt"
	"strings"
	"testing"

	"droidfuzz/internal/adb"
	"droidfuzz/internal/bugs"
	"droidfuzz/internal/device"
	"droidfuzz/internal/dsl"
	"droidfuzz/internal/probe"
)

// reproCase is one hand-written reproducer for an injected Table II bug,
// executed against the device model that carries it.
type reproCase struct {
	id      bugs.ID
	modelID string
	prog    string
}

// The reproducers document the exact trigger chains; they double as the
// ground truth that every injected bug is reachable through the same
// executor surface the fuzzer uses.
var reproCases = []reproCase{
	{bugs.TCPCProbe, "A1", `r0 = hal$usb.enableContract(millivolts=0x2328)
hal$usb.startToggling()
hal$usb.reprobeChip()
`},
	{bugs.GraphicsHALCrash, "A1", `r0 = hal$graphics.composer.createLayer(width=0x40, height=0x40, format=0x1)
hal$graphics.composer.destroyLayer(layer=r0)
hal$graphics.composer.presentDisplay()
`},
	{bugs.LockdepSubclass, "A1", `r0 = hal$graphics.composer.createLayer(width=0x40, height=0x40, format=0x1)
r1 = hal$graphics.composer.createLayer(width=0x40, height=0x40, format=0x1)
r2 = hal$graphics.composer.createLayer(width=0x40, height=0x40, format=0x1)
r3 = hal$graphics.composer.createLayer(width=0x40, height=0x40, format=0x1)
r4 = hal$graphics.composer.createLayer(width=0x40, height=0x40, format=0x1)
r5 = hal$graphics.composer.createLayer(width=0x40, height=0x40, format=0x1)
r6 = hal$graphics.composer.createLayer(width=0x40, height=0x40, format=0x1)
r7 = hal$graphics.composer.createLayer(width=0x40, height=0x40, format=0x1)
hal$graphics.composer.presentDisplay()
`},
	{bugs.TCPCVbus, "A1", `hal$usb.setPortRole(role=0x1)
hal$usb.setAlertMask(mask=0x8)
hal$usb.enableContract(millivolts=0x1388)
`},
	{bugs.AudioHang, "A2", `r0 = hal$media.codec.createCodec(mime="audio/raw", lowLatency=0x1, periodHint=0x100)
hal$media.codec.queueBuffer(codec=r0, data=b"00112233")
hal$media.codec.drain(codec=r0)
`},
	{bugs.MediaHALCrash, "A2", `r0 = hal$media.codec.createCodec(mime="audio/aac", lowLatency=0x0, periodHint=0x400)
hal$media.codec.flush(codec=r0)
hal$media.codec.queueBuffer(codec=r0, data=b"` + strings.Repeat("ab", 600) + `")
`},
	{bugs.HCICodecs, "A2", `hal$bluetooth.enable()
hal$bluetooth.startDiscovery(mode=0x2)
hal$bluetooth.disable()
hal$bluetooth.getSupportedCodecs()
`},
	{bugs.L2capDisconn, "B", `r0 = open$l2cap(path="/dev/l2cap0")
ioctl$L2CAP_DISCONNECT(fd=r0, req=0xa302)
`},
	{bugs.CameraHALCrash, "C1", `r0 = hal$camera.provider.openStream(width=0x500, height=0x2d0, format=0x3231564e)
hal$camera.provider.startCapture(stream=r0)
hal$camera.provider.setParameter(stream=r0, id=0xd, value=0x5b)
hal$camera.provider.captureFrame(stream=r0)
`},
	{bugs.RateInit, "C2", `r0 = open$wlan(path="/dev/wlan0")
ioctl$WLAN_SCAN(fd=r0, req=0xa701)
ioctl$WLAN_ASSOC(fd=r0, req=0xa702, bssid=0x42)
ioctl$WLAN_DISASSOC(fd=r0, req=0xa703)
ioctl$WLAN_SET_RATE(fd=r0, req=0xa704, mask=0x0)
ioctl$WLAN_ASSOC(fd=r0, req=0xa702, bssid=0x42)
`},
	{bugs.BTAcceptUnlink, "D", `hal$bluetooth.enable()
r1 = hal$bluetooth.connect(peer=0x42)
hal$bluetooth.disconnect(conn=r1)
hal$bluetooth.acceptConnection()
`},
	{bugs.V4LQuerycap, "E", `r0 = open$video(path="/dev/video0")
ioctl$VIDIOC_S_FMT(fd=r0, req=0xa402, width=0x280, height=0x1e0, pixfmt=0x3231564e)
ioctl$VIDIOC_REQBUFS(fd=r0, req=0xa403, count=0x4)
ioctl$VIDIOC_STREAMON(fd=r0, req=0xa406)
ioctl$VIDIOC_QUERYCAP(fd=r0, req=0xa401, reserved=0x1)
`},
}

func probedBroker(t *testing.T, modelID string) *adb.Broker {
	t.Helper()
	m, err := device.ModelByID(modelID)
	if err != nil {
		t.Fatal(err)
	}
	dev := device.New(m)
	target, err := dsl.NewTarget(dev.SyscallDescs()...)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := probe.Run(dev, probe.Options{})
	if err != nil {
		t.Fatal(err)
	}
	target, err = target.Extend(pr.Interfaces...)
	if err != nil {
		t.Fatal(err)
	}
	return adb.NewBroker(dev, target)
}

// TestInjectedBugReproducers executes a hand-written reproducer for all 12
// Table II bugs and checks the expected crash title appears.
func TestInjectedBugReproducers(t *testing.T) {
	for _, c := range reproCases {
		t.Run(fmt.Sprintf("bug%02d_%s", int(c.id), c.modelID), func(t *testing.T) {
			b := probedBroker(t, c.modelID)
			res, err := b.Exec(adb.ExecRequest{ProgText: c.prog})
			if err != nil {
				t.Fatalf("exec: %v", err)
			}
			for _, cr := range res.Crashes {
				if id, ok := bugs.TitleToID(cr.Title); ok && id == c.id {
					return
				}
			}
			t.Fatalf("bug %v not triggered; crashes: %+v", c.id, res.Crashes)
		})
	}
}

// TestReproducersNeedTheirBugFlag re-runs every reproducer on a device
// model that does NOT carry the bug (or carries it disabled) and checks no
// injected bug fires — the triggers are genuinely gated per firmware.
func TestReproducersNeedTheirBugFlag(t *testing.T) {
	// Device E carries only V4LQuerycap; run all other reproducers whose
	// interfaces exist there against it.
	other := map[bugs.ID]string{
		bugs.TCPCProbe:    "C1", // C1 has tcpc+usb HAL but not this bug
		bugs.TCPCVbus:     "C1",
		bugs.AudioHang:    "C2", // C2 has media HAL but not the hang
		bugs.HCICodecs:    "B",
		bugs.L2capDisconn: "D",
		bugs.RateInit:     "B",
		bugs.V4LQuerycap:  "B",
	}
	for _, c := range reproCases {
		modelID, ok := other[c.id]
		if !ok {
			continue
		}
		t.Run(fmt.Sprintf("bug%02d_on_%s", int(c.id), modelID), func(t *testing.T) {
			b := probedBroker(t, modelID)
			res, err := b.Exec(adb.ExecRequest{ProgText: c.prog})
			if err != nil {
				t.Fatalf("exec: %v", err)
			}
			for _, cr := range res.Crashes {
				if id, ok := bugs.TitleToID(cr.Title); ok && id == c.id {
					t.Fatalf("bug %v fired on clean firmware %s", c.id, modelID)
				}
			}
		})
	}
}
