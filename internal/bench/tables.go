package bench

import (
	"fmt"
	"sort"
	"strings"

	"droidfuzz/internal/bugs"
	"droidfuzz/internal/crash"
	"droidfuzz/internal/device"
	"droidfuzz/internal/stats"
)

// Scale sets the iteration and repetition budgets of the experiments. The
// paper's 48-hour and 144-hour wall-clock campaigns become virtual-time
// iteration budgets at a 1:3 ratio.
type Scale struct {
	// FigureIters is the 48 h analog used by Figures 4/5 and Table III.
	FigureIters int
	// Table2Iters is the 144 h analog used by the bug-detection table.
	Table2Iters int
	// Reps is the number of repetitions (the paper uses 10).
	Reps int
	// SeedBase offsets campaign seeds.
	SeedBase int64
}

// DefaultScale is the full evaluation budget (minutes of wall clock).
func DefaultScale() Scale {
	return Scale{FigureIters: 20000, Table2Iters: 60000, Reps: 10, SeedBase: 1000}
}

// QuickScale is a reduced budget for tests and smoke runs.
func QuickScale() Scale {
	return Scale{FigureIters: 2500, Table2Iters: 6000, Reps: 3, SeedBase: 1000}
}

// Table1 renders the Table I device listing from the device models.
func Table1() string {
	var b strings.Builder
	b.WriteString("Table I: List of Embedded Android Devices Tested\n")
	fmt.Fprintf(&b, "%-4s %-18s %-13s %-8s %-5s %s\n",
		"ID", "Device", "Vendor", "Arch.", "AOSP", "Kernel")
	for _, m := range device.Models() {
		fmt.Fprintf(&b, "%-4s %-18s %-13s %-8s %-5d %s\n",
			m.ID, m.Name, m.Vendor, m.Arch, m.AOSP, m.Kernel)
	}
	return b.String()
}

// Table2Result carries the bug-detection experiment outcome.
type Table2Result struct {
	// DFRecords are DroidFuzz's unique findings across all devices.
	DFRecords []*crash.Record
	// DFBugs / SyzBugs mark which injected Table II bugs each fuzzer
	// rediscovered (union over devices).
	DFBugs, SyzBugs map[bugs.ID]bool
	// PerDevice maps model ID -> bug ids DroidFuzz found there.
	PerDevice map[string][]bugs.ID
}

// RunTable2 reproduces Table II: DroidFuzz fuzzes every device at the 144 h
// budget; Syzkaller runs the same devices for the comparison count ("where
// Syzkaller was only able to find 2, both of which are from the kernel").
func RunTable2(sc Scale) (*Table2Result, error) {
	out := &Table2Result{
		DFBugs:    make(map[bugs.ID]bool),
		SyzBugs:   make(map[bugs.ID]bool),
		PerDevice: make(map[string][]bugs.ID),
	}
	for i, m := range device.Models() {
		// Each device's 144 h campaign is an independent run.
		seed := sc.SeedBase + int64(i)*31
		df, err := RunCampaign(CampaignConfig{
			ModelID: m.ID, Fuzzer: DroidFuzz, Iters: sc.Table2Iters,
			Seed: seed,
		})
		if err != nil {
			return nil, err
		}
		out.DFRecords = append(out.DFRecords, df.Bugs...)
		var ids []bugs.ID
		for id := range df.BugIDs {
			out.DFBugs[id] = true
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		out.PerDevice[m.ID] = ids

		syz, err := RunCampaign(CampaignConfig{
			ModelID: m.ID, Fuzzer: SyzkallerLike, Iters: sc.Table2Iters,
			Seed: seed,
		})
		if err != nil {
			return nil, err
		}
		for id := range syz.BugIDs {
			out.SyzBugs[id] = true
		}
	}
	return out, nil
}

// Render prints the Table II analog plus the found/missed summary.
func (r *Table2Result) Render() string {
	var b strings.Builder
	b.WriteString("Table II: List of All New Bugs Found By DroidFuzz\n")
	b.WriteString(crash.Table(r.DFRecords))
	fmt.Fprintf(&b, "\nInjected-bug recall (paper: DroidFuzz 12, Syzkaller 2):\n")
	fmt.Fprintf(&b, "%-4s %-55s %-10s %s\n", "No", "Bug", "DroidFuzz", "Syzkaller")
	df, syz := 0, 0
	for _, id := range bugs.All() {
		mark := func(m map[bugs.ID]bool) string {
			if m[id] {
				return "FOUND"
			}
			return "-"
		}
		if r.DFBugs[id] {
			df++
		}
		if r.SyzBugs[id] {
			syz++
		}
		fmt.Fprintf(&b, "%-4d %-55s %-10s %s\n", int(id), id.String(),
			mark(r.DFBugs), mark(r.SyzBugs))
	}
	fmt.Fprintf(&b, "total%51s %-10d %d\n", "", df, syz)
	return b.String()
}

// Table3Result carries the ablation experiment outcome.
type Table3Result struct {
	// Devices in Table I order.
	Devices []string
	// Mean final kernel coverage per device per fuzzer.
	Mean map[string]map[FuzzerKind]float64
	// Std per device per fuzzer.
	Std map[string]map[FuzzerKind]float64
	// PvsDF is the Mann-Whitney p-value of each variant against DroidFuzz.
	PvsDF map[string]map[FuzzerKind]float64
}

// table3Fuzzers are the Table III columns.
var table3Fuzzers = []FuzzerKind{DroidFuzz, DroidFuzzNoRel, DroidFuzzNoHCov, SyzkallerLike}

// RunTable3 reproduces Table III: 48 h-budget campaigns of DroidFuzz, the
// two ablations, and Syzkaller on all seven devices, repeated Reps times,
// with Mann-Whitney significance against full DroidFuzz.
func RunTable3(sc Scale) (*Table3Result, error) {
	out := &Table3Result{
		Mean:  make(map[string]map[FuzzerKind]float64),
		Std:   make(map[string]map[FuzzerKind]float64),
		PvsDF: make(map[string]map[FuzzerKind]float64),
	}
	for _, m := range device.Models() {
		out.Devices = append(out.Devices, m.ID)
		out.Mean[m.ID] = make(map[FuzzerKind]float64)
		out.Std[m.ID] = make(map[FuzzerKind]float64)
		out.PvsDF[m.ID] = make(map[FuzzerKind]float64)
		finals := make(map[FuzzerKind][]float64)
		for _, fk := range table3Fuzzers {
			runs, err := RunRepeated(CampaignConfig{
				ModelID: m.ID, Fuzzer: fk, Iters: sc.FigureIters,
				Seed: sc.SeedBase,
			}, sc.Reps)
			if err != nil {
				return nil, err
			}
			finals[fk] = FinalKernel(runs)
			out.Mean[m.ID][fk] = stats.Mean(finals[fk])
			out.Std[m.ID][fk] = stats.StdDev(finals[fk])
		}
		for _, fk := range table3Fuzzers[1:] {
			_, p := stats.MannWhitneyU(finals[DroidFuzz], finals[fk])
			out.PvsDF[m.ID][fk] = p
		}
	}
	return out, nil
}

// Render prints the Table III analog; variants whose difference from
// DroidFuzz is not significant at α=0.05 are marked with '†', as the paper
// labels non-significant groups explicitly.
func (r *Table3Result) Render() string {
	var b strings.Builder
	b.WriteString("Table III: Coverage Statistics for Ablation Tests (48h budget)\n")
	fmt.Fprintf(&b, "%-7s", "Device")
	for _, fk := range table3Fuzzers {
		fmt.Fprintf(&b, " %14s", fk)
	}
	b.WriteString("\n")
	for _, dev := range r.Devices {
		fmt.Fprintf(&b, "%-7s", dev)
		for _, fk := range table3Fuzzers {
			cell := fmt.Sprintf("%.0f", r.Mean[dev][fk])
			if fk != DroidFuzz && r.PvsDF[dev][fk] >= 0.05 {
				cell += "†"
			}
			fmt.Fprintf(&b, " %14s", cell)
		}
		b.WriteString("\n")
	}
	b.WriteString("† not statistically significant vs DroidFuzz (Mann-Whitney U, α=0.05)\n")
	return b.String()
}
