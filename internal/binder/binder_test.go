package binder

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestParcelRoundTrip(t *testing.T) {
	p := NewParcel()
	p.WriteUint32(42)
	p.WriteUint64(1 << 40)
	p.WriteInt32(-7)
	p.WriteString("hello")
	p.WriteBytes([]byte{1, 2, 3})

	q := FromBytes(p.Bytes())
	if v, _ := q.ReadUint32(); v != 42 {
		t.Fatalf("u32 = %d", v)
	}
	if v, _ := q.ReadUint64(); v != 1<<40 {
		t.Fatalf("u64 = %d", v)
	}
	if v, _ := q.ReadInt32(); v != -7 {
		t.Fatalf("i32 = %d", v)
	}
	if s, _ := q.ReadString(); s != "hello" {
		t.Fatalf("str = %q", s)
	}
	if b, _ := q.ReadBytes(); !reflect.DeepEqual(b, []byte{1, 2, 3}) {
		t.Fatalf("bytes = %v", b)
	}
	if q.Remaining() != 0 {
		t.Fatalf("remaining = %d", q.Remaining())
	}
}

func TestParcelShortReads(t *testing.T) {
	p := FromBytes([]byte{1, 2})
	if _, err := p.ReadUint32(); err != ErrShortParcel {
		t.Fatal("short u32 not detected")
	}
	q := NewParcel()
	q.WriteUint32(100) // claims 100-byte string with no payload
	if _, err := q.ReadString(); err != ErrShortParcel {
		t.Fatal("short string not detected")
	}
	r := NewParcel()
	r.WriteUint32(10)
	if _, err := r.ReadBytes(); err != ErrShortParcel {
		t.Fatal("short bytes not detected")
	}
}

func TestParcelRewind(t *testing.T) {
	p := NewParcel()
	p.WriteUint32(9)
	p.ReadUint32()
	p.Rewind()
	if v, _ := p.ReadUint32(); v != 9 {
		t.Fatal("rewind broken")
	}
}

func TestMethodSigRoundTripProperty(t *testing.T) {
	f := func(names []string, codes []uint32, rets []string) bool {
		n := len(names)
		if len(codes) < n {
			n = len(codes)
		}
		if len(rets) < n {
			n = len(rets)
		}
		in := make([]MethodSig, 0, n)
		for i := 0; i < n; i++ {
			in = append(in, MethodSig{
				Name: names[i], Code: codes[i], Ret: rets[i],
				Args: []ArgSig{
					{Name: "a", Kind: "int", Min: uint64(i), Max: uint64(i) + 10},
					{Name: "b", Kind: "flags", Choices: []uint64{1, 2, uint64(i)}},
					{Name: "c", Kind: "buffer", BufLen: 32},
					{Name: "d", Kind: "string", StrChoices: []string{"x", names[i]}},
					{Name: "e", Kind: "resource", Res: rets[i]},
				},
			})
		}
		p := NewParcel()
		MarshalMethods(p, in)
		out, err := UnmarshalMethods(FromBytes(p.Bytes()))
		if err != nil {
			return false
		}
		if len(in) == 0 {
			return len(out) == 0
		}
		return reflect.DeepEqual(in, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalTruncated(t *testing.T) {
	p := NewParcel()
	MarshalMethods(p, []MethodSig{{Name: "m", Code: 1}})
	raw := p.Bytes()
	for cut := 1; cut < len(raw); cut++ {
		if _, err := UnmarshalMethods(FromBytes(raw[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

type fakeService struct {
	desc  string
	calls int
}

func (s *fakeService) Descriptor() string { return s.desc }

func (s *fakeService) Transact(code uint32, in, out *Parcel) Status {
	s.calls++
	out.WriteUint32(code)
	return StatusOK
}

func TestServiceManager(t *testing.T) {
	sm := NewServiceManager()
	svc := &fakeService{desc: "android.hardware.test"}
	sm.Register(svc)
	if sm.Get("android.hardware.test") != svc {
		t.Fatal("get failed")
	}
	if sm.Get("nope") != nil {
		t.Fatal("phantom service")
	}
	if got := sm.List(); len(got) != 1 || got[0] != "android.hardware.test" {
		t.Fatalf("list = %v", got)
	}
}

func TestServiceManagerDuplicatePanics(t *testing.T) {
	sm := NewServiceManager()
	sm.Register(&fakeService{desc: "dup"})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	sm.Register(&fakeService{desc: "dup"})
}

func TestCallRoutingAndObserver(t *testing.T) {
	sm := NewServiceManager()
	svc := &fakeService{desc: "svc"}
	sm.Register(svc)

	var seenDesc string
	var seenCode uint32
	var seenLen int
	sm.SetObserver(func(d string, c uint32, payload []byte) {
		seenDesc, seenCode, seenLen = d, c, len(payload)
	})

	in, out := NewParcel(), NewParcel()
	in.WriteUint64(5)
	if st := sm.Call("svc", 3, in, out); st != StatusOK {
		t.Fatalf("status = %v", st)
	}
	if svc.calls != 1 {
		t.Fatal("service not invoked")
	}
	if seenDesc != "svc" || seenCode != 3 || seenLen != 8 {
		t.Fatalf("observer saw %q/%d/%d", seenDesc, seenCode, seenLen)
	}

	if st := sm.Call("gone", 1, in, out); st != StatusDeadObject {
		t.Fatalf("unknown service status = %v", st)
	}
	sm.SetObserver(nil)
	sm.Call("svc", 4, NewParcel(), NewParcel())
	if seenCode != 3 {
		t.Fatal("observer fired after removal")
	}
}

func TestStatusStrings(t *testing.T) {
	cases := map[Status]string{
		StatusOK:                 "OK",
		StatusBadValue:           "BAD_VALUE",
		StatusUnknownTransaction: "UNKNOWN_TRANSACTION",
		StatusDeadObject:         "DEAD_OBJECT",
		StatusFailed:             "FAILED_TRANSACTION",
	}
	for st, want := range cases {
		if st.String() != want {
			t.Errorf("%d = %q, want %q", st, st.String(), want)
		}
	}
}
