package binder

// Observer is notified of every transaction routed through a
// ServiceManager-mediated call, receiving the raw request payload. The
// probing pass installs one to count interface occurrences and harvest the
// actual IPC argument values while the framework exercises high-level APIs
// (paper §IV-B: "extracts the actual IPC data between the HAL and the Poke
// App, and filters out relevant interfaces and arguments").
type Observer func(descriptor string, code uint32, payload []byte)

// SetObserver installs the transaction observer (nil to remove).
func (sm *ServiceManager) SetObserver(o Observer) {
	sm.mu.Lock()
	sm.observer = o
	sm.mu.Unlock()
	sm.Touch()
}

func (sm *ServiceManager) notify(descriptor string, code uint32, payload []byte) {
	sm.mu.Lock()
	o := sm.observer
	sm.mu.Unlock()
	if o != nil {
		o(descriptor, code, payload)
	}
}

// Call routes one transaction to the named service, the way a client
// process transacts through a binder handle obtained from ServiceManager.
// It returns StatusDeadObject for unknown descriptors (the handle the
// client held no longer resolves).
func (sm *ServiceManager) Call(descriptor string, code uint32, in, out *Parcel) Status {
	svc := sm.Get(descriptor)
	if svc == nil {
		return StatusDeadObject
	}
	sm.notify(descriptor, code, in.Bytes())
	return svc.Transact(code, in, out)
}
