// Package binder models the Android Binder IPC substrate: Parcel
// marshaling, a ServiceManager registry, and transaction dispatch to HAL
// services. The probing pass (paper §IV-B, Fig. 3) observes this layer:
// the Poke application marshals trial parameters through ServiceManager
// reflection, and the prober extracts the actual IPC data exchanged with
// each HAL.
package binder

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrShortParcel is returned when a read runs past the parcel payload.
var ErrShortParcel = errors.New("binder: parcel too short")

// Parcel is a Binder data container with sequential typed reads and writes,
// little-endian like the real thing.
type Parcel struct {
	buf []byte
	r   int
}

// NewParcel returns an empty parcel.
func NewParcel() *Parcel { return &Parcel{} }

// FromBytes wraps raw payload bytes for reading.
func FromBytes(b []byte) *Parcel {
	return &Parcel{buf: append([]byte(nil), b...)}
}

// Bytes returns the raw payload.
func (p *Parcel) Bytes() []byte { return p.buf }

// Len returns the payload length.
func (p *Parcel) Len() int { return len(p.buf) }

// Remaining returns the number of unread bytes.
func (p *Parcel) Remaining() int { return len(p.buf) - p.r }

// Rewind resets the read cursor.
func (p *Parcel) Rewind() { p.r = 0 }

// WriteUint32 appends a 32-bit value.
func (p *Parcel) WriteUint32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	p.buf = append(p.buf, b[:]...)
}

// WriteUint64 appends a 64-bit value.
func (p *Parcel) WriteUint64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	p.buf = append(p.buf, b[:]...)
}

// WriteInt32 appends a signed 32-bit value.
func (p *Parcel) WriteInt32(v int32) { p.WriteUint32(uint32(v)) }

// WriteString appends a length-prefixed UTF-8 string.
func (p *Parcel) WriteString(s string) {
	p.WriteUint32(uint32(len(s)))
	p.buf = append(p.buf, s...)
}

// WriteBytes appends a length-prefixed byte blob.
func (p *Parcel) WriteBytes(b []byte) {
	p.WriteUint32(uint32(len(b)))
	p.buf = append(p.buf, b...)
}

// ReadUint32 consumes a 32-bit value.
func (p *Parcel) ReadUint32() (uint32, error) {
	if p.Remaining() < 4 {
		return 0, ErrShortParcel
	}
	v := binary.LittleEndian.Uint32(p.buf[p.r:])
	p.r += 4
	return v, nil
}

// ReadUint64 consumes a 64-bit value.
func (p *Parcel) ReadUint64() (uint64, error) {
	if p.Remaining() < 8 {
		return 0, ErrShortParcel
	}
	v := binary.LittleEndian.Uint64(p.buf[p.r:])
	p.r += 8
	return v, nil
}

// ReadInt32 consumes a signed 32-bit value.
func (p *Parcel) ReadInt32() (int32, error) {
	v, err := p.ReadUint32()
	return int32(v), err
}

// ReadString consumes a length-prefixed string.
func (p *Parcel) ReadString() (string, error) {
	n, err := p.ReadUint32()
	if err != nil {
		return "", err
	}
	if uint32(p.Remaining()) < n {
		return "", ErrShortParcel
	}
	s := string(p.buf[p.r : p.r+int(n)])
	p.r += int(n)
	return s, nil
}

// ReadBytes consumes a length-prefixed blob.
func (p *Parcel) ReadBytes() ([]byte, error) {
	n, err := p.ReadUint32()
	if err != nil {
		return nil, err
	}
	if uint32(p.Remaining()) < n {
		return nil, ErrShortParcel
	}
	b := append([]byte(nil), p.buf[p.r:p.r+int(n)]...)
	p.r += int(n)
	return b, nil
}

// String summarizes the parcel for logs.
func (p *Parcel) String() string {
	return fmt.Sprintf("binder.Parcel(%d bytes, cursor %d)", len(p.buf), p.r)
}
