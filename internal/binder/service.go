package binder

import (
	"fmt"
	"sort"
	"sync"

	"droidfuzz/internal/snap"
)

// Status is a Binder transaction status code.
type Status int32

const (
	// StatusOK is a successful transaction.
	StatusOK Status = 0
	// StatusBadValue signals rejected arguments (BAD_VALUE).
	StatusBadValue Status = -22
	// StatusUnknownTransaction signals an unhandled code.
	StatusUnknownTransaction Status = -74
	// StatusDeadObject signals the remote process died (DEAD_OBJECT).
	StatusDeadObject Status = -32
	// StatusFailed is a generic failure (FAILED_TRANSACTION).
	StatusFailed Status = -29
)

// String names the status.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "OK"
	case StatusBadValue:
		return "BAD_VALUE"
	case StatusUnknownTransaction:
		return "UNKNOWN_TRANSACTION"
	case StatusDeadObject:
		return "DEAD_OBJECT"
	case StatusFailed:
		return "FAILED_TRANSACTION"
	default:
		return fmt.Sprintf("Status(%d)", int32(s))
	}
}

// InterfaceTransaction is the reserved code through which a service reports
// its method table, mirroring Android's INTERFACE_TRANSACTION reflection
// that the Poke application requests via ServiceManager (paper Fig. 3).
const InterfaceTransaction uint32 = 0x5f4e5446 // '_NTF'

// Service is a Binder-reachable HAL service endpoint.
type Service interface {
	// Descriptor returns the interface descriptor, e.g.
	// "android.hardware.graphics.composer".
	Descriptor() string
	// Transact dispatches one transaction. Implementations may panic to
	// model native crashes; the hosting process wrapper recovers.
	Transact(code uint32, in, out *Parcel) Status
}

// ServiceManager is the device-wide service registry, the analog of
// Android's servicemanager/hwservicemanager that lshal enumerates.
type ServiceManager struct {
	snap.Dirty

	mu       sync.Mutex
	services map[string]Service
	observer Observer
}

// NewServiceManager returns an empty registry.
func NewServiceManager() *ServiceManager {
	return &ServiceManager{services: make(map[string]Service)}
}

// Register adds a service under its descriptor; duplicates panic (the
// device's service tree is static per boot).
func (sm *ServiceManager) Register(s Service) {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	d := s.Descriptor()
	if _, dup := sm.services[d]; dup {
		panic(fmt.Sprintf("binder: duplicate service %q", d))
	}
	sm.services[d] = s
	sm.Touch()
}

// Get returns the service registered under the descriptor, or nil.
func (sm *ServiceManager) Get(descriptor string) Service {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	return sm.services[descriptor]
}

// List returns the sorted registered descriptors; the lshal analog.
func (sm *ServiceManager) List() []string {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	out := make([]string, 0, len(sm.services))
	for d := range sm.services {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// ArgSig is the reflected syntax of one method argument as exposed through
// InterfaceTransaction. Kind strings match dsl kinds: "int", "flags",
// "buffer", "string", "resource".
type ArgSig struct {
	Name       string
	Kind       string
	Min, Max   uint64
	Choices    []uint64
	BufLen     uint32
	Res        string
	StrChoices []string
}

// MethodSig is the reflected signature of one service method.
type MethodSig struct {
	Name string
	Code uint32
	Args []ArgSig
	Ret  string // resource kind produced, "" if none
}

// MarshalMethods encodes a method table into the reply parcel of an
// InterfaceTransaction.
func MarshalMethods(out *Parcel, methods []MethodSig) {
	out.WriteUint32(uint32(len(methods)))
	for _, m := range methods {
		out.WriteString(m.Name)
		out.WriteUint32(m.Code)
		out.WriteString(m.Ret)
		out.WriteUint32(uint32(len(m.Args)))
		for _, a := range m.Args {
			out.WriteString(a.Name)
			out.WriteString(a.Kind)
			out.WriteUint64(a.Min)
			out.WriteUint64(a.Max)
			out.WriteUint32(a.BufLen)
			out.WriteString(a.Res)
			out.WriteUint32(uint32(len(a.Choices)))
			for _, c := range a.Choices {
				out.WriteUint64(c)
			}
			out.WriteUint32(uint32(len(a.StrChoices)))
			for _, s := range a.StrChoices {
				out.WriteString(s)
			}
		}
	}
}

// UnmarshalMethods decodes a method table from a reflection reply.
func UnmarshalMethods(in *Parcel) ([]MethodSig, error) {
	n, err := in.ReadUint32()
	if err != nil {
		return nil, err
	}
	methods := make([]MethodSig, 0, n)
	for i := uint32(0); i < n; i++ {
		var m MethodSig
		if m.Name, err = in.ReadString(); err != nil {
			return nil, err
		}
		if m.Code, err = in.ReadUint32(); err != nil {
			return nil, err
		}
		if m.Ret, err = in.ReadString(); err != nil {
			return nil, err
		}
		argc, err := in.ReadUint32()
		if err != nil {
			return nil, err
		}
		for j := uint32(0); j < argc; j++ {
			var a ArgSig
			if a.Name, err = in.ReadString(); err != nil {
				return nil, err
			}
			if a.Kind, err = in.ReadString(); err != nil {
				return nil, err
			}
			if a.Min, err = in.ReadUint64(); err != nil {
				return nil, err
			}
			if a.Max, err = in.ReadUint64(); err != nil {
				return nil, err
			}
			if a.BufLen, err = in.ReadUint32(); err != nil {
				return nil, err
			}
			if a.Res, err = in.ReadString(); err != nil {
				return nil, err
			}
			nc, err := in.ReadUint32()
			if err != nil {
				return nil, err
			}
			for k := uint32(0); k < nc; k++ {
				c, err := in.ReadUint64()
				if err != nil {
					return nil, err
				}
				a.Choices = append(a.Choices, c)
			}
			ns, err := in.ReadUint32()
			if err != nil {
				return nil, err
			}
			for k := uint32(0); k < ns; k++ {
				s, err := in.ReadString()
				if err != nil {
					return nil, err
				}
				a.StrChoices = append(a.StrChoices, s)
			}
			m.Args = append(m.Args, a)
		}
		methods = append(methods, m)
	}
	return methods, nil
}
