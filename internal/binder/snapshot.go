package binder

// ServiceManager checkpoint/restore. Services are registered once at boot
// and the probing pass is the only SetObserver caller (and it reboots the
// device when done), so the registry is almost never dirty mid-campaign —
// the generation check makes its restore free.

type smState struct {
	// Service identity cannot cross devices, so the portable round-trip is
	// descriptor-set only (see SMExport): Export ships the sorted
	// descriptors, Import verifies them against the receiver's own
	// registry, and each twin keeps its own rebuilt service instances.
	//droidvet:checkpoint portable blob carries the descriptor set only
	services map[string]Service // shallow: Service identity is the state
	// Observers are harness wiring, re-armed by the probing pass per
	// device; an imported twin starts unobserved on purpose.
	//droidvet:checkpoint observers never cross devices
	observer Observer
}

// Checkpoint implements snap.Subsystem.
func (sm *ServiceManager) Checkpoint() any {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	st := &smState{
		services: make(map[string]Service, len(sm.services)),
		observer: sm.observer,
	}
	for d, s := range sm.services { //droidvet:nondet order-independent map copy
		st.services[d] = s
	}
	return st
}

// Restore implements snap.Subsystem.
func (sm *ServiceManager) Restore(s any) {
	st := s.(*smState)
	sm.mu.Lock()
	defer sm.mu.Unlock()
	sm.services = make(map[string]Service, len(st.services))
	for d, svc := range st.services { //droidvet:nondet order-independent map copy
		sm.services[d] = svc
	}
	sm.observer = st.observer
}

// SMExport is the ServiceManager's portable checkpoint blob. Service
// identity cannot cross devices — registered services hold pointers into
// the source device — so the blob carries only the descriptor set, which
// Import checks against the receiver's own same-model registry.
type SMExport struct {
	Descriptors []string // sorted
}

// Export implements snap.Subsystem.
func (sm *ServiceManager) Export() any {
	ds := sm.List()
	if len(ds) == 0 {
		ds = nil // canonical: empty exports as nil (gob round-trip shape)
	}
	return &SMExport{Descriptors: ds}
}

// Import implements snap.Subsystem. The receiver keeps its own service
// instances (they are rebuilt per twin by the hal.Process subsystems);
// Import only guards against cross-model misuse.
func (sm *ServiceManager) Import(b any) {
	e := b.(*SMExport)
	own := sm.List()
	if len(own) != len(e.Descriptors) {
		panic("binder: checkpoint service registry does not match this device model")
	}
	for i, d := range own {
		if d != e.Descriptors[i] {
			panic("binder: checkpoint service registry does not match this device model")
		}
	}
	sm.Touch()
}
