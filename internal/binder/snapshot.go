package binder

// ServiceManager checkpoint/restore. Services are registered once at boot
// and the probing pass is the only SetObserver caller (and it reboots the
// device when done), so the registry is almost never dirty mid-campaign —
// the generation check makes its restore free.

type smState struct {
	services map[string]Service // shallow: Service identity is the state
	observer Observer
}

// Checkpoint implements snap.Subsystem.
func (sm *ServiceManager) Checkpoint() any {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	st := &smState{
		services: make(map[string]Service, len(sm.services)),
		observer: sm.observer,
	}
	for d, s := range sm.services { //droidvet:nondet order-independent map copy
		st.services[d] = s
	}
	return st
}

// Restore implements snap.Subsystem.
func (sm *ServiceManager) Restore(s any) {
	st := s.(*smState)
	sm.mu.Lock()
	defer sm.mu.Unlock()
	sm.services = make(map[string]Service, len(st.services))
	for d, svc := range st.services { //droidvet:nondet order-independent map copy
		sm.services[d] = svc
	}
	sm.observer = st.observer
}
