// Package bugs enumerates the injected defects reproducing Table II of the
// paper. Each virtual device model enables the subset of bugs the paper
// found on the corresponding physical device; drivers and HAL services gate
// their buggy paths on membership in the device's Set.
package bugs

// ID identifies one injected bug. The numbering follows Table II.
type ID int

const (
	// TCPCProbe is №1: "WARNING in rt1711_i2c_probe" (A1, kernel driver,
	// logic error).
	TCPCProbe ID = iota + 1
	// GraphicsHALCrash is №2: native crash in the Graphics HAL (A1, HAL,
	// memory related).
	GraphicsHALCrash
	// LockdepSubclass is №3: "BUG: looking up invalid subclass: NUM"
	// (A1, kernel subsystem, logic error).
	LockdepSubclass
	// TCPCVbus is №4: "WARNING in tcpc" (A1, kernel driver, logic error).
	TCPCVbus
	// AudioHang is №5: infinite loop in driver (A2, kernel driver, logic
	// error).
	AudioHang
	// MediaHALCrash is №6: native crash in the Media HAL (A2, HAL,
	// memory related).
	MediaHALCrash
	// HCICodecs is №7: "KASAN: invalid-access in
	// hci_read_supported_codecs" (A2, kernel driver, memory related).
	HCICodecs
	// L2capDisconn is №8: "WARNING in l2cap_send_disconn_req" (B, kernel
	// subsystem, logic error).
	L2capDisconn
	// CameraHALCrash is №9: native crash in the Camera HAL (C1, HAL,
	// memory related).
	CameraHALCrash
	// RateInit is №10: "WARNING in rate_control_rate_init" (C2, kernel
	// driver, logic error).
	RateInit
	// BTAcceptUnlink is №11: "KASAN: slab-use-after-free Read in
	// bt_accept_unlink" (D, kernel driver, memory related).
	BTAcceptUnlink
	// V4LQuerycap is №12: "WARNING in v4l_querycap" (E, kernel driver,
	// logic error).
	V4LQuerycap
	// TCPCContractOVP is №13: "WARNING in tcpc_pd_select_pdo" (A1, kernel
	// driver, logic error). Gated behind runtime parameters: the
	// overvoltage path is reachable only with PD compliance checking
	// disabled AND the contract ceiling raised via sysfs, so ioctl-only
	// fuzzing structurally cannot trigger it (SyzParam bug class).
	TCPCContractOVP
)

// String returns the Table II "Bug Info" column text.
func (id ID) String() string {
	switch id {
	case TCPCProbe:
		return "WARNING in rt1711_i2c_probe"
	case GraphicsHALCrash:
		return "Native crash in Graphics HAL"
	case LockdepSubclass:
		return "BUG: looking up invalid subclass: NUM"
	case TCPCVbus:
		return "WARNING in tcpc"
	case AudioHang:
		return "Infinite Loop in driver"
	case MediaHALCrash:
		return "Native crash in Media HAL"
	case HCICodecs:
		return "KASAN: invalid-access in hci_read_supported_codecs"
	case L2capDisconn:
		return "WARNING in l2cap_send_disconn_req"
	case CameraHALCrash:
		return "Native crash in Camera HAL"
	case RateInit:
		return "WARNING in rate_control_rate_init"
	case BTAcceptUnlink:
		return "KASAN: slab-use-after-free Read in bt_accept_unlink"
	case V4LQuerycap:
		return "WARNING in v4l_querycap"
	case TCPCContractOVP:
		return "WARNING in tcpc_pd_select_pdo"
	default:
		return "unknown bug"
	}
}

// Set is the collection of bugs enabled on one device model.
type Set map[ID]bool

// NewSet builds a set from ids.
func NewSet(ids ...ID) Set {
	s := make(Set, len(ids))
	for _, id := range ids {
		s[id] = true
	}
	return s
}

// Has reports whether the bug is enabled.
func (s Set) Has(id ID) bool { return s != nil && s[id] }

// All returns every Table II bug id in order.
func All() []ID {
	return []ID{
		TCPCProbe, GraphicsHALCrash, LockdepSubclass, TCPCVbus,
		AudioHang, MediaHALCrash, HCICodecs, L2capDisconn,
		CameraHALCrash, RateInit, BTAcceptUnlink, V4LQuerycap,
		TCPCContractOVP,
	}
}
