package bugs

import "testing"

func TestAllSeededBugs(t *testing.T) {
	ids := All()
	// Table II's 12 bugs plus №13, the param-gated TCPC overvoltage bug
	// seeded for the runtime-parameter dimension.
	if len(ids) != 13 {
		t.Fatalf("bugs = %d, want 13 (Table II + param-gated №13)", len(ids))
	}
	seen := make(map[ID]bool)
	for i, id := range ids {
		if int(id) != i+1 {
			t.Fatalf("bug %d has id %d; Table II numbering broken", i+1, id)
		}
		if seen[id] {
			t.Fatalf("duplicate id %v", id)
		}
		seen[id] = true
		if id.String() == "unknown bug" {
			t.Fatalf("id %d has no description", id)
		}
	}
}

func TestSetSemantics(t *testing.T) {
	s := NewSet(TCPCProbe, AudioHang)
	if !s.Has(TCPCProbe) || !s.Has(AudioHang) {
		t.Fatal("membership lost")
	}
	if s.Has(RateInit) {
		t.Fatal("phantom membership")
	}
	var nilSet Set
	if nilSet.Has(TCPCProbe) {
		t.Fatal("nil set claims membership")
	}
}

func TestTitleToIDRoundTrips(t *testing.T) {
	// Every runtime title shape must map back to its Table II id.
	cases := map[string]ID{
		"WARNING in rt1711_i2c_probe":                                  TCPCProbe,
		"Native crash in Graphics HAL":                                 GraphicsHALCrash,
		"BUG: looking up invalid subclass: NUM":                        LockdepSubclass,
		"BUG: looking up invalid subclass: 9":                          LockdepSubclass,
		"WARNING in tcpc_vbus_regulator":                               TCPCVbus,
		"INFO: task hung in audio_pcm_drain":                           AudioHang,
		"Native crash in Media HAL":                                    MediaHALCrash,
		"KASAN: invalid-access Read in hci_read_supported_codecs":      HCICodecs,
		"KASAN: slab-use-after-free Read in hci_read_supported_codecs": HCICodecs,
		"WARNING in l2cap_send_disconn_req":                            L2capDisconn,
		"Native crash in Camera HAL":                                   CameraHALCrash,
		"WARNING in rate_control_rate_init":                            RateInit,
		"KASAN: slab-use-after-free Read in bt_accept_unlink":          BTAcceptUnlink,
		"WARNING in v4l_querycap":                                      V4LQuerycap,
		"WARNING in tcpc_pd_select_pdo":                                TCPCContractOVP,
	}
	for title, want := range cases {
		got, ok := TitleToID(title)
		if !ok || got != want {
			t.Errorf("TitleToID(%q) = %v/%v, want %v", title, got, ok, want)
		}
	}
	if _, ok := TitleToID("WARNING in something_else"); ok {
		t.Fatal("unrelated title matched")
	}
}
