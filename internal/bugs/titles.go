package bugs

import "strings"

// titleMarkers maps a distinctive substring of each runtime crash title to
// its Table II bug id; used by the harness to check which injected bugs a
// campaign rediscovered.
var titleMarkers = []struct {
	marker string
	id     ID
}{
	{"rt1711_i2c_probe", TCPCProbe},
	{"Graphics HAL", GraphicsHALCrash},
	{"looking up invalid subclass", LockdepSubclass},
	{"tcpc_vbus_regulator", TCPCVbus},
	{"audio_pcm_drain", AudioHang},
	{"Media HAL", MediaHALCrash},
	{"hci_read_supported_codecs", HCICodecs},
	{"l2cap_send_disconn_req", L2capDisconn},
	{"Camera HAL", CameraHALCrash},
	{"rate_control_rate_init", RateInit},
	{"bt_accept_unlink", BTAcceptUnlink},
	{"v4l_querycap", V4LQuerycap},
	{"tcpc_pd_select_pdo", TCPCContractOVP},
}

// TitleToID maps a runtime crash title back to its Table II bug id.
func TitleToID(title string) (ID, bool) {
	for _, m := range titleMarkers {
		if strings.Contains(title, m.marker) {
			return m.id, true
		}
	}
	return 0, false
}
