package coord

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"droidfuzz/internal/adb"
)

// ClientOptions tune the reconnecting coordinator client. The retry
// discipline mirrors adb.Resilient: typed errors split transport failures
// (redial and retry) from coordinator rejections (*adb.RemoteError, stream
// healthy, surface to the caller), and redials back off on the shared
// full-jitter envelope.
type ClientOptions struct {
	// DialTimeout bounds one connection attempt (default 2s).
	DialTimeout time.Duration
	// CallTimeout bounds one RPC round trip (default 10s).
	CallTimeout time.Duration
	// MaxAttempts is how many reconnect-and-retry cycles one call performs
	// before giving up (default 3 — coordinator calls are rare and losing
	// one strands shard state, so the client tries harder than a per-exec
	// device link would).
	MaxAttempts int
	// BackoffBase/BackoffMax bound the full-jitter redial envelope
	// (defaults 50ms and 2s).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Dialer overrides how a stream is opened; nil dials TCP to Addr.
	// Tests hand in net.Pipe factories.
	Dialer func() (io.ReadWriteCloser, error)
}

func (o *ClientOptions) defaults() {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 2 * time.Second
	}
	if o.CallTimeout <= 0 {
		o.CallTimeout = 10 * time.Second
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 50 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 2 * time.Second
	}
}

// Client is a host's reconnecting connection to the coordinator. Calls are
// lock-step — one in flight at a time, serialized by the mutex — which is
// all a per-epoch control channel needs.
type Client struct {
	addr string
	opts ClientOptions

	mu         sync.Mutex
	stream     io.ReadWriteCloser
	enc        *gob.Encoder
	dec        *gob.Decoder
	downUntil  time.Time
	failStreak int
	rng        *rand.Rand
	sleep      func(time.Duration) // test seam; nil means time.Sleep
	// seq numbers every logical call; retries of one call resend the same
	// value, which is how the coordinator tells a retry after a lost reply
	// from a fresh request (and answers it from its reply cache).
	seq uint64
	// nonce is this client instance's random registration identity; a
	// retried Register with the same nonce gets the original host ID back.
	nonce uint64
}

// DialClient connects to a coordinator at addr (or via opts.Dialer).
func DialClient(addr string, opts ClientOptions) (*Client, error) {
	opts.defaults()
	c := &Client{addr: addr, opts: opts}
	if err := c.connectLocked(); err != nil {
		return nil, err
	}
	return c, nil
}

// connectLocked opens a fresh stream. Callers hold c.mu (or own c
// exclusively, as DialClient does).
func (c *Client) connectLocked() error {
	var (
		rwc io.ReadWriteCloser
		err error
	)
	if c.opts.Dialer != nil {
		rwc, err = c.opts.Dialer()
	} else {
		rwc, err = net.DialTimeout("tcp", c.addr, c.opts.DialTimeout)
	}
	if err != nil {
		return fmt.Errorf("%w: coord dial %s: %v", adb.ErrTransport, c.addr, err)
	}
	c.stream = rwc
	c.enc = gob.NewEncoder(rwc)
	c.dec = gob.NewDecoder(rwc)
	return nil
}

// Close drops the connection; a later call redials.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.dropLocked()
	return nil
}

func (c *Client) dropLocked() {
	if c.stream != nil {
		c.stream.Close()
		c.stream = nil
		c.enc, c.dec = nil, nil
	}
}

// jitterLocked lazily seeds the redial jitter source from the wall clock so
// every host draws an independent reconnect schedule.
func (c *Client) jitterLocked() *rand.Rand {
	if c.rng == nil {
		c.rng = rand.New(rand.NewSource(time.Now().UnixNano())) //droidvet:nondet per-client jitter seed
	}
	return c.rng
}

// call performs one lock-step round trip with reconnect-and-retry. A
// coordinator-side rejection comes back as *adb.RemoteError without a
// retry; stream failures redial after a full-jitter backoff sleep (the
// client has nothing better to do — unlike Resilient's non-blocking
// cooldown, a host cannot make progress without its coordinator).
func (c *Client) call(req adb.CoordRequest) (adb.CoordReply, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	// One Seq per logical call, shared by every retry attempt: the
	// coordinator uses it to return the cached reply when the previous
	// attempt was processed but its reply got lost in the hangup.
	c.seq++
	req.Seq = c.seq
	var err error
	for attempt := 0; attempt <= c.opts.MaxAttempts; attempt++ {
		if attempt > 0 {
			d := adb.BackoffJitter(c.jitterLocked(), c.opts.BackoffBase, c.opts.BackoffMax, c.failStreak)
			if c.failStreak < 30 {
				c.failStreak++
			}
			c.sleepLocked(d)
		}
		if c.stream == nil {
			if err = c.connectLocked(); err != nil {
				continue
			}
		}
		var rep adb.CoordReply
		if rep, err = c.roundTripLocked(req); err != nil {
			if errors.Is(err, adb.ErrTransport) {
				c.dropLocked()
				continue
			}
			return adb.CoordReply{}, err // coordinator rejection; stream healthy
		}
		c.failStreak = 0
		return rep, nil
	}
	return adb.CoordReply{}, err
}

// nonceCounter disambiguates nonces of clients in one process: even if two
// clients' wall-clock-seeded RNGs collided, the counter xor keeps their
// registration identities distinct.
var nonceCounter atomic.Uint64

// regNonce lazily draws this client's registration nonce (never 0, so the
// coordinator always dedups it).
func (c *Client) regNonce() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	for c.nonce == 0 {
		c.nonce = c.jitterLocked().Uint64() ^ nonceCounter.Add(1)
	}
	return c.nonce
}

// sleepLocked pauses between redials (droppable in tests).
func (c *Client) sleepLocked(d time.Duration) {
	if d <= 0 {
		return
	}
	if c.sleep != nil {
		c.sleep(d)
		return
	}
	time.Sleep(d)
}

// roundTripLocked encodes one request and decodes its reply, bounding the
// exchange with the call timeout when the stream supports deadlines.
func (c *Client) roundTripLocked(req adb.CoordRequest) (adb.CoordReply, error) {
	if nc, ok := c.stream.(net.Conn); ok && c.opts.CallTimeout > 0 {
		nc.SetDeadline(time.Now().Add(c.opts.CallTimeout)) //droidvet:nondet wall-clock io deadline
		defer nc.SetDeadline(time.Time{})
	}
	if err := c.enc.Encode(&req); err != nil {
		return adb.CoordReply{}, fmt.Errorf("%w: coord send: %v", adb.ErrTransport, err)
	}
	var rep adb.CoordReply
	if err := c.dec.Decode(&rep); err != nil {
		return adb.CoordReply{}, fmt.Errorf("%w: coord recv: %v", adb.ErrTransport, err)
	}
	if rep.Err != "" {
		return adb.CoordReply{}, &adb.RemoteError{Msg: rep.Err}
	}
	return rep, nil
}

// Register announces a host and returns its assigned identity.
func (c *Client) Register(name string) (*adb.CoordRegistered, error) {
	rep, err := c.call(adb.CoordRequest{Register: &adb.CoordRegister{Name: name, Nonce: c.regNonce()}})
	if err != nil {
		return nil, err
	}
	if rep.Registered == nil {
		return nil, &adb.RemoteError{Msg: "coord: empty register reply"}
	}
	return rep.Registered, nil
}

// Heartbeat refreshes liveness and reports cumulative executions.
func (c *Client) Heartbeat(hostID string, execs uint64) (*adb.CoordBeat, error) {
	rep, err := c.call(adb.CoordRequest{Heartbeat: &adb.CoordHeartbeat{HostID: hostID, Execs: execs}})
	if err != nil {
		return nil, err
	}
	if rep.Beat == nil {
		return nil, &adb.RemoteError{Msg: "coord: empty heartbeat reply"}
	}
	return rep.Beat, nil
}

// Lease requests the next shard (or Wait/Done).
func (c *Client) Lease(hostID string) (*adb.CoordShard, error) {
	rep, err := c.call(adb.CoordRequest{Lease: &adb.CoordLeaseRequest{HostID: hostID}})
	if err != nil {
		return nil, err
	}
	if rep.Shard == nil {
		return nil, &adb.RemoteError{Msg: "coord: empty lease reply"}
	}
	return rep.Shard, nil
}

// Progress reports in-flight shard state and exchanges federation deltas.
func (c *Client) Progress(p *adb.CoordProgress) (*adb.CoordAck, error) {
	rep, err := c.call(adb.CoordRequest{Progress: p})
	if err != nil {
		return nil, err
	}
	if rep.Ack == nil {
		return nil, &adb.RemoteError{Msg: "coord: empty progress reply"}
	}
	return rep.Ack, nil
}

// Complete marks a shard finished with its final uplink.
func (c *Client) Complete(q *adb.CoordComplete) (*adb.CoordAck, error) {
	rep, err := c.call(adb.CoordRequest{Complete: q})
	if err != nil {
		return nil, err
	}
	if rep.Ack == nil {
		return nil, &adb.RemoteError{Msg: "coord: empty complete reply"}
	}
	return rep.Ack, nil
}

// Sync performs a shard-free federation exchange.
func (c *Client) Sync(s *adb.CoordSync) (*adb.CoordAck, error) {
	rep, err := c.call(adb.CoordRequest{Sync: s})
	if err != nil {
		return nil, err
	}
	if rep.Ack == nil {
		return nil, &adb.RemoteError{Msg: "coord: empty sync reply"}
	}
	return rep.Ack, nil
}
