package coord

import (
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"droidfuzz/internal/adb"
)

// TestClientReconnectsThroughTransportFailures: the first dials fail, the
// client backs off (full jitter, observed through the sleep seam) and
// eventually completes the call on a healthy stream.
func TestClientReconnectsThroughTransportFailures(t *testing.T) {
	coord, _ := newTestCoordinator(t, Campaign{Models: []string{"A1"}, Shards: 1, Iters: 1}, Options{})
	srv := &Server{C: coord}
	fails := 2
	cl := &Client{addr: "flaky", opts: ClientOptions{
		MaxAttempts: 5, BackoffBase: 10 * time.Millisecond, BackoffMax: 100 * time.Millisecond,
		Dialer: func() (io.ReadWriteCloser, error) {
			if fails > 0 {
				fails--
				return nil, errors.New("link down")
			}
			hostEnd, coordEnd := net.Pipe()
			go srv.Serve(coordEnd)
			return hostEnd, nil
		},
	}}
	cl.opts.defaults()
	var slept []time.Duration
	cl.sleep = func(d time.Duration) { slept = append(slept, d) }

	reg, err := cl.Register("flaky-host")
	if err != nil {
		t.Fatalf("register through flaky link: %v", err)
	}
	if reg.HostID == "" {
		t.Fatal("empty host ID")
	}
	if len(slept) != 2 {
		t.Fatalf("client slept %d times, want 2 (one per failed dial)", len(slept))
	}
	for i, d := range slept {
		if d < 0 || d > 100*time.Millisecond {
			t.Fatalf("sleep %d = %v outside the jitter envelope", i, d)
		}
	}
}

// TestClientSurfacesRemoteErrorWithoutRetry: a coordinator-side rejection
// is not a transport failure — the stream stays up and the client must not
// burn retry attempts on it.
func TestClientSurfacesRemoteErrorWithoutRetry(t *testing.T) {
	coord, _ := newTestCoordinator(t, Campaign{Models: []string{"A1"}, Shards: 1, Iters: 1}, Options{})
	srv := &Server{C: coord}
	dials := 0
	cl, err := DialClient("pipe", ClientOptions{Dialer: func() (io.ReadWriteCloser, error) {
		dials++
		hostEnd, coordEnd := net.Pipe()
		go srv.Serve(coordEnd)
		return hostEnd, nil
	}})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	_, err = cl.Heartbeat("h999", 0)
	var re *adb.RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("want *adb.RemoteError for unknown host, got %v", err)
	}
	if errors.Is(err, adb.ErrTransport) {
		t.Fatal("coordinator rejection misclassified as transport failure")
	}
	if dials != 1 {
		t.Fatalf("client redialed %d times on an app-level error", dials)
	}
	// The stream is still healthy: a valid call on the same client works.
	reg, err := cl.Register("still-alive")
	if err != nil || reg.HostID == "" {
		t.Fatalf("call after RemoteError: %+v, %v", reg, err)
	}
	if dials != 1 {
		t.Fatalf("healthy stream was dropped (dials=%d)", dials)
	}
}

// TestServerRejectsEmptyAndPanicFrames: protocol garbage gets an error
// reply, not a dead coordinator.
func TestServerRejectsGarbage(t *testing.T) {
	coord, _ := newTestCoordinator(t, Campaign{Models: []string{"A1"}, Shards: 1, Iters: 1}, Options{})
	srv := &Server{C: coord}
	rep := srv.handle(adb.CoordRequest{})
	if rep.Err == "" {
		t.Fatal("empty request accepted")
	}
	// A second request on the same coordinator still works.
	rep = srv.handle(adb.CoordRequest{Register: &adb.CoordRegister{Name: "ok"}})
	if rep.Err != "" || rep.Registered == nil {
		t.Fatalf("register after garbage: %+v", rep)
	}
}
