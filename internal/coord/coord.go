package coord

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"droidfuzz/internal/adb"
	"droidfuzz/internal/corpus"
	"droidfuzz/internal/relation"
)

// Campaign describes one multi-host fuzzing campaign as the coordinator
// shards it.
type Campaign struct {
	// Models are the device models under test; shard i fuzzes
	// Models[i%len(Models)].
	Models []string
	// Shards is the total shard count.
	Shards int
	// Devices is the device count per shard.
	Devices int
	// Iters is the per-device iteration budget of every shard.
	Iters int
	// Seed is the campaign base seed: shard i's devices run
	// Seed + i*Devices + j, so no two devices in the fleet share an RNG
	// stream.
	Seed int64
	// EpochIters is the federation cadence handed to hosts: iterations per
	// device between uplink/downlink exchanges (default 256).
	EpochIters int
}

func (c *Campaign) defaults() {
	if c.Shards <= 0 {
		c.Shards = len(c.Models)
	}
	if c.Devices <= 0 {
		c.Devices = 1
	}
	if c.EpochIters <= 0 {
		c.EpochIters = 256
	}
}

// Options tune the coordinator.
type Options struct {
	// Hosts is the expected fleet size; registration pre-partitions the
	// shard list into that many queues (extra hosts start empty and
	// steal).
	Hosts int
	// EvictAfter is how long a host may stay silent before it is declared
	// dead and its shards are requeued (default 10s).
	EvictAfter time.Duration
	// HeartbeatEvery is the cadence hosts are expected to beat at; it only
	// scales the health score (default 1s).
	HeartbeatEvery time.Duration
}

func (o *Options) defaults() {
	if o.Hosts <= 0 {
		o.Hosts = 1
	}
	if o.EvictAfter <= 0 {
		o.EvictAfter = 10 * time.Second
	}
	if o.HeartbeatEvery <= 0 {
		o.HeartbeatEvery = time.Second
	}
}

// ShardSpec is one (model, seed-range, device-count) unit of campaign work.
type ShardSpec struct {
	ID      int
	Model   string
	Devices int
	Iters   int
	Seed    int64
}

// shardState tracks one shard through its lifecycle: queued (on a host's
// queue or the unassigned pool) → leased → done, with requeues on
// eviction. progress/checkpoint come from the owner's last report and make
// a requeued shard resume warm.
type shardState struct {
	spec       ShardSpec
	owner      string // host ID while leased, "" otherwise
	done       bool
	progress   int // per-device iterations completed so far
	leaseBase  int // progress at the moment of the current lease
	checkpoint []byte
	stolen     bool // last lease came from another host's queue
}

// hostState is the coordinator's book on one registered host.
type hostState struct {
	id      string
	name    string
	queue   []int // shard IDs waiting for this host (head = next lease)
	leased  map[int]struct{}
	seen    time.Time
	health  float64
	evicted bool
	execs   uint64
	steals  uint64
	// Federation cursors: what this host already holds. corpusKnown also
	// contains everything the host itself uplinked, so downlinks never
	// echo a host's own programs back at it.
	corpusKnown corpus.HashSet
	corpusSent  int // index into the coordinator's admission order
	vertSent    int
	logSent     int
	// drained is set by an empty-uplink, empty-downlink Sync after the
	// campaign completed — the host's explicit "I have everything" — and
	// cleared whenever a later merge gives it something new to fetch.
	drained bool
	// Duplicate-retry protection: the last request Seq this host's client
	// sent and the reply it got. Handle returns lastReply verbatim when the
	// same Seq arrives again (the client retried after losing the reply),
	// so handler side effects — the leased shard, the downlink cursor
	// advances — are delivered exactly once per logical call.
	lastSeq   uint64
	lastReply adb.CoordReply
}

// Coordinator shards a campaign across registered hosts and merges their
// federated state. All state lives behind one mutex — coordinator RPCs are
// rare (per epoch, not per exec) and lock-step, so contention is not a
// concern; determinism of the merged state is, and it comes from the
// journal, not from locking.
type Coordinator struct {
	mu     sync.Mutex
	camp   Campaign
	opts   Options
	now    func() time.Time // test clock seam
	hosts  map[string]*hostState
	order  []string
	nextID int
	shards []*shardState
	// unassigned holds shard IDs owned by nobody: not yet partitioned to a
	// registrant, or requeued from an evicted host. Survivors lease from
	// it before stealing from each other.
	unassigned []int
	// Federated corpus: text by hash, plus the admission journal (hash
	// order) every downlink cursor indexes into.
	corpusText  map[uint64]string
	corpusOrder []uint64
	corpusFrom  map[uint64]string // admitting host, for diagnostics
	// Federated relation state: the union vertex set in first-seen order
	// and the accepted learn journal. merged caches the replay; nil means
	// dirty.
	verts     map[string]float64
	vertOrder []string
	log       *relation.Log
	// accepted is the exact (device, seq) set already in the journal. A
	// per-device high-water mark would be smaller, but it silently drops
	// records that arrive out of order — an exact set keeps the merge
	// commutative under ANY uplink arrival order, and it costs no more
	// than the journal that stores the ops themselves.
	accepted map[string]map[uint64]struct{}
	merged   *relation.Graph
	// regNonce dedups retried registrations: a client that lost its
	// Register reply re-sends the same nonce and gets its original
	// identity back.
	regNonce map[uint64]*adb.CoordRegistered
	// Counters.
	steals        uint64
	evictions     int
	bytesIn       uint64
	bytesOut      uint64
	learnsDropped uint64 // learn records lost to downlink encode failures
	stranded      bool   // whole fleet evicted with shards unfinished
	doneOnce      sync.Once
	done          chan struct{}
}

// New builds a coordinator for the campaign. The shard list is fixed up
// front: work distribution is dynamic (stealing, eviction requeues), the
// work itself is not.
func New(camp Campaign, opts Options) (*Coordinator, error) {
	camp.defaults()
	opts.defaults()
	if len(camp.Models) == 0 {
		return nil, fmt.Errorf("coord: campaign has no models")
	}
	if camp.Iters <= 0 {
		return nil, fmt.Errorf("coord: campaign iters must be positive, got %d", camp.Iters)
	}
	c := &Coordinator{
		camp:       camp,
		opts:       opts,
		now:        time.Now, //droidvet:nondet wall-clock host liveness
		hosts:      make(map[string]*hostState),
		corpusText: make(map[uint64]string),
		corpusFrom: make(map[uint64]string),
		verts:      make(map[string]float64),
		log:        relation.NewLog(),
		accepted:   make(map[string]map[uint64]struct{}),
		regNonce:   make(map[uint64]*adb.CoordRegistered),
		done:       make(chan struct{}),
	}
	for i := 0; i < camp.Shards; i++ {
		c.shards = append(c.shards, &shardState{spec: ShardSpec{
			ID:      i,
			Model:   camp.Models[i%len(camp.Models)],
			Devices: camp.Devices,
			Iters:   camp.Iters,
			Seed:    camp.Seed + int64(i*camp.Devices),
		}})
		c.unassigned = append(c.unassigned, i)
	}
	return c, nil
}

// Done is closed when every shard has completed.
func (c *Coordinator) Done() <-chan struct{} { return c.done }

// Register admits a host, assigning its ID and an initial queue: an even
// chunk of the unassigned pool, sized for the expected fleet. Late hosts
// beyond the expected count start with empty queues and live off stealing.
func (c *Coordinator) Register(name string) (*adb.CoordRegistered, error) {
	return c.register(name, 0)
}

// register is Register plus nonce dedup: a nonzero nonce already seen means
// the client lost the original reply and retried, so it gets the same
// identity back instead of a ghost registration holding queue shards nobody
// will ever run.
func (c *Coordinator) register(name string, nonce uint64) (*adb.CoordRegistered, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if nonce != 0 {
		if reg, ok := c.regNonce[nonce]; ok {
			return reg, nil
		}
	}
	c.nextID++
	h := &hostState{
		id:          fmt.Sprintf("h%d", c.nextID),
		name:        name,
		leased:      make(map[int]struct{}),
		seen:        c.now(),
		health:      1,
		corpusKnown: corpus.NewHashSet(),
	}
	chunk := (len(c.shards) + c.opts.Hosts - 1) / c.opts.Hosts
	if chunk > len(c.unassigned) {
		chunk = len(c.unassigned)
	}
	h.queue = append(h.queue, c.unassigned[:chunk]...)
	c.unassigned = c.unassigned[chunk:]
	c.hosts[h.id] = h
	c.order = append(c.order, h.id)
	reg := &adb.CoordRegistered{HostID: h.id, EpochIters: c.camp.EpochIters}
	if nonce != 0 {
		c.regNonce[nonce] = reg
	}
	return reg, nil
}

// Handle dispatches one wire request. It is the server entry point and the
// layer where retried requests are made safe: every non-Register request
// names its host, so a Seq equal to the host's last processed one is a
// retry after a lost reply — the cached reply goes back verbatim and the
// handler does not run again. Without this, a retried Lease would lease a
// second shard while the first stayed owned by this live host forever, and
// a retried Progress/Sync would get an empty downlink in place of the lost
// batch the cursors had already advanced past.
func (c *Coordinator) Handle(req adb.CoordRequest) adb.CoordReply {
	if req.Register != nil {
		reg, err := c.register(req.Register.Name, req.Register.Nonce)
		if err != nil {
			return adb.CoordReply{Err: err.Error()}
		}
		return adb.CoordReply{Registered: reg}
	}
	hostID := requestHostID(&req)
	if hostID == "" {
		return adb.CoordReply{Err: "coord: empty request"}
	}
	if req.Seq != 0 {
		c.mu.Lock()
		if h, ok := c.hosts[hostID]; ok && !h.evicted && h.lastSeq != 0 {
			switch {
			case req.Seq == h.lastSeq:
				rep := h.lastReply
				c.mu.Unlock()
				return rep
			case req.Seq < h.lastSeq:
				c.mu.Unlock()
				return adb.CoordReply{Err: fmt.Sprintf(
					"coord: stale request seq %d from %s (last processed %d)", req.Seq, hostID, h.lastSeq)}
			}
		}
		c.mu.Unlock()
	}
	var (
		rep adb.CoordReply
		err error
	)
	switch {
	case req.Heartbeat != nil:
		rep.Beat, err = c.Heartbeat(req.Heartbeat.HostID, req.Heartbeat.Execs)
	case req.Lease != nil:
		rep.Shard, err = c.Lease(req.Lease.HostID)
	case req.Progress != nil:
		rep.Ack, err = c.Progress(req.Progress)
	case req.Complete != nil:
		rep.Ack, err = c.Complete(req.Complete)
	case req.Sync != nil:
		rep.Ack, err = c.Sync(req.Sync)
	}
	if err != nil {
		rep = adb.CoordReply{Err: err.Error()}
	}
	if req.Seq != 0 {
		c.mu.Lock()
		if h, ok := c.hosts[hostID]; ok {
			h.lastSeq = req.Seq
			h.lastReply = rep
		}
		c.mu.Unlock()
	}
	return rep
}

// requestHostID extracts the acting host from a non-Register request ("" if
// the frame carries no payload).
func requestHostID(req *adb.CoordRequest) string {
	switch {
	case req.Heartbeat != nil:
		return req.Heartbeat.HostID
	case req.Lease != nil:
		return req.Lease.HostID
	case req.Progress != nil:
		return req.Progress.HostID
	case req.Complete != nil:
		return req.Complete.HostID
	case req.Sync != nil:
		return req.Sync.HostID
	}
	return ""
}

// Heartbeat refreshes a host's liveness and returns its health score.
func (c *Coordinator) Heartbeat(hostID string, execs uint64) (*adb.CoordBeat, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	h, err := c.hostLocked(hostID)
	if err != nil {
		return nil, err
	}
	c.touchLocked(h)
	h.execs = execs
	c.evictStaleLocked()
	return &adb.CoordBeat{Health: h.health}, nil
}

// hostLocked resolves a live host or explains why it cannot act.
func (c *Coordinator) hostLocked(hostID string) (*hostState, error) {
	h, ok := c.hosts[hostID]
	if !ok {
		return nil, fmt.Errorf("coord: unknown host %q", hostID)
	}
	if h.evicted {
		return nil, fmt.Errorf("coord: host %s was evicted (silent > %v); re-register", hostID, c.opts.EvictAfter)
	}
	return h, nil
}

// touchLocked refreshes liveness and nudges the health EMA. A host beating
// on schedule converges to 1; one that only shows up after long silences
// hovers low even before eviction triggers.
func (c *Coordinator) touchLocked(h *hostState) {
	now := c.now()
	gap := now.Sub(h.seen)
	score := 1.0
	if late := gap - 2*c.opts.HeartbeatEvery; late > 0 {
		// Linearly discount a late arrival, to zero at the eviction bound.
		score = 1 - float64(late)/float64(c.opts.EvictAfter)
		if score < 0 {
			score = 0
		}
	}
	h.health = 0.7*h.health + 0.3*score
	h.seen = now
}

// evictStaleLocked declares hosts silent past EvictAfter dead and requeues
// their shards — queued and in-flight alike — onto the unassigned pool,
// where surviving hosts pick them up on their next lease. In-flight shards
// keep their reported progress and checkpoint, so a survivor resumes them
// warm.
func (c *Coordinator) evictStaleLocked() {
	now := c.now()
	for _, id := range c.order {
		h := c.hosts[id]
		if h.evicted || now.Sub(h.seen) <= c.opts.EvictAfter {
			continue
		}
		h.evicted = true
		h.health = 0
		c.evictions++
		c.unassigned = append(c.unassigned, h.queue...)
		h.queue = nil
		inflight := make([]int, 0, len(h.leased))
		for sid := range h.leased { //droidvet:nondet requeue order fixed by sort below
			inflight = append(inflight, sid)
		}
		sort.Ints(inflight)
		for _, sid := range inflight {
			c.shards[sid].owner = ""
			c.unassigned = append(c.unassigned, sid)
		}
		h.leased = make(map[int]struct{})
	}
}

// Lease hands hostID its next shard: the head of its own queue first, then
// the unassigned pool (eviction requeues and late-registration leftovers),
// then — work stealing — the tail of the longest live sibling queue. When
// nothing is available but shards are still in flight elsewhere the reply
// says Wait (the holder may die and its work requeue); once every shard is
// done it says Done.
func (c *Coordinator) Lease(hostID string) (*adb.CoordShard, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	h, err := c.hostLocked(hostID)
	if err != nil {
		return nil, err
	}
	c.touchLocked(h)
	c.evictStaleLocked()

	var sid int
	stolen := false
	switch {
	case len(h.queue) > 0:
		sid, h.queue = h.queue[0], h.queue[1:]
	case len(c.unassigned) > 0:
		// Adopting orphaned work counts as a steal: it came off another
		// host's plate (eviction) or was never claimed, and the shard
		// should surface as rebalanced in status.
		sid, c.unassigned = c.unassigned[0], c.unassigned[1:]
		stolen = true
	default:
		victim := c.longestQueueLocked(h.id)
		if victim == nil {
			if c.inflightLocked() > 0 {
				return &adb.CoordShard{Wait: true}, nil
			}
			c.doneOnce.Do(func() { close(c.done) })
			return &adb.CoordShard{Done: true}, nil
		}
		// Steal from the tail: the victim keeps draining its head
		// untouched, so the two hosts never contend for the same next
		// shard.
		sid = victim.queue[len(victim.queue)-1]
		victim.queue = victim.queue[:len(victim.queue)-1]
		stolen = true
	}
	if stolen {
		c.steals++
		h.steals++
	}

	sh := c.shards[sid]
	sh.owner = h.id
	sh.stolen = stolen
	sh.leaseBase = sh.progress
	h.leased[sid] = struct{}{}
	rep := &adb.CoordShard{
		ID:         sh.spec.ID,
		Model:      sh.spec.Model,
		Devices:    sh.spec.Devices,
		Iters:      sh.spec.Iters - sh.progress,
		Seed:       sh.spec.Seed,
		Stolen:     stolen,
		Checkpoint: sh.checkpoint,
		Batch:      c.downlinkLocked(h),
	}
	return rep, nil
}

// longestQueueLocked returns the live host (other than self) with the most
// queued shards, or nil when every other queue is empty. Host order breaks
// ties deterministically.
func (c *Coordinator) longestQueueLocked(self string) *hostState {
	var victim *hostState
	for _, id := range c.order {
		h := c.hosts[id]
		if h.id == self || h.evicted || len(h.queue) == 0 {
			continue
		}
		if victim == nil || len(h.queue) > len(victim.queue) {
			victim = h
		}
	}
	return victim
}

// inflightLocked counts leased, unfinished shards.
func (c *Coordinator) inflightLocked() int {
	n := 0
	for _, sh := range c.shards {
		if sh.owner != "" && !sh.done {
			n++
		}
	}
	return n
}

// Progress records an in-flight shard's state and exchanges federation
// deltas: the host's uplink is merged, the merged-novelty downlink comes
// back in the ack.
func (c *Coordinator) Progress(p *adb.CoordProgress) (*adb.CoordAck, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	h, err := c.hostLocked(p.HostID)
	if err != nil {
		return nil, err
	}
	c.touchLocked(h)
	c.evictStaleLocked()
	if p.ShardID < 0 || p.ShardID >= len(c.shards) {
		return nil, fmt.Errorf("coord: progress on unknown shard %d", p.ShardID)
	}
	sh := c.shards[p.ShardID]
	if sh.owner == h.id {
		// ExecsDone counts per-device iterations under the current lease;
		// leaseBase folds in progress inherited from an evicted prior owner.
		if np := sh.leaseBase + p.ExecsDone; np > sh.progress {
			sh.progress = np
		}
		if len(p.Checkpoint) > 0 {
			sh.checkpoint = p.Checkpoint
		}
	}
	c.mergeLocked(h, p.Batch)
	return &adb.CoordAck{Batch: c.downlinkLocked(h)}, nil
}

// Complete marks a shard finished after merging its final uplink.
func (c *Coordinator) Complete(q *adb.CoordComplete) (*adb.CoordAck, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	h, err := c.hostLocked(q.HostID)
	if err != nil {
		return nil, err
	}
	c.touchLocked(h)
	if q.ShardID < 0 || q.ShardID >= len(c.shards) {
		return nil, fmt.Errorf("coord: complete on unknown shard %d", q.ShardID)
	}
	c.mergeLocked(h, q.Batch)
	sh := c.shards[q.ShardID]
	switch {
	case sh.done:
		// Idempotent: a duplicate Complete for a finished shard just acks.
	case sh.owner == h.id:
		sh.done = true
		sh.owner = ""
		sh.progress = sh.spec.Iters
	default:
		// Not the caller's shard: it is queued or leased elsewhere (e.g.
		// requeued after this host looked dead). The current owner's run is
		// authoritative — ack the merge but leave the shard alone rather
		// than discarding the owner's remaining work.
	}
	delete(h.leased, q.ShardID)
	c.evictStaleLocked()
	c.maybeFinishLocked()
	return &adb.CoordAck{Batch: c.downlinkLocked(h)}, nil
}

// Tick drives time-based maintenance independently of host RPCs: a fleet
// that crashed wholesale never sends another request, so without a
// server-side timer nothing would ever evict the dead hosts or unblock
// whoever waits on Done. droidcoordd calls it on a ticker.
func (c *Coordinator) Tick() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.evictStaleLocked()
	c.maybeFinishLocked()
}

// maybeFinishLocked closes Done when the campaign can end: every shard
// completed, or — the stranded case — at least one host registered, every
// one of them has since been evicted, and shards remain. Stranding closes
// Done too (there is no one left to make progress), but marks the campaign
// so droidcoordd reports the failure instead of a clean summary.
func (c *Coordinator) maybeFinishLocked() {
	if c.shardsDoneLocked() == len(c.shards) {
		c.doneOnce.Do(func() { close(c.done) })
		return
	}
	if len(c.hosts) == 0 {
		return
	}
	for _, id := range c.order {
		if !c.hosts[id].evicted {
			return
		}
	}
	c.stranded = true
	c.doneOnce.Do(func() { close(c.done) })
}

// Sync is the shard-free federation exchange: merge the optional uplink,
// return the downlink. Hosts call it after Done to drain the final merged
// state.
func (c *Coordinator) Sync(s *adb.CoordSync) (*adb.CoordAck, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	h, err := c.hostLocked(s.HostID)
	if err != nil {
		return nil, err
	}
	c.touchLocked(h)
	c.evictStaleLocked()
	c.mergeLocked(h, s.Batch)
	dl := c.downlinkLocked(h)
	if emptyBatch(s.Batch) && emptyBatch(dl) && c.shardsDoneLocked() == len(c.shards) {
		// Nothing in, nothing out, campaign over: this host has confirmed
		// it holds the complete federated state.
		h.drained = true
	}
	return &adb.CoordAck{Batch: dl}, nil
}

// shardsDoneLocked counts completed shards.
func (c *Coordinator) shardsDoneLocked() int {
	n := 0
	for _, sh := range c.shards {
		if sh.done {
			n++
		}
	}
	return n
}

// mergeLocked folds one uplink into the federated state. Everything is
// idempotent — corpus texts dedup by hash, vertices by name, learn records
// by their exact (device, seq) key — so a host retrying an uplink after an
// ambiguous transport failure cannot duplicate state.
func (c *Coordinator) mergeLocked(h *hostState, b *adb.FedBatch) {
	if emptyBatch(b) {
		return
	}
	c.bytesIn += uint64(BatchBytes(b))
	for _, text := range b.Progs {
		key := corpus.Hash(text)
		h.corpusKnown.Add(key)
		if _, dup := c.corpusText[key]; dup {
			continue
		}
		c.corpusText[key] = text
		c.corpusOrder = append(c.corpusOrder, key)
		c.corpusFrom[key] = h.id
	}
	for _, v := range b.Verts {
		if _, dup := c.verts[v.Name]; dup {
			continue
		}
		c.verts[v.Name] = v.Weight
		c.vertOrder = append(c.vertOrder, v.Name)
		c.merged = nil
	}
	ops, err := DecodeLearns(b.Learns)
	if err != nil {
		// A corrupt learn block poisons nothing: relations are advisory
		// guidance, so the coordinator drops the block and keeps the
		// host's corpus contribution.
		return
	}
	fresh := ops[:0]
	for _, op := range ops {
		devSeen := c.accepted[op.Device]
		if devSeen == nil {
			devSeen = make(map[uint64]struct{})
			c.accepted[op.Device] = devSeen
		}
		if _, dup := devSeen[op.Seq]; dup {
			continue // duplicate of an already-accepted record
		}
		devSeen[op.Seq] = struct{}{}
		fresh = append(fresh, op)
	}
	if len(fresh) > 0 {
		c.log.Append(fresh...)
		c.merged = nil
	}
}

// downlinkLocked assembles the delta this host lacks and advances its
// cursors: corpus texts it neither uplinked nor received, vertices past its
// cursor, and other hosts' accepted learn records. The learn exclusion is
// by device prefix — host device IDs start with "<hostID>/" — so a host
// never replays its own learns a second time.
func (c *Coordinator) downlinkLocked(h *hostState) *adb.FedBatch {
	b := &adb.FedBatch{}
	for _, key := range c.corpusOrder[h.corpusSent:] {
		if h.corpusKnown.Add(key) {
			b.Progs = append(b.Progs, c.corpusText[key])
		}
	}
	h.corpusSent = len(c.corpusOrder)
	for _, name := range c.vertOrder[h.vertSent:] {
		b.Verts = append(b.Verts, adb.FedVertex{Name: name, Weight: c.verts[name]})
	}
	h.vertSent = len(c.vertOrder)
	var foreign []relation.LearnOp
	for _, op := range c.log.Since(h.logSent) {
		if !strings.HasPrefix(op.Device, h.id+"/") {
			foreign = append(foreign, op)
		}
	}
	h.logSent = c.log.Len()
	if fl, err := EncodeLearns(foreign); err == nil {
		b.Learns = fl
	} else {
		// An unencodable record (seq past uint32) fails permanently, so
		// holding the cursor back would just re-fail every downlink and
		// block everything behind it. Advance, but count the loss where
		// Stats surfaces it instead of dropping silently. (Unreachable for
		// journal records that arrived over the wire — decode already
		// bounds their seqs to uint32 — but kept for directly driven
		// coordinators and future record sources.)
		c.learnsDropped += uint64(len(foreign))
	}
	if emptyBatch(b) {
		return nil
	}
	c.bytesOut += uint64(BatchBytes(b))
	return b
}

// Merged rebuilds (or returns the cached) merged relation graph: a fresh
// graph over the union vertex set, replaying the full accepted learn
// journal in (device, seq) order. Rebuild-by-replay is what makes the
// merge commutative — the journal deduplicates to the same record set in
// any arrival order, and the sorted replay is a pure function of that set.
func (c *Coordinator) Merged() *relation.Graph {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.merged != nil {
		return c.merged
	}
	g := relation.New()
	for _, name := range c.vertOrder {
		g.AddVertex(name, c.verts[name])
	}
	relation.Replay(g, c.log.Ops())
	c.merged = g
	return g
}

// LearnJournal returns the accepted learn records in acceptance order —
// the recorded learn order the golden test replays.
func (c *Coordinator) LearnJournal() []relation.LearnOp { return c.log.Ops() }

// CorpusJournal returns the federated corpus admissions in acceptance
// order as (hash, admitting host) pairs.
func (c *Coordinator) CorpusJournal() (hashes []uint64, from []string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	hashes = append(hashes, c.corpusOrder...)
	for _, key := range c.corpusOrder {
		from = append(from, c.corpusFrom[key])
	}
	return hashes, from
}

// Vertices returns the union vertex set in first-seen order with weights.
func (c *Coordinator) Vertices() []adb.FedVertex {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]adb.FedVertex, 0, len(c.vertOrder))
	for _, name := range c.vertOrder {
		out = append(out, adb.FedVertex{Name: name, Weight: c.verts[name]})
	}
	return out
}

// Fingerprint returns the order-independent digest of the federated corpus.
func (c *Coordinator) Fingerprint() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := corpus.NewHashSet()
	for _, key := range c.corpusOrder {
		s.Add(key)
	}
	return s.Fingerprint()
}

// Stats is a coordinator status snapshot.
type Stats struct {
	Hosts, Live             int
	ShardsTotal, ShardsDone int
	Steals                  uint64
	Evictions               int
	CorpusSize              int
	CorpusFingerprint       uint64
	Vertices, Edges         int
	LearnOps                int
	BytesIn, BytesOut       uint64
	// LearnsDropped counts learn records lost to downlink encode failures
	// (cursor advanced past records that can never ship).
	LearnsDropped uint64
	Done          bool
	// Stranded means Done closed because the whole registered fleet was
	// evicted with shards unfinished, not because the campaign completed.
	Stranded bool
}

// HostInfo is one host's row in the coordinator summary.
type HostInfo struct {
	ID, Name string
	Health   float64
	Evicted  bool
	Execs    uint64
	Steals   uint64
	Queued   int
	Leased   int
}

// Snapshot returns coordinator stats plus per-host rows in registration
// order.
func (c *Coordinator) Snapshot() (Stats, []HostInfo) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Stats{
		Hosts:         len(c.hosts),
		ShardsTotal:   len(c.shards),
		Steals:        c.steals,
		Evictions:     c.evictions,
		CorpusSize:    len(c.corpusOrder),
		LearnOps:      c.log.Len(),
		BytesIn:       c.bytesIn,
		BytesOut:      c.bytesOut,
		LearnsDropped: c.learnsDropped,
		Vertices:      len(c.vertOrder),
		Stranded:      c.stranded,
	}
	if c.merged != nil {
		st.Edges = c.merged.Edges()
	}
	done := 0
	for _, sh := range c.shards {
		if sh.done {
			done++
		}
	}
	st.ShardsDone = done
	st.Done = done == len(c.shards)
	s := corpus.NewHashSet()
	for _, key := range c.corpusOrder {
		s.Add(key)
	}
	st.CorpusFingerprint = s.Fingerprint()
	var hosts []HostInfo
	for _, id := range c.order {
		h := c.hosts[id]
		if !h.evicted {
			st.Live++
		}
		hosts = append(hosts, HostInfo{
			ID: h.id, Name: h.name, Health: h.health, Evicted: h.evicted,
			Execs: h.execs, Steals: h.steals, Queued: len(h.queue), Leased: len(h.leased),
		})
	}
	return st, hosts
}

// Drained reports whether the campaign is done AND every live host has
// confirmed — via a final empty-uplink, empty-downlink Sync — that it holds
// the complete federated state, so the coordinator can exit without
// stranding a host mid-drain.
func (c *Coordinator) Drained() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, sh := range c.shards {
		if !sh.done {
			return false
		}
	}
	for _, id := range c.order {
		h := c.hosts[id]
		if h.evicted {
			continue
		}
		if !h.drained || h.corpusSent < len(c.corpusOrder) || h.logSent < c.log.Len() {
			return false
		}
	}
	return true
}
