package coord

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"time"

	"droidfuzz/internal/adb"
	"droidfuzz/internal/corpus"
	"droidfuzz/internal/relation"
)

// fakeClock is an injectable coordinator clock.
type fakeClock struct{ t time.Time }

func (f *fakeClock) now() time.Time          { return f.t }
func (f *fakeClock) advance(d time.Duration) { f.t = f.t.Add(d) }

func newTestCoordinator(t *testing.T, camp Campaign, opts Options) (*Coordinator, *fakeClock) {
	t.Helper()
	c, err := New(camp, opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	fc := &fakeClock{t: time.Unix(1700000000, 0)}
	c.now = fc.now
	return c, fc
}

func mustRegister(t *testing.T, c *Coordinator, name string) string {
	t.Helper()
	reg, err := c.Register(name)
	if err != nil {
		t.Fatalf("register %s: %v", name, err)
	}
	return reg.HostID
}

func TestRegisterPartitionsShards(t *testing.T) {
	c, _ := newTestCoordinator(t, Campaign{Models: []string{"A1", "B"}, Shards: 6, Iters: 10}, Options{Hosts: 2})
	a := mustRegister(t, c, "alpha")
	b := mustRegister(t, c, "beta")
	if a == b {
		t.Fatalf("hosts share an ID: %s", a)
	}
	// Each host drains 3 shards from its own queue with no steals.
	for i := 0; i < 3; i++ {
		for _, id := range []string{a, b} {
			sh, err := c.Lease(id)
			if err != nil {
				t.Fatalf("lease %s: %v", id, err)
			}
			if sh.Done || sh.Wait {
				t.Fatalf("lease %s round %d: unexpected done/wait %+v", id, i, sh)
			}
			if sh.Stolen {
				t.Fatalf("lease %s round %d: stolen from own queue", id, i)
			}
		}
	}
	st, _ := c.Snapshot()
	if st.Steals != 0 {
		t.Fatalf("steals = %d before any queue ran dry", st.Steals)
	}
	// Shard models alternate through the model list.
	sh := c.shards
	if sh[0].spec.Model != "A1" || sh[1].spec.Model != "B" || sh[2].spec.Model != "A1" {
		t.Fatalf("model round-robin broken: %s %s %s", sh[0].spec.Model, sh[1].spec.Model, sh[2].spec.Model)
	}
	// Seed ranges are disjoint per shard.
	if sh[1].spec.Seed != sh[0].spec.Seed+int64(sh[0].spec.Devices) {
		t.Fatalf("seed ranges overlap: shard0 %d devices %d, shard1 %d", sh[0].spec.Seed, sh[0].spec.Devices, sh[1].spec.Seed)
	}
}

func TestWorkStealingFromLongestQueue(t *testing.T) {
	// One expected host: registration gives the first host everything; a
	// late second host must live off stealing from the first's tail.
	c, _ := newTestCoordinator(t, Campaign{Models: []string{"A1"}, Shards: 4, Iters: 10}, Options{Hosts: 1})
	a := mustRegister(t, c, "alpha")
	b := mustRegister(t, c, "beta")

	sh, err := c.Lease(b)
	if err != nil {
		t.Fatalf("lease: %v", err)
	}
	if !sh.Stolen {
		t.Fatal("late host's lease not marked stolen")
	}
	if sh.ID != 3 {
		t.Fatalf("steal took shard %d, want the tail shard 3", sh.ID)
	}
	// The victim still leases its own head untouched.
	own, err := c.Lease(a)
	if err != nil {
		t.Fatalf("lease victim: %v", err)
	}
	if own.Stolen || own.ID != 0 {
		t.Fatalf("victim lease disturbed: %+v", own)
	}
	st, hosts := c.Snapshot()
	if st.Steals != 1 {
		t.Fatalf("steals = %d, want 1", st.Steals)
	}
	if hosts[1].Steals != 1 {
		t.Fatalf("thief's steal count = %d", hosts[1].Steals)
	}
}

func TestLeaseWaitThenDone(t *testing.T) {
	c, _ := newTestCoordinator(t, Campaign{Models: []string{"A1"}, Shards: 1, Iters: 10}, Options{Hosts: 2})
	a := mustRegister(t, c, "alpha")
	b := mustRegister(t, c, "beta")
	sh, err := c.Lease(a)
	if err != nil || sh.ID != 0 {
		t.Fatalf("lease: %+v, %v", sh, err)
	}
	// The only shard is in flight: the second host must Wait, not Done —
	// the holder might die and the shard requeue.
	w, err := c.Lease(b)
	if err != nil || !w.Wait {
		t.Fatalf("want wait, got %+v, %v", w, err)
	}
	if _, err := c.Complete(&adb.CoordComplete{HostID: a, ShardID: 0}); err != nil {
		t.Fatalf("complete: %v", err)
	}
	d, err := c.Lease(b)
	if err != nil || !d.Done {
		t.Fatalf("want done, got %+v, %v", d, err)
	}
	select {
	case <-c.Done():
	default:
		t.Fatal("Done channel not closed after campaign drained")
	}
	// Drained requires the handshake: each live host must report one
	// empty-uplink, empty-downlink Sync after completion.
	if c.Drained() {
		t.Fatal("coordinator drained before hosts confirmed via final Sync")
	}
	for _, id := range []string{a, b} {
		if _, err := c.Sync(&adb.CoordSync{HostID: id}); err != nil {
			t.Fatalf("final sync %s: %v", id, err)
		}
	}
	if !c.Drained() {
		t.Fatal("coordinator not drained after both hosts' empty final Sync")
	}
}

func TestEvictionRequeuesWarmShard(t *testing.T) {
	c, fc := newTestCoordinator(t, Campaign{Models: []string{"A1"}, Shards: 2, Iters: 100},
		Options{Hosts: 2, EvictAfter: 5 * time.Second})
	a := mustRegister(t, c, "alpha")
	b := mustRegister(t, c, "beta")

	sh, err := c.Lease(a)
	if err != nil {
		t.Fatalf("lease: %v", err)
	}
	ckpt := []byte("portable-checkpoint-blob")
	if _, err := c.Progress(&adb.CoordProgress{HostID: a, ShardID: sh.ID, ExecsDone: 40, Checkpoint: ckpt}); err != nil {
		t.Fatalf("progress: %v", err)
	}

	// Host A goes silent past the eviction bound; B's next activity evicts
	// it and requeues both its in-flight shard and its queued one.
	fc.advance(6 * time.Second)
	if _, err := c.Heartbeat(b, 0); err != nil {
		t.Fatalf("heartbeat: %v", err)
	}
	st, hosts := c.Snapshot()
	if st.Evictions != 1 || !hosts[0].Evicted {
		t.Fatalf("host A not evicted: %+v %+v", st, hosts)
	}
	if _, err := c.Lease(a); err == nil {
		t.Fatal("evicted host could still lease")
	}

	// B drains its own queue first, then adopts A's work warm.
	seen := map[int]*adb.CoordShard{}
	for {
		got, err := c.Lease(b)
		if err != nil {
			t.Fatalf("lease b: %v", err)
		}
		if got.Done || got.Wait {
			break
		}
		seen[got.ID] = got
		if _, err := c.Complete(&adb.CoordComplete{HostID: b, ShardID: got.ID}); err != nil {
			t.Fatalf("complete: %v", err)
		}
	}
	re, ok := seen[sh.ID]
	if !ok {
		t.Fatalf("evicted host's in-flight shard %d never requeued (saw %v)", sh.ID, seen)
	}
	if !re.Stolen {
		t.Fatal("requeued shard not marked stolen")
	}
	if re.Iters != 60 {
		t.Fatalf("requeued shard resumes with %d iters, want 100-40=60", re.Iters)
	}
	if string(re.Checkpoint) != string(ckpt) {
		t.Fatal("requeued shard lost its warm checkpoint")
	}
	if len(seen) != 2 {
		t.Fatalf("survivor completed %d shards, want 2", len(seen))
	}
}

// TestMergeIdempotentOnRetry pins the retry-safety contract: a host
// resending the same uplink after an ambiguous transport failure must not
// duplicate corpus entries or learn records.
func TestMergeIdempotentOnRetry(t *testing.T) {
	c, _ := newTestCoordinator(t, Campaign{Models: []string{"A1"}, Shards: 1, Iters: 10}, Options{})
	a := mustRegister(t, c, "alpha")
	ops := []relation.LearnOp{
		{A: "x", B: "y", Device: a + "/s0.0/A1", Seq: 0},
		{A: "y", B: "z", Device: a + "/s0.0/A1", Seq: 1},
	}
	fl, err := EncodeLearns(ops)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	batch := &adb.FedBatch{
		Progs:  []string{"prog-one", "prog-two"},
		Verts:  []adb.FedVertex{{Name: "x", Weight: 1}, {Name: "y", Weight: 1}, {Name: "z", Weight: 1}},
		Learns: fl,
	}
	for i := 0; i < 3; i++ {
		if _, err := c.Sync(&adb.CoordSync{HostID: a, Batch: batch}); err != nil {
			t.Fatalf("sync %d: %v", i, err)
		}
	}
	st, _ := c.Snapshot()
	if st.CorpusSize != 2 {
		t.Fatalf("corpus size %d after triple uplink, want 2", st.CorpusSize)
	}
	if st.LearnOps != 2 {
		t.Fatalf("journal holds %d ops after triple uplink, want 2", st.LearnOps)
	}
	if st.Vertices != 3 {
		t.Fatalf("vertex union %d, want 3", st.Vertices)
	}
}

// TestDownlinkExcludesOwnContributions: a host must never receive its own
// programs or learn records back.
func TestDownlinkExcludesOwnContributions(t *testing.T) {
	c, _ := newTestCoordinator(t, Campaign{Models: []string{"A1"}, Shards: 2, Iters: 10}, Options{Hosts: 2})
	a := mustRegister(t, c, "alpha")
	b := mustRegister(t, c, "beta")

	aOps := []relation.LearnOp{{A: "x", B: "y", Device: a + "/s0.0/A1", Seq: 0}}
	aFl, _ := EncodeLearns(aOps)
	ack, err := c.Sync(&adb.CoordSync{HostID: a, Batch: &adb.FedBatch{Progs: []string{"from-a"}, Learns: aFl}})
	if err != nil {
		t.Fatalf("sync a: %v", err)
	}
	if !emptyBatch(ack.Batch) {
		t.Fatalf("host A got its own contribution back: %+v", ack.Batch)
	}

	// B's downlink carries A's novelty exactly once.
	ack, err = c.Sync(&adb.CoordSync{HostID: b, Batch: nil})
	if err != nil {
		t.Fatalf("sync b: %v", err)
	}
	if ack.Batch == nil || len(ack.Batch.Progs) != 1 || ack.Batch.Progs[0] != "from-a" {
		t.Fatalf("host B downlink: %+v", ack.Batch)
	}
	got, err := DecodeLearns(ack.Batch.Learns)
	if err != nil || len(got) != 1 || got[0] != aOps[0] {
		t.Fatalf("host B learn downlink: %+v, %v", got, err)
	}
	// Second sync: cursors advanced, nothing new.
	ack, err = c.Sync(&adb.CoordSync{HostID: b, Batch: nil})
	if err != nil || !emptyBatch(ack.Batch) {
		t.Fatalf("host B re-received the delta: %+v, %v", ack.Batch, err)
	}
}

// TestMergeCommutativity is the property test: whatever order host uplinks
// arrive in, the coordinator's merged relation graph and corpus fingerprint
// are identical, because the merge is defined as a replay of the deduped
// journal in (device, seq) order.
func TestMergeCommutativity(t *testing.T) {
	const trials = 8
	type batch struct {
		host  int
		progs []string
		verts []adb.FedVertex
		ops   []relation.LearnOp
	}

	// One fixed contribution set, split into per-host batches.
	rng := rand.New(rand.NewSource(42))
	names := []string{"v0", "v1", "v2", "v3", "v4", "v5"}
	var batches []batch
	for hostIdx := 0; hostIdx < 3; hostIdx++ {
		seqs := map[string]uint64{}
		for chunk := 0; chunk < 4; chunk++ {
			bt := batch{host: hostIdx}
			for p := 0; p < 3; p++ {
				bt.progs = append(bt.progs, fmt.Sprintf("prog-%d-%d", hostIdx, rng.Intn(8)))
			}
			for v := 0; v < 2; v++ {
				n := names[rng.Intn(len(names))]
				bt.verts = append(bt.verts, adb.FedVertex{Name: n, Weight: 1})
			}
			dev := fmt.Sprintf("h%d/s0.0/A1", hostIdx+1)
			for o := 0; o < 6; o++ {
				bt.ops = append(bt.ops, relation.LearnOp{
					A: names[rng.Intn(len(names))], B: names[rng.Intn(len(names))],
					Device: dev, Seq: seqs[dev],
				})
				seqs[dev]++
			}
			batches = append(batches, bt)
		}
	}

	// edgeDump renders a graph as its full sorted edge list with weights, so
	// the comparison below is edge-for-edge, not just counts.
	edgeDump := func(g *relation.Graph) string {
		var lines []string
		for _, name := range g.Names() {
			for _, e := range g.Successors(name) {
				lines = append(lines, fmt.Sprintf("%s->%s=%.9f", e.From, e.To, e.Weight))
			}
		}
		sort.Strings(lines)
		return strings.Join(lines, "\n")
	}

	var wantFP uint64
	var wantGraph string
	for trial := 0; trial < trials; trial++ {
		c, _ := newTestCoordinator(t, Campaign{Models: []string{"A1"}, Shards: 1, Iters: 1}, Options{Hosts: 3})
		ids := []string{mustRegister(t, c, "a"), mustRegister(t, c, "b"), mustRegister(t, c, "c")}

		order := rand.New(rand.NewSource(int64(trial))).Perm(len(batches))
		for _, bi := range order {
			bt := batches[bi]
			fl, err := EncodeLearns(bt.ops)
			if err != nil {
				t.Fatalf("encode: %v", err)
			}
			_, err = c.Sync(&adb.CoordSync{HostID: ids[bt.host], Batch: &adb.FedBatch{
				Progs: bt.progs, Verts: bt.verts, Learns: fl,
			}})
			if err != nil {
				t.Fatalf("sync: %v", err)
			}
		}
		fp := c.Fingerprint()
		g := c.Merged().String() + "\n" + edgeDump(c.Merged())
		if trial == 0 {
			wantFP, wantGraph = fp, g
			continue
		}
		if fp != wantFP {
			t.Fatalf("trial %d: corpus fingerprint %#x != %#x", trial, fp, wantFP)
		}
		if g != wantGraph {
			t.Fatalf("trial %d: merged graph diverged under arrival order:\n%s\nvs\n%s", trial, g, wantGraph)
		}
	}
}

// TestMergedReplayMatchesManual verifies the merged graph equals a fresh
// graph fed the same journal — edge for edge.
func TestMergedReplayMatchesManual(t *testing.T) {
	c, _ := newTestCoordinator(t, Campaign{Models: []string{"A1"}, Shards: 1, Iters: 1}, Options{})
	a := mustRegister(t, c, "alpha")
	ops := sampleOps(300, 5)
	fl, _ := EncodeLearns(ops)
	verts := []adb.FedVertex{
		{Name: "open_tcpc", Weight: 2}, {Name: "ioctl_role_set", Weight: 1},
		{Name: "close_tcpc", Weight: 1}, {Name: "hci_open", Weight: 1}, {Name: "hci_cmd", Weight: 1},
	}
	if _, err := c.Sync(&adb.CoordSync{HostID: a, Batch: &adb.FedBatch{Verts: verts, Learns: fl}}); err != nil {
		t.Fatalf("sync: %v", err)
	}
	manual := relation.New()
	for _, v := range verts {
		manual.AddVertex(v.Name, v.Weight)
	}
	relation.Replay(manual, c.LearnJournal())
	got := c.Merged()
	if got.String() != manual.String() {
		t.Fatalf("merged graph != manual replay:\n%s\nvs\n%s", got.String(), manual.String())
	}
	if got.Edges() == 0 {
		t.Fatal("merged graph learned nothing")
	}
}

func TestHealthScoreDecaysWhenLate(t *testing.T) {
	c, fc := newTestCoordinator(t, Campaign{Models: []string{"A1"}, Shards: 1, Iters: 1},
		Options{EvictAfter: 10 * time.Second, HeartbeatEvery: time.Second})
	a := mustRegister(t, c, "alpha")
	beat, err := c.Heartbeat(a, 0)
	if err != nil {
		t.Fatalf("heartbeat: %v", err)
	}
	if beat.Health < 0.99 {
		t.Fatalf("on-time host health %f, want ~1", beat.Health)
	}
	fc.advance(9 * time.Second) // late but inside the eviction bound
	beat, err = c.Heartbeat(a, 0)
	if err != nil {
		t.Fatalf("late heartbeat: %v", err)
	}
	if beat.Health >= 0.99 {
		t.Fatalf("late host health %f did not decay", beat.Health)
	}
	if beat.Health < 0 || beat.Health > 1 {
		t.Fatalf("health %f outside [0,1]", beat.Health)
	}
}

func TestCorpusJournalTracksOrigins(t *testing.T) {
	c, _ := newTestCoordinator(t, Campaign{Models: []string{"A1"}, Shards: 1, Iters: 1}, Options{Hosts: 2})
	a := mustRegister(t, c, "alpha")
	b := mustRegister(t, c, "beta")
	c.Sync(&adb.CoordSync{HostID: a, Batch: &adb.FedBatch{Progs: []string{"p1"}}})
	c.Sync(&adb.CoordSync{HostID: b, Batch: &adb.FedBatch{Progs: []string{"p2", "p1"}}})
	hashes, from := c.CorpusJournal()
	if len(hashes) != 2 {
		t.Fatalf("journal length %d, want 2 (p1 deduped)", len(hashes))
	}
	if hashes[0] != corpus.Hash("p1") || from[0] != a {
		t.Fatalf("first admission: %#x from %s", hashes[0], from[0])
	}
	if hashes[1] != corpus.Hash("p2") || from[1] != b {
		t.Fatalf("second admission: %#x from %s", hashes[1], from[1])
	}
}
