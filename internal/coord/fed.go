// Package coord implements the multi-host fleet layer: a coordinator that
// shards one campaign across many hosts, hands shards out with work
// stealing, evicts dead hosts and requeues their shards warm, and
// federates the hosts' learned state — corpus admissions deduplicated by
// canonical-text hash and relation learn records replayed in (device, seq)
// order — so the fleet converges on one global corpus and relation graph
// without sharing a lock. See DESIGN.md "Fleet topology & federation".
package coord

import (
	"fmt"

	"droidfuzz/internal/adb"
	"droidfuzz/internal/kcov"
	"droidfuzz/internal/relation"
)

// The learn-batch codec. A federation uplink carries thousands of learn
// records whose fields repeat heavily: a handful of vertex names, one
// device per engine, and per-device sequence numbers that increase by one
// almost every record. Columnar table-index encoding plus the kcov
// zigzag-varint delta codec turns that redundancy into ~1 byte per column
// per record, where flat gob encoding of []LearnOp re-ships every string.

// EncodeLearns packs ops into the columnar delta/varint wire block.
// Sequence numbers must fit uint32 (an engine would need years of
// continuous learning to overflow; the error keeps truncation loud).
func EncodeLearns(ops []relation.LearnOp) (adb.FedLearns, error) {
	var fl adb.FedLearns
	if len(ops) == 0 {
		return fl, nil
	}
	nameIdx := make(map[string]uint32)
	devIdx := make(map[string]uint32)
	intern := func(tbl *[]string, idx map[string]uint32, s string) uint32 {
		if i, ok := idx[s]; ok {
			return i
		}
		i := uint32(len(*tbl))
		*tbl = append(*tbl, s)
		idx[s] = i
		return i
	}
	a := make([]uint32, len(ops))
	b := make([]uint32, len(ops))
	dev := make([]uint32, len(ops))
	seq := make([]uint32, len(ops))
	for i, op := range ops {
		if op.Seq > 1<<32-1 {
			return adb.FedLearns{}, fmt.Errorf("coord: learn seq %d overflows the wire's uint32", op.Seq)
		}
		a[i] = intern(&fl.Names, nameIdx, op.A)
		b[i] = intern(&fl.Names, nameIdx, op.B)
		dev[i] = intern(&fl.Devices, devIdx, op.Device)
		seq[i] = uint32(op.Seq)
	}
	fl.A = kcov.AppendDelta(nil, a)
	fl.B = kcov.AppendDelta(nil, b)
	fl.Dev = kcov.AppendDelta(nil, dev)
	fl.Seq = kcov.AppendDelta(nil, seq)
	fl.Count = len(ops)
	return fl, nil
}

// DecodeLearns unpacks a wire block back into learn records, validating
// column lengths and table indexes (the stream may come from a hostile or
// corrupted peer).
func DecodeLearns(fl adb.FedLearns) ([]relation.LearnOp, error) {
	if fl.Count == 0 {
		return nil, nil
	}
	if fl.Count < 0 {
		return nil, fmt.Errorf("coord: negative learn count %d", fl.Count)
	}
	col := func(name string, data []byte) ([]uint32, error) {
		vals, err := kcov.DecodeDelta(make([]uint32, 0, fl.Count), data)
		if err != nil {
			return nil, fmt.Errorf("coord: learn column %s: %w", name, err)
		}
		if len(vals) != fl.Count {
			return nil, fmt.Errorf("coord: learn column %s has %d entries, want %d", name, len(vals), fl.Count)
		}
		return vals, nil
	}
	a, err := col("A", fl.A)
	if err != nil {
		return nil, err
	}
	b, err := col("B", fl.B)
	if err != nil {
		return nil, err
	}
	dev, err := col("Dev", fl.Dev)
	if err != nil {
		return nil, err
	}
	seq, err := col("Seq", fl.Seq)
	if err != nil {
		return nil, err
	}
	ops := make([]relation.LearnOp, fl.Count)
	for i := range ops {
		if int(a[i]) >= len(fl.Names) || int(b[i]) >= len(fl.Names) {
			return nil, fmt.Errorf("coord: learn record %d: name index out of range", i)
		}
		if int(dev[i]) >= len(fl.Devices) {
			return nil, fmt.Errorf("coord: learn record %d: device index out of range", i)
		}
		ops[i] = relation.LearnOp{
			A:      fl.Names[a[i]],
			B:      fl.Names[b[i]],
			Device: fl.Devices[dev[i]],
			Seq:    uint64(seq[i]),
		}
	}
	return ops, nil
}

// BatchBytes estimates one federation batch's payload size: string bytes
// plus the encoded learn columns plus fixed per-field overhead. It is the
// accounting both sides report as federation bytes in/out (close enough to
// the gob frame size for capacity planning, and exactly comparable between
// the delta-coded and naive encodings the benchmark contrasts).
func BatchBytes(b *adb.FedBatch) int {
	if b == nil {
		return 0
	}
	n := 0
	for _, p := range b.Progs {
		n += len(p) + 8
	}
	for _, v := range b.Verts {
		n += len(v.Name) + 8
	}
	for _, s := range b.Learns.Names {
		n += len(s) + 2
	}
	for _, s := range b.Learns.Devices {
		n += len(s) + 2
	}
	n += len(b.Learns.A) + len(b.Learns.B) + len(b.Learns.Dev) + len(b.Learns.Seq)
	return n
}

// emptyBatch reports whether b carries nothing worth shipping.
func emptyBatch(b *adb.FedBatch) bool {
	return b == nil || (len(b.Progs) == 0 && len(b.Verts) == 0 && b.Learns.Count == 0)
}
