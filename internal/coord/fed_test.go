package coord

import (
	"encoding/gob"
	"io"
	"math/rand"
	"testing"

	"droidfuzz/internal/adb"
	"droidfuzz/internal/relation"
)

func sampleOps(n int, seed int64) []relation.LearnOp {
	rng := rand.New(rand.NewSource(seed))
	names := []string{"open_tcpc", "ioctl_role_set", "close_tcpc", "hci_open", "hci_cmd"}
	devs := []string{"h1/s0.0/A1", "h1/s0.1/A1", "h2/s1.0/B"}
	seqs := make(map[string]uint64)
	ops := make([]relation.LearnOp, n)
	for i := range ops {
		dev := devs[rng.Intn(len(devs))]
		ops[i] = relation.LearnOp{
			A:      names[rng.Intn(len(names))],
			B:      names[rng.Intn(len(names))],
			Device: dev,
			Seq:    seqs[dev],
		}
		seqs[dev]++
	}
	return ops
}

func TestLearnCodecRoundTrip(t *testing.T) {
	ops := sampleOps(500, 7)
	fl, err := EncodeLearns(ops)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeLearns(fl)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got) != len(ops) {
		t.Fatalf("round trip count: got %d want %d", len(got), len(ops))
	}
	for i := range ops {
		if got[i] != ops[i] {
			t.Fatalf("op %d: got %+v want %+v", i, got[i], ops[i])
		}
	}
}

func TestLearnCodecEmpty(t *testing.T) {
	fl, err := EncodeLearns(nil)
	if err != nil {
		t.Fatalf("encode empty: %v", err)
	}
	if fl.Count != 0 {
		t.Fatalf("empty block has count %d", fl.Count)
	}
	got, err := DecodeLearns(fl)
	if err != nil || got != nil {
		t.Fatalf("decode empty: got %v, %v", got, err)
	}
}

func TestLearnCodecSeqOverflow(t *testing.T) {
	_, err := EncodeLearns([]relation.LearnOp{{A: "a", B: "b", Device: "d", Seq: 1 << 33}})
	if err == nil {
		t.Fatal("encode accepted a sequence number beyond uint32")
	}
}

func TestLearnCodecRejectsCorruptBlocks(t *testing.T) {
	ops := sampleOps(50, 3)
	fl, err := EncodeLearns(ops)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	cases := map[string]func(adb.FedLearns) adb.FedLearns{
		"negative count":   func(f adb.FedLearns) adb.FedLearns { f.Count = -1; return f },
		"short column":     func(f adb.FedLearns) adb.FedLearns { f.A = f.A[:len(f.A)/2]; return f },
		"count mismatch":   func(f adb.FedLearns) adb.FedLearns { f.Count++; return f },
		"missing names":    func(f adb.FedLearns) adb.FedLearns { f.Names = f.Names[:1]; return f },
		"missing devices":  func(f adb.FedLearns) adb.FedLearns { f.Devices = nil; return f },
		"truncated column": func(f adb.FedLearns) adb.FedLearns { f.Seq = nil; return f },
	}
	for name, mutate := range cases {
		if _, err := DecodeLearns(mutate(fl)); err == nil {
			t.Errorf("%s: decode accepted the corrupt block", name)
		}
	}
}

// TestLearnCodecCompression pins the tentpole claim at the codec level: the
// columnar delta block is far smaller than flat gob encoding of the same
// records (the naive full-state sync baseline ships).
func TestLearnCodecCompression(t *testing.T) {
	ops := sampleOps(2000, 11)
	fl, err := EncodeLearns(ops)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	delta := BatchBytes(&adb.FedBatch{Learns: fl})

	var cw countWriter
	if err := gob.NewEncoder(&cw).Encode(ops); err != nil {
		t.Fatalf("gob baseline: %v", err)
	}
	if int(cw) < delta*5 {
		t.Fatalf("delta block %dB not >=5x smaller than gob %dB", delta, int(cw))
	}
}

type countWriter int

func (c *countWriter) Write(p []byte) (int, error) {
	*c += countWriter(len(p))
	return len(p), nil
}

var _ io.Writer = (*countWriter)(nil)

func TestBatchBytes(t *testing.T) {
	if BatchBytes(nil) != 0 {
		t.Fatal("nil batch has nonzero size")
	}
	b := &adb.FedBatch{Progs: []string{"abcd"}, Verts: []adb.FedVertex{{Name: "xy"}}}
	if got := BatchBytes(b); got != 4+8+2+8 {
		t.Fatalf("BatchBytes = %d, want %d", got, 4+8+2+8)
	}
	if !emptyBatch(nil) || !emptyBatch(&adb.FedBatch{}) {
		t.Fatal("empty batches not detected")
	}
	if emptyBatch(b) {
		t.Fatal("non-empty batch reported empty")
	}
}
