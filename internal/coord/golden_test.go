package coord

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"droidfuzz/internal/daemon"
	"droidfuzz/internal/relation"
)

// newPipeClient dials the coordinator server over an in-process net.Pipe —
// the full wire protocol with no sockets.
func newPipeClient(t *testing.T, srv *Server) *Client {
	t.Helper()
	cl, err := DialClient("pipe", ClientOptions{
		Dialer: func() (io.ReadWriteCloser, error) {
			hostEnd, coordEnd := net.Pipe()
			go srv.Serve(coordEnd)
			return hostEnd, nil
		},
	})
	if err != nil {
		t.Fatalf("dial pipe client: %v", err)
	}
	return cl
}

func graphEdges(g *relation.Graph) string {
	var lines []string
	for _, name := range g.Names() {
		for _, e := range g.Successors(name) {
			lines = append(lines, fmt.Sprintf("%s->%s=%.9f", e.From, e.To, e.Weight))
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// TestGoldenFederatedDeterminism is the tentpole's golden test: two real
// hosts run a sharded campaign against one coordinator over net.Pipe, and
// afterwards (1) every party holds the identical federated corpus
// (order-independent fingerprints agree and are nonzero), and (2) the
// coordinator's merged relation graph is reproducible edge-for-edge from
// nothing but the recorded learn journal — the determinism contract that
// makes a fleet campaign auditable after the fact.
func TestGoldenFederatedDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("boots real devices; skip in -short")
	}
	coord, err := New(
		Campaign{Models: []string{"A1", "B"}, Shards: 2, Devices: 1, Iters: 40, EpochIters: 20, Seed: 7},
		Options{Hosts: 2, EvictAfter: time.Minute},
	)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	srv := &Server{C: coord}

	hosts := make([]*Host, 2)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for i := range hosts {
		hosts[i] = NewHost(newPipeClient(t, srv), HostOptions{
			Name:       fmt.Sprintf("host-%d", i),
			LeaseRetry: 5 * time.Millisecond,
		})
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = hosts[i].Run()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("host %d: %v", i, err)
		}
	}

	st, _ := coord.Snapshot()
	if !st.Done || st.ShardsDone != 2 {
		t.Fatalf("campaign not drained: %+v", st)
	}
	select {
	case <-coord.Done():
	default:
		t.Fatal("coordinator Done channel not closed")
	}
	if !coord.Drained() {
		t.Fatal("coordinator not drained after both hosts synced")
	}

	// (1) Corpus convergence: all three parties fingerprint identically.
	fp := coord.Fingerprint()
	if fp == 0 || st.CorpusSize == 0 {
		t.Fatalf("federated corpus empty: fp=%#x size=%d", fp, st.CorpusSize)
	}
	for i, h := range hosts {
		if got := h.Fingerprint(); got != fp {
			t.Fatalf("host %d corpus fingerprint %#x != coordinator %#x", i, got, fp)
		}
	}

	// (2) The merged graph is a pure function of the recorded learn order:
	// rebuild from the journal alone and compare edge-for-edge.
	journal := coord.LearnJournal()
	if len(journal) == 0 {
		t.Fatal("empty learn journal after a federated campaign")
	}
	replica := relation.New()
	for _, v := range coord.Vertices() {
		replica.AddVertex(v.Name, v.Weight)
	}
	relation.Replay(replica, journal)
	merged := coord.Merged()
	if graphEdges(merged) != graphEdges(replica) {
		t.Fatal("merged graph not reproducible from the recorded learn journal")
	}
	if merged.Learns() != replica.Learns() {
		t.Fatalf("replayed learns %d != merged learns %d", replica.Learns(), merged.Learns())
	}

	// Journal hygiene: (device, seq) keys unique fleet-wide, devices carry
	// their host prefix.
	seen := map[string]struct{}{}
	for _, op := range journal {
		key := fmt.Sprintf("%s#%d", op.Device, op.Seq)
		if _, dup := seen[key]; dup {
			t.Fatalf("duplicate journal key %s", key)
		}
		seen[key] = struct{}{}
		if !strings.HasPrefix(op.Device, "h1/") && !strings.HasPrefix(op.Device, "h2/") {
			t.Fatalf("journal device %q lacks a host prefix", op.Device)
		}
	}

	// Each host's published status carries the fleet block with the same
	// converged corpus hash.
	for i, h := range hosts {
		var buf bytes.Buffer
		if err := h.Daemon().WriteStatus(&buf); err != nil {
			t.Fatalf("host %d status: %v", i, err)
		}
		var rep struct {
			Fleet *daemon.FleetStatus `json:"fleet"`
		}
		if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
			t.Fatalf("host %d status json: %v", i, err)
		}
		if rep.Fleet == nil {
			t.Fatalf("host %d status lacks the fleet block", i)
		}
		if rep.Fleet.CorpusHash != fp {
			t.Fatalf("host %d status corpus_hash %#x != %#x", i, rep.Fleet.CorpusHash, fp)
		}
		if rep.Fleet.ShardEpoch == 0 || rep.Fleet.FedBytesOut == 0 {
			t.Fatalf("host %d federation counters dead: %+v", i, rep.Fleet)
		}
	}
}
