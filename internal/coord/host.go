package coord

import (
	"fmt"
	"sync"
	"time"

	"droidfuzz/internal/adb"
	"droidfuzz/internal/corpus"
	"droidfuzz/internal/daemon"
	"droidfuzz/internal/dsl"
	"droidfuzz/internal/engine"
	"droidfuzz/internal/relation"
)

// HostOptions configure one fleet host.
type HostOptions struct {
	// Name is the advisory operator label sent at registration.
	Name string
	// Workers / Pipeline / Batch tune the host daemon's execution layer
	// (zero keeps the daemon defaults).
	Workers  int
	Pipeline int
	Batch    int
	// Engine is the per-device engine configuration template; the shard
	// seed overwrites its Seed per device.
	Engine engine.Config
	// HeartbeatEvery is the background liveness cadence; 0 disables the
	// heartbeat goroutine (tests drive liveness explicitly).
	HeartbeatEvery time.Duration
	// LeaseRetry is the poll interval while the coordinator answers Wait
	// (default 50ms).
	LeaseRetry time.Duration
	// Attach overrides how a shard device is attached to the daemon; nil
	// uses AddDeviceAs with the Engine template. The perf harness injects
	// an attach that wraps the executor with simulated device latency.
	Attach func(d *daemon.Daemon, id, model string, seed int64) error
}

func (o *HostOptions) defaults() {
	if o.LeaseRetry <= 0 {
		o.LeaseRetry = 50 * time.Millisecond
	}
}

// Host is one fleet member: a daemon full of devices plus the coordinator
// protocol loop that leases shards, runs them epoch by epoch, and exchanges
// federation deltas.
type Host struct {
	c    *Client
	opts HostOptions
	d    *daemon.Daemon
	log  *relation.Log

	mu                sync.Mutex
	id                string
	known             corpus.HashSet // every federated program hash this host holds
	cMark             map[string]int // per-engine corpus uplink cursors
	vMark             int            // graph vertex uplink cursor
	lMark             int            // learn journal uplink cursor
	epochs            uint64
	bytesIn, bytesOut uint64
	steals            uint64
	learnsDropped     uint64 // learn records lost to uplink encode failures
	shards            []daemon.ShardStatus
}

// NewHost builds a host around a dialed coordinator client.
func NewHost(c *Client, opts HostOptions) *Host {
	opts.defaults()
	h := &Host{
		c:     c,
		opts:  opts,
		d:     daemon.New(),
		log:   relation.NewLog(),
		known: corpus.NewHashSet(),
		cMark: make(map[string]int),
	}
	h.d.SetLearnLog(h.log)
	if opts.Workers > 0 {
		h.d.SetMaxWorkers(opts.Workers)
	}
	if opts.Pipeline > 0 {
		h.d.SetPipelineDepth(opts.Pipeline)
	}
	if opts.Batch > 0 {
		h.d.SetBatchSize(opts.Batch)
	}
	return h
}

// Daemon exposes the host's daemon (status writing, stats).
func (h *Host) Daemon() *daemon.Daemon { return h.d }

// ID returns the coordinator-assigned host identity ("" before Run
// registers).
func (h *Host) ID() string {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.id
}

// execs sums lifetime executions across the host's engines.
func (h *Host) execs() uint64 {
	var n uint64
	for _, st := range h.d.Stats() {
		n += st.Execs
	}
	return n
}

// Run registers, then leases and runs shards until the coordinator reports
// the campaign done, finishing with a sync drain so this host holds the
// complete federated corpus and relation journal.
func (h *Host) Run() error {
	reg, err := h.c.Register(h.opts.Name)
	if err != nil {
		return fmt.Errorf("coord host: register: %w", err)
	}
	h.mu.Lock()
	h.id = reg.HostID
	h.mu.Unlock()
	epochIters := reg.EpochIters
	if epochIters <= 0 {
		epochIters = 256
	}

	quit := make(chan struct{})
	var wg sync.WaitGroup
	if h.opts.HeartbeatEvery > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tick := time.NewTicker(h.opts.HeartbeatEvery)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					// A failed beat is not fatal here: the epoch loop's own
					// calls refresh liveness too, and they surface errors.
					_, _ = h.c.Heartbeat(h.id, h.execs())
				case <-quit:
					return
				}
			}
		}()
	}
	defer func() {
		close(quit)
		wg.Wait()
	}()

	for {
		sh, err := h.c.Lease(h.id)
		if err != nil {
			return fmt.Errorf("coord host %s: lease: %w", h.id, err)
		}
		if sh.Done {
			break
		}
		if sh.Wait {
			time.Sleep(h.opts.LeaseRetry)
			continue
		}
		if sh.Stolen {
			h.mu.Lock()
			h.steals++
			h.mu.Unlock()
		}
		h.applyBatch(sh.Batch)
		if err := h.runShard(sh, epochIters); err != nil {
			return err
		}
	}

	// Drain: other hosts' final Complete uplinks may have landed after our
	// last exchange. Sync until a round moves nothing in either direction —
	// that empty-empty exchange doubles as the drained handshake the
	// coordinator waits for before it exits.
	for {
		up := h.collectUplink()
		ack, err := h.c.Sync(&adb.CoordSync{HostID: h.id, Batch: up})
		if err != nil {
			return fmt.Errorf("coord host %s: sync: %w", h.id, err)
		}
		h.applyBatch(ack.Batch)
		if up == nil && emptyBatch(ack.Batch) {
			break
		}
	}
	h.publish()
	return nil
}

// runShard attaches the shard's devices, resumes from a warm checkpoint
// when one rode the lease, and runs the iteration budget in federation
// epochs — every epoch ends with a Progress (or final Complete) exchange.
func (h *Host) runShard(sh *adb.CoordShard, epochIters int) error {
	attach := h.opts.Attach
	if attach == nil {
		attach = func(d *daemon.Daemon, id, model string, seed int64) error {
			cfg := h.opts.Engine
			cfg.Seed = seed
			return d.AddDeviceAs(id, model, cfg)
		}
	}
	ids := make([]string, sh.Devices)
	for j := 0; j < sh.Devices; j++ {
		id := fmt.Sprintf("%s/s%d.%d/%s", h.id, sh.ID, j, sh.Model)
		if err := attach(h.d, id, sh.Model, sh.Seed+int64(j)); err != nil {
			return fmt.Errorf("coord host %s: attach shard %d device %d: %w", h.id, sh.ID, j, err)
		}
		ids[j] = id
	}
	if len(sh.Checkpoint) > 0 {
		h.importCheckpoint(ids, sh.Checkpoint)
	}

	h.mu.Lock()
	h.shards = append(h.shards, daemon.ShardStatus{
		ID: sh.ID, Model: sh.Model, Devices: sh.Devices,
		Stolen: sh.Stolen, State: "running",
	})
	slot := len(h.shards) - 1
	h.mu.Unlock()

	done := 0
	for done < sh.Iters {
		n := sh.Iters - done
		if n > epochIters {
			n = epochIters
		}
		if err := h.d.RunOn(ids, n, true); err != nil {
			return fmt.Errorf("coord host %s: run shard %d: %w", h.id, sh.ID, err)
		}
		done += n
		h.mu.Lock()
		h.epochs++
		h.shards[slot].Execs = done
		h.mu.Unlock()

		up := h.collectUplink()
		var (
			ack *adb.CoordAck
			err error
		)
		if done < sh.Iters {
			ack, err = h.c.Progress(&adb.CoordProgress{
				HostID: h.id, ShardID: sh.ID, ExecsDone: done,
				Checkpoint: h.exportCheckpoint(ids), Batch: up,
			})
		} else {
			ack, err = h.c.Complete(&adb.CoordComplete{HostID: h.id, ShardID: sh.ID, Batch: up})
		}
		if err != nil {
			return fmt.Errorf("coord host %s: shard %d exchange: %w", h.id, sh.ID, err)
		}
		h.applyBatch(ack.Batch)
		h.publish()
	}
	h.mu.Lock()
	h.shards[slot].State = "done"
	h.mu.Unlock()
	h.publish()
	return nil
}

// exportCheckpoint captures the shard's representative device state (the
// first device's) when the executor supports checkpoints; nil otherwise.
func (h *Host) exportCheckpoint(ids []string) []byte {
	eng := h.d.Engine(ids[0])
	if eng == nil {
		return nil
	}
	cl, ok := eng.Executor().(adb.Cloner)
	if !ok {
		return nil
	}
	blob, err := cl.ExportCheckpoint()
	if err != nil {
		return nil // checkpointing is an optimization; never fail the shard on it
	}
	return blob
}

// importCheckpoint warms the shard's fresh devices from the previous
// owner's exported state. Best-effort for the same reason exports are.
func (h *Host) importCheckpoint(ids []string, blob []byte) {
	for _, id := range ids {
		eng := h.d.Engine(id)
		if eng == nil {
			continue
		}
		if cl, ok := eng.Executor().(adb.Cloner); ok {
			_ = cl.ImportCheckpoint(blob)
		}
	}
}

// collectUplink gathers everything new since the previous exchange: corpus
// admissions across every engine (deduplicated against all hashes this host
// holds, so downlinked programs never bounce back), newly registered graph
// vertices, and the local learn journal's fresh records.
func (h *Host) collectUplink() *adb.FedBatch {
	h.mu.Lock()
	defer h.mu.Unlock()
	b := &adb.FedBatch{}
	for _, id := range h.d.Devices() {
		eng := h.d.Engine(id)
		if eng == nil {
			continue
		}
		crp := eng.Corpus()
		texts := crp.Texts(h.cMark[id])
		h.cMark[id] = crp.Len()
		for _, text := range texts {
			if h.known.Add(corpus.Hash(text)) {
				b.Progs = append(b.Progs, text)
			}
		}
	}
	g := h.d.Graph()
	names := g.Names()
	for _, name := range names[h.vMark:] {
		w := 0.0
		if v := g.Vertex(name); v != nil {
			w = v.Weight
		}
		b.Verts = append(b.Verts, adb.FedVertex{Name: name, Weight: w})
	}
	h.vMark = len(names)
	ops := h.log.Since(h.lMark)
	h.lMark = h.log.Len()
	if fl, err := EncodeLearns(ops); err == nil {
		b.Learns = fl
	} else {
		// An unencodable record (seq past uint32) fails permanently —
		// keeping the cursor back would re-fail every epoch and pin the
		// records behind it too. Advance, but count the loss so it shows up
		// in the fleet status instead of vanishing silently.
		h.learnsDropped += uint64(len(ops))
	}
	h.bytesOut += uint64(BatchBytes(b))
	if emptyBatch(b) {
		return nil
	}
	return b
}

// applyBatch folds a coordinator downlink into local state: programs are
// parsed against each engine's target and admitted to its corpus (models
// that cannot parse a foreign program skip it), and learn records go
// straight into the shared graph — not the local journal, which holds only
// locally generated learns and thus never re-uplinks federated ones.
// Downlink vertices are recorded as known but NOT added to the graph: a
// vertex this host's models cannot generate would pollute base-call
// selection, and Learn silently skips unknown names anyway.
func (h *Host) applyBatch(b *adb.FedBatch) {
	if emptyBatch(b) {
		return
	}
	h.mu.Lock()
	h.bytesIn += uint64(BatchBytes(b))
	ids := h.d.Devices()
	for _, text := range b.Progs {
		h.known.Add(corpus.Hash(text))
	}
	h.mu.Unlock()

	for _, text := range b.Progs {
		for _, id := range ids {
			eng := h.d.Engine(id)
			if eng == nil {
				continue
			}
			target := eng.Executor().Target()
			if target == nil {
				continue
			}
			p, err := dsl.ParseProg(target, text)
			if err != nil {
				continue // foreign model's vocabulary; not for this device
			}
			eng.Corpus().Add(p, 1)
		}
	}
	// Admissions above advance each corpus; move the uplink cursors past
	// them so collectUplink does not rescan texts we just recorded as known
	// (they are deduplicated anyway, but the scan is wasted work).
	h.mu.Lock()
	for _, id := range ids {
		if eng := h.d.Engine(id); eng != nil {
			if n := eng.Corpus().Len(); n > h.cMark[id] {
				h.cMark[id] = n
			}
		}
	}
	h.mu.Unlock()

	if ops, err := DecodeLearns(b.Learns); err == nil && len(ops) > 0 {
		h.d.Graph().ApplyOps(ops)
	}
}

// publish refreshes the daemon's fleet status block.
func (h *Host) publish() {
	h.mu.Lock()
	fs := daemon.FleetStatus{
		HostID:        h.id,
		ShardEpoch:    h.epochs,
		FedBytesIn:    h.bytesIn,
		FedBytesOut:   h.bytesOut,
		Steals:        h.steals,
		LearnsDropped: h.learnsDropped,
		CorpusHash:    h.known.Fingerprint(),
		Shards:        h.shards,
	}
	h.mu.Unlock()
	h.d.UpdateFleet(fs)
}

// Fingerprint returns the order-independent digest of this host's view of
// the federated corpus.
func (h *Host) Fingerprint() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.known.Fingerprint()
}

// LearnJournal returns the locally generated learn records in journal
// order.
func (h *Host) LearnJournal() []relation.LearnOp { return h.log.Ops() }

// Steals reports how many leased shards came off other hosts' queues.
func (h *Host) Steals() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.steals
}
