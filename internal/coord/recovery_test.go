package coord

import (
	"strings"
	"testing"
	"time"

	"droidfuzz/internal/adb"
	"droidfuzz/internal/corpus"
	"droidfuzz/internal/relation"
)

// TestKillHostMidEpochRecovery: host A leases a shard, uplinks half an
// epoch's worth of state, and dies silently. After eviction, host B (a real
// Host over the real wire) steals the warm shard, finishes the campaign,
// and the final federated corpus is the exact union of both hosts'
// contributions — A's uplinked programs survive exactly once, nothing is
// lost, nothing duplicated.
func TestKillHostMidEpochRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("boots real devices; skip in -short")
	}
	coord, err := New(
		Campaign{Models: []string{"A1"}, Shards: 2, Devices: 1, Iters: 40, EpochIters: 20, Seed: 3},
		Options{Hosts: 2, EvictAfter: 5 * time.Second},
	)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	fc := &fakeClock{t: time.Unix(1700000000, 0)}
	coord.now = fc.now

	// Host A: driven at the protocol level so the test controls exactly
	// when it goes silent.
	regA, err := coord.Register("doomed")
	if err != nil {
		t.Fatalf("register A: %v", err)
	}
	shA, err := coord.Lease(regA.HostID)
	if err != nil || shA.Wait || shA.Done {
		t.Fatalf("lease A: %+v, %v", shA, err)
	}
	aProgs := []string{"prog-from-doomed-host-1", "prog-from-doomed-host-2"}
	aOps := []relation.LearnOp{
		{A: "x", B: "y", Device: regA.HostID + "/s0.0/A1", Seq: 0},
	}
	aFl, err := EncodeLearns(aOps)
	if err != nil {
		t.Fatalf("encode A ops: %v", err)
	}
	ckpt := []byte("warm-state-from-a")
	if _, err := coord.Progress(&adb.CoordProgress{
		HostID: regA.HostID, ShardID: shA.ID, ExecsDone: 20, Checkpoint: ckpt,
		Batch: &adb.FedBatch{
			Progs:  aProgs,
			Verts:  []adb.FedVertex{{Name: "x", Weight: 1}, {Name: "y", Weight: 1}},
			Learns: aFl,
		},
	}); err != nil {
		t.Fatalf("progress A: %v", err)
	}
	// A dies here: no Complete, no further heartbeats.
	fc.advance(6 * time.Second)

	// Host B: a real host over the real wire, registered after A went dark.
	srv := &Server{C: coord}
	hostB := NewHost(newPipeClient(t, srv), HostOptions{
		Name:       "survivor",
		LeaseRetry: 5 * time.Millisecond,
	})
	if err := hostB.Run(); err != nil {
		t.Fatalf("host B run: %v", err)
	}

	st, hosts := coord.Snapshot()
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	if !hosts[0].Evicted {
		t.Fatal("host A not marked evicted")
	}
	if !st.Done || st.ShardsDone != 2 {
		t.Fatalf("campaign not finished by survivor: %+v", st)
	}
	if hostB.Steals() == 0 {
		t.Fatal("survivor reports no steals after adopting the orphaned shard")
	}

	// The stolen shard resumed warm: its total progress folds in A's 20
	// iterations plus B's remaining 20, and B completed it after a lease
	// that carried A's checkpoint remainder.
	if got := coord.shards[shA.ID].progress; got != 40 {
		t.Fatalf("orphaned shard progress %d, want 40 (20 inherited + 20 resumed)", got)
	}

	// Exact union, no loss: A's programs are in the federated corpus
	// exactly once each, and B holds them too (downlink reached it).
	hashes, from := coord.CorpusJournal()
	counts := map[uint64]int{}
	for _, h := range hashes {
		counts[h]++
	}
	for _, p := range aProgs {
		switch counts[corpus.Hash(p)] {
		case 1: // good
		case 0:
			t.Fatalf("dead host's program %q lost from the federated corpus", p)
		default:
			t.Fatalf("dead host's program %q duplicated (%d admissions)", p, counts[corpus.Hash(p)])
		}
	}
	for h, n := range counts {
		if n != 1 {
			t.Fatalf("corpus hash %#x admitted %d times", h, n)
		}
	}
	_ = from
	if hostB.Fingerprint() != coord.Fingerprint() {
		t.Fatal("survivor's corpus did not converge with the coordinator's")
	}

	// A's learn record survived in the journal exactly once; everything
	// else is B's.
	journal := coord.LearnJournal()
	aCount := 0
	for _, op := range journal {
		if strings.HasPrefix(op.Device, regA.HostID+"/") {
			aCount++
		}
	}
	if aCount != 1 {
		t.Fatalf("dead host's journal records = %d, want exactly 1", aCount)
	}
	if len(journal) <= 1 {
		t.Fatal("survivor contributed no learn records")
	}
}
