package coord

import (
	"encoding/gob"
	"io"
	"net"
	"testing"
	"time"

	"droidfuzz/internal/adb"
	"droidfuzz/internal/relation"
)

// TestHandleRetryReturnsCachedLeaseReply pins the retry contract for the
// one RPC whose side effect is a grant: a retried Lease (same Seq after a
// lost reply) must return the SAME shard, not lease a second one and strand
// the first as a permanently in-flight orphan that keeps every other host
// spinning in Wait.
func TestHandleRetryReturnsCachedLeaseReply(t *testing.T) {
	c, _ := newTestCoordinator(t, Campaign{Models: []string{"A1"}, Shards: 2, Iters: 10}, Options{Hosts: 1})
	reg := c.Handle(adb.CoordRequest{Seq: 1, Register: &adb.CoordRegister{Name: "alpha", Nonce: 7}})
	if reg.Err != "" || reg.Registered == nil {
		t.Fatalf("register: %+v", reg)
	}
	id := reg.Registered.HostID

	lease := adb.CoordRequest{Seq: 2, Lease: &adb.CoordLeaseRequest{HostID: id}}
	first := c.Handle(lease)
	if first.Err != "" || first.Shard == nil || first.Shard.Wait || first.Shard.Done {
		t.Fatalf("first lease: %+v", first)
	}
	// The reply is "lost"; the client retries with the same Seq.
	retry := c.Handle(lease)
	if retry.Err != "" || retry.Shard == nil {
		t.Fatalf("retried lease: %+v", retry)
	}
	if retry.Shard.ID != first.Shard.ID {
		t.Fatalf("retry leased shard %d, want the original shard %d", retry.Shard.ID, first.Shard.ID)
	}
	if n := c.inflightLocked(); n != 1 {
		t.Fatalf("%d shards in flight after a retried lease, want 1", n)
	}
	owned := 0
	for _, sh := range c.shards {
		if sh.owner != "" {
			owned++
		}
	}
	if owned != 1 {
		t.Fatalf("%d shards owned after a retried lease, want 1 (orphaned grant)", owned)
	}

	// A genuinely new request (next Seq) is processed normally.
	next := c.Handle(adb.CoordRequest{Seq: 3, Lease: &adb.CoordLeaseRequest{HostID: id}})
	if next.Err != "" || next.Shard == nil || next.Shard.ID == first.Shard.ID {
		t.Fatalf("next lease: %+v", next)
	}
	// A Seq from the past is a protocol violation, not a silent re-run.
	stale := c.Handle(adb.CoordRequest{Seq: 2, Lease: &adb.CoordLeaseRequest{HostID: id}})
	if stale.Err == "" {
		t.Fatalf("stale seq accepted: %+v", stale)
	}
}

// TestHandleRetryRedeliversLostDownlink pins the cursor side of the retry
// contract: downlinkLocked advances corpusSent/vertSent/logSent when the
// reply is generated, so if that reply is lost the retry must redeliver the
// identical batch — otherwise the batch is gone for good while the host
// later reports itself drained.
func TestHandleRetryRedeliversLostDownlink(t *testing.T) {
	c, _ := newTestCoordinator(t, Campaign{Models: []string{"A1"}, Shards: 1, Iters: 10}, Options{Hosts: 2})
	a := mustRegister(t, c, "alpha")
	b := mustRegister(t, c, "beta")

	ops := []relation.LearnOp{{A: "x", B: "y", Device: a + "/s0.0/A1", Seq: 0}}
	fl, err := EncodeLearns(ops)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	if _, err := c.Sync(&adb.CoordSync{HostID: a, Batch: &adb.FedBatch{
		Progs:  []string{"from-a"},
		Verts:  []adb.FedVertex{{Name: "x", Weight: 1}, {Name: "y", Weight: 1}},
		Learns: fl,
	}}); err != nil {
		t.Fatalf("sync a: %v", err)
	}

	sync := adb.CoordRequest{Seq: 5, Sync: &adb.CoordSync{HostID: b}}
	first := c.Handle(sync)
	if first.Err != "" || first.Ack == nil || emptyBatch(first.Ack.Batch) {
		t.Fatalf("first sync carried no downlink: %+v", first)
	}
	// Reply lost; the retry must carry the very same batch, not an empty
	// one generated against the already-advanced cursors.
	retry := c.Handle(sync)
	if retry.Err != "" || retry.Ack == nil || emptyBatch(retry.Ack.Batch) {
		t.Fatalf("retried sync lost the downlink batch: %+v", retry)
	}
	if len(retry.Ack.Batch.Progs) != 1 || retry.Ack.Batch.Progs[0] != "from-a" {
		t.Fatalf("retried downlink differs: %+v", retry.Ack.Batch)
	}
	// And the next real exchange sees nothing new.
	next := c.Handle(adb.CoordRequest{Seq: 6, Sync: &adb.CoordSync{HostID: b}})
	if next.Err != "" || next.Ack == nil || !emptyBatch(next.Ack.Batch) {
		t.Fatalf("delta delivered twice: %+v", next)
	}
}

// TestRegisterRetryDedupsByNonce: a lost Register reply must not leave a
// ghost host holding a pre-partitioned queue nobody drains.
func TestRegisterRetryDedupsByNonce(t *testing.T) {
	c, _ := newTestCoordinator(t, Campaign{Models: []string{"A1"}, Shards: 4, Iters: 10}, Options{Hosts: 2})
	req := adb.CoordRequest{Seq: 1, Register: &adb.CoordRegister{Name: "alpha", Nonce: 99}}
	first := c.Handle(req)
	retry := c.Handle(req)
	if first.Err != "" || retry.Err != "" || first.Registered == nil || retry.Registered == nil {
		t.Fatalf("register replies: %+v / %+v", first, retry)
	}
	if first.Registered.HostID != retry.Registered.HostID {
		t.Fatalf("retried register minted a second identity: %s then %s",
			first.Registered.HostID, retry.Registered.HostID)
	}
	st, _ := c.Snapshot()
	if st.Hosts != 1 {
		t.Fatalf("%d hosts after a retried register, want 1", st.Hosts)
	}
}

// TestLostReplyRetriedOverWire runs the whole ambiguous-failure path end to
// end: the coordinator processes a Lease but the connection dies before the
// reply arrives; the client redials and retries, and must end up running
// the shard the coordinator already granted.
func TestLostReplyRetriedOverWire(t *testing.T) {
	c, _ := newTestCoordinator(t, Campaign{Models: []string{"A1"}, Shards: 2, Iters: 10}, Options{Hosts: 1})
	srv := &Server{C: c}

	conns := 0
	dialer := func() (io.ReadWriteCloser, error) {
		conns++
		hostEnd, coordEnd := net.Pipe()
		if conns == 1 {
			// First connection: serve the Register normally, then process
			// the next request (the Lease) but hang up before replying —
			// the server-processed / reply-lost ambiguity.
			go func() {
				dec := gob.NewDecoder(coordEnd)
				enc := gob.NewEncoder(coordEnd)
				var req adb.CoordRequest
				if err := dec.Decode(&req); err != nil {
					return
				}
				rep := c.Handle(req)
				if err := enc.Encode(&rep); err != nil {
					return
				}
				if err := dec.Decode(&req); err != nil {
					return
				}
				_ = c.Handle(req)
				coordEnd.Close()
			}()
		} else {
			go srv.Serve(coordEnd)
		}
		return hostEnd, nil
	}
	cl := &Client{addr: "lossy", opts: ClientOptions{
		MaxAttempts: 3, BackoffBase: time.Millisecond, BackoffMax: 2 * time.Millisecond,
		Dialer: dialer,
	}}
	cl.opts.defaults()
	cl.sleep = func(time.Duration) {}

	reg, err := cl.Register("flaky")
	if err != nil {
		t.Fatalf("register: %v", err)
	}
	sh, err := cl.Lease(reg.HostID)
	if err != nil {
		t.Fatalf("lease through lost reply: %v", err)
	}
	if sh.Wait || sh.Done {
		t.Fatalf("lease: %+v", sh)
	}
	if conns != 2 {
		t.Fatalf("client used %d connections, want 2 (one redial)", conns)
	}
	if n := c.inflightLocked(); n != 1 {
		t.Fatalf("%d shards in flight after the retried lease, want 1 — the lost-reply shard was orphaned", n)
	}
}

// TestCompleteByNonOwnerIsNoOp: only the owner may finish a shard. A
// Complete from anyone else acks (its uplink still merges) but must not
// discard the owner's remaining work by force-finishing the shard.
func TestCompleteByNonOwnerIsNoOp(t *testing.T) {
	c, _ := newTestCoordinator(t, Campaign{Models: []string{"A1"}, Shards: 2, Iters: 100}, Options{Hosts: 2})
	a := mustRegister(t, c, "alpha")
	b := mustRegister(t, c, "beta")

	sh, err := c.Lease(a)
	if err != nil {
		t.Fatalf("lease: %v", err)
	}
	if _, err := c.Progress(&adb.CoordProgress{HostID: a, ShardID: sh.ID, ExecsDone: 40}); err != nil {
		t.Fatalf("progress: %v", err)
	}
	// B claims completion of A's in-flight shard.
	if _, err := c.Complete(&adb.CoordComplete{HostID: b, ShardID: sh.ID}); err != nil {
		t.Fatalf("non-owner complete: %v", err)
	}
	if got := c.shards[sh.ID]; got.done || got.owner != a || got.progress != 40 {
		t.Fatalf("non-owner complete mutated the shard: done=%v owner=%q progress=%d",
			got.done, got.owner, got.progress)
	}
	// The owner's completion still lands, and a duplicate stays idempotent.
	for i := 0; i < 2; i++ {
		if _, err := c.Complete(&adb.CoordComplete{HostID: a, ShardID: sh.ID}); err != nil {
			t.Fatalf("owner complete %d: %v", i, err)
		}
	}
	if got := c.shards[sh.ID]; !got.done || got.progress != got.spec.Iters {
		t.Fatalf("owner complete did not finish the shard: %+v", got)
	}
}

// TestTickEvictsStrandedFleet: eviction and campaign-end detection must not
// depend on hosts calling in. When the whole fleet dies silently, a
// coordinator-side Tick evicts it, closes Done, and flags the campaign
// stranded so droidcoordd can report instead of blocking forever.
func TestTickEvictsStrandedFleet(t *testing.T) {
	c, fc := newTestCoordinator(t, Campaign{Models: []string{"A1"}, Shards: 2, Iters: 100},
		Options{Hosts: 1, EvictAfter: 5 * time.Second})
	a := mustRegister(t, c, "alpha")
	if _, err := c.Lease(a); err != nil {
		t.Fatalf("lease: %v", err)
	}
	// The only host goes silent; no RPC will ever arrive again.
	fc.advance(6 * time.Second)
	c.Tick()

	st, hosts := c.Snapshot()
	if st.Evictions != 1 || !hosts[0].Evicted {
		t.Fatalf("tick did not evict the silent host: %+v %+v", st, hosts)
	}
	if !st.Stranded {
		t.Fatal("campaign with its whole fleet evicted not marked stranded")
	}
	select {
	case <-c.Done():
	default:
		t.Fatal("Done not closed for a stranded campaign")
	}

	// A completed campaign, by contrast, finishes cleanly via Tick too.
	c2, fc2 := newTestCoordinator(t, Campaign{Models: []string{"A1"}, Shards: 1, Iters: 10},
		Options{Hosts: 1, EvictAfter: 5 * time.Second})
	a2 := mustRegister(t, c2, "alpha")
	sh2, err := c2.Lease(a2)
	if err != nil {
		t.Fatalf("lease: %v", err)
	}
	if _, err := c2.Complete(&adb.CoordComplete{HostID: a2, ShardID: sh2.ID}); err != nil {
		t.Fatalf("complete: %v", err)
	}
	fc2.advance(6 * time.Second)
	c2.Tick()
	st2, _ := c2.Snapshot()
	if st2.Stranded {
		t.Fatal("completed campaign misreported as stranded")
	}
	select {
	case <-c2.Done():
	default:
		t.Fatal("Done not closed after the last Complete")
	}
}

// TestCollectUplinkCountsEncodeDrops: an unencodable learn record (seq past
// uint32) cannot hold the uplink cursor back forever, but its loss must be
// counted, not silent.
func TestCollectUplinkCountsEncodeDrops(t *testing.T) {
	h := NewHost(nil, HostOptions{Name: "drops"})
	h.log.Append(relation.LearnOp{A: "x", B: "y", Device: "h1/s0.0/A1", Seq: 1 << 40})
	if b := h.collectUplink(); b != nil && b.Learns.Count != 0 {
		t.Fatalf("unencodable record shipped anyway: %+v", b)
	}
	h.mu.Lock()
	dropped, mark := h.learnsDropped, h.lMark
	h.mu.Unlock()
	if dropped != 1 {
		t.Fatalf("learnsDropped = %d, want 1", dropped)
	}
	if mark != 1 {
		t.Fatalf("uplink cursor %d, want 1 (a permanent encode failure must not wedge the uplink)", mark)
	}
	// Later valid records still ship.
	h.log.Append(relation.LearnOp{A: "x", B: "y", Device: "h1/s0.0/A1", Seq: 0})
	b := h.collectUplink()
	if b == nil || b.Learns.Count != 1 {
		t.Fatalf("valid record after a dropped one did not ship: %+v", b)
	}
}
