package coord

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"

	"droidfuzz/internal/adb"
)

// The coordinator wire layer mirrors the adb transport's device protocol:
// gob frames over any byte stream, lock-step request/reply. Coordinator
// RPCs happen per epoch (hundreds of milliseconds to seconds apart), not
// per execution, so there is no windowed pipeline here — one in-flight
// request per connection keeps both ends trivially in sync.

// Server serves a Coordinator over gob streams.
type Server struct {
	C *Coordinator
}

// Serve runs the coordinator side of the protocol over rw until the stream
// ends: nil on clean EOF, an adb.ErrTransport-wrapped error on garbage or a
// mid-stream hangup. Handler panics become per-request error replies, so
// one hostile frame cannot take the coordinator down.
func (s *Server) Serve(rw io.ReadWriter) error {
	enc := gob.NewEncoder(rw)
	dec := gob.NewDecoder(rw)
	for {
		req, err := decodeCoordRequest(dec)
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrClosedPipe) {
				return nil
			}
			return fmt.Errorf("%w: coord serve decode: %v", adb.ErrTransport, err)
		}
		rep := s.handle(req)
		if err := enc.Encode(&rep); err != nil {
			return fmt.Errorf("%w: coord serve encode: %v", adb.ErrTransport, err)
		}
	}
}

// decodeCoordRequest reads one frame, converting decoder panics on hostile
// input into errors.
func decodeCoordRequest(dec *gob.Decoder) (req adb.CoordRequest, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("decode panic: %v", r)
		}
	}()
	err = dec.Decode(&req)
	return req, err
}

// handle dispatches one request through Coordinator.Handle — the layer
// that dedups retried requests — mapping Go errors to the reply's Err
// string (the client rehydrates them as *adb.RemoteError) and converting
// handler panics into error replies.
func (s *Server) handle(req adb.CoordRequest) (rep adb.CoordReply) {
	defer func() {
		if r := recover(); r != nil {
			rep = adb.CoordReply{Err: fmt.Sprintf("coord: request panic: %v", r)}
		}
	}()
	return s.C.Handle(req)
}

// ServeTCP listens on ln and serves each accepted host connection until
// the listener closes. Per-connection failures end that connection only.
func (s *Server) ServeTCP(ln net.Listener) error {
	for {
		c, err := ln.Accept()
		if err != nil {
			return err
		}
		go func() {
			defer c.Close()
			_ = s.Serve(c)
		}()
	}
}
