// Package corpus maintains the seed corpus of interesting programs: test
// cases that contributed new cross-boundary signal, kept for mutation and
// persisted as DSL text (paper §IV-A: the Daemon "maintains persistent
// data, such as the seed corpus").
package corpus

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"droidfuzz/internal/dsl"
)

// Entry is one corpus program with its bookkeeping.
type Entry struct {
	Prog *dsl.Prog
	// Signal is the number of signal elements the program contributed
	// when admitted (its selection priority).
	Signal int
	// Hits counts how often it was picked for mutation.
	Hits uint64
}

// Corpus is a prioritized seed set. Safe for concurrent use.
type Corpus struct {
	mu      sync.Mutex
	entries []*Entry
	// seen dedups admissions by the 64-bit FNV-1a hash of the canonical
	// program text. Keeping the full text of every program ever offered —
	// admitted or not — grew without bound over a long campaign; 8 bytes
	// per distinct program is the retained cost now, and a collision
	// (astronomically unlikely at corpus scale) merely drops one admission.
	seen map[uint64]struct{}
	adds uint64
}

// New returns an empty corpus.
func New() *Corpus {
	return &Corpus{seen: make(map[uint64]struct{})}
}

// fnv1a64 hashes s without allocating (hash/fnv would escape the string
// through its io.Writer interface).
func fnv1a64(s string) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// Add admits a program with its contributed-signal score, deduplicating by
// (the hash of) canonical text. It reports whether the program was new.
func (c *Corpus) Add(p *dsl.Prog, signal int) bool {
	key := fnv1a64(p.String())
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.seen[key]; dup {
		return false
	}
	c.seen[key] = struct{}{}
	c.entries = append(c.entries, &Entry{Prog: p.Clone(), Signal: signal})
	c.adds++
	return true
}

// Len reports the number of programs.
func (c *Corpus) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Adds reports lifetime admissions.
func (c *Corpus) Adds() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.adds
}

// Pick draws a seed for mutation. Half the draws are uniform — keeping
// rare, low-signal seeds alive — and half are biased toward entries with
// higher contributed signal (prio ∝ signal+1). Returns nil on an empty
// corpus.
func (c *Corpus) Pick(rng *rand.Rand) *dsl.Prog {
	return c.PickN(rng, -1)
}

// PickN is Pick restricted to the first n entries. Because the corpus is
// append-only and an entry's Signal never changes after admission, the
// first n entries are a pinned view of the corpus as it stood when it had
// length n — the pipelined producer draws from views captured at
// deterministic sync points so identical campaigns make identical draws
// regardless of goroutine scheduling. n < 0 (or n beyond the current
// length) means the whole corpus; the draw sequence on the same prefix is
// identical to Pick's.
func (c *Corpus) PickN(rng *rand.Rand, n int) *dsl.Prog {
	c.mu.Lock()
	defer c.mu.Unlock()
	ents := c.entries
	if n >= 0 && n < len(ents) {
		ents = ents[:n]
	}
	if len(ents) == 0 {
		return nil
	}
	if rng.Intn(2) == 0 {
		e := ents[rng.Intn(len(ents))]
		e.Hits++
		return e.Prog.Clone()
	}
	total := 0
	for _, e := range ents {
		total += e.Signal + 1
	}
	x := rng.Intn(total)
	for _, e := range ents {
		x -= e.Signal + 1
		if x < 0 {
			e.Hits++
			return e.Prog.Clone()
		}
	}
	e := ents[len(ents)-1]
	e.Hits++
	return e.Prog.Clone()
}

// Entries returns a snapshot of the corpus ordered by descending signal.
func (c *Corpus) Entries() []*Entry {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*Entry, len(c.entries))
	copy(out, c.entries)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Signal > out[j].Signal })
	return out
}

// Save writes every program as a numbered .prog file under dir.
func (c *Corpus) Save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("corpus: %w", err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, e := range c.entries {
		path := filepath.Join(dir, fmt.Sprintf("%06d.prog", i))
		if err := os.WriteFile(path, []byte(e.Prog.String()), 0o644); err != nil {
			return fmt.Errorf("corpus: %w", err)
		}
	}
	return nil
}

// Load reads every .prog file under dir, parsing against the target;
// unparseable files are skipped (descriptions may have changed), and the
// number of loaded programs is returned.
func (c *Corpus) Load(dir string, target *dsl.Target) (int, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "*.prog"))
	if err != nil {
		return 0, fmt.Errorf("corpus: %w", err)
	}
	sort.Strings(matches)
	n := 0
	for _, path := range matches {
		data, err := os.ReadFile(path)
		if err != nil {
			return n, fmt.Errorf("corpus: %w", err)
		}
		p, err := dsl.ParseProg(target, string(data))
		if err != nil {
			continue
		}
		if c.Add(p, 1) {
			n++
		}
	}
	return n, nil
}
