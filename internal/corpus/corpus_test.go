package corpus

import (
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"droidfuzz/internal/drivers"
	"droidfuzz/internal/dsl"
)

func target(t *testing.T) *dsl.Target {
	t.Helper()
	tg, err := dsl.NewTarget(drivers.TCPCDescs()...)
	if err != nil {
		t.Fatal(err)
	}
	return tg
}

func prog(t *testing.T, tg *dsl.Target, text string) *dsl.Prog {
	t.Helper()
	p, err := dsl.ParseProg(tg, text)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestAddDeduplicates(t *testing.T) {
	tg := target(t)
	c := New()
	p := prog(t, tg, `r0 = open$tcpc(path="/dev/tcpc0")`+"\n")
	if !c.Add(p, 5) {
		t.Fatal("first add rejected")
	}
	if c.Add(p.Clone(), 5) {
		t.Fatal("duplicate accepted")
	}
	if c.Len() != 1 || c.Adds() != 1 {
		t.Fatalf("len/adds = %d/%d", c.Len(), c.Adds())
	}
}

func TestPickBiasAndUniform(t *testing.T) {
	tg := target(t)
	c := New()
	if c.Pick(rand.New(rand.NewSource(1))) != nil {
		t.Fatal("empty corpus picked")
	}
	big := prog(t, tg, `r0 = open$tcpc(path="/dev/tcpc0")`+"\n")
	small := prog(t, tg, `r0 = open$tcpc(path="/dev/tcpc0")`+"\nioctl$TCPC_RESET(fd=r0, req=0xa101)\n")
	c.Add(big, 100)
	c.Add(small, 0)
	rng := rand.New(rand.NewSource(7))
	bigPicks := 0
	for i := 0; i < 2000; i++ {
		if c.Pick(rng).Len() == 1 {
			bigPicks++
		}
	}
	// 50% uniform (→ ~50/50) + 50% weighted (→ ~100/101 big):
	// expected big share ≈ 0.25 + 0.5 ≈ 75%.
	if bigPicks < 1200 || bigPicks > 1800 {
		t.Fatalf("big picked %d/2000", bigPicks)
	}
	// Picks return clones: mutating one must not corrupt the corpus.
	p := c.Pick(rng)
	p.Calls[0].Args[0].Str = "corrupted"
	for _, e := range c.Entries() {
		if e.Prog.Calls[0].Args[0].Str == "corrupted" {
			t.Fatal("pick returned shared memory")
		}
	}
}

func TestEntriesSortedBySignal(t *testing.T) {
	tg := target(t)
	c := New()
	c.Add(prog(t, tg, `r0 = open$tcpc(path="/dev/tcpc0")`+"\n"), 1)
	c.Add(prog(t, tg, `r0 = open$tcpc(path="/dev/tcpc0")`+"\nioctl$TCPC_RESET(fd=r0, req=0xa101)\n"), 9)
	es := c.Entries()
	if es[0].Signal != 9 {
		t.Fatal("entries not sorted")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	tg := target(t)
	c := New()
	texts := []string{
		`r0 = open$tcpc(path="/dev/tcpc0")` + "\n",
		`r0 = open$tcpc(path="/dev/tcpc0")` + "\nioctl$TCPC_SET_MODE(fd=r0, req=0xa102, mode=0x3)\n",
	}
	for _, txt := range texts {
		c.Add(prog(t, tg, txt), 1)
	}
	dir := t.TempDir()
	if err := c.Save(dir); err != nil {
		t.Fatal(err)
	}
	// A garbage file must be skipped, not fail the load.
	os.WriteFile(filepath.Join(dir, "zzzzzz.prog"), []byte("garbage(\n"), 0o644)

	fresh := New()
	n, err := fresh.Load(dir, tg)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || fresh.Len() != 2 {
		t.Fatalf("loaded %d, corpus %d", n, fresh.Len())
	}
	// Round trip preserves canonical text.
	want := map[string]bool{}
	for _, txt := range texts {
		want[txt] = true
	}
	for _, e := range fresh.Entries() {
		if !want[e.Prog.String()] {
			t.Fatalf("unexpected program %q", e.Prog.String())
		}
	}
}

func TestConcurrentAddAndPick(t *testing.T) {
	// The daemon's engines may share corpora through future extensions;
	// the type promises concurrency safety (run with -race).
	tg := target(t)
	c := New()
	base := prog(t, tg, `r0 = open$tcpc(path="/dev/tcpc0")`+"\n")
	c.Add(base, 1)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 200; i++ {
				p := base.Clone()
				p.Calls[0].Args[0].Str = "/dev/tcpc0"
				c.Add(p, g*1000+i)
				if got := c.Pick(rng); got == nil {
					t.Error("pick returned nil on non-empty corpus")
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestHashDedupMatchesTextDedup: dedup moved from retained full program
// text to 64-bit FNV-1a hashes of it; admission behaviour must be
// unchanged — same text (however arrived at) rejected, distinct texts all
// admitted.
func TestHashDedupMatchesTextDedup(t *testing.T) {
	tg := target(t)
	c := New()
	base := prog(t, tg, `r0 = open$tcpc(path="/dev/tcpc0")`+"\nioctl$TCPC_RESET(fd=r0, req=0xa101)\n")
	if !c.Add(base, 3) {
		t.Fatal("first add rejected")
	}
	// A clone and an independently parsed copy serialize identically and
	// must both be rejected as duplicates.
	if c.Add(base.Clone(), 3) {
		t.Fatal("clone admitted twice")
	}
	if c.Add(prog(t, tg, base.String()), 3) {
		t.Fatal("reparsed copy admitted twice")
	}
	// Programs differing only in one argument are distinct.
	variant := base.Clone()
	variant.Calls[1].Args[1].Val = 0xa102
	if !c.Add(variant, 3) {
		t.Fatal("distinct variant rejected")
	}
	if c.Len() != 2 || c.Adds() != 2 {
		t.Fatalf("len/adds = %d/%d, want 2/2", c.Len(), c.Adds())
	}
	// A long run of distinct programs is admitted without false-positive
	// collisions.
	for i := 0; i < 2000; i++ {
		p := base.Clone()
		p.Calls[1].Args[1].Val = uint64(0xb000 + i)
		if !c.Add(p, 1) {
			t.Fatalf("distinct program %d rejected (hash collision?)", i)
		}
	}
	if c.Len() != 2002 {
		t.Fatalf("len = %d, want 2002", c.Len())
	}
}
