package corpus

// Federation surface: the corpus's canonical-text FNV-1a hash doubles as a
// program's fleet-wide wire identity, so hosts and the coordinator diff
// corpora by exchanging 8-byte hashes and ship full text only for programs
// the other side genuinely lacks.

// Hash returns the 64-bit FNV-1a hash of a canonical program text — the
// same key Add dedups admissions under.
func Hash(text string) uint64 { return fnv1a64(text) }

// Texts returns the canonical texts of the entries from index `from` on,
// in admission order. The corpus is append-only, so a previous Len() value
// is a stable high-water mark: the federation uplink scans only what was
// admitted since its last exchange.
func (c *Corpus) Texts(from int) []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if from < 0 {
		from = 0
	}
	if from >= len(c.entries) {
		return nil
	}
	out := make([]string, 0, len(c.entries)-from)
	for _, e := range c.entries[from:] {
		out = append(out, e.Prog.String())
	}
	return out
}

// Contains reports whether a program with the given canonical-text hash
// was ever admitted.
func (c *Corpus) Contains(h uint64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.seen[h]
	return ok
}

// Hashes returns the admitted programs' canonical-text hashes in admission
// order.
func (c *Corpus) Hashes() []uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]uint64, 0, len(c.entries))
	for _, e := range c.entries {
		out = append(out, fnv1a64(e.Prog.String()))
	}
	return out
}

// HashSet is a set of canonical-text hashes — the compact corpus identity
// the federation layer diffs and fingerprints instead of shipping program
// text. Not safe for concurrent use; callers hold their own lock.
type HashSet map[uint64]struct{}

// NewHashSet returns an empty set.
func NewHashSet() HashSet { return make(HashSet) }

// Add inserts h, reporting whether it was new.
func (s HashSet) Add(h uint64) bool {
	if _, dup := s[h]; dup {
		return false
	}
	s[h] = struct{}{}
	return true
}

// Has reports membership.
func (s HashSet) Has(h uint64) bool {
	_, ok := s[h]
	return ok
}

// Len reports the set size.
func (s HashSet) Len() int { return len(s) }

// Fingerprint folds the set into one order-independent 64-bit digest: each
// member is finalized through a splitmix64-style mixer and XOR-combined.
// Two hosts holding the same program set report the same fingerprint
// regardless of admission order — the cross-host convergence check the
// smoke test and fleet status use. (XOR cancellation needs a duplicated
// member; a set cannot have one.)
func (s HashSet) Fingerprint() uint64 {
	var fp uint64
	// XOR is commutative, so the fold is identical in any iteration order.
	for h := range s { //droidvet:nondet order-independent XOR fold
		fp ^= mix64(h)
	}
	return fp
}

// mix64 is the splitmix64 finalizer: without it, structured hash sets
// (e.g. differing in one low bit) would XOR-fold to weakly separated
// fingerprints.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
