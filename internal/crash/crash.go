// Package crash handles incident triage: classification into the paper's
// component taxonomy (kernel driver / kernel subsystem / HAL), title-based
// deduplication, and reproducer bookkeeping — the processing behind
// Table II.
package crash

import (
	"fmt"
	"regexp"
	"sort"
	"strings"
	"sync"

	"droidfuzz/internal/adb"
	"droidfuzz/internal/dsl"
)

// numRE matches standalone integers in crash titles; they carry instance
// data (a subclass, an address), not identity, so dedup replaces them with
// NUM — the convention the paper's Table II also uses ("looking up invalid
// subclass: NUM").
var numRE = regexp.MustCompile(`\b\d+\b`)

// NormalizeTitle canonicalizes a crash title for deduplication.
func NormalizeTitle(title string) string {
	return numRE.ReplaceAllString(title, "NUM")
}

// Component is the Table II "Component" column.
type Component string

// Component values.
const (
	KernelDriver    Component = "Kernel Driver"
	KernelSubsystem Component = "Kernel Subsystem"
	HAL             Component = "HAL"
)

// BugType is the Table II "Bug Type" column.
type BugType string

// BugType values.
const (
	LogicError BugType = "Logic Error"
	MemoryBug  BugType = "Memory Related Bug"
)

// Record is one deduplicated bug finding with its reproducer.
type Record struct {
	Title     string
	Kind      string // WARNING / BUG / KASAN / HANG / HALCRASH
	Component Component
	Type      BugType
	Device    string // model ID
	Detail    string
	// Repro is the program that first triggered the bug, replaced by the
	// minimized reproducer once triage confirms it.
	Repro *dsl.Prog
	// Reproducible reports that Repro re-triggers the bug on a freshly
	// rebooted device (the paper reproduces all findings).
	Reproducible bool
	// FoundAt is the virtual time (executions) of first discovery.
	FoundAt uint64
	// Count is how many times the same title re-triggered.
	Count int
}

// subsystemMarkers identify kernel incidents that live in shared subsystems
// rather than a specific device driver (Table II rows 3 and 8).
var subsystemMarkers = []string{
	"l2cap_",                      // Bluetooth L2CAP core
	"looking up invalid subclass", // lockdep
}

// Classify maps a broker crash record to its component and bug type.
func Classify(cr adb.CrashRecord) (Component, BugType) {
	if cr.Kind == "HALCRASH" {
		return HAL, MemoryBug
	}
	comp := KernelDriver
	for _, m := range subsystemMarkers {
		if strings.Contains(cr.Title, m) {
			comp = KernelSubsystem
			break
		}
	}
	switch cr.Kind {
	case "KASAN":
		return comp, MemoryBug
	default: // WARNING, BUG, HANG: logic errors in the paper's taxonomy
		return comp, LogicError
	}
}

// Dedup collects unique findings by title. Safe for concurrent use.
type Dedup struct {
	mu      sync.Mutex
	records map[string]*Record
	order   []string
}

// NewDedup returns an empty collector.
func NewDedup() *Dedup {
	return &Dedup{records: make(map[string]*Record)}
}

// Add records an incident; repro may be nil. It returns the record and
// whether the title was new.
func (d *Dedup) Add(deviceID string, cr adb.CrashRecord, repro *dsl.Prog, vtime uint64) (*Record, bool) {
	title := NormalizeTitle(cr.Title)
	d.mu.Lock()
	defer d.mu.Unlock()
	if r, ok := d.records[title]; ok {
		r.Count++
		return r, false
	}
	comp, typ := Classify(cr)
	r := &Record{
		Title: title, Kind: cr.Kind, Component: comp, Type: typ,
		Device: deviceID, Detail: cr.Detail, FoundAt: vtime, Count: 1,
	}
	if repro != nil {
		r.Repro = repro.Clone()
	}
	d.records[title] = r
	d.order = append(d.order, title)
	return r, true
}

// UpdateRepro replaces a finding's reproducer after triage. Safe against
// concurrent engines sharing the collector.
func (d *Dedup) UpdateRepro(title string, p *dsl.Prog, reproducible bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	r, ok := d.records[NormalizeTitle(title)]
	if !ok {
		return
	}
	r.Reproducible = reproducible
	if p != nil {
		r.Repro = p.Clone()
	}
}

// Len reports the number of unique findings.
func (d *Dedup) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.records)
}

// Records returns the unique findings in discovery order.
func (d *Dedup) Records() []*Record {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]*Record, 0, len(d.order))
	for _, title := range d.order {
		out = append(out, d.records[title])
	}
	return out
}

// ByComponent partitions findings and returns counts per component.
func (d *Dedup) ByComponent() map[Component]int {
	out := make(map[Component]int)
	for _, r := range d.Records() {
		out[r.Component]++
	}
	return out
}

// Table renders the findings as a Table II style listing.
func Table(records []*Record) string {
	var b strings.Builder
	b.WriteString(fmt.Sprintf("%-4s %-8s %-55s %-20s %s\n",
		"No", "Device", "Bug Info", "Bug Type", "Component"))
	sorted := make([]*Record, len(records))
	copy(sorted, records)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].Device != sorted[j].Device {
			return sorted[i].Device < sorted[j].Device
		}
		return sorted[i].FoundAt < sorted[j].FoundAt
	})
	for i, r := range sorted {
		b.WriteString(fmt.Sprintf("%-4d %-8s %-55s %-20s %s\n",
			i+1, r.Device, r.Title, r.Type, r.Component))
	}
	return b.String()
}
