// Package crash handles incident triage: classification into the paper's
// component taxonomy (kernel driver / kernel subsystem / HAL), title-based
// deduplication, and reproducer bookkeeping — the processing behind
// Table II.
package crash

import (
	"fmt"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"droidfuzz/internal/adb"
	"droidfuzz/internal/dsl"
)

// numRE matches standalone integers in crash titles; they carry instance
// data (a subclass, an address), not identity, so dedup replaces them with
// NUM — the convention the paper's Table II also uses ("looking up invalid
// subclass: NUM").
var numRE = regexp.MustCompile(`\b\d+\b`)

// NormalizeTitle canonicalizes a crash title for deduplication.
func NormalizeTitle(title string) string {
	return numRE.ReplaceAllString(title, "NUM")
}

// Component is the Table II "Component" column.
type Component string

// Component values.
const (
	KernelDriver    Component = "Kernel Driver"
	KernelSubsystem Component = "Kernel Subsystem"
	HAL             Component = "HAL"
)

// BugType is the Table II "Bug Type" column.
type BugType string

// BugType values.
const (
	LogicError BugType = "Logic Error"
	MemoryBug  BugType = "Memory Related Bug"
)

// Record is one deduplicated bug finding with its reproducer.
type Record struct {
	Title     string
	Kind      string // WARNING / BUG / KASAN / HANG / HALCRASH
	Component Component
	Type      BugType
	Device    string // model ID
	Detail    string
	// Repro is the program that first triggered the bug, replaced by the
	// minimized reproducer once triage confirms it.
	Repro *dsl.Prog
	// Reproducible reports that Repro re-triggers the bug on a freshly
	// rebooted device (the paper reproduces all findings).
	Reproducible bool
	// FoundAt is the virtual time (executions) of first discovery.
	FoundAt uint64
	// Count is how many times the same title re-triggered.
	Count int
}

// subsystemMarkers identify kernel incidents that live in shared subsystems
// rather than a specific device driver (Table II rows 3 and 8).
var subsystemMarkers = []string{
	"l2cap_",                      // Bluetooth L2CAP core
	"looking up invalid subclass", // lockdep
}

// Classify maps a broker crash record to its component and bug type.
func Classify(cr adb.CrashRecord) (Component, BugType) {
	if cr.Kind == "HALCRASH" {
		return HAL, MemoryBug
	}
	comp := KernelDriver
	for _, m := range subsystemMarkers {
		if strings.Contains(cr.Title, m) {
			comp = KernelSubsystem
			break
		}
	}
	switch cr.Kind {
	case "KASAN":
		return comp, MemoryBug
	default: // WARNING, BUG, HANG: logic errors in the paper's taxonomy
		return comp, LogicError
	}
}

// dedupStripes is the lock-stripe fanout. Crash dedup is written by every
// engine in a fleet (most executions that crash hit an already-known
// title), so the title space is hashed across independent stripes and a
// status read never holds more than one stripe at a time.
const dedupStripes = 16

// dedupStripe guards one hash partition of the records.
type dedupStripe struct {
	mu      sync.Mutex
	records map[string]*Record
}

// Dedup collects unique findings by title. Safe for concurrent use:
// lookups and count bumps lock only the stripe owning the title, the
// discovery-order index has its own lock, and the unique count is an
// atomic — Len never touches a stripe at all.
type Dedup struct {
	stripes [dedupStripes]dedupStripe
	n       atomic.Int64
	orderMu sync.Mutex
	order   []string
}

// NewDedup returns an empty collector.
func NewDedup() *Dedup {
	d := &Dedup{}
	for i := range d.stripes {
		d.stripes[i].records = make(map[string]*Record)
	}
	return d
}

// stripe returns the stripe owning a normalized title (FNV-1a).
func (d *Dedup) stripe(title string) *dedupStripe {
	h := uint32(2166136261)
	for i := 0; i < len(title); i++ {
		h ^= uint32(title[i])
		h *= 16777619
	}
	return &d.stripes[h%dedupStripes]
}

// Add records an incident; repro may be nil. It returns the record and
// whether the title was new. The returned pointer stays owned by the
// collector — concurrent snapshots should go through Records, which
// copies.
func (d *Dedup) Add(deviceID string, cr adb.CrashRecord, repro *dsl.Prog, vtime uint64) (*Record, bool) {
	title := NormalizeTitle(cr.Title)
	s := d.stripe(title)
	s.mu.Lock()
	if r, ok := s.records[title]; ok {
		r.Count++
		s.mu.Unlock()
		return r, false
	}
	comp, typ := Classify(cr)
	r := &Record{
		Title: title, Kind: cr.Kind, Component: comp, Type: typ,
		Device: deviceID, Detail: cr.Detail, FoundAt: vtime, Count: 1,
	}
	if repro != nil {
		r.Repro = repro.Clone()
	}
	s.records[title] = r
	s.mu.Unlock()
	d.n.Add(1)
	d.orderMu.Lock()
	d.order = append(d.order, title)
	d.orderMu.Unlock()
	return r, true
}

// UpdateRepro replaces a finding's reproducer after triage. Safe against
// concurrent engines sharing the collector.
func (d *Dedup) UpdateRepro(title string, p *dsl.Prog, reproducible bool) {
	s := d.stripe(NormalizeTitle(title))
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.records[NormalizeTitle(title)]
	if !ok {
		return
	}
	r.Reproducible = reproducible
	if p != nil {
		r.Repro = p.Clone()
	}
}

// Len reports the number of unique findings without taking any lock.
func (d *Dedup) Len() int {
	return int(d.n.Load())
}

// Records returns the unique findings in discovery order. Each entry is a
// copy taken under its stripe lock, so callers can read it while engines
// keep bumping the live counts — the status path never blocks the fleet on
// more than one stripe at a time.
func (d *Dedup) Records() []*Record {
	d.orderMu.Lock()
	titles := make([]string, len(d.order))
	copy(titles, d.order)
	d.orderMu.Unlock()
	out := make([]*Record, 0, len(titles))
	for _, title := range titles {
		s := d.stripe(title)
		s.mu.Lock()
		if r, ok := s.records[title]; ok {
			c := *r
			out = append(out, &c)
		}
		s.mu.Unlock()
	}
	return out
}

// ByComponent partitions findings and returns counts per component.
func (d *Dedup) ByComponent() map[Component]int {
	out := make(map[Component]int)
	for _, r := range d.Records() {
		out[r.Component]++
	}
	return out
}

// Table renders the findings as a Table II style listing.
func Table(records []*Record) string {
	var b strings.Builder
	b.WriteString(fmt.Sprintf("%-4s %-8s %-55s %-20s %s\n",
		"No", "Device", "Bug Info", "Bug Type", "Component"))
	sorted := make([]*Record, len(records))
	copy(sorted, records)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].Device != sorted[j].Device {
			return sorted[i].Device < sorted[j].Device
		}
		return sorted[i].FoundAt < sorted[j].FoundAt
	})
	for i, r := range sorted {
		b.WriteString(fmt.Sprintf("%-4d %-8s %-55s %-20s %s\n",
			i+1, r.Device, r.Title, r.Type, r.Component))
	}
	return b.String()
}
