package crash

import (
	"strings"
	"testing"

	"droidfuzz/internal/adb"
	"droidfuzz/internal/drivers"
	"droidfuzz/internal/dsl"
)

func TestNormalizeTitle(t *testing.T) {
	cases := map[string]string{
		"BUG: looking up invalid subclass: 13":  "BUG: looking up invalid subclass: NUM",
		"WARNING in rt1711_i2c_probe":           "WARNING in rt1711_i2c_probe", // digits inside identifiers stay
		"WARNING in l2cap_send_disconn_req":     "WARNING in l2cap_send_disconn_req",
		"task hung after 128 ticks in foo":      "task hung after NUM ticks in foo",
		"KASAN: slab-use-after-free Read in f3": "KASAN: slab-use-after-free Read in f3",
	}
	for in, want := range cases {
		if got := NormalizeTitle(in); got != want {
			t.Errorf("NormalizeTitle(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		cr       adb.CrashRecord
		wantComp Component
		wantType BugType
	}{
		{adb.CrashRecord{Kind: "WARNING", Title: "WARNING in rt1711_i2c_probe"}, KernelDriver, LogicError},
		{adb.CrashRecord{Kind: "WARNING", Title: "WARNING in l2cap_send_disconn_req"}, KernelSubsystem, LogicError},
		{adb.CrashRecord{Kind: "BUG", Title: "BUG: looking up invalid subclass: 9"}, KernelSubsystem, LogicError},
		{adb.CrashRecord{Kind: "KASAN", Title: "KASAN: slab-use-after-free Read in bt_accept_unlink"}, KernelDriver, MemoryBug},
		{adb.CrashRecord{Kind: "HANG", Title: "INFO: task hung in audio_pcm_drain"}, KernelDriver, LogicError},
		{adb.CrashRecord{Kind: "HALCRASH", Title: "Native crash in Graphics HAL"}, HAL, MemoryBug},
	}
	for _, c := range cases {
		comp, typ := Classify(c.cr)
		if comp != c.wantComp || typ != c.wantType {
			t.Errorf("Classify(%q) = %v/%v, want %v/%v",
				c.cr.Title, comp, typ, c.wantComp, c.wantType)
		}
	}
}

func TestDedupByNormalizedTitle(t *testing.T) {
	d := NewDedup()
	r1, new1 := d.Add("A1", adb.CrashRecord{Kind: "BUG", Title: "BUG: looking up invalid subclass: 9"}, nil, 10)
	_, new2 := d.Add("A1", adb.CrashRecord{Kind: "BUG", Title: "BUG: looking up invalid subclass: 12"}, nil, 20)
	if !new1 || new2 {
		t.Fatal("normalized dedup failed")
	}
	if r1.Count != 2 {
		t.Fatalf("count = %d", r1.Count)
	}
	if d.Len() != 1 {
		t.Fatalf("len = %d", d.Len())
	}
	if r1.FoundAt != 10 {
		t.Fatal("first-found time overwritten")
	}
}

func TestDedupRecordsOrderAndComponents(t *testing.T) {
	d := NewDedup()
	d.Add("A1", adb.CrashRecord{Kind: "WARNING", Title: "WARNING in tcpc_vbus_regulator"}, nil, 1)
	d.Add("A2", adb.CrashRecord{Kind: "HALCRASH", Title: "Native crash in Media HAL"}, nil, 2)
	recs := d.Records()
	if len(recs) != 2 || recs[0].Device != "A1" || recs[1].Device != "A2" {
		t.Fatalf("records = %+v", recs)
	}
	by := d.ByComponent()
	if by[KernelDriver] != 1 || by[HAL] != 1 {
		t.Fatalf("by component = %v", by)
	}
}

func TestUpdateRepro(t *testing.T) {
	target, err := dsl.NewTarget(drivers.TCPCDescs()...)
	if err != nil {
		t.Fatal(err)
	}
	p, err := dsl.ParseProg(target, `r0 = open$tcpc(path="/dev/tcpc0")`+"\n")
	if err != nil {
		t.Fatal(err)
	}
	d := NewDedup()
	d.Add("A1", adb.CrashRecord{Kind: "WARNING", Title: "WARNING in x: 5"}, nil, 1)
	d.UpdateRepro("WARNING in x: 7", p, true) // same normalized title
	r := d.Records()[0]
	if !r.Reproducible || r.Repro == nil {
		t.Fatalf("update missed: %+v", r)
	}
	// Unknown titles are ignored.
	d.UpdateRepro("WARNING in other", p, true)
	if d.Len() != 1 {
		t.Fatal("phantom record")
	}
}

func TestTableRendering(t *testing.T) {
	d := NewDedup()
	d.Add("E", adb.CrashRecord{Kind: "WARNING", Title: "WARNING in v4l_querycap"}, nil, 5)
	d.Add("A1", adb.CrashRecord{Kind: "HALCRASH", Title: "Native crash in Graphics HAL"}, nil, 9)
	out := Table(d.Records())
	if !strings.Contains(out, "v4l_querycap") || !strings.Contains(out, "Graphics HAL") {
		t.Fatalf("table missing rows:\n%s", out)
	}
	// Sorted by device: A1 row before E row.
	if strings.Index(out, "A1") > strings.Index(out, "E ") {
		t.Fatalf("table not sorted:\n%s", out)
	}
}
