package crash

import (
	"fmt"
	"sync"
	"testing"

	"droidfuzz/internal/adb"
)

// TestDedupConcurrentAddAndRecords: engines adding overlapping crash titles
// while a status reader snapshots Records; counts, uniqueness and discovery
// order must all survive. Run under -race this covers the striped locking.
func TestDedupConcurrentAddAndRecords(t *testing.T) {
	d := NewDedup()
	const workers = 8
	const perWorker = 200
	const titles = 23 // spread across stripes, heavily shared
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				cr := adb.CrashRecord{
					Kind:  "WARNING",
					Title: fmt.Sprintf("WARNING in shared_site_%d: %d", i%titles, i),
				}
				d.Add(fmt.Sprintf("D%d", w), cr, nil, uint64(i))
				if i%17 == 0 {
					for _, r := range d.Records() {
						if r.Count <= 0 || r.Title == "" {
							t.Errorf("torn record snapshot: %+v", r)
							return
						}
					}
					_ = d.Len()
					_ = d.ByComponent()
				}
			}
		}(w)
	}
	wg.Wait()
	if d.Len() != titles {
		t.Fatalf("unique findings = %d, want %d", d.Len(), titles)
	}
	recs := d.Records()
	if len(recs) != titles {
		t.Fatalf("records = %d, want %d", len(recs), titles)
	}
	total := 0
	seen := make(map[string]bool)
	for _, r := range recs {
		if seen[r.Title] {
			t.Fatalf("duplicate record for %q", r.Title)
		}
		seen[r.Title] = true
		total += r.Count
	}
	if total != workers*perWorker {
		t.Fatalf("count sum = %d, want %d", total, workers*perWorker)
	}
}
