// Package daemon implements DroidFuzz's root process (paper §IV-A): it
// spawns one fuzzing engine per target device, owns the persistent shared
// state — the relation table, the global crash dedup, and corpus
// persistence — and coordinates the engines' runs.
package daemon

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"droidfuzz/internal/adb"
	"droidfuzz/internal/baseline"
	"droidfuzz/internal/crash"
	"droidfuzz/internal/device"
	"droidfuzz/internal/dsl"
	"droidfuzz/internal/engine"
	"droidfuzz/internal/relation"
)

// Daemon coordinates engines across devices.
type Daemon struct {
	mu sync.Mutex
	// graph is the shared relation table: relations learned on one device
	// inform generation on the others (interfaces overlap across models).
	graph   *relation.Graph
	dedup   *crash.Dedup
	engines map[string]*engine.Engine
	devices map[string]*device.Device
	order   []string
	// maxWorkers bounds the worker pool of parallel runs; 0 means
	// GOMAXPROCS.
	maxWorkers int
	// pipelineDepth, when > 0, makes parallel runs use the engines'
	// pipelined mode with that generation lookahead.
	pipelineDepth int
	// batchSize, when > 1 (and pipelining is on), makes pipelined runs
	// ship programs in executor batches of this size — over a remote link
	// that is the windowed wire-frame + summary-uplink mode.
	batchSize int
	// learnLog, when set, journals every learn op the parallel applier
	// lands in the shared graph — the federation uplink's export feed.
	learnLog *relation.Log
	// fleet is the multi-host status block a coordinator host publishes;
	// an atomic pointer keeps WriteStatus's never-blocks guarantee.
	fleet atomic.Pointer[FleetStatus]
}

// New returns an empty daemon with fresh shared state.
func New() *Daemon {
	return &Daemon{
		graph:   relation.New(),
		dedup:   crash.NewDedup(),
		engines: make(map[string]*engine.Engine),
		devices: make(map[string]*device.Device),
	}
}

// Graph exposes the shared relation table.
func (d *Daemon) Graph() *relation.Graph { return d.graph }

// Dedup exposes the global unique-bug collector.
func (d *Daemon) Dedup() *crash.Dedup { return d.dedup }

// AddDevice boots the model, runs the probing pass, and attaches an engine
// keyed by the model ID. cfg.Seed should differ per device for independent
// exploration.
func (d *Daemon) AddDevice(modelID string, cfg engine.Config) error {
	return d.AddDeviceAs(modelID, modelID, cfg)
}

// AddDeviceAs is AddDevice with an explicit engine key, so a fleet shard
// can attach several devices of one model under distinct IDs (a coordinator
// host uses "<hostID>/s<shard>.<j>/<model>", which also makes the learn
// records' (device, seq) keys globally unique across the fleet).
//
// Boot and probing are the slow part and run outside the daemon lock, so
// attaching a fleet of devices never serializes on d.mu (and a status read
// during startup never waits behind a probe). The shared graph and dedup
// are concurrency-safe, so the probing pass may learn into them before the
// engine is registered.
func (d *Daemon) AddDeviceAs(id, modelID string, cfg engine.Config) error {
	model, err := device.ModelByID(modelID)
	if err != nil {
		return err
	}
	d.mu.Lock()
	if _, dup := d.engines[id]; dup {
		d.mu.Unlock()
		return fmt.Errorf("daemon: device %s already attached", id)
	}
	d.mu.Unlock()

	dev := device.New(model)
	eng, err := baseline.NewDroidFuzz(dev, d.graph, d.dedup, cfg)
	if err != nil {
		return fmt.Errorf("daemon: attach %s: %w", id, err)
	}

	d.mu.Lock()
	defer d.mu.Unlock()
	if _, dup := d.engines[id]; dup {
		// A concurrent attach of the same id won the race while we were
		// probing; keep the winner.
		return fmt.Errorf("daemon: device %s already attached", id)
	}
	d.engines[id] = eng
	d.devices[id] = dev
	d.order = append(d.order, id)
	return nil
}

// AttachExecutor wires an engine over an already-attached execution
// boundary — typically a resilient remote client dialed by the fleet CLI —
// into the daemon's shared relation table and crash dedup. seeds (optional)
// are executed and admitted unminimized, the same corpus bootstrap
// AddDevice performs from the in-process probing pass. The id keys the
// engine in stats and corpus persistence and must be unique.
func (d *Daemon) AttachExecutor(id string, x adb.Executor, seeds []*dsl.Prog, cfg engine.Config) error {
	if x.Target() == nil {
		return fmt.Errorf("daemon: attach %s: executor has no bound target (handshake missing?)", id)
	}
	d.mu.Lock()
	if _, dup := d.engines[id]; dup {
		d.mu.Unlock()
		return fmt.Errorf("daemon: device %s already attached", id)
	}
	eng := engine.New(x, d.graph, d.dedup, cfg)
	d.engines[id] = eng
	d.order = append(d.order, id)
	d.mu.Unlock()
	// Seeding executes programs over the boundary; keep it outside the
	// daemon lock so a slow or down remote cannot block other attaches.
	eng.SeedCorpus(seeds)
	return nil
}

// Engine returns the engine attached for the model, or nil.
func (d *Daemon) Engine(modelID string) *engine.Engine {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.engines[modelID]
}

// Devices returns the attached model IDs in attach order.
func (d *Daemon) Devices() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]string, len(d.order))
	copy(out, d.order)
	return out
}

// SetMaxWorkers bounds the parallel run's worker pool. n <= 0 restores the
// default (GOMAXPROCS). A fleet of hundreds of devices then shares a fixed
// number of host threads instead of spawning one goroutine per device.
func (d *Daemon) SetMaxWorkers(n int) {
	d.mu.Lock()
	d.maxWorkers = n
	d.mu.Unlock()
}

// SetPipelineDepth makes parallel runs drive each engine in pipelined mode
// (generation overlapped with execution) with the given lookahead; 0
// restores strictly serial per-engine iteration.
func (d *Daemon) SetPipelineDepth(depth int) {
	d.mu.Lock()
	d.pipelineDepth = depth
	d.mu.Unlock()
}

// SetBatchSize makes pipelined parallel runs execute programs in batches
// of n through the executors' BatchExecutor extension (engines over
// executors without batch support fall back to per-program execution);
// n <= 1 restores per-program execution. Takes effect only when a pipeline
// depth is also set — batching without generation lookahead would starve
// the batches.
func (d *Daemon) SetBatchSize(n int) {
	d.mu.Lock()
	d.batchSize = n
	d.mu.Unlock()
}

// SetLearnLog journals every learn op the parallel applier lands in the
// shared graph into l (nil disables journaling). A coordinator host sets
// one so the federation uplink can export (device, seq)-stamped learn
// records exactly as they were applied locally.
func (d *Daemon) SetLearnLog(l *relation.Log) {
	d.mu.Lock()
	d.learnLog = l
	d.mu.Unlock()
}

// Run executes iters fuzzing iterations on every attached engine. With
// parallel set, engines are distributed over a bounded worker pool (at most
// SetMaxWorkers goroutines, defaulting to GOMAXPROCS — the deployment shape
// of §IV-A without one unbounded goroutine per device); otherwise serially
// in attach order, which is deterministic for a fixed set of seeds.
func (d *Daemon) Run(iters int, parallel bool) {
	_ = d.RunOn(nil, iters, parallel)
}

// RunOn is Run restricted to the engines with the given IDs (nil means
// every attached engine, in attach order). A coordinator host runs one
// shard's device subset per federation epoch while engines of completed
// shards stay attached for status reporting. Unknown IDs are an error.
func (d *Daemon) RunOn(ids []string, iters int, parallel bool) error {
	d.mu.Lock()
	if ids == nil {
		ids = make([]string, len(d.order))
		copy(ids, d.order)
	}
	engines := make([]*engine.Engine, 0, len(ids))
	for _, id := range ids {
		e, ok := d.engines[id]
		if !ok {
			d.mu.Unlock()
			return fmt.Errorf("daemon: run: no engine %q attached", id)
		}
		engines = append(engines, e)
	}
	workers := d.maxWorkers
	depth := d.pipelineDepth
	batch := d.batchSize
	llog := d.learnLog
	d.mu.Unlock()

	if !parallel {
		for _, e := range engines {
			e.Run(iters)
		}
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(engines) {
		workers = len(engines)
	}

	// Parallel campaigns buffer relation learns per engine; the applier
	// goroutine below periodically drains every buffer into the shared
	// graph in (device, sequence) order. Engines therefore never contend
	// on the graph lock mid-step — their generators read published
	// snapshots, and learning is append-to-own-buffer. With a learn log
	// set, every applied op is journaled in its applied batch order — the
	// export feed federation uplinks slice by index.
	bufs := make([]*relation.LearnBuffer, len(engines))
	for i, e := range engines {
		bufs[i] = relation.NewLearnBuffer(ids[i])
		e.SetLearnBuffer(bufs[i])
	}
	apply := func() {
		ops := relation.DrainAll(bufs...)
		if len(ops) == 0 {
			return
		}
		d.graph.ApplyOps(ops)
		if llog != nil {
			llog.Append(ops...)
		}
	}
	stopApply := make(chan struct{})
	applierDone := make(chan struct{})
	go func() {
		defer close(applierDone)
		tick := time.NewTicker(learnApplyInterval)
		defer tick.Stop()
		for {
			select {
			case <-stopApply:
				return
			case <-tick.C:
				apply()
			}
		}
	}()

	queue := make(chan *engine.Engine)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for e := range queue {
				switch {
				case depth > 0 && batch > 1:
					e.RunPipelinedBatched(iters, depth, batch)
				case depth > 0:
					e.RunPipelined(iters, depth)
				default:
					e.Run(iters)
				}
			}
		}()
	}
	for _, e := range engines {
		queue <- e
	}
	close(queue)
	wg.Wait()

	close(stopApply)
	<-applierDone
	// Final drain: everything recorded after the applier's last tick still
	// lands in the graph before Run returns, and the engines go back to
	// synchronous learning for any subsequent serial run.
	apply()
	for _, e := range engines {
		e.SetLearnBuffer(nil)
	}
	return nil
}

// learnApplyInterval is the applier's drain cadence during parallel runs.
// Learns are advisory guidance, not safety state: a few milliseconds of lag
// costs nothing, while draining too eagerly would re-serialize the fleet on
// the graph lock.
const learnApplyInterval = 2 * time.Millisecond

// Stats snapshots all engines' counters keyed by model ID. The engine map
// is copied under the daemon lock, then every engine is queried unlocked —
// engine counters are atomics, so a mid-campaign stats poll reads
// consistent values without stalling any engine goroutine.
func (d *Daemon) Stats() map[string]engine.Stats {
	d.mu.Lock()
	engines := make(map[string]*engine.Engine, len(d.engines))
	for id, e := range d.engines {
		engines[id] = e
	}
	d.mu.Unlock()
	out := make(map[string]engine.Stats, len(engines))
	for id, e := range engines {
		out[id] = e.Stats()
	}
	return out
}

// SaveCorpora persists every engine's corpus under dir/<modelID>/. File
// I/O runs outside the daemon lock.
func (d *Daemon) SaveCorpora(dir string) error {
	d.mu.Lock()
	ids := make([]string, len(d.order))
	copy(ids, d.order)
	engines := make(map[string]*engine.Engine, len(d.engines))
	for id, e := range d.engines {
		engines[id] = e
	}
	d.mu.Unlock()
	slices.Sort(ids)
	for _, id := range ids {
		if err := engines[id].Corpus().Save(filepath.Join(dir, id)); err != nil {
			return err
		}
	}
	return nil
}

// Bugs returns the global unique findings in discovery order.
func (d *Daemon) Bugs() []*crash.Record { return d.dedup.Records() }

// FleetStatus is the multi-host block of the status report: the identity
// and federation counters a coordinator host publishes alongside the
// per-device stats, so a whole-fleet dashboard still polls one JSON
// document per host.
type FleetStatus struct {
	// HostID is the coordinator-assigned host identity.
	HostID string `json:"host_id"`
	// ShardEpoch counts completed federation epochs (uplink/downlink
	// exchanges) across every shard this host ran.
	ShardEpoch uint64 `json:"shard_epoch"`
	// FedBytesIn / FedBytesOut are cumulative federation payload bytes
	// received from and sent to the coordinator.
	FedBytesIn  uint64 `json:"fed_bytes_in"`
	FedBytesOut uint64 `json:"fed_bytes_out"`
	// Steals counts shards this host leased out of other hosts' queues
	// (including requeued shards of evicted hosts).
	Steals uint64 `json:"steals"`
	// LearnsDropped counts learn records that could not be encoded for
	// uplink (cursor advanced past them); nonzero means federated relation
	// state is lossy on this host.
	LearnsDropped uint64 `json:"learns_dropped,omitempty"`
	// CorpusHash is the order-independent fingerprint of the host's view
	// of the federated corpus; equal values across hosts mean their corpus
	// sets converged.
	CorpusHash uint64 `json:"corpus_hash"`
	// Shards summarizes every shard this host leased, in lease order.
	Shards []ShardStatus `json:"shards,omitempty"`
}

// ShardStatus is one leased shard's summary in the fleet status block.
type ShardStatus struct {
	ID      int    `json:"id"`
	Model   string `json:"model"`
	Devices int    `json:"devices"`
	// Execs is the per-device iteration count this host completed on the
	// shard.
	Execs int `json:"execs"`
	// Stolen marks shards leased from another host's queue.
	Stolen bool `json:"stolen,omitempty"`
	// State is "running" or "done" (from this host's perspective).
	State string `json:"state"`
}

// UpdateFleet publishes the fleet status block (a copy) for WriteStatus.
// The block lives behind an atomic pointer: publishing never takes the
// daemon lock and a concurrent WriteStatus never blocks on it.
func (d *Daemon) UpdateFleet(fs FleetStatus) {
	cp := fs
	cp.Shards = slices.Clone(fs.Shards)
	d.fleet.Store(&cp)
}

// statusReport is the JSON shape of WriteStatus.
type statusReport struct {
	// Fleet is the multi-host block; absent for single-host campaigns.
	Fleet *FleetStatus `json:"fleet,omitempty"`
	Devices map[string]engine.Stats `json:"devices"`
	// ExecErrors aggregates broker execution errors across the fleet; a
	// nonzero value flags transport or program-build trouble that per-device
	// coverage numbers would otherwise hide.
	ExecErrors uint64 `json:"exec_errors"`
	// ParamWrites aggregates executed runtime-parameter writes across the
	// fleet; zero in a param-enabled campaign flags a dead dimension.
	ParamWrites uint64 `json:"param_writes"`
	// LineageExecs aggregates fork-style lineage executions across the
	// fleet; zero in a lineage-enabled campaign flags a dead fan-out path
	// (executor without checkpoint support, or no kernel-new admissions).
	LineageExecs uint64 `json:"lineage_execs"`
	Relations  struct {
		Vertices int    `json:"vertices"`
		Edges    int    `json:"edges"`
		Learned  uint64 `json:"learned"`
	} `json:"relations"`
	Bugs []bugSummary `json:"bugs"`
}

type bugSummary struct {
	Title     string `json:"title"`
	Device    string `json:"device"`
	Component string `json:"component"`
	Type      string `json:"type"`
	FoundAt   uint64 `json:"found_at"`
	Count     int    `json:"count"`
}

// WriteStatus emits a machine-readable status snapshot as JSON, the feed a
// monitoring dashboard would poll.
func (d *Daemon) WriteStatus(w io.Writer) error {
	rep := statusReport{Devices: d.Stats(), Fleet: d.fleet.Load()}
	for _, st := range rep.Devices {
		rep.ExecErrors += st.ExecErrors
		rep.ParamWrites += st.ParamWrites
		rep.LineageExecs += st.LineageExecs
	}
	rep.Relations.Vertices = d.graph.Len()
	rep.Relations.Edges = d.graph.Edges()
	rep.Relations.Learned = d.graph.Learns()
	for _, r := range d.Bugs() {
		rep.Bugs = append(rep.Bugs, bugSummary{
			Title: r.Title, Device: r.Device,
			Component: string(r.Component), Type: string(r.Type),
			FoundAt: r.FoundAt, Count: r.Count,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// LoadCorpora restores previously saved corpora from dir/<modelID>/ into
// the matching engines, returning per-device load counts. File I/O runs
// outside the daemon lock.
func (d *Daemon) LoadCorpora(dir string) (map[string]int, error) {
	d.mu.Lock()
	ids := make([]string, len(d.order))
	copy(ids, d.order)
	engines := make(map[string]*engine.Engine, len(d.engines))
	for id, e := range d.engines {
		engines[id] = e
	}
	d.mu.Unlock()
	out := make(map[string]int)
	for _, id := range ids {
		eng := engines[id]
		n, err := eng.Corpus().Load(filepath.Join(dir, id), eng.Gen().Target())
		if err != nil {
			return out, err
		}
		out[id] = n
	}
	return out, nil
}
