package daemon

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"droidfuzz/internal/engine"
	"droidfuzz/internal/relation"
)

func TestDaemonLifecycle(t *testing.T) {
	d := New()
	if err := d.AddDevice("A1", engine.Config{Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if err := d.AddDevice("B", engine.Config{Seed: 2}); err != nil {
		t.Fatal(err)
	}
	if err := d.AddDevice("A1", engine.Config{Seed: 3}); err == nil {
		t.Fatal("duplicate device accepted")
	}
	if err := d.AddDevice("Z9", engine.Config{Seed: 4}); err == nil {
		t.Fatal("unknown device accepted")
	}
	if got := d.Devices(); len(got) != 2 || got[0] != "A1" || got[1] != "B" {
		t.Fatalf("devices = %v", got)
	}
	if d.Engine("A1") == nil || d.Engine("Z9") != nil {
		t.Fatal("engine lookup wrong")
	}

	d.Run(300, false)
	st := d.Stats()
	for id, s := range st {
		if s.Execs == 0 || s.KernelCov == 0 {
			t.Fatalf("%s made no progress: %+v", id, s)
		}
	}
}

func TestDaemonParallelRun(t *testing.T) {
	d := New()
	for _, id := range []string{"A1", "B", "D"} {
		if err := d.AddDevice(id, engine.Config{Seed: 7}); err != nil {
			t.Fatal(err)
		}
	}
	d.Run(300, true)
	for id, s := range d.Stats() {
		if s.Execs == 0 {
			t.Fatalf("%s idle", id)
		}
	}
	// The shared relation table accumulated edges from all engines.
	if d.Graph().Edges() == 0 {
		t.Fatal("shared relation table empty")
	}
}

// TestDaemonBoundedWorkerPool runs more devices than workers: every engine
// must still complete its full iteration budget while sharing the shared
// relation graph and global dedup. Run under -race this also checks the
// pool's handoff.
func TestDaemonBoundedWorkerPool(t *testing.T) {
	d := New()
	models := []string{"A1", "A2", "B", "C1", "D"}
	for i, id := range models {
		if err := d.AddDevice(id, engine.Config{Seed: int64(100 + i)}); err != nil {
			t.Fatal(err)
		}
	}
	d.SetMaxWorkers(2) // 5 devices over 2 workers
	d.Run(150, true)
	for id, s := range d.Stats() {
		if s.Execs < 150 {
			t.Fatalf("%s ran %d execs, want >= 150", id, s.Execs)
		}
	}
	if d.Graph().Edges() == 0 {
		t.Fatal("shared relation table empty")
	}
}

// TestDaemonPipelinedParallelRun drives ≥3 device models concurrently with
// the engines in pipelined (generation-ahead) mode, all sharing one
// relation graph and one dedup collector — the configuration the -race CI
// job exists to keep honest.
func TestDaemonPipelinedParallelRun(t *testing.T) {
	d := New()
	for i, id := range []string{"A1", "B", "C2", "E"} {
		if err := d.AddDevice(id, engine.Config{Seed: int64(50 + i)}); err != nil {
			t.Fatal(err)
		}
	}
	d.SetMaxWorkers(3)
	d.SetPipelineDepth(4)
	d.Run(200, true)
	for id, s := range d.Stats() {
		if s.Execs < 200 {
			t.Fatalf("%s ran %d execs, want >= 200", id, s.Execs)
		}
		if s.KernelCov == 0 {
			t.Fatalf("%s collected no coverage", id)
		}
	}
	if d.Graph().Edges() == 0 {
		t.Fatal("shared relation table empty")
	}
	if d.Dedup() == nil {
		t.Fatal("dedup missing")
	}
}

func TestDaemonSaveCorpora(t *testing.T) {
	d := New()
	if err := d.AddDevice("B", engine.Config{Seed: 5}); err != nil {
		t.Fatal(err)
	}
	d.Run(200, false)
	dir := t.TempDir()
	if err := d.SaveCorpora(dir); err != nil {
		t.Fatal(err)
	}
	matches, _ := filepath.Glob(filepath.Join(dir, "B", "*.prog"))
	if len(matches) == 0 {
		t.Fatal("no corpus files written")
	}
	if _, err := os.Stat(filepath.Join(dir, "B")); err != nil {
		t.Fatal(err)
	}
}

func TestDaemonWriteStatusJSON(t *testing.T) {
	d := New()
	if err := d.AddDevice("B", engine.Config{Seed: 9}); err != nil {
		t.Fatal(err)
	}
	d.Run(200, false)
	var buf bytes.Buffer
	if err := d.WriteStatus(&buf); err != nil {
		t.Fatal(err)
	}
	var rep map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	devs, ok := rep["devices"].(map[string]any)
	if !ok || devs["B"] == nil {
		t.Fatalf("devices missing: %s", buf.String())
	}
	if rep["relations"] == nil {
		t.Fatal("relations missing")
	}
}

// TestDaemonStatusSurfacesExecErrors injects transport faults into one
// device's broker and checks the error count reaches both the per-device
// stats and the fleet-wide exec_errors field of the status feed.
func TestDaemonStatusSurfacesExecErrors(t *testing.T) {
	d := New()
	if err := d.AddDevice("B", engine.Config{Seed: 21}); err != nil {
		t.Fatal(err)
	}
	d.Engine("B").Broker().FailNext(5)
	d.Run(100, false)
	st := d.Stats()["B"]
	if st.ExecErrors != 5 {
		t.Fatalf("ExecErrors = %d, want 5", st.ExecErrors)
	}
	var buf bytes.Buffer
	if err := d.WriteStatus(&buf); err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Devices    map[string]engine.Stats `json:"devices"`
		ExecErrors uint64                  `json:"exec_errors"`
	}
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if rep.ExecErrors != 5 {
		t.Fatalf("exec_errors = %d, want 5", rep.ExecErrors)
	}
	if rep.Devices["B"].ExecErrors != 5 {
		t.Fatalf("devices.B.ExecErrors = %d, want 5", rep.Devices["B"].ExecErrors)
	}
}

func TestDaemonLoadCorpora(t *testing.T) {
	dir := t.TempDir()
	d := New()
	if err := d.AddDevice("B", engine.Config{Seed: 10}); err != nil {
		t.Fatal(err)
	}
	d.Run(200, false)
	if err := d.SaveCorpora(dir); err != nil {
		t.Fatal(err)
	}
	saved := d.Engine("B").Corpus().Len()

	fresh := New()
	if err := fresh.AddDevice("B", engine.Config{Seed: 11}); err != nil {
		t.Fatal(err)
	}
	counts, err := fresh.LoadCorpora(dir)
	if err != nil {
		t.Fatal(err)
	}
	if counts["B"] == 0 {
		t.Fatalf("nothing loaded (saved %d)", saved)
	}
}

// TestAddDeviceAsAndRunOn attaches two devices of the same model under
// distinct IDs — the coordinator-shard shape AddDevice's model keying
// cannot express — and runs only a subset of the fleet.
func TestAddDeviceAsAndRunOn(t *testing.T) {
	d := New()
	if err := d.AddDeviceAs("h1/s0.0/B", "B", engine.Config{Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if err := d.AddDeviceAs("h1/s0.1/B", "B", engine.Config{Seed: 2}); err != nil {
		t.Fatal(err)
	}
	if err := d.AddDeviceAs("h1/s0.0/B", "B", engine.Config{Seed: 3}); err == nil {
		t.Fatal("duplicate id accepted")
	}
	if err := d.AddDeviceAs("h1/s1.0/Z9", "Z9", engine.Config{}); err == nil {
		t.Fatal("unknown model accepted")
	}
	// Corpus seeding at attach already executes programs, so compare
	// against the post-attach baseline rather than zero.
	before := d.Stats()
	if err := d.RunOn([]string{"h1/s0.0/B"}, 150, true); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st["h1/s0.0/B"].Execs <= before["h1/s0.0/B"].Execs {
		t.Fatal("selected engine idle")
	}
	if got, was := st["h1/s0.1/B"].Execs, before["h1/s0.1/B"].Execs; got != was {
		t.Fatalf("unselected engine ran %d extra execs", got-was)
	}
	if err := d.RunOn([]string{"nope"}, 10, false); err == nil {
		t.Fatal("RunOn accepted an unknown id")
	}
}

// TestRunOnJournalsLearnLog checks the applier's export feed: with a learn
// log set, parallel runs journal the applied ops, and replaying the journal
// into a fresh graph with the same vertex set reproduces the shared graph's
// learn count.
func TestRunOnJournalsLearnLog(t *testing.T) {
	d := New()
	if err := d.AddDeviceAs("h1/s0.0/A1", "A1", engine.Config{Seed: 5}); err != nil {
		t.Fatal(err)
	}
	llog := relation.NewLog()
	d.SetLearnLog(llog)
	learnedBefore := d.Graph().Learns()
	if err := d.RunOn(nil, 400, true); err != nil {
		t.Fatal(err)
	}
	ops := llog.Ops()
	if len(ops) == 0 {
		t.Skip("campaign produced no buffered learns at this budget")
	}
	// The journal records every buffered op; the graph's learn counter
	// skips self-pairs, so it can only trail the journal.
	learned := d.Graph().Learns() - learnedBefore
	if uint64(len(ops)) < learned {
		t.Fatalf("journal has %d ops but the graph learned %d", len(ops), learned)
	}
	for _, op := range ops {
		if op.Device != "h1/s0.0/A1" {
			t.Fatalf("journaled op carries device %q", op.Device)
		}
	}
	// Replaying the journal into a fresh graph with the same vertex set
	// reproduces the learn count — the skip behavior is deterministic.
	replica := relation.New()
	for _, name := range d.Graph().Names() {
		replica.AddVertex(name, d.Graph().Vertex(name).Weight)
	}
	relation.Replay(replica, ops)
	if replica.Learns() != learned {
		t.Fatalf("replayed graph learned %d, campaign learned %d", replica.Learns(), learned)
	}
}

// TestWriteStatusFleetBlock checks satellite behavior: UpdateFleet's block
// lands in the status JSON, and a status without one omits the field.
func TestWriteStatusFleetBlock(t *testing.T) {
	d := New()
	if err := d.AddDevice("B", engine.Config{Seed: 9}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.WriteStatus(&buf); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(buf.Bytes(), []byte(`"fleet"`)) {
		t.Fatalf("single-host status carries a fleet block: %s", buf.String())
	}

	d.UpdateFleet(FleetStatus{
		HostID: "h1", ShardEpoch: 3, FedBytesIn: 100, FedBytesOut: 40,
		Steals: 1, CorpusHash: 0xabcd,
		Shards: []ShardStatus{{ID: 2, Model: "B", Devices: 1, Execs: 500, Stolen: true, State: "done"}},
	})
	buf.Reset()
	if err := d.WriteStatus(&buf); err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Fleet *FleetStatus `json:"fleet"`
	}
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if rep.Fleet == nil || rep.Fleet.HostID != "h1" || rep.Fleet.ShardEpoch != 3 ||
		rep.Fleet.Steals != 1 || rep.Fleet.CorpusHash != 0xabcd {
		t.Fatalf("fleet block wrong: %+v", rep.Fleet)
	}
	if len(rep.Fleet.Shards) != 1 || !rep.Fleet.Shards[0].Stolen || rep.Fleet.Shards[0].State != "done" {
		t.Fatalf("shard summary wrong: %+v", rep.Fleet.Shards)
	}
}
