package daemon

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"droidfuzz/internal/engine"
)

func TestDaemonLifecycle(t *testing.T) {
	d := New()
	if err := d.AddDevice("A1", engine.Config{Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if err := d.AddDevice("B", engine.Config{Seed: 2}); err != nil {
		t.Fatal(err)
	}
	if err := d.AddDevice("A1", engine.Config{Seed: 3}); err == nil {
		t.Fatal("duplicate device accepted")
	}
	if err := d.AddDevice("Z9", engine.Config{Seed: 4}); err == nil {
		t.Fatal("unknown device accepted")
	}
	if got := d.Devices(); len(got) != 2 || got[0] != "A1" || got[1] != "B" {
		t.Fatalf("devices = %v", got)
	}
	if d.Engine("A1") == nil || d.Engine("Z9") != nil {
		t.Fatal("engine lookup wrong")
	}

	d.Run(300, false)
	st := d.Stats()
	for id, s := range st {
		if s.Execs == 0 || s.KernelCov == 0 {
			t.Fatalf("%s made no progress: %+v", id, s)
		}
	}
}

func TestDaemonParallelRun(t *testing.T) {
	d := New()
	for _, id := range []string{"A1", "B", "D"} {
		if err := d.AddDevice(id, engine.Config{Seed: 7}); err != nil {
			t.Fatal(err)
		}
	}
	d.Run(300, true)
	for id, s := range d.Stats() {
		if s.Execs == 0 {
			t.Fatalf("%s idle", id)
		}
	}
	// The shared relation table accumulated edges from all engines.
	if d.Graph().Edges() == 0 {
		t.Fatal("shared relation table empty")
	}
}

func TestDaemonSaveCorpora(t *testing.T) {
	d := New()
	if err := d.AddDevice("B", engine.Config{Seed: 5}); err != nil {
		t.Fatal(err)
	}
	d.Run(200, false)
	dir := t.TempDir()
	if err := d.SaveCorpora(dir); err != nil {
		t.Fatal(err)
	}
	matches, _ := filepath.Glob(filepath.Join(dir, "B", "*.prog"))
	if len(matches) == 0 {
		t.Fatal("no corpus files written")
	}
	if _, err := os.Stat(filepath.Join(dir, "B")); err != nil {
		t.Fatal(err)
	}
}

func TestDaemonWriteStatusJSON(t *testing.T) {
	d := New()
	if err := d.AddDevice("B", engine.Config{Seed: 9}); err != nil {
		t.Fatal(err)
	}
	d.Run(200, false)
	var buf bytes.Buffer
	if err := d.WriteStatus(&buf); err != nil {
		t.Fatal(err)
	}
	var rep map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	devs, ok := rep["devices"].(map[string]any)
	if !ok || devs["B"] == nil {
		t.Fatalf("devices missing: %s", buf.String())
	}
	if rep["relations"] == nil {
		t.Fatal("relations missing")
	}
}

func TestDaemonLoadCorpora(t *testing.T) {
	dir := t.TempDir()
	d := New()
	if err := d.AddDevice("B", engine.Config{Seed: 10}); err != nil {
		t.Fatal(err)
	}
	d.Run(200, false)
	if err := d.SaveCorpora(dir); err != nil {
		t.Fatal(err)
	}
	saved := d.Engine("B").Corpus().Len()

	fresh := New()
	if err := fresh.AddDevice("B", engine.Config{Seed: 11}); err != nil {
		t.Fatal(err)
	}
	counts, err := fresh.LoadCorpora(dir)
	if err != nil {
		t.Fatal(err)
	}
	if counts["B"] == 0 {
		t.Fatalf("nothing loaded (saved %d)", saved)
	}
}
