package daemon

import (
	"testing"

	"droidfuzz/internal/engine"
)

// goldenRun pins the serial determinism contract across hot-path rewrites:
// the stats below were recorded from the pre-pooling, map-based feedback
// implementation (PR 1 seed state) with exactly these seeds and iteration
// counts. Any drift in coverage counts, execution totals, or corpus growth
// means the rewrite changed the campaign trajectory — the acceptance bar is
// bit-identical replay, not "roughly the same coverage".
var goldenRun = []struct {
	model string
	seed  int64

	execs       uint64
	kernelCov   int
	totalSignal int
	newSignal   uint64
	corpusSize  int
	crashes     int
}{
	{"A1", 101, 1490, 398, 592, 166, 150, 0},
	{"B", 202, 1328, 303, 421, 151, 139, 4},
	{"D", 303, 1390, 345, 508, 160, 144, 0},
}

const goldenIters = 400

// TestSerialRunMatchesGoldenStats replays the recorded campaigns serially
// and compares every counter against the pre-rewrite values.
func TestSerialRunMatchesGoldenStats(t *testing.T) {
	d := New()
	for _, g := range goldenRun {
		if err := d.AddDevice(g.model, engine.Config{Seed: g.seed}); err != nil {
			t.Fatal(err)
		}
	}
	d.Run(goldenIters, false)
	for _, g := range goldenRun {
		st := d.Engine(g.model).Stats()
		if st.Execs != g.execs || st.KernelCov != g.kernelCov ||
			st.TotalSignal != g.totalSignal || st.NewSignal != g.newSignal ||
			st.CorpusSize != g.corpusSize || st.Crashes != g.crashes {
			t.Errorf("%s diverged from golden:\n got  %+v\n want execs=%d kernel=%d total=%d new=%d corpus=%d crashes=%d",
				g.model, st, g.execs, g.kernelCov, g.totalSignal, g.newSignal, g.corpusSize, g.crashes)
		}
		if st.ExecErrors != 0 {
			t.Errorf("%s: unexpected exec errors: %d", g.model, st.ExecErrors)
		}
	}
}

// TestSerialRunReplaysItself runs the same serial campaign twice in one
// process and asserts bit-identical stats — the within-binary half of the
// determinism contract (the golden test covers the across-rewrite half).
func TestSerialRunReplaysItself(t *testing.T) {
	run := func() map[string]engine.Stats {
		d := New()
		for _, id := range []string{"A2", "C1"} {
			if err := d.AddDevice(id, engine.Config{Seed: 77}); err != nil {
				t.Fatal(err)
			}
		}
		d.Run(250, false)
		return d.Stats()
	}
	a, b := run(), run()
	for id, st := range a {
		if st != b[id] {
			t.Fatalf("%s: serial replay diverged:\n run1 %+v\n run2 %+v", id, st, b[id])
		}
	}
}
