package daemon

import (
	"net"
	"sort"
	"testing"

	"droidfuzz/internal/adb"
	"droidfuzz/internal/baseline"
	"droidfuzz/internal/crash"
	"droidfuzz/internal/device"
	"droidfuzz/internal/dsl"
	"droidfuzz/internal/engine"
	"droidfuzz/internal/probe"
	"droidfuzz/internal/relation"
)

// goldenRun pins the serial determinism contract across hot-path rewrites:
// the stats below were recorded from the pre-pooling, map-based feedback
// implementation (PR 1 seed state) with exactly these seeds and iteration
// counts. Any drift in coverage counts, execution totals, or corpus growth
// means the rewrite changed the campaign trajectory — the acceptance bar is
// bit-identical replay, not "roughly the same coverage".
var goldenRun = []struct {
	model string
	seed  int64

	execs       uint64
	kernelCov   int
	totalSignal int
	newSignal   uint64
	corpusSize  int
	crashes     int
}{
	{"A1", 101, 1490, 398, 592, 166, 150, 0},
	{"B", 202, 1328, 303, 421, 151, 139, 4},
	{"D", 303, 1390, 345, 508, 160, 144, 0},
}

const goldenIters = 400

// TestSerialRunMatchesGoldenStats replays the recorded campaigns serially
// and compares every counter against the pre-rewrite values.
func TestSerialRunMatchesGoldenStats(t *testing.T) {
	d := New()
	for _, g := range goldenRun {
		if err := d.AddDevice(g.model, engine.Config{Seed: g.seed}); err != nil {
			t.Fatal(err)
		}
	}
	d.Run(goldenIters, false)
	for _, g := range goldenRun {
		st := d.Engine(g.model).Stats()
		if st.Execs != g.execs || st.KernelCov != g.kernelCov ||
			st.TotalSignal != g.totalSignal || st.NewSignal != g.newSignal ||
			st.CorpusSize != g.corpusSize || st.Crashes != g.crashes {
			t.Errorf("%s diverged from golden:\n got  %+v\n want execs=%d kernel=%d total=%d new=%d corpus=%d crashes=%d",
				g.model, st, g.execs, g.kernelCov, g.totalSignal, g.newSignal, g.corpusSize, g.crashes)
		}
		if st.ExecErrors != 0 {
			t.Errorf("%s: unexpected exec errors: %d", g.model, st.ExecErrors)
		}
	}
}

// TestSerialRemoteEngineMatchesInProcess is the transport half of the
// determinism contract: a serial engine driving a broker over the gob
// transport (net.Pipe, programs crossing the wire in canonical text form,
// target rebuilt from the Describe handshake) must produce bit-identical
// campaign stats and crash titles to the in-process engine for the same
// seed. Any divergence means the text round trip or the handshake target
// reconstruction is lossy.
func TestSerialRemoteEngineMatchesInProcess(t *testing.T) {
	const (
		modelID = "B" // carries shallow bugs, so crash paths are exercised
		seed    = 404
		iters   = 300
	)

	// In-process reference: the standard attach sequence.
	model, err := device.ModelByID(modelID)
	if err != nil {
		t.Fatal(err)
	}
	local, err := baseline.NewDroidFuzz(device.New(model), relation.New(), crash.NewDedup(), engine.Config{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	local.Run(iters)

	// Remote twin: an identical device probed identically, served over a
	// net.Pipe transport; the host engine learns the target and seeds
	// exclusively from the handshake.
	dev := device.New(model)
	target, err := dsl.NewTarget(dev.SyscallDescs()...)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := probe.Run(dev, probe.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if target, err = target.Extend(pr.Interfaces...); err != nil {
		t.Fatal(err)
	}
	seedTexts := make([]string, len(pr.Seeds))
	for i, p := range pr.Seeds {
		seedTexts[i] = p.String()
	}
	srv := &adb.Server{X: adb.NewBroker(dev, target), Seeds: seedTexts}
	host, devSide := net.Pipe()
	go srv.Serve(devSide)
	defer host.Close()

	conn := adb.Dial(host)
	rep, err := conn.Handshake()
	if err != nil {
		t.Fatal(err)
	}
	seeds := make([]*dsl.Prog, len(rep.Seeds))
	for i, text := range rep.Seeds {
		if seeds[i], err = dsl.ParseProg(conn.Target(), text); err != nil {
			t.Fatalf("handshake seed %d: %v", i, err)
		}
	}
	remote := engine.New(conn, relation.New(), crash.NewDedup(), engine.Config{Seed: seed})
	remote.SeedCorpus(seeds)
	remote.Run(iters)

	if ls, rs := local.Stats(), remote.Stats(); ls != rs {
		t.Errorf("remote campaign diverged from in-process:\n local  %+v\n remote %+v", ls, rs)
	}
	if lt, rt := dedupTitles(local.Dedup()), dedupTitles(remote.Dedup()); !equalStrings(lt, rt) {
		t.Errorf("crash titles diverged:\n local  %v\n remote %v", lt, rt)
	}
}

func dedupTitles(d *crash.Dedup) []string {
	var out []string
	for _, r := range d.Records() {
		out = append(out, r.Title)
	}
	sort.Strings(out)
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSerialRunReplaysItself runs the same serial campaign twice in one
// process and asserts bit-identical stats — the within-binary half of the
// determinism contract (the golden test covers the across-rewrite half).
func TestSerialRunReplaysItself(t *testing.T) {
	run := func() map[string]engine.Stats {
		d := New()
		for _, id := range []string{"A2", "C1"} {
			if err := d.AddDevice(id, engine.Config{Seed: 77}); err != nil {
				t.Fatal(err)
			}
		}
		d.Run(250, false)
		return d.Stats()
	}
	a, b := run(), run()
	for id, st := range a {
		if st != b[id] {
			t.Fatalf("%s: serial replay diverged:\n run1 %+v\n run2 %+v", id, st, b[id])
		}
	}
}
