package daemon

import (
	"io"
	"testing"
	"time"

	"droidfuzz/internal/engine"
)

// TestFleetSharedStateRace runs four engines in parallel over the shared
// graph/dedup state while readers hammer snapshots, walks and status
// writes. It asserts nothing beyond completion and invariants — its job is
// to put every shared structure under concurrent load for `go test -race`
// (the CI race-repeats list runs this package).
func TestFleetSharedStateRace(t *testing.T) {
	d := New()
	for i, id := range []string{"A1", "A2", "B", "C1"} {
		if err := d.AddDevice(id, engine.Config{Seed: int64(900 + i)}); err != nil {
			t.Fatal(err)
		}
	}
	d.SetMaxWorkers(4)

	stop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			// Status path: stats + records + graph counters.
			if err := d.WriteStatus(io.Discard); err != nil {
				t.Errorf("WriteStatus: %v", err)
				return
			}
			// Generation path: lock-free snapshot reads.
			_ = d.Graph().Snapshot().Len()
			_ = d.Dedup().Len()
		}
	}()

	d.Run(150, true)
	close(stop)
	<-readerDone

	if err := d.Graph().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for id, st := range d.Stats() {
		if st.Execs == 0 {
			t.Errorf("engine %s made no progress", id)
		}
	}
}

// TestWriteStatusDuringParallelCampaignDoesNotBlock: every status write
// issued while a parallel campaign is running must complete promptly —
// the status path snapshots atomics and striped state instead of waiting
// for the campaign's locks.
func TestWriteStatusDuringParallelCampaignDoesNotBlock(t *testing.T) {
	d := New()
	for i, id := range []string{"A1", "B"} {
		if err := d.AddDevice(id, engine.Config{Seed: int64(40 + i)}); err != nil {
			t.Fatal(err)
		}
	}
	d.SetMaxWorkers(2)

	done := make(chan struct{})
	go func() {
		d.Run(400, true)
		close(done)
	}()

	const statusBudget = 2 * time.Second // generous; a blocked write waits for the whole campaign
	calls := 0
	for {
		select {
		case <-done:
			if calls == 0 {
				t.Fatal("campaign finished before any status write was attempted")
			}
			return
		default:
		}
		start := time.Now()
		if err := d.WriteStatus(io.Discard); err != nil {
			t.Fatalf("WriteStatus: %v", err)
		}
		if took := time.Since(start); took > statusBudget {
			t.Fatalf("WriteStatus blocked for %v during a parallel campaign", took)
		}
		calls++
	}
}
