package daemon

import (
	"net"
	"testing"
	"time"

	"droidfuzz/internal/adb"
	"droidfuzz/internal/device"
	"droidfuzz/internal/dsl"
	"droidfuzz/internal/engine"
)

// serveBrokerTCP boots a device, serves its broker on loopback, and
// returns the address plus the listener for mid-campaign teardown.
func serveBrokerTCP(t *testing.T, modelID string) (string, net.Listener) {
	t.Helper()
	model, err := device.ModelByID(modelID)
	if err != nil {
		t.Fatal(err)
	}
	dev := device.New(model)
	target, err := dsl.NewTarget(dev.SyscallDescs()...)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go adb.ServeTCP(ln, adb.NewBroker(dev, target))
	t.Cleanup(func() { ln.Close() })
	return ln.Addr().String(), ln
}

func fastResilient(t *testing.T, addr string) *adb.Resilient {
	t.Helper()
	r, err := adb.DialResilient(addr, adb.ResilientOptions{
		DialTimeout: time.Second,
		CallTimeout: 2 * time.Second,
		MaxAttempts: 1,
		BackoffBase: 5 * time.Millisecond,
		BackoffMax:  50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestFleetSurvivesDeadRemoteBroker wires two remote engines through
// AttachExecutor and kills one broker: the orphaned engine must degrade
// into ExecErrors while the fleet — including the healthy engine — runs
// its full campaign.
func TestFleetSurvivesDeadRemoteBroker(t *testing.T) {
	addrA, _ := serveBrokerTCP(t, "A1")
	addrB, lnB := serveBrokerTCP(t, "B")

	d := New()
	rA := fastResilient(t, addrA)
	rB := fastResilient(t, addrB)
	if err := d.AttachExecutor("A1", rA, nil, engine.Config{Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if err := d.AttachExecutor("B", rB, nil, engine.Config{Seed: 2}); err != nil {
		t.Fatal(err)
	}

	// First slice: both brokers alive.
	d.Run(30, true)
	st := d.Stats()
	if st["A1"].ExecErrors != 0 || st["B"].ExecErrors != 0 {
		t.Fatalf("healthy fleet reported errors: %+v", st)
	}

	// Kill broker B between campaign slices: listener down, live stream
	// severed. The fleet's second slice must still complete.
	lnB.Close()
	rB.Close()
	d.Run(50, true)

	st = d.Stats()
	if got := st["A1"]; got.Execs < 80 || got.ExecErrors != 0 {
		t.Fatalf("healthy engine disturbed by dead peer: %+v", got)
	}
	b := st["B"]
	if b.Execs < 80 {
		t.Fatalf("orphaned engine stalled instead of degrading: %+v", b)
	}
	if b.ExecErrors == 0 {
		t.Fatalf("dead broker produced no ExecErrors: %+v", b)
	}

	// The daemon's status feed aggregates the degradation fleet-wide.
	var total uint64
	for _, s := range st {
		total += s.ExecErrors
	}
	if total != b.ExecErrors {
		t.Fatalf("fleet error aggregation wrong: total %d, engine %d", total, b.ExecErrors)
	}
}

// TestAttachExecutorRejectsUnboundAndDuplicate covers the attach guard
// rails: an executor with no handshake-bound target and a duplicate id.
func TestAttachExecutorRejectsUnboundAndDuplicate(t *testing.T) {
	addr, _ := serveBrokerTCP(t, "A1")
	d := New()
	// A raw Conn without a handshake has no target.
	conn, err := adb.DialTCP(addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.AttachExecutor("X", conn, nil, engine.Config{Seed: 1}); err == nil {
		t.Fatal("unbound executor attached")
	}
	r := fastResilient(t, addr)
	if err := d.AttachExecutor("A1", r, nil, engine.Config{Seed: 1}); err != nil {
		t.Fatal(err)
	}
	r2 := fastResilient(t, addr)
	if err := d.AttachExecutor("A1", r2, nil, engine.Config{Seed: 2}); err == nil {
		t.Fatal("duplicate id attached")
	}
}
