package daemon

import (
	"net"
	"testing"
	"time"

	"droidfuzz/internal/adb"
	"droidfuzz/internal/device"
	"droidfuzz/internal/dsl"
	"droidfuzz/internal/engine"
	"droidfuzz/internal/feedback"
)

// serveBrokerTCP boots a device, serves its broker on loopback, and
// returns the address plus the listener for mid-campaign teardown.
func serveBrokerTCP(t *testing.T, modelID string) (string, net.Listener) {
	t.Helper()
	model, err := device.ModelByID(modelID)
	if err != nil {
		t.Fatal(err)
	}
	dev := device.New(model)
	target, err := dsl.NewTarget(dev.SyscallDescs()...)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go adb.ServeTCP(ln, adb.NewBroker(dev, target))
	t.Cleanup(func() { ln.Close() })
	return ln.Addr().String(), ln
}

func fastResilient(t *testing.T, addr string) *adb.Resilient {
	t.Helper()
	r, err := adb.DialResilient(addr, adb.ResilientOptions{
		DialTimeout: time.Second,
		CallTimeout: 2 * time.Second,
		MaxAttempts: 1,
		BackoffBase: 5 * time.Millisecond,
		BackoffMax:  50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestFleetSurvivesDeadRemoteBroker wires two remote engines through
// AttachExecutor and kills one broker: the orphaned engine must degrade
// into ExecErrors while the fleet — including the healthy engine — runs
// its full campaign.
func TestFleetSurvivesDeadRemoteBroker(t *testing.T) {
	addrA, _ := serveBrokerTCP(t, "A1")
	addrB, lnB := serveBrokerTCP(t, "B")

	d := New()
	rA := fastResilient(t, addrA)
	rB := fastResilient(t, addrB)
	if err := d.AttachExecutor("A1", rA, nil, engine.Config{Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if err := d.AttachExecutor("B", rB, nil, engine.Config{Seed: 2}); err != nil {
		t.Fatal(err)
	}

	// First slice: both brokers alive.
	d.Run(30, true)
	st := d.Stats()
	if st["A1"].ExecErrors != 0 || st["B"].ExecErrors != 0 {
		t.Fatalf("healthy fleet reported errors: %+v", st)
	}

	// Kill broker B between campaign slices: listener down, live stream
	// severed. The fleet's second slice must still complete.
	lnB.Close()
	rB.Close()
	d.Run(50, true)

	st = d.Stats()
	if got := st["A1"]; got.Execs < 80 || got.ExecErrors != 0 {
		t.Fatalf("healthy engine disturbed by dead peer: %+v", got)
	}
	b := st["B"]
	if b.Execs < 80 {
		t.Fatalf("orphaned engine stalled instead of degrading: %+v", b)
	}
	if b.ExecErrors == 0 {
		t.Fatalf("dead broker produced no ExecErrors: %+v", b)
	}

	// The daemon's status feed aggregates the degradation fleet-wide.
	var total uint64
	for _, s := range st {
		total += s.ExecErrors
	}
	if total != b.ExecErrors {
		t.Fatalf("fleet error aggregation wrong: total %d, engine %d", total, b.ExecErrors)
	}
}

// TestAttachExecutorRejectsUnboundAndDuplicate covers the attach guard
// rails: an executor with no handshake-bound target and a duplicate id.
func TestAttachExecutorRejectsUnboundAndDuplicate(t *testing.T) {
	addr, _ := serveBrokerTCP(t, "A1")
	d := New()
	// A raw Conn without a handshake has no target.
	conn, err := adb.DialTCP(addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.AttachExecutor("X", conn, nil, engine.Config{Seed: 1}); err == nil {
		t.Fatal("unbound executor attached")
	}
	r := fastResilient(t, addr)
	if err := d.AttachExecutor("A1", r, nil, engine.Config{Seed: 1}); err != nil {
		t.Fatal(err)
	}
	r2 := fastResilient(t, addr)
	if err := d.AttachExecutor("A1", r2, nil, engine.Config{Seed: 2}); err == nil {
		t.Fatal("duplicate id attached")
	}
}

// TestBatchedRemoteCampaignSavesUplinkBytes runs a windowed, batched
// remote campaign end to end: a broker served with a per-connection uplink
// filter, a resilient client with a bounded in-flight window, and a daemon
// driving the engine in batched pipelined mode. Most executions past warmup
// carry no new signal, so the summary uplink must elide traces and the wire
// accounting must show real byte savings over the flat encoding.
func TestBatchedRemoteCampaignSavesUplinkBytes(t *testing.T) {
	model, err := device.ModelByID("A1")
	if err != nil {
		t.Fatal(err)
	}
	dev := device.New(model)
	target, err := dsl.NewTarget(dev.SyscallDescs()...)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	srv := &adb.Server{X: adb.NewBroker(dev, target)}
	srv.NewFilter = func() adb.UplinkFilter { return feedback.NewUplinkFilter(target) }
	go srv.ServeTCP(ln)

	r, err := adb.DialResilient(ln.Addr().String(), adb.ResilientOptions{
		DialTimeout: time.Second,
		CallTimeout: 5 * time.Second,
		MaxAttempts: 1,
		Window:      4,
		BatchFrame:  8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	d := New()
	if err := d.AttachExecutor("A1", r, nil, engine.Config{Seed: 3}); err != nil {
		t.Fatal(err)
	}
	d.SetPipelineDepth(4)
	d.SetBatchSize(16)
	d.Run(400, true)

	st := d.Stats()["A1"]
	if st.Execs < 400 {
		t.Fatalf("execs = %d, want >= 400", st.Execs)
	}
	if st.ExecErrors != 0 {
		t.Fatalf("batched campaign produced exec errors: %+v", st)
	}
	if st.KernelCov == 0 || st.CorpusSize == 0 {
		t.Fatalf("batched remote campaign made no progress: %+v", st)
	}

	w := r.WireStats()
	if w.Execs == 0 {
		t.Fatal("no batched executions crossed the wire (batch mode not engaged)")
	}
	if w.Elided == 0 {
		t.Fatalf("summary uplink elided nothing over %d execs: %+v", w.Execs, w)
	}
	if w.Saved() == 0 || w.CovWireBytes >= w.CovRawBytes {
		t.Fatalf("uplink shipped no fewer bytes than flat encoding: %+v", w)
	}
}
