package device

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"droidfuzz/internal/binder"
	"droidfuzz/internal/drivers"
	"droidfuzz/internal/ebpf"
	"droidfuzz/internal/hal"
	"droidfuzz/internal/kasan"
	"droidfuzz/internal/snap"
	"droidfuzz/internal/vkernel"
)

// Portable checkpoints. A Checkpoint is the gob-serialized, device-
// independent counterpart of a Snapshot: one exported blob per subsystem
// in the device's deterministic subsystem order. It can be re-materialized
// onto any booted device of the same model — locally via ImportCheckpoint
// or Clone, remotely via the adb Export/ImportCheckpoint RPCs — which is
// what makes fork-style corpus fan-out and remote cloning possible.
//
// Ownership rules: blobs are immutable once exported. Import never aliases
// blob memory into live state (each subsystem's Import converts the blob
// back to its checkpoint payload and runs the ordinary copying Restore),
// so one decoded Checkpoint may be imported into any number of twins.

// Checkpoint is the portable form of a device snapshot.
type Checkpoint struct {
	Model string
	Blobs []any
}

func init() {
	// Concrete blob types crossing the []any in Checkpoint. The rpc layer
	// never sees these — checkpoints travel pre-encoded as []byte.
	gob.Register(&vkernel.KernelExport{})
	gob.Register(&kasan.HeapExport{})
	gob.Register(&drivers.TCPCExport{})
	gob.Register(&drivers.HCIExport{})
	gob.Register(&drivers.V4L2Export{})
	gob.Register(&drivers.AudioExport{})
	gob.Register(&drivers.GPUExport{})
	gob.Register(&drivers.WLANExport{})
	gob.Register(&drivers.SensorExport{})
	gob.Register(&drivers.NFCExport{})
	gob.Register(&drivers.ThermalExport{})
	gob.Register(&drivers.TouchExport{})
	gob.Register(&drivers.KnobsExport{})
	gob.Register(&hal.ProcExport{})
	gob.Register(&binder.SMExport{})
}

// exportBlobs exports every subsystem in order.
func (d *Device) exportBlobs() []any {
	blobs := make([]any, len(d.subs))
	for i, sub := range d.subs {
		blobs[i] = sub.Export()
	}
	return blobs
}

// ExportCheckpoint serializes the device's current state into a portable
// checkpoint. The blob and the subsystem generations at export time are
// remembered so an immediate self-import (the lineage scheduler's
// post-prefix fork point) can skip the decode — see ImportCheckpoint.
func (d *Device) ExportCheckpoint() ([]byte, error) {
	ck := &Checkpoint{Model: d.Model.ID, Blobs: d.exportBlobs()}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(ck); err != nil {
		return nil, fmt.Errorf("device: encode checkpoint: %w", err)
	}
	data := buf.Bytes()
	d.exportBlob = data
	if d.exportGens = d.exportGens[:0]; cap(d.exportGens) < len(d.subs) {
		d.exportGens = make([]uint64, 0, len(d.subs))
	}
	for _, sub := range d.subs {
		d.exportGens = append(d.exportGens, sub.Gen())
	}
	return data, nil
}

// ImportCheckpoint re-materializes a checkpoint exported from a same-model
// device onto this one. The imported state also becomes the device's new
// reset point: a subsequent Restore winds back to it, which is exactly
// what a lineage wants when a mid-lineage crash must return to the
// post-prefix state rather than to boot.
//
// Two byte-identity fast paths keep the lineage scheduler's hot loop off
// the gob decoder (sanitize builds skip both so every import stays fully
// cross-verified):
//
//   - Re-importing a blob whose snapshot is still in the import cache is
//     a generation-checked restore against that snapshot — O(dirty), no
//     decode. Sound because generations are monotonic: a subsystem whose
//     generation still equals the one a snapshot recorded has exactly the
//     recorded state, no matter what was restored in between.
//   - Importing a blob the device itself just exported, with no subsystem
//     dirtied since, only needs the reset point moved: the live state
//     already equals the blob, so a snapshot recapture replaces the
//     decode-and-import entirely.
func (d *Device) ImportCheckpoint(data []byte) error {
	if !SanitizeEnabled {
		for i := range d.snapCache {
			c := d.snapCache[i]
			if c.snap == nil || !bytes.Equal(data, c.blob) {
				continue
			}
			prev := d.snap
			d.snap = c.snap
			if d.Restore() {
				d.snapPristine = false
				d.cacheSnap(c.blob, c.snap) // move to front
				return nil
			}
			d.snap = prev
		}
		if d.exportBlob != nil && bytes.Equal(data, d.exportBlob) && gensMatch(d.subs, d.exportGens) {
			d.snap = captureSnapshot(d.subs)
			d.snapPristine = false
			d.cacheSnap(data, d.snap)
			return nil
		}
	}
	var ck Checkpoint
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&ck); err != nil {
		return fmt.Errorf("device: decode checkpoint: %w", err)
	}
	if ck.Model != d.Model.ID {
		return fmt.Errorf("device: checkpoint is for model %s, this device is %s", ck.Model, d.Model.ID)
	}
	if len(ck.Blobs) != len(d.subs) {
		return fmt.Errorf("device: checkpoint has %d subsystems, device has %d", len(ck.Blobs), len(d.subs))
	}
	d.importBlobs(ck.Blobs)
	d.cacheSnap(data, d.snap)
	return nil
}

// snapCacheEntry pairs an imported checkpoint's exact bytes with the
// snapshot captured when it was materialized.
type snapCacheEntry struct {
	blob []byte
	snap *Snapshot
}

// cacheSnap records blob→snapshot most-recently-used; the two slots cover
// the lineage scheduler's alternation between a post-prefix and a pristine
// checkpoint.
func (d *Device) cacheSnap(blob []byte, s *Snapshot) {
	if d.snapCache[0].snap == s || (d.snapCache[0].snap != nil && bytes.Equal(d.snapCache[0].blob, blob)) {
		d.snapCache[0] = snapCacheEntry{blob: blob, snap: s}
		return
	}
	d.snapCache[1] = d.snapCache[0]
	d.snapCache[0] = snapCacheEntry{blob: blob, snap: s}
}

// gensMatch reports whether no subsystem's dirty generation moved since
// gens was recorded.
func gensMatch(subs []snap.Subsystem, gens []uint64) bool {
	if len(gens) != len(subs) {
		return false
	}
	for i, sub := range subs {
		if sub.Gen() != gens[i] {
			return false
		}
	}
	return true
}

// importBlobs applies one blob per subsystem and recaptures the snapshot
// so the imported state is what Restore winds back to.
func (d *Device) importBlobs(blobs []any) {
	for i, sub := range d.subs {
		sub.Import(blobs[i])
	}
	d.snap = captureSnapshot(d.subs)
	d.snapPristine = false
	verifyImport(d, blobs)
}

// Clone stamps out n twins of this device in its *current* state,
// amortizing boot and probe cost: the subsystem trees are constructed
// fresh (object identity never crosses devices) but the captured snapshot
// payloads are shared copy-on-write — they are immutable by the snapshot
// contract and identical across twins, so one deep copy serves the whole
// fan-out. Each twin gets its own eBPF hub; brokers attach probes and
// syscall gates per twin as usual.
func (d *Device) Clone(n int) []*Device {
	if n <= 0 {
		return nil
	}
	// A pristine source with nothing dirtied since boot is bit-identical to
	// a fresh boot of the same model (boot is deterministic, and every
	// state mutation bumps a subsystem generation), so twins are plain
	// boots — no export, no imports. This is the fleet-standup case: probe
	// once, clone the probed device N ways. Sanitize builds take the full
	// import path so every clone stays cross-verified.
	if !SanitizeEnabled && d.snapPristine && gensClean(d.snap) {
		twins := make([]*Device, n)
		twins[0] = New(d.Model)
		for i := 1; i < n; i++ {
			// Boot is deterministic, so twin 0's captured payloads describe
			// every sibling's pristine state; share them copy-on-write just
			// like the hot-clone path does.
			t := &Device{Model: d.Model, Hub: ebpf.NewHub()}
			t.bootTree()
			t.snap = rebindSnapshot(twins[0].snap, t.subs)
			t.snapPristine = true
			twins[i] = t
		}
		return twins
	}
	blobs := d.exportBlobs()
	twins := make([]*Device, n)
	var shared *Snapshot
	for i := range twins {
		t := &Device{Model: d.Model, Hub: ebpf.NewHub()}
		t.bootTree()
		for j, sub := range t.subs {
			sub.Import(blobs[j])
		}
		if i == 0 {
			shared = captureSnapshot(t.subs)
			t.snap = shared
		} else {
			// Twins imported identical blobs, so twin 0's captured
			// payloads describe every twin's state; only the subsystem
			// pointers and generation bookkeeping are per-twin.
			t.snap = rebindSnapshot(shared, t.subs)
		}
		t.snapPristine = false
		verifyImport(t, blobs)
		twins[i] = t
	}
	return twins
}

// gensClean reports whether no subsystem was dirtied since the snapshot
// was captured.
func gensClean(s *Snapshot) bool {
	if s == nil {
		return false
	}
	for i := range s.entries {
		e := &s.entries[i]
		if e.sub.Gen() != e.gen {
			return false
		}
	}
	return true
}

// rebindSnapshot builds a twin's snapshot from a sibling's captured
// payloads: shared immutable state, own subsystem pointers, own
// generations. The binder registry is the one subsystem whose payload
// carries device-local identity (registered services point into their own
// device), so it is re-checkpointed per twin instead of shared.
func rebindSnapshot(src *Snapshot, subs []snap.Subsystem) *Snapshot {
	s := &Snapshot{entries: make([]snapEntry, len(subs))}
	for i, sub := range subs {
		state := src.entries[i].state
		if _, local := sub.(*binder.ServiceManager); local {
			state = sub.Checkpoint()
		}
		s.entries[i] = snapEntry{sub: sub, state: state, gen: sub.Gen()}
	}
	return s
}
