package device

import (
	"bytes"
	"fmt"
	"testing"
)

// TestCloneTwinsMatchBootedDevices is the twin-clone equivalence property
// test: devices stamped out by Clone(n) must be observationally identical
// to independently booted devices of the same model — same syscall
// returns, errnos, binder statuses, and parameter surface for any
// pseudo-random operation sequence.
func TestCloneTwinsMatchBootedDevices(t *testing.T) {
	const twins = 3
	for _, model := range []string{"A1", "A2", "B", "E"} {
		for seed := int64(0); seed < 4; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", model, seed), func(t *testing.T) {
				m, err := ModelByID(model)
				if err != nil {
					t.Fatal(err)
				}
				src := New(m)
				cloned := src.Clone(twins)
				if len(cloned) != twins {
					t.Fatalf("Clone(%d) returned %d devices", twins, len(cloned))
				}
				for i, tw := range cloned {
					booted := New(m)
					diffTraces(t, fmt.Sprintf("twin %d vs booted", i),
						applyOps(tw, seed, 120), applyOps(booted, seed, 120))
				}
				// Cloning must not have perturbed the source.
				diffTraces(t, "source after clone",
					applyOps(src, seed, 120), applyOps(New(m), seed, 120))
			})
		}
	}
}

// TestCloneOfDirtiedSourceForksItsState covers the hot-device case Clone
// exists for: the source accumulates arbitrary state, and every twin must
// inherit exactly that state — equivalent to each other and to a fresh
// device that imported the source's checkpoint — then diverge
// independently once driven apart.
func TestCloneOfDirtiedSourceForksItsState(t *testing.T) {
	m, _ := ModelByID("A1")
	src := New(m)
	applyOps(src, 7, 150) // arbitrary accumulated device state

	cloned := src.Clone(2)
	imported := New(m)
	blob, err := src.ExportCheckpoint()
	if err != nil {
		t.Fatalf("export: %v", err)
	}
	if err := imported.ImportCheckpoint(blob); err != nil {
		t.Fatalf("import: %v", err)
	}

	t0 := applyOps(cloned[0], 21, 150)
	t1 := applyOps(cloned[1], 21, 150)
	t2 := applyOps(imported, 21, 150)
	diffTraces(t, "twin0 vs twin1", t0, t1)
	diffTraces(t, "twin0 vs imported", t0, t2)

	// A twin's Restore rewinds to the imported state (the fork point),
	// not to boot: after restoring, it replays like a freshly stamped
	// sibling, not like a pristine device.
	if !cloned[0].Restore() {
		t.Fatal("twin restore fell back to reboot")
	}
	diffTraces(t, "restored twin vs fresh sibling",
		applyOps(cloned[0], 33, 150), applyOps(src.Clone(1)[0], 33, 150))
}

// TestExportImportRoundTrip cross-verifies checkpoint portability at the
// blob level: importing an exported checkpoint and re-exporting must
// reproduce the source bytes exactly. (Sanitize builds additionally
// cross-check every subsystem blob by deep comparison inside the import
// itself — see verifyImport.)
func TestExportImportRoundTrip(t *testing.T) {
	m, _ := ModelByID("A2")
	src := New(m)
	applyOps(src, 11, 150)
	blob, err := src.ExportCheckpoint()
	if err != nil {
		t.Fatalf("export: %v", err)
	}
	dst := New(m)
	if err := dst.ImportCheckpoint(blob); err != nil {
		t.Fatalf("import: %v", err)
	}
	back, err := dst.ExportCheckpoint()
	if err != nil {
		t.Fatalf("re-export: %v", err)
	}
	if !bytes.Equal(blob, back) {
		t.Fatalf("round trip distorted the checkpoint: %d vs %d bytes", len(blob), len(back))
	}
}

// TestImportRejectsModelMismatch: a checkpoint is device-independent but
// not model-independent — importing onto a different model must fail
// loudly rather than stamp mismatched driver state.
func TestImportRejectsModelMismatch(t *testing.T) {
	a, _ := ModelByID("A1")
	b, _ := ModelByID("B")
	blob, err := New(a).ExportCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	if err := New(b).ImportCheckpoint(blob); err == nil {
		t.Fatal("import of A1 checkpoint into B succeeded")
	}
}

// TestCloneZeroAndNegative: degenerate fan-out counts return no twins.
func TestCloneZeroAndNegative(t *testing.T) {
	m, _ := ModelByID("E")
	d := New(m)
	if got := d.Clone(0); got != nil {
		t.Fatalf("Clone(0) = %v, want nil", got)
	}
	if got := d.Clone(-3); got != nil {
		t.Fatalf("Clone(-3) = %v, want nil", got)
	}
}

// TestRestoreRearmsDeathNotifications covers the fallout-matrix case the
// snapshot path used to miss: a death recipient linked at boot must fire
// once per alive→dead transition even when the recovery in between was a
// Restore (which revives the dead process in place) rather than the
// reboot fallback (which constructs new, armed processes).
func TestRestoreRearmsDeathNotifications(t *testing.T) {
	for _, reset := range []string{"restore", "reboot"} {
		t.Run(reset, func(t *testing.T) {
			m, _ := ModelByID("A1")
			d := New(m)
			c := newComposer(t, d)
			killGraphicsHAL(t, c)
			if got := d.HALDeaths(); got != 1 {
				t.Fatalf("HAL deaths after first kill = %d, want 1", got)
			}
			// A dead process must not double-fire while it stays dead.
			st := c.presentDisplay()
			if got := d.HALDeaths(); got != 1 {
				t.Fatalf("HAL deaths after poking dead HAL = %d (status %v), want 1", got, st)
			}
			if reset == "restore" {
				if !d.Restore() {
					t.Fatal("restore fell back")
				}
			} else {
				d.Reboot()
			}
			killGraphicsHAL(t, newComposer(t, d))
			if got := d.HALDeaths(); got != 2 {
				t.Fatalf("HAL deaths after kill-%s-kill = %d, want 2 (notification not re-armed)", reset, got)
			}
		})
	}
}
