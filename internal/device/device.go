// Package device assembles virtual embedded Android devices: a virtual
// kernel with the model's driver tree, the vendor HAL processes behind a
// Binder ServiceManager, the framework layer, and the eBPF hub — one
// package per physical device of Table I.
package device

import (
	"fmt"
	"strings"

	"droidfuzz/internal/binder"
	"droidfuzz/internal/bugs"
	"droidfuzz/internal/drivers"
	"droidfuzz/internal/dsl"
	"droidfuzz/internal/ebpf"
	"droidfuzz/internal/hal"
	"droidfuzz/internal/kcov"
	"droidfuzz/internal/vkernel"
)

// Driver family names used in model driver lists.
const (
	FamTCPC    = "tcpc"
	FamHCI     = "hci"
	FamL2CAP   = "l2cap"
	FamV4L2    = "v4l2"
	FamAudio   = "audio"
	FamGPU     = "gpu"
	FamWLAN    = "wlan"
	FamIIO     = "iio"
	FamNFC     = "nfc"
	FamThermal = "thermal"
	FamTouch   = "touch"
)

// Model describes one Table I device.
type Model struct {
	ID      string // "A1", "A2", "B", "C1", "C2", "D", "E"
	Name    string
	Vendor  string
	Arch    string
	AOSP    int
	Kernel  string
	Bugs    bugs.Set
	Drivers []string // driver family names
	HALs    []string // Binder descriptors
}

// Models returns the seven Table I device models with their injected
// Table II bug sets.
func Models() []Model {
	return []Model{
		{
			ID: "A1", Name: "Phone Dev Board", Vendor: "Xiaomi",
			Arch: "aarch64", AOSP: 15, Kernel: "6.6",
			Bugs: bugs.NewSet(bugs.TCPCProbe, bugs.GraphicsHALCrash,
				bugs.LockdepSubclass, bugs.TCPCVbus),
			Drivers: []string{FamTCPC, FamHCI, FamL2CAP, FamV4L2, FamAudio,
				FamGPU, FamWLAN, FamIIO, FamNFC, FamThermal, FamTouch},
			HALs: []string{hal.GraphicsDescriptor, hal.MediaDescriptor,
				hal.CameraDescriptor, hal.AudioDescriptor,
				hal.BluetoothDescriptor, hal.NFCDescriptor,
				hal.SensorsDescriptor, hal.USBDescriptor,
				hal.ThermalDescriptor, hal.InputDescriptor},
		},
		{
			ID: "A2", Name: "Tablet Dev Board", Vendor: "Xiaomi",
			Arch: "aarch64", AOSP: 15, Kernel: "6.6",
			Bugs: bugs.NewSet(bugs.AudioHang, bugs.MediaHALCrash, bugs.HCICodecs),
			Drivers: []string{FamTCPC, FamHCI, FamL2CAP, FamV4L2, FamAudio,
				FamGPU, FamWLAN, FamIIO, FamThermal, FamTouch},
			HALs: []string{hal.GraphicsDescriptor, hal.MediaDescriptor,
				hal.CameraDescriptor, hal.AudioDescriptor,
				hal.BluetoothDescriptor, hal.SensorsDescriptor,
				hal.USBDescriptor, hal.ThermalDescriptor,
				hal.InputDescriptor},
		},
		{
			ID: "B", Name: "Pi 5", Vendor: "Raspberry Pi",
			Arch: "aarch64", AOSP: 15, Kernel: "5.15",
			Bugs: bugs.NewSet(bugs.L2capDisconn),
			Drivers: []string{FamHCI, FamL2CAP, FamV4L2, FamAudio, FamGPU,
				FamWLAN, FamIIO, FamThermal},
			HALs: []string{hal.GraphicsDescriptor, hal.AudioDescriptor,
				hal.BluetoothDescriptor, hal.SensorsDescriptor,
				hal.ThermalDescriptor},
		},
		{
			ID: "C1", Name: "Commercial Tablet", Vendor: "Sunmi",
			Arch: "aarch64", AOSP: 13, Kernel: "5.15",
			Bugs: bugs.NewSet(bugs.CameraHALCrash),
			Drivers: []string{FamTCPC, FamHCI, FamL2CAP, FamV4L2, FamAudio,
				FamGPU, FamWLAN, FamIIO, FamNFC, FamThermal, FamTouch},
			HALs: []string{hal.GraphicsDescriptor, hal.CameraDescriptor,
				hal.AudioDescriptor, hal.BluetoothDescriptor,
				hal.NFCDescriptor, hal.SensorsDescriptor,
				hal.USBDescriptor, hal.ThermalDescriptor,
				hal.InputDescriptor},
		},
		{
			ID: "C2", Name: "Cashier Kiosk", Vendor: "Sunmi",
			Arch: "aarch64", AOSP: 13, Kernel: "5.15",
			Bugs: bugs.NewSet(bugs.RateInit),
			Drivers: []string{FamTCPC, FamHCI, FamL2CAP, FamV4L2, FamAudio,
				FamGPU, FamWLAN, FamIIO, FamNFC, FamThermal, FamTouch},
			HALs: []string{hal.GraphicsDescriptor, hal.MediaDescriptor,
				hal.AudioDescriptor, hal.BluetoothDescriptor,
				hal.NFCDescriptor, hal.SensorsDescriptor,
				hal.USBDescriptor, hal.ThermalDescriptor,
				hal.InputDescriptor},
		},
		{
			ID: "D", Name: "LubanCat 5", Vendor: "EmbedFire",
			Arch: "aarch64", AOSP: 13, Kernel: "5.10",
			Bugs: bugs.NewSet(bugs.BTAcceptUnlink),
			Drivers: []string{FamHCI, FamL2CAP, FamV4L2, FamAudio, FamGPU,
				FamWLAN, FamIIO, FamThermal, FamTouch},
			HALs: []string{hal.GraphicsDescriptor, hal.MediaDescriptor,
				hal.AudioDescriptor, hal.BluetoothDescriptor,
				hal.SensorsDescriptor, hal.ThermalDescriptor,
				hal.InputDescriptor},
		},
		{
			ID: "E", Name: "UP Core Plus", Vendor: "AAEON",
			Arch: "amd64", AOSP: 13, Kernel: "5.10",
			Bugs: bugs.NewSet(bugs.V4LQuerycap),
			Drivers: []string{FamTCPC, FamHCI, FamL2CAP, FamV4L2, FamAudio,
				FamGPU, FamWLAN, FamIIO, FamThermal, FamTouch},
			HALs: []string{hal.GraphicsDescriptor, hal.MediaDescriptor,
				hal.CameraDescriptor, hal.AudioDescriptor,
				hal.BluetoothDescriptor, hal.SensorsDescriptor,
				hal.USBDescriptor, hal.ThermalDescriptor,
				hal.InputDescriptor},
		},
	}
}

// ModelByID returns the Table I model with the given ID.
func ModelByID(id string) (Model, error) {
	for _, m := range Models() {
		if m.ID == id {
			return m, nil
		}
	}
	return Model{}, fmt.Errorf("device: unknown model %q (valid: %s)",
		id, strings.Join(IDs(), ", "))
}

// IDs returns the Table I model IDs in listing order, for flag validation
// and error messages.
func IDs() []string {
	models := Models()
	out := make([]string, len(models))
	for i, m := range models {
		out[i] = m.ID
	}
	return out
}

// Device is one booted virtual device.
type Device struct {
	Model Model
	K     *vkernel.Kernel
	Hub   *ebpf.Hub
	SM    *binder.ServiceManager
	Procs []*hal.Process
	FW    *hal.Framework

	reboots int
}

// HAL process PIDs start here; the native executor uses NativePID.
const (
	halPIDBase = 1000
	// NativePID is the process id the native executor issues syscalls as.
	NativePID = 4242
)

// New boots a device for the model.
func New(m Model) *Device {
	d := &Device{Model: m, Hub: ebpf.NewHub()}
	d.boot()
	return d
}

func (d *Device) boot() {
	k := vkernel.New()
	for _, fam := range d.Model.Drivers {
		switch fam {
		case FamTCPC:
			k.RegisterDevice(drivers.PathTCPC, drivers.NewTCPC(d.Model.Bugs))
		case FamHCI:
			k.RegisterDevice(drivers.PathHCI, drivers.NewHCI(d.Model.Bugs))
		case FamL2CAP:
			k.RegisterDevice(drivers.PathL2CAP, drivers.NewL2CAP(d.Model.Bugs))
		case FamV4L2:
			k.RegisterDevice(drivers.PathVideo, drivers.NewV4L2(d.Model.Bugs))
		case FamAudio:
			k.RegisterDevice(drivers.PathPCM, drivers.NewAudio(d.Model.Bugs))
		case FamGPU:
			k.RegisterDevice(drivers.PathGPU, drivers.NewGPU(d.Model.Bugs))
		case FamWLAN:
			k.RegisterDevice(drivers.PathWLAN, drivers.NewWLAN(d.Model.Bugs))
		case FamIIO:
			k.RegisterDevice(drivers.PathIIO, drivers.NewSensor(d.Model.Bugs))
		case FamNFC:
			k.RegisterDevice(drivers.PathNFC, drivers.NewNFC(d.Model.Bugs))
		case FamThermal:
			k.RegisterDevice(drivers.PathThermal, drivers.NewThermal(d.Model.Bugs))
		case FamTouch:
			k.RegisterDevice(drivers.PathTouch, drivers.NewTouch(d.Model.Bugs))
		default:
			panic(fmt.Sprintf("device: unknown driver family %q", fam))
		}
	}
	d.Hub.Install(k)
	d.K = k

	sm := binder.NewServiceManager()
	d.Procs = nil
	for i, desc := range d.Model.HALs {
		pid := halPIDBase + i
		sys := &hal.Sys{K: k, PID: pid}
		var svc interface {
			binder.Service
			Label() string
		}
		switch desc {
		case hal.GraphicsDescriptor:
			svc = hal.NewGraphics(sys, d.Model.Bugs)
		case hal.MediaDescriptor:
			svc = hal.NewMedia(sys, d.Model.Bugs)
		case hal.CameraDescriptor:
			svc = hal.NewCamera(sys, d.Model.Bugs)
		case hal.AudioDescriptor:
			svc = hal.NewAudio(sys, d.Model.Bugs)
		case hal.BluetoothDescriptor:
			svc = hal.NewBluetooth(sys, d.Model.Bugs)
		case hal.NFCDescriptor:
			svc = hal.NewNFC(sys, d.Model.Bugs)
		case hal.SensorsDescriptor:
			svc = hal.NewSensors(sys, d.Model.Bugs)
		case hal.USBDescriptor:
			svc = hal.NewUSB(sys, d.Model.Bugs)
		case hal.ThermalDescriptor:
			svc = hal.NewThermal(sys, d.Model.Bugs)
		case hal.InputDescriptor:
			svc = hal.NewInput(sys, d.Model.Bugs)
		default:
			panic(fmt.Sprintf("device: unknown HAL %q", desc))
		}
		proc := hal.NewProcess(pid, svc, svc.Label())
		d.Procs = append(d.Procs, proc)
		sm.Register(proc)
	}
	d.SM = sm
	d.FW = hal.NewFramework(sm)
}

// Reboot tears the device down and boots fresh kernel and HAL state, as the
// harness does after any crash (paper §V-A). Attached eBPF probes survive:
// the hub is reinstalled on the new kernel.
func (d *Device) Reboot() {
	d.reboots++
	d.boot()
}

// Reboots reports how many times the device rebooted.
func (d *Device) Reboots() int { return d.reboots }

// Healthy reports whether the kernel is not wedged and every HAL process is
// alive.
func (d *Device) Healthy() bool {
	if d.K.Wedged() {
		return false
	}
	for _, p := range d.Procs {
		if p.Dead() {
			return false
		}
	}
	return true
}

// TakeHALCrashes drains native-crash records from all HAL processes.
func (d *Device) TakeHALCrashes() []hal.Crash {
	var out []hal.Crash
	for _, p := range d.Procs {
		out = append(out, p.TakeCrashes()...)
	}
	return out
}

// SyscallDescs returns the static DSL descriptions for the device's driver
// families — what the fuzzer knows before probing.
func (d *Device) SyscallDescs() []*dsl.CallDesc {
	var out []*dsl.CallDesc
	for _, fam := range d.Model.Drivers {
		switch fam {
		case FamTCPC:
			out = append(out, drivers.TCPCDescs()...)
		case FamHCI:
			out = append(out, drivers.HCIDescs()...)
		case FamL2CAP:
			out = append(out, drivers.L2CAPDescs()...)
		case FamV4L2:
			out = append(out, drivers.V4L2Descs()...)
		case FamAudio:
			out = append(out, drivers.AudioDescs()...)
		case FamGPU:
			out = append(out, drivers.GPUDescs()...)
		case FamWLAN:
			out = append(out, drivers.WLANDescs()...)
		case FamIIO:
			out = append(out, drivers.SensorDescs()...)
		case FamNFC:
			out = append(out, drivers.NFCDescs()...)
		case FamThermal:
			out = append(out, drivers.ThermalDescs()...)
		case FamTouch:
			out = append(out, drivers.TouchDescs()...)
		}
	}
	return out
}

// PCIndex maps every plausible cover-point PC of the device's driver
// modules back to its module name, for per-driver coverage accounting
// (paper §V-C: per-driver coverage increased 17% on average). Site ids are
// enumerated up to maxSite per module.
func (d *Device) PCIndex(maxSite uint32) map[uint32]string {
	idx := make(map[uint32]string)
	for _, fam := range d.Model.Drivers {
		for site := uint32(0); site < maxSite; site++ {
			idx[kcov.PC(fam, site)] = fam
		}
	}
	return idx
}
