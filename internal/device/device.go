// Package device assembles virtual embedded Android devices: a virtual
// kernel with the model's driver tree, the vendor HAL processes behind a
// Binder ServiceManager, the framework layer, and the eBPF hub — one
// package per physical device of Table I.
package device

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"droidfuzz/internal/binder"
	"droidfuzz/internal/bugs"
	"droidfuzz/internal/drivers"
	"droidfuzz/internal/dsl"
	"droidfuzz/internal/ebpf"
	"droidfuzz/internal/hal"
	"droidfuzz/internal/kcov"
	"droidfuzz/internal/snap"
	"droidfuzz/internal/vkernel"
)

// Driver family names used in model driver lists.
const (
	FamTCPC    = "tcpc"
	FamHCI     = "hci"
	FamL2CAP   = "l2cap"
	FamV4L2    = "v4l2"
	FamAudio   = "audio"
	FamGPU     = "gpu"
	FamWLAN    = "wlan"
	FamIIO     = "iio"
	FamNFC     = "nfc"
	FamThermal = "thermal"
	FamTouch   = "touch"
)

// Model describes one Table I device.
type Model struct {
	ID      string // "A1", "A2", "B", "C1", "C2", "D", "E"
	Name    string
	Vendor  string
	Arch    string
	AOSP    int
	Kernel  string
	Bugs    bugs.Set
	Drivers []string // driver family names
	HALs    []string // Binder descriptors
}

// The model table is built once at init; Models/IDs/ModelByID hand out the
// precomputed entries instead of reallocating seven model structs (plus bug
// sets and driver lists) per lookup. Model contents are read-only by
// convention: every Device shares the table's Bugs/Drivers/HALs values.
var (
	modelTable = buildModels()
	modelIDs   = func() []string {
		out := make([]string, len(modelTable))
		for i, m := range modelTable {
			out[i] = m.ID
		}
		return out
	}()
	modelIndex = func() map[string]int {
		idx := make(map[string]int, len(modelTable))
		for i, m := range modelTable {
			idx[m.ID] = i
		}
		return idx
	}()
)

// Models returns the seven Table I device models with their injected
// Table II bug sets.
func Models() []Model {
	out := make([]Model, len(modelTable))
	copy(out, modelTable)
	return out
}

func buildModels() []Model {
	return []Model{
		{
			ID: "A1", Name: "Phone Dev Board", Vendor: "Xiaomi",
			Arch: "aarch64", AOSP: 15, Kernel: "6.6",
			Bugs: bugs.NewSet(bugs.TCPCProbe, bugs.GraphicsHALCrash,
				bugs.LockdepSubclass, bugs.TCPCVbus, bugs.TCPCContractOVP),
			Drivers: []string{FamTCPC, FamHCI, FamL2CAP, FamV4L2, FamAudio,
				FamGPU, FamWLAN, FamIIO, FamNFC, FamThermal, FamTouch},
			HALs: []string{hal.GraphicsDescriptor, hal.MediaDescriptor,
				hal.CameraDescriptor, hal.AudioDescriptor,
				hal.BluetoothDescriptor, hal.NFCDescriptor,
				hal.SensorsDescriptor, hal.USBDescriptor,
				hal.ThermalDescriptor, hal.InputDescriptor},
		},
		{
			ID: "A2", Name: "Tablet Dev Board", Vendor: "Xiaomi",
			Arch: "aarch64", AOSP: 15, Kernel: "6.6",
			Bugs: bugs.NewSet(bugs.AudioHang, bugs.MediaHALCrash, bugs.HCICodecs),
			Drivers: []string{FamTCPC, FamHCI, FamL2CAP, FamV4L2, FamAudio,
				FamGPU, FamWLAN, FamIIO, FamThermal, FamTouch},
			HALs: []string{hal.GraphicsDescriptor, hal.MediaDescriptor,
				hal.CameraDescriptor, hal.AudioDescriptor,
				hal.BluetoothDescriptor, hal.SensorsDescriptor,
				hal.USBDescriptor, hal.ThermalDescriptor,
				hal.InputDescriptor},
		},
		{
			ID: "B", Name: "Pi 5", Vendor: "Raspberry Pi",
			Arch: "aarch64", AOSP: 15, Kernel: "5.15",
			Bugs: bugs.NewSet(bugs.L2capDisconn),
			Drivers: []string{FamHCI, FamL2CAP, FamV4L2, FamAudio, FamGPU,
				FamWLAN, FamIIO, FamThermal},
			HALs: []string{hal.GraphicsDescriptor, hal.AudioDescriptor,
				hal.BluetoothDescriptor, hal.SensorsDescriptor,
				hal.ThermalDescriptor},
		},
		{
			ID: "C1", Name: "Commercial Tablet", Vendor: "Sunmi",
			Arch: "aarch64", AOSP: 13, Kernel: "5.15",
			Bugs: bugs.NewSet(bugs.CameraHALCrash),
			Drivers: []string{FamTCPC, FamHCI, FamL2CAP, FamV4L2, FamAudio,
				FamGPU, FamWLAN, FamIIO, FamNFC, FamThermal, FamTouch},
			HALs: []string{hal.GraphicsDescriptor, hal.CameraDescriptor,
				hal.AudioDescriptor, hal.BluetoothDescriptor,
				hal.NFCDescriptor, hal.SensorsDescriptor,
				hal.USBDescriptor, hal.ThermalDescriptor,
				hal.InputDescriptor},
		},
		{
			ID: "C2", Name: "Cashier Kiosk", Vendor: "Sunmi",
			Arch: "aarch64", AOSP: 13, Kernel: "5.15",
			Bugs: bugs.NewSet(bugs.RateInit),
			Drivers: []string{FamTCPC, FamHCI, FamL2CAP, FamV4L2, FamAudio,
				FamGPU, FamWLAN, FamIIO, FamNFC, FamThermal, FamTouch},
			HALs: []string{hal.GraphicsDescriptor, hal.MediaDescriptor,
				hal.AudioDescriptor, hal.BluetoothDescriptor,
				hal.NFCDescriptor, hal.SensorsDescriptor,
				hal.USBDescriptor, hal.ThermalDescriptor,
				hal.InputDescriptor},
		},
		{
			ID: "D", Name: "LubanCat 5", Vendor: "EmbedFire",
			Arch: "aarch64", AOSP: 13, Kernel: "5.10",
			Bugs: bugs.NewSet(bugs.BTAcceptUnlink),
			Drivers: []string{FamHCI, FamL2CAP, FamV4L2, FamAudio, FamGPU,
				FamWLAN, FamIIO, FamThermal, FamTouch},
			HALs: []string{hal.GraphicsDescriptor, hal.MediaDescriptor,
				hal.AudioDescriptor, hal.BluetoothDescriptor,
				hal.SensorsDescriptor, hal.ThermalDescriptor,
				hal.InputDescriptor},
		},
		{
			ID: "E", Name: "UP Core Plus", Vendor: "AAEON",
			Arch: "amd64", AOSP: 13, Kernel: "5.10",
			Bugs: bugs.NewSet(bugs.V4LQuerycap),
			Drivers: []string{FamTCPC, FamHCI, FamL2CAP, FamV4L2, FamAudio,
				FamGPU, FamWLAN, FamIIO, FamThermal, FamTouch},
			HALs: []string{hal.GraphicsDescriptor, hal.MediaDescriptor,
				hal.CameraDescriptor, hal.AudioDescriptor,
				hal.BluetoothDescriptor, hal.SensorsDescriptor,
				hal.USBDescriptor, hal.ThermalDescriptor,
				hal.InputDescriptor},
		},
	}
}

// ModelByID returns the Table I model with the given ID.
func ModelByID(id string) (Model, error) {
	if i, ok := modelIndex[id]; ok {
		return modelTable[i], nil
	}
	return Model{}, fmt.Errorf("device: unknown model %q (valid: %s)",
		id, strings.Join(IDs(), ", "))
}

// IDs returns the Table I model IDs in listing order, for flag validation
// and error messages.
func IDs() []string {
	out := make([]string, len(modelIDs))
	copy(out, modelIDs)
	return out
}

// Device is one booted virtual device.
type Device struct {
	Model Model
	K     *vkernel.Kernel
	Hub   *ebpf.Hub
	SM    *binder.ServiceManager
	Procs []*hal.Process
	FW    *hal.Framework

	// subs lists every snapshot-capable subsystem in deterministic order;
	// snap holds the checkpoint Restore winds back to: the post-boot state
	// after boot/Reboot, or the imported state after ImportCheckpoint.
	// snapPristine records which of the two it is (the sanitize build only
	// cross-checks restores against a fresh boot when it is the former).
	subs         []snap.Subsystem
	snap         *Snapshot
	snapPristine bool

	// Byte-identity bookkeeping for the ImportCheckpoint fast paths:
	// snapCache holds the snapshots captured by the most recent imports,
	// keyed by the exact blob bytes, so re-importing one of them (the
	// lineage scheduler alternates between a post-prefix and a pristine
	// blob) rewinds by generation-checked restore instead of a gob decode.
	// exportBlob/exportGens record the last ExportCheckpoint and the
	// subsystem generations at that moment. All cleared on boot — they
	// refer to the previous subsystem tree.
	snapCache  [2]snapCacheEntry
	exportBlob []byte
	exportGens []uint64

	// knobSets is the live runtime-parameter state per driver family, in
	// model driver-list order.
	knobSets []*drivers.Knobs

	// Counters are atomics: the broker reads them for Info/Stats while
	// another goroutine may be resetting the device.
	reboots   atomic.Int64
	restores  atomic.Int64
	halDeaths atomic.Int64
}

// HAL process PIDs start here; the native executor uses NativePID.
const (
	halPIDBase = 1000
	// NativePID is the process id the native executor issues syscalls as.
	NativePID = 4242
)

// New boots a device for the model.
func New(m Model) *Device {
	d := &Device{Model: m, Hub: ebpf.NewHub()}
	d.boot()
	return d
}

// deviceDriver is what every registered driver family implements: the
// kernel-facing driver surface, checkpoint/restore, and the family's
// runtime-parameter state.
type deviceDriver interface {
	vkernel.Driver
	snap.Subsystem
	Knobs() *drivers.Knobs
}

// newDriver constructs the driver for a family and returns its /dev path.
func newDriver(fam string, b bugs.Set) (string, deviceDriver) {
	switch fam {
	case FamTCPC:
		return drivers.PathTCPC, drivers.NewTCPC(b)
	case FamHCI:
		return drivers.PathHCI, drivers.NewHCI(b)
	case FamL2CAP:
		return drivers.PathL2CAP, drivers.NewL2CAP(b)
	case FamV4L2:
		return drivers.PathVideo, drivers.NewV4L2(b)
	case FamAudio:
		return drivers.PathPCM, drivers.NewAudio(b)
	case FamGPU:
		return drivers.PathGPU, drivers.NewGPU(b)
	case FamWLAN:
		return drivers.PathWLAN, drivers.NewWLAN(b)
	case FamIIO:
		return drivers.PathIIO, drivers.NewSensor(b)
	case FamNFC:
		return drivers.PathNFC, drivers.NewNFC(b)
	case FamThermal:
		return drivers.PathThermal, drivers.NewThermal(b)
	case FamTouch:
		return drivers.PathTouch, drivers.NewTouch(b)
	default:
		panic(fmt.Sprintf("device: unknown driver family %q", fam))
	}
}

// halService is the constructor surface device boot needs from a HAL.
type halService interface {
	binder.Service
	Label() string
}

// newHALService constructs the service for a Binder descriptor over sys.
func newHALService(desc string, sys *hal.Sys, b bugs.Set) halService {
	switch desc {
	case hal.GraphicsDescriptor:
		return hal.NewGraphics(sys, b)
	case hal.MediaDescriptor:
		return hal.NewMedia(sys, b)
	case hal.CameraDescriptor:
		return hal.NewCamera(sys, b)
	case hal.AudioDescriptor:
		return hal.NewAudio(sys, b)
	case hal.BluetoothDescriptor:
		return hal.NewBluetooth(sys, b)
	case hal.NFCDescriptor:
		return hal.NewNFC(sys, b)
	case hal.SensorsDescriptor:
		return hal.NewSensors(sys, b)
	case hal.USBDescriptor:
		return hal.NewUSB(sys, b)
	case hal.ThermalDescriptor:
		return hal.NewThermal(sys, b)
	case hal.InputDescriptor:
		return hal.NewInput(sys, b)
	default:
		panic(fmt.Sprintf("device: unknown HAL %q", desc))
	}
}

func (d *Device) boot() {
	d.bootTree()
	// The checkpoint is taken at the very end of boot, so every Reboot —
	// including the probing pass's trailing one — refreshes the snapshot.
	d.snap = captureSnapshot(d.subs)
	d.snapPristine = true
	d.snapCache = [2]snapCacheEntry{}
	d.exportBlob, d.exportGens = nil, nil
}

// bootTree constructs the subsystem tree without capturing a snapshot.
// Clone twins boot their tree, import the source checkpoint, and only then
// capture (or share) a snapshot of the imported state.
func (d *Device) bootTree() {
	k := vkernel.New()
	subs := make([]snap.Subsystem, 0, 2+len(d.Model.Drivers)+len(d.Model.HALs)+3)
	subs = append(subs, k, k.Heap)
	d.knobSets = d.knobSets[:0]
	for _, fam := range d.Model.Drivers {
		path, drv := newDriver(fam, d.Model.Bugs)
		k.RegisterDevice(path, drv)
		// The family's runtime parameters go into the sysfs namespace and
		// snapshot as their own subsystem: a knob write never passes
		// through a device fd, so the driver's own dirty tracking cannot
		// stand in for the knobs'.
		kn := drv.Knobs()
		kn.Register(k)
		d.knobSets = append(d.knobSets, kn)
		subs = append(subs, drv, kn)
	}
	d.Hub.Install(k)
	d.K = k

	sm := binder.NewServiceManager()
	d.Procs = nil
	for i, desc := range d.Model.HALs {
		pid := halPIDBase + i
		sys := &hal.Sys{K: k, PID: pid}
		svc := newHALService(desc, sys, d.Model.Bugs)
		proc := hal.NewProcess(pid, svc, svc.Label())
		// Restore respawns the HAL service the way init would: a fresh
		// instance over the same syscall facade (and thus this kernel).
		proc.SetRebuild(func() binder.Service {
			return newHALService(desc, sys, d.Model.Bugs)
		})
		// The device plays the framework's death-recipient role: every
		// HAL death is counted, and respawn paths (reboot here, Restore
		// in hal) re-arm the one-shot notification.
		proc.LinkToDeath(func() { d.halDeaths.Add(1) })
		d.Procs = append(d.Procs, proc)
		sm.Register(proc)
		subs = append(subs, proc)
	}
	d.SM = sm
	d.FW = hal.NewFramework(sm)
	subs = append(subs, sm, d.FW, d.Hub)
	d.subs = subs
}

// Reboot tears the device down and boots fresh kernel and HAL state, as the
// harness does after any crash (paper §V-A). Attached eBPF probes survive:
// the hub is reinstalled on the new kernel.
func (d *Device) Reboot() {
	d.reboots.Add(1)
	d.boot()
}

// Reboots reports how many times the device rebooted.
func (d *Device) Reboots() int { return int(d.reboots.Load()) }

// Restores reports how many times the device was snapshot-restored.
func (d *Device) Restores() int { return int(d.restores.Load()) }

// HALDeaths reports how many HAL death notifications the device received.
// Each alive→dead transition of a process with an armed recipient counts
// once; respawn paths (reboot, restore) re-arm.
func (d *Device) HALDeaths() int { return int(d.halDeaths.Load()) }

// Healthy reports whether the kernel is not wedged and every HAL process is
// alive.
func (d *Device) Healthy() bool {
	if d.K.Wedged() {
		return false
	}
	for _, p := range d.Procs {
		if p.Dead() {
			return false
		}
	}
	return true
}

// TakeHALCrashes drains native-crash records from all HAL processes.
func (d *Device) TakeHALCrashes() []hal.Crash {
	out := make([]hal.Crash, 0, len(d.Procs))
	for _, p := range d.Procs {
		out = append(out, p.TakeCrashes()...)
	}
	return out
}

// SyscallDescs returns the static DSL descriptions for the device's driver
// families — what the fuzzer knows before probing.
func (d *Device) SyscallDescs() []*dsl.CallDesc {
	var out []*dsl.CallDesc
	for _, fam := range d.Model.Drivers {
		switch fam {
		case FamTCPC:
			out = append(out, drivers.TCPCDescs()...)
		case FamHCI:
			out = append(out, drivers.HCIDescs()...)
		case FamL2CAP:
			out = append(out, drivers.L2CAPDescs()...)
		case FamV4L2:
			out = append(out, drivers.V4L2Descs()...)
		case FamAudio:
			out = append(out, drivers.AudioDescs()...)
		case FamGPU:
			out = append(out, drivers.GPUDescs()...)
		case FamWLAN:
			out = append(out, drivers.WLANDescs()...)
		case FamIIO:
			out = append(out, drivers.SensorDescs()...)
		case FamNFC:
			out = append(out, drivers.NFCDescs()...)
		case FamThermal:
			out = append(out, drivers.ThermalDescs()...)
		case FamTouch:
			out = append(out, drivers.TouchDescs()...)
		}
	}
	return out
}

// ParamSurface returns the live runtime-parameter state of every driver
// family, in model driver-list order.
func (d *Device) ParamSurface() []*drivers.Knobs { return d.knobSets }

// ParamDescs returns the DSL descriptions of every writable runtime
// parameter on the device, statically weighted; the probing pass replaces
// the weights with normalized vendor-init occurrence counts.
func (d *Device) ParamDescs() []*dsl.CallDesc {
	var out []*dsl.CallDesc
	for _, kn := range d.knobSets {
		out = append(out, kn.Descs()...)
	}
	return out
}

// pcIndexCache memoizes PCIndex results per (driver list, maxSite): the
// index depends only on the model's driver families, and rebuilding the
// full PC→module map (thousands of kcov.PC hashes) per call was a
// measurable per-campaign cost.
var pcIndexCache sync.Map // string -> map[uint32]string

// PCIndex maps every plausible cover-point PC of the device's driver
// modules back to its module name, for per-driver coverage accounting
// (paper §V-C: per-driver coverage increased 17% on average). Site ids are
// enumerated up to maxSite per module. The returned map is shared and must
// be treated as read-only.
func (d *Device) PCIndex(maxSite uint32) map[uint32]string {
	key := fmt.Sprintf("%s:%d", strings.Join(d.Model.Drivers, ","), maxSite)
	if cached, ok := pcIndexCache.Load(key); ok {
		return cached.(map[uint32]string)
	}
	idx := make(map[uint32]string, int(maxSite)*len(d.Model.Drivers))
	for _, fam := range d.Model.Drivers {
		for site := uint32(0); site < maxSite; site++ {
			idx[kcov.PC(fam, site)] = fam
		}
	}
	idx2, _ := pcIndexCache.LoadOrStore(key, idx)
	return idx2.(map[uint32]string)
}
