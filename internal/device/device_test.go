package device

import (
	"testing"

	"droidfuzz/internal/bugs"
	"droidfuzz/internal/dsl"
	"droidfuzz/internal/kcov"
	"droidfuzz/internal/vkernel"
)

func TestModelsMatchTableI(t *testing.T) {
	ms := Models()
	if len(ms) != 7 {
		t.Fatalf("models = %d, want 7", len(ms))
	}
	wantIDs := []string{"A1", "A2", "B", "C1", "C2", "D", "E"}
	for i, m := range ms {
		if m.ID != wantIDs[i] {
			t.Fatalf("model %d id = %s, want %s", i, m.ID, wantIDs[i])
		}
		if m.Vendor == "" || m.Name == "" || m.Arch == "" || m.Kernel == "" {
			t.Fatalf("model %s incomplete: %+v", m.ID, m)
		}
		if len(m.Drivers) == 0 || len(m.HALs) == 0 {
			t.Fatalf("model %s has empty driver/HAL set", m.ID)
		}
	}
	// Only E is amd64, as in Table I.
	for _, m := range ms {
		want := "aarch64"
		if m.ID == "E" {
			want = "amd64"
		}
		if m.Arch != want {
			t.Fatalf("%s arch = %s", m.ID, m.Arch)
		}
	}
}

func TestBugMappingMatchesTableII(t *testing.T) {
	want := map[string][]bugs.ID{
		"A1": {bugs.TCPCProbe, bugs.GraphicsHALCrash, bugs.LockdepSubclass, bugs.TCPCVbus, bugs.TCPCContractOVP},
		"A2": {bugs.AudioHang, bugs.MediaHALCrash, bugs.HCICodecs},
		"B":  {bugs.L2capDisconn},
		"C1": {bugs.CameraHALCrash},
		"C2": {bugs.RateInit},
		"D":  {bugs.BTAcceptUnlink},
		"E":  {bugs.V4LQuerycap},
	}
	total := 0
	for _, m := range Models() {
		ids := want[m.ID]
		if len(m.Bugs) != len(ids) {
			t.Fatalf("%s has %d bugs, want %d", m.ID, len(m.Bugs), len(ids))
		}
		for _, id := range ids {
			if !m.Bugs.Has(id) {
				t.Fatalf("%s missing bug %v", m.ID, id)
			}
		}
		total += len(ids)
	}
	if total != 13 {
		t.Fatalf("total injected bugs = %d, want 13", total)
	}
}

func TestModelByID(t *testing.T) {
	if _, err := ModelByID("A1"); err != nil {
		t.Fatal(err)
	}
	if _, err := ModelByID("Z9"); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestBootAndHealth(t *testing.T) {
	m, _ := ModelByID("A1")
	d := New(m)
	if !d.Healthy() {
		t.Fatal("fresh device unhealthy")
	}
	if len(d.K.DevicePaths()) != len(m.Drivers) {
		t.Fatalf("dev nodes = %d, want %d", len(d.K.DevicePaths()), len(m.Drivers))
	}
	if len(d.SM.List()) != len(m.HALs) {
		t.Fatalf("services = %d, want %d", len(d.SM.List()), len(m.HALs))
	}
	if len(d.Procs) != len(m.HALs) {
		t.Fatalf("processes = %d", len(d.Procs))
	}
}

func TestRebootClearsWedge(t *testing.T) {
	m, _ := ModelByID("A1")
	d := New(m)
	// Wedge the kernel via an invalid lockdep subclass.
	fd, err := d.K.Open(NativePID, vkernel.OriginNative, "/dev/gpu0", 0)
	if err != nil {
		t.Fatal(err)
	}
	_ = fd
	// Simulate a fatal incident directly through the heap: UAF.
	obj := d.K.Heap.Alloc(8, "a")
	d.K.Heap.Free(obj, "f")
	// Wedge via the lock validator.
	d.K.LockAcquire(nil /* ctx unused on success path */, "x", 0)
	// Direct wedge: watchdog through a spin is complex here; use Bug path
	// via lockdep invalid subclass with a real ctx is already covered in
	// vkernel tests. Reboot must always produce a healthy device.
	d.Reboot()
	if !d.Healthy() {
		t.Fatal("rebooted device unhealthy")
	}
	if d.Reboots() != 1 {
		t.Fatalf("reboots = %d", d.Reboots())
	}
	// The new kernel is distinct and fresh.
	if d.K.OpenFDs() != 0 {
		t.Fatal("fds survived reboot")
	}
}

func TestHubSurvivesReboot(t *testing.T) {
	m, _ := ModelByID("B")
	d := New(m)
	probe := d.Hub.Attach(nil, 0)
	d.Reboot()
	// Events from the new kernel still reach the old probe.
	d.K.Open(NativePID, vkernel.OriginNative, "/dev/hci0", 0)
	if len(probe.Events()) == 0 {
		t.Fatal("probe detached by reboot")
	}
}

func TestSyscallDescsFormValidTarget(t *testing.T) {
	for _, m := range Models() {
		d := New(m)
		target, err := dsl.NewTarget(d.SyscallDescs()...)
		if err != nil {
			t.Fatalf("%s: %v", m.ID, err)
		}
		if len(target.Calls()) < 20 {
			t.Fatalf("%s: only %d calls", m.ID, len(target.Calls()))
		}
		// Every device path referenced by an open$ desc must exist.
		paths := make(map[string]bool)
		for _, p := range d.K.DevicePaths() {
			paths[p] = true
		}
		for _, desc := range target.Calls() {
			if desc.Syscall != "open" {
				continue
			}
			for _, p := range desc.Args[0].Type.StrChoices {
				if !paths[p] {
					t.Fatalf("%s: %s references missing %s", m.ID, desc.Name, p)
				}
			}
		}
	}
}

func TestPCIndexCoversDriverModules(t *testing.T) {
	m, _ := ModelByID("A1")
	d := New(m)
	idx := d.PCIndex(512)
	if idx[kcov.PC("tcpc", 10)] != "tcpc" {
		t.Fatal("tcpc site missing from index")
	}
	if idx[kcov.PC("gpu", 54)] != "gpu" {
		t.Fatal("gpu site missing from index")
	}
	if _, ok := idx[kcov.PC("nonexistent", 1)]; ok {
		t.Fatal("phantom module in index")
	}
}

func TestHALCrashDrain(t *testing.T) {
	m, _ := ModelByID("A1")
	d := New(m)
	if got := d.TakeHALCrashes(); len(got) != 0 {
		t.Fatalf("fresh device has crashes: %v", got)
	}
}
