package device

import (
	"fmt"
	"math/rand"
	"testing"

	"droidfuzz/internal/binder"
	"droidfuzz/internal/drivers"
	"droidfuzz/internal/hal"
	"droidfuzz/internal/vkernel"
)

// composer wraps the Graphics HAL process of a booted device with its
// transaction codes resolved once by reflection.
type composer struct {
	proc                          *hal.Process
	createLayer, destroy, present uint32
}

func newComposer(t *testing.T, d *Device) *composer {
	t.Helper()
	c := &composer{}
	for _, p := range d.Procs {
		if p.Descriptor() == hal.GraphicsDescriptor {
			c.proc = p
		}
	}
	if c.proc == nil {
		t.Fatal("model has no Graphics HAL")
	}
	out := binder.NewParcel()
	if st := c.proc.Transact(binder.InterfaceTransaction, binder.NewParcel(), out); st != binder.StatusOK {
		t.Fatalf("reflect: %v", st)
	}
	methods, err := binder.UnmarshalMethods(out)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range methods {
		switch m.Name {
		case "createLayer":
			c.createLayer = m.Code
		case "destroyLayer":
			c.destroy = m.Code
		case "presentDisplay":
			c.present = m.Code
		}
	}
	return c
}

func (c *composer) create(w, h uint64) (uint64, binder.Status) {
	in, out := binder.NewParcel(), binder.NewParcel()
	in.WriteUint64(w)
	in.WriteUint64(h)
	in.WriteUint64(1)
	st := c.proc.Transact(c.createLayer, in, out)
	id, _ := out.ReadUint64()
	return id, st
}

func (c *composer) destroyID(id uint64) binder.Status {
	in := binder.NewParcel()
	in.WriteUint64(id)
	return c.proc.Transact(c.destroy, in, binder.NewParcel())
}

func (c *composer) presentDisplay() binder.Status {
	return c.proc.Transact(c.present, binder.NewParcel(), binder.NewParcel())
}

// killGraphicsHAL runs the A1 composer use-after-destroy recipe (bug №2):
// create, destroy without unlinking, present the dangling entry.
func killGraphicsHAL(t *testing.T, c *composer) {
	t.Helper()
	id, st := c.create(64, 64)
	if st != binder.StatusOK {
		t.Fatalf("createLayer: %v", st)
	}
	if st := c.destroyID(id); st != binder.StatusOK {
		t.Fatalf("destroyLayer: %v", st)
	}
	if st := c.presentDisplay(); st != binder.StatusDeadObject {
		t.Fatalf("presentDisplay = %v, want DEAD_OBJECT", st)
	}
}

// wedgeKernel drives the A1 lockdep bug (№3): presenting 8 layers acquires
// an invalid lock subclass inside the GPU driver, wedging the kernel. The
// HAL process itself survives with a failed transaction.
func wedgeKernel(t *testing.T, c *composer) {
	t.Helper()
	for i := 0; i < 8; i++ {
		if _, st := c.create(64, 64); st != binder.StatusOK {
			t.Fatalf("createLayer %d: %v", i, st)
		}
	}
	if st := c.presentDisplay(); st != binder.StatusFailed {
		t.Fatalf("presentDisplay = %v, want FAILED", st)
	}
}

// TestHealthyAndResetUnderFallout walks the Healthy/reset matrix the
// engine relies on: a dead HAL, a wedged kernel, and both at once must
// each make the device unhealthy, and both Reboot and Restore must bring
// it back to a fully pristine, healthy state.
func TestHealthyAndResetUnderFallout(t *testing.T) {
	for _, tc := range []struct {
		name  string
		wreck func(t *testing.T, c *composer)
	}{
		{"hal-dead", killGraphicsHAL},
		{"kernel-wedged", wedgeKernel},
		{"both", func(t *testing.T, c *composer) {
			// Wedge first: the composer keeps its cached GPU fd, destroy
			// ignores the post-wedge EIO, and present hits the dangling
			// entry before issuing any syscall — so the crash recipe still
			// lands on a wedged kernel.
			wedgeKernel(t, c)
			id, st := c.create(64, 64)
			if st != binder.StatusFailed {
				t.Fatalf("post-wedge createLayer = %v, want FAILED", st)
			}
			_ = id
			// The 8 wedge layers are still in the presentation list;
			// destroying one leaves its dangling entry (bug №2).
			if st := c.destroyID(1); st != binder.StatusOK {
				t.Fatalf("destroyLayer: %v", st)
			}
			if st := c.presentDisplay(); st != binder.StatusDeadObject {
				t.Fatalf("presentDisplay = %v, want DEAD_OBJECT", st)
			}
		}},
	} {
		for _, reset := range []string{"reboot", "restore"} {
			t.Run(tc.name+"/"+reset, func(t *testing.T) {
				m, _ := ModelByID("A1")
				d := New(m)
				tc.wreck(t, newComposer(t, d))
				if d.Healthy() {
					t.Fatal("wrecked device still healthy")
				}
				if reset == "reboot" {
					d.Reboot()
					if d.Reboots() != 1 {
						t.Fatalf("reboots = %d", d.Reboots())
					}
				} else {
					if !d.Restore() {
						t.Fatal("restore fell back")
					}
					if d.Restores() != 1 {
						t.Fatalf("restores = %d", d.Restores())
					}
				}
				if !d.Healthy() {
					t.Fatalf("device unhealthy after %s", reset)
				}
				if d.K.Wedged() {
					t.Fatalf("kernel still wedged after %s", reset)
				}
				if n := d.K.OpenFDs(); n != 0 {
					t.Fatalf("%d fds survived %s", n, reset)
				}
				for _, p := range d.Procs {
					if p.Dead() {
						t.Fatalf("HAL %s still dead after %s", p.Descriptor(), reset)
					}
				}
				if got := d.TakeHALCrashes(); len(got) != 0 {
					t.Fatalf("crashes survived %s: %v", reset, got)
				}
				// The device is fully usable again: the full crash recipe
				// reproduces from scratch.
				killGraphicsHAL(t, newComposer(t, d))
			})
		}
	}
}

// TestRestoreRewindsParamOnlyDirt covers the fallout-matrix gap the
// runtime-parameter dimension opened: a knob subsystem dirtied solely
// through its sysfs store — no ioctl, read, or driver write ever runs —
// must still be caught by Restore's generation tracking and wound back.
func TestRestoreRewindsParamOnlyDirt(t *testing.T) {
	m, _ := ModelByID("A1")
	d := New(m)
	var kn *drivers.Knobs
	for _, k := range d.ParamSurface() {
		if k.Family() == "tcpc" {
			kn = k
		}
	}
	if kn == nil {
		t.Fatal("A1 has no tcpc knob set")
	}
	idx := kn.Index("max_contract_mv")
	if idx < 0 {
		t.Fatal("tcpc has no max_contract_mv knob")
	}
	if got := kn.Int(idx); got != 20000 {
		t.Fatalf("default max_contract_mv = %d, want 20000", got)
	}
	gen0 := kn.Gen()

	// The only touch point is the sysfs attribute itself.
	path := drivers.ParamPath("tcpc", "max_contract_mv")
	fd, err := d.K.Open(NativePID, vkernel.OriginNative, path, 0)
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	if _, err := d.K.Write(NativePID, vkernel.OriginNative, fd, []byte("30000\n")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := d.K.Close(NativePID, vkernel.OriginNative, fd); err != nil {
		t.Fatalf("close: %v", err)
	}
	if got := kn.Int(idx); got != 30000 {
		t.Fatalf("max_contract_mv after store = %d, want 30000", got)
	}
	if kn.Gen() == gen0 {
		t.Fatal("sysfs store escaped the knob set's dirty tracking")
	}

	if !d.Restore() {
		t.Fatal("restore fell back")
	}
	if got := kn.Int(idx); got != 20000 {
		t.Fatalf("max_contract_mv after restore = %d, want 20000 (knob not wound back)", got)
	}
	// The restored value is visible through sysfs too.
	fd, err = d.K.Open(NativePID, vkernel.OriginNative, path, 0)
	if err != nil {
		t.Fatalf("reopen %s: %v", path, err)
	}
	data, err := d.K.Read(NativePID, vkernel.OriginNative, fd, 64)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if string(data) != "20000\n" {
		t.Fatalf("sysfs shows %q after restore, want \"20000\\n\"", data)
	}
	if err := d.K.Close(NativePID, vkernel.OriginNative, fd); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// applyOps drives n pseudo-random operations — syscalls across every
// device node, HAL transactions, and runtime-parameter stores — and
// returns a full observational trace (return values, errnos, binder
// statuses). Two devices in identical states must produce identical traces
// for the same seed.
func applyOps(d *Device, seed int64, n int) []string {
	rng := rand.New(rand.NewSource(seed))
	paths := d.K.DevicePaths()
	params := d.K.ParamPaths()
	var fds []int
	var trace []string
	rec := func(format string, args ...any) {
		trace = append(trace, fmt.Sprintf(format, args...))
	}
	for i := 0; i < n; i++ {
		switch rng.Intn(9) {
		case 0, 1: // open
			p := paths[rng.Intn(len(paths))]
			fd, err := d.K.Open(NativePID, vkernel.OriginNative, p, 0)
			if err == nil {
				fds = append(fds, fd)
			}
			rec("open %s = %d %v", p, fd, err)
		case 2, 3, 4: // ioctl on a random open fd
			if len(fds) == 0 {
				continue
			}
			fd := fds[rng.Intn(len(fds))]
			req := 0xa000 + uint64(rng.Intn(0x200))
			arg := make([]byte, rng.Intn(16))
			for j := range arg {
				arg[j] = byte(rng.Intn(256))
			}
			ret, out, err := d.K.Ioctl(NativePID, vkernel.OriginNative, fd, req, arg)
			rec("ioctl %d %#x = %d %x %v", fd, req, ret, out, err)
		case 5: // read
			if len(fds) == 0 {
				continue
			}
			fd := fds[rng.Intn(len(fds))]
			data, err := d.K.Read(NativePID, vkernel.OriginNative, fd, rng.Intn(32))
			rec("read %d = %x %v", fd, data, err)
		case 6: // close
			if len(fds) == 0 {
				continue
			}
			j := rng.Intn(len(fds))
			err := d.K.Close(NativePID, vkernel.OriginNative, fds[j])
			rec("close %d = %v", fds[j], err)
			fds = append(fds[:j], fds[j+1:]...)
		case 7: // HAL transaction
			p := d.Procs[rng.Intn(len(d.Procs))]
			in := binder.NewParcel()
			for j := rng.Intn(4); j > 0; j-- {
				in.WriteUint64(uint64(rng.Intn(512)))
			}
			st := p.Transact(uint32(1+rng.Intn(6)), in, binder.NewParcel())
			rec("transact %s = %v", p.Descriptor(), st)
		case 8: // runtime-parameter store through sysfs
			p := params[rng.Intn(len(params))]
			fd, err := d.K.Open(NativePID, vkernel.OriginNative, p, 0)
			if err != nil {
				rec("param open %s = %v", p, err)
				continue
			}
			val := fmt.Sprintf("%d\n", rng.Intn(40000))
			_, werr := d.K.Write(NativePID, vkernel.OriginNative, fd, []byte(val))
			cerr := d.K.Close(NativePID, vkernel.OriginNative, fd)
			rec("param %s <- %q = %v %v", p, val, werr, cerr)
		}
	}
	rec("tail: syscalls=%d fds=%d wedged=%v healthy=%v",
		d.K.SyscallCount(), d.K.OpenFDs(), d.K.Wedged(), d.Healthy())
	return trace
}

// diffTraces fails the test at the first diverging trace line.
func diffTraces(t *testing.T, label string, a, b []string) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: trace lengths differ: %d vs %d", label, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s: traces diverge at op %d:\n  restore-path %s\n  reboot-path  %s",
				label, i, a[i], b[i])
		}
	}
}

// TestRestoreMatchesRebootReplay is the property test behind the
// restore-equivalence invariant: after any pseudo-random operation
// sequence, a restored device and a rebooted twin must replay a second
// sequence with identical observable behavior. Any divergence means some
// mutation escaped dirty tracking or a Restore left residue.
func TestRestoreMatchesRebootReplay(t *testing.T) {
	for _, model := range []string{"A1", "A2", "B", "E"} {
		for seed := int64(0); seed < 4; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", model, seed), func(t *testing.T) {
				m, err := ModelByID(model)
				if err != nil {
					t.Fatal(err)
				}
				d1, d2 := New(m), New(m)
				// Sanity: fresh twins behave identically.
				diffTraces(t, "dirty phase", applyOps(d1, seed, 150), applyOps(d2, seed, 150))
				if !d1.Restore() {
					t.Fatal("restore fell back")
				}
				d2.Reboot()
				// The restored device must replay exactly like the twin
				// that paid for a full reboot.
				diffTraces(t, "replay phase",
					applyOps(d1, seed+1000, 150), applyOps(d2, seed+1000, 150))
			})
		}
	}
}
