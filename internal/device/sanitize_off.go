//go:build !droidfuzz_sanitize

package device

// SanitizeEnabled reports whether the droidfuzz_sanitize build tag is on.
const SanitizeEnabled = false

// verifyRestore is a no-op in normal builds; the compiler removes the call
// from Restore entirely. Build with -tags droidfuzz_sanitize to cross-check
// every restored device against a freshly booted one.
func verifyRestore(*Device) {}

// verifyImport is a no-op in normal builds. Build with -tags
// droidfuzz_sanitize to cross-check every checkpoint import by re-export.
func verifyImport(*Device, []any) {}
