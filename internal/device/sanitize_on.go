//go:build droidfuzz_sanitize

package device

import (
	"fmt"
	"reflect"

	"droidfuzz/internal/binder"
	"droidfuzz/internal/hal"
)

// SanitizeEnabled reports whether the droidfuzz_sanitize build tag is on.
const SanitizeEnabled = true

// verifyRestore cross-checks the restore-equivalence invariant: after
// Restore, the device must be state-identical to a freshly booted one.
// It boots a pristine twin of the same model and compares, subsystem by
// subsystem, the checkpoint payloads plus the kernel/registry observables
// the harness consumes. Any mismatch is a snapshot bug — an unmarked
// mutation path or an incomplete Restore — and panics with the offending
// subsystem.
func verifyRestore(d *Device) {
	if !d.snapPristine {
		// The reset point is an imported checkpoint, not a fresh boot;
		// import fidelity is cross-checked by verifyImport instead.
		return
	}
	fresh := New(d.Model)
	if len(fresh.subs) != len(d.subs) {
		panic(fmt.Sprintf("droidfuzz_sanitize: restored device has %d subsystems, fresh boot has %d",
			len(d.subs), len(fresh.subs)))
	}
	for i, sub := range d.subs {
		switch s := sub.(type) {
		case *binder.ServiceManager:
			// Service values are process pointers; compare the registry
			// surface instead of chasing them.
			got, want := s.List(), fresh.SM.List()
			if !reflect.DeepEqual(got, want) {
				panic(fmt.Sprintf("droidfuzz_sanitize: restored service registry %v != fresh %v", got, want))
			}
		case *hal.Process:
			if s.Dead() {
				panic(fmt.Sprintf("droidfuzz_sanitize: restored HAL process %q still dead", s.Label()))
			}
		default:
			got, want := sub.Checkpoint(), fresh.subs[i].Checkpoint()
			if !reflect.DeepEqual(got, want) {
				panic(fmt.Sprintf("droidfuzz_sanitize: subsystem %d (%T) restored state %#v != fresh %#v",
					i, sub, got, want))
			}
		}
	}
	// Harness-visible observables.
	if got, want := d.K.DevicePaths(), fresh.K.DevicePaths(); !reflect.DeepEqual(got, want) {
		panic(fmt.Sprintf("droidfuzz_sanitize: restored device paths %v != fresh %v", got, want))
	}
	if n := d.K.OpenFDs(); n != 0 {
		panic(fmt.Sprintf("droidfuzz_sanitize: restored kernel has %d open fds", n))
	}
	if n := d.K.SyscallCount(); n != 0 {
		panic(fmt.Sprintf("droidfuzz_sanitize: restored kernel syscall count %d != 0", n))
	}
	if d.K.Wedged() {
		panic("droidfuzz_sanitize: restored kernel still wedged")
	}
	if !d.Healthy() {
		panic("droidfuzz_sanitize: restored device not healthy")
	}
}

// verifyImport cross-checks checkpoint-import fidelity: after importing,
// re-exporting every subsystem must reproduce the source blobs exactly.
// A mismatch means an Export/Import pair drops or distorts state — the
// round trip is the invariant that makes clone twins equivalent to the
// source device.
func verifyImport(d *Device, blobs []any) {
	for i, sub := range d.subs {
		got := sub.Export()
		if !reflect.DeepEqual(got, blobs[i]) {
			panic(fmt.Sprintf("droidfuzz_sanitize: subsystem %d (%T) re-export %#v != imported blob %#v",
				i, sub, got, blobs[i]))
		}
	}
}
