package device

import "droidfuzz/internal/snap"

// Copy-on-write device reset. A Snapshot captures the pristine post-boot
// state of every subsystem (kernel, heap, drivers, HAL processes, binder
// registry, framework, eBPF hub) together with each subsystem's dirty
// generation at capture time. Device.Restore winds only the subsystems
// whose generation advanced back to their checkpoint, so a reset after a
// typical crash — one driver poisoned, maybe one HAL dead — costs
// O(dirty-state) instead of the full reboot's reconstruction of the whole
// device tree.
//
// Unlike Reboot, Restore keeps every object identity: d.K, d.SM, d.Procs
// and d.FW stay the same pointers, which is what makes skipping clean
// subsystems sound (nothing ever points at a stale instance).

// snapEntry pairs one subsystem with its captured state and the dirty
// generation recorded when the state was known to match.
type snapEntry struct {
	sub   snap.Subsystem
	state any
	gen   uint64
}

// Snapshot is a device's pristine post-boot checkpoint. It is immutable
// apart from the per-entry generation bookkeeping Restore maintains.
type Snapshot struct {
	entries []snapEntry
}

// captureSnapshot checkpoints every subsystem in order.
func captureSnapshot(subs []snap.Subsystem) *Snapshot {
	s := &Snapshot{entries: make([]snapEntry, len(subs))}
	for i, sub := range subs {
		s.entries[i] = snapEntry{sub: sub, state: sub.Checkpoint(), gen: sub.Gen()}
	}
	return s
}

// Restore winds the device back to its pristine post-boot snapshot,
// skipping every subsystem whose dirty generation is unchanged since the
// checkpoint. It reports whether the restore reached pristine state; a
// false return means the caller must fall back to a full Reboot (the only
// case today is a device that was never booted through boot(), which
// cannot happen via New but keeps the contract honest).
func (d *Device) Restore() bool {
	if d.snap == nil {
		return false
	}
	for i := range d.snap.entries {
		e := &d.snap.entries[i]
		if e.sub.Gen() == e.gen {
			continue // untouched since checkpoint: skip entirely
		}
		e.sub.Restore(e.state)
		// Restoring mutates through the subsystem's own methods, not the
		// kernel's touch points, so the generation is simply re-read.
		e.gen = e.sub.Gen()
	}
	d.restores.Add(1)
	verifyRestore(d)
	return true
}
