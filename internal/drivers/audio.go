package drivers

import (
	"sync"

	"droidfuzz/internal/bugs"
	"droidfuzz/internal/snap"
	"droidfuzz/internal/vkernel"
)

// Audio PCM ioctl request codes (ALSA-like).
const (
	PCMHwParams uint64 = 0xa501
	PCMPrepare  uint64 = 0xa502
	PCMStart    uint64 = 0xa503
	PCMStop     uint64 = 0xa504
	PCMDrain    uint64 = 0xa505
	PCMGetPos   uint64 = 0xa506
	PCMSetVol   uint64 = 0xa507
	PCMPause    uint64 = 0xa508
)

// AudioLowLatencyMagic is the vendor's undocumented hw_params flag enabling
// the raw low-latency path that skips period validation. The Media HAL uses
// it for its fast mixer; a blind fuzzer is unlikely to guess it, which gates
// bug №5 behind realistic HAL-originated configuration.
const AudioLowLatencyMagic uint64 = 0x5aa5

type pcmState int

const (
	pcmOpen pcmState = iota
	pcmSetup
	pcmPrepared
	pcmRunning
	pcmPaused
)

// AudioDriver models a PCM playback device. Bug №5 is the drain loop that
// never terminates when the vendor low-latency path allowed a zero period
// size: the soft-lockup watchdog reports an infinite loop in the driver.
type AudioDriver struct {
	bugs bugs.Set //droidvet:checkpoint ephemeral injected fault set, fixed at construction
	snap.Dirty

	mu       sync.Mutex
	state    pcmState
	rate     uint64
	channels uint64
	period   uint64
	buffered uint64
	volume   uint64
	pos      uint64

	knobs *Knobs
}

// NewAudio returns the driver with the given enabled bug set.
func NewAudio(b bugs.Set) *AudioDriver {
	return &AudioDriver{bugs: b, volume: 80, knobs: NewKnobs("audio", audioKnobSpecs)}
}

// Name implements vkernel.Driver.
func (d *AudioDriver) Name() string { return "audio" }

// Knobs returns the runtime-parameter state.
func (d *AudioDriver) Knobs() *Knobs { return d.knobs }

// Open implements vkernel.Driver.
func (d *AudioDriver) Open(ctx *vkernel.Ctx) (vkernel.Conn, error) {
	ctx.Cover("audio", 1)
	return &audioConn{d: d}, nil
}

type audioConn struct {
	vkernel.BaseConn
	d *AudioDriver
}

func (c *audioConn) Ioctl(ctx *vkernel.Ctx, req uint64, arg []byte) (uint64, []byte, error) {
	d := c.d
	d.mu.Lock()
	defer d.mu.Unlock()
	switch req {
	case PCMHwParams:
		ctx.Cover("audio", 10)
		if d.state == pcmRunning {
			ctx.Cover("audio", 11)
			return 0, nil, vkernel.EBUSY
		}
		rate, channels, period, flags := ArgU64(arg, 0), ArgU64(arg, 1), ArgU64(arg, 2), ArgU64(arg, 3)
		switch rate {
		case 8000, 16000, 44100, 48000, 96000, 192000:
		default:
			ctx.Cover("audio", 12)
			return 0, nil, vkernel.EINVAL
		}
		if channels == 0 || channels > 8 {
			ctx.Cover("audio", 13)
			return 0, nil, vkernel.EINVAL
		}
		if d.knobs.Int(audioKnobRateLock) == 1 && d.rate != 0 && rate != d.rate {
			// Sample rate pinned by the DSP topology; reconfiguring it is
			// refused while the rate_lock module param is set.
			ctx.Cover("audio", 610)
			return 0, nil, vkernel.EBUSY
		}
		if flags == AudioLowLatencyMagic {
			// Vendor low-latency path: skips the period validation the
			// mainline path performs (bug №5 gate).
			ctx.Cover("audio", 14)
			if period == 0 {
				if !d.bugs.Has(bugs.AudioHang) {
					return 0, nil, vkernel.EINVAL
				}
				ctx.Cover("audio", 200) // zero-period fast-mixer config
			}
		} else if period == 0 || period > 65536 {
			if period != 0 && period <= 262144 && d.knobs.Int(audioKnobDeepBuffer) == 1 {
				// Deep-buffer offload accepts oversized periods for
				// low-power playback, module-param gated.
				ctx.Cover("audio", 600+bucket(period/65536, 4))
			} else {
				ctx.Cover("audio", 15)
				return 0, nil, vkernel.EINVAL
			}
		}
		d.rate, d.channels, d.period = rate, channels, period
		d.state = pcmSetup
		ctx.Logf("pcm0", "hw_params rate=%d ch=%d period=%d", rate, channels, period)
		ctx.Cover("audio", 16+bucket(rate/8000, 24)+bucket(channels, 8)*3)
		return 0, nil, nil

	case PCMPrepare:
		ctx.Cover("audio", 50)
		if d.state != pcmSetup && d.state != pcmPrepared {
			ctx.Cover("audio", 51)
			return 0, nil, vkernel.EINVAL
		}
		d.state = pcmPrepared
		d.buffered = 0
		d.pos = 0
		ctx.Cover("audio", 52)
		return 0, nil, nil

	case PCMStart:
		ctx.Cover("audio", 60)
		if d.state != pcmPrepared {
			ctx.Cover("audio", 61)
			return 0, nil, vkernel.EINVAL
		}
		d.state = pcmRunning
		ctx.Cover("audio", 62)
		return 0, nil, nil

	case PCMStop:
		ctx.Cover("audio", 70)
		if d.state != pcmRunning && d.state != pcmPaused {
			ctx.Cover("audio", 71)
			return 0, nil, vkernel.EINVAL
		}
		d.state = pcmSetup
		d.buffered = 0
		ctx.Cover("audio", 72)
		return 0, nil, nil

	case PCMPause:
		ctx.Cover("audio", 80)
		switch d.state {
		case pcmRunning:
			d.state = pcmPaused
			ctx.Cover("audio", 81)
		case pcmPaused:
			d.state = pcmRunning
			ctx.Cover("audio", 82)
		default:
			ctx.Cover("audio", 83)
			return 0, nil, vkernel.EINVAL
		}
		return 0, nil, nil

	case PCMDrain:
		ctx.Cover("audio", 90)
		if d.state != pcmRunning {
			ctx.Cover("audio", 91)
			return 0, nil, vkernel.EINVAL
		}
		// Drain consumes buffered frames one period at a time. With the
		// buggy zero period (bug №5) the loop makes no progress and the
		// watchdog declares the stall.
		ctx.Cover("audio", 92)
		for d.buffered > 0 {
			if !ctx.Step("audio_pcm_drain") {
				return 0, nil, vkernel.EIO
			}
			if d.period >= d.buffered {
				d.buffered = 0
			} else {
				d.buffered -= d.period
			}
			d.pos += d.period
		}
		d.state = pcmPrepared
		ctx.Cover("audio", 93)
		ctx.Cover("audio", 300+logBucket(d.pos/1024, 12)) // DMA pointer wrap paths
		return 0, nil, nil

	case PCMGetPos:
		ctx.Cover("audio", 100)
		out := PutU64(nil, d.pos)
		out = PutU64(out, d.buffered)
		return 0, out, nil

	case PCMSetVol:
		ctx.Cover("audio", 110)
		vol := ArgU64(arg, 0)
		if vol > 100 {
			ctx.Cover("audio", 111)
			return 0, nil, vkernel.EINVAL
		}
		d.volume = vol
		ctx.Cover("audio", 112+bucket(vol/10, 11))
		if d.state == pcmRunning {
			// Live volume changes ramp through the fade engine.
			ctx.Cover("audio", 450+bucket(vol, 16))
		}
		return 0, nil, nil

	default:
		if ret, out, err, ok := ChaffIoctl(ctx, "audio", req); ok {
			return ret, out, err
		}
		ctx.Cover("audio", 3)
		return 0, nil, vkernel.ENOTTY
	}
}

// Write queues playback frames.
func (c *audioConn) Write(ctx *vkernel.Ctx, p []byte) (int, error) {
	d := c.d
	d.mu.Lock()
	defer d.mu.Unlock()
	ctx.Cover("audio", 130)
	if d.state != pcmRunning && d.state != pcmPrepared {
		ctx.Cover("audio", 131)
		return 0, vkernel.EINVAL
	}
	if len(p) == 0 {
		return 0, nil
	}
	d.buffered += uint64(len(p))
	ctx.Cover("audio", 132+bucket(uint64(len(p))/256, 12))
	if d.state == pcmRunning {
		// The running DMA engine takes rate- and channel-specific copy
		// paths that the prepared state never touches.
		ctx.Cover("audio", 400+bucket(d.rate/8000, 24)+bucket(d.channels, 4)*24)
	}
	if d.buffered > 1<<20 {
		ctx.Cover("audio", 150) // backpressure path
		d.buffered = 1 << 20
		return len(p), vkernel.EAGAIN
	}
	return len(p), nil
}

// Read captures from the loopback.
func (c *audioConn) Read(ctx *vkernel.Ctx, n int) ([]byte, error) {
	d := c.d
	d.mu.Lock()
	defer d.mu.Unlock()
	ctx.Cover("audio", 160)
	if d.state != pcmRunning {
		return nil, vkernel.EAGAIN
	}
	ctx.Cover("audio", 161)
	if n > 1024 {
		n = 1024
	}
	return make([]byte, n), nil
}

func (c *audioConn) Close(ctx *vkernel.Ctx) error {
	ctx.Cover("audio", 2)
	d := c.d
	d.mu.Lock()
	if d.state == pcmRunning || d.state == pcmPaused {
		d.state = pcmSetup
	}
	d.mu.Unlock()
	return nil
}
