// Package drivers implements the virtual kernel driver families the 7
// device models expose under /dev. Each driver is a stateful ioctl-driven
// state machine with branch-level cover points (what kcov would see) and,
// where the device model enables them, the injected Table II bugs.
//
// Payload convention: ioctl argument buffers are sequences of little-endian
// 64-bit scalars, optionally followed by raw bytes for buffer fields — the
// same layout the DSL executor produces from call descriptions.
package drivers

import (
	"encoding/binary"

	"droidfuzz/internal/vkernel"
)

// ArgU64 decodes the idx-th little-endian u64 scalar from an ioctl payload,
// returning 0 for out-of-range reads (drivers treat short payloads as
// zero-filled, like copy_from_user of a short user buffer).
func ArgU64(arg []byte, idx int) uint64 {
	off := idx * 8
	if off+8 > len(arg) {
		// Partial tail bytes are decoded zero-extended.
		if off >= len(arg) {
			return 0
		}
		var b [8]byte
		copy(b[:], arg[off:])
		return binary.LittleEndian.Uint64(b[:])
	}
	return binary.LittleEndian.Uint64(arg[off:])
}

// ArgBytes returns the raw payload after nScalars leading u64 scalars.
func ArgBytes(arg []byte, nScalars int) []byte {
	off := nScalars * 8
	if off >= len(arg) {
		return nil
	}
	return arg[off:]
}

// PutU64 appends v little-endian to b and returns the extended slice.
func PutU64(b []byte, v uint64) []byte {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], v)
	return append(b, tmp[:]...)
}

// bucket quantizes a value into at most n coverage buckets; used to expose
// parameter-dependent cover points, giving coverage the long-tail growth of
// real driver code.
func bucket(v uint64, n uint32) uint32 {
	if n == 0 {
		return 0
	}
	return uint32(v % uint64(n))
}

// ChaffReqBase is the low-byte offset where each driver family's legacy
// and diagnostic ioctls live (reqs base|0x80 ... base|0x8f). Real vendor
// drivers carry dozens of such entry points; they parse trivially, touch
// almost no code, and mostly return stub values — budget spent on them is
// budget wasted, which is precisely what interface weighting and relation
// learning let a fuzzer avoid.
const ChaffReqBase = 0x80

// ChaffIoctl services a legacy/diagnostic request: a couple of shared
// dispatch sites, a stub result. Returns false if req is not in the chaff
// window.
func ChaffIoctl(ctx *vkernel.Ctx, module string, req uint64) (uint64, []byte, error, bool) {
	low := req & 0xff
	if low < ChaffReqBase || low >= ChaffReqBase+16 {
		return 0, nil, nil, false
	}
	// All sixteen legacy entry points share four trivial dispatch sites.
	ctx.Cover(module, 500+bucket(low-ChaffReqBase, 4))
	if low%3 == 0 {
		return 0, nil, vkernel.EINVAL, true
	}
	return 0xdead0000 | low, nil, nil, true
}

// logBucket maps a monotonically growing counter to log2 milestones
// (1, 2, 4, 8, ...), capped at max. Sustained valid operation within one
// boot unlocks successive milestones without flooding the corpus with
// one-per-increment novelty.
func logBucket(v uint64, max uint32) uint32 {
	var b uint32
	for v > 1 && b < max {
		v >>= 1
		b++
	}
	return b
}
