package drivers

import (
	"fmt"
	"strings"

	"droidfuzz/internal/dsl"
)

// This file carries the DSL system-call descriptions for every driver
// family — the analog of the Syzlang descriptions the paper borrows from
// Syzkaller. Naming follows Syzkaller conventions: open$tcpc,
// ioctl$TCPC_SET_MODE, write$hci, ...
//
// Payload convention (must match the drivers' ArgU64/ArgBytes decoding):
// after the fd and request arguments, scalar fields are encoded as
// little-endian u64 in order, and at most one trailing buffer field is
// appended raw.

// Device paths for each driver family.
const (
	PathTCPC    = "/dev/tcpc0"
	PathHCI     = "/dev/hci0"
	PathL2CAP   = "/dev/l2cap0"
	PathVideo   = "/dev/video0"
	PathPCM     = "/dev/pcm0"
	PathGPU     = "/dev/gpu0"
	PathWLAN    = "/dev/wlan0"
	PathIIO     = "/dev/iio0"
	PathNFC     = "/dev/nfc0"
	PathThermal = "/dev/thermal0"
)

func openDesc(family, path, res string) *dsl.CallDesc {
	return &dsl.CallDesc{
		Name: "open$" + family, Class: dsl.ClassSyscall, Syscall: "open",
		Args:        []dsl.Field{{Name: "path", Type: dsl.Filename(path)}},
		Ret:         res,
		Weight:      0.30,
		CriticalArg: -1,
	}
}

func closeDesc(family, res string) *dsl.CallDesc {
	return &dsl.CallDesc{
		Name: "close$" + family, Class: dsl.ClassSyscall, Syscall: "close",
		Args:        []dsl.Field{{Name: "fd", Type: dsl.Resource(res)}},
		Weight:      0.10,
		CriticalArg: -1,
	}
}

func readDesc(family, res string) *dsl.CallDesc {
	return &dsl.CallDesc{
		Name: "read$" + family, Class: dsl.ClassSyscall, Syscall: "read",
		Args: []dsl.Field{
			{Name: "fd", Type: dsl.Resource(res)},
			{Name: "n", Type: dsl.Int(0, 4096)},
		},
		Weight:      0.20,
		CriticalArg: -1,
	}
}

func writeDesc(family, res string, bufLen int) *dsl.CallDesc {
	return &dsl.CallDesc{
		Name: "write$" + family, Class: dsl.ClassSyscall, Syscall: "write",
		Args: []dsl.Field{
			{Name: "fd", Type: dsl.Resource(res)},
			{Name: "data", Type: dsl.Buffer(bufLen)},
		},
		Weight:      0.30,
		CriticalArg: -1,
	}
}

func mmapDesc(family, res string) *dsl.CallDesc {
	return &dsl.CallDesc{
		Name: "mmap$" + family, Class: dsl.ClassSyscall, Syscall: "mmap",
		Args: []dsl.Field{
			{Name: "fd", Type: dsl.Resource(res)},
			{Name: "length", Type: dsl.Int(0, 1<<20)},
		},
		Weight:      0.15,
		CriticalArg: -1,
	}
}

// ioctlDesc builds an ioctl description; payload lists the fields after fd
// and request.
func ioctlDesc(name, res string, req uint64, weight float64, ret string, payload ...dsl.Field) *dsl.CallDesc {
	args := []dsl.Field{
		{Name: "fd", Type: dsl.Resource(res)},
		{Name: "req", Type: dsl.Const(req)},
	}
	args = append(args, payload...)
	return &dsl.CallDesc{
		Name: "ioctl$" + name, Class: dsl.ClassSyscall, Syscall: "ioctl",
		Args:        args,
		Ret:         ret,
		Weight:      weight,
		CriticalArg: 1,
	}
}

// chaffDescs generates the legacy/diagnostic ioctl descriptions of one
// family (reqs base|0x80..): syntactically ordinary entries whose kernel
// footprint is nearly empty. Their presence mirrors real vendor headers,
// where most of the command list is dead weight the fuzzer should learn
// not to spend budget on.
func chaffDescs(family, res string, reqBase uint64, n int) []*dsl.CallDesc {
	var out []*dsl.CallDesc
	for i := 0; i < n; i++ {
		req := reqBase | (ChaffReqBase + uint64(i))
		name := fmt.Sprintf("%s_DBG%d", strings.ToUpper(family), i)
		out = append(out, ioctlDesc(name, res, req, 0.30, "",
			dsl.Field{Name: "arg", Type: dsl.Int(0, 1<<32)}))
	}
	return out
}

// TCPCDescs describes the Type-C port controller surface.
func TCPCDescs() []*dsl.CallDesc {
	const res = "fd_tcpc"
	descs := []*dsl.CallDesc{
		openDesc("tcpc", PathTCPC, res),
		closeDesc("tcpc", res),
		readDesc("tcpc", res),
		ioctlDesc("TCPC_RESET", res, TCPCReset, 0.4, ""),
		ioctlDesc("TCPC_SET_MODE", res, TCPCSetMode, 0.7, "",
			dsl.Field{Name: "mode", Type: dsl.Flags(TCPCModeOff, TCPCModeUFP, TCPCModeDFP, TCPCModeDRP)}),
		ioctlDesc("TCPC_SET_VOLTAGE", res, TCPCSetVoltage, 0.6, "",
			dsl.Field{Name: "mv", Type: dsl.Int(0, 21000)}),
		ioctlDesc("TCPC_ENABLE_TOGGLE", res, TCPCEnableToggle, 0.5, ""),
		ioctlDesc("TCPC_GET_STATUS", res, TCPCGetStatus, 0.3, ""),
		ioctlDesc("TCPC_I2C_XFER", res, TCPCI2CXfer, 0.5, "",
			dsl.Field{Name: "addr", Type: dsl.Flags(RT1711Addr, 0x22, 0x10)},
			dsl.Field{Name: "reg", Type: dsl.Int(0, 0x120)},
			dsl.Field{Name: "val", Type: dsl.Int(0, 0xff)}),
		ioctlDesc("TCPC_PROBE", res, TCPCProbeChip, 0.5, "",
			dsl.Field{Name: "addr", Type: dsl.Flags(RT1711Addr, 0x22, 0x10)}),
		ioctlDesc("TCPC_SET_ALERT", res, TCPCSetAlert, 0.4, "",
			dsl.Field{Name: "mask", Type: dsl.Int(0, 0xffff)}),
		ioctlDesc("TCPC_ATTACH", res, TCPCAttach, 0.5, ""),
		ioctlDesc("TCPC_DETACH", res, TCPCDetach, 0.3, ""),
		ioctlDesc("TCPC_VBUS_ON", res, TCPCVbusOn, 0.5, ""),
		ioctlDesc("TCPC_VBUS_OFF", res, TCPCVbusOff, 0.3, ""),
	}
	return append(descs, chaffDescs("tcpc", "fd_tcpc", 0xa100, 10)...)
}

// HCIDescs describes the Bluetooth HCI surface.
func HCIDescs() []*dsl.CallDesc {
	const res = "fd_hci"
	descs := []*dsl.CallDesc{
		openDesc("hci", PathHCI, res),
		closeDesc("hci", res),
		readDesc("hci", res),
		writeDesc("hci", res, 64),
		ioctlDesc("HCI_UP", res, HCIUp, 0.7, ""),
		ioctlDesc("HCI_DOWN", res, HCIDown, 0.4, ""),
		ioctlDesc("HCI_RESET", res, HCIResetCmd, 0.3, ""),
		ioctlDesc("HCI_READ_CODECS", res, HCIReadCodecs, 0.5, ""),
		ioctlDesc("HCI_SET_SCAN", res, HCISetScan, 0.5, "",
			dsl.Field{Name: "mode", Type: dsl.Flags(0, HCIScanPage, HCIScanInquiry, HCIScanPage|HCIScanInquiry)}),
		ioctlDesc("HCI_CREATE_CONN", res, HCICreateConn, 0.6, "hci_handle",
			dsl.Field{Name: "peer", Type: dsl.Int(1, 0xffff)},
			dsl.Field{Name: "flags", Type: dsl.Int(0, 0x10000)}),
		ioctlDesc("HCI_ACCEPT", res, HCIAcceptConn, 0.5, "hci_handle"),
		ioctlDesc("HCI_DISCONN", res, HCIDisconn, 0.4, "",
			dsl.Field{Name: "handle", Type: dsl.Resource("hci_handle")}),
		ioctlDesc("HCI_SET_NAME", res, HCISetName, 0.3, "",
			dsl.Field{Name: "name", Type: dsl.Buffer(64)}),
		ioctlDesc("HCI_INQUIRY", res, HCIInquiry, 0.4, ""),
	}
	return append(descs, chaffDescs("hci", "fd_hci", 0xa200, 10)...)
}

// L2CAPDescs describes the L2CAP channel surface.
func L2CAPDescs() []*dsl.CallDesc {
	const res = "fd_l2cap"
	descs := []*dsl.CallDesc{
		openDesc("l2cap", PathL2CAP, res),
		closeDesc("l2cap", res),
		readDesc("l2cap", res),
		writeDesc("l2cap", res, 256),
		ioctlDesc("L2CAP_CONNECT", res, L2capConnect, 0.6, "",
			dsl.Field{Name: "psm", Type: dsl.Int(0, 0x10001)}),
		ioctlDesc("L2CAP_CONFIG", res, L2capConfig, 0.5, "",
			dsl.Field{Name: "flags", Type: dsl.Int(0, 0xff)}),
		ioctlDesc("L2CAP_DISCONNECT", res, L2capDisconnect, 0.5, ""),
		ioctlDesc("L2CAP_SET_MTU", res, L2capSetMTU, 0.4, "",
			dsl.Field{Name: "mtu", Type: dsl.Int(0, 70000)}),
		ioctlDesc("L2CAP_GET_INFO", res, L2capGetInfo, 0.3, ""),
	}
	return append(descs, chaffDescs("l2cap", "fd_l2cap", 0xa300, 10)...)
}

// V4L2Descs describes the video-capture surface.
func V4L2Descs() []*dsl.CallDesc {
	const res = "fd_video"
	descs := []*dsl.CallDesc{
		openDesc("video", PathVideo, res),
		closeDesc("video", res),
		readDesc("video", res),
		mmapDesc("video", res),
		ioctlDesc("VIDIOC_QUERYCAP", res, VidiocQuerycap, 0.5, "",
			dsl.Field{Name: "reserved", Type: dsl.Int(0, 4)}),
		ioctlDesc("VIDIOC_S_FMT", res, VidiocSFmt, 0.7, "",
			dsl.Field{Name: "width", Type: dsl.Int(0, 9000)},
			dsl.Field{Name: "height", Type: dsl.Int(0, 9000)},
			dsl.Field{Name: "pixfmt", Type: dsl.Flags(PixFmtYUYV, PixFmtNV12, PixFmtMJPG, PixFmtRGB3, 0)}),
		ioctlDesc("VIDIOC_G_FMT", res, VidiocGFmt, 0.3, ""),
		ioctlDesc("VIDIOC_REQBUFS", res, VidiocReqbufs, 0.6, "",
			dsl.Field{Name: "count", Type: dsl.Int(0, 40)}),
		ioctlDesc("VIDIOC_QBUF", res, VidiocQbuf, 0.6, "",
			dsl.Field{Name: "index", Type: dsl.Int(0, 40)}),
		ioctlDesc("VIDIOC_DQBUF", res, VidiocDqbuf, 0.5, ""),
		ioctlDesc("VIDIOC_STREAMON", res, VidiocStreamon, 0.6, ""),
		ioctlDesc("VIDIOC_STREAMOFF", res, VidiocStreamoff, 0.4, ""),
		ioctlDesc("VIDIOC_S_CTRL", res, VidiocSCtrl, 0.4, "",
			dsl.Field{Name: "id", Type: dsl.Int(0, 70)},
			dsl.Field{Name: "val", Type: dsl.Int(0, 1<<32)}),
		ioctlDesc("VIDIOC_S_PARM", res, VidiocSParm, 0.3, "",
			dsl.Field{Name: "fps", Type: dsl.Int(0, 260)}),
	}
	return append(descs, chaffDescs("video", "fd_video", 0xa400, 10)...)
}

// AudioDescs describes the PCM surface.
func AudioDescs() []*dsl.CallDesc {
	const res = "fd_pcm"
	descs := []*dsl.CallDesc{
		openDesc("pcm", PathPCM, res),
		closeDesc("pcm", res),
		readDesc("pcm", res),
		writeDesc("pcm", res, 1024),
		ioctlDesc("PCM_HW_PARAMS", res, PCMHwParams, 0.7, "",
			dsl.Field{Name: "rate", Type: dsl.Flags(8000, 16000, 44100, 48000, 96000, 192000, 11025)},
			dsl.Field{Name: "channels", Type: dsl.Int(0, 10)},
			dsl.Field{Name: "period", Type: dsl.Int(0, 70000)},
			dsl.Field{Name: "flags", Type: dsl.Int(0, 1<<17)}),
		ioctlDesc("PCM_PREPARE", res, PCMPrepare, 0.6, ""),
		ioctlDesc("PCM_START", res, PCMStart, 0.6, ""),
		ioctlDesc("PCM_STOP", res, PCMStop, 0.4, ""),
		ioctlDesc("PCM_DRAIN", res, PCMDrain, 0.5, ""),
		ioctlDesc("PCM_GET_POS", res, PCMGetPos, 0.3, ""),
		ioctlDesc("PCM_SET_VOL", res, PCMSetVol, 0.3, "",
			dsl.Field{Name: "vol", Type: dsl.Int(0, 110)}),
		ioctlDesc("PCM_PAUSE", res, PCMPause, 0.3, ""),
	}
	return append(descs, chaffDescs("pcm", "fd_pcm", 0xa500, 10)...)
}

// GPUDescs describes the render-node surface.
func GPUDescs() []*dsl.CallDesc {
	const res = "fd_gpu"
	descs := []*dsl.CallDesc{
		openDesc("gpu", PathGPU, res),
		closeDesc("gpu", res),
		mmapDesc("gpu", res),
		ioctlDesc("GPU_ALLOC", res, GPUAlloc, 0.7, "gpu_handle",
			dsl.Field{Name: "size", Type: dsl.Int(0, 1<<24+4096)}),
		ioctlDesc("GPU_FREE", res, GPUFree, 0.4, "",
			dsl.Field{Name: "handle", Type: dsl.Resource("gpu_handle")}),
		ioctlDesc("GPU_MAP", res, GPUMapBuf, 0.5, "",
			dsl.Field{Name: "handle", Type: dsl.Resource("gpu_handle")}),
		ioctlDesc("GPU_SUBMIT", res, GPUSubmit, 0.7, "gpu_fence",
			dsl.Field{Name: "handle", Type: dsl.Resource("gpu_handle")},
			dsl.Field{Name: "stream", Type: dsl.Buffer(64)}),
		ioctlDesc("GPU_WAIT", res, GPUWait, 0.4, "",
			dsl.Field{Name: "fence", Type: dsl.Resource("gpu_fence")}),
		ioctlDesc("GPU_GET_PARAM", res, GPUGetParam, 0.3, "",
			dsl.Field{Name: "param", Type: dsl.Int(0, 6)}),
		ioctlDesc("GPU_SET_CTX", res, GPUSetCtx, 0.3, "",
			dsl.Field{Name: "prio", Type: dsl.Int(0, 5)}),
	}
	return append(descs, chaffDescs("gpu", "fd_gpu", 0xa600, 10)...)
}

// WLANDescs describes the Wi-Fi station surface.
func WLANDescs() []*dsl.CallDesc {
	const res = "fd_wlan"
	descs := []*dsl.CallDesc{
		openDesc("wlan", PathWLAN, res),
		closeDesc("wlan", res),
		readDesc("wlan", res),
		writeDesc("wlan", res, 2304),
		ioctlDesc("WLAN_SCAN", res, WlanScan, 0.6, ""),
		ioctlDesc("WLAN_ASSOC", res, WlanAssoc, 0.6, "",
			dsl.Field{Name: "bssid", Type: dsl.Int(0, 1<<32)}),
		ioctlDesc("WLAN_DISASSOC", res, WlanDisassoc, 0.4, ""),
		ioctlDesc("WLAN_SET_RATE", res, WlanSetRate, 0.5, "",
			dsl.Field{Name: "mask", Type: dsl.Int(0, 0x10010)}),
		ioctlDesc("WLAN_GET_LINK", res, WlanGetLink, 0.3, ""),
		ioctlDesc("WLAN_SET_POWER", res, WlanSetPower, 0.3, "",
			dsl.Field{Name: "dbm", Type: dsl.Int(0, 40)}),
		ioctlDesc("WLAN_SET_CHAN", res, WlanSetChan, 0.4, "",
			dsl.Field{Name: "chan", Type: dsl.Int(0, 16)}),
	}
	return append(descs, chaffDescs("wlan", "fd_wlan", 0xa700, 10)...)
}

// SensorDescs describes the IIO sensor-hub surface.
func SensorDescs() []*dsl.CallDesc {
	const res = "fd_iio"
	descs := []*dsl.CallDesc{
		openDesc("iio", PathIIO, res),
		closeDesc("iio", res),
		readDesc("iio", res),
		ioctlDesc("IIO_ENABLE", res, IIOEnable, 0.6, "",
			dsl.Field{Name: "chan", Type: dsl.Int(0, 10)}),
		ioctlDesc("IIO_DISABLE", res, IIODisable, 0.4, "",
			dsl.Field{Name: "chan", Type: dsl.Int(0, 10)}),
		ioctlDesc("IIO_SET_FREQ", res, IIOSetFreq, 0.5, "",
			dsl.Field{Name: "hz", Type: dsl.Int(0, 1100)}),
		ioctlDesc("IIO_TRIGGER", res, IIOTrigger, 0.5, ""),
		ioctlDesc("IIO_GET_INFO", res, IIOGetInfo, 0.3, ""),
	}
	return append(descs, chaffDescs("iio", "fd_iio", 0xa800, 10)...)
}

// NFCDescs describes the NFC controller surface.
func NFCDescs() []*dsl.CallDesc {
	const res = "fd_nfc"
	descs := []*dsl.CallDesc{
		openDesc("nfc", PathNFC, res),
		closeDesc("nfc", res),
		ioctlDesc("NFC_POWER", res, NFCPower, 0.6, "",
			dsl.Field{Name: "on", Type: dsl.Int(0, 2)}),
		ioctlDesc("NFC_FW_DNLD", res, NFCFwDnld, 0.4, "",
			dsl.Field{Name: "fw", Type: dsl.Buffer(128)}),
		ioctlDesc("NFC_RAW_XFER", res, NFCRawXfer, 0.5, "",
			dsl.Field{Name: "frame", Type: dsl.Buffer(260)}),
		ioctlDesc("NFC_GET_INFO", res, NFCGetInfo, 0.3, ""),
	}
	return append(descs, chaffDescs("nfc", "fd_nfc", 0xa900, 10)...)
}

// ThermalDescs describes the thermal-zone surface.
func ThermalDescs() []*dsl.CallDesc {
	const res = "fd_thermal"
	descs := []*dsl.CallDesc{
		openDesc("thermal", PathThermal, res),
		closeDesc("thermal", res),
		ioctlDesc("THERMAL_GET_TEMP", res, ThermalGetTemp, 0.4, "",
			dsl.Field{Name: "zone", Type: dsl.Int(0, 6)}),
		ioctlDesc("THERMAL_SET_TRIP", res, ThermalSetTrip, 0.4, "",
			dsl.Field{Name: "zone", Type: dsl.Int(0, 6)},
			dsl.Field{Name: "temp", Type: dsl.Int(0, 130000)}),
		ioctlDesc("THERMAL_SET_POLICY", res, ThermalSetPolicy, 0.3, "",
			dsl.Field{Name: "policy", Type: dsl.Int(0, 4)}),
	}
	return append(descs, chaffDescs("thermal", "fd_thermal", 0xaa00, 10)...)
}

// AllDescs returns the syscall descriptions for every driver family, the
// full static description set a device target starts from.
func AllDescs() []*dsl.CallDesc {
	var out []*dsl.CallDesc
	out = append(out, TCPCDescs()...)
	out = append(out, HCIDescs()...)
	out = append(out, L2CAPDescs()...)
	out = append(out, V4L2Descs()...)
	out = append(out, AudioDescs()...)
	out = append(out, GPUDescs()...)
	out = append(out, WLANDescs()...)
	out = append(out, SensorDescs()...)
	out = append(out, NFCDescs()...)
	out = append(out, ThermalDescs()...)
	return out
}
