package drivers

import (
	"errors"
	"strings"
	"testing"

	"droidfuzz/internal/bugs"
	"droidfuzz/internal/vkernel"
)

// rig wires one driver into a fresh kernel and opens it.
type rig struct {
	t  *testing.T
	k  *vkernel.Kernel
	fd int
}

func newRig(t *testing.T, path string, drv vkernel.Driver) *rig {
	t.Helper()
	k := vkernel.New()
	k.RegisterDevice(path, drv)
	fd, err := k.Open(1, vkernel.OriginNative, path, 0)
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	return &rig{t: t, k: k, fd: fd}
}

func (r *rig) ioctl(req uint64, args ...uint64) (uint64, []byte, error) {
	var payload []byte
	for _, a := range args {
		payload = PutU64(payload, a)
	}
	return r.k.Ioctl(1, vkernel.OriginNative, r.fd, req, payload)
}

func (r *rig) ioctlBuf(req uint64, scalars []uint64, tail []byte) (uint64, []byte, error) {
	var payload []byte
	for _, a := range scalars {
		payload = PutU64(payload, a)
	}
	payload = append(payload, tail...)
	return r.k.Ioctl(1, vkernel.OriginNative, r.fd, req, payload)
}

// mustOK fails the test unless the ioctl succeeded.
func (r *rig) mustOK(req uint64, args ...uint64) uint64 {
	r.t.Helper()
	ret, _, err := r.ioctl(req, args...)
	if err != nil {
		r.t.Fatalf("ioctl %#x%v: %v", req, args, err)
	}
	return ret
}

// mustErr fails the test unless the ioctl returned the given errno.
func (r *rig) mustErr(want error, req uint64, args ...uint64) {
	r.t.Helper()
	if _, _, err := r.ioctl(req, args...); !errors.Is(err, want) {
		r.t.Fatalf("ioctl %#x%v err = %v, want %v", req, args, err, want)
	}
}

func (r *rig) crashTitles() []string {
	var out []string
	for _, c := range r.k.TakeCrashes() {
		out = append(out, c.Title)
	}
	return out
}

func hasTitle(titles []string, sub string) bool {
	for _, t := range titles {
		if strings.Contains(t, sub) {
			return true
		}
	}
	return false
}

// ---- helpers shared across payload tests ----

func TestArgHelpers(t *testing.T) {
	p := PutU64(nil, 0x1122334455667788)
	p = PutU64(p, 7)
	p = append(p, 0xaa, 0xbb)
	if ArgU64(p, 0) != 0x1122334455667788 {
		t.Fatal("ArgU64(0) wrong")
	}
	if ArgU64(p, 1) != 7 {
		t.Fatal("ArgU64(1) wrong")
	}
	if ArgU64(p, 2) != 0xbbaa { // partial tail zero-extended
		t.Fatalf("ArgU64(2) = %#x", ArgU64(p, 2))
	}
	if ArgU64(p, 5) != 0 {
		t.Fatal("out of range should be 0")
	}
	if got := ArgBytes(p, 2); len(got) != 2 || got[0] != 0xaa {
		t.Fatalf("ArgBytes = %v", got)
	}
	if ArgBytes(p, 9) != nil {
		t.Fatal("ArgBytes beyond end should be nil")
	}
}

func TestLogBucketMilestones(t *testing.T) {
	cases := map[uint64]uint32{0: 0, 1: 0, 2: 1, 3: 1, 4: 2, 8: 3, 1024: 10}
	for v, want := range cases {
		if got := logBucket(v, 16); got != want {
			t.Errorf("logBucket(%d) = %d, want %d", v, got, want)
		}
	}
	if logBucket(1<<40, 12) != 12 {
		t.Fatal("cap not applied")
	}
}

// ---- TCPC ----

func TestTCPCStateMachine(t *testing.T) {
	r := newRig(t, PathTCPC, NewTCPC(nil))
	r.mustErr(vkernel.EINVAL, TCPCSetMode, 9)
	r.mustErr(vkernel.EBUSY, TCPCSetVoltage, 5000) // mode off
	r.mustOK(TCPCSetMode, TCPCModeDFP)
	r.mustOK(TCPCSetVoltage, 5000)
	r.mustErr(vkernel.EINVAL, TCPCSetVoltage, 25000)
	r.mustErr(vkernel.EINVAL, TCPCEnableToggle) // needs DRP
	r.mustOK(TCPCSetMode, TCPCModeDRP)
	r.mustOK(TCPCEnableToggle)
	r.mustErr(vkernel.EBUSY, TCPCVbusOn) // not attached
	r.mustOK(TCPCAttach)
	r.mustOK(TCPCVbusOn)
	_, out, err := r.ioctl(TCPCGetStatus)
	if err != nil {
		t.Fatal(err)
	}
	if ArgU64(out, 0) != TCPCModeDRP || ArgU64(out, 1) != 5000 {
		t.Fatalf("status = %v", out)
	}
	if ArgU64(out, 2)&7 != 7 { // attached|vbus|toggling
		t.Fatalf("flags = %#x", ArgU64(out, 2))
	}
	r.mustOK(TCPCReset)
	_, out, _ = r.ioctl(TCPCGetStatus)
	if ArgU64(out, 0) != TCPCModeOff || ArgU64(out, 2) != 0 {
		t.Fatal("reset did not clear state")
	}
}

func TestTCPCI2CAndProbeValidation(t *testing.T) {
	r := newRig(t, PathTCPC, NewTCPC(nil))
	r.mustErr(vkernel.ENODEV, TCPCI2CXfer, 0x10, 0, 0)
	r.mustErr(vkernel.EINVAL, TCPCI2CXfer, RT1711Addr, 0x100, 0)
	if ret := r.mustOK(TCPCI2CXfer, RT1711Addr, 0x18, 0x5a); ret != 0x5a {
		t.Fatalf("i2c readback = %#x", ret)
	}
	r.mustErr(vkernel.ENODEV, TCPCProbeChip, 0x22)
	r.mustOK(TCPCProbeChip, RT1711Addr)
}

// tcpcProbeSetup drives the full bug №1 precondition chain.
func tcpcProbeSetup(r *rig) {
	r.mustOK(TCPCSetMode, TCPCModeDRP)
	r.mustOK(TCPCSetVoltage, 9000)
	r.mustOK(TCPCEnableToggle)
	r.mustOK(TCPCI2CXfer, RT1711Addr, RT1711InitReg, uint64(RT1711InitVal))
}

func TestTCPCBug1ProbeWarn(t *testing.T) {
	r := newRig(t, PathTCPC, NewTCPC(bugs.NewSet(bugs.TCPCProbe)))
	tcpcProbeSetup(r)
	if _, _, err := r.ioctl(TCPCProbeChip, RT1711Addr); !errors.Is(err, vkernel.EIO) {
		t.Fatalf("err = %v", err)
	}
	if !hasTitle(r.crashTitles(), "rt1711_i2c_probe") {
		t.Fatal("bug №1 did not fire")
	}
}

func TestTCPCBug1RequiresEveryGate(t *testing.T) {
	// Missing init register: no warning.
	r := newRig(t, PathTCPC, NewTCPC(bugs.NewSet(bugs.TCPCProbe)))
	r.mustOK(TCPCSetMode, TCPCModeDRP)
	r.mustOK(TCPCSetVoltage, 9000)
	r.mustOK(TCPCEnableToggle)
	r.mustOK(TCPCProbeChip, RT1711Addr)
	if len(r.crashTitles()) != 0 {
		t.Fatal("fired without init handshake")
	}
	// Bug disabled: full chain is harmless.
	r = newRig(t, PathTCPC, NewTCPC(nil))
	tcpcProbeSetup(r)
	r.mustOK(TCPCProbeChip, RT1711Addr)
	if len(r.crashTitles()) != 0 {
		t.Fatal("fired with bug disabled")
	}
}

func TestTCPCBug4VbusWarn(t *testing.T) {
	r := newRig(t, PathTCPC, NewTCPC(bugs.NewSet(bugs.TCPCVbus)))
	r.mustOK(TCPCSetMode, TCPCModeUFP)
	r.mustOK(TCPCSetVoltage, 5000)
	r.mustOK(TCPCSetAlert, 0x8)
	r.mustOK(TCPCAttach)
	if _, _, err := r.ioctl(TCPCVbusOn); !errors.Is(err, vkernel.EIO) {
		t.Fatalf("err = %v", err)
	}
	if !hasTitle(r.crashTitles(), "tcpc_vbus_regulator") {
		t.Fatal("bug №4 did not fire")
	}
	// Wrong voltage: harmless.
	r = newRig(t, PathTCPC, NewTCPC(bugs.NewSet(bugs.TCPCVbus)))
	r.mustOK(TCPCSetMode, TCPCModeUFP)
	r.mustOK(TCPCSetVoltage, 9000)
	r.mustOK(TCPCSetAlert, 0x8)
	r.mustOK(TCPCAttach)
	r.mustOK(TCPCVbusOn)
	if len(r.crashTitles()) != 0 {
		t.Fatal("fired at wrong voltage")
	}
}

// ---- HCI ----

func TestHCIUpDownCodecs(t *testing.T) {
	r := newRig(t, PathHCI, NewHCI(nil))
	r.mustErr(vkernel.ENODEV, HCIDown)
	r.mustOK(HCIUp)
	r.mustErr(vkernel.EBUSY, HCIUp)
	_, codecs, err := r.ioctl(HCIReadCodecs)
	if err != nil || len(codecs) != 16 {
		t.Fatalf("codecs = %v/%v", codecs, err)
	}
	r.mustOK(HCIDown)
	r.mustErr(vkernel.ENODEV, HCIReadCodecs) // table cleared on clean down
}

func TestHCIBug7StaleCodecTable(t *testing.T) {
	r := newRig(t, PathHCI, NewHCI(bugs.NewSet(bugs.HCICodecs)))
	r.mustOK(HCIUp)
	r.mustOK(HCISetScan, HCIScanInquiry)
	// The inquiry must go down as a real HCI command packet.
	op := HCIOpInquiry
	pkt := []byte{byte(op), byte(op >> 8), 0x33}
	if _, err := r.k.Write(1, vkernel.OriginNative, r.fd, pkt); err != nil {
		t.Fatal(err)
	}
	r.mustOK(HCIDown)
	if _, _, err := r.ioctl(HCIReadCodecs); !errors.Is(err, vkernel.EIO) {
		t.Fatalf("err = %v", err)
	}
	if !r.k.Wedged() {
		t.Fatal("KASAN should wedge")
	}
	if !hasTitle(r.crashTitles(), "hci_read_supported_codecs") {
		t.Fatal("bug №7 did not fire")
	}
}

func TestHCIBug7NeedsInquiryPacket(t *testing.T) {
	r := newRig(t, PathHCI, NewHCI(bugs.NewSet(bugs.HCICodecs)))
	r.mustOK(HCIUp)
	r.mustOK(HCISetScan, HCIScanInquiry)
	// No inquiry command packet: down clears the table correctly.
	r.mustOK(HCIDown)
	r.mustErr(vkernel.ENODEV, HCIReadCodecs)
	if len(r.crashTitles()) != 0 {
		t.Fatal("fired without inquiry")
	}
}

func TestHCIConnLifecycle(t *testing.T) {
	r := newRig(t, PathHCI, NewHCI(nil))
	r.mustErr(vkernel.ENODEV, HCICreateConn, 5, 0)
	r.mustOK(HCIUp)
	r.mustErr(vkernel.EINVAL, HCICreateConn, 5, 0xffff) // reserved flag bits
	h := r.mustOK(HCICreateConn, 5, 0)
	if h == 0 {
		t.Fatal("no handle")
	}
	got := r.mustOK(HCIAcceptConn)
	if got != h {
		t.Fatalf("accepted %d, want %d", got, h)
	}
	r.mustOK(HCIDisconn, h)
	r.mustErr(vkernel.ENOENT, HCIDisconn, h)
	r.mustErr(vkernel.EAGAIN, HCIAcceptConn)
}

func TestHCIBug11AcceptUnlinkUAF(t *testing.T) {
	r := newRig(t, PathHCI, NewHCI(bugs.NewSet(bugs.BTAcceptUnlink)))
	r.mustOK(HCIUp)
	h := r.mustOK(HCICreateConn, 5, HCIConnSSP)
	r.mustOK(HCIDisconn, h) // freed but (bug) still queued
	if _, _, err := r.ioctl(HCIAcceptConn); !errors.Is(err, vkernel.EIO) {
		t.Fatalf("err = %v", err)
	}
	if !hasTitle(r.crashTitles(), "bt_accept_unlink") {
		t.Fatal("bug №11 did not fire")
	}
}

func TestHCIBug11NeedsSSP(t *testing.T) {
	r := newRig(t, PathHCI, NewHCI(bugs.NewSet(bugs.BTAcceptUnlink)))
	r.mustOK(HCIUp)
	h := r.mustOK(HCICreateConn, 5, 0) // plain connection
	r.mustOK(HCIDisconn, h)
	r.mustErr(vkernel.EAGAIN, HCIAcceptConn) // correctly unlinked
	if len(r.crashTitles()) != 0 {
		t.Fatal("fired without SSP flag")
	}
}

// ---- L2CAP ----

func TestL2CAPChannelLifecycle(t *testing.T) {
	r := newRig(t, PathL2CAP, NewL2CAP(nil))
	r.mustErr(vkernel.EINVAL, L2capConnect, 0)
	r.mustOK(L2capConnect, 0x1001)
	r.mustOK(L2capConfig, 0)
	r.mustErr(vkernel.EBUSY, L2capConnect, 0x1001)
	if n, err := r.k.Write(1, vkernel.OriginNative, r.fd, make([]byte, 100)); err != nil || n != 100 {
		t.Fatalf("write = %d/%v", n, err)
	}
	r.mustOK(L2capSetMTU, 1024)
	r.mustErr(vkernel.EINVAL, L2capSetMTU, 10)
	r.mustOK(L2capDisconnect)
	r.mustErr(vkernel.ENOENT, L2capDisconnect)
}

func TestL2CAPBug8DoubleDisconnect(t *testing.T) {
	r := newRig(t, PathL2CAP, NewL2CAP(bugs.NewSet(bugs.L2capDisconn)))
	// Shallow: a single disconnect on a closed channel suffices.
	if _, _, err := r.ioctl(L2capDisconnect); !errors.Is(err, vkernel.EIO) {
		t.Fatalf("err = %v", err)
	}
	if !hasTitle(r.crashTitles(), "l2cap_send_disconn_req") {
		t.Fatal("bug №8 did not fire")
	}
}

// ---- V4L2 ----

func v4l2StartStreaming(r *rig) {
	r.mustOK(VidiocSFmt, 640, 480, PixFmtNV12)
	r.mustOK(VidiocReqbufs, 4)
	for i := uint64(0); i < 4; i++ {
		r.mustOK(VidiocQbuf, i)
	}
	r.mustOK(VidiocStreamon)
}

func TestV4L2StreamingPipeline(t *testing.T) {
	r := newRig(t, PathVideo, NewV4L2(nil))
	r.mustErr(vkernel.EINVAL, VidiocSFmt, 0, 480, PixFmtNV12)
	r.mustErr(vkernel.EINVAL, VidiocSFmt, 641, 480, PixFmtNV12) // alignment
	r.mustErr(vkernel.EINVAL, VidiocSFmt, 640, 480, 0x1234)     // bad fourcc
	r.mustErr(vkernel.EINVAL, VidiocStreamon)                   // no buffers
	v4l2StartStreaming(r)
	r.mustErr(vkernel.EBUSY, VidiocStreamon)
	r.mustErr(vkernel.EBUSY, VidiocSFmt, 640, 480, PixFmtNV12)
	idx := r.mustOK(VidiocDqbuf)
	if idx != 0 {
		t.Fatalf("dqbuf = %d", idx)
	}
	r.mustOK(VidiocQbuf, idx)
	r.mustOK(VidiocStreamoff)
	r.mustErr(vkernel.EINVAL, VidiocDqbuf)
}

func TestV4L2Bug12QuerycapWarn(t *testing.T) {
	r := newRig(t, PathVideo, NewV4L2(bugs.NewSet(bugs.V4LQuerycap)))
	v4l2StartStreaming(r)
	if _, _, err := r.ioctl(VidiocQuerycap, 1); !errors.Is(err, vkernel.EIO) {
		t.Fatalf("err = %v", err)
	}
	if !hasTitle(r.crashTitles(), "v4l_querycap") {
		t.Fatal("bug №12 did not fire")
	}
	// Zero reserved field: harmless even while streaming.
	r = newRig(t, PathVideo, NewV4L2(bugs.NewSet(bugs.V4LQuerycap)))
	v4l2StartStreaming(r)
	r.mustOK(VidiocQuerycap, 0)
	if len(r.crashTitles()) != 0 {
		t.Fatal("fired with zero reserved")
	}
}

// ---- Audio ----

func TestAudioPCMLifecycle(t *testing.T) {
	r := newRig(t, PathPCM, NewAudio(nil))
	r.mustErr(vkernel.EINVAL, PCMHwParams, 12345, 2, 1024, 0) // bad rate
	r.mustErr(vkernel.EINVAL, PCMHwParams, 48000, 0, 1024, 0) // bad channels
	r.mustErr(vkernel.EINVAL, PCMHwParams, 48000, 2, 0, 0)    // zero period
	r.mustOK(PCMHwParams, 48000, 2, 1024, 0)
	r.mustErr(vkernel.EINVAL, PCMStart) // not prepared
	r.mustOK(PCMPrepare)
	r.mustOK(PCMStart)
	if _, err := r.k.Write(1, vkernel.OriginNative, r.fd, make([]byte, 2048)); err != nil {
		t.Fatal(err)
	}
	r.mustOK(PCMDrain)
	_, out, _ := r.ioctl(PCMGetPos)
	if ArgU64(out, 1) != 0 {
		t.Fatal("drain left frames buffered")
	}
	r.mustOK(PCMStart)
	r.mustOK(PCMPause)
	r.mustOK(PCMPause) // resume
	r.mustOK(PCMStop)
}

func TestAudioMagicPathRejectsZeroPeriodWithoutBug(t *testing.T) {
	r := newRig(t, PathPCM, NewAudio(nil))
	r.mustErr(vkernel.EINVAL, PCMHwParams, 48000, 2, 0, AudioLowLatencyMagic)
}

func TestAudioBug5DrainHang(t *testing.T) {
	r := newRig(t, PathPCM, NewAudio(bugs.NewSet(bugs.AudioHang)))
	r.k.StepBudget = 1000 // keep the test fast
	r.mustOK(PCMHwParams, 48000, 2, 0, AudioLowLatencyMagic)
	r.mustOK(PCMPrepare)
	r.mustOK(PCMStart)
	if _, err := r.k.Write(1, vkernel.OriginNative, r.fd, make([]byte, 256)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.ioctl(PCMDrain); !errors.Is(err, vkernel.EIO) {
		t.Fatalf("err = %v", err)
	}
	if !r.k.Wedged() {
		t.Fatal("hang did not wedge kernel")
	}
	if !hasTitle(r.crashTitles(), "audio_pcm_drain") {
		t.Fatal("bug №5 did not fire")
	}
}

// ---- GPU ----

func gpuStream(depth, nCmds byte, ops ...byte) []byte {
	magic := GPUCmdMagic
	s := []byte{
		byte(magic), byte(magic >> 8), byte(magic >> 16), byte(magic >> 24),
		depth, nCmds, 0, 0,
	}
	return append(s, ops...)
}

func TestGPUBufferAndSubmit(t *testing.T) {
	r := newRig(t, PathGPU, NewGPU(nil))
	r.mustErr(vkernel.EINVAL, GPUAlloc, 0)
	h := r.mustOK(GPUAlloc, 4096)
	r.mustOK(GPUMapBuf, h)
	r.mustErr(vkernel.ENOENT, GPUMapBuf, 999)

	// Bad magic is rejected.
	if _, _, err := r.ioctlBuf(GPUSubmit, []uint64{h}, []byte("XXXXXXXX")); !errors.Is(err, vkernel.EFAULT) {
		t.Fatalf("bad magic err = %v", err)
	}
	fence, _, err := r.ioctlBuf(GPUSubmit, []uint64{h}, gpuStream(2, 2, 1, 2))
	if err != nil || fence != 1 {
		t.Fatalf("submit = %d/%v", fence, err)
	}
	r.mustOK(GPUWait, fence)
	r.mustErr(vkernel.EAGAIN, GPUWait, fence+5)
	r.mustOK(GPUFree, h)
	r.mustErr(vkernel.ENOENT, GPUFree, h)
}

func TestGPUDepthClampWithoutBug(t *testing.T) {
	r := newRig(t, PathGPU, NewGPU(nil))
	h := r.mustOK(GPUAlloc, 4096)
	if _, _, err := r.ioctlBuf(GPUSubmit, []uint64{h}, gpuStream(8, 0)); !errors.Is(err, vkernel.EINVAL) {
		t.Fatalf("err = %v", err)
	}
	if len(r.crashTitles()) != 0 {
		t.Fatal("clamped depth crashed")
	}
}

func TestGPUBug3LockdepSubclass(t *testing.T) {
	r := newRig(t, PathGPU, NewGPU(bugs.NewSet(bugs.LockdepSubclass)))
	h := r.mustOK(GPUAlloc, 4096)
	if _, _, err := r.ioctlBuf(GPUSubmit, []uint64{h}, gpuStream(9, 0)); !errors.Is(err, vkernel.EINVAL) {
		t.Fatalf("err = %v", err)
	}
	if !r.k.Wedged() {
		t.Fatal("BUG did not wedge")
	}
	if !hasTitle(r.crashTitles(), "looking up invalid subclass: 9") {
		t.Fatal("bug №3 did not fire")
	}
}

// ---- WLAN ----

func TestWLANAssociationFlow(t *testing.T) {
	r := newRig(t, PathWLAN, NewWLAN(nil))
	r.mustErr(vkernel.EAGAIN, WlanAssoc, 0x42) // must scan first
	r.mustOK(WlanScan)
	r.mustErr(vkernel.EINVAL, WlanAssoc, 0)
	r.mustOK(WlanAssoc, 0x42)
	r.mustErr(vkernel.EBUSY, WlanAssoc, 0x42)
	r.mustErr(vkernel.EBUSY, WlanSetChan, 6) // busy while associated
	if _, err := r.k.Write(1, vkernel.OriginNative, r.fd, make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	r.mustOK(WlanDisassoc)
	r.mustOK(WlanSetChan, 6)
}

func TestWLANBug10ReassocRateInit(t *testing.T) {
	// Any mask with the basic-rate nibble empty triggers on reassoc.
	for _, mask := range []uint64{0, 0xf0, 0xab0} {
		r := newRig(t, PathWLAN, NewWLAN(bugs.NewSet(bugs.RateInit)))
		r.mustOK(WlanScan)
		r.mustOK(WlanAssoc, 0x42)
		r.mustOK(WlanDisassoc)
		r.mustOK(WlanSetRate, mask)
		if _, _, err := r.ioctl(WlanAssoc, 0x42); !errors.Is(err, vkernel.EIO) {
			t.Fatalf("mask %#x err = %v", mask, err)
		}
		if !hasTitle(r.crashTitles(), "rate_control_rate_init") {
			t.Fatalf("bug №10 did not fire for mask %#x", mask)
		}
	}
	// Masks including a basic rate reassociate cleanly.
	r := newRig(t, PathWLAN, NewWLAN(bugs.NewSet(bugs.RateInit)))
	r.mustOK(WlanScan)
	r.mustOK(WlanAssoc, 0x42)
	r.mustOK(WlanDisassoc)
	r.mustOK(WlanSetRate, 0xf1)
	r.mustOK(WlanAssoc, 0x42)
	if len(r.crashTitles()) != 0 {
		t.Fatal("fired with basic rates present")
	}
}

func TestWLANBug10NeedsReassoc(t *testing.T) {
	r := newRig(t, PathWLAN, NewWLAN(bugs.NewSet(bugs.RateInit)))
	r.mustOK(WlanScan)
	r.mustOK(WlanSetRate, 0xf0)
	// First-time association takes the validated path: plain EINVAL.
	r.mustErr(vkernel.EINVAL, WlanAssoc, 0x42)
	if len(r.crashTitles()) != 0 {
		t.Fatal("fired on first association")
	}
}

// ---- Sensors / NFC / Thermal ----

func TestSensorHub(t *testing.T) {
	r := newRig(t, PathIIO, NewSensor(nil))
	r.mustErr(vkernel.EINVAL, IIOEnable, 9)
	r.mustErr(vkernel.EINVAL, IIOTrigger) // nothing enabled
	r.mustOK(IIOEnable, 2)
	r.mustOK(IIOSetFreq, 100)
	r.mustErr(vkernel.EINVAL, IIOSetFreq, 0)
	if n := r.mustOK(IIOTrigger); n != 1 {
		t.Fatalf("trigger count = %d", n)
	}
	if data, err := r.k.Read(1, vkernel.OriginNative, r.fd, 16); err != nil || len(data) != 16 {
		t.Fatalf("read = %v/%v", data, err)
	}
	r.mustOK(IIODisable, 2)
	if _, err := r.k.Read(1, vkernel.OriginNative, r.fd, 16); !errors.Is(err, vkernel.EAGAIN) {
		t.Fatal("read with all channels off should EAGAIN")
	}
}

func TestNFCController(t *testing.T) {
	r := newRig(t, PathNFC, NewNFC(nil))
	r.mustErr(vkernel.ENODEV, NFCRawXfer) // powered off
	r.mustOK(NFCPower, 1)
	r.mustErr(vkernel.EBUSY, NFCFwDnld) // powered on
	if _, _, err := r.ioctlBuf(NFCRawXfer, nil, []byte{0x00, 0xa4}); err != nil {
		t.Fatal(err)
	}
	r.mustOK(NFCPower, 0)
	if _, _, err := r.ioctlBuf(NFCFwDnld, nil, []byte{0x4e, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.ioctlBuf(NFCFwDnld, nil, []byte{0xff, 1, 2, 3}); !errors.Is(err, vkernel.EINVAL) {
		t.Fatal("bad fw header accepted")
	}
}

func TestThermalZones(t *testing.T) {
	r := newRig(t, PathThermal, NewThermal(nil))
	temp := r.mustOK(ThermalGetTemp, 0)
	if temp == 0 {
		t.Fatal("zero temperature")
	}
	r.mustErr(vkernel.EINVAL, ThermalGetTemp, 9)
	r.mustOK(ThermalSetTrip, 1, 85000)
	r.mustErr(vkernel.EINVAL, ThermalSetTrip, 1, 500000)
	r.mustOK(ThermalSetPolicy, 2)
	r.mustErr(vkernel.EINVAL, ThermalSetPolicy, 7)
}

// ---- Descriptions ----

func TestAllDescsValid(t *testing.T) {
	for _, d := range AllDescs() {
		if err := d.Validate(); err != nil {
			t.Errorf("%s: %v", d.Name, err)
		}
	}
}

func TestDescsRequestCodesUnique(t *testing.T) {
	seen := make(map[uint64]string)
	for _, d := range AllDescs() {
		if d.Syscall != "ioctl" {
			continue
		}
		req := d.Args[1].Type.Val
		if prev, dup := seen[req]; dup {
			t.Errorf("request %#x shared by %s and %s", req, prev, d.Name)
		}
		seen[req] = d.Name
	}
}
