package drivers

import "sort"

// Portable checkpoint export/import for every driver family. Each blob is
// an exported-field mirror of the checkpoint state in snapshot.go so it
// survives a gob round-trip; maps become slices sorted by key so the
// encoding is deterministic. Like checkpoint payloads, exported blobs are
// immutable once built — one blob may be imported into many clone twins,
// so Import converts back to the unexported state type and reuses Restore
// (which copies, never aliases).

// --- TCPC ---

// TCPCExport is the TCPC driver's portable checkpoint blob.
type TCPCExport struct {
	Mode      uint64
	VoltageMV uint64
	Toggling  bool
	Attached  bool
	AlertMask uint64
	VbusOn    bool
	Probed    bool
	I2CRegs   [256]byte
	Opens     int
}

// Export implements snap.Subsystem.
func (d *TCPCDriver) Export() any {
	st := d.Checkpoint().(*tcpcState)
	return &TCPCExport{
		Mode: st.mode, VoltageMV: st.voltageMV, Toggling: st.toggling,
		Attached: st.attached, AlertMask: st.alertMask, VbusOn: st.vbusOn,
		Probed: st.probed, I2CRegs: st.i2cRegs, Opens: st.opens,
	}
}

// Import implements snap.Subsystem.
func (d *TCPCDriver) Import(b any) {
	e := b.(*TCPCExport)
	d.Restore(&tcpcState{
		mode: e.Mode, voltageMV: e.VoltageMV, toggling: e.Toggling,
		attached: e.Attached, alertMask: e.AlertMask, vbusOn: e.VbusOn,
		probed: e.Probed, i2cRegs: e.I2CRegs, opens: e.Opens,
	})
	d.Touch()
}

// --- HCI ---

// HCIConnExport is one connection entry in an HCIExport.
type HCIConnExport struct {
	Handle uint64
	Peer   uint64
	SSP    bool
	State  uint64
	Obj    uint64
}

// HCIExport is the HCI driver's portable checkpoint blob.
type HCIExport struct {
	Up         bool
	ScanMode   uint64
	Inquiring  bool
	CodecTable uint64
	CodecStale bool
	Conns      []HCIConnExport // sorted by handle
	AcceptQ    []uint64
	NextHandle uint64
	Name       string
}

// Export implements snap.Subsystem.
func (d *HCIDriver) Export() any {
	st := d.Checkpoint().(*hciState)
	e := &HCIExport{
		Up: st.up, ScanMode: st.scanMode, Inquiring: st.inquiring,
		CodecTable: st.codecTable, CodecStale: st.codecStale,
		Conns:      make([]HCIConnExport, 0, len(st.conns)),
		NextHandle: st.nextHandle, Name: st.name,
	}
	for h, conn := range st.conns { //droidvet:nondet collect-then-sort map export
		e.Conns = append(e.Conns, HCIConnExport{
			Handle: h, Peer: conn.peer, SSP: conn.ssp,
			State: uint64(conn.state), Obj: conn.obj,
		})
	}
	sort.Slice(e.Conns, func(i, j int) bool { return e.Conns[i].Handle < e.Conns[j].Handle })
	if len(e.Conns) == 0 {
		e.Conns = nil // canonical: empty exports as nil (gob round-trip shape)
	}
	if st.acceptQ != nil {
		e.AcceptQ = append([]uint64(nil), st.acceptQ...)
	}
	return e
}

// Import implements snap.Subsystem.
func (d *HCIDriver) Import(b any) {
	e := b.(*HCIExport)
	conns := make(map[uint64]hciConnection, len(e.Conns))
	for _, ce := range e.Conns {
		conns[ce.Handle] = hciConnection{
			handle: ce.Handle, peer: ce.Peer, ssp: ce.SSP,
			state: hciConnState(ce.State), obj: ce.Obj,
		}
	}
	d.Restore(&hciState{
		up: e.Up, scanMode: e.ScanMode, inquiring: e.Inquiring,
		codecTable: e.CodecTable, codecStale: e.CodecStale,
		conns: conns, acceptQ: e.AcceptQ,
		nextHandle: e.NextHandle, name: e.Name,
	})
	d.Touch()
}

// --- L2CAP ---

// Export implements snap.Subsystem. All L2CAP state is per-fd and dies
// with the kernel fd table.
func (d *L2CAPDriver) Export() any { return nil }

// Import implements snap.Subsystem.
func (d *L2CAPDriver) Import(any) {}

// --- V4L2 ---

// V4L2Export is the V4L2 driver's portable checkpoint blob.
type V4L2Export struct {
	Width     uint64
	Height    uint64
	Pixfmt    uint64
	NBufs     uint64
	Queued    []uint64
	Streaming bool
	Frames    uint64
	CtrlIDs   []uint64 // sorted; CtrlVals is parallel
	CtrlVals  []uint64
}

// Export implements snap.Subsystem.
func (d *V4L2Driver) Export() any {
	st := d.Checkpoint().(*v4l2State)
	e := &V4L2Export{
		Width: st.width, Height: st.height, Pixfmt: st.pixfmt, NBufs: st.nbufs,
		Streaming: st.streaming, Frames: st.frames,
		CtrlIDs: make([]uint64, 0, len(st.ctrls)),
	}
	if st.queued != nil {
		e.Queued = append([]uint64(nil), st.queued...)
	}
	for id := range st.ctrls { //droidvet:nondet collect-then-sort map export
		e.CtrlIDs = append(e.CtrlIDs, id)
	}
	sort.Slice(e.CtrlIDs, func(i, j int) bool { return e.CtrlIDs[i] < e.CtrlIDs[j] })
	if len(e.CtrlIDs) == 0 {
		e.CtrlIDs = nil // canonical: empty exports as nil (gob round-trip shape)
		return e
	}
	e.CtrlVals = make([]uint64, len(e.CtrlIDs))
	for i, id := range e.CtrlIDs {
		e.CtrlVals[i] = st.ctrls[id]
	}
	return e
}

// Import implements snap.Subsystem.
func (d *V4L2Driver) Import(b any) {
	e := b.(*V4L2Export)
	ctrls := make(map[uint64]uint64, len(e.CtrlIDs))
	for i, id := range e.CtrlIDs {
		ctrls[id] = e.CtrlVals[i]
	}
	d.Restore(&v4l2State{
		width: e.Width, height: e.Height, pixfmt: e.Pixfmt, nbufs: e.NBufs,
		queued: e.Queued, streaming: e.Streaming, frames: e.Frames, ctrls: ctrls,
	})
	d.Touch()
}

// --- Audio ---

// AudioExport is the audio driver's portable checkpoint blob.
type AudioExport struct {
	State    uint64
	Rate     uint64
	Channels uint64
	Period   uint64
	Buffered uint64
	Volume   uint64
	Pos      uint64
}

// Export implements snap.Subsystem.
func (d *AudioDriver) Export() any {
	st := d.Checkpoint().(*audioState)
	return &AudioExport{
		State: uint64(st.state), Rate: st.rate, Channels: st.channels,
		Period: st.period, Buffered: st.buffered, Volume: st.volume, Pos: st.pos,
	}
}

// Import implements snap.Subsystem.
func (d *AudioDriver) Import(b any) {
	e := b.(*AudioExport)
	d.Restore(&audioState{
		state: pcmState(e.State), rate: e.Rate, channels: e.Channels,
		period: e.Period, buffered: e.Buffered, volume: e.Volume, pos: e.Pos,
	})
	d.Touch()
}

// --- GPU ---

// GPUExport is the GPU driver's portable checkpoint blob. Buffers and
// sizes share a key space, so one sorted handle slice indexes both.
type GPUExport struct {
	BufHandles []uint64 // sorted; BufRefs/BufSizes are parallel
	BufRefs    []uint64
	BufSizes   []uint64
	NextBuf    uint64
	Fence      uint64
	CtxPrio    uint64
	Submits    uint64
	MapCount   uint64
}

// Export implements snap.Subsystem.
func (d *GPUDriver) Export() any {
	st := d.Checkpoint().(*gpuState)
	e := &GPUExport{
		BufHandles: make([]uint64, 0, len(st.buffers)),
		NextBuf:    st.nextBuf, Fence: st.fence, CtxPrio: st.ctxPrio,
		Submits: st.submits, MapCount: st.mapCount,
	}
	for h := range st.buffers { //droidvet:nondet collect-then-sort map export
		e.BufHandles = append(e.BufHandles, h)
	}
	sort.Slice(e.BufHandles, func(i, j int) bool { return e.BufHandles[i] < e.BufHandles[j] })
	if len(e.BufHandles) == 0 {
		e.BufHandles = nil // canonical: empty exports as nil (gob round-trip shape)
		return e
	}
	e.BufRefs = make([]uint64, len(e.BufHandles))
	e.BufSizes = make([]uint64, len(e.BufHandles))
	for i, h := range e.BufHandles {
		e.BufRefs[i] = st.buffers[h]
		e.BufSizes[i] = st.sizes[h]
	}
	return e
}

// Import implements snap.Subsystem.
func (d *GPUDriver) Import(b any) {
	e := b.(*GPUExport)
	buffers := make(map[uint64]uint64, len(e.BufHandles))
	sizes := make(map[uint64]uint64, len(e.BufHandles))
	for i, h := range e.BufHandles {
		buffers[h] = e.BufRefs[i]
		sizes[h] = e.BufSizes[i]
	}
	d.Restore(&gpuState{
		buffers: buffers, sizes: sizes,
		nextBuf: e.NextBuf, fence: e.Fence, ctxPrio: e.CtxPrio,
		submits: e.Submits, mapCount: e.MapCount,
	})
	d.Touch()
}

// --- WLAN ---

// WLANExport is the WLAN driver's portable checkpoint blob.
type WLANExport struct {
	Scanned  bool
	Assoc    bool
	WasAssoc bool
	BSSID    uint64
	RateMask uint64
	Channel  uint64
	Power    uint64
	TxFrames uint64
}

// Export implements snap.Subsystem.
func (d *WLANDriver) Export() any {
	st := d.Checkpoint().(*wlanState)
	return &WLANExport{
		Scanned: st.scanned, Assoc: st.assoc, WasAssoc: st.wasAssoc,
		BSSID: st.bssid, RateMask: st.rateMask, Channel: st.channel,
		Power: st.power, TxFrames: st.txFrames,
	}
}

// Import implements snap.Subsystem.
func (d *WLANDriver) Import(b any) {
	e := b.(*WLANExport)
	d.Restore(&wlanState{
		scanned: e.Scanned, assoc: e.Assoc, wasAssoc: e.WasAssoc,
		bssid: e.BSSID, rateMask: e.RateMask, channel: e.Channel,
		power: e.Power, txFrames: e.TxFrames,
	})
	d.Touch()
}

// --- Sensor hub ---

// SensorExport is the sensor hub's portable checkpoint blob.
type SensorExport struct {
	Enabled  [8]bool
	Freq     uint64
	Triggers uint64
}

// Export implements snap.Subsystem.
func (d *SensorDriver) Export() any {
	st := d.Checkpoint().(*sensorState)
	return &SensorExport{Enabled: st.enabled, Freq: st.freq, Triggers: st.triggers}
}

// Import implements snap.Subsystem.
func (d *SensorDriver) Import(b any) {
	e := b.(*SensorExport)
	d.Restore(&sensorState{enabled: e.Enabled, freq: e.Freq, triggers: e.Triggers})
	d.Touch()
}

// --- NFC ---

// NFCExport is the NFC driver's portable checkpoint blob.
type NFCExport struct {
	Powered bool
	FwLen   uint64
}

// Export implements snap.Subsystem.
func (d *NFCDriver) Export() any {
	st := d.Checkpoint().(*nfcState)
	return &NFCExport{Powered: st.powered, FwLen: st.fwLen}
}

// Import implements snap.Subsystem.
func (d *NFCDriver) Import(b any) {
	e := b.(*NFCExport)
	d.Restore(&nfcState{powered: e.Powered, fwLen: e.FwLen})
	d.Touch()
}

// --- Thermal ---

// ThermalExport is the thermal driver's portable checkpoint blob.
type ThermalExport struct {
	Trips  [4]uint64
	Policy uint64
}

// Export implements snap.Subsystem.
func (d *ThermalDriver) Export() any {
	st := d.Checkpoint().(*thermalState)
	return &ThermalExport{Trips: st.trips, Policy: st.policy}
}

// Import implements snap.Subsystem.
func (d *ThermalDriver) Import(b any) {
	e := b.(*ThermalExport)
	d.Restore(&thermalState{trips: e.Trips, policy: e.Policy})
	d.Touch()
}

// --- Touch ---

// TouchExport is the touch controller's portable checkpoint blob.
type TouchExport struct {
	Calibrated bool
	Mode       uint64
	GridW      uint64
	GridH      uint64
	FwVersion  uint64
	Events     uint64
	SelfTests  uint64
}

// Export implements snap.Subsystem.
func (d *TouchDriver) Export() any {
	st := d.Checkpoint().(*touchState)
	return &TouchExport{
		Calibrated: st.calibrated, Mode: st.mode, GridW: st.gridW, GridH: st.gridH,
		FwVersion: st.fwVersion, Events: st.events, SelfTests: st.selfTests,
	}
}

// Import implements snap.Subsystem.
func (d *TouchDriver) Import(b any) {
	e := b.(*TouchExport)
	d.Restore(&touchState{
		calibrated: e.Calibrated, mode: e.Mode, gridW: e.GridW, gridH: e.GridH,
		fwVersion: e.FwVersion, events: e.Events, selfTests: e.SelfTests,
	})
	d.Touch()
}

// --- Runtime-parameter knobs ---

// KnobsExport is the portable checkpoint blob for one driver's sysfs
// knobs. Slots are positional: spec tables are model-independent per
// family, so index i means the same knob on every same-model twin.
type KnobsExport struct {
	Family string
	Ints   []uint64
	Strs   []string
}

// Export implements snap.Subsystem.
func (ks *Knobs) Export() any {
	st := ks.Checkpoint().(*knobsState)
	return &KnobsExport{
		Family: ks.family,
		Ints:   append([]uint64(nil), st.ints...),
		Strs:   append([]string(nil), st.strs...),
	}
}

// Import implements snap.Subsystem.
func (ks *Knobs) Import(b any) {
	e := b.(*KnobsExport)
	if e.Family != ks.family || len(e.Ints) != len(ks.specs) {
		panic("drivers: knob checkpoint does not match this driver family")
	}
	ks.Restore(&knobsState{
		ints: append([]uint64(nil), e.Ints...),
		strs: append([]string(nil), e.Strs...),
	})
	ks.Touch()
}
