package drivers

import (
	"sync"

	"droidfuzz/internal/bugs"
	"droidfuzz/internal/snap"
	"droidfuzz/internal/vkernel"
)

// GPU ioctl request codes (DRM-like render node).
const (
	GPUAlloc    uint64 = 0xa601
	GPUFree     uint64 = 0xa602
	GPUMapBuf   uint64 = 0xa603
	GPUSubmit   uint64 = 0xa604
	GPUWait     uint64 = 0xa605
	GPUGetParam uint64 = 0xa606
	GPUSetCtx   uint64 = 0xa607
)

// GPUCmdMagic is the command-stream header magic ("GPUC"); the graphics HAL
// emits well-formed streams, which is what makes the deep submit paths —
// including the lockdep bug №3 — reachable mainly through HAL interaction.
const GPUCmdMagic uint32 = 0x43555047

// GPUDriver models a render-node GPU: buffer-object management on the KASAN
// heap, command-stream submission, and a per-submit lockdep-validated
// reservation lock whose subclass derives from the stream's nesting depth
// (bug №3: "BUG: looking up invalid subclass: NUM").
type GPUDriver struct {
	bugs bugs.Set //droidvet:checkpoint ephemeral injected fault set, fixed at construction
	snap.Dirty

	mu       sync.Mutex
	buffers  map[uint64]uint64 // handle -> heap object
	sizes    map[uint64]uint64
	nextBuf  uint64
	fence    uint64
	ctxPrio  uint64
	submits  uint64
	mapCount uint64

	knobs *Knobs
}

// NewGPU returns the driver with the given enabled bug set.
func NewGPU(b bugs.Set) *GPUDriver {
	return &GPUDriver{
		bugs:    b,
		buffers: make(map[uint64]uint64),
		sizes:   make(map[uint64]uint64),
		nextBuf: 1,
		knobs:   NewKnobs("gpu", gpuKnobSpecs),
	}
}

// Name implements vkernel.Driver.
func (d *GPUDriver) Name() string { return "gpu" }

// Knobs returns the runtime-parameter state.
func (d *GPUDriver) Knobs() *Knobs { return d.knobs }

// Open implements vkernel.Driver.
func (d *GPUDriver) Open(ctx *vkernel.Ctx) (vkernel.Conn, error) {
	ctx.Cover("gpu", 1)
	return &gpuConn{d: d}, nil
}

type gpuConn struct {
	vkernel.BaseConn
	d *GPUDriver
}

func (c *gpuConn) Ioctl(ctx *vkernel.Ctx, req uint64, arg []byte) (uint64, []byte, error) {
	d := c.d
	d.mu.Lock()
	defer d.mu.Unlock()
	switch req {
	case GPUAlloc:
		ctx.Cover("gpu", 10)
		size := ArgU64(arg, 0)
		if size == 0 || size > 1<<24 {
			ctx.Cover("gpu", 11)
			return 0, nil, vkernel.EINVAL
		}
		h := d.nextBuf
		d.nextBuf++
		d.buffers[h] = ctx.Heap().Alloc(int(size%(1<<16)+64), "gpu_bo_create")
		d.sizes[h] = size
		ctx.Cover("gpu", 12+bucket(size/4096, 16))
		return h, nil, nil

	case GPUFree:
		ctx.Cover("gpu", 30)
		h := ArgU64(arg, 0)
		obj, ok := d.buffers[h]
		if !ok {
			ctx.Cover("gpu", 31)
			return 0, nil, vkernel.ENOENT
		}
		delete(d.buffers, h)
		delete(d.sizes, h)
		if !ctx.CheckFree(obj, "gpu_bo_destroy") {
			return 0, nil, vkernel.EIO
		}
		ctx.Cover("gpu", 32)
		return 0, nil, nil

	case GPUMapBuf:
		ctx.Cover("gpu", 40)
		h := ArgU64(arg, 0)
		obj, ok := d.buffers[h]
		if !ok {
			ctx.Cover("gpu", 41)
			return 0, nil, vkernel.ENOENT
		}
		// Touch the first cacheline through the KASAN heap.
		if _, ok := ctx.CheckLoad(obj, 0, 8, "gpu_bo_map"); !ok {
			return 0, nil, vkernel.EIO
		}
		d.mapCount++
		ctx.Cover("gpu", 42)
		return 0x7f80000000 + h<<12, nil, nil

	case GPUSubmit:
		ctx.Cover("gpu", 50)
		h := ArgU64(arg, 0)
		stream := ArgBytes(arg, 1)
		if _, ok := d.buffers[h]; !ok {
			ctx.Cover("gpu", 51)
			return 0, nil, vkernel.ENOENT
		}
		if len(stream) < 8 {
			ctx.Cover("gpu", 52)
			return 0, nil, vkernel.EINVAL
		}
		magic := uint32(stream[0]) | uint32(stream[1])<<8 | uint32(stream[2])<<16 | uint32(stream[3])<<24
		if magic != GPUCmdMagic {
			ctx.Cover("gpu", 53)
			return 0, nil, vkernel.EFAULT
		}
		ctx.Cover("gpu", 54) // validated command stream
		depth := uint64(stream[4])
		nCmds := uint64(stream[5])
		// Reservation locking: the nesting subclass comes straight from
		// the stream's depth field. Depths beyond the lockdep limit hit
		// bug №3 when the vendor tree (which dropped the clamp) is used.
		if !d.bugs.Has(bugs.LockdepSubclass) && depth >= vkernel.MaxLockdepSubclasses {
			ctx.Cover("gpu", 55)
			return 0, nil, vkernel.EINVAL
		}
		if err := ctx.Kernel().LockAcquire(ctx, "gpu_reservation", depth); err != nil {
			return 0, nil, err
		}
		ctx.Cover("gpu", 56+bucket(depth, 8))
		// Per-command execution paths; the scheduler lane depends on the
		// context priority, multiplying the reachable dispatch states.
		for i := uint64(0); i < nCmds && i < 16; i++ {
			idx := 8 + int(i)
			if idx >= len(stream) {
				break
			}
			op := stream[idx]
			ctx.Cover("gpu", 70+bucket(uint64(op), 24))
			if d.ctxPrio > 3 {
				// Secure-lane dispatch (priorities 4..7 exist only with
				// the secure_ctx module param set).
				ctx.Cover("gpu", 640+bucket(uint64(op), 24))
			} else {
				ctx.Cover("gpu", 160+bucket(uint64(op), 24)+uint32(d.ctxPrio)*24)
			}
		}
		if pl := d.knobs.Int(gpuKnobPerfLevel); pl > 0 {
			// Pinned clock levels take their own ring-feed paths per
			// nesting depth.
			ctx.Cover("gpu", 600+uint32(pl-1)*8+bucket(depth, 8))
		}
		switch d.knobs.Str(gpuKnobGovernor) {
		case "performance":
			ctx.Cover("gpu", 630)
		case "powersave":
			ctx.Cover("gpu", 631)
		}
		d.submits++
		d.fence++
		// Ring-buffer wrap and scheduler paths change as submissions
		// accumulate within one boot.
		ctx.Cover("gpu", 300+logBucket(d.submits, 12))
		return d.fence, nil, nil

	case GPUWait:
		ctx.Cover("gpu", 110)
		f := ArgU64(arg, 0)
		if f > d.fence {
			ctx.Cover("gpu", 111)
			return 0, nil, vkernel.EAGAIN
		}
		ctx.Cover("gpu", 112)
		return 0, nil, nil

	case GPUGetParam:
		ctx.Cover("gpu", 120)
		p := ArgU64(arg, 0)
		switch p {
		case 1: // chip id
			return 0x8086, nil, nil
		case 2: // fence counter
			return d.fence, nil, nil
		case 3: // live buffers
			return uint64(len(d.buffers)), nil, nil
		default:
			ctx.Cover("gpu", 121)
			return 0, nil, vkernel.EINVAL
		}

	case GPUSetCtx:
		ctx.Cover("gpu", 130)
		prio := ArgU64(arg, 0)
		if prio > 3 {
			if prio > 7 || d.knobs.Int(gpuKnobSecureCtx) != 1 {
				ctx.Cover("gpu", 131)
				return 0, nil, vkernel.EINVAL
			}
			// Secure context priorities, module-param gated.
			ctx.Cover("gpu", 620+uint32(prio-4))
		}
		d.ctxPrio = prio
		ctx.Cover("gpu", 132+uint32(prio))
		return 0, nil, nil

	default:
		if ret, out, err, ok := ChaffIoctl(ctx, "gpu", req); ok {
			return ret, out, err
		}
		ctx.Cover("gpu", 3)
		return 0, nil, vkernel.ENOTTY
	}
}

// Mmap maps a previously allocated buffer by length cookie.
func (c *gpuConn) Mmap(ctx *vkernel.Ctx, length uint64) (uint64, error) {
	d := c.d
	d.mu.Lock()
	defer d.mu.Unlock()
	ctx.Cover("gpu", 140)
	if length == 0 || length > 1<<24 {
		return 0, vkernel.EINVAL
	}
	ctx.Cover("gpu", 141+bucket(length/65536, 8))
	return 0x7fc0000000 + length, nil
}

func (c *gpuConn) Close(ctx *vkernel.Ctx) error {
	ctx.Cover("gpu", 2)
	return nil
}
