package drivers

import (
	"fmt"
	"slices"
	"sync"

	"droidfuzz/internal/bugs"
	"droidfuzz/internal/snap"
	"droidfuzz/internal/vkernel"
)

// HCI ioctl request codes (Bluetooth host controller interface).
const (
	HCIUp         uint64 = 0xa201
	HCIDown       uint64 = 0xa202
	HCIResetCmd   uint64 = 0xa203
	HCIReadCodecs uint64 = 0xa204
	HCISetScan    uint64 = 0xa205
	HCICreateConn uint64 = 0xa206
	HCIAcceptConn uint64 = 0xa207
	HCIDisconn    uint64 = 0xa208
	HCISetName    uint64 = 0xa209
	HCIInquiry    uint64 = 0xa20a
)

// Scan mode bits.
const (
	HCIScanPage    uint64 = 1
	HCIScanInquiry uint64 = 2
)

// HCIOpInquiry is the HCI command opcode (OGF 0x01, OCF 0x001) that starts
// device discovery; the BT HAL sends it as a raw command packet.
const HCIOpInquiry uint64 = 0x0401

// HCIConnSSP is the vendor connection flag for secure simple pairing; its
// teardown path carries bug №11.
const HCIConnSSP uint64 = 0x20

type hciConnState int

const (
	hciConnPending hciConnState = iota
	hciConnAccepted
	hciConnClosed
)

type hciConnection struct {
	handle uint64
	peer   uint64
	ssp    bool // created with secure-simple-pairing (vendor flag 0x20)
	state  hciConnState
	obj    uint64 // KASAN heap object backing the connection
}

// HCIDriver is the Bluetooth controller driver. The supported-codecs table
// lives on the KASAN heap and is freed when the adapter goes down,
// reproducing bug №7; the accept queue keeps freed connection objects
// linked, reproducing bug №11.
type HCIDriver struct {
	bugs bugs.Set //droidvet:checkpoint ephemeral injected fault set, fixed at construction
	snap.Dirty

	mu         sync.Mutex
	up         bool
	scanMode   uint64
	inquiring  bool   // an inquiry ran under the current power cycle
	codecTable uint64 // heap object; 0 when never allocated
	codecStale bool   // table pointer left dangling after down (bug №7 gate)
	conns      map[uint64]*hciConnection
	acceptQ    []uint64 // conn handles pending/retained on the accept queue
	nextHandle uint64
	name       string

	knobs *Knobs
}

// NewHCI returns the driver with the given enabled bug set.
func NewHCI(b bugs.Set) *HCIDriver {
	return &HCIDriver{
		bugs: b, conns: make(map[uint64]*hciConnection), nextHandle: 1,
		knobs: NewKnobs("hci", hciKnobSpecs),
	}
}

// Name implements vkernel.Driver.
func (d *HCIDriver) Name() string { return "hci" }

// Knobs returns the runtime-parameter state.
func (d *HCIDriver) Knobs() *Knobs { return d.knobs }

// Open implements vkernel.Driver.
func (d *HCIDriver) Open(ctx *vkernel.Ctx) (vkernel.Conn, error) {
	ctx.Cover("hci", 1)
	return &hciConn{d: d}, nil
}

type hciConn struct {
	vkernel.BaseConn
	d *HCIDriver
}

func (c *hciConn) Ioctl(ctx *vkernel.Ctx, req uint64, arg []byte) (uint64, []byte, error) {
	d := c.d
	d.mu.Lock()
	defer d.mu.Unlock()
	switch req {
	case HCIUp:
		ctx.Cover("hci", 10)
		if d.up {
			ctx.Cover("hci", 11)
			return 0, nil, vkernel.EBUSY
		}
		d.up = true
		d.inquiring = false
		ctx.Logf("hci0", "adapter up")
		// Allocate the supported-codecs table (16 codec entries x 8 bytes).
		d.codecTable = ctx.Heap().Alloc(128, "hci_alloc_codec_table")
		d.codecStale = false
		seed := []byte{0x01, 0x02, 0x04, 0x08}
		if !ctx.CheckStore(d.codecTable, 0, seed, "hci_init_codecs") {
			return 0, nil, vkernel.EIO
		}
		ctx.Cover("hci", 12)
		return 0, nil, nil

	case HCIDown:
		ctx.Cover("hci", 20)
		if !d.up {
			ctx.Cover("hci", 21)
			return 0, nil, vkernel.ENODEV
		}
		d.up = false
		ctx.Logf("hci0", "adapter down (scan=%#x)", d.scanMode)
		if d.codecTable != 0 {
			if !ctx.CheckFree(d.codecTable, "hci_free_codec_table") {
				return 0, nil, vkernel.EIO
			}
			// Vendor bug: powering down mid-discovery — inquiry scan
			// still enabled and an inquiry actually issued — leaves the
			// codec-table pointer dangling instead of cleared (bug №7).
			if d.bugs.Has(bugs.HCICodecs) && d.scanMode&HCIScanInquiry != 0 && d.inquiring {
				ctx.Cover("hci", 22)
				d.codecStale = true
			} else {
				d.codecTable = 0
			}
		}
		ctx.Cover("hci", 23)
		return 0, nil, nil

	case HCIResetCmd:
		ctx.Cover("hci", 30)
		d.scanMode = 0
		d.name = ""
		// Tear down in ascending handle order: Heap.Free mutates shared
		// allocator state, so map-order teardown would make reset replay
		// nondeterministic (droidvet:nondet caught this).
		handles := make([]uint64, 0, len(d.conns))
		for h := range d.conns {
			handles = append(handles, h)
		}
		slices.Sort(handles)
		for _, h := range handles {
			conn := d.conns[h]
			if conn.state != hciConnClosed {
				ctx.Heap().Free(conn.obj, "hci_reset_teardown")
			}
			delete(d.conns, h)
		}
		d.acceptQ = nil
		ctx.Cover("hci", 31)
		return 0, nil, nil

	case HCIReadCodecs:
		ctx.Cover("hci", 40)
		if d.codecTable == 0 {
			ctx.Cover("hci", 41)
			return 0, nil, vkernel.ENODEV
		}
		if d.codecStale {
			ctx.Cover("hci", 42)
		}
		// Bug №7 fires here: the load hits the freed (stale) table.
		data, ok := ctx.CheckLoad(d.codecTable, 0, 16, "hci_read_supported_codecs")
		if !ok {
			return 0, nil, vkernel.EIO
		}
		ctx.Cover("hci", 43)
		return 0, data, nil

	case HCISetScan:
		ctx.Cover("hci", 50)
		mode := ArgU64(arg, 0)
		if mode > (HCIScanPage | HCIScanInquiry) {
			ctx.Cover("hci", 51)
			return 0, nil, vkernel.EINVAL
		}
		d.scanMode = mode
		ctx.Cover("hci", 52+uint32(mode))
		return 0, nil, nil

	case HCICreateConn:
		ctx.Cover("hci", 60)
		if !d.up {
			ctx.Cover("hci", 61)
			return 0, nil, vkernel.ENODEV
		}
		peer := ArgU64(arg, 0)
		connFlags := ArgU64(arg, 1)
		if connFlags&^0x3f != 0 {
			// Reserved connection-flag bits must be zero.
			ctx.Cover("hci", 63)
			return 0, nil, vkernel.EINVAL
		}
		if connFlags&HCIConnSSP != 0 && d.knobs.Int(hciKnobSSPMode) == 0 {
			// Secure simple pairing disabled via module param: the
			// legacy-pairing fallback rejects SSP connection requests.
			ctx.Cover("hci", 620)
			return 0, nil, vkernel.EINVAL
		}
		if uint64(len(d.conns)) >= d.knobs.Int(hciKnobMaxConns) {
			// Connection-table cap; the default (64) is beyond anything a
			// single program can allocate, lowering it gates the path.
			ctx.Cover("hci", 630+bucket(d.knobs.Int(hciKnobMaxConns), 4))
			return 0, nil, vkernel.EBUSY
		}
		h := d.nextHandle
		d.nextHandle++
		conn := &hciConnection{
			handle: h,
			peer:   peer,
			ssp:    connFlags&HCIConnSSP != 0,
			state:  hciConnPending,
			obj:    ctx.Heap().Alloc(64, "bt_conn_alloc"),
		}
		if conn.ssp {
			ctx.Cover("hci", 70) // secure-pairing setup path
		}
		d.conns[h] = conn
		d.acceptQ = append(d.acceptQ, h)
		ctx.Cover("hci", 300+logBucket(h, 12)) // connection-table growth paths
		ctx.Cover("hci", 64+bucket(peer, 4))
		return h, nil, nil

	case HCIAcceptConn:
		ctx.Cover("hci", 80)
		if len(d.acceptQ) == 0 {
			ctx.Cover("hci", 81)
			return 0, nil, vkernel.EAGAIN
		}
		h := d.acceptQ[0]
		conn := d.conns[h]
		if conn == nil {
			d.acceptQ = d.acceptQ[1:]
			ctx.Cover("hci", 82)
			return 0, nil, vkernel.EIO
		}
		// bt_accept_unlink reads the connection object while unlinking it
		// from the accept queue. If the connection was disconnected while
		// still queued (bug №11), the object is already freed: UAF read.
		data, ok := ctx.CheckLoad(conn.obj, 0, 8, "bt_accept_unlink")
		if !ok {
			d.acceptQ = d.acceptQ[1:]
			return 0, nil, vkernel.EIO
		}
		_ = data
		d.acceptQ = d.acceptQ[1:]
		conn.state = hciConnAccepted
		ctx.Cover("hci", 83)
		return h, nil, nil

	case HCIDisconn:
		ctx.Cover("hci", 90)
		h := ArgU64(arg, 0)
		conn := d.conns[h]
		if conn == nil || conn.state == hciConnClosed {
			ctx.Cover("hci", 91)
			return 0, nil, vkernel.ENOENT
		}
		conn.state = hciConnClosed
		if !ctx.CheckFree(conn.obj, "hci_conn_del") {
			return 0, nil, vkernel.EIO
		}
		if !d.bugs.Has(bugs.BTAcceptUnlink) || !conn.ssp {
			// Correct kernels unlink the connection from the accept
			// queue before freeing; the buggy vendor tree forgets to on
			// its secure-simple-pairing teardown path.
			for i, qh := range d.acceptQ {
				if qh == h {
					d.acceptQ = append(d.acceptQ[:i], d.acceptQ[i+1:]...)
					break
				}
			}
		} else {
			ctx.Cover("hci", 92)
		}
		ctx.Cover("hci", 93)
		return 0, nil, nil

	case HCISetName:
		ctx.Cover("hci", 100)
		name := ArgBytes(arg, 0)
		if len(name) > 248 {
			ctx.Cover("hci", 101)
			return 0, nil, vkernel.EINVAL
		}
		d.name = string(name)
		ctx.Cover("hci", 102+bucket(uint64(len(name)), 8))
		if d.up && d.scanMode != 0 {
			// A live name change regenerates the EIR response per length
			// class while discoverable.
			ctx.Cover("hci", 430+bucket(uint64(len(name)), 16))
		}
		return 0, nil, nil

	case HCIInquiry:
		ctx.Cover("hci", 110)
		if !d.up {
			ctx.Cover("hci", 111)
			return 0, nil, vkernel.ENODEV
		}
		if d.scanMode&HCIScanInquiry == 0 {
			ctx.Cover("hci", 112)
			return 0, nil, vkernel.EINVAL
		}
		ctx.Cover("hci", 113)
		// Discovered-device report: handle count + adapter state.
		out := PutU64(nil, uint64(len(d.conns)))
		out = PutU64(out, d.scanMode)
		return 0, out, nil

	default:
		if ret, out, err, ok := ChaffIoctl(ctx, "hci", req); ok {
			return ret, out, err
		}
		ctx.Cover("hci", 3)
		return 0, nil, vkernel.ENOTTY
	}
}

// Write accepts raw HCI command packets: opcode (2 bytes LE) + params.
func (c *hciConn) Write(ctx *vkernel.Ctx, p []byte) (int, error) {
	d := c.d
	d.mu.Lock()
	defer d.mu.Unlock()
	ctx.Cover("hci", 120)
	if !d.up {
		return 0, vkernel.ENODEV
	}
	if len(p) < 2 {
		ctx.Cover("hci", 121)
		return 0, vkernel.EINVAL
	}
	opcode := uint64(p[0]) | uint64(p[1])<<8
	if d.knobs.Int(hciKnobDutMode) == 1 {
		// Device-under-test mode: raw vendor test commands take their own
		// dispatch table, unreachable while the param is at its default.
		ctx.Cover("hci", 600+bucket(opcode, 8))
	}
	if opcode == HCIOpInquiry && d.scanMode&HCIScanInquiry != 0 {
		// A real inquiry is in flight only after the HCI_OP_INQUIRY
		// command packet goes down with inquiry scan enabled.
		d.inquiring = true
	}
	ctx.Cover("hci", 122+bucket(opcode, 32))
	live := 0
	// Pure count over the map; the total is the same in any iteration
	// order, so replay cannot diverge here.
	for _, conn := range d.conns { //droidvet:nondet order-independent count
		if conn.state == hciConnAccepted {
			live++
		}
	}
	if live > 0 {
		// Command dispatch against live ACL links takes per-opcode
		// scheduling paths.
		ctx.Cover("hci", 400+bucket(opcode, 32))
	}
	if len(p) > 2 {
		ctx.Cover("hci", 160+bucket(uint64(p[2]), 8))
	}
	return len(p), nil
}

// Read returns pending HCI events.
func (c *hciConn) Read(ctx *vkernel.Ctx, n int) ([]byte, error) {
	d := c.d
	d.mu.Lock()
	defer d.mu.Unlock()
	ctx.Cover("hci", 130)
	if !d.up {
		return nil, vkernel.ENODEV
	}
	if n > 32 {
		n = 32
	}
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(d.scanMode)
	}
	ctx.Cover("hci", 131)
	return out, nil
}

func (c *hciConn) Close(ctx *vkernel.Ctx) error {
	ctx.Cover("hci", 2)
	return nil
}

// String describes adapter state for diagnostics.
func (d *HCIDriver) String() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return fmt.Sprintf("hci(up=%v scan=%#x conns=%d queued=%d)",
		d.up, d.scanMode, len(d.conns), len(d.acceptQ))
}
