package drivers

import (
	"sync"

	"droidfuzz/internal/bugs"
	"droidfuzz/internal/snap"
	"droidfuzz/internal/vkernel"
)

// L2CAP ioctl request codes (Bluetooth logical link control).
const (
	L2capConnect    uint64 = 0xa301
	L2capDisconnect uint64 = 0xa302
	L2capSetMTU     uint64 = 0xa303
	L2capGetInfo    uint64 = 0xa304
	L2capConfig     uint64 = 0xa305
)

type l2capState int

const (
	l2capClosed l2capState = iota
	l2capConfigPending
	l2capConnected
)

// L2CAPDriver models the L2CAP channel layer as a character device. Bug №8
// (double-disconnect WARN in l2cap_send_disconn_req) is intentionally
// shallow — reachable by a plain syscall fuzzer, matching the paper's
// finding that Syzkaller discovers 2 kernel bugs.
type L2CAPDriver struct {
	bugs bugs.Set //droidvet:checkpoint ephemeral injected fault set, fixed at construction
	snap.Dirty
	mu sync.Mutex

	knobs *Knobs
}

// NewL2CAP returns the driver with the given enabled bug set.
func NewL2CAP(b bugs.Set) *L2CAPDriver {
	return &L2CAPDriver{bugs: b, knobs: NewKnobs("l2cap", l2capKnobSpecs)}
}

// Name implements vkernel.Driver.
func (d *L2CAPDriver) Name() string { return "l2cap" }

// Knobs returns the runtime-parameter state.
func (d *L2CAPDriver) Knobs() *Knobs { return d.knobs }

// Open implements vkernel.Driver.
func (d *L2CAPDriver) Open(ctx *vkernel.Ctx) (vkernel.Conn, error) {
	ctx.Cover("l2cap", 1)
	return &l2capChan{d: d, mtu: 672}, nil
}

// l2capChan is one channel; state is per-fd, as for a real socket.
type l2capChan struct {
	vkernel.BaseConn
	d          *l2capDriverRef
	state      l2capState
	psm        uint64
	mtu        uint64
	disconnReq bool // a disconn request is already in flight
	txCount    uint64
}

// l2capDriverRef is an alias to keep the channel struct self-documenting.
type l2capDriverRef = L2CAPDriver

func (c *l2capChan) Ioctl(ctx *vkernel.Ctx, req uint64, arg []byte) (uint64, []byte, error) {
	c.d.mu.Lock()
	defer c.d.mu.Unlock()
	switch req {
	case L2capConnect:
		ctx.Cover("l2cap", 10)
		psm := ArgU64(arg, 0)
		if psm == 0 || psm > 0xffff {
			ctx.Cover("l2cap", 11)
			return 0, nil, vkernel.EINVAL
		}
		if c.state == l2capConnected {
			ctx.Cover("l2cap", 12)
			return 0, nil, vkernel.EBUSY
		}
		c.psm = psm
		c.state = l2capConfigPending
		ctx.Cover("l2cap", 13+bucket(psm, 16))
		return 0, nil, nil

	case L2capConfig:
		ctx.Cover("l2cap", 30)
		if c.state != l2capConfigPending {
			ctx.Cover("l2cap", 31)
			return 0, nil, vkernel.EINVAL
		}
		flags := ArgU64(arg, 0)
		c.state = l2capConnected
		c.disconnReq = false
		ctx.Cover("l2cap", 32+bucket(flags, 8))
		if c.d.knobs.Int(l2capKnobERTM) == 1 {
			// Enhanced-retransmission channel config, module-param gated.
			ctx.Cover("l2cap", 600+bucket(flags, 4))
		}
		return 0, nil, nil

	case L2capDisconnect:
		ctx.Cover("l2cap", 50)
		// Bug №8: sending a disconnect request for a channel that is not
		// connected (or already has one in flight) trips the WARN in
		// l2cap_send_disconn_req. Two back-to-back disconnects suffice.
		if c.bugGate() && (c.state != l2capConnected || c.disconnReq) {
			ctx.Cover("l2cap", 51)
			ctx.Warn("l2cap_send_disconn_req",
				"disconn request on channel not in connected state")
			return 0, nil, vkernel.EIO
		}
		if c.state != l2capConnected {
			ctx.Cover("l2cap", 52)
			return 0, nil, vkernel.ENOENT
		}
		c.disconnReq = true
		c.state = l2capClosed
		ctx.Cover("l2cap", 53)
		return 0, nil, nil

	case L2capSetMTU:
		ctx.Cover("l2cap", 60)
		mtu := ArgU64(arg, 0)
		if mtu < 48 || mtu > 65535 {
			ctx.Cover("l2cap", 61)
			return 0, nil, vkernel.EINVAL
		}
		c.mtu = mtu
		ctx.Cover("l2cap", 62+bucket(mtu/1024, 16))
		return 0, nil, nil

	case L2capGetInfo:
		ctx.Cover("l2cap", 80)
		out := PutU64(nil, uint64(c.state))
		out = PutU64(out, c.psm)
		out = PutU64(out, c.mtu)
		return 0, out, nil

	default:
		if ret, out, err, ok := ChaffIoctl(ctx, "l2cap", req); ok {
			return ret, out, err
		}
		ctx.Cover("l2cap", 3)
		return 0, nil, vkernel.ENOTTY
	}
}

func (c *l2capChan) bugGate() bool { return c.d.bugs.Has(bugs.L2capDisconn) }

func (c *l2capChan) Write(ctx *vkernel.Ctx, p []byte) (int, error) {
	c.d.mu.Lock()
	defer c.d.mu.Unlock()
	ctx.Cover("l2cap", 90)
	if c.state != l2capConnected {
		ctx.Cover("l2cap", 91)
		return 0, vkernel.ENOTTY
	}
	if uint64(len(p)) > c.mtu {
		ctx.Cover("l2cap", 92)
		return 0, vkernel.EINVAL
	}
	c.txCount++
	ctx.Cover("l2cap", 300+logBucket(c.txCount, 12)) // flow-control window paths
	ctx.Cover("l2cap", 93+bucket(uint64(len(p))/64, 12))
	if c.d.knobs.Int(l2capKnobERTM) == 1 {
		// ERTM transmit path: sequence/ack bookkeeping per window fill.
		ctx.Cover("l2cap", 610+logBucket(c.txCount, 8))
	}
	if win := c.d.knobs.Int(l2capKnobTxWin); win != 8 {
		// Non-default flow-control window selects its own scheduling branch.
		ctx.Cover("l2cap", 620+bucket(win, 8))
	}
	// Per-PSM protocol handlers on the transmit path.
	ctx.Cover("l2cap", 400+bucket(c.psm, 16))
	return len(p), nil
}

func (c *l2capChan) Read(ctx *vkernel.Ctx, n int) ([]byte, error) {
	c.d.mu.Lock()
	defer c.d.mu.Unlock()
	ctx.Cover("l2cap", 110)
	if c.state != l2capConnected {
		return nil, vkernel.EAGAIN
	}
	ctx.Cover("l2cap", 111)
	if n > int(c.mtu) {
		n = int(c.mtu)
	}
	return make([]byte, n), nil
}

func (c *l2capChan) Close(ctx *vkernel.Ctx) error {
	ctx.Cover("l2cap", 2)
	return nil
}
