package drivers

import (
	"sync"

	"droidfuzz/internal/bugs"
	"droidfuzz/internal/snap"
	"droidfuzz/internal/vkernel"
)

// IIO (sensor hub) ioctl request codes.
const (
	IIOEnable  uint64 = 0xa801
	IIODisable uint64 = 0xa802
	IIOSetFreq uint64 = 0xa803
	IIOTrigger uint64 = 0xa804
	IIOGetInfo uint64 = 0xa805
)

// SensorDriver models an IIO sensor hub with 8 channels.
type SensorDriver struct {
	bugs bugs.Set //droidvet:checkpoint ephemeral injected fault set, fixed at construction
	snap.Dirty

	mu       sync.Mutex
	enabled  [8]bool
	freq     uint64
	triggers uint64

	knobs *Knobs
}

// NewSensor returns the driver with the given enabled bug set.
func NewSensor(b bugs.Set) *SensorDriver {
	return &SensorDriver{bugs: b, freq: 50, knobs: NewKnobs("iio", iioKnobSpecs)}
}

// Name implements vkernel.Driver.
func (d *SensorDriver) Name() string { return "iio" }

// Knobs returns the runtime-parameter state.
func (d *SensorDriver) Knobs() *Knobs { return d.knobs }

// Open implements vkernel.Driver.
func (d *SensorDriver) Open(ctx *vkernel.Ctx) (vkernel.Conn, error) {
	ctx.Cover("iio", 1)
	return &sensorConn{d: d}, nil
}

type sensorConn struct {
	vkernel.BaseConn
	d *SensorDriver
}

func (c *sensorConn) Ioctl(ctx *vkernel.Ctx, req uint64, arg []byte) (uint64, []byte, error) {
	d := c.d
	d.mu.Lock()
	defer d.mu.Unlock()
	switch req {
	case IIOEnable:
		ctx.Cover("iio", 10)
		ch := ArgU64(arg, 0)
		if ch >= 8 {
			ctx.Cover("iio", 11)
			return 0, nil, vkernel.EINVAL
		}
		d.enabled[ch] = true
		ctx.Cover("iio", 12+uint32(ch))
		return 0, nil, nil
	case IIODisable:
		ctx.Cover("iio", 30)
		ch := ArgU64(arg, 0)
		if ch >= 8 {
			ctx.Cover("iio", 31)
			return 0, nil, vkernel.EINVAL
		}
		d.enabled[ch] = false
		ctx.Cover("iio", 32)
		return 0, nil, nil
	case IIOSetFreq:
		ctx.Cover("iio", 40)
		hz := ArgU64(arg, 0)
		if hz == 0 || hz > 1000 {
			ctx.Cover("iio", 41)
			return 0, nil, vkernel.EINVAL
		}
		d.freq = hz
		ctx.Cover("iio", 42+bucket(hz/50, 20))
		return 0, nil, nil
	case IIOTrigger:
		ctx.Cover("iio", 70)
		any := false
		for ch, on := range d.enabled {
			if on {
				any = true
				ctx.Cover("iio", 71+uint32(ch))
			}
		}
		if !any {
			ctx.Cover("iio", 80)
			return 0, nil, vkernel.EINVAL
		}
		d.triggers++
		if wm := d.knobs.Int(iioKnobWatermark); d.knobs.Int(iioKnobBatchMode) == 1 && wm > 1 {
			// Batched FIFO with a raised watermark defers the wakeup path.
			ctx.Cover("iio", 610+logBucket(wm, 8))
		}
		return d.triggers, nil, nil
	case IIOGetInfo:
		ctx.Cover("iio", 90)
		out := PutU64(nil, d.freq)
		out = PutU64(out, d.triggers)
		return 0, out, nil
	default:
		if ret, out, err, ok := ChaffIoctl(ctx, "iio", req); ok {
			return ret, out, err
		}
		ctx.Cover("iio", 3)
		return 0, nil, vkernel.ENOTTY
	}
}

func (c *sensorConn) Read(ctx *vkernel.Ctx, n int) ([]byte, error) {
	d := c.d
	d.mu.Lock()
	defer d.mu.Unlock()
	ctx.Cover("iio", 100)
	any := false
	for _, on := range d.enabled {
		if on {
			any = true
			break
		}
	}
	if !any {
		return nil, vkernel.EAGAIN
	}
	ctx.Cover("iio", 101)
	if d.knobs.Int(iioKnobBatchMode) == 1 {
		// Hardware-batched FIFO drain, module-param gated.
		ctx.Cover("iio", 600+bucket(uint64(n)/32, 8))
	}
	if n > 256 {
		n = 256
	}
	return make([]byte, n), nil
}

func (c *sensorConn) Close(ctx *vkernel.Ctx) error {
	ctx.Cover("iio", 2)
	return nil
}

// NFC ioctl request codes.
const (
	NFCPower   uint64 = 0xa901
	NFCFwDnld  uint64 = 0xa902
	NFCRawXfer uint64 = 0xa903
	NFCGetInfo uint64 = 0xa904
)

// NFCDriver models an NFC controller with a firmware-download path.
type NFCDriver struct {
	bugs bugs.Set //droidvet:checkpoint ephemeral injected fault set, fixed at construction
	snap.Dirty

	mu      sync.Mutex
	powered bool
	fwLen   uint64

	knobs *Knobs
}

// NewNFC returns the driver with the given enabled bug set.
func NewNFC(b bugs.Set) *NFCDriver {
	return &NFCDriver{bugs: b, knobs: NewKnobs("nfc", nfcKnobSpecs)}
}

// Name implements vkernel.Driver.
func (d *NFCDriver) Name() string { return "nfc" }

// Knobs returns the runtime-parameter state.
func (d *NFCDriver) Knobs() *Knobs { return d.knobs }

// Open implements vkernel.Driver.
func (d *NFCDriver) Open(ctx *vkernel.Ctx) (vkernel.Conn, error) {
	ctx.Cover("nfc", 1)
	return &nfcConn{d: d}, nil
}

type nfcConn struct {
	vkernel.BaseConn
	d *NFCDriver
}

func (c *nfcConn) Ioctl(ctx *vkernel.Ctx, req uint64, arg []byte) (uint64, []byte, error) {
	d := c.d
	d.mu.Lock()
	defer d.mu.Unlock()
	switch req {
	case NFCPower:
		ctx.Cover("nfc", 10)
		on := ArgU64(arg, 0)
		if on > 1 {
			ctx.Cover("nfc", 11)
			return 0, nil, vkernel.EINVAL
		}
		d.powered = on == 1
		ctx.Logf("nfc0", "power %d", on)
		ctx.Cover("nfc", 12+uint32(on))
		if route := d.knobs.Int(nfcKnobESERoute); on == 1 && route != 0 {
			// Non-default secure-element routing configured at power-up.
			ctx.Cover("nfc", 610+uint32(route))
		}
		return 0, nil, nil
	case NFCFwDnld:
		ctx.Cover("nfc", 20)
		if d.powered {
			ctx.Cover("nfc", 21)
			return 0, nil, vkernel.EBUSY
		}
		fw := ArgBytes(arg, 0)
		if len(fw) < 4 || fw[0] != 0x4e { // 'N' header
			ctx.Cover("nfc", 22)
			return 0, nil, vkernel.EINVAL
		}
		d.fwLen = uint64(len(fw))
		ctx.Cover("nfc", 23+bucket(d.fwLen/16, 12))
		return 0, nil, nil
	case NFCRawXfer:
		ctx.Cover("nfc", 40)
		if !d.powered {
			ctx.Cover("nfc", 41)
			return 0, nil, vkernel.ENODEV
		}
		frame := ArgBytes(arg, 0)
		if len(frame) == 0 || len(frame) > 255 {
			ctx.Cover("nfc", 42)
			return 0, nil, vkernel.EINVAL
		}
		ctx.Cover("nfc", 43+bucket(uint64(frame[0]), 16))
		if d.knobs.Int(nfcKnobCEMode) == 1 {
			// Card-emulation listen path, module-param gated.
			ctx.Cover("nfc", 600+bucket(uint64(frame[0]), 8))
		}
		return uint64(len(frame)), nil, nil
	case NFCGetInfo:
		ctx.Cover("nfc", 60)
		out := PutU64(nil, boolU64(d.powered))
		out = PutU64(out, d.fwLen)
		return 0, out, nil
	default:
		if ret, out, err, ok := ChaffIoctl(ctx, "nfc", req); ok {
			return ret, out, err
		}
		ctx.Cover("nfc", 3)
		return 0, nil, vkernel.ENOTTY
	}
}

func (c *nfcConn) Close(ctx *vkernel.Ctx) error {
	ctx.Cover("nfc", 2)
	return nil
}

// Thermal ioctl request codes.
const (
	ThermalGetTemp   uint64 = 0xaa01
	ThermalSetTrip   uint64 = 0xaa02
	ThermalSetPolicy uint64 = 0xaa03
)

// ThermalDriver models a thermal-zone controller with 4 zones.
type ThermalDriver struct {
	bugs bugs.Set //droidvet:checkpoint ephemeral injected fault set, fixed at construction
	snap.Dirty

	mu     sync.Mutex
	trips  [4]uint64
	policy uint64

	knobs *Knobs
}

// NewThermal returns the driver with the given enabled bug set.
func NewThermal(b bugs.Set) *ThermalDriver {
	return &ThermalDriver{bugs: b, knobs: NewKnobs("thermal", thermalKnobSpecs)}
}

// Name implements vkernel.Driver.
func (d *ThermalDriver) Name() string { return "thermal" }

// Knobs returns the runtime-parameter state.
func (d *ThermalDriver) Knobs() *Knobs { return d.knobs }

// Open implements vkernel.Driver.
func (d *ThermalDriver) Open(ctx *vkernel.Ctx) (vkernel.Conn, error) {
	ctx.Cover("thermal", 1)
	return &thermalConn{d: d}, nil
}

type thermalConn struct {
	vkernel.BaseConn
	d *ThermalDriver
}

func (c *thermalConn) Ioctl(ctx *vkernel.Ctx, req uint64, arg []byte) (uint64, []byte, error) {
	d := c.d
	d.mu.Lock()
	defer d.mu.Unlock()
	switch req {
	case ThermalGetTemp:
		ctx.Cover("thermal", 10)
		zone := ArgU64(arg, 0)
		if zone >= 4 {
			ctx.Cover("thermal", 11)
			return 0, nil, vkernel.EINVAL
		}
		ctx.Cover("thermal", 12+uint32(zone))
		if poll := d.knobs.Int(thermalKnobPollMS); poll != 1000 {
			// Non-default polling interval reschedules the zone worker.
			ctx.Cover("thermal", 610+logBucket(poll, 8))
		}
		return 35000 + zone*1500, nil, nil
	case ThermalSetTrip:
		ctx.Cover("thermal", 20)
		zone, temp := ArgU64(arg, 0), ArgU64(arg, 1)
		if zone >= 4 {
			ctx.Cover("thermal", 21)
			return 0, nil, vkernel.EINVAL
		}
		if temp > 120000 {
			if temp > 150000 || d.knobs.Int(thermalKnobMitigation) != 0 {
				ctx.Cover("thermal", 21)
				return 0, nil, vkernel.EINVAL
			}
			// Mitigation disabled: trip points past the shutdown limit
			// are programmable (thermal test rigs do this).
			ctx.Cover("thermal", 600+uint32(zone))
		}
		d.trips[zone] = temp
		ctx.Cover("thermal", 22+uint32(zone)*4+bucket(temp/30000, 4))
		return 0, nil, nil
	case ThermalSetPolicy:
		ctx.Cover("thermal", 40)
		p := ArgU64(arg, 0)
		if p > 2 {
			ctx.Cover("thermal", 41)
			return 0, nil, vkernel.EINVAL
		}
		d.policy = p
		ctx.Cover("thermal", 42+uint32(p))
		return 0, nil, nil
	default:
		if ret, out, err, ok := ChaffIoctl(ctx, "thermal", req); ok {
			return ret, out, err
		}
		ctx.Cover("thermal", 3)
		return 0, nil, vkernel.ENOTTY
	}
}

func (c *thermalConn) Close(ctx *vkernel.Ctx) error {
	ctx.Cover("thermal", 2)
	return nil
}
