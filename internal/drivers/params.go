package drivers

import (
	"slices"
	"strconv"
	"sync/atomic"

	"droidfuzz/internal/dsl"
	"droidfuzz/internal/snap"
	"droidfuzz/internal/vkernel"
)

// Runtime parameters (module params / sysfs attributes). Every driver family
// exposes a handful of knobs under /sys/module/<family>/parameters/ that
// vendor init scripts write at boot and that genuinely gate driver behavior:
// enable flags fence off ioctl subtrees, mode and threshold knobs select
// state-machine branches, and some branches are reachable only through a
// specific knob value combined with a specific ioctl sequence. A fuzzer
// confined to ioctls can never flip them — the runtime-parameter dimension
// (SyzParam) exists precisely to cover that blind spot.
//
// Knob values are atomics: ioctl handlers read them while holding the driver
// mutex and sysfs stores write them without it, so no lock ordering between
// the kernel fd table and driver state is introduced. Knobs embeds snap.Dirty
// and implements snap.Subsystem — a sysfs write is the one mutation that
// reaches driver-adjacent state without going through a device fd, so the
// Store path itself bumps the generation and Device.Restore winds knobs back.

// KnobKind selects the value domain of one knob.
type KnobKind int

const (
	// KnobInt is an integer knob with an inclusive [Min, Max] range.
	KnobInt KnobKind = iota
	// KnobString is a string knob restricted to an explicit choice list.
	KnobString
)

// knobSiteSpan is the per-knob cover-site window: Site..Site+2 bucket the
// accepted value, Site+3 is the malformed-write reject path.
const knobSiteSpan = 4

// ParamBaseWeight is the static vertex weight of a param write before the
// probing pass replaces it with the normalized vendor-init occurrence weight.
const ParamBaseWeight = 0.3

// Knob describes one runtime parameter of a driver family.
type Knob struct {
	// Name is the attribute file name, e.g. "pd_compliance".
	Name string
	// Mode holds the sysfs permission bits (0644 writable, 0444 read-only).
	Mode uint32
	// Kind selects which of the value fields below apply.
	Kind KnobKind
	// Def, Min, Max describe a KnobInt value (inclusive range).
	Def, Min, Max uint64
	// DefStr and Choices describe a KnobString value.
	DefStr  string
	Choices []string
	// Boot is how many times vendor init scripts write this knob per boot;
	// the probing pass turns it into the normalized occurrence weight, the
	// same way HAL interface weights come from observed IPC traffic.
	Boot int
	// Site is the base cover site of the sysfs store path (knobSiteSpan
	// sites wide). Zero for read-only knobs.
	Site uint32
}

// ParamPath returns the sysfs path of a family knob.
func ParamPath(family, knob string) string {
	return "/sys/module/" + family + "/parameters/" + knob
}

// ParamDSLName returns the DSL call name of a family knob write.
func ParamDSLName(family, knob string) string {
	return "param$" + family + "." + knob
}

// Knobs is the live runtime-parameter state of one driver instance.
type Knobs struct {
	snap.Dirty
	family string //droidvet:checkpoint ephemeral instance identity, fixed at construction
	specs  []Knob
	ints   []atomic.Uint64
	strs   []atomic.Pointer[string]
}

// NewKnobs builds the knob state for one driver instance with every knob at
// its default. The specs slice is shared and must not be mutated.
func NewKnobs(family string, specs []Knob) *Knobs {
	ks := &Knobs{
		family: family,
		specs:  specs,
		ints:   make([]atomic.Uint64, len(specs)),
		strs:   make([]atomic.Pointer[string], len(specs)),
	}
	for i := range specs {
		if specs[i].Kind == KnobString {
			s := specs[i].DefStr
			ks.strs[i].Store(&s)
		} else {
			ks.ints[i].Store(specs[i].Def)
		}
	}
	return ks
}

// Family returns the driver family name.
func (ks *Knobs) Family() string { return ks.family }

// Specs returns the knob descriptions in registration order. Read-only.
func (ks *Knobs) Specs() []Knob { return ks.specs }

// Int returns the current value of the idx-th knob (KnobInt).
func (ks *Knobs) Int(idx int) uint64 { return ks.ints[idx].Load() }

// Str returns the current value of the idx-th knob (KnobString).
func (ks *Knobs) Str(idx int) string { return *ks.strs[idx].Load() }

// Index returns the position of the named knob, or -1.
func (ks *Knobs) Index(name string) int {
	for i := range ks.specs {
		if ks.specs[i].Name == name {
			return i
		}
	}
	return -1
}

// Register exposes every knob in the kernel's sysfs namespace.
func (ks *Knobs) Register(k *vkernel.Kernel) {
	for i := range ks.specs {
		sp := &ks.specs[i]
		idx := i
		p := vkernel.Param{
			Path: ParamPath(ks.family, sp.Name),
			Mode: sp.Mode,
		}
		if sp.Kind == KnobString {
			p.Load = func() string { return *ks.strs[idx].Load() }
		} else {
			p.Load = func() string { return strconv.FormatUint(ks.ints[idx].Load(), 10) }
		}
		if sp.Mode&0o200 != 0 {
			p.Store = func(ctx *vkernel.Ctx, val string) error {
				return ks.store(ctx, idx, val)
			}
		}
		k.RegisterParam(p)
	}
}

// store parses, validates, and applies one sysfs write. Accepted writes bump
// the dirty generation — this is the only mutation path into driver-adjacent
// state that does not pass through a device fd, so central fd-op dirty
// tracking cannot see it; the store must mark itself.
func (ks *Knobs) store(ctx *vkernel.Ctx, idx int, val string) error {
	sp := &ks.specs[idx]
	if sp.Kind == KnobString {
		ci := slices.Index(sp.Choices, val)
		if ci < 0 {
			ctx.Cover(ks.family, sp.Site+knobSiteSpan-1)
			return vkernel.EINVAL
		}
		s := val
		ks.strs[idx].Store(&s)
		ks.Touch()
		ctx.Cover(ks.family, sp.Site+bucket(uint64(ci), knobSiteSpan-1))
		return nil
	}
	v, err := strconv.ParseUint(val, 0, 64)
	if err != nil || v < sp.Min || v > sp.Max {
		ctx.Cover(ks.family, sp.Site+knobSiteSpan-1)
		return vkernel.EINVAL
	}
	ks.ints[idx].Store(v)
	ks.Touch()
	ctx.Cover(ks.family, sp.Site+bucket(v-sp.Min, knobSiteSpan-1))
	return nil
}

// knobsState is the immutable checkpoint of a Knobs instance.
type knobsState struct {
	ints []uint64
	strs []string
}

// Checkpoint implements snap.Subsystem.
func (ks *Knobs) Checkpoint() any {
	st := &knobsState{
		ints: make([]uint64, len(ks.specs)),
		strs: make([]string, len(ks.specs)),
	}
	for i := range ks.specs {
		if ks.specs[i].Kind == KnobString {
			st.strs[i] = *ks.strs[i].Load()
		} else {
			st.ints[i] = ks.ints[i].Load()
		}
	}
	return st
}

// Restore implements snap.Subsystem.
func (ks *Knobs) Restore(state any) {
	st := state.(*knobsState)
	for i := range ks.specs {
		if ks.specs[i].Kind == KnobString {
			s := st.strs[i]
			ks.strs[i].Store(&s)
		} else {
			ks.ints[i].Store(st.ints[i])
		}
	}
}

// Descs returns the DSL call descriptions of the writable knobs: one
// single-argument param-write call each, weighted statically until the
// probing pass measures vendor-init occurrences.
func (ks *Knobs) Descs() []*dsl.CallDesc {
	var out []*dsl.CallDesc
	for i := range ks.specs {
		sp := &ks.specs[i]
		if sp.Mode&0o200 == 0 {
			continue
		}
		var t dsl.Type
		if sp.Kind == KnobString {
			t = dsl.String_(sp.Choices...)
		} else {
			t = dsl.Int(sp.Min, sp.Max)
		}
		out = append(out, &dsl.CallDesc{
			Name:        ParamDSLName(ks.family, sp.Name),
			Class:       dsl.ClassParam,
			Param:       ParamPath(ks.family, sp.Name),
			Args:        []dsl.Field{{Name: "value", Type: t}},
			Weight:      ParamBaseWeight,
			CriticalArg: 0,
		})
	}
	return out
}

// Per-family knob tables. Index constants track spec order; drivers read
// values by index on hot ioctl paths. Cover-site layout: sysfs store paths
// occupy 900+, knob-gated ioctl branches occupy 600..699 — both ranges are
// untouched by any default-configuration workload, keeping param-disabled
// campaigns bit-identical to the seed.

// tcpc knob indices.
const (
	tcpcKnobPDCompliance = iota
	tcpcKnobMaxContractMV
	tcpcKnobFWVariant
)

var tcpcKnobSpecs = []Knob{
	{Name: "pd_compliance", Mode: 0o644, Kind: KnobInt, Def: 1, Min: 0, Max: 1, Boot: 2, Site: 900},
	{Name: "max_contract_mv", Mode: 0o644, Kind: KnobInt, Def: 20000, Min: 5000, Max: 30000, Boot: 1, Site: 904},
	{Name: "fw_variant", Mode: 0o444, Kind: KnobString, DefStr: "rt1711h", Choices: []string{"rt1711h"}},
}

// hci knob indices.
const (
	hciKnobDutMode = iota
	hciKnobSSPMode
	hciKnobMaxConns
)

var hciKnobSpecs = []Knob{
	{Name: "dut_mode", Mode: 0o644, Kind: KnobInt, Def: 0, Min: 0, Max: 1, Boot: 0, Site: 900},
	{Name: "ssp_mode", Mode: 0o644, Kind: KnobInt, Def: 1, Min: 0, Max: 1, Boot: 2, Site: 904},
	{Name: "max_conns", Mode: 0o644, Kind: KnobInt, Def: 64, Min: 1, Max: 64, Boot: 1, Site: 908},
}

// l2cap knob indices.
const (
	l2capKnobERTM = iota
	l2capKnobTxWin
)

var l2capKnobSpecs = []Knob{
	{Name: "ertm_mode", Mode: 0o644, Kind: KnobInt, Def: 0, Min: 0, Max: 1, Boot: 1, Site: 900},
	{Name: "tx_win", Mode: 0o644, Kind: KnobInt, Def: 8, Min: 1, Max: 64, Boot: 0, Site: 904},
}

// v4l2 knob indices.
const (
	v4l2KnobHDRMode = iota
	v4l2KnobMaxBufs
	v4l2KnobWDRStrength
)

var v4l2KnobSpecs = []Knob{
	{Name: "hdr_mode", Mode: 0o644, Kind: KnobInt, Def: 0, Min: 0, Max: 1, Boot: 1, Site: 900},
	{Name: "max_bufs", Mode: 0o644, Kind: KnobInt, Def: 32, Min: 1, Max: 64, Boot: 1, Site: 904},
	{Name: "wdr_strength", Mode: 0o644, Kind: KnobInt, Def: 0, Min: 0, Max: 8, Boot: 0, Site: 908},
}

// audio knob indices.
const (
	audioKnobDeepBuffer = iota
	audioKnobRateLock
)

var audioKnobSpecs = []Knob{
	{Name: "deep_buffer", Mode: 0o644, Kind: KnobInt, Def: 0, Min: 0, Max: 1, Boot: 1, Site: 900},
	{Name: "rate_lock", Mode: 0o644, Kind: KnobInt, Def: 0, Min: 0, Max: 1, Boot: 1, Site: 904},
}

// gpu knob indices.
const (
	gpuKnobPerfLevel = iota
	gpuKnobSecureCtx
	gpuKnobGovernor
)

var gpuKnobSpecs = []Knob{
	{Name: "perf_level", Mode: 0o644, Kind: KnobInt, Def: 0, Min: 0, Max: 3, Boot: 2, Site: 900},
	{Name: "secure_ctx", Mode: 0o644, Kind: KnobInt, Def: 0, Min: 0, Max: 1, Boot: 0, Site: 904},
	{Name: "devfreq_governor", Mode: 0o644, Kind: KnobString, DefStr: "ondemand",
		Choices: []string{"ondemand", "performance", "powersave"}, Boot: 1, Site: 908},
}

// wlan knob indices.
const (
	wlanKnobCountry = iota
	wlanKnobRoamOff
	wlanKnobAMPDU
)

var wlanKnobSpecs = []Knob{
	{Name: "country", Mode: 0o644, Kind: KnobString, DefStr: "00",
		Choices: []string{"00", "US", "EU", "JP"}, Boot: 1, Site: 900},
	{Name: "roam_off", Mode: 0o644, Kind: KnobInt, Def: 0, Min: 0, Max: 1, Boot: 0, Site: 904},
	{Name: "ampdu", Mode: 0o644, Kind: KnobInt, Def: 1, Min: 0, Max: 1, Boot: 1, Site: 908},
}

// iio knob indices.
const (
	iioKnobBatchMode = iota
	iioKnobWatermark
)

var iioKnobSpecs = []Knob{
	{Name: "batch_mode", Mode: 0o644, Kind: KnobInt, Def: 0, Min: 0, Max: 1, Boot: 1, Site: 900},
	{Name: "watermark", Mode: 0o644, Kind: KnobInt, Def: 1, Min: 1, Max: 256, Boot: 0, Site: 904},
}

// nfc knob indices.
const (
	nfcKnobCEMode = iota
	nfcKnobESERoute
)

var nfcKnobSpecs = []Knob{
	{Name: "ce_mode", Mode: 0o644, Kind: KnobInt, Def: 0, Min: 0, Max: 1, Boot: 0, Site: 900},
	{Name: "ese_route", Mode: 0o644, Kind: KnobInt, Def: 0, Min: 0, Max: 2, Boot: 1, Site: 904},
}

// thermal knob indices.
const (
	thermalKnobMitigation = iota
	thermalKnobPollMS
)

var thermalKnobSpecs = []Knob{
	{Name: "mitigation", Mode: 0o644, Kind: KnobInt, Def: 1, Min: 0, Max: 1, Boot: 1, Site: 900},
	{Name: "poll_ms", Mode: 0o644, Kind: KnobInt, Def: 1000, Min: 10, Max: 10000, Boot: 1, Site: 904},
}

// touch knob indices.
const (
	touchKnobGloveMode = iota
	touchKnobReportRate
	touchKnobFWDebug
)

var touchKnobSpecs = []Knob{
	{Name: "glove_mode", Mode: 0o644, Kind: KnobInt, Def: 0, Min: 0, Max: 1, Boot: 1, Site: 900},
	{Name: "report_rate", Mode: 0o644, Kind: KnobInt, Def: 120, Min: 60, Max: 480, Boot: 1, Site: 904},
	{Name: "fw_debug", Mode: 0o644, Kind: KnobInt, Def: 0, Min: 0, Max: 1, Boot: 0, Site: 908},
}
