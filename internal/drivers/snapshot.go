package drivers

// Per-driver checkpoint/restore for device snapshots. Each driver embeds
// snap.Dirty (the kernel bumps it centrally on open and on every fd op
// reaching the driver) and implements snap.Subsystem here: Checkpoint
// deep-copies the live state into an immutable value, Restore copies it
// back. The state types below are registered with droidvet's snapshot
// pass, so any mutation of a captured state outside these methods is
// flagged — the snapshot must stay reusable across many restores.

// --- TCPC ---

type tcpcState struct {
	mode      uint64
	voltageMV uint64
	toggling  bool
	attached  bool
	alertMask uint64
	vbusOn    bool
	probed    bool
	i2cRegs   [256]byte
	opens     int
}

// Checkpoint implements snap.Subsystem.
func (d *TCPCDriver) Checkpoint() any {
	d.mu.Lock()
	defer d.mu.Unlock()
	return &tcpcState{
		mode: d.mode, voltageMV: d.voltageMV, toggling: d.toggling,
		attached: d.attached, alertMask: d.alertMask, vbusOn: d.vbusOn,
		probed: d.probed, i2cRegs: d.i2cRegs, opens: d.opens,
	}
}

// Restore implements snap.Subsystem.
func (d *TCPCDriver) Restore(s any) {
	st := s.(*tcpcState)
	d.mu.Lock()
	defer d.mu.Unlock()
	d.mode, d.voltageMV = st.mode, st.voltageMV
	d.toggling, d.attached = st.toggling, st.attached
	d.alertMask = st.alertMask
	d.vbusOn, d.probed = st.vbusOn, st.probed
	d.i2cRegs = st.i2cRegs
	d.opens = st.opens
}

// --- HCI ---

type hciState struct {
	up         bool
	scanMode   uint64
	inquiring  bool
	codecTable uint64
	codecStale bool
	conns      map[uint64]hciConnection // by value: connections deep-copied
	acceptQ    []uint64
	nextHandle uint64
	name       string
}

// Checkpoint implements snap.Subsystem.
func (d *HCIDriver) Checkpoint() any {
	d.mu.Lock()
	defer d.mu.Unlock()
	st := &hciState{
		up: d.up, scanMode: d.scanMode, inquiring: d.inquiring,
		codecTable: d.codecTable, codecStale: d.codecStale,
		conns:      make(map[uint64]hciConnection, len(d.conns)),
		nextHandle: d.nextHandle, name: d.name,
	}
	for h, conn := range d.conns { //droidvet:nondet order-independent map copy
		st.conns[h] = *conn
	}
	if d.acceptQ != nil {
		st.acceptQ = make([]uint64, len(d.acceptQ))
		copy(st.acceptQ, d.acceptQ)
	}
	return st
}

// Restore implements snap.Subsystem.
func (d *HCIDriver) Restore(s any) {
	st := s.(*hciState)
	d.mu.Lock()
	defer d.mu.Unlock()
	d.up, d.scanMode, d.inquiring = st.up, st.scanMode, st.inquiring
	d.codecTable, d.codecStale = st.codecTable, st.codecStale
	d.conns = make(map[uint64]*hciConnection, len(st.conns))
	for h, conn := range st.conns { //droidvet:nondet order-independent map copy
		cc := conn
		d.conns[h] = &cc
	}
	d.acceptQ = nil
	if st.acceptQ != nil {
		d.acceptQ = make([]uint64, len(st.acceptQ))
		copy(d.acceptQ, st.acceptQ)
	}
	d.nextHandle = st.nextHandle
	d.name = st.name
}

// --- L2CAP ---

// L2CAP keeps all mutable state per-fd (in l2capChan); closing the fds —
// which the kernel restore does by dropping its file table — is the whole
// restore. The driver itself is stateless.

// Checkpoint implements snap.Subsystem.
func (d *L2CAPDriver) Checkpoint() any { return nil }

// Restore implements snap.Subsystem.
func (d *L2CAPDriver) Restore(any) {}

// --- V4L2 ---

type v4l2State struct {
	width     uint64
	height    uint64
	pixfmt    uint64
	nbufs     uint64
	queued    []uint64
	streaming bool
	frames    uint64
	ctrls     map[uint64]uint64
}

// Checkpoint implements snap.Subsystem.
func (d *V4L2Driver) Checkpoint() any {
	d.mu.Lock()
	defer d.mu.Unlock()
	st := &v4l2State{
		width: d.width, height: d.height, pixfmt: d.pixfmt, nbufs: d.nbufs,
		streaming: d.streaming, frames: d.frames,
		ctrls: make(map[uint64]uint64, len(d.ctrls)),
	}
	if d.queued != nil {
		st.queued = make([]uint64, len(d.queued))
		copy(st.queued, d.queued)
	}
	for k, v := range d.ctrls { //droidvet:nondet order-independent map copy
		st.ctrls[k] = v
	}
	return st
}

// Restore implements snap.Subsystem.
func (d *V4L2Driver) Restore(s any) {
	st := s.(*v4l2State)
	d.mu.Lock()
	defer d.mu.Unlock()
	d.width, d.height, d.pixfmt, d.nbufs = st.width, st.height, st.pixfmt, st.nbufs
	d.streaming, d.frames = st.streaming, st.frames
	d.queued = nil
	if st.queued != nil {
		d.queued = make([]uint64, len(st.queued))
		copy(d.queued, st.queued)
	}
	d.ctrls = make(map[uint64]uint64, len(st.ctrls))
	for k, v := range st.ctrls { //droidvet:nondet order-independent map copy
		d.ctrls[k] = v
	}
}

// --- Audio ---

type audioState struct {
	state    pcmState
	rate     uint64
	channels uint64
	period   uint64
	buffered uint64
	volume   uint64
	pos      uint64
}

// Checkpoint implements snap.Subsystem.
func (d *AudioDriver) Checkpoint() any {
	d.mu.Lock()
	defer d.mu.Unlock()
	return &audioState{
		state: d.state, rate: d.rate, channels: d.channels,
		period: d.period, buffered: d.buffered, volume: d.volume, pos: d.pos,
	}
}

// Restore implements snap.Subsystem.
func (d *AudioDriver) Restore(s any) {
	st := s.(*audioState)
	d.mu.Lock()
	defer d.mu.Unlock()
	d.state, d.rate, d.channels = st.state, st.rate, st.channels
	d.period, d.buffered, d.volume, d.pos = st.period, st.buffered, st.volume, st.pos
}

// --- GPU ---

type gpuState struct {
	buffers  map[uint64]uint64
	sizes    map[uint64]uint64
	nextBuf  uint64
	fence    uint64
	ctxPrio  uint64
	submits  uint64
	mapCount uint64
}

// Checkpoint implements snap.Subsystem.
func (d *GPUDriver) Checkpoint() any {
	d.mu.Lock()
	defer d.mu.Unlock()
	st := &gpuState{
		buffers: make(map[uint64]uint64, len(d.buffers)),
		sizes:   make(map[uint64]uint64, len(d.sizes)),
		nextBuf: d.nextBuf, fence: d.fence, ctxPrio: d.ctxPrio,
		submits: d.submits, mapCount: d.mapCount,
	}
	for k, v := range d.buffers { //droidvet:nondet order-independent map copy
		st.buffers[k] = v
	}
	for k, v := range d.sizes { //droidvet:nondet order-independent map copy
		st.sizes[k] = v
	}
	return st
}

// Restore implements snap.Subsystem.
func (d *GPUDriver) Restore(s any) {
	st := s.(*gpuState)
	d.mu.Lock()
	defer d.mu.Unlock()
	d.buffers = make(map[uint64]uint64, len(st.buffers))
	for k, v := range st.buffers { //droidvet:nondet order-independent map copy
		d.buffers[k] = v
	}
	d.sizes = make(map[uint64]uint64, len(st.sizes))
	for k, v := range st.sizes { //droidvet:nondet order-independent map copy
		d.sizes[k] = v
	}
	d.nextBuf, d.fence, d.ctxPrio = st.nextBuf, st.fence, st.ctxPrio
	d.submits, d.mapCount = st.submits, st.mapCount
}

// --- WLAN ---

type wlanState struct {
	scanned  bool
	assoc    bool
	wasAssoc bool
	bssid    uint64
	rateMask uint64
	channel  uint64
	power    uint64
	txFrames uint64
}

// Checkpoint implements snap.Subsystem.
func (d *WLANDriver) Checkpoint() any {
	d.mu.Lock()
	defer d.mu.Unlock()
	return &wlanState{
		scanned: d.scanned, assoc: d.assoc, wasAssoc: d.wasAssoc,
		bssid: d.bssid, rateMask: d.rateMask, channel: d.channel,
		power: d.power, txFrames: d.txFrames,
	}
}

// Restore implements snap.Subsystem.
func (d *WLANDriver) Restore(s any) {
	st := s.(*wlanState)
	d.mu.Lock()
	defer d.mu.Unlock()
	d.scanned, d.assoc, d.wasAssoc = st.scanned, st.assoc, st.wasAssoc
	d.bssid, d.rateMask, d.channel = st.bssid, st.rateMask, st.channel
	d.power, d.txFrames = st.power, st.txFrames
}

// --- Sensor hub ---

type sensorState struct {
	enabled  [8]bool
	freq     uint64
	triggers uint64
}

// Checkpoint implements snap.Subsystem.
func (d *SensorDriver) Checkpoint() any {
	d.mu.Lock()
	defer d.mu.Unlock()
	return &sensorState{enabled: d.enabled, freq: d.freq, triggers: d.triggers}
}

// Restore implements snap.Subsystem.
func (d *SensorDriver) Restore(s any) {
	st := s.(*sensorState)
	d.mu.Lock()
	defer d.mu.Unlock()
	d.enabled, d.freq, d.triggers = st.enabled, st.freq, st.triggers
}

// --- NFC ---

type nfcState struct {
	powered bool
	fwLen   uint64
}

// Checkpoint implements snap.Subsystem.
func (d *NFCDriver) Checkpoint() any {
	d.mu.Lock()
	defer d.mu.Unlock()
	return &nfcState{powered: d.powered, fwLen: d.fwLen}
}

// Restore implements snap.Subsystem.
func (d *NFCDriver) Restore(s any) {
	st := s.(*nfcState)
	d.mu.Lock()
	defer d.mu.Unlock()
	d.powered, d.fwLen = st.powered, st.fwLen
}

// --- Thermal ---

type thermalState struct {
	trips  [4]uint64
	policy uint64
}

// Checkpoint implements snap.Subsystem.
func (d *ThermalDriver) Checkpoint() any {
	d.mu.Lock()
	defer d.mu.Unlock()
	return &thermalState{trips: d.trips, policy: d.policy}
}

// Restore implements snap.Subsystem.
func (d *ThermalDriver) Restore(s any) {
	st := s.(*thermalState)
	d.mu.Lock()
	defer d.mu.Unlock()
	d.trips, d.policy = st.trips, st.policy
}

// --- Touch ---

type touchState struct {
	calibrated bool
	mode       uint64
	gridW      uint64
	gridH      uint64
	fwVersion  uint64
	events     uint64
	selfTests  uint64
}

// Checkpoint implements snap.Subsystem.
func (d *TouchDriver) Checkpoint() any {
	d.mu.Lock()
	defer d.mu.Unlock()
	return &touchState{
		calibrated: d.calibrated, mode: d.mode, gridW: d.gridW, gridH: d.gridH,
		fwVersion: d.fwVersion, events: d.events, selfTests: d.selfTests,
	}
}

// Restore implements snap.Subsystem.
func (d *TouchDriver) Restore(s any) {
	st := s.(*touchState)
	d.mu.Lock()
	defer d.mu.Unlock()
	d.calibrated, d.mode = st.calibrated, st.mode
	d.gridW, d.gridH, d.fwVersion = st.gridW, st.gridH, st.fwVersion
	d.events, d.selfTests = st.events, st.selfTests
}
