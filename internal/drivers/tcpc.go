package drivers

import (
	"fmt"
	"sync"

	"droidfuzz/internal/bugs"
	"droidfuzz/internal/snap"
	"droidfuzz/internal/vkernel"
)

// TCPC ioctl request codes (USB Type-C port controller with an rt1711h-like
// I2C interface chip).
const (
	TCPCReset        uint64 = 0xa101
	TCPCSetMode      uint64 = 0xa102
	TCPCSetVoltage   uint64 = 0xa103
	TCPCEnableToggle uint64 = 0xa104
	TCPCGetStatus    uint64 = 0xa105
	TCPCI2CXfer      uint64 = 0xa106
	TCPCProbeChip    uint64 = 0xa107
	TCPCSetAlert     uint64 = 0xa108
	TCPCVbusOn       uint64 = 0xa109
	TCPCVbusOff      uint64 = 0xa10a
	TCPCAttach       uint64 = 0xa10b
	TCPCDetach       uint64 = 0xa10c
)

// TCPC port roles.
const (
	TCPCModeOff uint64 = 0
	TCPCModeUFP uint64 = 1
	TCPCModeDFP uint64 = 2
	TCPCModeDRP uint64 = 3
)

// RT1711Addr is the I2C address of the rt1711h interface chip; probing it in
// the wrong port state reproduces bug №1.
const RT1711Addr uint64 = 0x4e

// RT1711InitReg/RT1711InitVal is the vendor init handshake the USB HAL
// writes before re-probing the chip. The value is proprietary: it appears in
// no public description, so only HAL-mediated traffic establishes it.
const (
	RT1711InitReg uint64 = 0x18
	RT1711InitVal byte   = 0x5a
)

// TCPCDriver is the Type-C port controller driver. Adapter state is shared
// across all open fds, as the real single-port hardware would be.
type TCPCDriver struct {
	bugs bugs.Set //droidvet:checkpoint ephemeral injected fault set, fixed at construction
	snap.Dirty

	mu        sync.Mutex
	mode      uint64
	voltageMV uint64
	toggling  bool
	attached  bool
	alertMask uint64
	vbusOn    bool
	probed    bool
	i2cRegs   [256]byte
	opens     int

	knobs *Knobs
}

// NewTCPC returns the driver with the given enabled bug set.
func NewTCPC(b bugs.Set) *TCPCDriver {
	return &TCPCDriver{bugs: b, knobs: NewKnobs("tcpc", tcpcKnobSpecs)}
}

// Name implements vkernel.Driver.
func (d *TCPCDriver) Name() string { return "tcpc" }

// Knobs returns the runtime-parameter state.
func (d *TCPCDriver) Knobs() *Knobs { return d.knobs }

// Open implements vkernel.Driver.
func (d *TCPCDriver) Open(ctx *vkernel.Ctx) (vkernel.Conn, error) {
	d.mu.Lock()
	d.opens++
	d.mu.Unlock()
	ctx.Cover("tcpc", 1)
	return &tcpcConn{d: d}, nil
}

type tcpcConn struct {
	vkernel.BaseConn
	d *TCPCDriver
}

func (c *tcpcConn) Close(ctx *vkernel.Ctx) error {
	ctx.Cover("tcpc", 2)
	c.d.mu.Lock()
	c.d.opens--
	c.d.mu.Unlock()
	return nil
}

func (c *tcpcConn) Ioctl(ctx *vkernel.Ctx, req uint64, arg []byte) (uint64, []byte, error) {
	d := c.d
	d.mu.Lock()
	defer d.mu.Unlock()
	switch req {
	case TCPCReset:
		ctx.Cover("tcpc", 10)
		d.mode = TCPCModeOff
		d.voltageMV = 0
		d.toggling = false
		d.attached = false
		d.alertMask = 0
		d.vbusOn = false
		d.probed = false
		return 0, nil, nil

	case TCPCSetMode:
		ctx.Cover("tcpc", 11)
		mode := ArgU64(arg, 0)
		if mode > TCPCModeDRP {
			ctx.Cover("tcpc", 12)
			return 0, nil, vkernel.EINVAL
		}
		d.mode = mode
		ctx.Logf("tcpc0", "port role set to %d", mode)
		ctx.Cover("tcpc", 13+uint32(mode)) // 13..16: per-role path
		if mode == TCPCModeDRP {
			ctx.Cover("tcpc", 17) // dual-role init path
			if d.knobs.Int(tcpcKnobPDCompliance) == 0 {
				// Compliance testing off: vendor DRP quirk handling.
				ctx.Cover("tcpc", 615)
			}
		}
		return 0, nil, nil

	case TCPCSetVoltage:
		ctx.Cover("tcpc", 20)
		mv := ArgU64(arg, 0)
		if mv > d.knobs.Int(tcpcKnobMaxContractMV) {
			ctx.Cover("tcpc", 21)
			return 0, nil, vkernel.EINVAL
		}
		if d.mode == TCPCModeOff {
			ctx.Cover("tcpc", 22)
			return 0, nil, vkernel.EBUSY
		}
		if mv > 20000 {
			// Extended PD contract tier. Reachable only after
			// max_contract_mv has been raised over sysfs; no ioctl
			// sequence alone can pass the ceiling check above.
			ctx.Cover("tcpc", 600+bucket((mv-20001)/2000, 5))
			if d.knobs.Int(tcpcKnobPDCompliance) != 0 {
				// Compliance checking clamps the contract back to spec.
				ctx.Cover("tcpc", 610)
				mv = 20000
			} else {
				ctx.Cover("tcpc", 611)
				// Bug №13: with compliance checking disabled nothing
				// bounds PDO selection and the regulator WARNs on the
				// overvoltage contract — both knobs plus this ioctl are
				// required, the SyzParam bug class.
				if d.bugs.Has(bugs.TCPCContractOVP) {
					ctx.Warn("tcpc_pd_select_pdo",
						fmt.Sprintf("overvoltage PD contract %d mV with compliance checking off", mv))
					return 0, nil, vkernel.EIO
				}
			}
		}
		if d.vbusOn {
			// Live PD renegotiation: stepping the contract while VBUS is
			// up walks per-tier regulator reprogramming paths.
			ctx.Cover("tcpc", 300+bucket(mv/500, 40))
		}
		d.voltageMV = mv
		// PD contract negotiation paths depend on the voltage tier.
		ctx.Cover("tcpc", 24+bucket(mv/500, 40))
		if mv >= 9000 {
			ctx.Cover("tcpc", 70) // high-voltage contract path
		}
		return 0, nil, nil

	case TCPCEnableToggle:
		ctx.Cover("tcpc", 80)
		if d.mode != TCPCModeDRP {
			ctx.Cover("tcpc", 81)
			return 0, nil, vkernel.EINVAL
		}
		d.toggling = true
		ctx.Cover("tcpc", 82)
		return 0, nil, nil

	case TCPCGetStatus:
		ctx.Cover("tcpc", 90)
		out := PutU64(nil, d.mode)
		out = PutU64(out, d.voltageMV)
		var flags uint64
		if d.attached {
			flags |= 1
		}
		if d.vbusOn {
			flags |= 2
		}
		if d.toggling {
			flags |= 4
		}
		out = PutU64(out, flags)
		return 0, out, nil

	case TCPCI2CXfer:
		ctx.Cover("tcpc", 100)
		addr := ArgU64(arg, 0)
		reg := ArgU64(arg, 1)
		val := ArgU64(arg, 2)
		if addr != RT1711Addr && addr != 0x22 {
			ctx.Cover("tcpc", 101)
			return 0, nil, vkernel.ENODEV
		}
		if reg > 0xff {
			ctx.Cover("tcpc", 102)
			return 0, nil, vkernel.EINVAL
		}
		d.i2cRegs[reg] = byte(val)
		ctx.Cover("tcpc", 104+bucket(reg, 24))
		if d.probed {
			// Post-probe, register writes reprogram live chip blocks.
			ctx.Cover("tcpc", 230+bucket(reg, 24))
		}
		if d.attached && d.vbusOn {
			// PD-message register window during an active contract.
			ctx.Cover("tcpc", 260+bucket(reg, 12))
		}
		return uint64(d.i2cRegs[reg]), nil, nil

	case TCPCProbeChip:
		ctx.Cover("tcpc", 130)
		addr := ArgU64(arg, 0)
		if addr != RT1711Addr {
			ctx.Cover("tcpc", 131)
			return 0, nil, vkernel.ENODEV
		}
		// Bug №1: re-probing the rt1711h — after the vendor init
		// handshake register is armed — while a dual-role port is
		// actively toggling under a high-voltage contract trips the
		// probe-path WARN (the chip is re-initialized mid-negotiation).
		if d.bugs.Has(bugs.TCPCProbe) && d.mode == TCPCModeDRP &&
			d.toggling && d.voltageMV >= 9000 &&
			d.i2cRegs[RT1711InitReg] == RT1711InitVal {
			ctx.Cover("tcpc", 132)
			ctx.Warn("rt1711_i2c_probe",
				fmt.Sprintf("rt1711h re-probe during active DRP toggle (vbus=%dmV)", d.voltageMV))
			return 0, nil, vkernel.EIO
		}
		d.probed = true
		ctx.Cover("tcpc", 133)
		return 0, nil, nil

	case TCPCSetAlert:
		ctx.Cover("tcpc", 140)
		d.alertMask = ArgU64(arg, 0)
		ctx.Cover("tcpc", 141+bucket(d.alertMask, 16))
		return 0, nil, nil

	case TCPCAttach:
		ctx.Cover("tcpc", 160)
		if d.mode == TCPCModeOff {
			ctx.Cover("tcpc", 161)
			return 0, nil, vkernel.EINVAL
		}
		d.attached = true
		ctx.Cover("tcpc", 162+uint32(d.mode))
		return 0, nil, nil

	case TCPCDetach:
		ctx.Cover("tcpc", 170)
		d.attached = false
		d.vbusOn = false
		return 0, nil, nil

	case TCPCVbusOn:
		ctx.Cover("tcpc", 180)
		if !d.attached {
			ctx.Cover("tcpc", 181)
			return 0, nil, vkernel.EBUSY
		}
		// Bug №4: enabling VBUS on an attached UFP port at the default
		// 5 V contract with the overcurrent alert (bit 3) masked trips
		// the regulator WARN — a sink must not source power while OC
		// reporting is off. The exact 5000 mV contract is what the
		// vendor HAL negotiates; a fuzzer sweeping the voltage range
		// almost never lands on it.
		if d.bugs.Has(bugs.TCPCVbus) && d.mode == TCPCModeUFP &&
			d.alertMask&0x8 != 0 && d.voltageMV == 5000 {
			ctx.Cover("tcpc", 182)
			ctx.Warn("tcpc_vbus_regulator",
				"UFP sourcing VBUS with overcurrent alert masked")
			return 0, nil, vkernel.EIO
		}
		d.vbusOn = true
		ctx.Logf("tcpc0", "vbus enabled at %d mV", d.voltageMV)
		ctx.Cover("tcpc", 183)
		if d.voltageMV >= 9000 {
			ctx.Cover("tcpc", 184) // high-power enable path
		}
		return 0, nil, nil

	case TCPCVbusOff:
		ctx.Cover("tcpc", 190)
		d.vbusOn = false
		return 0, nil, nil

	default:
		if ret, out, err, ok := ChaffIoctl(ctx, "tcpc", req); ok {
			return ret, out, err
		}
		ctx.Cover("tcpc", 3)
		return 0, nil, vkernel.ENOTTY
	}
}

func (c *tcpcConn) Read(ctx *vkernel.Ctx, n int) ([]byte, error) {
	ctx.Cover("tcpc", 200)
	d := c.d
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.attached {
		return nil, vkernel.EAGAIN
	}
	ctx.Cover("tcpc", 201)
	// CC-line event stream: one status byte per event.
	if n > 16 {
		n = 16
	}
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(d.mode)<<4 | byte(d.alertMask&0xf)
	}
	return out, nil
}
