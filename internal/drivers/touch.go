package drivers

import (
	"sync"

	"droidfuzz/internal/bugs"
	"droidfuzz/internal/dsl"
	"droidfuzz/internal/snap"
	"droidfuzz/internal/vkernel"
)

// Touch controller ioctl request codes (evdev-adjacent vendor interface).
const (
	TouchCalibrate uint64 = 0xab01
	TouchSetMode   uint64 = 0xab02
	TouchFwUpdate  uint64 = 0xab03
	TouchSelfTest  uint64 = 0xab04
	TouchGetInfo   uint64 = 0xab05
	TouchSetGrid   uint64 = 0xab06
)

// Touch reporting modes.
const (
	TouchModeOff     uint64 = 0
	TouchModeFinger  uint64 = 1
	TouchModeStylus  uint64 = 2
	TouchModeGesture uint64 = 3
)

// PathTouch is the touch controller's device node.
const PathTouch = "/dev/touch0"

// TouchDriver models a capacitive touch controller: calibration, reporting
// modes, a firmware-update path with a vendor header, and an event stream.
// Injected events arrive via write() as (x, y, pressure) triples.
type TouchDriver struct {
	bugs bugs.Set //droidvet:checkpoint ephemeral injected fault set, fixed at construction
	snap.Dirty

	mu         sync.Mutex
	calibrated bool
	mode       uint64
	gridW      uint64
	gridH      uint64
	fwVersion  uint64
	events     uint64
	selfTests  uint64

	knobs *Knobs
}

// NewTouch returns the driver with the given enabled bug set.
func NewTouch(b bugs.Set) *TouchDriver {
	return &TouchDriver{
		bugs: b, gridW: 1080, gridH: 1920, fwVersion: 0x0100,
		knobs: NewKnobs("touch", touchKnobSpecs),
	}
}

// Name implements vkernel.Driver.
func (d *TouchDriver) Name() string { return "touch" }

// Knobs returns the runtime-parameter state.
func (d *TouchDriver) Knobs() *Knobs { return d.knobs }

// Open implements vkernel.Driver.
func (d *TouchDriver) Open(ctx *vkernel.Ctx) (vkernel.Conn, error) {
	ctx.Cover("touch", 1)
	return &touchConn{d: d}, nil
}

type touchConn struct {
	vkernel.BaseConn
	d *TouchDriver
}

func (c *touchConn) Ioctl(ctx *vkernel.Ctx, req uint64, arg []byte) (uint64, []byte, error) {
	d := c.d
	d.mu.Lock()
	defer d.mu.Unlock()
	switch req {
	case TouchCalibrate:
		ctx.Cover("touch", 10)
		refX, refY := ArgU64(arg, 0), ArgU64(arg, 1)
		if refX >= d.gridW || refY >= d.gridH {
			ctx.Cover("touch", 11)
			return 0, nil, vkernel.EINVAL
		}
		d.calibrated = true
		ctx.Logf("touch0", "calibrated at (%d,%d)", refX, refY)
		ctx.Cover("touch", 12+bucket(refX/128, 10))
		return 0, nil, nil

	case TouchSetMode:
		ctx.Cover("touch", 30)
		mode := ArgU64(arg, 0)
		if mode > TouchModeGesture {
			ctx.Cover("touch", 31)
			return 0, nil, vkernel.EINVAL
		}
		if mode != TouchModeOff && !d.calibrated {
			ctx.Cover("touch", 32)
			return 0, nil, vkernel.EAGAIN
		}
		d.mode = mode
		ctx.Cover("touch", 33+uint32(mode))
		if mode == TouchModeFinger && d.knobs.Int(touchKnobGloveMode) == 1 {
			// High-sensitivity glove scanning, module-param gated.
			ctx.Cover("touch", 600)
		}
		return 0, nil, nil

	case TouchFwUpdate:
		ctx.Cover("touch", 50)
		if d.mode != TouchModeOff {
			ctx.Cover("touch", 51)
			return 0, nil, vkernel.EBUSY
		}
		img := ArgBytes(arg, 0)
		// Vendor header: 'T','P' + version word.
		if len(img) < 4 || img[0] != 'T' || img[1] != 'P' {
			ctx.Cover("touch", 52)
			return 0, nil, vkernel.EINVAL
		}
		d.fwVersion = uint64(img[2]) | uint64(img[3])<<8
		d.calibrated = false // new firmware needs recalibration
		ctx.Cover("touch", 53+bucket(d.fwVersion, 8))
		if d.knobs.Int(touchKnobFWDebug) == 1 {
			// Verbose flash verification pass, module-param gated.
			ctx.Cover("touch", 620+bucket(d.fwVersion, 4))
		}
		return d.fwVersion, nil, nil

	case TouchSelfTest:
		ctx.Cover("touch", 70)
		if !d.calibrated {
			ctx.Cover("touch", 71)
			return 0, nil, vkernel.EAGAIN
		}
		d.selfTests++
		ctx.Cover("touch", 72+uint32(d.selfTests%4))
		return 1, nil, nil // pass

	case TouchGetInfo:
		ctx.Cover("touch", 80)
		out := PutU64(nil, d.fwVersion)
		out = PutU64(out, d.mode)
		out = PutU64(out, d.events)
		return 0, out, nil

	case TouchSetGrid:
		ctx.Cover("touch", 90)
		w, h := ArgU64(arg, 0), ArgU64(arg, 1)
		if w == 0 || h == 0 || w > 4096 || h > 4096 {
			ctx.Cover("touch", 91)
			return 0, nil, vkernel.EINVAL
		}
		d.gridW, d.gridH = w, h
		d.calibrated = false
		ctx.Cover("touch", 92+bucket(w/512, 8))
		return 0, nil, nil

	default:
		if ret, out, err, ok := ChaffIoctl(ctx, "touch", req); ok {
			return ret, out, err
		}
		ctx.Cover("touch", 3)
		return 0, nil, vkernel.ENOTTY
	}
}

// Write injects touch events: 6-byte records of x, y, pressure (LE u16).
func (c *touchConn) Write(ctx *vkernel.Ctx, p []byte) (int, error) {
	d := c.d
	d.mu.Lock()
	defer d.mu.Unlock()
	ctx.Cover("touch", 110)
	if d.mode == TouchModeOff {
		ctx.Cover("touch", 111)
		return 0, vkernel.EINVAL
	}
	if len(p)%6 != 0 || len(p) == 0 {
		ctx.Cover("touch", 112)
		return 0, vkernel.EINVAL
	}
	n := len(p) / 6
	for i := 0; i < n; i++ {
		x := uint64(p[i*6]) | uint64(p[i*6+1])<<8
		y := uint64(p[i*6+2]) | uint64(p[i*6+3])<<8
		if x >= d.gridW || y >= d.gridH {
			ctx.Cover("touch", 113)
			return i * 6, vkernel.EFAULT
		}
		d.events++
	}
	ctx.Cover("touch", 300+logBucket(d.events, 12)) // event-stream ramp
	ctx.Cover("touch", 114+bucket(uint64(n), 8))
	if rate := d.knobs.Int(touchKnobReportRate); rate != 120 {
		// Non-default scan rates re-time the event batching.
		ctx.Cover("touch", 610+bucket(rate/60, 8))
	}
	return len(p), nil
}

// Read drains pending event reports.
func (c *touchConn) Read(ctx *vkernel.Ctx, n int) ([]byte, error) {
	d := c.d
	d.mu.Lock()
	defer d.mu.Unlock()
	ctx.Cover("touch", 130)
	if d.mode == TouchModeOff {
		return nil, vkernel.EAGAIN
	}
	ctx.Cover("touch", 131)
	if n > 64 {
		n = 64
	}
	return make([]byte, n), nil
}

func (c *touchConn) Close(ctx *vkernel.Ctx) error {
	ctx.Cover("touch", 2)
	return nil
}

// TouchDescs describes the touch controller surface.
func TouchDescs() []*dsl.CallDesc {
	const res = "fd_touch"
	descs := []*dsl.CallDesc{
		openDesc("touch", PathTouch, res),
		closeDesc("touch", res),
		readDesc("touch", res),
		writeDesc("touch", res, 36),
		ioctlDesc("TOUCH_CALIBRATE", res, TouchCalibrate, 0.6, "",
			dsl.Field{Name: "refx", Type: dsl.Int(0, 4100)},
			dsl.Field{Name: "refy", Type: dsl.Int(0, 4100)}),
		ioctlDesc("TOUCH_SET_MODE", res, TouchSetMode, 0.6, "",
			dsl.Field{Name: "mode", Type: dsl.Flags(TouchModeOff, TouchModeFinger, TouchModeStylus, TouchModeGesture)}),
		ioctlDesc("TOUCH_FW_UPDATE", res, TouchFwUpdate, 0.4, "",
			dsl.Field{Name: "image", Type: dsl.Buffer(64)}),
		ioctlDesc("TOUCH_SELF_TEST", res, TouchSelfTest, 0.4, ""),
		ioctlDesc("TOUCH_GET_INFO", res, TouchGetInfo, 0.3, ""),
		ioctlDesc("TOUCH_SET_GRID", res, TouchSetGrid, 0.4, "",
			dsl.Field{Name: "width", Type: dsl.Int(0, 4200)},
			dsl.Field{Name: "height", Type: dsl.Int(0, 4200)}),
	}
	return append(descs, chaffDescs("touch", res, 0xab00, 10)...)
}
