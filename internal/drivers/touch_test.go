package drivers

import (
	"errors"
	"testing"

	"droidfuzz/internal/vkernel"
)

func TestTouchLifecycle(t *testing.T) {
	r := newRig(t, PathTouch, NewTouch(nil))
	// Reporting requires calibration first.
	r.mustErr(vkernel.EAGAIN, TouchSetMode, TouchModeFinger)
	r.mustErr(vkernel.EINVAL, TouchCalibrate, 5000, 0)
	r.mustOK(TouchCalibrate, 540, 960)
	r.mustOK(TouchSetMode, TouchModeFinger)
	r.mustErr(vkernel.EINVAL, TouchSetMode, 9)

	// Event injection: aligned records within the grid.
	ev := []byte{0x10, 0x00, 0x20, 0x00, 0x40, 0x00}
	if n, err := r.k.Write(1, vkernel.OriginNative, r.fd, ev); err != nil || n != 6 {
		t.Fatalf("write = %d/%v", n, err)
	}
	// Misaligned stream rejected.
	if _, err := r.k.Write(1, vkernel.OriginNative, r.fd, ev[:5]); !errors.Is(err, vkernel.EINVAL) {
		t.Fatal("misaligned event accepted")
	}
	// Out-of-grid coordinate faults.
	bad := []byte{0xff, 0xff, 0x20, 0x00, 0x40, 0x00}
	if _, err := r.k.Write(1, vkernel.OriginNative, r.fd, bad); !errors.Is(err, vkernel.EFAULT) {
		t.Fatal("out-of-grid event accepted")
	}

	if ok := r.mustOK(TouchSelfTest); ok != 1 {
		t.Fatal("self test failed")
	}
	_, out, _ := r.ioctl(TouchGetInfo)
	if ArgU64(out, 2) != 1 {
		t.Fatalf("event count = %d", ArgU64(out, 2))
	}
}

func TestTouchFirmwareUpdate(t *testing.T) {
	r := newRig(t, PathTouch, NewTouch(nil))
	r.mustOK(TouchCalibrate, 100, 100)
	r.mustOK(TouchSetMode, TouchModeFinger)
	// Update refused while reporting.
	r.mustErr(vkernel.EBUSY, TouchFwUpdate)
	r.mustOK(TouchSetMode, TouchModeOff)
	// Bad header rejected.
	if _, _, err := r.ioctlBuf(TouchFwUpdate, nil, []byte{'X', 'X', 2, 0}); !errors.Is(err, vkernel.EINVAL) {
		t.Fatal("bad fw header accepted")
	}
	ver, _, err := r.ioctlBuf(TouchFwUpdate, nil, []byte{'T', 'P', 0x34, 0x12})
	if err != nil || ver != 0x1234 {
		t.Fatalf("fw update = %#x/%v", ver, err)
	}
	// New firmware invalidates calibration.
	r.mustErr(vkernel.EAGAIN, TouchSetMode, TouchModeFinger)
}

func TestTouchGridReconfigure(t *testing.T) {
	r := newRig(t, PathTouch, NewTouch(nil))
	r.mustOK(TouchCalibrate, 100, 100)
	r.mustErr(vkernel.EINVAL, TouchSetGrid, 0, 100)
	r.mustErr(vkernel.EINVAL, TouchSetGrid, 100, 9000)
	r.mustOK(TouchSetGrid, 2048, 2048)
	// Grid change invalidates calibration too.
	r.mustErr(vkernel.EAGAIN, TouchSetMode, TouchModeStylus)
}

func TestTouchDescsValid(t *testing.T) {
	for _, d := range TouchDescs() {
		if err := d.Validate(); err != nil {
			t.Errorf("%s: %v", d.Name, err)
		}
	}
}
