package drivers

import (
	"sync"

	"droidfuzz/internal/bugs"
	"droidfuzz/internal/snap"
	"droidfuzz/internal/vkernel"
)

// V4L2 ioctl request codes (video capture device).
const (
	VidiocQuerycap  uint64 = 0xa401
	VidiocSFmt      uint64 = 0xa402
	VidiocReqbufs   uint64 = 0xa403
	VidiocQbuf      uint64 = 0xa404
	VidiocDqbuf     uint64 = 0xa405
	VidiocStreamon  uint64 = 0xa406
	VidiocStreamoff uint64 = 0xa407
	VidiocSCtrl     uint64 = 0xa408
	VidiocGFmt      uint64 = 0xa409
	VidiocSParm     uint64 = 0xa40a
)

// Recognized pixel formats (fourcc-like codes).
const (
	PixFmtYUYV uint64 = 0x56595559
	PixFmtNV12 uint64 = 0x3231564e
	PixFmtMJPG uint64 = 0x47504a4d
	PixFmtRGB3 uint64 = 0x33424752
	// PixFmtP010 is the 10-bit HDR capture format, accepted only with the
	// hdr_mode module param set.
	PixFmtP010 uint64 = 0x30313050
)

// V4L2Driver models a camera capture pipeline: format negotiation, buffer
// queue management, and streaming. Bug №12 (WARN in v4l_querycap during
// streaming with nonzero reserved field) is moderately shallow so that
// syscall-only fuzzing can reach it, matching Table II.
type V4L2Driver struct {
	bugs bugs.Set //droidvet:checkpoint ephemeral injected fault set, fixed at construction
	snap.Dirty

	mu        sync.Mutex
	width     uint64
	height    uint64
	pixfmt    uint64
	nbufs     uint64
	queued    []uint64
	streaming bool
	frames    uint64
	ctrls     map[uint64]uint64

	knobs *Knobs
}

// NewV4L2 returns the driver with the given enabled bug set.
func NewV4L2(b bugs.Set) *V4L2Driver {
	return &V4L2Driver{
		bugs: b, ctrls: make(map[uint64]uint64),
		knobs: NewKnobs("v4l2", v4l2KnobSpecs),
	}
}

// Name implements vkernel.Driver.
func (d *V4L2Driver) Name() string { return "v4l2" }

// Knobs returns the runtime-parameter state.
func (d *V4L2Driver) Knobs() *Knobs { return d.knobs }

// Open implements vkernel.Driver.
func (d *V4L2Driver) Open(ctx *vkernel.Ctx) (vkernel.Conn, error) {
	ctx.Cover("v4l2", 1)
	return &v4l2Conn{d: d}, nil
}

type v4l2Conn struct {
	vkernel.BaseConn
	d *V4L2Driver
}

func (c *v4l2Conn) Ioctl(ctx *vkernel.Ctx, req uint64, arg []byte) (uint64, []byte, error) {
	d := c.d
	d.mu.Lock()
	defer d.mu.Unlock()
	switch req {
	case VidiocQuerycap:
		ctx.Cover("v4l2", 10)
		reserved := ArgU64(arg, 0)
		// Bug №12: querying capabilities mid-stream with a nonzero
		// reserved field takes the unvalidated legacy path and WARNs.
		if d.bugs.Has(bugs.V4LQuerycap) && d.streaming && reserved != 0 {
			ctx.Cover("v4l2", 11)
			ctx.Warn("v4l_querycap",
				"querycap with nonzero reserved field while streaming")
			return 0, nil, vkernel.EIO
		}
		if d.streaming {
			ctx.Cover("v4l2", 12)
		}
		out := PutU64(nil, 0x84000001) // caps: VIDEO_CAPTURE|STREAMING
		out = PutU64(out, d.frames)
		ctx.Cover("v4l2", 13)
		return 0, out, nil

	case VidiocSFmt:
		ctx.Cover("v4l2", 20)
		if d.streaming {
			ctx.Cover("v4l2", 21)
			return 0, nil, vkernel.EBUSY
		}
		w, h, fmt := ArgU64(arg, 0), ArgU64(arg, 1), ArgU64(arg, 2)
		if w == 0 || h == 0 || w > 8192 || h > 8192 {
			ctx.Cover("v4l2", 22)
			return 0, nil, vkernel.EINVAL
		}
		if w%16 != 0 || h%16 != 0 {
			// The capture pipeline requires macroblock alignment.
			ctx.Cover("v4l2", 260)
			return 0, nil, vkernel.EINVAL
		}
		switch fmt {
		case PixFmtYUYV, PixFmtNV12, PixFmtMJPG, PixFmtRGB3:
		case PixFmtP010:
			if d.knobs.Int(v4l2KnobHDRMode) != 1 {
				ctx.Cover("v4l2", 23)
				return 0, nil, vkernel.EINVAL
			}
			// 10-bit HDR pipeline configuration, module-param gated.
			ctx.Cover("v4l2", 600+bucket(w/640, 8))
		default:
			ctx.Cover("v4l2", 23)
			return 0, nil, vkernel.EINVAL
		}
		d.width, d.height, d.pixfmt = w, h, fmt
		ctx.Cover("v4l2", 24+bucket(fmt, 4)*8+bucket(w/640, 8))
		return 0, nil, nil

	case VidiocGFmt:
		ctx.Cover("v4l2", 60)
		out := PutU64(nil, d.width)
		out = PutU64(out, d.height)
		out = PutU64(out, d.pixfmt)
		return 0, out, nil

	case VidiocReqbufs:
		ctx.Cover("v4l2", 70)
		if d.streaming {
			ctx.Cover("v4l2", 71)
			return 0, nil, vkernel.EBUSY
		}
		n := ArgU64(arg, 0)
		if n > d.knobs.Int(v4l2KnobMaxBufs) {
			ctx.Cover("v4l2", 72)
			return 0, nil, vkernel.EINVAL
		}
		if n > 32 {
			// Extended buffer queue, reachable only with max_bufs raised
			// over sysfs past the built-in default.
			ctx.Cover("v4l2", 610+bucket(n-33, 8))
		}
		d.nbufs = n
		d.queued = nil
		ctx.Cover("v4l2", 73+bucket(n, 8))
		return n, nil, nil

	case VidiocQbuf:
		ctx.Cover("v4l2", 90)
		i := ArgU64(arg, 0)
		if i >= d.nbufs {
			ctx.Cover("v4l2", 91)
			return 0, nil, vkernel.EINVAL
		}
		for _, q := range d.queued {
			if q == i {
				ctx.Cover("v4l2", 92)
				return 0, nil, vkernel.EBUSY
			}
		}
		d.queued = append(d.queued, i)
		if d.streaming {
			// Requeue during streaming walks the per-slot fast path.
			ctx.Cover("v4l2", 440+bucket(i, 8)+bucket(uint64(len(d.queued)), 4)*8)
			if s := d.knobs.Int(v4l2KnobWDRStrength); s > 0 {
				// Wide-dynamic-range tone mapping per strength step.
				ctx.Cover("v4l2", 620+uint32(s))
			}
			ctx.Cover("v4l2", 93)
		}
		ctx.Cover("v4l2", 94+bucket(i, 8))
		return 0, nil, nil

	case VidiocDqbuf:
		ctx.Cover("v4l2", 110)
		if !d.streaming {
			ctx.Cover("v4l2", 111)
			return 0, nil, vkernel.EINVAL
		}
		if len(d.queued) == 0 {
			ctx.Cover("v4l2", 112)
			return 0, nil, vkernel.EAGAIN
		}
		i := d.queued[0]
		d.queued = d.queued[1:]
		d.frames++
		if d.pixfmt == PixFmtMJPG {
			ctx.Cover("v4l2", 113) // compressed-frame completion path
		}
		// Sustained capture walks the buffer-rotation and timestamping
		// paths; each additional frame milestone is new driver code.
		ctx.Cover("v4l2", 300+logBucket(d.frames, 16))
		return i, nil, nil

	case VidiocStreamon:
		ctx.Cover("v4l2", 130)
		if d.nbufs == 0 {
			ctx.Cover("v4l2", 131)
			return 0, nil, vkernel.EINVAL
		}
		if d.width == 0 {
			ctx.Cover("v4l2", 132)
			return 0, nil, vkernel.EINVAL
		}
		if d.streaming {
			ctx.Cover("v4l2", 133)
			return 0, nil, vkernel.EBUSY
		}
		d.streaming = true
		ctx.Logf("video0", "stream on %dx%d fourcc=%#x", d.width, d.height, d.pixfmt)
		ctx.Cover("v4l2", 134+bucket(d.pixfmt, 4))
		return 0, nil, nil

	case VidiocStreamoff:
		ctx.Cover("v4l2", 150)
		d.streaming = false
		d.queued = nil
		ctx.Cover("v4l2", 151)
		return 0, nil, nil

	case VidiocSCtrl:
		ctx.Cover("v4l2", 160)
		id, val := ArgU64(arg, 0), ArgU64(arg, 1)
		if id == 0 || id > 64 {
			ctx.Cover("v4l2", 161)
			return 0, nil, vkernel.EINVAL
		}
		d.ctrls[id] = val
		ctx.Cover("v4l2", 162+bucket(id, 32))
		if id == 13 && (val/90)%2 == 1 {
			// Transposed rotations (90°/270°) switch the pipeline to the
			// swapped-stride buffer layout.
			ctx.Cover("v4l2", 220)
		}
		if d.streaming {
			// Live updates take a per-control reprogramming path while
			// the pipeline runs; a live switch to a transposed rotation
			// additionally walks the swapped-stride relayout code.
			extra := uint32(0)
			if id == 13 && (val/90)%2 == 1 {
				extra = 32
			}
			ctx.Cover("v4l2", 400+bucket(id, 32)+extra)
		}
		return 0, nil, nil

	case VidiocSParm:
		ctx.Cover("v4l2", 210)
		fps := ArgU64(arg, 0)
		if fps == 0 || fps > 240 {
			ctx.Cover("v4l2", 211)
			return 0, nil, vkernel.EINVAL
		}
		if d.streaming {
			// Live frame-interval changes retune the sensor per target
			// rate without a pipeline restart.
			ctx.Cover("v4l2", 470+bucket(fps/15, 16))
		}
		ctx.Cover("v4l2", 212+bucket(fps/15, 16))
		return 0, nil, nil

	default:
		if ret, out, err, ok := ChaffIoctl(ctx, "v4l2", req); ok {
			return ret, out, err
		}
		ctx.Cover("v4l2", 3)
		return 0, nil, vkernel.ENOTTY
	}
}

// Read returns captured frame bytes while streaming.
func (c *v4l2Conn) Read(ctx *vkernel.Ctx, n int) ([]byte, error) {
	d := c.d
	d.mu.Lock()
	defer d.mu.Unlock()
	ctx.Cover("v4l2", 230)
	if !d.streaming {
		return nil, vkernel.EAGAIN
	}
	ctx.Cover("v4l2", 231)
	if n > 4096 {
		n = 4096
	}
	return make([]byte, n), nil
}

// Mmap maps a capture buffer.
func (c *v4l2Conn) Mmap(ctx *vkernel.Ctx, length uint64) (uint64, error) {
	d := c.d
	d.mu.Lock()
	defer d.mu.Unlock()
	ctx.Cover("v4l2", 240)
	if d.nbufs == 0 {
		return 0, vkernel.EINVAL
	}
	if length == 0 || length > 1<<26 {
		ctx.Cover("v4l2", 241)
		return 0, vkernel.EINVAL
	}
	ctx.Cover("v4l2", 242+bucket(length/4096, 8))
	return 0x7f000000 + length, nil
}

func (c *v4l2Conn) Close(ctx *vkernel.Ctx) error {
	ctx.Cover("v4l2", 2)
	return nil
}
