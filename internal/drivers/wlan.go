package drivers

import (
	"sync"

	"droidfuzz/internal/bugs"
	"droidfuzz/internal/snap"
	"droidfuzz/internal/vkernel"
)

// WLAN ioctl request codes (mac80211-like station interface).
const (
	WlanScan     uint64 = 0xa701
	WlanAssoc    uint64 = 0xa702
	WlanDisassoc uint64 = 0xa703
	WlanSetRate  uint64 = 0xa704
	WlanGetLink  uint64 = 0xa705
	WlanSetPower uint64 = 0xa706
	WlanSetChan  uint64 = 0xa707
)

// WLANDriver models a Wi-Fi station: scan, associate, rate control. Bug №10
// is the rate_control_rate_init WARN when association proceeds with an
// all-zero configured rate mask after a completed scan.
type WLANDriver struct {
	bugs bugs.Set //droidvet:checkpoint ephemeral injected fault set, fixed at construction
	snap.Dirty

	mu       sync.Mutex
	scanned  bool
	assoc    bool
	wasAssoc bool // a previous association completed (reassoc path)
	bssid    uint64
	rateMask uint64
	channel  uint64
	power    uint64
	txFrames uint64

	knobs *Knobs
}

// NewWLAN returns the driver with the given enabled bug set.
func NewWLAN(b bugs.Set) *WLANDriver {
	return &WLANDriver{
		bugs: b, rateMask: 0xff, channel: 1,
		knobs: NewKnobs("wlan", wlanKnobSpecs),
	}
}

// Name implements vkernel.Driver.
func (d *WLANDriver) Name() string { return "wlan" }

// Knobs returns the runtime-parameter state.
func (d *WLANDriver) Knobs() *Knobs { return d.knobs }

// Open implements vkernel.Driver.
func (d *WLANDriver) Open(ctx *vkernel.Ctx) (vkernel.Conn, error) {
	ctx.Cover("wlan", 1)
	return &wlanConn{d: d}, nil
}

type wlanConn struct {
	vkernel.BaseConn
	d *WLANDriver
}

func (c *wlanConn) Ioctl(ctx *vkernel.Ctx, req uint64, arg []byte) (uint64, []byte, error) {
	d := c.d
	d.mu.Lock()
	defer d.mu.Unlock()
	switch req {
	case WlanScan:
		ctx.Cover("wlan", 10)
		if d.assoc {
			ctx.Cover("wlan", 11) // background scan while associated
		}
		d.scanned = true
		ctx.Cover("wlan", 12+bucket(d.channel, 14))
		switch d.knobs.Str(wlanKnobCountry) {
		// Region-specific regulatory scan tables; the world domain ("00",
		// the default) takes the legacy path.
		case "US":
			ctx.Cover("wlan", 600)
		case "EU":
			ctx.Cover("wlan", 601)
		case "JP":
			ctx.Cover("wlan", 602)
		}
		return 3, nil, nil // pretend 3 BSSes found

	case WlanAssoc:
		ctx.Cover("wlan", 30)
		if !d.scanned {
			ctx.Cover("wlan", 31)
			return 0, nil, vkernel.EAGAIN
		}
		if d.assoc {
			ctx.Cover("wlan", 32)
			return 0, nil, vkernel.EBUSY
		}
		bssid := ArgU64(arg, 0)
		if bssid == 0 {
			ctx.Cover("wlan", 33)
			return 0, nil, vkernel.EINVAL
		}
		// Bug №10: rate_control_rate_init re-runs on the reassociation
		// path; a mask sharing no basic rates (low nibble empty) leaves
		// it without any usable rate there and WARNs. First-time
		// associations take the validated path, so the trigger needs a
		// full assoc→disassoc→assoc cycle with the basic rates masked
		// out in between.
		if d.bugs.Has(bugs.RateInit) && d.rateMask&0xf == 0 && d.wasAssoc {
			ctx.Cover("wlan", 34)
			ctx.Warn("rate_control_rate_init",
				"reassociation with no basic rates in configured mask")
			return 0, nil, vkernel.EIO
		}
		if d.rateMask&0xf == 0 {
			ctx.Cover("wlan", 35)
			return 0, nil, vkernel.EINVAL
		}
		d.assoc = true
		d.bssid = bssid
		ctx.Logf("wlan0", "associated with bssid=%#x rates=%#x", bssid, d.rateMask)
		if d.wasAssoc {
			ctx.Cover("wlan", 55) // reassociation fast path
			if d.knobs.Int(wlanKnobRoamOff) == 1 {
				// Roaming disabled: sticky-BSS reassociation bookkeeping.
				ctx.Cover("wlan", 610)
			}
		}
		ctx.Cover("wlan", 36+bucket(bssid, 16))
		return 0, nil, nil

	case WlanDisassoc:
		ctx.Cover("wlan", 60)
		if !d.assoc {
			ctx.Cover("wlan", 61)
			return 0, nil, vkernel.ENOENT
		}
		d.assoc = false
		d.wasAssoc = true
		ctx.Cover("wlan", 62)
		return 0, nil, nil

	case WlanSetRate:
		ctx.Cover("wlan", 70)
		mask := ArgU64(arg, 0)
		if mask > 0xffff {
			ctx.Cover("wlan", 71)
			return 0, nil, vkernel.EINVAL
		}
		d.rateMask = mask
		ctx.Cover("wlan", 72+bucket(mask, 16))
		if d.assoc {
			ctx.Cover("wlan", 90) // live rate reconfiguration
		}
		return 0, nil, nil

	case WlanGetLink:
		ctx.Cover("wlan", 100)
		out := PutU64(nil, boolU64(d.assoc))
		out = PutU64(out, d.bssid)
		out = PutU64(out, d.rateMask)
		return 0, out, nil

	case WlanSetPower:
		ctx.Cover("wlan", 110)
		p := ArgU64(arg, 0)
		if p > 30 {
			ctx.Cover("wlan", 111)
			return 0, nil, vkernel.EINVAL
		}
		d.power = p
		ctx.Cover("wlan", 112+bucket(p, 10))
		return 0, nil, nil

	case WlanSetChan:
		ctx.Cover("wlan", 120)
		ch := ArgU64(arg, 0)
		if ch == 0 || ch > 14 {
			ctx.Cover("wlan", 121)
			return 0, nil, vkernel.EINVAL
		}
		if d.assoc {
			ctx.Cover("wlan", 122)
			return 0, nil, vkernel.EBUSY
		}
		d.channel = ch
		ctx.Cover("wlan", 123+uint32(ch))
		if ch == 14 && d.knobs.Str(wlanKnobCountry) == "JP" {
			// Channel 14 is usable only in the JP regulatory domain.
			ctx.Cover("wlan", 612)
		}
		if d.wasAssoc {
			// Channel moves after a completed association prime the
			// roaming scan tables.
			ctx.Cover("wlan", 450+uint32(ch))
		}
		return 0, nil, nil

	default:
		if ret, out, err, ok := ChaffIoctl(ctx, "wlan", req); ok {
			return ret, out, err
		}
		ctx.Cover("wlan", 3)
		return 0, nil, vkernel.ENOTTY
	}
}

// Write transmits a frame while associated.
func (c *wlanConn) Write(ctx *vkernel.Ctx, p []byte) (int, error) {
	d := c.d
	d.mu.Lock()
	defer d.mu.Unlock()
	ctx.Cover("wlan", 130)
	if !d.assoc {
		ctx.Cover("wlan", 131)
		return 0, vkernel.ENOTTY
	}
	if len(p) < 14 || len(p) > 2304 {
		ctx.Cover("wlan", 132)
		return 0, vkernel.EINVAL
	}
	d.txFrames++
	ctx.Cover("wlan", 300+logBucket(d.txFrames, 12)) // aggregation ramp-up paths
	if d.knobs.Int(wlanKnobAMPDU) == 0 {
		// A-MPDU aggregation disabled: per-frame legacy transmit queueing.
		ctx.Cover("wlan", 615+logBucket(d.txFrames, 4))
	}
	ctx.Cover("wlan", 133+bucket(uint64(len(p))/128, 18))
	// Rate-controlled transmit paths per configured rate tier.
	ctx.Cover("wlan", 400+bucket(d.rateMask, 16))
	if d.power > 0 {
		ctx.Cover("wlan", 420+bucket(d.power, 10)+bucket(uint64(len(p))/256, 4)*10)
	}
	return len(p), nil
}

// Read receives a frame while associated.
func (c *wlanConn) Read(ctx *vkernel.Ctx, n int) ([]byte, error) {
	d := c.d
	d.mu.Lock()
	defer d.mu.Unlock()
	ctx.Cover("wlan", 150)
	if !d.assoc {
		return nil, vkernel.EAGAIN
	}
	ctx.Cover("wlan", 151)
	if n > 2304 {
		n = 2304
	}
	return make([]byte, n), nil
}

func (c *wlanConn) Close(ctx *vkernel.Ctx) error {
	ctx.Cover("wlan", 2)
	return nil
}

func boolU64(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
