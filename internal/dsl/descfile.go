package dsl

import (
	"bufio"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Description files are the persistent text form of call descriptions — the
// Syzlang-lite counterpart of syzkaller's .txt descriptions. The probing
// pass's output can be saved and reloaded, so a device needs probing only
// once per firmware. One description per line:
//
//	syscall ioctl$TCPC_SET_MODE = ioctl(fd resource[fd_tcpc], req const[0xa102], mode flags[0x0,0x1,0x2,0x3]) crit=1 weight=0.70
//	hal hal$usb.setPortRole = android.hardware.usb::setPortRole[1](role flags[0x0,0x1,0x2,0x3]) weight=0.50
//	hal hal$graphics.composer.createLayer = android.hardware.graphics.composer::createLayer[1](width int[0x1:0x1000], height int[0x1:0x1000], format flags[0x1,0x2,0x3]) -> hal_layer weight=0.90
//	param param$tcpc.pd_compliance = /sys/module/tcpc/parameters/pd_compliance(value int[0x0:0x1]) crit=0 weight=0.30
//
// Argument types: const[v], int[min:max] (optionally int[min:max,hint=a,b]),
// flags[a,b,...], buffer[n], string["a","b"], filename["/dev/x"],
// resource[kind], len[field].

// FormatDescs renders descriptions to the text form, sorted by name for
// stable output.
func FormatDescs(descs []*CallDesc) string {
	sorted := make([]*CallDesc, len(descs))
	copy(sorted, descs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	var b strings.Builder
	for _, d := range sorted {
		b.WriteString(formatDesc(d))
		b.WriteByte('\n')
	}
	return b.String()
}

func formatDesc(d *CallDesc) string {
	var b strings.Builder
	switch {
	case d.IsHAL():
		fmt.Fprintf(&b, "hal %s = %s::%s[%d](", d.Name, d.Service, d.Method, d.MethodCode)
	case d.Class == ClassParam:
		fmt.Fprintf(&b, "param %s = %s(", d.Name, d.Param)
	default:
		fmt.Fprintf(&b, "syscall %s = %s(", d.Name, d.Syscall)
	}
	for i, f := range d.Args {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(f.Name)
		b.WriteByte(' ')
		b.WriteString(formatType(f.Type))
	}
	b.WriteString(")")
	if d.Ret != "" {
		b.WriteString(" -> " + d.Ret)
	}
	if d.CriticalArg >= 0 {
		fmt.Fprintf(&b, " crit=%d", d.CriticalArg)
	}
	fmt.Fprintf(&b, " weight=%.2f", d.Weight)
	return b.String()
}

func formatType(t Type) string {
	switch t.Kind {
	case KindConst:
		return fmt.Sprintf("const[%#x]", t.Val)
	case KindInt:
		s := fmt.Sprintf("int[%#x:%#x", t.Min, t.Max)
		if len(t.Hints) > 0 {
			s += ",hint=" + joinHex(t.Hints)
		}
		return s + "]"
	case KindFlags:
		return "flags[" + joinHex(t.Choices) + "]"
	case KindBuffer:
		return fmt.Sprintf("buffer[%d]", t.BufLen)
	case KindString:
		return "string[" + joinQuoted(t.StrChoices) + "]"
	case KindFilename:
		return "filename[" + joinQuoted(t.StrChoices) + "]"
	case KindResource:
		return "resource[" + t.Res + "]"
	case KindLen:
		return "len[" + t.LenOf + "]"
	default:
		return fmt.Sprintf("unknown[%d]", int(t.Kind))
	}
}

func joinHex(vs []uint64) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = fmt.Sprintf("%#x", v)
	}
	return strings.Join(parts, ",")
}

func joinQuoted(ss []string) string {
	parts := make([]string, len(ss))
	for i, s := range ss {
		parts[i] = strconv.Quote(s)
	}
	return strings.Join(parts, ",")
}

// ParseDescs parses a description file back into call descriptions.
func ParseDescs(text string) ([]*CallDesc, error) {
	var out []*CallDesc
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		d, err := parseDescLine(line)
		if err != nil {
			return nil, fmt.Errorf("dsl: descs line %d: %w", lineNo, err)
		}
		out = append(out, d)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dsl: descs scan: %w", err)
	}
	return out, nil
}

func parseDescLine(line string) (*CallDesc, error) {
	d := &CallDesc{CriticalArg: -1, Weight: 0.5}
	var head string
	switch {
	case strings.HasPrefix(line, "syscall "):
		d.Class = ClassSyscall
		head = strings.TrimPrefix(line, "syscall ")
	case strings.HasPrefix(line, "hal "):
		d.Class = ClassHAL
		head = strings.TrimPrefix(line, "hal ")
	case strings.HasPrefix(line, "param "):
		d.Class = ClassParam
		head = strings.TrimPrefix(line, "param ")
	default:
		return nil, fmt.Errorf("unknown description class in %q", line)
	}
	eq := strings.Index(head, " = ")
	if eq < 0 {
		return nil, fmt.Errorf("missing '=' in %q", line)
	}
	d.Name = strings.TrimSpace(head[:eq])
	rest := strings.TrimSpace(head[eq+3:])

	open := strings.Index(rest, "(")
	if open < 0 {
		return nil, fmt.Errorf("missing '(' in %q", line)
	}
	callee := rest[:open]
	if d.Class == ClassHAL {
		// service::method[code]
		sep := strings.Index(callee, "::")
		if sep < 0 {
			return nil, fmt.Errorf("HAL callee %q missing '::'", callee)
		}
		d.Service = callee[:sep]
		mpart := callee[sep+2:]
		lb := strings.Index(mpart, "[")
		if lb < 0 || !strings.HasSuffix(mpart, "]") {
			return nil, fmt.Errorf("HAL method %q missing [code]", mpart)
		}
		d.Method = mpart[:lb]
		code, err := strconv.ParseUint(mpart[lb+1:len(mpart)-1], 0, 32)
		if err != nil {
			return nil, fmt.Errorf("HAL code: %w", err)
		}
		d.MethodCode = uint32(code)
	} else if d.Class == ClassParam {
		d.Param = callee
	} else {
		d.Syscall = callee
	}

	close_ := matchParen(rest, open)
	if close_ < 0 {
		return nil, fmt.Errorf("unbalanced parens in %q", line)
	}
	argText := rest[open+1 : close_]
	if strings.TrimSpace(argText) != "" {
		for _, part := range splitTopLevel(argText) {
			f, err := parseField(strings.TrimSpace(part))
			if err != nil {
				return nil, err
			}
			d.Args = append(d.Args, f)
		}
	}

	// Trailer: [-> ret] [crit=N] [weight=F]
	for _, tok := range strings.Fields(rest[close_+1:]) {
		switch {
		case tok == "->":
			// handled with next token via index scan below
		case strings.HasPrefix(tok, "crit="):
			n, err := strconv.Atoi(tok[5:])
			if err != nil {
				return nil, fmt.Errorf("crit: %w", err)
			}
			d.CriticalArg = n
		case strings.HasPrefix(tok, "weight="):
			w, err := strconv.ParseFloat(tok[7:], 64)
			if err != nil {
				return nil, fmt.Errorf("weight: %w", err)
			}
			d.Weight = w
		default:
			// The token following "->".
			d.Ret = tok
		}
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// matchParen returns the index of the ')' matching the '(' at open,
// honoring double-quoted segments.
func matchParen(s string, open int) int {
	depth := 0
	inQuote := false
	for i := open; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				inQuote = !inQuote
			}
		case '(':
			if !inQuote {
				depth++
			}
		case ')':
			if !inQuote {
				depth--
				if depth == 0 {
					return i
				}
			}
		}
	}
	return -1
}

// splitTopLevel splits on commas outside brackets and quotes.
func splitTopLevel(s string) []string {
	var parts []string
	depth := 0
	inQuote := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				inQuote = !inQuote
			}
		case '[', '(':
			if !inQuote {
				depth++
			}
		case ']', ')':
			if !inQuote {
				depth--
			}
		case ',':
			if !inQuote && depth == 0 {
				parts = append(parts, s[start:i])
				start = i + 1
			}
		}
	}
	parts = append(parts, s[start:])
	return parts
}

func parseField(s string) (Field, error) {
	sp := strings.IndexByte(s, ' ')
	if sp < 0 {
		return Field{}, fmt.Errorf("field %q missing type", s)
	}
	name := s[:sp]
	ty, err := parseType(strings.TrimSpace(s[sp+1:]))
	if err != nil {
		return Field{}, fmt.Errorf("field %q: %w", name, err)
	}
	return Field{Name: name, Type: ty}, nil
}

func parseType(s string) (Type, error) {
	lb := strings.Index(s, "[")
	if lb < 0 || !strings.HasSuffix(s, "]") {
		return Type{}, fmt.Errorf("type %q not of form kind[...]", s)
	}
	kind := s[:lb]
	body := s[lb+1 : len(s)-1]
	switch kind {
	case "const":
		v, err := strconv.ParseUint(body, 0, 64)
		if err != nil {
			return Type{}, err
		}
		return Const(v), nil
	case "int":
		main := body
		var hints []uint64
		if h := strings.Index(body, ",hint="); h >= 0 {
			main = body[:h]
			var err error
			hints, err = parseHexList(body[h+6:])
			if err != nil {
				return Type{}, err
			}
		}
		colon := strings.Index(main, ":")
		if colon < 0 {
			return Type{}, fmt.Errorf("int %q missing ':'", main)
		}
		min, err := strconv.ParseUint(strings.TrimSpace(main[:colon]), 0, 64)
		if err != nil {
			return Type{}, err
		}
		max, err := strconv.ParseUint(strings.TrimSpace(main[colon+1:]), 0, 64)
		if err != nil {
			return Type{}, err
		}
		t := Int(min, max)
		t.Hints = hints
		return t, nil
	case "flags":
		vs, err := parseHexList(body)
		if err != nil {
			return Type{}, err
		}
		return Flags(vs...), nil
	case "buffer":
		n, err := strconv.Atoi(body)
		if err != nil {
			return Type{}, err
		}
		return Buffer(n), nil
	case "string":
		ss, err := parseQuotedList(body)
		if err != nil {
			return Type{}, err
		}
		return String_(ss...), nil
	case "filename":
		ss, err := parseQuotedList(body)
		if err != nil {
			return Type{}, err
		}
		return Filename(ss...), nil
	case "resource":
		return Resource(body), nil
	case "len":
		return Len(body), nil
	default:
		return Type{}, fmt.Errorf("unknown type kind %q", kind)
	}
}

func parseHexList(s string) ([]uint64, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []uint64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseUint(strings.TrimSpace(part), 0, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseQuotedList(s string) ([]string, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []string
	for _, part := range splitTopLevel(s) {
		str, err := strconv.Unquote(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, str)
	}
	return out, nil
}
