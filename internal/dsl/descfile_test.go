package dsl

import (
	"reflect"
	"strings"
	"testing"
)

func TestDescFileRoundTrip(t *testing.T) {
	target := testTarget(t)
	descs := target.Calls()
	// Enrich one int arg with hints to cover the hint syntax.
	descs[1].Args[3].Type.Hints = []uint64{13, 90}

	text := FormatDescs(descs)
	parsed, err := ParseDescs(text)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, text)
	}
	if len(parsed) != len(descs) {
		t.Fatalf("parsed %d, want %d", len(parsed), len(descs))
	}
	byName := make(map[string]*CallDesc)
	for _, d := range parsed {
		byName[d.Name] = d
	}
	for _, want := range descs {
		got := byName[want.Name]
		if got == nil {
			t.Fatalf("missing %s", want.Name)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round trip mismatch for %s:\n got %+v\nwant %+v", want.Name, got, want)
		}
	}
	// Reformatting the parsed set is stable.
	if FormatDescs(parsed) != text {
		t.Fatal("format not canonical")
	}
}

func TestDescFileCommentsAndBlanks(t *testing.T) {
	text := "# comment\n\nsyscall open$x = open(path filename[\"/dev/x\"]) -> fd_x weight=0.30\n"
	descs, err := ParseDescs(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(descs) != 1 || descs[0].Ret != "fd_x" || descs[0].Weight != 0.30 {
		t.Fatalf("descs = %+v", descs[0])
	}
	if descs[0].CriticalArg != -1 {
		t.Fatal("default critical arg wrong")
	}
}

func TestDescFileHALLine(t *testing.T) {
	text := `hal hal$usb.setPortRole = android.hardware.usb::setPortRole[3](role flags[0x0,0x1]) weight=0.55` + "\n"
	descs, err := ParseDescs(text)
	if err != nil {
		t.Fatal(err)
	}
	d := descs[0]
	if d.Class != ClassHAL || d.Service != "android.hardware.usb" ||
		d.Method != "setPortRole" || d.MethodCode != 3 {
		t.Fatalf("desc = %+v", d)
	}
}

func TestDescFileErrors(t *testing.T) {
	cases := []string{
		"bogus foo = bar()",
		"syscall x",                                // no '='
		"syscall x = open",                         // no parens
		"syscall x = open(a wat[1])",               // unknown kind
		"syscall x = open(a int[5])",               // int without range
		"hal h = svc.method(a int[0:1])",           // missing '::'
		"hal h = svc::method(a int[0:1])",          // missing [code]
		"syscall x = open(a resource[])",           // empty resource kind
		"syscall x = open(a len[data])",            // len without buffer
		`syscall x = open(a string[unquoted])`,     // bad quoting
		"syscall x = open(a int[0:1]) crit=9",      // crit out of range
		"syscall x = open(a int[0:1]) weight=nope", // bad weight
	}
	for _, c := range cases {
		if _, err := ParseDescs(c + "\n"); err == nil {
			t.Errorf("accepted %q", c)
		}
	}
}

func TestDescFileQuotedCommaInString(t *testing.T) {
	text := `syscall x = open(a string["x,y","z"]) weight=0.50` + "\n"
	descs, err := ParseDescs(text)
	if err != nil {
		t.Fatal(err)
	}
	got := descs[0].Args[0].Type.StrChoices
	if len(got) != 2 || got[0] != "x,y" {
		t.Fatalf("choices = %v", got)
	}
}

func TestFormatDescsSorted(t *testing.T) {
	target := testTarget(t)
	text := FormatDescs(target.Calls())
	lines := strings.Split(strings.TrimSpace(text), "\n")
	for i := 1; i < len(lines); i++ {
		// Extract names (second field).
		a := strings.Fields(lines[i-1])[1]
		b := strings.Fields(lines[i])[1]
		if a >= b {
			t.Fatalf("not sorted: %q >= %q", a, b)
		}
	}
}
