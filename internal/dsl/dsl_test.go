package dsl

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// testTarget builds a small target exercising every type kind.
func testTarget(t *testing.T) *Target {
	t.Helper()
	descs := []*CallDesc{
		{
			Name: "open$dev", Class: ClassSyscall, Syscall: "open",
			Args:        []Field{{Name: "path", Type: Filename("/dev/dev0", "/dev/dev1")}},
			Ret:         "fd_dev",
			Weight:      0.3,
			CriticalArg: -1,
		},
		{
			Name: "ioctl$DEV_CMD", Class: ClassSyscall, Syscall: "ioctl",
			Args: []Field{
				{Name: "fd", Type: Resource("fd_dev")},
				{Name: "req", Type: Const(0xbeef)},
				{Name: "mode", Type: Flags(1, 2, 3)},
				{Name: "size", Type: Int(0, 100)},
			},
			Ret:         "dev_handle",
			Weight:      0.5,
			CriticalArg: 1,
		},
		{
			Name: "write$dev", Class: ClassSyscall, Syscall: "write",
			Args: []Field{
				{Name: "fd", Type: Resource("fd_dev")},
				{Name: "n", Type: Len("data")},
				{Name: "data", Type: Buffer(32)},
			},
			Weight:      0.3,
			CriticalArg: -1,
		},
		{
			Name: "hal$svc.doThing", Class: ClassHAL,
			Service: "android.hardware.svc", Method: "doThing", MethodCode: 7,
			Args: []Field{
				{Name: "handle", Type: Resource("dev_handle")},
				{Name: "name", Type: String_("abc")},
			},
			Weight:      0.4,
			CriticalArg: -1,
		},
	}
	target, err := NewTarget(descs...)
	if err != nil {
		t.Fatal(err)
	}
	return target
}

func TestTargetLookupAndProducers(t *testing.T) {
	target := testTarget(t)
	if target.Lookup("open$dev") == nil || target.Lookup("nope") != nil {
		t.Fatal("lookup wrong")
	}
	if len(target.Producers("fd_dev")) != 1 {
		t.Fatal("producers wrong")
	}
	if len(target.SyscallCalls()) != 3 || len(target.HALCalls()) != 1 {
		t.Fatal("class split wrong")
	}
	kinds := target.ResourceKinds()
	if len(kinds) != 2 || kinds[0] != "dev_handle" || kinds[1] != "fd_dev" {
		t.Fatalf("resource kinds = %v", kinds)
	}
}

func TestTargetRejectsDuplicates(t *testing.T) {
	d := &CallDesc{Name: "x", Class: ClassSyscall, Syscall: "open", CriticalArg: -1}
	if _, err := NewTarget(d, d); err == nil {
		t.Fatal("duplicate accepted")
	}
}

func TestDescValidate(t *testing.T) {
	cases := []struct {
		name string
		d    *CallDesc
	}{
		{"empty name", &CallDesc{CriticalArg: -1}},
		{"missing syscall", &CallDesc{Name: "a", Class: ClassSyscall, CriticalArg: -1}},
		{"missing service", &CallDesc{Name: "a", Class: ClassHAL, CriticalArg: -1}},
		{"critical out of range", &CallDesc{Name: "a", Class: ClassSyscall, Syscall: "open", CriticalArg: 5}},
		{"unnamed arg", &CallDesc{Name: "a", Class: ClassSyscall, Syscall: "open", CriticalArg: -1,
			Args: []Field{{Type: Int(0, 1)}}}},
		{"dup arg", &CallDesc{Name: "a", Class: ClassSyscall, Syscall: "open", CriticalArg: -1,
			Args: []Field{{Name: "x", Type: Int(0, 1)}, {Name: "x", Type: Int(0, 1)}}}},
		{"resource without kind", &CallDesc{Name: "a", Class: ClassSyscall, Syscall: "open", CriticalArg: -1,
			Args: []Field{{Name: "x", Type: Type{Kind: KindResource}}}}},
		{"len without buffer", &CallDesc{Name: "a", Class: ClassSyscall, Syscall: "open", CriticalArg: -1,
			Args: []Field{{Name: "n", Type: Len("data")}}}},
	}
	for _, c := range cases {
		if err := c.d.Validate(); err == nil {
			t.Errorf("%s: validation passed, want error", c.name)
		}
	}
}

// buildProg constructs a valid program exercising resource flow.
func buildProg(t *testing.T, target *Target) *Prog {
	t.Helper()
	open := target.Lookup("open$dev")
	ioctl := target.Lookup("ioctl$DEV_CMD")
	hal := target.Lookup("hal$svc.doThing")
	wr := target.Lookup("write$dev")
	p := &Prog{Calls: []*Call{
		{Desc: open, Args: []Arg{{Str: "/dev/dev0"}}},
		{Desc: ioctl, Args: []Arg{{Ref: 0}, {Val: 0xbeef}, {Val: 2}, {Val: 42}}},
		{Desc: hal, Args: []Arg{{Ref: 1}, {Str: "abc"}}},
		{Desc: wr, Args: []Arg{{Ref: 0}, {Val: 3}, {Data: []byte{9, 8, 7}}}},
	}}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestProgValidateErrors(t *testing.T) {
	target := testTarget(t)
	p := buildProg(t, target)

	bad := p.Clone()
	bad.Calls[1].Args[0].Ref = 2 // forward reference
	if bad.Validate() == nil {
		t.Fatal("forward ref accepted")
	}

	bad = p.Clone()
	bad.Calls[1].Args[0].Ref = 1 // self/later producer of wrong kind
	if bad.Validate() == nil {
		t.Fatal("wrong-kind ref accepted")
	}

	bad = p.Clone()
	bad.Calls[1].Args[1].Val = 0x1234 // wrong const
	if bad.Validate() == nil {
		t.Fatal("wrong const accepted")
	}

	bad = p.Clone()
	bad.Calls[3].Args[2].Data = make([]byte, 100) // buffer too large
	if bad.Validate() == nil {
		t.Fatal("oversized buffer accepted")
	}
}

func TestSerializeParseRoundTrip(t *testing.T) {
	target := testTarget(t)
	p := buildProg(t, target)
	text := p.String()
	q, err := ParseProg(target, text)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, text)
	}
	if q.String() != text {
		t.Fatalf("round trip mismatch:\n%s\nvs\n%s", text, q.String())
	}
}

func TestParseErrors(t *testing.T) {
	target := testTarget(t)
	cases := []string{
		`nosuchcall(x=1)`,
		`open$dev(path="/dev/dev0", extra=1)`,
		`open$dev(wrongname="/dev/dev0")`,
		`ioctl$DEV_CMD(fd=r5, req=0xbeef, mode=0x2, size=0x2a)`, // dangling ref
		`open$dev(path="/dev/dev0"`,                             // unterminated
		`r1 = open$dev(path="/dev/dev0")`,                       // wrong label
	}
	for _, text := range cases {
		if _, err := ParseProg(target, text); err == nil {
			t.Errorf("parse accepted %q", text)
		}
	}
}

func TestParseTolerantOfCommentsAndBlanks(t *testing.T) {
	target := testTarget(t)
	text := "# comment\n\nr0 = open$dev(path=\"/dev/dev0\")\n"
	p, err := ParseProg(target, text)
	if err != nil || p.Len() != 1 {
		t.Fatalf("parse: %v", err)
	}
}

func TestRemoveCallRenumbers(t *testing.T) {
	target := testTarget(t)
	p := buildProg(t, target)
	q := p.RemoveCall(0) // drop the open; refs to it become invalid
	if q.Len() != 3 {
		t.Fatalf("len = %d", q.Len())
	}
	if q.Calls[0].Args[0].Ref != -1 {
		t.Fatal("ref to removed call not invalidated")
	}
	if q.Calls[1].Args[0].Ref != 0 { // hal handle ref renumbered 1 -> 0
		t.Fatalf("ref = %d, want 0", q.Calls[1].Args[0].Ref)
	}
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertCallRenumbers(t *testing.T) {
	target := testTarget(t)
	p := buildProg(t, target)
	extra := &Call{Desc: target.Lookup("open$dev"), Args: []Arg{{Str: "/dev/dev1"}}}
	q := p.InsertCall(0, extra)
	if q.Len() != 5 {
		t.Fatalf("len = %d", q.Len())
	}
	if q.Calls[2].Args[0].Ref != 1 { // ioctl's fd ref shifted
		t.Fatalf("ref = %d, want 1", q.Calls[2].Args[0].Ref)
	}
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRandomArgRespectsTypes(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		intType := Int(10, 20)
		for i := 0; i < 50; i++ {
			a := RandomArg(intType, rng)
			if a.Val < 10 || a.Val > 20 {
				return false
			}
		}
		flagType := Flags(5, 6, 7)
		for i := 0; i < 50; i++ {
			a := RandomArg(flagType, rng)
			if a.Val != 5 && a.Val != 6 && a.Val != 7 {
				return false
			}
		}
		bufType := Buffer(16)
		for i := 0; i < 50; i++ {
			if len(RandomArg(bufType, rng).Data) > 16 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomArgHonorsHints(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ty := Int(0, 1000)
	ty.Hints = []uint64{13}
	exact := 0
	for i := 0; i < 1000; i++ {
		if RandomArg(ty, rng).Val == 13 {
			exact++
		}
	}
	// Half the draws use hints, half of those replay exactly -> ~25%.
	if exact < 150 {
		t.Fatalf("hint replayed only %d/1000 times", exact)
	}
}

func TestFixupLens(t *testing.T) {
	target := testTarget(t)
	c := &Call{Desc: target.Lookup("write$dev"),
		Args: []Arg{{Ref: -1}, {Val: 999}, {Data: []byte{1, 2, 3, 4, 5}}}}
	FixupLens(c)
	if c.Args[1].Val != 5 {
		t.Fatalf("len = %d, want 5", c.Args[1].Val)
	}
}

func TestDefaultArg(t *testing.T) {
	if DefaultArg(Int(7, 9)).Val != 7 {
		t.Fatal("int default wrong")
	}
	if DefaultArg(Flags(4, 5)).Val != 4 {
		t.Fatal("flags default wrong")
	}
	if DefaultArg(Resource("x")).Ref != -1 {
		t.Fatal("resource default wrong")
	}
	if DefaultArg(Filename("/dev/a")).Str != "/dev/a" {
		t.Fatal("filename default wrong")
	}
}

func TestCriticalVal(t *testing.T) {
	target := testTarget(t)
	p := buildProg(t, target)
	v, ok := p.Calls[1].CriticalVal()
	if !ok || v != 0xbeef {
		t.Fatalf("critical = %#x/%v", v, ok)
	}
	if _, ok := p.Calls[0].CriticalVal(); ok {
		t.Fatal("open should have no critical arg")
	}
}

func TestSplitArgsQuoting(t *testing.T) {
	parts, err := splitArgs(`a="x,y", b=1`)
	if err != nil || len(parts) != 2 || !strings.Contains(parts[0], "x,y") {
		t.Fatalf("parts = %v, err = %v", parts, err)
	}
	if _, err := splitArgs(`a="unterminated`); err == nil {
		t.Fatal("unterminated quote accepted")
	}
}

func TestExtendKeepsOriginal(t *testing.T) {
	target := testTarget(t)
	n := len(target.Calls())
	extra := &CallDesc{Name: "close$dev", Class: ClassSyscall, Syscall: "close",
		Args:        []Field{{Name: "fd", Type: Resource("fd_dev")}},
		CriticalArg: -1}
	ext, err := target.Extend(extra)
	if err != nil {
		t.Fatal(err)
	}
	if len(target.Calls()) != n {
		t.Fatal("original target mutated")
	}
	if ext.Lookup("close$dev") == nil {
		t.Fatal("extension missing")
	}
}
