package dsl

import (
	"bufio"
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"
)

// The program text form, one call per line:
//
//	r0 = open$tcpc(path="/dev/tcpc0")
//	ioctl$TCPC_SET_MODE(fd=r0, mode=0x3)
//	hal$graphics.createLayer(display=0x1, w=0x80, h=0x80)
//
// Scalars are hex; buffers are b"<hex>"; strings and filenames are quoted;
// resource arguments are rN (N = producing call index) or nil. A call whose
// description produces a resource is prefixed with "rI = " where I is its
// own call index, so labels are stable across serialize/parse round trips.

// String serializes the program to its canonical text form.
func (p *Prog) String() string {
	var b strings.Builder
	for i, c := range p.Calls {
		if c.Desc.Ret != "" {
			fmt.Fprintf(&b, "r%d = ", i)
		}
		b.WriteString(c.Desc.Name)
		b.WriteByte('(')
		for j, f := range c.Desc.Args {
			if j > 0 {
				b.WriteString(", ")
			}
			b.WriteString(f.Name)
			b.WriteByte('=')
			writeArg(&b, f.Type, c.Args[j])
		}
		b.WriteString(")\n")
	}
	return b.String()
}

func writeArg(b *strings.Builder, t Type, a Arg) {
	switch t.Kind {
	case KindBuffer:
		b.WriteString(`b"`)
		b.WriteString(hex.EncodeToString(a.Data))
		b.WriteByte('"')
	case KindString, KindFilename:
		b.WriteString(strconv.Quote(a.Str))
	case KindResource:
		if a.Ref < 0 {
			b.WriteString("nil")
		} else {
			fmt.Fprintf(b, "r%d", a.Ref)
		}
	default:
		fmt.Fprintf(b, "%#x", a.Val)
	}
}

// ParseProg parses the canonical text form against the target. Unknown call
// names, malformed arguments, and invalid resource references are errors.
func ParseProg(target *Target, text string) (*Prog, error) {
	p := &Prog{}
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		c, err := parseCall(target, line, len(p.Calls))
		if err != nil {
			return nil, fmt.Errorf("dsl: line %d: %w", lineNo, err)
		}
		p.Calls = append(p.Calls, c)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dsl: scan: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

func parseCall(target *Target, line string, idx int) (*Call, error) {
	// Optional "rI = " prefix.
	if eq := strings.Index(line, "="); eq > 0 {
		head := strings.TrimSpace(line[:eq])
		if strings.HasPrefix(head, "r") && !strings.Contains(head, "(") {
			label, err := strconv.Atoi(head[1:])
			if err != nil {
				return nil, fmt.Errorf("bad result label %q", head)
			}
			if label != idx {
				return nil, fmt.Errorf("result label r%d does not match call index %d", label, idx)
			}
			line = strings.TrimSpace(line[eq+1:])
		}
	}
	open := strings.Index(line, "(")
	if open < 0 || !strings.HasSuffix(line, ")") {
		return nil, fmt.Errorf("malformed call %q", line)
	}
	name := strings.TrimSpace(line[:open])
	desc := target.Lookup(name)
	if desc == nil {
		return nil, fmt.Errorf("unknown call %q", name)
	}
	argText := line[open+1 : len(line)-1]
	parts, err := splitArgs(argText)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	if len(parts) != len(desc.Args) {
		return nil, fmt.Errorf("%s: got %d args, want %d", name, len(parts), len(desc.Args))
	}
	c := &Call{Desc: desc, Args: make([]Arg, len(parts))}
	for i, part := range parts {
		f := desc.Args[i]
		eq := strings.Index(part, "=")
		if eq < 0 {
			return nil, fmt.Errorf("%s: arg %d missing name", name, i)
		}
		argName := strings.TrimSpace(part[:eq])
		if argName != f.Name {
			return nil, fmt.Errorf("%s: arg %d named %q, want %q", name, i, argName, f.Name)
		}
		a, err := parseArg(f.Type, strings.TrimSpace(part[eq+1:]))
		if err != nil {
			return nil, fmt.Errorf("%s: arg %q: %w", name, f.Name, err)
		}
		c.Args[i] = a
	}
	return c, nil
}

// splitArgs splits on top-level commas, honoring double-quoted segments.
func splitArgs(s string) ([]string, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var parts []string
	start := 0
	inQuote := false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			// A quote is escaped only if preceded by a backslash.
			if i == 0 || s[i-1] != '\\' {
				inQuote = !inQuote
			}
		case ',':
			if !inQuote {
				parts = append(parts, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	if inQuote {
		return nil, fmt.Errorf("unterminated quote")
	}
	parts = append(parts, strings.TrimSpace(s[start:]))
	return parts, nil
}

func parseArg(t Type, s string) (Arg, error) {
	switch t.Kind {
	case KindBuffer:
		if !strings.HasPrefix(s, `b"`) || !strings.HasSuffix(s, `"`) {
			return Arg{}, fmt.Errorf("buffer arg %q not of form b\"<hex>\"", s)
		}
		data, err := hex.DecodeString(s[2 : len(s)-1])
		if err != nil {
			return Arg{}, fmt.Errorf("buffer hex: %w", err)
		}
		return Arg{Data: data}, nil
	case KindString, KindFilename:
		str, err := strconv.Unquote(s)
		if err != nil {
			return Arg{}, fmt.Errorf("string arg %q: %w", s, err)
		}
		return Arg{Str: str}, nil
	case KindResource:
		if s == "nil" {
			return Arg{Ref: -1}, nil
		}
		if !strings.HasPrefix(s, "r") {
			return Arg{}, fmt.Errorf("resource arg %q not rN or nil", s)
		}
		ref, err := strconv.Atoi(s[1:])
		if err != nil {
			return Arg{}, fmt.Errorf("resource ref %q: %w", s, err)
		}
		return Arg{Ref: ref}, nil
	default:
		v, err := strconv.ParseUint(s, 0, 64)
		if err != nil {
			return Arg{}, fmt.Errorf("scalar %q: %w", s, err)
		}
		return Arg{Val: v}, nil
	}
}
