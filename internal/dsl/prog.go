package dsl

import (
	"fmt"
	"math/rand"
)

// Arg is one instantiated argument. Exactly one of the value fields is
// meaningful, selected by the corresponding field's Kind:
//
//	Const/Int/Flags/Len -> Val
//	Buffer              -> Data
//	String/Filename     -> Str
//	Resource            -> Ref (producing call index, or -1 for an invalid
//	                       handle, which executors pass through as a bogus
//	                       value to also exercise error paths)
type Arg struct {
	Val  uint64
	Data []byte
	Str  string
	Ref  int
}

// Clone deep-copies the argument.
func (a Arg) Clone() Arg {
	c := a
	if a.Data != nil {
		c.Data = append([]byte(nil), a.Data...)
	}
	return c
}

// Call is one instantiated invocation in a program.
type Call struct {
	Desc *CallDesc
	Args []Arg
}

// Clone deep-copies the call (the description is shared).
func (c *Call) Clone() *Call {
	n := &Call{Desc: c.Desc, Args: make([]Arg, len(c.Args))}
	for i, a := range c.Args {
		n.Args[i] = a.Clone()
	}
	return n
}

// CriticalVal returns the value of the call's critical argument and true,
// or 0 and false if the call has none. Used to build the specialized
// syscall-ID lookup table (paper §IV-D).
func (c *Call) CriticalVal() (uint64, bool) {
	if c.Desc.CriticalArg < 0 || c.Desc.CriticalArg >= len(c.Args) {
		return 0, false
	}
	return c.Args[c.Desc.CriticalArg].Val, true
}

// Prog is a test case: an ordered sequence of calls with resource flow.
type Prog struct {
	Calls []*Call
}

// Clone deep-copies the program.
func (p *Prog) Clone() *Prog {
	// Cloning runs on the mutation hot path, so the calls and their
	// argument slots are batch-allocated in two backing arrays instead of
	// one Call + one []Arg per call. Each call's Args is capacity-capped to
	// its own region: appending to one cloned call cannot bleed into the
	// next call's slots.
	n := &Prog{Calls: make([]*Call, len(p.Calls))}
	calls := make([]Call, len(p.Calls))
	total := 0
	for _, c := range p.Calls {
		total += len(c.Args)
	}
	args := make([]Arg, 0, total)
	for i, c := range p.Calls {
		start := len(args)
		for _, a := range c.Args {
			args = append(args, a.Clone())
		}
		calls[i] = Call{Desc: c.Desc, Args: args[start:len(args):len(args)]}
		n.Calls[i] = &calls[i]
	}
	return n
}

// Len returns the number of calls.
func (p *Prog) Len() int { return len(p.Calls) }

// Validate checks that every call's arguments match its description and that
// every resource reference points to an earlier call producing the right
// resource kind (or is -1, an intentionally invalid handle).
func (p *Prog) Validate() error {
	for i, c := range p.Calls {
		if c.Desc == nil {
			return fmt.Errorf("dsl: call %d has nil description", i)
		}
		if len(c.Args) != len(c.Desc.Args) {
			return fmt.Errorf("dsl: call %d (%s) has %d args, want %d",
				i, c.Desc.Name, len(c.Args), len(c.Desc.Args))
		}
		for j, f := range c.Desc.Args {
			a := c.Args[j]
			switch f.Type.Kind {
			case KindResource:
				if a.Ref == -1 {
					continue
				}
				if a.Ref < 0 || a.Ref >= i {
					return fmt.Errorf("dsl: call %d (%s) arg %q refs call %d (out of range)",
						i, c.Desc.Name, f.Name, a.Ref)
				}
				prod := p.Calls[a.Ref]
				if prod.Desc.Ret != f.Type.Res {
					return fmt.Errorf("dsl: call %d (%s) arg %q wants resource %q, call %d produces %q",
						i, c.Desc.Name, f.Name, f.Type.Res, a.Ref, prod.Desc.Ret)
				}
			case KindBuffer:
				if len(a.Data) > f.Type.BufLen && f.Type.BufLen > 0 {
					return fmt.Errorf("dsl: call %d (%s) arg %q buffer len %d exceeds %d",
						i, c.Desc.Name, f.Name, len(a.Data), f.Type.BufLen)
				}
			case KindConst:
				if a.Val != f.Type.Val {
					return fmt.Errorf("dsl: call %d (%s) arg %q const %#x, want %#x",
						i, c.Desc.Name, f.Name, a.Val, f.Type.Val)
				}
			}
		}
	}
	return nil
}

// RemoveCall returns a copy of the program with call idx removed. Resource
// references to the removed call become invalid (-1); references to later
// calls are renumbered. Used by minimization.
func (p *Prog) RemoveCall(idx int) *Prog {
	n := &Prog{Calls: make([]*Call, 0, len(p.Calls)-1)}
	for i, c := range p.Calls {
		if i == idx {
			continue
		}
		nc := c.Clone()
		for j := range nc.Args {
			if nc.Desc.Args[j].Type.Kind != KindResource {
				continue
			}
			switch {
			case nc.Args[j].Ref == idx:
				nc.Args[j].Ref = -1
			case nc.Args[j].Ref > idx:
				nc.Args[j].Ref--
			}
		}
		n.Calls = append(n.Calls, nc)
	}
	return n
}

// InsertCall returns a copy of the program with call c inserted at idx
// (0 <= idx <= len). Resource references at or beyond idx are renumbered.
// References held by c itself must already be valid for the new layout.
func (p *Prog) InsertCall(idx int, c *Call) *Prog {
	if idx < 0 {
		idx = 0
	}
	if idx > len(p.Calls) {
		idx = len(p.Calls)
	}
	n := &Prog{Calls: make([]*Call, 0, len(p.Calls)+1)}
	for i, old := range p.Calls {
		if i == idx {
			n.Calls = append(n.Calls, c)
		}
		nc := old.Clone()
		for j := range nc.Args {
			if nc.Desc.Args[j].Type.Kind == KindResource && nc.Args[j].Ref >= idx {
				nc.Args[j].Ref++
			}
		}
		n.Calls = append(n.Calls, nc)
	}
	if idx == len(p.Calls) {
		n.Calls = append(n.Calls, c)
	}
	return n
}

// DefaultArg produces a deterministic minimal argument for the field type:
// the range minimum, first flag choice, empty buffer, first string choice,
// or an invalid resource reference.
func DefaultArg(t Type) Arg {
	switch t.Kind {
	case KindConst:
		return Arg{Val: t.Val}
	case KindInt:
		return Arg{Val: t.Min}
	case KindFlags:
		if len(t.Choices) > 0 {
			return Arg{Val: t.Choices[0]}
		}
		return Arg{}
	case KindBuffer:
		return Arg{Data: []byte{}}
	case KindString, KindFilename:
		if len(t.StrChoices) > 0 {
			return Arg{Str: t.StrChoices[0]}
		}
		return Arg{Str: ""}
	case KindResource:
		return Arg{Ref: -1}
	case KindLen:
		return Arg{}
	default:
		return Arg{}
	}
}

// RandomArg draws a random argument for the field type from rng. Length
// fields are fixed up afterwards by FixupLens.
func RandomArg(t Type, rng *rand.Rand) Arg {
	switch t.Kind {
	case KindConst:
		return Arg{Val: t.Val}
	case KindInt:
		if len(t.Hints) > 0 && rng.Intn(2) == 0 {
			// Replay an observed value — exactly half the time, else
			// perturbed by ±1 so nearby semantic variants (e.g. the
			// other rotation parity) are explored too.
			v := t.Hints[rng.Intn(len(t.Hints))]
			if rng.Intn(2) == 0 {
				v += uint64(rng.Intn(3))
				if v >= 1 {
					v--
				}
			}
			if v >= t.Min && v <= t.Max {
				return Arg{Val: v}
			}
		}
		if t.Max <= t.Min {
			return Arg{Val: t.Min}
		}
		span := t.Max - t.Min + 1
		return Arg{Val: t.Min + uint64(rng.Int63n(int64(span)))}
	case KindFlags:
		if len(t.Choices) == 0 {
			return Arg{Val: uint64(rng.Uint32())}
		}
		return Arg{Val: t.Choices[rng.Intn(len(t.Choices))]}
	case KindBuffer:
		max := t.BufLen
		if max <= 0 {
			max = 64
		}
		n := rng.Intn(max + 1)
		b := make([]byte, n)
		rng.Read(b)
		return Arg{Data: b}
	case KindString:
		if len(t.StrWeights) == len(t.StrChoices) && len(t.StrChoices) > 0 {
			return weightedStringArg(t, rng)
		}
		if len(t.StrChoices) > 0 && rng.Intn(4) != 0 {
			return Arg{Str: t.StrChoices[rng.Intn(len(t.StrChoices))]}
		}
		n := rng.Intn(12) + 1
		b := make([]byte, n)
		for i := range b {
			b[i] = byte('a' + rng.Intn(26))
		}
		return Arg{Str: string(b)}
	case KindFilename:
		if len(t.StrChoices) == 0 {
			return Arg{Str: "/dev/null"}
		}
		return Arg{Str: t.StrChoices[rng.Intn(len(t.StrChoices))]}
	case KindResource:
		return Arg{Ref: -1}
	case KindLen:
		return Arg{}
	default:
		return Arg{}
	}
}

// weightedStringArg draws a string choice by probe-observed weight, then
// occasionally applies a grammar-adjacent mutation — a single byte flip or
// a splice with another weighted choice — so generation concentrates on
// the values real init traffic writes while still probing the parser
// around them. Only types whose probing pass attached weights take this
// path, so weight-free targets replay bit-identically to historical seeds.
func weightedStringArg(t Type, rng *rand.Rand) Arg {
	s := t.StrChoices[weightedIndex(t.StrWeights, rng)]
	switch rng.Intn(8) {
	case 0:
		if len(s) > 0 {
			b := []byte(s)
			b[rng.Intn(len(b))] ^= byte(1 << uint(rng.Intn(8)))
			s = string(b)
		}
	case 1:
		d := t.StrChoices[weightedIndex(t.StrWeights, rng)]
		s = s[:rng.Intn(len(s)+1)] + d[rng.Intn(len(d)+1):]
	}
	return Arg{Str: s}
}

// weightedIndex draws an index with probability proportional to w. Probe
// normalization keeps every weight positive; a degenerate all-zero slice
// falls back to a uniform draw.
func weightedIndex(w []float64, rng *rand.Rand) int {
	total := 0.0
	for _, v := range w {
		total += v
	}
	if total <= 0 {
		return rng.Intn(len(w))
	}
	x := rng.Float64() * total
	for i, v := range w {
		x -= v
		if x <= 0 {
			return i
		}
	}
	return len(w) - 1
}

// FixupLens recomputes every KindLen argument of the call from the current
// length of its target buffer field.
func FixupLens(c *Call) {
	for i, f := range c.Desc.Args {
		if f.Type.Kind != KindLen {
			continue
		}
		for j, g := range c.Desc.Args {
			if g.Name == f.Type.LenOf {
				c.Args[i].Val = uint64(len(c.Args[j].Data))
				break
			}
		}
	}
}
