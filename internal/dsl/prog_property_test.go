package dsl

import (
	"math/rand"
	"testing"
	"testing/quick"

	// The property tests build random-but-valid programs by hand; they
	// deliberately avoid importing the generator to keep dsl leaf-level.
	_ "embed"
)

// randProg builds a random valid program over the test target: opens,
// ioctls referencing earlier opens, writes.
func randProg(t *testing.T, target *Target, rng *rand.Rand) *Prog {
	t.Helper()
	p := &Prog{}
	nOpens := 1 + rng.Intn(3)
	for i := 0; i < nOpens; i++ {
		d := target.Lookup("open$dev")
		p.Calls = append(p.Calls, &Call{Desc: d, Args: []Arg{RandomArg(d.Args[0].Type, rng)}})
	}
	nCalls := rng.Intn(8)
	for i := 0; i < nCalls; i++ {
		d := target.Lookup("ioctl$DEV_CMD")
		c := &Call{Desc: d, Args: make([]Arg, len(d.Args))}
		for j, f := range d.Args {
			c.Args[j] = RandomArg(f.Type, rng)
		}
		// Link fd to a random earlier open.
		c.Args[0].Ref = rng.Intn(nOpens)
		p.Calls = append(p.Calls, c)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("randProg built invalid program: %v", err)
	}
	return p
}

// TestRemoveInsertPreserveValidity: any single remove or insert on a valid
// program yields a valid program.
func TestRemoveInsertPreserveValidity(t *testing.T) {
	target := testTarget(t)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randProg(t, target, rng)
		for i := 0; i < p.Len(); i++ {
			if err := p.RemoveCall(i).Validate(); err != nil {
				t.Logf("remove %d: %v", i, err)
				return false
			}
		}
		d := target.Lookup("open$dev")
		extra := &Call{Desc: d, Args: []Arg{DefaultArg(d.Args[0].Type)}}
		for i := 0; i <= p.Len(); i++ {
			if err := p.InsertCall(i, extra.Clone()).Validate(); err != nil {
				t.Logf("insert %d: %v", i, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestInsertThenRemoveRoundTrip: inserting a call and removing it at the
// same index restores the original canonical text.
func TestInsertThenRemoveRoundTrip(t *testing.T) {
	target := testTarget(t)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randProg(t, target, rng)
		before := p.String()
		d := target.Lookup("open$dev")
		extra := &Call{Desc: d, Args: []Arg{DefaultArg(d.Args[0].Type)}}
		idx := rng.Intn(p.Len() + 1)
		q := p.InsertCall(idx, extra).RemoveCall(idx)
		return q.String() == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestSerializeParseAlwaysRoundTrips over randomly built programs.
func TestSerializeParseAlwaysRoundTrips(t *testing.T) {
	target := testTarget(t)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randProg(t, target, rng)
		text := p.String()
		q, err := ParseProg(target, text)
		if err != nil {
			t.Logf("parse: %v\n%s", err, text)
			return false
		}
		return q.String() == text
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestCloneIsDeep: mutating a clone never changes the original.
func TestCloneIsDeep(t *testing.T) {
	target := testTarget(t)
	rng := rand.New(rand.NewSource(11))
	p := randProg(t, target, rng)
	before := p.String()
	q := p.Clone()
	for _, c := range q.Calls {
		for i := range c.Args {
			c.Args[i].Val = 0xffff
			c.Args[i].Str = "mutated"
			if len(c.Args[i].Data) > 0 {
				c.Args[i].Data[0] ^= 0xff
			}
		}
	}
	if p.String() != before {
		t.Fatal("clone shares memory with original")
	}
}

// TestParseNeverPanics: corrupted program text must fail cleanly, never
// panic (corpus files may be hand-edited or truncated).
func TestParseNeverPanics(t *testing.T) {
	target := testTarget(t)
	rng := rand.New(rand.NewSource(3))
	base := randProg(t, target, rng).String()
	for i := 0; i < 2000; i++ {
		b := []byte(base)
		// Corrupt 1-4 random bytes and/or truncate.
		for n := 1 + rng.Intn(4); n > 0; n-- {
			b[rng.Intn(len(b))] = byte(rng.Intn(256))
		}
		if rng.Intn(3) == 0 {
			b = b[:rng.Intn(len(b)+1)]
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on corrupted input: %v\n%q", r, b)
				}
			}()
			ParseProg(target, string(b))
		}()
	}
}

// TestParseDescsNeverPanics applies the same to description files.
func TestParseDescsNeverPanics(t *testing.T) {
	target := testTarget(t)
	base := FormatDescs(target.Calls())
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 2000; i++ {
		b := []byte(base)
		for n := 1 + rng.Intn(4); n > 0; n-- {
			b[rng.Intn(len(b))] = byte(rng.Intn(256))
		}
		if rng.Intn(3) == 0 {
			b = b[:rng.Intn(len(b)+1)]
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on corrupted descs: %v\n%q", r, b)
				}
			}()
			ParseDescs(string(b))
		}()
	}
}
