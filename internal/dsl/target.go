package dsl

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Target aggregates all call descriptions available on one device: the
// static syscall descriptions plus the HAL interfaces discovered by the
// probing pass. It is the single source of truth for generation, parsing,
// and the specialized-ID lookup table.
type Target struct {
	calls     []*CallDesc
	byName    map[string]*CallDesc
	producers map[string][]*CallDesc // resource kind -> producing calls
}

// NewTarget builds a target from the given descriptions. Descriptions must
// be individually valid and have unique names.
func NewTarget(descs ...*CallDesc) (*Target, error) {
	t := &Target{
		byName:    make(map[string]*CallDesc, len(descs)),
		producers: make(map[string][]*CallDesc),
	}
	for _, d := range descs {
		if err := t.add(d); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// MustTarget is NewTarget that panics on error; for static description sets.
func MustTarget(descs ...*CallDesc) *Target {
	t, err := NewTarget(descs...)
	if err != nil {
		panic(err)
	}
	return t
}

func (t *Target) add(d *CallDesc) error {
	if err := d.Validate(); err != nil {
		return err
	}
	if _, dup := t.byName[d.Name]; dup {
		return fmt.Errorf("dsl: duplicate call description %q", d.Name)
	}
	t.calls = append(t.calls, d)
	t.byName[d.Name] = d
	if d.Ret != "" {
		t.producers[d.Ret] = append(t.producers[d.Ret], d)
	}
	return nil
}

// Extend adds more descriptions (e.g. HAL interfaces after probing),
// returning a new Target; the receiver is unchanged.
func (t *Target) Extend(descs ...*CallDesc) (*Target, error) {
	all := make([]*CallDesc, 0, len(t.calls)+len(descs))
	all = append(all, t.calls...)
	all = append(all, descs...)
	return NewTarget(all...)
}

// Calls returns all descriptions in registration order. The slice must not
// be modified.
func (t *Target) Calls() []*CallDesc { return t.calls }

// Lookup returns the description with the given DSL name, or nil.
func (t *Target) Lookup(name string) *CallDesc { return t.byName[name] }

// Producers returns the calls that produce the given resource kind.
func (t *Target) Producers(res string) []*CallDesc { return t.producers[res] }

// SyscallCalls returns only the ClassSyscall descriptions.
func (t *Target) SyscallCalls() []*CallDesc {
	var out []*CallDesc
	for _, d := range t.calls {
		if d.Class == ClassSyscall {
			out = append(out, d)
		}
	}
	return out
}

// HALCalls returns only the ClassHAL descriptions.
func (t *Target) HALCalls() []*CallDesc {
	var out []*CallDesc
	for _, d := range t.calls {
		if d.Class == ClassHAL {
			out = append(out, d)
		}
	}
	return out
}

// ParamCalls returns only the ClassParam descriptions.
func (t *Target) ParamCalls() []*CallDesc {
	var out []*CallDesc
	for _, d := range t.calls {
		if d.Class == ClassParam {
			out = append(out, d)
		}
	}
	return out
}

// ResourceKinds returns the sorted set of resource kinds with producers.
func (t *Target) ResourceKinds() []string {
	out := make([]string, 0, len(t.producers))
	for k := range t.producers {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Hash fingerprints the target's interface surface: every call description
// in registration order with its class, dispatch identity, weight, and
// argument syntax. Two targets built from the same device model by the same
// probing pass hash identically, so a host-side engine and a remote broker
// can verify during the transport handshake that they agree on the callable
// surface before any program crosses the wire.
func (t *Target) Hash() uint64 {
	h := fnv.New64a()
	for _, d := range t.calls {
		fmt.Fprintf(h, "%s|%d|%s|%s|%s|%d|%s|%s|%g|%d\x00",
			d.Name, d.Class, d.Syscall, d.Service, d.Method, d.MethodCode,
			d.Param, d.Ret, d.Weight, d.CriticalArg)
		for _, f := range d.Args {
			fmt.Fprintf(h, "%s|%d|%d|%d|%d|%s|%s|%d\x1f",
				f.Name, f.Type.Kind, f.Type.Min, f.Type.Max, f.Type.BufLen,
				f.Type.Res, f.Type.LenOf, f.Type.Val)
			for _, c := range f.Type.Choices {
				fmt.Fprintf(h, "%d,", c)
			}
			for _, s := range f.Type.StrChoices {
				fmt.Fprintf(h, "%s,", s)
			}
			// Weights hash only when present, so weight-free targets keep
			// their historical fingerprints.
			for _, w := range f.Type.StrWeights {
				fmt.Fprintf(h, "%g;", w)
			}
		}
	}
	return h.Sum64()
}

// Names returns the sorted DSL names of all calls.
func (t *Target) Names() []string {
	out := make([]string, 0, len(t.calls))
	for _, d := range t.calls {
		out = append(out, d.Name)
	}
	sort.Strings(out)
	return out
}
