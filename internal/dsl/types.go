// Package dsl implements the domain-specific language DroidFuzz uses to
// describe testable interfaces and test-case programs (paper §IV-A). It is a
// deliberately small cousin of Syzlang: call descriptions carry typed
// argument syntax for both Linux system calls and probed HAL interfaces, and
// programs are sequences of instantiated calls with resource flow between
// them. Programs serialize to a stable text form for the seed corpus.
package dsl

import "fmt"

// Kind enumerates argument type kinds.
type Kind int

const (
	// KindConst is a fixed scalar value (e.g. an ioctl request code).
	KindConst Kind = iota
	// KindInt is an integer uniformly drawn from [Min, Max].
	KindInt
	// KindFlags is a scalar drawn from an explicit choice list.
	KindFlags
	// KindBuffer is a byte buffer of length up to BufLen.
	KindBuffer
	// KindString is a printable string (e.g. a codec name).
	KindString
	// KindFilename is a device path, drawn from StrChoices.
	KindFilename
	// KindResource consumes a value produced by an earlier call (an fd, a
	// HAL-level handle such as a layer or stream id, ...).
	KindResource
	// KindLen is the length of the sibling buffer field named by LenOf.
	KindLen
)

// String names the kind for diagnostics.
func (k Kind) String() string {
	switch k {
	case KindConst:
		return "const"
	case KindInt:
		return "int"
	case KindFlags:
		return "flags"
	case KindBuffer:
		return "buffer"
	case KindString:
		return "string"
	case KindFilename:
		return "filename"
	case KindResource:
		return "resource"
	case KindLen:
		return "len"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Type describes the syntax of one argument. Only the fields relevant to
// Kind are meaningful.
type Type struct {
	Kind       Kind
	Min, Max   uint64   // KindInt range (inclusive)
	Choices    []uint64 // KindFlags values
	BufLen     int      // KindBuffer maximum length
	Res        string   // KindResource resource kind, e.g. "fd_tcpc", "hal_layer"
	StrChoices []string // KindFilename / KindString candidates
	// StrWeights, when parallel to StrChoices, biases KindString draws by
	// probe-observed occurrence weight (the string-knob grammar: values a
	// vendor init script actually writes dominate, the rest stay live).
	// Empty means uniform draws — the historical behavior.
	StrWeights []float64
	Val        uint64 // KindConst value
	LenOf      string   // KindLen: name of the buffer field measured
	// Hints are argument values observed in real traffic (the probing
	// pass harvests them from framework→HAL IPC); generation draws from
	// them with small perturbations — the paper's historical payload
	// component.
	Hints []uint64
}

// Field is a named argument slot in a call description.
type Field struct {
	Name string
	Type Type
}

// Const returns a constant-argument type.
func Const(v uint64) Type { return Type{Kind: KindConst, Val: v} }

// Int returns an integer type in [min, max].
func Int(min, max uint64) Type { return Type{Kind: KindInt, Min: min, Max: max} }

// Flags returns a choice-list type.
func Flags(choices ...uint64) Type { return Type{Kind: KindFlags, Choices: choices} }

// Buffer returns a byte-buffer type of at most n bytes.
func Buffer(n int) Type { return Type{Kind: KindBuffer, BufLen: n} }

// String_ returns a string type with optional candidate values.
func String_(choices ...string) Type { return Type{Kind: KindString, StrChoices: choices} }

// Filename returns a device-path type with candidate paths.
func Filename(paths ...string) Type { return Type{Kind: KindFilename, StrChoices: paths} }

// Resource returns a resource-consuming type of the given kind.
func Resource(kind string) Type { return Type{Kind: KindResource, Res: kind} }

// Len returns a length-of type bound to the buffer field named fieldName.
func Len(fieldName string) Type { return Type{Kind: KindLen, LenOf: fieldName} }

// Class distinguishes kernel system calls from HAL interface invocations.
type Class int

const (
	// ClassSyscall is a Linux system call executed by the native executor.
	ClassSyscall Class = iota
	// ClassHAL is a HAL interface invocation executed via Binder by the HAL
	// executor.
	ClassHAL
	// ClassParam is a runtime-parameter write: the native executor opens the
	// sysfs attribute named by Param, writes the value argument in text form,
	// and closes it. Params flip driver behavior without any ioctl, so they
	// form a fuzzing dimension of their own (SyzParam).
	ClassParam
)

// String names the class.
func (c Class) String() string {
	switch c {
	case ClassHAL:
		return "hal"
	case ClassParam:
		return "param"
	default:
		return "syscall"
	}
}

// CallDesc describes one invocable interface: a (possibly specialized)
// system call such as "ioctl$TCPC_SET_MODE", or a probed HAL interface such
// as "hal$graphics.createLayer".
type CallDesc struct {
	// Name is the unique DSL name.
	Name string
	// Class selects the executor.
	Class Class
	// Syscall is the base syscall name for ClassSyscall ("open", "ioctl",
	// "read", "write", "mmap", "close").
	Syscall string
	// Service and Method identify the HAL interface for ClassHAL;
	// MethodCode is the Binder transaction code discovered by probing.
	Service    string
	Method     string
	MethodCode uint32
	// Param is the sysfs attribute path for ClassParam, e.g.
	// "/sys/module/tcpc/parameters/pd_compliance".
	Param string
	// Args is the ordered argument syntax.
	Args []Field
	// Ret names the resource kind this call produces ("" if none).
	Ret string
	// Weight is the static vertex weight used as base-invocation
	// probability mass (paper §IV-C); syscall weights come from
	// descriptions, HAL weights from the probing pass.
	Weight float64
	// CriticalArg indexes the argument used for syscall specialization in
	// the feedback lookup table (paper §IV-D), e.g. the ioctl request;
	// -1 when the call has no critical argument.
	CriticalArg int
}

// IsHAL reports whether the description is a HAL interface.
func (d *CallDesc) IsHAL() bool { return d.Class == ClassHAL }

// String returns the DSL name.
func (d *CallDesc) String() string { return d.Name }

// Validate checks internal consistency of the description.
func (d *CallDesc) Validate() error {
	if d.Name == "" {
		return fmt.Errorf("dsl: call description with empty name")
	}
	if d.Class == ClassSyscall && d.Syscall == "" {
		return fmt.Errorf("dsl: syscall description %q missing base syscall", d.Name)
	}
	if d.Class == ClassHAL && (d.Service == "" || d.Method == "") {
		return fmt.Errorf("dsl: HAL description %q missing service/method", d.Name)
	}
	if d.Class == ClassParam {
		if d.Param == "" {
			return fmt.Errorf("dsl: param description %q missing sysfs path", d.Name)
		}
		if len(d.Args) != 1 {
			return fmt.Errorf("dsl: param description %q must take exactly one value argument", d.Name)
		}
	}
	if d.CriticalArg >= len(d.Args) {
		return fmt.Errorf("dsl: %q critical arg %d out of range", d.Name, d.CriticalArg)
	}
	names := make(map[string]bool, len(d.Args))
	for i, f := range d.Args {
		if f.Name == "" {
			return fmt.Errorf("dsl: %q arg %d unnamed", d.Name, i)
		}
		if names[f.Name] {
			return fmt.Errorf("dsl: %q duplicate arg name %q", d.Name, f.Name)
		}
		names[f.Name] = true
		if f.Type.Kind == KindResource && f.Type.Res == "" {
			return fmt.Errorf("dsl: %q arg %q resource without kind", d.Name, f.Name)
		}
		if f.Type.Kind == KindLen {
			if f.Type.LenOf == "" {
				return fmt.Errorf("dsl: %q arg %q len without target", d.Name, f.Name)
			}
			found := false
			for _, g := range d.Args {
				if g.Name == f.Type.LenOf && g.Type.Kind == KindBuffer {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("dsl: %q arg %q len target %q is not a buffer field",
					d.Name, f.Name, f.Type.LenOf)
			}
		}
	}
	return nil
}
