// Package ebpf models the eBPF syscall tracepoints DroidFuzz inserts into
// the kernel (paper §IV-B and §IV-D). A Hub is installed as the kernel's
// single tracer; probes attach to the hub with a filter program and collect
// matching syscall events into per-probe ring buffers, exactly the role the
// paper's probe utility and HAL executor play: observing Binder/HAL-origin
// syscalls, their numbers, critical position arguments, and order.
package ebpf

import (
	"sync"

	"droidfuzz/internal/vkernel"
)

// Filter decides whether a probe keeps an event. A nil filter keeps all.
type Filter func(vkernel.Event) bool

// OriginFilter keeps only events from the given boundary origin.
func OriginFilter(o vkernel.Origin) Filter {
	return func(ev vkernel.Event) bool { return ev.Origin == o }
}

// PIDFilter keeps only events from the given process.
func PIDFilter(pid int) Filter {
	return func(ev vkernel.Event) bool { return ev.PID == pid }
}

// And combines filters conjunctively.
func And(fs ...Filter) Filter {
	return func(ev vkernel.Event) bool {
		for _, f := range fs {
			if f != nil && !f(ev) {
				return false
			}
		}
		return true
	}
}

// Probe is one attached tracepoint program with its event buffer.
type Probe struct {
	hub    *Hub
	filter Filter
	mu     sync.Mutex
	events []vkernel.Event
	max    int
	drops  uint64
}

// DefaultProbeCap bounds a probe's buffered events, like a BPF ring buffer.
const DefaultProbeCap = 1 << 16

// Events returns a copy of the buffered events in arrival order.
func (p *Probe) Events() []vkernel.Event {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]vkernel.Event, len(p.events))
	copy(out, p.events)
	return out
}

// Take returns and clears the buffered events.
func (p *Probe) Take() []vkernel.Event {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := p.events
	p.events = nil
	return out
}

// Drain invokes fn for each buffered event in arrival order, then clears
// the buffer keeping its capacity — the allocation-free alternative to Take
// used by the pooled execution-result path. fn must not call back into the
// probe.
func (p *Probe) Drain(fn func(vkernel.Event)) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, ev := range p.events {
		fn(ev)
	}
	p.events = p.events[:0]
}

// Reset clears the buffer without detaching, keeping its capacity.
func (p *Probe) Reset() {
	p.mu.Lock()
	p.events = p.events[:0]
	p.drops = 0
	p.mu.Unlock()
}

// Dropped reports ring-buffer overflow drops.
func (p *Probe) Dropped() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.drops
}

// Detach removes the probe from its hub; further events are not collected.
func (p *Probe) Detach() {
	if p.hub != nil {
		p.hub.detach(p)
		p.hub = nil
	}
}

func (p *Probe) deliver(ev vkernel.Event) {
	if p.filter != nil && !p.filter(ev) {
		return
	}
	p.mu.Lock()
	if len(p.events) < p.max {
		p.events = append(p.events, ev)
	} else {
		p.drops++
	}
	p.mu.Unlock()
}

// Hub fans kernel syscall events out to attached probes. Install it on a
// kernel with Install; probes may attach and detach at runtime, as the
// paper's probing pass does around each Poke trial.
type Hub struct {
	mu     sync.Mutex
	probes []*Probe //droidvet:checkpoint ephemeral probes are harness wiring, not device state (see snapshot.go)
}

// NewHub returns an empty hub.
func NewHub() *Hub { return &Hub{} }

// Install registers the hub as the kernel's tracer.
func (h *Hub) Install(k *vkernel.Kernel) {
	k.SetTracer(h.emit)
}

func (h *Hub) emit(ev vkernel.Event) {
	h.mu.Lock()
	probes := make([]*Probe, len(h.probes))
	copy(probes, h.probes)
	h.mu.Unlock()
	for _, p := range probes {
		p.deliver(ev)
	}
}

// Attach creates a probe with the given filter (nil keeps everything) and a
// buffer of cap events (DefaultProbeCap if cap <= 0).
func (h *Hub) Attach(filter Filter, capacity int) *Probe {
	if capacity <= 0 {
		capacity = DefaultProbeCap
	}
	p := &Probe{hub: h, filter: filter, max: capacity}
	h.mu.Lock()
	h.probes = append(h.probes, p)
	h.mu.Unlock()
	return p
}

func (h *Hub) detach(p *Probe) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for i, q := range h.probes {
		if q == p {
			h.probes = append(h.probes[:i], h.probes[i+1:]...)
			return
		}
	}
}

// Attached reports the number of live probes.
func (h *Hub) Attached() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.probes)
}
