package ebpf

import (
	"testing"

	"droidfuzz/internal/vkernel"
)

func ev(pid int, origin vkernel.Origin, nr string) vkernel.Event {
	return vkernel.Event{PID: pid, Origin: origin, NR: nr}
}

func TestHubFanOut(t *testing.T) {
	h := NewHub()
	all := h.Attach(nil, 0)
	halOnly := h.Attach(OriginFilter(vkernel.OriginHAL), 0)
	pid7 := h.Attach(PIDFilter(7), 0)

	h.emit(ev(1, vkernel.OriginNative, "open"))
	h.emit(ev(7, vkernel.OriginHAL, "ioctl"))
	h.emit(ev(7, vkernel.OriginNative, "close"))

	if len(all.Events()) != 3 {
		t.Fatalf("all = %d", len(all.Events()))
	}
	if got := halOnly.Events(); len(got) != 1 || got[0].NR != "ioctl" {
		t.Fatalf("halOnly = %v", got)
	}
	if len(pid7.Events()) != 2 {
		t.Fatalf("pid7 = %d", len(pid7.Events()))
	}
}

func TestAndFilter(t *testing.T) {
	h := NewHub()
	p := h.Attach(And(OriginFilter(vkernel.OriginHAL), PIDFilter(7)), 0)
	h.emit(ev(7, vkernel.OriginHAL, "a"))
	h.emit(ev(7, vkernel.OriginNative, "b"))
	h.emit(ev(8, vkernel.OriginHAL, "c"))
	if got := p.Events(); len(got) != 1 || got[0].NR != "a" {
		t.Fatalf("events = %v", got)
	}
}

func TestDetachStopsDelivery(t *testing.T) {
	h := NewHub()
	p := h.Attach(nil, 0)
	h.emit(ev(1, vkernel.OriginNative, "a"))
	p.Detach()
	h.emit(ev(1, vkernel.OriginNative, "b"))
	if len(p.Events()) != 1 {
		t.Fatalf("events = %d, want 1", len(p.Events()))
	}
	if h.Attached() != 0 {
		t.Fatal("probe still attached")
	}
}

func TestTakeAndReset(t *testing.T) {
	h := NewHub()
	p := h.Attach(nil, 0)
	h.emit(ev(1, vkernel.OriginNative, "a"))
	if got := p.Take(); len(got) != 1 {
		t.Fatalf("take = %d", len(got))
	}
	if len(p.Events()) != 0 {
		t.Fatal("take did not clear")
	}
	h.emit(ev(1, vkernel.OriginNative, "b"))
	p.Reset()
	if len(p.Events()) != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestRingOverflowDrops(t *testing.T) {
	h := NewHub()
	p := h.Attach(nil, 2)
	for i := 0; i < 5; i++ {
		h.emit(ev(i, vkernel.OriginNative, "x"))
	}
	if len(p.Events()) != 2 {
		t.Fatalf("buffered = %d, want 2", len(p.Events()))
	}
	if p.Dropped() != 3 {
		t.Fatalf("dropped = %d, want 3", p.Dropped())
	}
}

func TestInstallOnKernel(t *testing.T) {
	k := vkernel.New()
	h := NewHub()
	h.Install(k)
	p := h.Attach(nil, 0)
	// An ENOENT open still produces a trace event.
	k.Open(1, vkernel.OriginNative, "/dev/none", 0)
	got := p.Events()
	if len(got) != 1 || got[0].Errno != "ENOENT" {
		t.Fatalf("events = %v", got)
	}
}
