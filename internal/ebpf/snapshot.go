package ebpf

// Hub checkpoint/restore. Attached probes are harness-side observers that
// deliberately survive both reboot and restore (the broker re-reads its
// probe across resets, and ExecProg drains it per execution), so the hub
// carries no device state: its generation never advances and Device.Restore
// always skips it.

// Checkpoint implements snap.Subsystem.
func (h *Hub) Checkpoint() any { return nil }

// Restore implements snap.Subsystem.
func (h *Hub) Restore(any) {}

// Export implements snap.Subsystem. Probes are harness wiring, not device
// state: each twin's broker installs its own.
func (h *Hub) Export() any { return nil }

// Import implements snap.Subsystem.
func (h *Hub) Import(any) {}

// Gen implements snap.Subsystem.
func (h *Hub) Gen() uint64 { return 0 }
