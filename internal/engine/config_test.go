package engine

import "testing"

// TestConfigDefaultsZeroValues: the zero Config resolves to the documented
// defaults.
func TestConfigDefaultsZeroValues(t *testing.T) {
	var c Config
	c.defaults()
	if c.GenerateRatio != 0.4 {
		t.Errorf("GenerateRatio = %v, want 0.4", c.GenerateRatio)
	}
	if c.DirAdmitProb != 0.25 {
		t.Errorf("DirAdmitProb = %v, want 0.25", c.DirAdmitProb)
	}
	if c.DecayFactor != 0.9 {
		t.Errorf("DecayFactor = %v, want 0.9", c.DecayFactor)
	}
	if c.DecayEvery != 400 || c.SnapshotEvery != 25 || c.MaxMinimizeExecs != 12 {
		t.Errorf("schedule defaults wrong: %+v", c)
	}
}

// TestConfigDisabledSentinels: Disabled pins ratio/probability/factor
// fields to zero instead of silently snapping back to the default — the
// zero-value clamping bug this sentinel exists to fix.
func TestConfigDisabledSentinels(t *testing.T) {
	c := Config{
		GenerateRatio: Disabled,
		DirAdmitProb:  Disabled,
		DecayFactor:   Disabled,
	}
	c.defaults()
	if c.GenerateRatio != 0 {
		t.Errorf("GenerateRatio = %v, want 0 (disabled)", c.GenerateRatio)
	}
	if c.DirAdmitProb != 0 {
		t.Errorf("DirAdmitProb = %v, want 0 (disabled)", c.DirAdmitProb)
	}
	if c.DecayFactor != 0 {
		t.Errorf("DecayFactor = %v, want 0 (disabled)", c.DecayFactor)
	}
}

// TestConfigNoDecayFlag: DecayEvery's zero value means "default 400", so
// disabling the decay schedule needs the explicit flag.
func TestConfigNoDecayFlag(t *testing.T) {
	c := Config{NoDecay: true, DecayEvery: 1000}
	c.defaults()
	if c.DecayEvery != 0 {
		t.Errorf("DecayEvery = %d, want 0 with NoDecay", c.DecayEvery)
	}
	c = Config{DecayEvery: 1000}
	c.defaults()
	if c.DecayEvery != 1000 {
		t.Errorf("DecayEvery = %d, want 1000", c.DecayEvery)
	}
}

// TestConfigEdgeValuesSurvive: explicit in-range values are preserved, and
// out-of-range probabilities clamp instead of resetting.
func TestConfigEdgeValuesSurvive(t *testing.T) {
	c := Config{GenerateRatio: 0.01, DirAdmitProb: 1, DecayFactor: 0.5}
	c.defaults()
	if c.GenerateRatio != 0.01 || c.DirAdmitProb != 1 || c.DecayFactor != 0.5 {
		t.Errorf("explicit values clobbered: %+v", c)
	}
	c = Config{GenerateRatio: 7}
	c.defaults()
	if c.GenerateRatio != 1 {
		t.Errorf("GenerateRatio = %v, want clamp to 1", c.GenerateRatio)
	}
}
