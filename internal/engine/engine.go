// Package engine implements the host-side Fuzzing Engine (paper §IV-A):
// one per device, it produces test cases (relational generation plus
// corpus mutation), ships them to the device's execution broker, interprets
// the cross-boundary feedback, minimizes and admits interesting programs,
// learns relations, and triages crashes.
//
// Two run modes exist. Run is strictly serial and deterministic: one RNG
// drives selection, generation, and admission, so a fixed seed replays a
// campaign bit-identically. RunPipelined overlaps generation with
// execution — a producer goroutine keeps a bounded queue of programs
// generated ahead from its own derived RNG — trading replay determinism for
// throughput (the deployment-shape tradeoff; see DESIGN.md).
package engine

import (
	"errors"
	"math/rand"
	"sync/atomic"

	"droidfuzz/internal/adb"
	"droidfuzz/internal/corpus"
	"droidfuzz/internal/crash"
	"droidfuzz/internal/dsl"
	"droidfuzz/internal/feedback"
	"droidfuzz/internal/gen"
	"droidfuzz/internal/relation"
)

// Disabled is the sentinel for Config ratio/probability/factor fields whose
// zero value means "use the default": setting a field to Disabled pins it
// to zero instead (never generate, never admit direction-only novelty, no
// decay), which a literal 0 cannot express.
const Disabled = -1

// Config tunes one engine.
type Config struct {
	// Seed seeds the engine's RNG; campaigns are reproducible.
	Seed int64
	// GenerateRatio is the probability of fresh generation vs corpus
	// mutation (default 0.4; mutation dominates once a corpus exists).
	// Set to Disabled to pin it to 0 (mutate-only once a corpus exists).
	GenerateRatio float64
	// NoRelations is the DF-NoRel ablation: random dependency generation
	// and no relation learning.
	NoRelations bool
	// NoHALCov is the DF-NoHCov ablation: directional HAL coverage is
	// dropped from the feedback signal.
	NoHALCov bool
	// DecayEvery is the period (in executions) of relation-weight decay
	// (default 400). Set NoDecay to disable decay entirely.
	DecayEvery uint64
	// NoDecay disables periodic relation-weight decay (DecayEvery's zero
	// value means "default", so it cannot express "off" itself).
	NoDecay bool
	// DecayFactor multiplies edge weights at each decay (default 0.9; the
	// valid range is (0,1), values outside it fall back to the default).
	// Set to Disabled to suppress the decay effect without touching the
	// schedule.
	DecayFactor float64
	// SnapshotEvery is the coverage-history sampling period in executions
	// (default 25).
	SnapshotEvery uint64
	// MinimizeNew enables reproducing-signal minimization before corpus
	// admission and relation learning (default on; set SkipMinimize to
	// disable).
	SkipMinimize bool
	// MaxMinimizeExecs bounds the extra executions spent per
	// minimization (default 12).
	MaxMinimizeExecs int
	// Params enables the runtime-parameter dimension: the probing pass
	// discovers writable sysfs knobs, the target gains their write
	// descriptions, and generation may plant knob writes before the calls
	// they unlock. Off by default — a param-free target offers generation
	// no param operators, so disabled campaigns replay bit-identically to
	// historical seeds. The engine itself is gated by the target contents;
	// this flag is consumed at target-assembly time (baseline, daemon).
	Params bool
	// DirAdmitProb is the probability of admitting a program whose only
	// novelty is directional (HAL-order) signal (default 0.25). Every
	// fresh interleaving hashes to new directional elements, so admitting
	// them all floods the corpus and starves kernel-productive seeds;
	// subsampling keeps the ordering guidance at a bounded dilution cost.
	// Set to Disabled to never admit direction-only novelty.
	DirAdmitProb float64
	// Reset selects the pristine-reset campaign mode: "" or ResetNever
	// accumulates device state within a boot (historical behavior),
	// ResetExec restores the pristine checkpoint before every program, and
	// ResetBatch before every batch (every DefaultBatchSize executions in
	// unbatched modes). The exec/batch modes lean on the snapshot restore
	// path, so their steady-state cost is an O(dirty-state) rewind per
	// reset, not a reboot.
	Reset string
	// LineageK, when positive and the executor supports checkpoint
	// portability (adb.Cloner), enables fork-style corpus fan-out: a
	// corpus admission carrying new kernel coverage checkpoints the
	// post-prefix device state and runs LineageK independent mutation
	// lineages against it, each inheriting the prefix's device state
	// without re-executing the prefix. 0 disables fan-out.
	LineageK int
	// LineageLen is the number of mutants each lineage executes
	// (default 8 when LineageK is set).
	LineageLen int
	// Gen forwards generation options.
	Gen gen.Options
}

// resolveProb maps a probability-like config field to its effective value:
// the zero value takes the default, Disabled (or any negative) pins 0, and
// values above 1 clamp to 1.
func resolveProb(v, def float64) float64 {
	switch {
	case v < 0:
		return 0
	case v == 0:
		return def
	case v > 1:
		return 1
	default:
		return v
	}
}

func (c *Config) defaults() {
	c.GenerateRatio = resolveProb(c.GenerateRatio, 0.4)
	c.DirAdmitProb = resolveProb(c.DirAdmitProb, 0.25)
	if c.DecayEvery == 0 {
		c.DecayEvery = 400
	}
	if c.NoDecay {
		c.DecayEvery = 0 // the decay gate skips a zero period
	}
	switch {
	case c.DecayFactor < 0:
		// Explicitly disabled: Graph.Decay no-ops on a zero factor.
		c.DecayFactor = 0
	case c.DecayFactor == 0 || c.DecayFactor >= 1:
		c.DecayFactor = 0.9
	}
	if c.SnapshotEvery == 0 {
		c.SnapshotEvery = 25
	}
	if c.MaxMinimizeExecs == 0 {
		c.MaxMinimizeExecs = 12
	}
	if c.Reset == "" {
		c.Reset = ResetNever
	}
	if c.LineageK > 0 && c.LineageLen <= 0 {
		c.LineageLen = 8
	}
	c.Gen.NoRelations = c.NoRelations
}

// Stats are engine counters.
type Stats struct {
	Execs        uint64
	Generated    uint64
	Mutated      uint64
	NewSignal    uint64
	ExecErrors   uint64
	ParamWrites  uint64
	LineageExecs uint64
	CorpusSize   int
	Crashes     int
	UniqueBugs  int
	Reboots     int
	Restores    int
	KernelCov   int
	TotalSignal int
}

// Engine drives fuzzing for one device.
type Engine struct {
	x      adb.Executor
	target *dsl.Target
	gen    *gen.Generator
	graph  *relation.Graph
	corpus *corpus.Corpus
	acc    *feedback.Accumulator
	spec   *feedback.SpecTable
	dedup  *crash.Dedup
	rng    *rand.Rand
	cfg    Config

	// modelID is the device identity cached from the attach-time
	// handshake, so crash attribution keeps working while a remote link is
	// down.
	modelID string

	// learnBuf, when set by the daemon for a parallel campaign, receives
	// the engine's relation learns instead of the shared graph; the daemon
	// applies the buffered ops in deterministic (device, sequence) order.
	// Serial campaigns leave it nil and learn synchronously.
	learnBuf *relation.LearnBuffer

	// pristine caches the campaign's pristine checkpoint blob so lineage
	// fan-outs can wind the device back without re-exporting it every
	// time; inLineage guards against a fan-out triggering another fan-out.
	pristine  []byte
	inLineage bool

	// Counters are atomics so the daemon's status path can snapshot them
	// mid-campaign without stalling the engine goroutine. Only the engine
	// itself writes them.
	execs        atomic.Uint64
	generated    atomic.Uint64
	mutated      atomic.Uint64
	newSig       atomic.Uint64
	execErrors   atomic.Uint64
	paramWrites  atomic.Uint64
	lineageExecs atomic.Uint64
	crashes      atomic.Int64
	reboots      atomic.Int64
	restores     atomic.Int64
}

// New builds an engine over an executor whose target already includes
// probed HAL interfaces — the in-process broker, a transport connection, or
// a resilient remote client; everything above this boundary is
// transport-agnostic. The relation graph and dedup collector may be shared
// with other engines (the daemon owns them).
func New(x adb.Executor, graph *relation.Graph, dedup *crash.Dedup, cfg Config) *Engine {
	cfg.defaults()
	target := x.Target()
	rng := rand.New(rand.NewSource(cfg.Seed))
	var spec *feedback.SpecTable
	if !cfg.NoHALCov {
		spec = feedback.NewSpecTable(target)
	}
	// Seed the relation graph's vertices from the target's descriptions.
	for _, d := range target.Calls() {
		graph.AddVertex(d.Name, d.Weight)
	}
	e := &Engine{
		x:      x,
		target: target,
		gen:    gen.New(target, graph, rng, cfg.Gen),
		graph:  graph,
		corpus: corpus.New(),
		acc:    feedback.NewAccumulator(),
		spec:   spec,
		dedup:  dedup,
		rng:    rng,
		cfg:    cfg,
	}
	// Best-effort identity snapshot: the in-process broker always answers;
	// a resilient remote client answers from its handshake cache even when
	// the link is down.
	if info, err := x.Info(); err == nil || info.ModelID != "" {
		e.modelID = info.ModelID
		e.reboots.Store(int64(info.Reboots))
		e.restores.Store(int64(info.Restores))
	}
	return e
}

// SetLearnBuffer routes subsequent relation learns into buf (parallel
// campaigns) or, when buf is nil, back to synchronous graph learning. The
// daemon calls it before starting and after finishing a parallel run; it
// must not be called while the engine is stepping.
func (e *Engine) SetLearnBuffer(buf *relation.LearnBuffer) {
	e.learnBuf = buf
}

// Corpus exposes the engine's corpus (persistence, tests).
func (e *Engine) Corpus() *corpus.Corpus { return e.corpus }

// Executor exposes the engine's execution boundary (diagnostics).
func (e *Engine) Executor() adb.Executor { return e.x }

// Broker exposes the in-process execution broker when the engine runs over
// one (diagnostics, fault injection in tests); it returns nil for remote
// executors.
func (e *Engine) Broker() *adb.Broker {
	b, _ := e.x.(*adb.Broker)
	return b
}

// Accumulator exposes the coverage accumulator.
func (e *Engine) Accumulator() *feedback.Accumulator { return e.acc }

// Dedup exposes the crash collector.
func (e *Engine) Dedup() *crash.Dedup { return e.dedup }

// Graph exposes the relation graph.
func (e *Engine) Graph() *relation.Graph { return e.graph }

// Gen exposes the generator (diagnostics, distribution analysis).
func (e *Engine) Gen() *gen.Generator { return e.gen }

// Rng exposes the engine's RNG (diagnostics; using it perturbs the run).
func (e *Engine) Rng() *rand.Rand { return e.rng }

// Execs reports executions so far (the virtual-time clock).
func (e *Engine) Execs() uint64 { return e.execs.Load() }

// Stats snapshots the counters. Safe to call from the daemon's status path
// while the engine is mid-campaign: every source is an atomic or takes a
// short independent lock.
func (e *Engine) Stats() Stats {
	return Stats{
		Execs:        e.execs.Load(),
		Generated:    e.generated.Load(),
		Mutated:      e.mutated.Load(),
		NewSignal:    e.newSig.Load(),
		ExecErrors:   e.execErrors.Load(),
		ParamWrites:  e.paramWrites.Load(),
		LineageExecs: e.lineageExecs.Load(),
		CorpusSize:   e.corpus.Len(),
		Crashes:     int(e.crashes.Load()),
		UniqueBugs:  e.dedup.Len(),
		Reboots:     int(e.reboots.Load()),
		Restores:    int(e.restores.Load()),
		KernelCov:   e.acc.KernelTotal(),
		TotalSignal: e.acc.Total(),
	}
}

// reset brings the device back to pristine post-boot state through the
// executor. The executor restores from its boot snapshot when it can (an
// O(dirty-state) rewind) and falls back to a full reboot otherwise; either
// way the engine observes a pristine device, so the two paths are
// interchangeable for campaign determinism and only the counters differ.
// In-process resets cannot fail; a remote reset that does (broker down
// mid-campaign) counts against ExecErrors like any other boundary failure
// and the campaign proceeds — the next execution surfaces the same link
// trouble anyway.
func (e *Engine) reset() {
	restored, err := e.x.Reset()
	if err != nil {
		e.execErrors.Add(1)
		return
	}
	if restored {
		e.restores.Add(1)
	} else {
		e.reboots.Add(1)
	}
}

// exec runs one program, bumping virtual time and handling crash fallout.
// Both returned values are pooled; the caller releases them.
func (e *Engine) exec(p *dsl.Prog) (*adb.ExecResult, *feedback.Signal) {
	res, err := e.x.ExecProg(p)
	return e.afterExec(p, res, err)
}

// afterExec is the post-execution half of exec, shared with the batched
// path: virtual time, error accounting, and crash fallout (reboot, dedup,
// triage). res may be nil on error. Both returned values are pooled; the
// caller releases them.
func (e *Engine) afterExec(p *dsl.Prog, res *adb.ExecResult, err error) (*adb.ExecResult, *feedback.Signal) {
	e.execs.Add(1)
	if err != nil || res == nil {
		// Executor errors are surfaced through the ExecErrors counter
		// rather than silently swallowed; the iteration proceeds on an
		// empty result so virtual time still advances.
		e.execErrors.Add(1)
		return adb.GetResult(), feedback.NewSignal()
	}
	for _, c := range p.Calls {
		if c.Desc.Class == dsl.ClassParam {
			e.paramWrites.Add(1)
		}
	}
	if len(res.Crashes) > 0 {
		e.crashes.Add(int64(len(res.Crashes)))
		var fresh []string
		for _, cr := range res.Crashes {
			if _, isNew := e.dedup.Add(e.modelID, cr, p, e.execs.Load()); isNew {
				fresh = append(fresh, crash.NormalizeTitle(cr.Title))
			}
		}
		// The paper's configuration reboots the target on any bug,
		// including warnings and HAL errors (§V-A).
		e.reset()
		// New unique findings are reproduced on a clean boot and their
		// reproducers minimized ("all bugs triggered were initially
		// minimized, deduplicated, and reproduced", §V-B).
		for _, title := range fresh {
			e.triageCrash(p, title)
		}
	}
	return res, feedback.FromExec(res, e.spec)
}

// SeedCorpus executes the given programs and admits them to the corpus
// unminimized, bootstrapping fuzzing with realistic workloads (the distilled
// framework traces from the probing pass). Relations are learned from their
// call orders.
func (e *Engine) SeedCorpus(progs []*dsl.Prog) {
	for _, p := range progs {
		res, sig := e.exec(p)
		newElems := e.acc.MergeNew(sig)
		score := newElems.Len()
		if score == 0 {
			score = 1
		}
		newElems.Release()
		sig.Release()
		res.Release()
		e.corpus.Add(p, score)
		if !e.cfg.NoRelations {
			e.learn(p)
		}
	}
}

// next selects the program for one iteration: fresh generation or corpus
// mutation, drawn from the given RNG and generator. The draw order (Pick,
// then the short-circuited ratio draw, then the donor Pick) is part of the
// serial determinism contract — do not reorder.
func (e *Engine) next(rng *rand.Rand, g *gen.Generator) (p *dsl.Prog, generated bool) {
	seed := e.corpus.Pick(rng)
	if seed == nil || rng.Float64() < e.cfg.GenerateRatio {
		return g.Generate(), true
	}
	donor := e.corpus.Pick(rng)
	p, _ = g.Mutate(seed, donor)
	return p, false
}

// nextFrom is next drawing seeds only from the first climit corpus entries
// — the pipelined producer's pinned corpus view. The draw order matches
// next exactly.
func (e *Engine) nextFrom(rng *rand.Rand, g *gen.Generator, climit int) (p *dsl.Prog, generated bool) {
	seed := e.corpus.PickN(rng, climit)
	if seed == nil || rng.Float64() < e.cfg.GenerateRatio {
		return g.Generate(), true
	}
	donor := e.corpus.PickN(rng, climit)
	p, _ = g.Mutate(seed, donor)
	return p, false
}

// Step runs one fuzzing iteration.
func (e *Engine) Step() {
	p, generated := e.next(e.rng, e.gen)
	e.stepWith(p, generated)
}

// stepWith executes one already-selected program and feeds the result back:
// single-pass merge of new signal (one lock acquisition), admission,
// relation learning, decay, and history sampling. All per-execution state
// is pooled — the steady state allocates only when the program is actually
// admitted.
func (e *Engine) stepWith(p *dsl.Prog, generated bool) {
	e.preExecReset()
	res, sig := e.exec(p)
	e.feed(p, generated, res, sig)
}

// feed folds one execution's outcome back into the engine: counters,
// signal merge, admission, relation learning, decay, and history sampling.
// It consumes (releases) res and sig. Shared by the serial, pipelined, and
// batched paths.
func (e *Engine) feed(p *dsl.Prog, generated bool, res *adb.ExecResult, sig *feedback.Signal) {
	if generated {
		e.generated.Add(1)
	} else {
		e.mutated.Add(1)
	}

	var lineageSeed *dsl.Prog
	newElems := e.acc.MergeNew(sig)
	if newElems.Len() > 0 {
		e.newSig.Add(1)
		admit := newElems.KernelLen() > 0 || e.rng.Float64() < e.cfg.DirAdmitProb
		if admit {
			admitted := p
			if !e.cfg.SkipMinimize {
				admitted = e.minimize(p, newElems)
			}
			e.corpus.Add(admitted, seedScore(newElems))
			if !e.cfg.NoRelations {
				e.learn(admitted)
			}
			// Kernel-productive admissions are fan-out points: the lineage
			// scheduler forks the post-prefix device state K ways once the
			// pooled per-execution state is released below.
			if e.cfg.LineageK > 0 && !e.inLineage && newElems.KernelLen() > 0 {
				lineageSeed = admitted
			}
		}
		// Direction-only novelty below the subsample was already folded
		// into the accumulator by MergeNew, so it stops counting as new
		// without a corpus entry.
	}
	newElems.Release()
	sig.Release()
	res.Release()

	if lineageSeed != nil {
		e.lineage(lineageSeed)
	}

	if e.cfg.DecayEvery > 0 && e.execs.Load()%e.cfg.DecayEvery == 0 {
		e.graph.Decay(e.cfg.DecayFactor, 0.01)
	}
	if e.execs.Load()%e.cfg.SnapshotEvery == 0 {
		e.acc.Snapshot(e.execs.Load())
	}
	e.sanitizeStep()
}

// Run executes n fuzzing iterations serially: deterministic for a fixed
// seed.
func (e *Engine) Run(n int) {
	for i := 0; i < n; i++ {
		e.Step()
	}
	e.acc.Snapshot(e.execs.Load())
}

// pipelineSalt decorrelates the producer RNG from the engine RNG so the
// two streams never repeat each other's draws.
const pipelineSalt = 0x9e3779b97f4a7c15

// DefaultPipelineDepth is the generation lookahead used when RunPipelined
// is called with depth <= 0.
const DefaultPipelineDepth = 4

// RunPipelined executes n iterations with generation pipelined ahead of
// execution: a producer goroutine keeps up to depth programs generated or
// mutated in advance while this goroutine executes, analyzes feedback, and
// admits. Selection draws come from a producer-private RNG derived from
// the engine seed, and the producer generates item i against an explicit
// engine-state view (relation-graph snapshot + corpus length) captured
// after item i-depth was fully fed back — never against live shared state
// — so a pipelined campaign is reproducible against itself regardless of
// goroutine scheduling, but not bit-identical to a serial one: mutation
// speculates on a view that admission has advanced depth items past. Use
// Run when replay determinism matters.
func (e *Engine) RunPipelined(n, depth int) {
	e.runPipelined(n, depth, 1)
}

// DefaultBatchSize is the batch used when RunPipelinedBatched is called
// with batch <= 0.
const DefaultBatchSize = 16

// RunPipelinedBatched is RunPipelined with batched execution: pipelined
// programs are serialized once, packed into batches of up to batch texts,
// and shipped through the executor's BatchExecutor extension in summary
// mode — over a remote link that means one windowed wire frame per batch
// and an interesting-only coverage uplink instead of one full round trip
// per execution. Feedback, admission, and crash fallout are processed
// per program in batch order, so the analysis side is identical to the
// pipelined mode; executors without batch support fall back to it
// transparently. Like RunPipelined, this mode trades bit-replay for
// throughput — and a mid-batch crash reboots the device while the rest of
// the batch still runs, so crash timing is additionally coarsened to batch
// granularity (see DESIGN.md).
func (e *Engine) RunPipelinedBatched(n, depth, batch int) {
	if batch <= 0 {
		batch = DefaultBatchSize
	}
	e.runPipelined(n, depth, batch)
}

// pending is one pipelined work item.
type pending struct {
	p         *dsl.Prog
	generated bool
}

// pipeView is the engine-state view a pipelined producer generates against:
// an immutable relation-graph snapshot and the corpus length at the capture
// point (the corpus is append-only, so a length pins a prefix view). Views
// are captured by the consumer at deterministic points — after feeding item
// j it hands the producer the view for item j+depth — which makes pipelined
// generation a pure function of (seed, iteration index) instead of a race
// against the consumer's admissions and learns.
type pipeView struct {
	snap      *relation.Snapshot
	corpusLen int
}

func (e *Engine) runPipelined(n, depth, batch int) {
	if n <= 0 {
		return
	}
	if depth <= 0 {
		depth = DefaultPipelineDepth
	}
	prng := rand.New(rand.NewSource(int64(uint64(e.cfg.Seed) ^ pipelineSalt)))
	pgen := gen.New(e.target, e.graph, prng, e.cfg.Gen)
	ch := make(chan pending, depth)
	// The batched consumer feeds nothing until a whole batch is collected,
	// so the producer must be able to run a full batch ahead of the last
	// ack on top of the pipeline depth or the two would deadlock.
	lookahead := depth
	if batch > 1 {
		lookahead += batch - 1
	}
	views := make(chan pipeView, lookahead)
	v0 := pipeView{snap: e.graph.Snapshot(), corpusLen: e.corpus.Len()}
	prefill := lookahead
	if n < prefill {
		prefill = n
	}
	for i := 0; i < prefill; i++ {
		views <- v0
	}
	// ack runs after each item is fully fed back; it releases the view for
	// the item lookahead ahead. Capacity accounting: at most lookahead
	// views are ever outstanding (prefilled + one per fed item, minus one
	// consumed per produced item), so these sends never block.
	fed := 0
	ack := func() {
		fed++
		if fed+lookahead <= n {
			views <- pipeView{snap: e.graph.Snapshot(), corpusLen: e.corpus.Len()}
		}
	}
	go func() {
		defer close(ch)
		for i := 0; i < n; i++ {
			v := <-views
			pgen.SetView(v.snap)
			p, generated := e.nextFrom(prng, pgen, v.corpusLen)
			ch <- pending{p, generated}
		}
	}()
	bx, _ := e.x.(adb.BatchExecutor)
	if batch > 1 && bx != nil {
		e.consumeBatched(ch, bx, batch, ack)
	} else {
		for item := range ch {
			e.stepWith(item.p, item.generated)
			ack()
		}
	}
	e.acc.Snapshot(e.execs.Load())
}

// consumeBatched drains the pipeline in batches: each program is
// serialized exactly once (retries inside a resilient executor reuse the
// same text), the batch executes remotely in summary mode, and every
// result is fed back in order, acking the producer's view handoff per
// program. Programs the batch failed to cover (a transport error after
// retries, a broker rejection) are accounted as ExecErrors, exactly like
// a failed singleton execution.
func (e *Engine) consumeBatched(ch chan pending, bx adb.BatchExecutor, batch int, ack func()) {
	items := make([]pending, 0, batch)
	texts := make([]string, 0, batch)
	flush := func() {
		if len(items) == 0 {
			return
		}
		e.preBatchReset()
		results, _ := bx.ExecBatch(adb.ExecBatchRequest{Progs: texts, Summary: true})
		for i := range items {
			var res *adb.ExecResult
			var err error
			if i < len(results) && results[i] != nil {
				res = results[i]
			} else {
				err = errBatchShortfall
			}
			res, sig := e.afterExec(items[i].p, res, err)
			e.feed(items[i].p, items[i].generated, res, sig)
			ack()
		}
		items = items[:0]
		texts = texts[:0]
	}
	for item := range ch {
		items = append(items, item)
		texts = append(texts, item.p.String())
		if len(items) == batch {
			flush()
		}
	}
	flush()
}

// errBatchShortfall marks a batched program whose result never arrived.
var errBatchShortfall = errors.New("engine: batched execution not acknowledged")

// minimize reduces the program to the essential calls that still reproduce
// all newly found signal elements (paper §IV-C: "minimize the call to the
// bare bones API and system calls"). Every check runs on a freshly
// rebooted device: device state persists across programs within a boot, so
// minimizing in place would keep state-dependent fragments that are
// useless as standalone seeds and would teach the relation graph
// accidental adjacencies.
func (e *Engine) minimize(p *dsl.Prog, want *feedback.Signal) *dsl.Prog {
	// First check the program is self-contained at all.
	e.reset()
	if !e.coversOnCurrentBoot(p, want) {
		// The new signal depended on accumulated device state; keep the
		// raw program (it is still a valid splice donor).
		e.reset()
		return p
	}
	budget := e.cfg.MaxMinimizeExecs
	cur := p
	for i := cur.Len() - 1; i >= 0 && budget > 0; i-- {
		if cur.Len() <= 1 {
			break
		}
		cand := cur.RemoveCall(i)
		e.reset()
		budget--
		if e.coversOnCurrentBoot(cand, want) {
			cur = cand
		}
	}
	e.reset()
	return cur
}

// coversOnCurrentBoot executes p and reports whether its signal contains
// every element of want; crashes make the check fail (and the caller
// reboots before the next candidate anyway).
func (e *Engine) coversOnCurrentBoot(p *dsl.Prog, want *feedback.Signal) bool {
	res, err := e.x.ExecProg(p)
	e.execs.Add(1)
	if err != nil {
		e.execErrors.Add(1)
		return false
	}
	if len(res.Crashes) > 0 || res.NeedsReboot() {
		res.Release()
		return false
	}
	sig := feedback.FromExec(res, e.spec)
	ok := sig.ContainsAll(want)
	sig.Release()
	res.Release()
	return ok
}

// seedScore prioritizes corpus entries: new kernel coverage is worth far
// more than new directional (HAL-order) signal. Directional novelty is
// plentiful — every fresh interleaving hashes differently — so scoring it
// at parity would let order-novel programs drown out the seeds that still
// advance kernel state.
func seedScore(newElems *feedback.Signal) int {
	kernel := newElems.KernelLen()
	return kernel*8 + (newElems.Len() - kernel)
}

// crashTriageBudget bounds the executions spent minimizing one reproducer.
const crashTriageBudget = 32

// triageCrash reproduces a new finding on a clean boot and minimizes its
// reproducer, updating the shared record.
func (e *Engine) triageCrash(p *dsl.Prog, title string) {
	if !e.crashesWith(p, title) {
		// State from earlier programs in the same boot was required; the
		// raw program is kept but marked non-reproducing.
		e.dedup.UpdateRepro(title, nil, false)
		e.reset()
		return
	}
	e.reset()
	cur := p
	budget := crashTriageBudget
	for i := cur.Len() - 1; i >= 0 && budget > 0 && cur.Len() > 1; i-- {
		cand := cur.RemoveCall(i)
		budget--
		if e.crashesWith(cand, title) {
			cur = cand
		}
		e.reset()
	}
	e.dedup.UpdateRepro(title, cur, true)
}

// crashesWith executes p and reports whether it raises the given
// (normalized) crash title. The caller reboots afterwards.
func (e *Engine) crashesWith(p *dsl.Prog, title string) bool {
	res, err := e.x.ExecProg(p)
	e.execs.Add(1)
	if err != nil {
		e.execErrors.Add(1)
		return false
	}
	hit := false
	for _, cr := range res.Crashes {
		if crash.NormalizeTitle(cr.Title) == title {
			hit = true
			break
		}
	}
	res.Release()
	return hit
}

// learn records the adjacent-pair dependencies of a minimized program into
// the relation graph (paper Eq. (1)) — directly in serial mode, or into
// the daemon-applied buffer during parallel campaigns so the shared graph
// is never locked on the engine's hot path.
func (e *Engine) learn(p *dsl.Prog) {
	if buf := e.learnBuf; buf != nil {
		for i := 1; i < p.Len(); i++ {
			buf.Learn(p.Calls[i-1].Desc.Name, p.Calls[i].Desc.Name)
		}
		return
	}
	for i := 1; i < p.Len(); i++ {
		e.graph.Learn(p.Calls[i-1].Desc.Name, p.Calls[i].Desc.Name)
	}
}
