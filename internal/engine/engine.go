// Package engine implements the host-side Fuzzing Engine (paper §IV-A):
// one per device, it produces test cases (relational generation plus
// corpus mutation), ships them to the device's execution broker, interprets
// the cross-boundary feedback, minimizes and admits interesting programs,
// learns relations, and triages crashes.
package engine

import (
	"math/rand"

	"droidfuzz/internal/adb"
	"droidfuzz/internal/corpus"
	"droidfuzz/internal/crash"
	"droidfuzz/internal/dsl"
	"droidfuzz/internal/feedback"
	"droidfuzz/internal/gen"
	"droidfuzz/internal/relation"
)

// Config tunes one engine.
type Config struct {
	// Seed seeds the engine's RNG; campaigns are reproducible.
	Seed int64
	// GenerateRatio is the probability of fresh generation vs corpus
	// mutation (default 0.4; mutation dominates once a corpus exists).
	GenerateRatio float64
	// NoRelations is the DF-NoRel ablation: random dependency generation
	// and no relation learning.
	NoRelations bool
	// NoHALCov is the DF-NoHCov ablation: directional HAL coverage is
	// dropped from the feedback signal.
	NoHALCov bool
	// DecayEvery is the period (in executions) of relation-weight decay
	// (default 400; 0 disables).
	DecayEvery uint64
	// DecayFactor multiplies edge weights at each decay (default 0.9).
	DecayFactor float64
	// SnapshotEvery is the coverage-history sampling period in executions
	// (default 25).
	SnapshotEvery uint64
	// MinimizeNew enables reproducing-signal minimization before corpus
	// admission and relation learning (default on; set SkipMinimize to
	// disable).
	SkipMinimize bool
	// MaxMinimizeExecs bounds the extra executions spent per
	// minimization (default 12).
	MaxMinimizeExecs int
	// DirAdmitProb is the probability of admitting a program whose only
	// novelty is directional (HAL-order) signal (default 0.25). Every
	// fresh interleaving hashes to new directional elements, so admitting
	// them all floods the corpus and starves kernel-productive seeds;
	// subsampling keeps the ordering guidance at a bounded dilution cost.
	DirAdmitProb float64
	// Gen forwards generation options.
	Gen gen.Options
}

func (c *Config) defaults() {
	if c.GenerateRatio <= 0 {
		c.GenerateRatio = 0.4
	}
	if c.DecayEvery == 0 {
		c.DecayEvery = 400
	}
	if c.DecayFactor <= 0 || c.DecayFactor >= 1 {
		c.DecayFactor = 0.9
	}
	if c.SnapshotEvery == 0 {
		c.SnapshotEvery = 25
	}
	if c.MaxMinimizeExecs == 0 {
		c.MaxMinimizeExecs = 12
	}
	if c.DirAdmitProb <= 0 {
		c.DirAdmitProb = 0.25
	}
	c.Gen.NoRelations = c.NoRelations
}

// Stats are engine counters.
type Stats struct {
	Execs       uint64
	Generated   uint64
	Mutated     uint64
	NewSignal   uint64
	CorpusSize  int
	Crashes     int
	UniqueBugs  int
	Reboots     int
	KernelCov   int
	TotalSignal int
}

// Engine drives fuzzing for one device.
type Engine struct {
	broker *adb.Broker
	gen    *gen.Generator
	graph  *relation.Graph
	corpus *corpus.Corpus
	acc    *feedback.Accumulator
	spec   *feedback.SpecTable
	dedup  *crash.Dedup
	rng    *rand.Rand
	cfg    Config

	execs     uint64
	generated uint64
	mutated   uint64
	newSig    uint64
	crashes   int
}

// New builds an engine over a broker whose target already includes probed
// HAL interfaces. The relation graph and dedup collector may be shared with
// other engines (the daemon owns them).
func New(broker *adb.Broker, graph *relation.Graph, dedup *crash.Dedup, cfg Config) *Engine {
	cfg.defaults()
	target := broker.Target()
	rng := rand.New(rand.NewSource(cfg.Seed))
	var spec *feedback.SpecTable
	if !cfg.NoHALCov {
		spec = feedback.NewSpecTable(target)
	}
	// Seed the relation graph's vertices from the target's descriptions.
	for _, d := range target.Calls() {
		graph.AddVertex(d.Name, d.Weight)
	}
	return &Engine{
		broker: broker,
		gen:    gen.New(target, graph, rng, cfg.Gen),
		graph:  graph,
		corpus: corpus.New(),
		acc:    feedback.NewAccumulator(),
		spec:   spec,
		dedup:  dedup,
		rng:    rng,
		cfg:    cfg,
	}
}

// Corpus exposes the engine's corpus (persistence, tests).
func (e *Engine) Corpus() *corpus.Corpus { return e.corpus }

// Accumulator exposes the coverage accumulator.
func (e *Engine) Accumulator() *feedback.Accumulator { return e.acc }

// Dedup exposes the crash collector.
func (e *Engine) Dedup() *crash.Dedup { return e.dedup }

// Graph exposes the relation graph.
func (e *Engine) Graph() *relation.Graph { return e.graph }

// Gen exposes the generator (diagnostics, distribution analysis).
func (e *Engine) Gen() *gen.Generator { return e.gen }

// Rng exposes the engine's RNG (diagnostics; using it perturbs the run).
func (e *Engine) Rng() *rand.Rand { return e.rng }

// Execs reports executions so far (the virtual-time clock).
func (e *Engine) Execs() uint64 { return e.execs }

// Stats snapshots the counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Execs:       e.execs,
		Generated:   e.generated,
		Mutated:     e.mutated,
		NewSignal:   e.newSig,
		CorpusSize:  e.corpus.Len(),
		Crashes:     e.crashes,
		UniqueBugs:  e.dedup.Len(),
		Reboots:     e.broker.Device().Reboots(),
		KernelCov:   e.acc.KernelTotal(),
		TotalSignal: e.acc.Total(),
	}
}

// exec runs one program, bumping virtual time and handling crash fallout.
func (e *Engine) exec(p *dsl.Prog) (*adb.ExecResult, feedback.Signal) {
	res, err := e.broker.ExecProg(p)
	e.execs++
	if err != nil {
		// A malformed program is an engine bug; surface loudly in tests
		// by treating it as an empty result.
		return &adb.ExecResult{}, feedback.Signal{}
	}
	if len(res.Crashes) > 0 {
		e.crashes += len(res.Crashes)
		var fresh []string
		for _, cr := range res.Crashes {
			if _, isNew := e.dedup.Add(e.broker.Device().Model.ID, cr, p, e.execs); isNew {
				fresh = append(fresh, crash.NormalizeTitle(cr.Title))
			}
		}
		// The paper's configuration reboots the target on any bug,
		// including warnings and HAL errors (§V-A).
		e.broker.Reboot()
		// New unique findings are reproduced on a clean boot and their
		// reproducers minimized ("all bugs triggered were initially
		// minimized, deduplicated, and reproduced", §V-B).
		for _, title := range fresh {
			e.triageCrash(p, title)
		}
	}
	return res, feedback.FromExec(res, e.spec)
}

// SeedCorpus executes the given programs and admits them to the corpus
// unminimized, bootstrapping fuzzing with realistic workloads (the distilled
// framework traces from the probing pass). Relations are learned from their
// call orders.
func (e *Engine) SeedCorpus(progs []*dsl.Prog) {
	for _, p := range progs {
		_, sig := e.exec(p)
		newElems := e.acc.NewOf(sig)
		e.acc.Merge(sig)
		score := len(newElems)
		if score == 0 {
			score = 1
		}
		e.corpus.Add(p, score)
		if !e.cfg.NoRelations {
			e.learn(p)
		}
	}
}

// Step runs one fuzzing iteration.
func (e *Engine) Step() {
	var p *dsl.Prog
	seed := e.corpus.Pick(e.rng)
	if seed == nil || e.rng.Float64() < e.cfg.GenerateRatio {
		p = e.gen.Generate()
		e.generated++
	} else {
		donor := e.corpus.Pick(e.rng)
		p, _ = e.gen.Mutate(seed, donor)
		e.mutated++
	}

	_, sig := e.exec(p)
	if newElems := e.acc.NewOf(sig); len(newElems) > 0 {
		e.newSig++
		admit := newElems.KernelLen() > 0 || e.rng.Float64() < e.cfg.DirAdmitProb
		if admit {
			admitted := p
			if !e.cfg.SkipMinimize {
				admitted = e.minimize(p, newElems)
			}
			e.acc.Merge(sig)
			e.corpus.Add(admitted, seedScore(newElems))
			if !e.cfg.NoRelations {
				e.learn(admitted)
			}
		} else {
			// Direction-only novelty below the subsample: record it as
			// seen so it stops counting as new, without a corpus entry.
			e.acc.Merge(sig)
		}
	}

	if e.cfg.DecayEvery > 0 && e.execs%e.cfg.DecayEvery == 0 {
		e.graph.Decay(e.cfg.DecayFactor, 0.01)
	}
	if e.execs%e.cfg.SnapshotEvery == 0 {
		e.acc.Snapshot(e.execs)
	}
}

// Run executes n fuzzing iterations.
func (e *Engine) Run(n int) {
	for i := 0; i < n; i++ {
		e.Step()
	}
	e.acc.Snapshot(e.execs)
}

// minimize reduces the program to the essential calls that still reproduce
// all newly found signal elements (paper §IV-C: "minimize the call to the
// bare bones API and system calls"). Every check runs on a freshly
// rebooted device: device state persists across programs within a boot, so
// minimizing in place would keep state-dependent fragments that are
// useless as standalone seeds and would teach the relation graph
// accidental adjacencies.
func (e *Engine) minimize(p *dsl.Prog, want feedback.Signal) *dsl.Prog {
	// First check the program is self-contained at all.
	e.broker.Reboot()
	if !e.coversOnCurrentBoot(p, want) {
		// The new signal depended on accumulated device state; keep the
		// raw program (it is still a valid splice donor).
		e.broker.Reboot()
		return p
	}
	budget := e.cfg.MaxMinimizeExecs
	cur := p
	for i := cur.Len() - 1; i >= 0 && budget > 0; i-- {
		if cur.Len() <= 1 {
			break
		}
		cand := cur.RemoveCall(i)
		e.broker.Reboot()
		budget--
		if e.coversOnCurrentBoot(cand, want) {
			cur = cand
		}
	}
	e.broker.Reboot()
	return cur
}

// coversOnCurrentBoot executes p and reports whether its signal contains
// every element of want; crashes make the check fail (and the caller
// reboots before the next candidate anyway).
func (e *Engine) coversOnCurrentBoot(p *dsl.Prog, want feedback.Signal) bool {
	res, err := e.broker.ExecProg(p)
	e.execs++
	if err != nil || len(res.Crashes) > 0 || res.NeedsReboot() {
		return false
	}
	return covers(feedback.FromExec(res, e.spec), want)
}

// seedScore prioritizes corpus entries: new kernel coverage is worth far
// more than new directional (HAL-order) signal. Directional novelty is
// plentiful — every fresh interleaving hashes differently — so scoring it
// at parity would let order-novel programs drown out the seeds that still
// advance kernel state.
func seedScore(newElems feedback.Signal) int {
	kernel := newElems.KernelLen()
	return kernel*8 + (len(newElems) - kernel)
}

// covers reports whether sig contains every element of want.
func covers(sig, want feedback.Signal) bool {
	for e := range want {
		if _, ok := sig[e]; !ok {
			return false
		}
	}
	return true
}

// crashTriageBudget bounds the executions spent minimizing one reproducer.
const crashTriageBudget = 32

// triageCrash reproduces a new finding on a clean boot and minimizes its
// reproducer, updating the shared record.
func (e *Engine) triageCrash(p *dsl.Prog, title string) {
	if !e.crashesWith(p, title) {
		// State from earlier programs in the same boot was required; the
		// raw program is kept but marked non-reproducing.
		e.dedup.UpdateRepro(title, nil, false)
		e.broker.Reboot()
		return
	}
	e.broker.Reboot()
	cur := p
	budget := crashTriageBudget
	for i := cur.Len() - 1; i >= 0 && budget > 0 && cur.Len() > 1; i-- {
		cand := cur.RemoveCall(i)
		budget--
		if e.crashesWith(cand, title) {
			cur = cand
		}
		e.broker.Reboot()
	}
	e.dedup.UpdateRepro(title, cur, true)
}

// crashesWith executes p and reports whether it raises the given
// (normalized) crash title. The caller reboots afterwards.
func (e *Engine) crashesWith(p *dsl.Prog, title string) bool {
	res, err := e.broker.ExecProg(p)
	e.execs++
	if err != nil {
		return false
	}
	for _, cr := range res.Crashes {
		if crash.NormalizeTitle(cr.Title) == title {
			return true
		}
	}
	return false
}

// learn records the adjacent-pair dependencies of a minimized program into
// the relation graph (paper Eq. (1)).
func (e *Engine) learn(p *dsl.Prog) {
	for i := 1; i < p.Len(); i++ {
		e.graph.Learn(p.Calls[i-1].Desc.Name, p.Calls[i].Desc.Name)
	}
}
