package engine_test

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
	"testing"

	"droidfuzz/internal/adb"
	"droidfuzz/internal/crash"
	"droidfuzz/internal/device"
	"droidfuzz/internal/dsl"
	"droidfuzz/internal/engine"
	"droidfuzz/internal/probe"
	"droidfuzz/internal/relation"
)

// newBroker boots a device model, probes its HALs, and wires a broker.
func newBroker(t testing.TB, modelID string) *adb.Broker {
	t.Helper()
	model, err := device.ModelByID(modelID)
	if err != nil {
		t.Fatalf("model %s: %v", modelID, err)
	}
	dev := device.New(model)
	target, err := dsl.NewTarget(dev.SyscallDescs()...)
	if err != nil {
		t.Fatalf("target: %v", err)
	}
	pr, err := probe.Run(dev, probe.Options{})
	if err != nil {
		t.Fatalf("probe: %v", err)
	}
	target, err = target.Extend(pr.Interfaces...)
	if err != nil {
		t.Fatalf("extend: %v", err)
	}
	return adb.NewBroker(dev, target)
}

// newEngine boots a device model, probes its HALs, and wires a fresh engine.
func newEngine(t testing.TB, modelID string, cfg engine.Config) *engine.Engine {
	t.Helper()
	return engine.New(newBroker(t, modelID), relation.New(), crash.NewDedup(), cfg)
}

func TestEngineSmoke(t *testing.T) {
	e := newEngine(t, "A1", engine.Config{Seed: 1})
	e.Run(300)
	st := e.Stats()
	if st.Execs < 300 {
		t.Fatalf("execs = %d, want >= 300", st.Execs)
	}
	if st.KernelCov == 0 {
		t.Fatal("no kernel coverage collected")
	}
	if st.CorpusSize == 0 {
		t.Fatal("corpus stayed empty")
	}
	t.Logf("stats: %+v", st)
	t.Logf("graph: %v", e.Graph())
	for _, r := range e.Dedup().Records() {
		t.Logf("bug: %s (%s, %s)", r.Title, r.Component, r.Type)
	}
}

func TestEngineCoverageGrows(t *testing.T) {
	e := newEngine(t, "A2", engine.Config{Seed: 7})
	e.Run(150)
	early := e.Accumulator().Total()
	e.Run(450)
	late := e.Accumulator().Total()
	if late <= early {
		t.Fatalf("coverage did not grow: early=%d late=%d", early, late)
	}
}

func TestEngineDeterministic(t *testing.T) {
	a := newEngine(t, "B", engine.Config{Seed: 42})
	b := newEngine(t, "B", engine.Config{Seed: 42})
	a.Run(200)
	b.Run(200)
	if a.Accumulator().Total() != b.Accumulator().Total() {
		t.Fatalf("same seed diverged: %d vs %d",
			a.Accumulator().Total(), b.Accumulator().Total())
	}
	if a.Execs() != b.Execs() {
		t.Fatalf("exec counts diverged: %d vs %d", a.Execs(), b.Execs())
	}
}

func TestSeedCorpusBootstrapsAndLearns(t *testing.T) {
	e := newEngine(t, "C1", engine.Config{Seed: 5})
	// NewDroidFuzz is not used here, so seed manually with a parsed
	// workload-like program.
	// (The baseline package covers the probed-seed path; this checks the
	// engine API contract directly.)
	before := e.Corpus().Len()
	target := e.Gen().Target()
	prog, err := dsl.ParseProg(target, `r0 = open$wlan(path="/dev/wlan0")
ioctl$WLAN_SCAN(fd=r0, req=0xa701)
ioctl$WLAN_ASSOC(fd=r0, req=0xa702, bssid=0x42)
`)
	if err != nil {
		t.Fatal(err)
	}
	e.SeedCorpus([]*dsl.Prog{prog})
	if e.Corpus().Len() != before+1 {
		t.Fatal("seed not admitted")
	}
	// Adjacent-pair relations from the seed were learned.
	if e.Graph().EdgeWeight("ioctl$WLAN_SCAN", "ioctl$WLAN_ASSOC") == 0 {
		t.Fatal("seed relations not learned")
	}
}

func TestCrashTriageProducesMinimizedReproducer(t *testing.T) {
	e := newEngine(t, "B", engine.Config{Seed: 6})
	target := e.Gen().Target()
	// A program whose crash (l2cap double disconnect WARN on B) is
	// self-contained, padded with unrelated calls that minimization
	// should strip.
	prog, err := dsl.ParseProg(target, `r0 = open$hci(path="/dev/hci0")
ioctl$HCI_UP(fd=r0, req=0xa201)
r2 = open$l2cap(path="/dev/l2cap0")
ioctl$L2CAP_DISCONNECT(fd=r2, req=0xa302)
read$hci(fd=r0, n=0x10)
`)
	if err != nil {
		t.Fatal(err)
	}
	e.SeedCorpus([]*dsl.Prog{prog})
	recs := e.Dedup().Records()
	if len(recs) != 1 {
		t.Fatalf("records = %d", len(recs))
	}
	r := recs[0]
	if !strings.Contains(r.Title, "l2cap_send_disconn_req") {
		t.Fatalf("title = %q", r.Title)
	}
	if !r.Reproducible {
		t.Fatal("self-contained crash not reproduced")
	}
	if r.Repro.Len() >= prog.Len() {
		t.Fatalf("reproducer not minimized: %d calls", r.Repro.Len())
	}
	// The minimized reproducer must still contain the essential pair.
	txt := r.Repro.String()
	if !strings.Contains(txt, "open$l2cap") || !strings.Contains(txt, "L2CAP_DISCONNECT") {
		t.Fatalf("essential calls stripped:\n%s", txt)
	}
}

func TestEngineHonorsSkipMinimize(t *testing.T) {
	e := newEngine(t, "B", engine.Config{Seed: 8, SkipMinimize: true})
	e.Run(200)
	if e.Corpus().Len() == 0 {
		t.Fatal("no corpus without minimization")
	}
}

// TestEnginePipelinedRun: the batched mode must complete the full iteration
// budget, make coverage progress, and keep its own books straight — without
// the serial determinism guarantee (generation runs ahead on its own RNG).
func TestEnginePipelinedRun(t *testing.T) {
	e := newEngine(t, "A1", engine.Config{Seed: 31})
	e.RunPipelined(300, 4)
	st := e.Stats()
	if st.Execs < 300 {
		t.Fatalf("execs = %d, want >= 300", st.Execs)
	}
	if st.Generated+st.Mutated != 300 {
		t.Fatalf("generated+mutated = %d, want 300", st.Generated+st.Mutated)
	}
	if st.KernelCov == 0 || st.CorpusSize == 0 {
		t.Fatalf("pipelined run made no progress: %+v", st)
	}
}

// TestEngineCountsExecErrors: injected broker faults must show up in stats
// instead of disappearing into empty results.
func TestEngineCountsExecErrors(t *testing.T) {
	e := newEngine(t, "A1", engine.Config{Seed: 12})
	e.Broker().FailNext(3)
	e.Run(50)
	st := e.Stats()
	if st.ExecErrors != 3 {
		t.Fatalf("ExecErrors = %d, want 3", st.ExecErrors)
	}
	if st.Execs < 50 {
		t.Fatalf("faults stalled virtual time: execs = %d", st.Execs)
	}
}

// TestEngineDisabledGenerateRatio: with GenerateRatio pinned to zero via
// the sentinel, the engine only generates while the corpus is empty and
// mutates ever after.
func TestEngineDisabledGenerateRatio(t *testing.T) {
	e := newEngine(t, "A1", engine.Config{Seed: 14, GenerateRatio: engine.Disabled})
	target := e.Gen().Target()
	prog, err := dsl.ParseProg(target, `r0 = open$tcpc(path="/dev/tcpc0")
ioctl$TCPC_SET_MODE(fd=r0, req=0xa102, mode=0x3)
`)
	if err != nil {
		t.Fatal(err)
	}
	e.SeedCorpus([]*dsl.Prog{prog})
	e.Run(100)
	st := e.Stats()
	if st.Generated != 0 {
		t.Fatalf("generated = %d with GenerateRatio disabled and a seeded corpus", st.Generated)
	}
	if st.Mutated != 100 {
		t.Fatalf("mutated = %d, want 100", st.Mutated)
	}
}

// TestEngineBatchedRun: the batched pipelined mode ships programs to the
// executor's batch extension (the in-process broker here) and must complete
// the full budget with the same bookkeeping guarantees as per-program
// pipelining.
func TestEngineBatchedRun(t *testing.T) {
	e := newEngine(t, "A1", engine.Config{Seed: 31})
	e.RunPipelinedBatched(300, 4, 8)
	st := e.Stats()
	if st.Execs < 300 {
		t.Fatalf("execs = %d, want >= 300", st.Execs)
	}
	if st.Generated+st.Mutated != 300 {
		t.Fatalf("generated+mutated = %d, want 300", st.Generated+st.Mutated)
	}
	if st.KernelCov == 0 || st.CorpusSize == 0 {
		t.Fatalf("batched run made no progress: %+v", st)
	}
}

// TestEngineBatchedMatchesPipelinedProgress: batching changes framing, not
// feedback — a batched run over the same broker must reach coverage in the
// same ballpark as the per-program pipelined run (it sees the same kind of
// programs through the same accumulator).
func TestEngineBatchedMatchesPipelinedProgress(t *testing.T) {
	a := newEngine(t, "A2", engine.Config{Seed: 9})
	a.RunPipelined(400, 4)
	b := newEngine(t, "A2", engine.Config{Seed: 9})
	b.RunPipelinedBatched(400, 4, 16)
	ca, cb := a.Stats().KernelCov, b.Stats().KernelCov
	if cb == 0 {
		t.Fatal("batched run found no coverage")
	}
	// Not bit-identical (batching acks views at different points than
	// per-program pipelining, so the producers see different corpus
	// prefixes), but the same order of magnitude: batching must not
	// starve feedback.
	if cb*3 < ca {
		t.Fatalf("batched coverage %d lags pipelined %d by >3x", cb, ca)
	}
}

// corpusHash fingerprints the full corpus content — every admitted program
// in priority order plus its signal score — and the relation graph's edge
// count. Two replays of the same seed must produce bit-identical corpora,
// not just equal sizes; this is the regression test for the map-order
// teardown bug droidvet's determinism pass caught in the HCI driver
// (reset freed connections in map order, perturbing heap state and
// coverage between replays).
func corpusHash(e *engine.Engine) string {
	h := sha256.New()
	for _, ent := range e.Corpus().Entries() {
		fmt.Fprintf(h, "%d\n%s\n", ent.Signal, ent.Prog.String())
	}
	fmt.Fprintf(h, "graph=%d\n", e.Graph().Len())
	return hex.EncodeToString(h.Sum(nil))
}

// TestEnginePipelinedReproducesItself: pipelined mode trades bit-identity
// with the serial schedule for throughput, but it must reproduce *itself*
// regardless of goroutine scheduling — the producer generates against
// explicit state views handed off at deterministic points, never against
// live shared structures. Two same-seed pipelined campaigns must yield
// content-identical corpora; this is the regression test for the snapshot
// rewrite briefly making producer reads race with consumer learns.
func TestEnginePipelinedReproducesItself(t *testing.T) {
	for _, tc := range []struct {
		model string
		depth int
	}{{"A1", 4}, {"B", 7}} {
		a := newEngine(t, tc.model, engine.Config{Seed: 99})
		b := newEngine(t, tc.model, engine.Config{Seed: 99})
		a.RunPipelined(400, tc.depth)
		b.RunPipelined(400, tc.depth)
		if ha, hb := corpusHash(a), corpusHash(b); ha != hb {
			t.Fatalf("model %s depth %d: same-seed pipelined replay diverged:\n  run1 %s (%d entries)\n  run2 %s (%d entries)",
				tc.model, tc.depth, ha, a.Corpus().Len(), hb, b.Corpus().Len())
		}
		if a.Accumulator().Total() != b.Accumulator().Total() {
			t.Fatalf("model %s: pipelined accumulated signal diverged: %d vs %d",
				tc.model, a.Accumulator().Total(), b.Accumulator().Total())
		}
	}
}

// TestEngineBatchedReproducesItself: the batched consumer acks the view
// handoff per program inside each flush, so batched campaigns carry the
// same self-reproducibility guarantee (with lookahead widened by the batch
// size so collection can't outrun the acks).
func TestEngineBatchedReproducesItself(t *testing.T) {
	a := newEngine(t, "A1", engine.Config{Seed: 99})
	b := newEngine(t, "A1", engine.Config{Seed: 99})
	a.RunPipelinedBatched(400, 4, 16)
	b.RunPipelinedBatched(400, 4, 16)
	if ha, hb := corpusHash(a), corpusHash(b); ha != hb {
		t.Fatalf("same-seed batched replay diverged:\n  run1 %s (%d entries)\n  run2 %s (%d entries)",
			ha, a.Corpus().Len(), hb, b.Corpus().Len())
	}
}

// TestEngineSeedReplayIdenticalCorpus replays a fixed seed twice through
// the full serial engine and asserts the corpora are content-identical.
func TestEngineSeedReplayIdenticalCorpus(t *testing.T) {
	for _, model := range []string{"A1", "B"} {
		a := newEngine(t, model, engine.Config{Seed: 1234})
		b := newEngine(t, model, engine.Config{Seed: 1234})
		a.Run(400)
		b.Run(400)
		ha, hb := corpusHash(a), corpusHash(b)
		if ha != hb {
			t.Fatalf("model %s: same-seed replay diverged:\n  run1 %s (%d entries)\n  run2 %s (%d entries)",
				model, ha, a.Corpus().Len(), hb, b.Corpus().Len())
		}
		if a.Accumulator().Total() != b.Accumulator().Total() {
			t.Fatalf("model %s: accumulated signal diverged: %d vs %d",
				model, a.Accumulator().Total(), b.Accumulator().Total())
		}
	}
}
