// Pristine-reset campaign modes and the fork-style lineage scheduler.
//
// Both features build on checkpoint portability (internal/device,
// internal/adb.Cloner): a device's full mutable state exports to an opaque
// blob that can be re-imported later — onto the same device or a clone —
// in O(state) time, far below a boot plus probing pass. The reset modes
// use the executor's ordinary Reset (the O(dirty-state) snapshot rewind)
// to start every program or batch from pristine state, trading a bounded
// per-exec cost for state-independent, directly-reproducible findings.
// The lineage scheduler uses Export/ImportCheckpoint to fork the device
// state *after* a freshly admitted prefix and fan K independent mutation
// lineages out from that point, amortizing the prefix execution across
// K*LineageLen mutants — the fork-server idiom, at device-state
// granularity.
package engine

import (
	"math/rand"

	"droidfuzz/internal/adb"
	"droidfuzz/internal/dsl"
	"droidfuzz/internal/gen"
)

// Reset campaign modes (Config.Reset).
const (
	// ResetNever accumulates device state within a boot; resets happen
	// only on crash fallout. This is the historical default ("" means the
	// same).
	ResetNever = "never"
	// ResetExec rewinds the device to its pristine checkpoint before
	// every program, so each execution observes boot-fresh driver state.
	ResetExec = "exec"
	// ResetBatch rewinds before every batch — every flushed batch in
	// batched mode, every DefaultBatchSize executions otherwise.
	ResetBatch = "batch"
)

// ValidResetMode reports whether s names a reset campaign mode (the empty
// string is the ResetNever default). Front-ends validate flag input with
// it before building a Config.
func ValidResetMode(s string) bool {
	switch s {
	case "", ResetNever, ResetExec, ResetBatch:
		return true
	}
	return false
}

// preExecReset applies the pristine-reset campaign mode before one
// unbatched execution: exec mode rewinds always, batch mode every
// DefaultBatchSize executions. ResetNever leaves the historical
// accumulate-within-a-boot behavior untouched.
func (e *Engine) preExecReset() {
	switch e.cfg.Reset {
	case ResetExec:
		e.reset()
	case ResetBatch:
		if e.execs.Load()%DefaultBatchSize == 0 {
			e.reset()
		}
	}
}

// preBatchReset applies the reset mode at a batch boundary. A device-side
// batch cannot be split per program, so exec mode degrades to batch
// granularity here — the batch still starts pristine.
func (e *Engine) preBatchReset() {
	if e.cfg.Reset == ResetExec || e.cfg.Reset == ResetBatch {
		e.reset()
	}
}

// lineageSalt decorrelates lineage RNG streams from the engine RNG and
// the pipelined producer RNG (which uses pipelineSalt).
const lineageSalt = 0x517cc1b727220a95

// lineage is the fork-style fan-out scheduler: called when prefix was
// just admitted with new kernel coverage, it replays the prefix on a
// pristine device, checkpoints the post-prefix state, and runs
// Config.LineageK independent mutation lineages of Config.LineageLen
// programs each against that state — every mutant inherits the prefix's
// device state without re-executing the prefix.
//
// Each lineage pins the fan-out point's engine-state view (the pipelined
// producer's pipeView discipline) and derives its RNG purely from
// (campaign seed, prefix identity, lineage index), so a lineage is
// self-reproducible and decorrelated from its siblings regardless of
// what the campaign executed before the fan-out point.
func (e *Engine) lineage(prefix *dsl.Prog) {
	cl, ok := e.x.(adb.Cloner)
	if !ok || e.inLineage || prefix.Len() == 0 {
		return
	}
	e.inLineage = true
	defer func() { e.inLineage = false }()

	// The fan-out needs two checkpoints: the campaign's pristine reset
	// point (cached — it never changes within a campaign) and the
	// post-prefix state.
	e.reset()
	if e.pristine == nil {
		blob, err := cl.ExportCheckpoint()
		if err != nil {
			e.execErrors.Add(1)
			return
		}
		e.pristine = blob
	}
	res, err := e.x.ExecProg(prefix)
	e.execs.Add(1)
	if err != nil {
		e.execErrors.Add(1)
		return
	}
	bad := len(res.Crashes) > 0 || res.NeedsReboot()
	res.Release()
	if bad {
		// The prefix does not replay cleanly (flaky crash, kernel wedge):
		// not a state worth forking.
		e.reset()
		return
	}
	post, err := cl.ExportCheckpoint()
	if err != nil {
		e.execErrors.Add(1)
		e.reset()
		return
	}

	view := pipeView{snap: e.graph.Snapshot(), corpusLen: e.corpus.Len()}
	salt := progSalt(prefix)
	for k := 0; k < e.cfg.LineageK; k++ {
		// Importing the checkpoint also makes it the state crash-fallout
		// resets rewind to, so a mid-lineage crash recovers to the
		// post-prefix fork point, not to boot.
		if err := cl.ImportCheckpoint(post); err != nil {
			e.execErrors.Add(1)
			break
		}
		lrng := rand.New(rand.NewSource(int64(uint64(e.cfg.Seed) ^ lineageSalt ^ salt ^ uint64(k+1)*0x9e3779b97f4a7c15)))
		lgen := gen.New(e.target, e.graph, lrng, e.cfg.Gen)
		lgen.SetView(view.snap)
		for i := 0; i < e.cfg.LineageLen; i++ {
			donor := e.corpus.PickN(lrng, view.corpusLen)
			p, _ := lgen.Mutate(prefix, donor)
			e.lineageStep(prefix, p)
		}
	}

	// Wind the device back to the campaign's pristine reset point; the
	// import reinstates it as the state later resets rewind to. If even
	// that fails (remote link down), fall back to a reboot so the
	// campaign never continues from a half-lineage state.
	if err := cl.ImportCheckpoint(e.pristine); err != nil {
		e.execErrors.Add(1)
		if e.x.Reboot() == nil {
			e.reboots.Add(1)
		}
	}
}

// lineageStep executes one lineage mutant against the inherited
// post-prefix device state and folds the outcome back without recursing
// into another fan-out. Discoveries are admitted as prefix+mutant
// concatenations so the corpus entry is self-contained from a pristine
// boot; minimization is skipped — the mid-lineage reset point is the
// post-prefix checkpoint, so a from-pristine minimization pass would cost
// an extra checkpoint round trip per candidate (DESIGN.md records the
// tradeoff).
func (e *Engine) lineageStep(prefix, p *dsl.Prog) {
	res, err := e.x.ExecProg(p)
	res, sig := e.afterExec(p, res, err)
	e.lineageExecs.Add(1)
	e.mutated.Add(1)
	newElems := e.acc.MergeNew(sig)
	if newElems.KernelLen() > 0 {
		if full := concatProgs(prefix, p); full != nil {
			e.newSig.Add(1)
			e.corpus.Add(full, seedScore(newElems))
			if !e.cfg.NoRelations {
				e.learn(full)
			}
		}
	}
	newElems.Release()
	sig.Release()
	res.Release()
	e.sanitizeStep()
}

// concatProgs builds prefix followed by tail as one self-contained
// program, shifting tail's resource references past the prefix
// (references are producing-call indices within one program). It returns
// nil when the concatenation would exceed gen.HardCap — an oversized
// entry would be truncated by every later mutation anyway.
func concatProgs(prefix, tail *dsl.Prog) *dsl.Prog {
	if prefix.Len()+tail.Len() > gen.HardCap {
		return nil
	}
	pc := prefix.Clone()
	tc := tail.Clone()
	shift := len(pc.Calls)
	for _, c := range tc.Calls {
		for j := range c.Args {
			if c.Desc.Args[j].Type.Kind == dsl.KindResource && c.Args[j].Ref >= 0 {
				c.Args[j].Ref += shift
			}
		}
	}
	return &dsl.Prog{Calls: append(pc.Calls, tc.Calls...)}
}

// progSalt hashes a program's canonical text (FNV-1a) into the lineage
// RNG derivation, so distinct fan-out points get decorrelated streams
// even within one campaign.
func progSalt(p *dsl.Prog) uint64 {
	h := uint64(14695981039346656037)
	for _, b := range []byte(p.String()) {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}
